(** Native execution engine — the third engine behind {!Exec.make}.

    Lowers the SPMD program to the imperative kernel IR ({!Imp}), prints
    it as a standalone OCaml compilation unit ({!Emit}), compiles that
    unit out-of-process with [ocamlfind ocamlopt -shared] into a cache
    directory keyed on a hash of the emitted source (plus the compiler
    version and library interface digests), dynlinks the result, and runs
    it in place of the closure engine's compiled main. Setup, storage,
    transport, scheduling and result inspection are {!Compile}'s, shared
    verbatim — [make] returns a plain {!Compile.csim} — so the engine is
    bit-identical to the closure engine (and hence the interpreter) in
    element values, clocks, counters and per-pair communication cells;
    {!Diffcheck.engines} asserts this three-way.

    The cache directory defaults to [$DHPF_NATIVE_CACHE] or
    [<tmpdir>/dhpf-native-cache]; a warm cache skips the compiler
    entirely ([native/cache_hit] in {!Obs.Metrics}; builds record a
    [native/build_s] histogram sample and a ["native build"] trace span).
    Host executables must link with [-linkall] so the dynlinked kernel
    finds every library module. *)

type kctx
(** Per-sim context threaded through the generated kernel: transport,
    VP-to-physical mapping, array ids, [vm$k] slots. *)

type kernel_fn = kctx -> Compile.rt -> unit

val register : kernel_fn -> unit
(** Called by the dynlinked unit's top-level initializer to hand its entry
    point to the loader. *)

(** {1 Kernel runtime}

    Called from emitted code only; each replicates the corresponding
    closure-engine path exactly (clock charges, effects, error texts). *)

val bad_step : Compile.rt -> string -> 'a
val unbound_int : Compile.rt -> string -> 'a
val unknown_sub : Compile.rt -> string -> 'a

val do_send :
  kctx ->
  Compile.rt ->
  event:int ->
  inplace:bool ->
  rect:bool ->
  int list ->
  unit

val do_recv :
  kctx ->
  Compile.rt ->
  event:int ->
  recv_o:float ->
  unpack:float ->
  int list ->
  unit

val do_reduce_arr : string -> Dhpf.Spmd.reduce_op -> unit
val do_reduce_scalar : Compile.rt -> int -> Dhpf.Spmd.reduce_op -> unit

(** {1 Engine construction} *)

val default_cache_dir : unit -> string
(** [$DHPF_NATIVE_CACHE] when set, else [<tmpdir>/dhpf-native-cache]. *)

val kernel_group : string -> string
(** The eviction group of a cache file name: its basename up to the first
    dot, so one kernel's [.ml]/[.cmxs]/[.cmi]/[.cmx]/[.o]/[.log] live and
    die together. *)

val prune_cache : string -> unit
(** Bound the kernel cache directory to [DHPF_NATIVE_CACHE_MB] (default
    512 MiB) by whole-kernel oldest-first eviction
    ({!Iset.Diskcache.prune_dir}); runs automatically after every
    out-of-process build. *)

val make :
  ?machine:Machine.t ->
  ?faults:Fault.spec ->
  ?domains:int ->
  ?cache_dir:string ->
  nprocs:int ->
  ?params:(string * int) list ->
  Dhpf.Spmd.program ->
  Compile.csim
(** Build the sim with the generated kernel installed as its main.
    Parameters are as in {!Exec.make}; [cache_dir] overrides
    {!default_cache_dir}.
    @raise Runtime.Error when the kernel fails to compile or load (the
    compiler log is included), or when the build tree cannot be located
    (see [DHPF_NATIVE_INCLUDES]). *)
