(** Closure-compiling SPMD execution engine — the default engine behind
    {!Exec.make}.

    A one-time lowering pass turns each [Spmd.stmt]/[fexpr]/[expr] tree into
    an OCaml closure over a compact per-processor state record: integer
    names resolve to [int array] slots, replicated scalars to [float array]
    slots, and global parameters fold into compile-time constants, so the
    per-iteration cost is a closure call instead of an AST match with
    hashtable lookups. Each processor's owned section of a distributed
    array is a dense [float array] block addressed through per-dimension
    ownership tables (exact for block, cyclic and block-cyclic layouts
    under any alignment), with a side hashtable only for received non-local
    values; arrays that are array-reduction targets keep the sparse
    representation so collective semantics match the interpreter exactly.

    The transport and scheduler are shared with the interpreter via
    {!Runtime}, and clock charges follow the interpreter's order, so runs
    are bit-identical in element values, clocks and counters — the
    interpreter remains the differential oracle ({!Diffcheck.engines}). *)

type csim

val make :
  ?machine:Machine.t ->
  ?faults:Fault.spec ->
  ?domains:int ->
  nprocs:int ->
  ?params:(string * int) list ->
  Dhpf.Spmd.program ->
  csim
(** Compile the program to closures and build per-processor dense storage.
    Parameters are as in {!Exec.make}; [domains] defaults to
    [Par.domains ()]. *)

val nprocs : csim -> int
val phys_of_vp : csim -> int list -> int

val run : csim -> Runtime.stats
(** Execute to completion.
    @raise Runtime.Deadlock when no processor can make progress.
    @raise Runtime.Error on an illegal access, unbound name, or when the
    sim was already run (each sim is single-use). *)

val get_elem : csim -> string -> int list -> float
val get_scalar : csim -> string -> float

val comm_cells : csim -> Runtime.comm_cell list
(** Measured per-pair communication table; see {!Runtime.comm_cells}. *)

(** {1 Checkpoint support} *)

val transport : csim -> Runtime.transport
(** The sim's transport, for installing crash control / checkpoint hooks. *)

val capture : csim -> Runtime.image
(** Deep value snapshot of the simulation: per-processor clocks, live
    bindings, all resident array elements (dense blocks enumerated in
    global-index order plus halo side tables), staged pack buffers, and
    the transport state. Within one engine, two captures of the same
    deterministic execution point are structurally equal. *)

val clocks : csim -> float array
(** Per-processor virtual clocks (a fresh array). *)

val set_clocks : csim -> float -> unit
(** Set every processor's clock — the restart barrier after a recovery. *)

val charge : csim -> float -> unit
(** Add a cost to every processor's clock — the coordinated checkpoint
    write, paid per processor without synchronizing them. *)
