(** Closure-compiling SPMD execution engine — the default engine behind
    {!Exec.make}.

    A one-time lowering pass turns each [Spmd.stmt]/[fexpr]/[expr] tree into
    an OCaml closure over a compact per-processor state record: integer
    names resolve to [int array] slots, replicated scalars to [float array]
    slots, and global parameters fold into compile-time constants, so the
    per-iteration cost is a closure call instead of an AST match with
    hashtable lookups. Each processor's owned section of a distributed
    array is a dense [float array] block addressed through per-dimension
    ownership tables (exact for block, cyclic and block-cyclic layouts
    under any alignment), with a side hashtable only for received non-local
    values; arrays that are array-reduction targets keep the sparse
    representation so collective semantics match the interpreter exactly.

    The transport and scheduler are shared with the interpreter via
    {!Runtime}, and clock charges follow the interpreter's order, so runs
    are bit-identical in element values, clocks and counters — the
    interpreter remains the differential oracle ({!Diffcheck.engines}).

    The per-processor representation ([store], [rt]) and the sim record
    ([csim]) are exposed concretely: the native engine ({!Native}) reuses
    this engine's setup, storage, transport and result plumbing verbatim and
    only replaces [c_main] with a dynlinked kernel emitted by {!Emit}, so
    everything outside the kernel body is structurally identical across the
    two engines. *)

(** {1 Per-processor storage} *)

type store = {
  st_am : Runtime.ameta;
  st_owned : bool;
      (** false: a FixedCoord layout dimension excludes this processor from
          holding any owned block *)
  st_dmaps : int array array;
      (** per data dimension: (x - lo_d) -> local index, or -1 if this
          processor does not own that coordinate *)
  st_lstride : int array;  (** per data dimension: stride into [st_data] *)
  st_data : float array;  (** dense owned block; [[||]] if sparse or unowned *)
  st_side : (int, float) Hashtbl.t;
      (** non-local values (received halos), keyed by global linear index;
          for sparse (reduction-target) arrays, all values live here *)
}

val st_sparse : store -> bool
(** The array keeps the sparse (side-table only) representation. *)

val slot_of_enc : store -> int -> int
(** Dense slot of a global linear index, or -1 if not owned/dense. *)

val put_enc : store -> int -> float -> unit
val get_enc : store -> int -> float

val owns_enc : store -> int -> bool
(** Ownership test by decoded coordinates (sparse-array slow path). *)

(** {1 Per-processor runtime state} *)

type rt = {
  r_pid : int;
  r_int : int array;  (** integer slots: loop vars, [m$k], [vm$k] *)
  r_fval : float array;  (** replicated-scalar slots *)
  r_fvalid : bool array;
      (** mirrors the interpreter's fenv membership: a slot is readable as a
          scalar only after initialization (declared) or first assignment *)
  r_stores : store array;  (** indexed by array id *)
  r_packbufs : Runtime.packbuf array;  (** indexed by event id *)
  mutable r_clock : float;
  r_skew : float;
  r_scratch : int array;  (** index scratch for arrays of rank > 3 *)
}

val tick : rt -> float -> unit
(** Charge [dt] (scaled by the processor's skew) to the local clock. *)

type cint = rt -> int
type cfloat = rt -> float
type cstmt = rt -> unit

(** {1 Cold paths shared with emitted kernels}

    Generated kernels inline the hot access sequences but call back here on
    a dense miss or an illegal access, so halo lookups, sparse-array
    defaults and failure messages stay identical across engines. *)

val access_name : Dhpf.Spmd.access -> string
val bounds_fail : Runtime.ameta -> int -> int -> 'a
val idx_string : Runtime.ameta -> int -> string

val load_miss : rt -> int -> aname:string -> int -> float
(** [load_miss rt aid ~aname enc]: value of a load whose dense slot was -1 —
    the received-halo side table, the sparse-owned zero default, or the
    non-local access error (tagged with the access mode's [aname]). *)

val pack_miss : rt -> int -> int -> float
(** Same lookup for [Pack] sites, with the packing-specific error. *)

val local_store_fail : rt -> int -> int -> 'a
(** The [Local]-store-to-non-owned-element error. *)

(** {1 The compiled simulation} *)

type csim = {
  c_prog : Dhpf.Spmd.program;
  c_su : Runtime.setup;
  c_tr : Runtime.transport;
  c_rts : rt array;
  c_main : cstmt;
  c_arrays : (string, int) Hashtbl.t;  (** array name -> store id *)
  c_ameta : Runtime.ameta array;  (** by store id *)
  c_layouts : Dhpf.Spmd.array_layout option array;
  c_islots : (string, int) Hashtbl.t;
  c_fslots : (string, int) Hashtbl.t;
  c_domains : int;
  mutable c_ran : bool;
}

val make :
  ?machine:Machine.t ->
  ?faults:Fault.spec ->
  ?domains:int ->
  nprocs:int ->
  ?params:(string * int) list ->
  Dhpf.Spmd.program ->
  csim
(** Compile the program to closures and build per-processor dense storage.
    Parameters are as in {!Exec.make}; [domains] defaults to
    [Par.domains ()]. *)

val nprocs : csim -> int
val phys_of_vp : csim -> int list -> int

val run : csim -> Runtime.stats
(** Execute to completion.
    @raise Runtime.Deadlock when no processor can make progress.
    @raise Runtime.Error on an illegal access, unbound name, or when the
    sim was already run (each sim is single-use). *)

val get_elem : csim -> string -> int list -> float
val get_scalar : csim -> string -> float

val comm_cells : csim -> Runtime.comm_cell list
(** Measured per-pair communication table; see {!Runtime.comm_cells}. *)

(** {1 Checkpoint support} *)

val transport : csim -> Runtime.transport
(** The sim's transport, for installing crash control / checkpoint hooks. *)

val capture : csim -> Runtime.image
(** Deep value snapshot of the simulation: per-processor clocks, live
    bindings, all resident array elements (dense blocks enumerated in
    global-index order plus halo side tables), staged pack buffers, and
    the transport state. Within one engine, two captures of the same
    deterministic execution point are structurally equal. *)

val clocks : csim -> float array
(** Per-processor virtual clocks (a fresh array). *)

val set_clocks : csim -> float -> unit
(** Set every processor's clock — the restart barrier after a recovery. *)

val charge : csim -> float -> unit
(** Add a cost to every processor's clock — the coordinated checkpoint
    write, paid per processor without synchronizing them. *)
