(** SPMD execution facade: runs the compiler's {!Dhpf.Spmd} programs on a
    simulated distributed-memory machine through one of three engines.

    [`Closure] (the default, {!Compile}) lowers the program once into OCaml
    closures — integer names resolved to array slots, global parameters
    folded to constants — and stores each processor's owned array section
    in a dense [float array] block, so per-iteration cost is a closure call
    instead of an AST match with hashtable lookups. [`Interp] is the
    original tree-walking interpreter, kept as the differential oracle.
    [`Native] ({!Native}) goes one step further and emits the lowered
    program as OCaml source, compiled out-of-process and dynlinked, so
    the inner loops run as straight-line machine code.

    All engines share {!Runtime}'s transport and scheduler and charge
    clock time in the same order: runs are bit-identical in element values
    and identical in message/byte/retransmit counters (the
    engine-differential property in the test suite asserts this, including
    under fault injection).

    Each processor runs as an effect-handler fiber with its own virtual
    clock; sends are buffered (non-blocking), receives block until the
    matching message exists. Receive completion time is
    [max(local clock + recv overhead, arrival)] with
    [arrival = sender clock at send + alpha + bytes*beta] — a LogGP-style
    model. Scalar and array reductions are synchronizing collectives priced
    as binary trees.

    Ownership is recomputed from the layout descriptors, so a [Local]
    access to a non-owned element, or a read of never-communicated
    non-local data, raises {!Error} — executing compiled code under the
    simulator doubles as a compiler correctness check. *)

exception Error of string

type engine = [ `Closure | `Interp | `Native ]

val engine_names : string list
(** Valid engine selector strings, in display order:
    ["closure"; "interp"; "native"]. *)

val engine_of_string : string -> engine option
val engine_to_string : engine -> string

type sim

val make :
  ?engine:engine ->
  ?machine:Machine.t ->
  ?faults:Fault.spec ->
  ?domains:int ->
  nprocs:int ->
  ?params:(string * int) list ->
  Dhpf.Spmd.program ->
  sim
(** Instantiate the machine: evaluate startup parameter bindings (with
    [number_of_processors() = nprocs]), size the processor grid, compute
    each processor's [m$k] / [vm$k] coordinates, and allocate storage.
    [params] binds symbolic program parameters. [engine] selects the
    executor (default [`Closure]; [`Interp] is the oracle; [`Native]
    emits, compiles and dynlinks a standalone OCaml kernel — see
    {!Native} for the build cache and its environment knobs).

    [faults] injects a deterministic adversarial transport (see {!Fault}):
    message delay, in-flight reordering, duplicate delivery, bounded
    drop-with-retransmit (priced by the {!Machine.t} timeout/retry/backoff
    fields) and per-processor straggler clock skew. Delivery matches
    per-channel sequence numbers, so computed values are identical to the
    fault-free run — only timing, retransmission and duplicate statistics
    change.

    [domains] (default [Par.domains ()], i.e. [DHPF_DOMAINS] or 1) shards
    the processor lanes across an OCaml domain pool
    ({!Runtime.sched_run_par}); any count produces bit-identical values,
    clocks and counters. *)

val nprocs : sim -> int
(** Actual processor count (the product of the grid extents). *)

val phys_of_vp : sim -> int list -> int
(** Linear physical processor id owning a virtual-processor coordinate
    tuple (identity for concrete distributions; block-start / template-cell
    decoding for the symbolic VP modes of §4). *)

type stats = Runtime.stats = {
  s_time : float;  (** simulated execution time: max processor clock *)
  s_msgs : int;
  s_bytes : int;
  s_elems : int;  (** total elements communicated *)
  s_proc_times : float array;
  s_retransmits : int;  (** dropped transmissions re-sent after a timeout *)
  s_timeouts : int;  (** retransmission timers fired *)
  s_dups_delivered : int;  (** duplicate copies detected and discarded *)
  s_max_mailbox : int;  (** peak in-flight depth of any one channel *)
  s_crashes : int;  (** fail-stop crashes suffered (checkpoint runs only) *)
  s_recoveries : int;  (** successful restarts from a snapshot or scratch *)
  s_ckpts : int;  (** coordinated checkpoints taken on the final attempt *)
  s_ckpt_bytes : int;  (** encoded size of those checkpoints *)
  s_lost_work : float;
      (** simulated seconds of work discarded by rollbacks, summed over
          processors and recoveries *)
}

(** {1 Deadlock diagnostics}

    When the scheduler can make no progress, {!run} raises {!Deadlock} with
    a structured diagnosis instead of a flat string: every stuck processor
    with its simulated clock and what it waits on (event id, source VP and
    physical pid, next expected sequence number, undeliverable channel
    depth), the extracted wait-for cycle when one exists, and the channels
    still holding undelivered messages. *)

type wait_reason = Runtime.wait_reason =
  | WaitRecv of {
      wr_event : int;
      wr_src_vp : int list;
      wr_src_pid : int;
      wr_expected_seq : int;
      wr_queued : int;
    }
  | WaitReduce
  | WaitReduceArr of string

type proc_wait = Runtime.proc_wait = {
  w_pid : int;
  w_clock : float;
  w_reason : wait_reason;
}

type diagnostic = Runtime.diagnostic = {
  dg_waiting : proc_wait list;
  dg_cycle : int list;
  dg_undelivered : (int * int list * int list * int) list;
  dg_max_mailbox : int;
}

exception Deadlock of diagnostic

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string

val run : sim -> stats
(** Execute the program on every processor to completion. Each sim is
    single-use: running it a second time would start from stale clocks,
    sequence numbers and array contents, so a second call raises {!Error}.
    @raise Deadlock when no processor can make progress.
    @raise Error on an illegal access, unbound name, or re-run. *)

val get_elem : sim -> string -> int list -> float
(** Element value after execution, read from its owning processor. *)

val get_scalar : sim -> string -> float
(** Replicated scalar value (processor 0's copy). *)

(** {1 Communication metrics} *)

type comm_cell = Runtime.comm_cell = {
  cm_event : int;  (** communication event id *)
  cm_src : int;  (** sending physical processor *)
  cm_dst : int;  (** [cm_src = cm_dst]: local copy between co-located VPs *)
  cm_msgs : int;
  cm_elems : int;
  cm_bytes : int;  (** [cm_elems * elem_bytes] *)
}

val comm_cells : sim -> comm_cell list
(** Measured point-to-point communication table after {!run}, sorted by
    (event, src, dst) — one row per pair that carried traffic. Requires
    [Obs.Metrics] to have been enabled when the sim was built (empty
    otherwise). Per-pair counts never re-increment on retransmission or
    duplicate delivery, so the table is invariant under fault injection;
    joined against {!Predict.comm} by [dhpfc run --check-comm]. *)

(** {1 Crash / checkpoint support}

    These expose the engine-independent hooks the {!Checkpoint} controller
    is built on; plain runs never need them. *)

exception Crash of { cp_pid : int; cp_op : int; cp_clock : float }
(** A scheduled fail-stop crash fired (same exception as {!Runtime.Crash}).
    Under plain {!run} — no recovery controller installed — it propagates
    here. *)

val transport : sim -> Runtime.transport
(** The sim's shared transport, for installing crash control, checkpoint
    triggers, or the [--max-events] watchdog bound. *)

val capture : sim -> Runtime.image
(** Deep value snapshot of the simulation: per-processor clocks, live
    bindings, all resident array elements, staged pack buffers, and the
    transport state (sequence counters, in-flight messages, counters).
    Keys are sorted, so within one engine two captures of the same
    deterministic execution point are structurally equal — the property
    the snapshot round-trip and rollback-verification checks rely on.
    (The two engines represent residency differently, so images are only
    compared within an engine, never across engines.) *)

val clocks : sim -> float array
(** Per-processor virtual clocks (a fresh array). *)

val set_clocks : sim -> float -> unit
(** Set every processor's clock to one value — the restart barrier after a
    recovery. Values never depend on clocks (delivery is sequence-matched),
    so a uniform shift cannot change results. *)

val charge : sim -> float -> unit
(** Add a cost to every processor's clock — the coordinated checkpoint
    write, paid per processor without synchronizing them. *)
