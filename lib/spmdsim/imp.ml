(* Imperative kernel IR for the native engine.

   [lower] flattens an [Spmd] program into loops over integer ranges,
   float-slot loads/stores into the dense owned-section arrays of
   {!Compile}, pack/unpack of communication buffers, and explicit
   send/recv/reduce operations priced by {!Machine}. All name resolution
   happens here, once: integer names become [r_int] slots, replicated
   scalars become [r_fval] slots, arrays become store ids, global
   parameters fold into constants, and machine costs become literals
   attached to the nodes that charge them. The result is what {!Emit}
   prints as a standalone OCaml program.

   Slot allocation replicates {!Compile.make}'s traversal order exactly
   ([m$k], [vm$k], declared scalars, assigned scalars, main, then
   subroutines in declaration order) so the kernel's slot numbers index the
   very arrays the closure engine builds; {!Native.make} asserts the two
   tables agree.

   Lowering also runs an interval analysis ({!Iset.Codegen.interval_of_expr})
   over every subscript: a dimension whose index provably stays inside the
   array's declared bounds is marked [da_proven], licensing an unchecked
   access in the emitted kernel. Proofs never change observable behavior —
   they only remove comparisons that cannot fire. *)

open Dhpf

let errf = Runtime.errf

(* ------------------------------------------------------------------ *)
(* IR                                                                  *)
(* ------------------------------------------------------------------ *)

(** Integer expressions, constant-folded, over [r_int] slots. *)
type iexpr =
  | IConst of int
  | ISlot of int * string  (* slot, source name (for readability) *)
  | IUnbound of string  (* unbound name: errors when evaluated *)
  | IAdd of iexpr * iexpr
  | ISub of iexpr * iexpr
  | IMul of int * iexpr
  | IFloorDiv of iexpr * int
  | ICeilDiv of iexpr * int
  | IMax of iexpr list
  | IMin of iexpr list
  | IAlignUp of iexpr * iexpr * iexpr

type icond =
  | BConst of bool
  | BGeq0 of iexpr
  | BEq0 of iexpr
  | BDivides of int * iexpr
  | BAnd of icond list
  | BOr of icond list
  | BNot of icond

type dim_access = {
  da_idx : iexpr;
  da_lo : int;  (* declared lower bound of the dimension *)
  da_ext : int;  (* extent *)
  da_stride : int;  (* global linear (column-major) stride *)
  da_proven : bool;  (* interval analysis proved lo <= idx <= hi *)
}

type access_plan = {
  ap_aid : int;
  ap_arr : string;
  ap_dims : dim_access array;
}

(** Fallback of a scalar read whose slot is uninitialized (or absent). *)
type ffall = FbSlot of int * string | FbConst of float | FbUnbound of string

type kfexpr =
  | KFConst of float
  | KFOfInt of iexpr
  | KFScalar of { slot : int option; fallback : ffall }
  | KFLoad of {
      ap : access_plan;
      aname : string;  (* access mode name, for the miss error *)
      checked : bool;
      flop : float;
      check : float;
    }
  | KFNeg of kfexpr
  | KFBin of { op : Hpf.Ast.fbinop; a : kfexpr; b : kfexpr; flop : float }
  | KFIntrin of { name : string; args : kfexpr list; flop : float }

type kfcond =
  | KFCmp of Hpf.Ast.cmpop * kfexpr * kfexpr
  | KFAnd of kfcond * kfcond
  | KFOr of kfcond * kfcond
  | KFNot of kfcond

type kstmt =
  | KFor of {
      slot : int;
      var : string;
      lo : iexpr;
      hi : iexpr;
      step : iexpr;
      body : kstmt list;
      loopt : float;
    }
  | KIf of { cond : icond; body : kstmt list; guard : float }
  | KFIf of { cond : kfcond; then_ : kstmt list; else_ : kstmt list; guard : float }
  | KSetScalar of { slot : int; value : kfexpr; flop : float }
  | KStore of {
      ap : access_plan;
      value : kfexpr;
      access : Spmd.access;
      flop : float;
      check : float;
    }
  | KPack of { event : int; arr : string; ap : access_plan }
  | KSend of { event : int; dest : iexpr list; inplace : bool; rect : bool }
  | KRecv of { event : int; src : iexpr list; recv_o : float; unpack : float }
  | KReduceArr of { name : string; op : Spmd.reduce_op }
  | KReduceScalar of { slot : int; op : Spmd.reduce_op }
  | KCall of string
  | KUnknownSub of string  (* Call to an undefined subroutine: runtime error *)

type kernel = {
  k_main : kstmt list;
  k_subs : (string * kstmt list) list;  (* declaration order *)
  k_nint : int;
  k_nfloat : int;
  k_vm_slots : int array;
  k_islots : (string * int) list;  (* sorted, for the table cross-check *)
  k_fslots : (string * int) list;
  k_proven : int;  (* subscript dimensions proved in-bounds *)
  k_unproven : int;  (* subscript dimensions that keep the runtime check *)
}

(* ------------------------------------------------------------------ *)
(* Lowering context                                                    *)
(* ------------------------------------------------------------------ *)

type lctx = {
  l_genv : (string, int) Hashtbl.t;
  l_machine : Machine.t;
  l_islots : (string, int) Hashtbl.t;
  mutable l_nint : int;
  l_fslots : (string, int) Hashtbl.t;
  mutable l_nfloat : int;
  l_arrays : (string, int) Hashtbl.t;
  l_ameta : Runtime.ameta array;
  l_inplace : (int, unit) Hashtbl.t;
  l_rect : (int, unit) Hashtbl.t;
  l_subs : (string, unit) Hashtbl.t;  (* defined subroutine names *)
  l_ranges : (string, Iset.Codegen.interval) Hashtbl.t;
      (* interval bindings for enclosing loop variables and m$k *)
  mutable l_proven : int;
  mutable l_unproven : int;
}

(* identical allocate-on-miss discipline as Compile.islot/fslot *)
let islot ctx name =
  match Hashtbl.find_opt ctx.l_islots name with
  | Some s -> s
  | None ->
      let s = ctx.l_nint in
      ctx.l_nint <- s + 1;
      Hashtbl.replace ctx.l_islots name s;
      s

let fslot ctx name =
  match Hashtbl.find_opt ctx.l_fslots name with
  | Some s -> s
  | None ->
      let s = ctx.l_nfloat in
      ctx.l_nfloat <- s + 1;
      Hashtbl.replace ctx.l_fslots name s;
      s

(* interval environment: loop-bound names first; a name holding an integer
   slot but not currently loop-bound is dynamic (top); otherwise a global
   parameter is a constant; unknown names are unbounded *)
let ienv ctx s =
  match Hashtbl.find_opt ctx.l_ranges s with
  | Some iv -> iv
  | None ->
      if Hashtbl.mem ctx.l_islots s then Iset.Codegen.itv_top
      else (
        match Hashtbl.find_opt ctx.l_genv s with
        | Some v -> Iset.Codegen.itv_const v
        | None -> Iset.Codegen.itv_top)

let interval ctx e = Iset.Codegen.interval_of_expr (ienv ctx) e

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Mirrors Compile.cexpr: slots win over globals; the same constant folds
   happen here so the emitted literals equal the closure engine's folded
   constants. Integer evaluation is pure (no clock charges), so residual
   shape differences cannot affect observable behavior. *)
let rec lexpr ctx (e : Spmd.expr) : iexpr =
  let open Iset.Codegen in
  match e with
  | EInt k -> IConst k
  | EVar s -> (
      match Hashtbl.find_opt ctx.l_islots s with
      | Some slot -> ISlot (slot, s)
      | None -> (
          match Hashtbl.find_opt ctx.l_genv s with
          | Some v -> IConst v
          | None -> IUnbound s))
  | EAdd (a, b) -> (
      match (lexpr ctx a, lexpr ctx b) with
      | IConst x, IConst y -> IConst (x + y)
      | a, b -> IAdd (a, b))
  | ESub (a, b) -> (
      match (lexpr ctx a, lexpr ctx b) with
      | IConst x, IConst y -> IConst (x - y)
      | a, b -> ISub (a, b))
  | EMul (k, a) -> (
      match lexpr ctx a with IConst x -> IConst (k * x) | a -> IMul (k, a))
  | EFloorDiv (a, k) -> (
      match lexpr ctx a with
      | IConst x -> IConst (Iset.Lin.fdiv x k)
      | a -> IFloorDiv (a, k))
  | ECeilDiv (a, k) -> (
      match lexpr ctx a with
      | IConst x -> IConst (Iset.Lin.cdiv x k)
      | a -> ICeilDiv (a, k))
  | EMax es ->
      let ls = List.map (lexpr ctx) es in
      if List.for_all (function IConst _ -> true | _ -> false) ls then
        IConst
          (List.fold_left
             (fun m l -> match l with IConst k -> max m k | _ -> m)
             min_int ls)
      else IMax ls
  | EMin es ->
      let ls = List.map (lexpr ctx) es in
      if List.for_all (function IConst _ -> true | _ -> false) ls then
        IConst
          (List.fold_left
             (fun m l -> match l with IConst k -> min m k | _ -> m)
             max_int ls)
      else IMin ls
  | EAlignUp (e, target, k) -> (
      match (lexpr ctx e, lexpr ctx target, lexpr ctx k) with
      | IConst x, IConst t, IConst k -> IConst (x + Iset.Lin.pmod (t - x) k)
      | le, lt, lk -> IAlignUp (le, lt, lk))

let rec lcond ctx (c : Spmd.cond) : icond =
  let open Iset.Codegen in
  match c with
  | CTrue -> BConst true
  | CGeq0 e -> (
      match lexpr ctx e with IConst k -> BConst (k >= 0) | l -> BGeq0 l)
  | CEq0 e -> (match lexpr ctx e with IConst k -> BConst (k = 0) | l -> BEq0 l)
  | CDivides (k, e) -> (
      match lexpr ctx e with
      | IConst x -> BConst (Iset.Lin.pmod x k = 0)
      | l -> BDivides (k, l))
  | CAnd cs -> BAnd (List.map (lcond ctx) cs)
  | COr cs -> BOr (List.map (lcond ctx) cs)
  | CNot c -> BNot (lcond ctx c)

(* ------------------------------------------------------------------ *)
(* Access plans                                                        *)
(* ------------------------------------------------------------------ *)

let laccess ctx arr (idx : Spmd.expr list) : access_plan =
  let aid =
    match Hashtbl.find_opt ctx.l_arrays arr with
    | Some a -> a
    | None -> errf "unknown array %s" arr
  in
  let am = ctx.l_ameta.(aid) in
  let nd = Array.length am.Runtime.am_ext in
  if List.length idx <> nd then
    errf "array %s: %d subscripts for rank %d" am.Runtime.am_name
      (List.length idx) nd;
  let dims =
    Array.of_list
      (List.mapi
         (fun d e ->
           let lo = fst am.Runtime.am_bounds.(d) in
           let ext = am.Runtime.am_ext.(d) in
           let proven =
             Iset.Codegen.itv_within (interval ctx e) ~lo ~hi:(lo + ext - 1)
           in
           if proven then ctx.l_proven <- ctx.l_proven + 1
           else ctx.l_unproven <- ctx.l_unproven + 1;
           {
             da_idx = lexpr ctx e;
             da_lo = lo;
             da_ext = ext;
             da_stride = am.Runtime.am_strides.(d);
             da_proven = proven;
           })
         idx)
  in
  { ap_aid = aid; ap_arr = arr; ap_dims = dims }

(* ------------------------------------------------------------------ *)
(* Float expressions                                                   *)
(* ------------------------------------------------------------------ *)

let rec lfexpr ctx (e : Spmd.fexpr) : kfexpr =
  let m = ctx.l_machine in
  match e with
  | Spmd.FConst x -> KFConst x
  | Spmd.FOfInt ie -> (
      match lexpr ctx ie with
      | IConst k -> KFConst (float_of_int k)
      | l -> KFOfInt l)
  | Spmd.FScalar s ->
      let fallback =
        match Hashtbl.find_opt ctx.l_islots s with
        | Some slot -> FbSlot (slot, s)
        | None -> (
            match Hashtbl.find_opt ctx.l_genv s with
            | Some v -> FbConst (float_of_int v)
            | None -> FbUnbound s)
      in
      KFScalar { slot = Hashtbl.find_opt ctx.l_fslots s; fallback }
  | Spmd.FLoad { arr; idx; access } ->
      KFLoad
        {
          ap = laccess ctx arr idx;
          aname = Compile.access_name access;
          checked = access = Spmd.Checked;
          flop = m.Machine.flop_time;
          check = m.Machine.check_time;
        }
  | Spmd.FNeg a -> KFNeg (lfexpr ctx a)
  | Spmd.FBin (op, a, b) ->
      KFBin { op; a = lfexpr ctx a; b = lfexpr ctx b; flop = m.Machine.flop_time }
  | Spmd.FIntrin (f, args) ->
      KFIntrin
        { name = f; args = List.map (lfexpr ctx) args; flop = m.Machine.flop_time }

let rec lfcond ctx (c : Spmd.fcond) : kfcond =
  match c with
  | Spmd.FCmp (a, op, b) -> KFCmp (op, lfexpr ctx a, lfexpr ctx b)
  | Spmd.FAnd (a, b) -> KFAnd (lfcond ctx a, lfcond ctx b)
  | Spmd.FOr (a, b) -> KFOr (lfcond ctx a, lfcond ctx b)
  | Spmd.FNot a -> KFNot (lfcond ctx a)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lstmt ctx (s : Spmd.stmt) : kstmt list =
  let m = ctx.l_machine in
  match s with
  | Spmd.Comment _ -> []
  | Spmd.For { var; lo; hi; step; body } ->
      (* same order as Compile: bounds and step lowered before the loop
         variable's slot is (possibly) allocated *)
      let llo = lexpr ctx lo and lhi = lexpr ctx hi in
      let lst = lexpr ctx step in
      let slot = islot ctx var in
      (* bind the variable's interval for the body: when the body runs, the
         loop counter lies between the lower bound's minimum and the upper
         bound's maximum (steps are positive at runtime) *)
      let ivlo = interval ctx lo and ivhi = interval ctx hi in
      let saved = Hashtbl.find_opt ctx.l_ranges var in
      Hashtbl.replace ctx.l_ranges var
        { Iset.Codegen.ilo = ivlo.Iset.Codegen.ilo; ihi = ivhi.Iset.Codegen.ihi };
      let body = lstmts ctx body in
      (match saved with
      | Some iv -> Hashtbl.replace ctx.l_ranges var iv
      | None -> Hashtbl.remove ctx.l_ranges var);
      [
        KFor
          { slot; var; lo = llo; hi = lhi; step = lst; body; loopt = m.Machine.loop_time };
      ]
  | Spmd.If (c, body) ->
      let cond = lcond ctx c in
      [ KIf { cond; body = lstmts ctx body; guard = m.Machine.guard_time } ]
  | Spmd.FIf (c, t, e) ->
      let cond = lfcond ctx c in
      [
        KFIf
          {
            cond;
            then_ = lstmts ctx t;
            else_ = lstmts ctx e;
            guard = m.Machine.guard_time;
          };
      ]
  | Spmd.SetScalar (name, v) ->
      let value = lfexpr ctx v in
      let slot = fslot ctx name in
      [ KSetScalar { slot; value; flop = m.Machine.flop_time } ]
  | Spmd.Store { arr; idx; value; access } ->
      let ap = laccess ctx arr idx in
      let value = lfexpr ctx value in
      [
        KStore
          { ap; value; access; flop = m.Machine.flop_time; check = m.Machine.check_time };
      ]
  | Spmd.Pack { event; arr; idx } ->
      [ KPack { event; arr; ap = laccess ctx arr idx } ]
  | Spmd.Send { event; dest } ->
      [
        KSend
          {
            event;
            dest = List.map (lexpr ctx) dest;
            inplace = Hashtbl.mem ctx.l_inplace event;
            rect = Hashtbl.mem ctx.l_rect event;
          };
      ]
  | Spmd.Recv { event; src } ->
      [
        KRecv
          {
            event;
            src = List.map (lexpr ctx) src;
            recv_o = m.Machine.recv_overhead;
            unpack = m.Machine.unpack_time;
          };
      ]
  | Spmd.Reduce { scalar; op } ->
      if Hashtbl.mem ctx.l_arrays scalar then [ KReduceArr { name = scalar; op } ]
      else
        let slot = fslot ctx scalar in
        [ KReduceScalar { slot; op } ]
  | Spmd.Call f ->
      if Hashtbl.mem ctx.l_subs f then [ KCall f ] else [ KUnknownSub f ]

and lstmts ctx body = List.concat_map (lstmt ctx) body

(* ------------------------------------------------------------------ *)
(* Whole-program lowering                                              *)
(* ------------------------------------------------------------------ *)

let lower ?(machine = Machine.default) ~genv ~extents ~arrays ~ameta
    (prog : Spmd.program) : kernel =
  let inplace = Hashtbl.create 8 and rect = Hashtbl.create 8 in
  List.iter
    (fun (e : Spmd.event_info) ->
      if e.Spmd.ev_inplace then Hashtbl.replace inplace e.Spmd.ev_id ();
      if e.Spmd.ev_rect then Hashtbl.replace rect e.Spmd.ev_id ())
    prog.Spmd.events;
  let subs = Hashtbl.create 8 in
  List.iter (fun (name, _) -> Hashtbl.replace subs name ()) prog.Spmd.subs;
  let ctx =
    {
      l_genv = genv;
      l_machine = machine;
      l_islots = Hashtbl.create 32;
      l_nint = 0;
      l_fslots = Hashtbl.create 16;
      l_nfloat = 0;
      l_arrays = arrays;
      l_ameta = ameta;
      l_inplace = inplace;
      l_rect = rect;
      l_subs = subs;
      l_ranges = Hashtbl.create 16;
      l_proven = 0;
      l_unproven = 0;
    }
  in
  (* replicate Compile.make's slot preallocation order exactly *)
  let ndim = List.length prog.Spmd.proc_dims in
  let m_slots =
    Array.init ndim (fun k -> islot ctx (Printf.sprintf "m$%d" (k + 1)))
  in
  let vm_slots =
    Array.init ndim (fun k -> islot ctx (Printf.sprintf "vm$%d" (k + 1)))
  in
  List.iter (fun s -> ignore (fslot ctx s)) prog.Spmd.scalars;
  List.iter
    (fun s -> if not (Hashtbl.mem arrays s) then ignore (fslot ctx s))
    (Spmd.assigned_scalars prog);
  (* the processor's own grid coordinates are fixed for a whole run *)
  Array.iteri
    (fun k slot ->
      ignore slot;
      Hashtbl.replace ctx.l_ranges
        (Printf.sprintf "m$%d" (k + 1))
        (Iset.Codegen.itv ~lo:0 ~hi:(extents.(k) - 1) ()))
    m_slots;
  let base_ranges = Hashtbl.copy ctx.l_ranges in
  let k_main = lstmts ctx prog.Spmd.main in
  (* Compile.make registers one lazy per subroutine *name* (a duplicate
     definition replaces the earlier lazy) and forces them in declaration
     order, so the latest body of each name is compiled at the *first*
     occurrence of that name. Replicate both facts, or slot allocation
     order would diverge on shadowed subroutines. *)
  let latest = Hashtbl.create 8 in
  List.iter (fun (name, body) -> Hashtbl.replace latest name body) prog.Spmd.subs;
  let emitted = Hashtbl.create 8 in
  let k_subs =
    List.filter_map
      (fun (name, _) ->
        if Hashtbl.mem emitted name then None
        else begin
          Hashtbl.replace emitted name ();
          (* subroutines are lowered outside any loop context: only the base
             (grid-coordinate) interval bindings apply *)
          Hashtbl.reset ctx.l_ranges;
          Hashtbl.iter (Hashtbl.replace ctx.l_ranges) base_ranges;
          Some (name, lstmts ctx (Hashtbl.find latest name))
        end)
      prog.Spmd.subs
  in
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  {
    k_main;
    k_subs;
    k_nint = ctx.l_nint;
    k_nfloat = ctx.l_nfloat;
    k_vm_slots = vm_slots;
    k_islots = sorted ctx.l_islots;
    k_fslots = sorted ctx.l_fslots;
    k_proven = ctx.l_proven;
    k_unproven = ctx.l_unproven;
  }
