(* Differential resilience harness: serial oracle vs. SPMD execution under
   seeded fault schedules. See diffcheck.mli. *)

type divergence = {
  dv_seed : int option;
  dv_array : string;
  dv_index : int list;
  dv_expected : float;
  dv_got : float;
}

type outcome =
  | Pass of { runs : int }
  | Diverged of divergence
  | Crashed of { seed : int option; error : string }

exception Found of divergence

(* relative tolerance, same as the end-to-end suite: floating summation
   order in reductions is deterministic but may differ from the serial
   interpreter's association *)
let close want got = abs_float (want -. got) <= 1e-6 *. (abs_float want +. 1.0)

let compare_run ~seed (chk : Hpf.Sema.checked) (sref : Serial.result) sim =
  try
    Hashtbl.iter
      (fun aname (ai : Hpf.Sema.array_info) ->
        let bounds =
          List.map
            (fun (lo, hi) ->
              ( Serial.eval_iexpr sref.Serial.r_state lo,
                Serial.eval_iexpr sref.Serial.r_state hi ))
            ai.Hpf.Sema.adims
        in
        let rec go idx = function
          | [] ->
              let idx = List.rev idx in
              let want = Serial.get_elem sref aname idx in
              let got = Exec.get_elem sim aname idx in
              if not (close want got) then
                raise
                  (Found
                     {
                       dv_seed = seed;
                       dv_array = aname;
                       dv_index = idx;
                       dv_expected = want;
                       dv_got = got;
                     })
          | (lo, hi) :: rest ->
              for x = lo to hi do
                go (x :: idx) rest
              done
        in
        go [] bounds)
      chk.Hpf.Sema.env.Hpf.Sema.arrays;
    None
  with Found d -> Some d

let run ?engine ?machine ?(nprocs = 4) ?(params = []) ?opts ?domains
    ?(spec_of_seed = fun seed -> Fault.default ~seed) ~seeds
    (chk : Hpf.Sema.checked) : outcome =
  let compiled =
    match opts with
    | Some opts -> Dhpf.Gen.compile ~opts chk
    | None -> Dhpf.Gen.compile chk
  in
  let sref = Serial.run ?machine ~params chk in
  let one ?faults seed =
    match
      let sim =
        Exec.make ?engine ?machine ?faults ?domains ~nprocs ~params
          compiled.Dhpf.Gen.cprog
      in
      let _ = Exec.run sim in
      compare_run ~seed chk sref sim
    with
    | None -> Ok ()
    | Some d -> Error (Diverged d)
    | exception Exec.Deadlock d ->
        Error (Crashed { seed; error = Exec.diagnostic_to_string d })
    | exception Exec.Error msg -> Error (Crashed { seed; error = msg })
  in
  let rec go runs = function
    | [] -> Pass { runs }
    | (seed, faults) :: rest -> (
        match one ?faults seed with
        | Ok () -> go (runs + 1) rest
        | Error bad -> bad)
  in
  go 0
    ((None, None)
    :: List.map (fun s -> (Some s, Some (spec_of_seed s))) seeds)

(* ------------------------------------------------------------------ *)
(* Engine-differential mode: closure engine vs. tree-walking           *)
(* interpreter on the same program, seed and fault schedule.           *)
(* ------------------------------------------------------------------ *)

(* Unlike the serial comparison above — which tolerates reassociated
   floating summation — the two engines share the transport and charge
   clock time in the same order, so the contract here is exact:
   bit-identical element values and scalars, bit-identical simulated
   clocks, and identical message/byte/element/retransmit counters. *)
let bit_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* every Runtime.stats field as a (name, a, b) triple, compared bitwise by
   the engine- and domain-differential modes below *)
let stat_fields (a : Exec.stats) (b : Exec.stats) =
  [
    ("time", a.Exec.s_time, b.Exec.s_time);
    ("msgs", float_of_int a.s_msgs, float_of_int b.s_msgs);
    ("bytes", float_of_int a.s_bytes, float_of_int b.s_bytes);
    ("elems", float_of_int a.s_elems, float_of_int b.s_elems);
    ( "retransmits",
      float_of_int a.s_retransmits,
      float_of_int b.s_retransmits );
    ("timeouts", float_of_int a.s_timeouts, float_of_int b.s_timeouts);
    ( "dups_delivered",
      float_of_int a.s_dups_delivered,
      float_of_int b.s_dups_delivered );
    ( "max_mailbox",
      float_of_int a.s_max_mailbox,
      float_of_int b.s_max_mailbox );
    ("crashes", float_of_int a.s_crashes, float_of_int b.s_crashes);
    ("recoveries", float_of_int a.s_recoveries, float_of_int b.s_recoveries);
    ("ckpts", float_of_int a.s_ckpts, float_of_int b.s_ckpts);
    ("ckpt_bytes", float_of_int a.s_ckpt_bytes, float_of_int b.s_ckpt_bytes);
    ("lost_work", a.s_lost_work, b.s_lost_work);
  ]

let compare_engines ~seed bounds scalars si sc =
  try
    List.iter
      (fun (aname, dims) ->
        let rec go idx = function
          | [] ->
              let idx = List.rev idx in
              let want = Exec.get_elem si aname idx in
              let got = Exec.get_elem sc aname idx in
              if not (bit_equal want got) then
                raise
                  (Found
                     {
                       dv_seed = seed;
                       dv_array = aname;
                       dv_index = idx;
                       dv_expected = want;
                       dv_got = got;
                     })
          | (lo, hi) :: rest ->
              for x = lo to hi do
                go (x :: idx) rest
              done
        in
        go [] dims)
      bounds;
    List.iter
      (fun name ->
        match (Exec.get_scalar si name, Exec.get_scalar sc name) with
        | want, got ->
            if not (bit_equal want got) then
              raise
                (Found
                   {
                     dv_seed = seed;
                     dv_array = name;
                     dv_index = [];
                     dv_expected = want;
                     dv_got = got;
                   })
        (* a scalar the program declares but never assigns is absent from
           both engines' environments *)
        | exception Exec.Error _ -> ())
      scalars;
    None
  with Found d -> Some d

let engines ?machine ?(nprocs = 4) ?(params = []) ?opts ?domains
    ?(spec_of_seed = fun seed -> Fault.default ~seed) ~seeds
    (chk : Hpf.Sema.checked) : outcome =
  let compiled =
    match opts with
    | Some opts -> Dhpf.Gen.compile ~opts chk
    | None -> Dhpf.Gen.compile chk
  in
  let cprog = compiled.Dhpf.Gen.cprog in
  (* array extents, evaluated over the startup parameter environment *)
  let su = Runtime.setup ~nprocs ~params cprog in
  let geval = Runtime.eval_genv su.Runtime.su_genv in
  let bounds =
    List.map
      (fun (ad : Dhpf.Spmd.array_decl) ->
        ( ad.Dhpf.Spmd.ad_name,
          List.map (fun (lo, hi) -> (geval lo, geval hi)) ad.ad_bounds ))
      cprog.Dhpf.Spmd.arrays
  in
  let one ?faults seed =
    match
      let si =
        Exec.make ~engine:`Interp ?machine ?faults ?domains ~nprocs ~params
          cprog
      in
      let sti = Exec.run si in
      (* each engine under test runs on its own transport but sees the
         identical fault schedule, and must match the interpreter exactly:
         counters, per-processor clocks, per-pair communication cells,
         then every element and scalar bit for bit *)
      let against engine =
        let label = Exec.engine_to_string engine in
        let sc =
          Exec.make ~engine ?machine ?faults ?domains ~nprocs ~params cprog
        in
        let stc = Exec.run sc in
        match
          List.find_opt
            (fun (_, a, b) -> not (bit_equal a b))
            (stat_fields sti stc)
        with
        | Some (field, a, b) ->
            Some
              (Crashed
                 {
                   seed;
                   error =
                     Printf.sprintf
                       "engine counter mismatch: %s interp=%.17g %s=%.17g"
                       field a label b;
                 })
        | None -> (
            let clock_bad = ref None in
            Array.iteri
              (fun p t ->
                if
                  !clock_bad = None
                  && not (bit_equal t stc.Exec.s_proc_times.(p))
                then clock_bad := Some p)
              sti.Exec.s_proc_times;
            match !clock_bad with
            | Some p ->
                Some
                  (Crashed
                     {
                       seed;
                       error =
                         Printf.sprintf
                           "engine clock mismatch: proc %d interp=%.17g %s=%.17g"
                           p
                           sti.Exec.s_proc_times.(p)
                           label stc.Exec.s_proc_times.(p);
                     })
            | None ->
                if Exec.comm_cells si <> Exec.comm_cells sc then
                  Some
                    (Crashed
                       {
                         seed;
                         error =
                           Printf.sprintf
                             "engine comm-cell mismatch: interp vs %s" label;
                       })
                else (
                  match
                    compare_engines ~seed bounds cprog.Dhpf.Spmd.scalars si sc
                  with
                  | Some d -> Some (Diverged d)
                  | None -> None))
      in
      (match against `Closure with
      | Some bad -> Some bad
      | None -> against `Native)
    with
    | None -> Ok ()
    | Some bad -> Error bad
    | exception Exec.Deadlock d ->
        Error (Crashed { seed; error = Exec.diagnostic_to_string d })
    | exception Exec.Error msg -> Error (Crashed { seed; error = msg })
  in
  let rec go runs = function
    | [] -> Pass { runs }
    | (seed, faults) :: rest -> (
        match one ?faults seed with
        | Ok () -> go (runs + 1) rest
        | Error bad -> bad)
  in
  go 0
    ((None, None)
    :: List.map (fun s -> (Some s, Some (spec_of_seed s))) seeds)

(* ------------------------------------------------------------------ *)
(* Domain-differential mode: the parallel scheduler at every domain    *)
(* count vs. the single-domain (sequential) run of the same engine.    *)
(* ------------------------------------------------------------------ *)

(* The parallel scheduler's contract is determinism, not approximation:
   sharding processor lanes across an OCaml domain pool must leave every
   array element, scalar, per-processor clock, counter and per-pair
   communication-table row bit-identical to the sequential schedule —
   fault-free and under every seeded fault schedule alike. *)
let domains ?(engine = `Closure) ?machine ?(nprocs = 4) ?(params = []) ?opts
    ?(domain_counts = [ 2; 4 ])
    ?(spec_of_seed = fun seed -> Fault.default ~seed) ~seeds
    (chk : Hpf.Sema.checked) : outcome =
  let compiled =
    match opts with
    | Some opts -> Dhpf.Gen.compile ~opts chk
    | None -> Dhpf.Gen.compile chk
  in
  let cprog = compiled.Dhpf.Gen.cprog in
  let su = Runtime.setup ~nprocs ~params cprog in
  let geval = Runtime.eval_genv su.Runtime.su_genv in
  let bounds =
    List.map
      (fun (ad : Dhpf.Spmd.array_decl) ->
        ( ad.Dhpf.Spmd.ad_name,
          List.map (fun (lo, hi) -> (geval lo, geval hi)) ad.ad_bounds ))
      cprog.Dhpf.Spmd.arrays
  in
  (* one fault schedule: run the single-domain reference once, then every
     requested domain count against it *)
  let one ?faults seed =
    match
      let s1 =
        Exec.make ~engine ?machine ?faults ~domains:1 ~nprocs ~params cprog
      in
      let st1 = Exec.run s1 in
      let cells1 = Exec.comm_cells s1 in
      let check d =
        let sd =
          Exec.make ~engine ?machine ?faults ~domains:d ~nprocs ~params cprog
        in
        let std = Exec.run sd in
        match
          List.find_opt
            (fun (_, a, b) -> not (bit_equal a b))
            (stat_fields st1 std)
        with
        | Some (field, a, b) ->
            Some
              (Crashed
                 {
                   seed;
                   error =
                     Printf.sprintf
                       "domain counter mismatch: %s 1-domain=%.17g \
                        %d-domain=%.17g"
                       field a d b;
                 })
        | None -> (
            let clock_bad = ref None in
            Array.iteri
              (fun p t1 ->
                if
                  !clock_bad = None
                  && not (bit_equal t1 std.Exec.s_proc_times.(p))
                then clock_bad := Some (p, t1, std.Exec.s_proc_times.(p)))
              st1.Exec.s_proc_times;
            match !clock_bad with
            | Some (p, t1, td) ->
                Some
                  (Crashed
                     {
                       seed;
                       error =
                         Printf.sprintf
                           "domain clock mismatch on processor %d: \
                            1-domain=%.17g %d-domain=%.17g"
                           p t1 d td;
                     })
            | None ->
                if Exec.comm_cells sd <> cells1 then
                  Some
                    (Crashed
                       {
                         seed;
                         error =
                           Printf.sprintf
                             "per-pair communication table differs at %d \
                              domain(s)"
                             d;
                       })
                else
                  (* dv_expected is the 1-domain value, dv_got the
                     d-domain value *)
                  match
                    compare_engines ~seed bounds cprog.Dhpf.Spmd.scalars s1
                      sd
                  with
                  | Some dv -> Some (Diverged dv)
                  | None -> None)
      in
      let rec go = function
        | [] -> None
        | d :: rest -> (
            match check d with None -> go rest | Some bad -> Some bad)
      in
      go domain_counts
    with
    | None -> Ok (List.length domain_counts)
    | Some bad -> Error bad
    | exception Exec.Deadlock d ->
        Error (Crashed { seed; error = Exec.diagnostic_to_string d })
    | exception Exec.Error msg -> Error (Crashed { seed; error = msg })
  in
  let rec go runs = function
    | [] -> Pass { runs }
    | (seed, faults) :: rest -> (
        match one ?faults seed with
        | Ok n -> go (runs + n) rest
        | Error bad -> bad)
  in
  go 0
    ((None, None) :: List.map (fun s -> (Some s, Some (spec_of_seed s))) seeds)

(* ------------------------------------------------------------------ *)
(* Crash-differential mode: checkpoint/restart recovery vs. the        *)
(* fault-free closure run of the same program.                         *)
(* ------------------------------------------------------------------ *)

(* The recovery contract is the strongest of the three: crashes plus
   coordinated checkpoint/restart must leave every element and scalar
   bit-identical to the fault-free run on BOTH engines, and the
   first-transmission-only per-pair communication table must be exactly
   fault-invariant (what keeps `--check-comm` exact under crashes). *)
let crashes ?machine ?(nprocs = 4) ?(params = []) ?opts ?domains
    ?(ckpt_every = 8)
    ?(spec_of_seed =
      fun seed -> { Fault.none with seed; crash_prob = 0.02; crash_max = 3 })
    ~seeds (chk : Hpf.Sema.checked) : outcome =
  let compiled =
    match opts with
    | Some opts -> Dhpf.Gen.compile ~opts chk
    | None -> Dhpf.Gen.compile chk
  in
  let cprog = compiled.Dhpf.Gen.cprog in
  let su = Runtime.setup ~nprocs ~params cprog in
  let geval = Runtime.eval_genv su.Runtime.su_genv in
  let bounds =
    List.map
      (fun (ad : Dhpf.Spmd.array_decl) ->
        ( ad.Dhpf.Spmd.ad_name,
          List.map (fun (lo, hi) -> (geval lo, geval hi)) ad.ad_bounds ))
      cprog.Dhpf.Spmd.arrays
  in
  match
    let sref =
      Exec.make ~engine:`Closure ?machine ?domains ~nprocs ~params cprog
    in
    let _ = Exec.run sref in
    let cells_ref = Exec.comm_cells sref in
    let one ~engine seed =
      let rep =
        Checkpoint.run ~engine ?machine ~faults:(spec_of_seed seed)
          ~ckpt_every ~nprocs ~params cprog
      in
      match
        compare_engines ~seed:(Some seed) bounds cprog.Dhpf.Spmd.scalars sref
          rep.Checkpoint.rp_sim
      with
      | Some d -> Error (Diverged d)
      | None ->
          if Exec.comm_cells rep.Checkpoint.rp_sim <> cells_ref then
            Error
              (Crashed
                 {
                   seed = Some seed;
                   error =
                     Printf.sprintf
                       "per-pair communication table not fault-invariant \
                        under crash recovery (%s engine, %d crash(es))"
                       (Exec.engine_to_string engine)
                       rep.Checkpoint.rp_stats.Runtime.s_crashes;
                 })
          else Ok ()
    in
    let rec go runs = function
      | [] -> Pass { runs }
      | (engine, seed) :: rest -> (
          match one ~engine seed with
          | Ok () -> go (runs + 1) rest
          | Error bad -> bad)
    in
    go 0
      (List.concat_map
         (fun s -> [ (`Interp, s); (`Closure, s) ])
         seeds)
  with
  | outcome -> outcome
  | exception Exec.Deadlock d ->
      Crashed { seed = None; error = Exec.diagnostic_to_string d }
  | exception Exec.Error msg -> Crashed { seed = None; error = msg }

let pp_outcome fmt = function
  | Pass { runs } -> Fmt.pf fmt "diffcheck: %d run(s) matched the serial oracle" runs
  | Diverged d ->
      Fmt.pf fmt
        "diffcheck: DIVERGENCE %s(%s): expected %.9g, got %.9g (%s)"
        d.dv_array
        (String.concat "," (List.map string_of_int d.dv_index))
        d.dv_expected d.dv_got
        (match d.dv_seed with
        | None -> "fault-free run"
        | Some s -> Printf.sprintf "fault seed %d" s)
  | Crashed { seed; error } ->
      Fmt.pf fmt "diffcheck: CRASH under %s:@.%s"
        (match seed with
        | None -> "fault-free run"
        | Some s -> Printf.sprintf "fault seed %d" s)
        error
