(* OCaml-source emitter for the native engine.

   [emit] prints an {!Imp.kernel} as a standalone compilation unit:
   straight-line OCaml over {!Compile}'s per-processor state record, with
   every loop a [while] over an [int ref], every array access an inlined
   address computation against the dense owned block, and every machine
   cost a hexadecimal float literal ([%h], bit-exact round trip). The unit
   registers its entry point with {!Native.register} at load time;
   {!Native} compiles it out-of-process and dynlinks the result.

   The contract is bit-identity with the closure engine: clock charges are
   issued at exactly {!Compile}'s points and in its order, float operands
   are let-sequenced in its evaluation order (FP arithmetic is not
   associative, so shapes matter, not just operand sets), and every cold
   path (dense-slot miss, bounds failure, unbound name, non-positive step,
   unknown subroutine) calls back into {!Compile}/{!Native} so failure
   messages are shared. [Array.unsafe_get]/[unsafe_set] is used where it
   is unconditionally safe — slot reads, post-check ownership tables — and
   a subscript's bounds comparison is dropped only when {!Imp}'s interval
   analysis proved it cannot fire. *)

open Imp

let spf = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* Literals                                                            *)
(* ------------------------------------------------------------------ *)

let pint k = if k >= 0 then string_of_int k else spf "(%d)" k

(* %h round-trips every finite float bit-exactly; infinities print as
   identifiers that are not literals, so name them explicitly *)
let pfloat x =
  match Float.classify_float x with
  | Float.FP_nan -> "Stdlib.nan"
  | Float.FP_infinite -> if x > 0.0 then "Stdlib.infinity" else "Stdlib.neg_infinity"
  | _ -> spf "(%h)" x

(* ------------------------------------------------------------------ *)
(* Clock accumulation                                                  *)
(* ------------------------------------------------------------------ *)

(* Compile's [tick] is [r_clock <- r_clock +. dt *. r_skew]: a call plus a
   boxed-float store into a mixed record, per machine-cost charge. Emitted
   kernels accumulate the clock in a local [float ref] instead (a flat
   one-field record — in-place update, no allocation) with the identical
   chain of [+. (dt *. sk)] operations, so the result is bit-equal; the
   local is flushed to [rt.r_clock] before anything that can observe it —
   an effect (send/recv/reduce suspends the fiber and the scheduler prices
   against live clocks) or a subroutine call (which accumulates its own) —
   and reloaded after, since the handler may have advanced it. Error paths
   abort the run, so a stale clock under them is unobservable. *)
let ptick x = spf "clk := !clk +. (%s *. sk);" (pfloat x)

let flush_clk = "rt.C.r_clock <- !clk;"
let reload_clk = "clk := rt.C.r_clock;"

(* ------------------------------------------------------------------ *)
(* Integer expressions                                                 *)
(* ------------------------------------------------------------------ *)

(* [env]: slots currently bound to a loop-local OCaml variable; any other
   slot reads the per-processor slot array (always in bounds — slots are
   allocated below the array size by construction; [ri] is the function
   prologue's hoist of [rt.r_int]) *)
let rec pe env (e : iexpr) : string =
  match e with
  | IConst k -> pint k
  | ISlot (s, _) -> (
      match List.assoc_opt s env with
      | Some v -> v
      | None -> spf "(Array.unsafe_get ri %d)" s)
  | IUnbound n -> spf "(N.unbound_int rt %S)" n
  | IAdd (a, b) -> spf "(%s + %s)" (pe env a) (pe env b)
  | ISub (a, b) -> spf "(%s - %s)" (pe env a) (pe env b)
  | IMul (k, a) -> spf "(%s * %s)" (pint k) (pe env a)
  | IFloorDiv (a, k) -> spf "(Iset.Lin.fdiv %s %s)" (pe env a) (pint k)
  | ICeilDiv (a, k) -> spf "(Iset.Lin.cdiv %s %s)" (pe env a) (pint k)
  | IMax [] -> "min_int"
  | IMax (e :: es) ->
      List.fold_left (fun acc e -> spf "(max %s %s)" acc (pe env e)) (pe env e) es
  | IMin [] -> "max_int"
  | IMin (e :: es) ->
      List.fold_left (fun acc e -> spf "(min %s %s)" acc (pe env e)) (pe env e) es
  | IAlignUp (a, t, k) ->
      (* each AlignUp's [au] is self-contained: nested occurrences shadow
         harmlessly inside their own parentheses *)
      spf "(let au = %s in au + Iset.Lin.pmod (%s - au) %s)" (pe env a) (pe env t)
        (pe env k)

let rec pb env (c : icond) : string =
  match c with
  | BConst true -> "true"
  | BConst false -> "false"
  | BGeq0 e -> spf "(%s >= 0)" (pe env e)
  | BEq0 e -> spf "(%s = 0)" (pe env e)
  | BDivides (k, e) -> spf "(Iset.Lin.pmod %s %s = 0)" (pe env e) (pint k)
  | BAnd [] -> "true"
  | BAnd cs -> "(" ^ String.concat " && " (List.map (pb env) cs) ^ ")"
  | BOr [] -> "false"
  | BOr cs -> "(" ^ String.concat " || " (List.map (pb env) cs) ^ ")"
  | BNot c -> spf "(not %s)" (pb env c)

(* ------------------------------------------------------------------ *)
(* Access sites                                                        *)
(* ------------------------------------------------------------------ *)

(* The inlined form of one Compile.caddr site, as a run of [let]s binding
   [slot] (and optionally [enc]); spliced into a parenthesized block, so
   the fixed internal names scope away (nested accesses close over their
   own). The prologue's per-array hoists carry the loop-invariant parts:
   [st_A] the store record, [dn_A] the dense-owned flag (computed against
   compile.ml's own empty-array constant — the literal [[||]] in a
   dynlinked unit is that unit's own static block, so a physical
   comparison here would diverge), [dm_A_d]/[ls_A_d] the ownership maps
   and data strides, [sd_A]/[ss_A] the dense block and side table.
   Ranks 1-3 evaluate all subscripts before checking (Compile's register
   specialization); higher ranks check per dimension as Compile's scratch
   loop does — the orders differ only in which of two errors wins, and we
   match Compile rank for rank. A dimension's comparison is emitted only
   when the interval analysis failed to prove it dead; the ownership-table
   reads after it are unconditionally safe either way (checked or proven
   in range).

   [enc] — the global linear index — is only consumed off the dense fast
   path (side-table stores, halo/miss lookups, pack staging), so sites
   that can skip it on a dense hit splice [access_enc] into just the
   branches that need it; the computation is pure int arithmetic, so
   deferring it cannot reorder an observable event. *)
let access_enc (ap : access_plan) : string =
  let enc_terms =
    List.mapi
      (fun d (da : dim_access) ->
        if da.da_stride = 1 then spf "u%d" d
        else spf "(u%d * %s)" d (pint da.da_stride))
      (Array.to_list ap.ap_dims)
  in
  String.concat " + " enc_terms

let access_lets ?(enc = false) env (ap : access_plan) : string =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let nd = Array.length ap.ap_dims in
  let a = ap.ap_aid in
  let check d (da : dim_access) =
    add "   let u%d = x%d - %s in\n" d d (pint da.da_lo);
    if not da.da_proven then
      add "   (if u%d < 0 || u%d >= %d then C.bounds_fail st_%d.C.st_am %d x%d);\n" d d
        da.da_ext a d d
  in
  if nd <= 3 then begin
    Array.iteri (fun d da -> add "let x%d = %s in\n   " d (pe env da.da_idx)) ap.ap_dims;
    Array.iteri check ap.ap_dims
  end
  else
    Array.iteri
      (fun d (da : dim_access) ->
        add "let x%d = %s in\n   " d (pe env da.da_idx);
        check d da)
      ap.ap_dims;
  if enc then add "   let enc = %s in\n" (access_enc ap);
  add "   let slot =\n";
  add "     if dn_%d then begin\n" a;
  Array.iteri
    (fun d _ -> add "       let l%d = Array.unsafe_get dm_%d_%d u%d in\n" d a d d)
    ap.ap_dims;
  let lconds = List.init nd (fun d -> spf "l%d >= 0" d) in
  let lterms =
    List.init nd (fun d -> if d = 0 then "l0" else spf "(l%d * ls_%d_%d)" d a d)
  in
  add "       if %s then %s else (-1)\n" (String.concat " && " lconds)
    (String.concat " + " lterms);
  add "     end\n     else (-1)\n   in\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Float expressions                                                   *)
(* ------------------------------------------------------------------ *)

let fbinop = function
  | Hpf.Ast.Add -> "+."
  | Hpf.Ast.Sub -> "-."
  | Hpf.Ast.Mul -> "*."
  | Hpf.Ast.Div -> "/."

let cmpop = function
  | Hpf.Ast.Lt -> "<"
  | Hpf.Ast.Le -> "<="
  | Hpf.Ast.Gt -> ">"
  | Hpf.Ast.Ge -> ">="
  | Hpf.Ast.Eq -> "="
  | Hpf.Ast.Ne -> "<>"

let rec pf env (e : kfexpr) : string =
  match e with
  | KFConst x -> pfloat x
  | KFOfInt ie -> spf "(float_of_int %s)" (pe env ie)
  | KFScalar { slot; fallback } -> (
      let fb =
        match fallback with
        | FbSlot (s, _) ->
            spf "(float_of_int %s)" (pe env (ISlot (s, "")))
        | FbConst x -> pfloat x
        | FbUnbound n -> spf "(N.unbound_int rt %S)" n
      in
      match slot with
      | Some s ->
          spf
            "(if Array.unsafe_get fvb %d then Array.unsafe_get fv %d else %s)"
            s s fb
      | None -> fb)
  | KFLoad { ap; aname; checked; flop; check } ->
      spf "(%s\n   %s   %sif slot >= 0 then Array.unsafe_get sd_%d slot\n   else C.load_miss rt %d ~aname:%S (%s))"
        (ptick flop) (access_lets env ap)
        (if checked then spf "%s\n   " (ptick check) else "")
        ap.ap_aid ap.ap_aid aname (access_enc ap)
  | KFNeg a -> spf "(-. %s)" (pf env a)
  | KFBin { op; a; b; flop } ->
      (* operands sequenced left then right, charge after both: Compile's
         order (FP is not associative; shape is part of the contract) *)
      spf "(let va = %s in\n   let vb = %s in\n   %s va %s vb)"
        (pf env a) (pf env b) (ptick flop) (fbinop op)
  | KFIntrin { name; args; flop } ->
      let lets =
        String.concat ""
          (List.mapi (fun i a -> spf "let a%d = %s in\n   " i (pf env a)) args)
      in
      let vars = List.mapi (fun i _ -> spf "a%d" i) args in
      spf "(%s\n   %sS.intrinsic %S [%s])" (ptick flop) lets name
        (String.concat "; " vars)

let rec pfc env (c : kfcond) : string =
  match c with
  | KFCmp (op, a, b) ->
      spf "(let ca = %s in\n   let cb = %s in\n   ca %s cb)" (pf env a) (pf env b)
        (cmpop op)
  | KFAnd (a, b) -> spf "(%s && %s)" (pfc env a) (pfc env b)
  | KFOr (a, b) -> spf "(%s || %s)" (pfc env a) (pfc env b)
  | KFNot a -> spf "(not %s)" (pfc env a)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

type est = { b : Buffer.t; mutable gen : int; sub_index : string -> int }

let gensym st base =
  let n = st.gen in
  st.gen <- n + 1;
  spf "%s%d" base n

let add_line st ind s =
  Buffer.add_string st.b ind;
  Buffer.add_string st.b s;
  Buffer.add_char st.b '\n'

let store_put a ap =
  spf "if slot >= 0 then Array.unsafe_set sd_%d slot x\n else Hashtbl.replace ss_%d (%s) x" a a
    (access_enc ap)

let rec estmt st ind env (s : kstmt) : unit =
  match s with
  | KFor { slot; var; lo; hi; step; body; loopt } -> (
      let n = st.gen in
      st.gen <- n + 1;
      let iv = spf "i%d" n and hv = spf "h%d" n and vv = spf "v%d" n in
      let benv = (slot, vv) :: env in
      match step with
      | IConst 1 ->
          add_line st ind (spf "let %s = %s in" hv (pe env hi));
          add_line st ind (spf "let %s = ref %s in" iv (pe env lo));
          add_line st ind (spf "while !%s <= %s do" iv hv);
          add_line st ind (spf "  let %s = !%s in" vv iv);
          add_line st ind (spf "  Array.unsafe_set ri %d %s;" slot vv);
          add_line st ind ("  " ^ ptick loopt);
          estmts st (ind ^ "  ") benv body;
          add_line st ind (spf "  incr %s" iv);
          add_line st ind "done;"
      | IConst k when k > 0 ->
          add_line st ind (spf "let %s = %s in" hv (pe env hi));
          add_line st ind (spf "let %s = ref %s in" iv (pe env lo));
          add_line st ind (spf "while !%s <= %s do" iv hv);
          add_line st ind (spf "  let %s = !%s in" vv iv);
          add_line st ind (spf "  Array.unsafe_set ri %d %s;" slot vv);
          add_line st ind ("  " ^ ptick loopt);
          estmts st (ind ^ "  ") benv body;
          add_line st ind (spf "  %s := !%s + %s" iv iv (pint k));
          add_line st ind "done;"
      | IConst _ ->
          (* statically non-positive step: evaluate the bounds (they may
             raise first, as in Compile), then fail *)
          add_line st ind (spf "let _ = %s in" (pe env lo));
          add_line st ind (spf "let _ = %s in" (pe env hi));
          add_line st ind (spf "N.bad_step rt %S;" var)
      | _ ->
          let lv = spf "l%dz" n and sv = spf "s%dz" n in
          add_line st ind (spf "let %s = %s in" lv (pe env lo));
          add_line st ind (spf "let %s = %s in" hv (pe env hi));
          add_line st ind (spf "let %s = %s in" sv (pe env step));
          add_line st ind (spf "(if %s <= 0 then N.bad_step rt %S);" sv var);
          add_line st ind (spf "let %s = ref %s in" iv lv);
          add_line st ind (spf "while !%s <= %s do" iv hv);
          add_line st ind (spf "  let %s = !%s in" vv iv);
          add_line st ind (spf "  Array.unsafe_set ri %d %s;" slot vv);
          add_line st ind ("  " ^ ptick loopt);
          estmts st (ind ^ "  ") benv body;
          add_line st ind (spf "  %s := !%s + %s" iv iv sv);
          add_line st ind "done;")
  | KIf { cond; body; guard } ->
      add_line st ind (ptick guard);
      add_line st ind (spf "(if %s then begin" (pb env cond));
      estmts st (ind ^ "  ") env body;
      add_line st ind "  ()";
      add_line st ind "end);"
  | KFIf { cond; then_; else_; guard } ->
      add_line st ind (ptick guard);
      add_line st ind (spf "(if %s then begin" (pfc env cond));
      estmts st (ind ^ "  ") env then_;
      add_line st ind "  ()";
      add_line st ind "end else begin";
      estmts st (ind ^ "  ") env else_;
      add_line st ind "  ()";
      add_line st ind "end);"
  | KSetScalar { slot; value; flop } ->
      add_line st ind (spf "(let x = %s in" (pf env value));
      add_line st ind (" " ^ ptick flop);
      add_line st ind (spf " Array.unsafe_set fv %d x;" slot);
      add_line st ind (spf " Array.unsafe_set fvb %d true);" slot)
  | KStore { ap; value; access; flop; check } ->
      let a = ap.ap_aid in
      add_line st ind (spf "(let x = %s in" (pf env value));
      add_line st ind (" " ^ ptick flop);
      add_line st ind (spf " %s" (access_lets env ap));
      (match access with
      | Dhpf.Spmd.Checked -> add_line st ind (" " ^ ptick check)
      | Dhpf.Spmd.Local ->
          add_line st ind
            (spf
               " (if C.st_sparse st_%d then begin\n%s    let enc = %s in\n%s    if not (C.owns_enc st_%d enc) then C.local_store_fail rt %d enc\n%s  end\n%s  else if slot < 0 then C.local_store_fail rt %d (%s));"
               a ind (access_enc ap) ind a a ind ind a (access_enc ap))
      | Dhpf.Spmd.Overlay | Dhpf.Spmd.Global -> ());
      add_line st ind (spf " %s);" (store_put a ap))
  | KPack { event; arr; ap } ->
      add_line st ind (spf "(%s" (access_lets ~enc:true env ap));
      add_line st ind
        (spf
           " let v = if slot >= 0 then Array.unsafe_get sd_%d slot else C.pack_miss rt %d enc in"
           ap.ap_aid ap.ap_aid);
      add_line st ind
        (spf " R.packbuf_push (Array.unsafe_get rt.C.r_packbufs %d) ~arr:%S enc v);"
           event arr)
  | KSend { event; dest; inplace; rect } ->
      let vars = List.map (fun e -> (gensym st "d", e)) dest in
      add_line st ind "(";
      List.iter (fun (v, e) -> add_line st ind (spf " let %s = %s in" v (pe env e))) vars;
      add_line st ind (" " ^ flush_clk);
      add_line st ind
        (spf " N.do_send ctx rt ~event:%d ~inplace:%b ~rect:%b [%s];" event inplace
           rect
           (String.concat "; " (List.map fst vars)));
      add_line st ind (" " ^ reload_clk ^ ");")
  | KRecv { event; src; recv_o; unpack } ->
      let vars = List.map (fun e -> (gensym st "r", e)) src in
      add_line st ind "(";
      List.iter (fun (v, e) -> add_line st ind (spf " let %s = %s in" v (pe env e))) vars;
      add_line st ind (" " ^ flush_clk);
      add_line st ind
        (spf " N.do_recv ctx rt ~event:%d ~recv_o:%s ~unpack:%s [%s];" event
           (pfloat recv_o) (pfloat unpack)
           (String.concat "; " (List.map fst vars)));
      add_line st ind (" " ^ reload_clk ^ ");")
  | KReduceArr { name; op } ->
      add_line st ind
        (spf "(%s N.do_reduce_arr %S %s; %s);" flush_clk name (reduce_op op)
           reload_clk)
  | KReduceScalar { slot; op } ->
      add_line st ind
        (spf "(%s N.do_reduce_scalar rt %d %s; %s);" flush_clk slot
           (reduce_op op) reload_clk)
  | KCall f ->
      add_line st ind
        (spf "(%s sub_%d ctx rt; %s);" flush_clk (st.sub_index f) reload_clk)
  | KUnknownSub f -> add_line st ind (spf "N.unknown_sub rt %S;" f)

and reduce_op = function
  | Dhpf.Spmd.RSum -> "SP.RSum"
  | Dhpf.Spmd.RMax -> "SP.RMax"
  | Dhpf.Spmd.RMin -> "SP.RMin"

and estmts st ind env body = List.iter (estmt st ind env) body

(* ------------------------------------------------------------------ *)
(* Whole-kernel emission                                               *)
(* ------------------------------------------------------------------ *)

(* array ids (with ranks) accessed by a function body, for the prologue's
   per-store hoists; the store records and their dmaps/lstride/data/side
   fields never change over a run — only array contents do — so binding
   them once per call is safe *)
let note acc (ap : access_plan) = Hashtbl.replace acc ap.ap_aid (Array.length ap.ap_dims)

let rec aids_fe acc (e : kfexpr) : unit =
  match e with
  | KFConst _ | KFOfInt _ | KFScalar _ -> ()
  | KFLoad { ap; _ } -> note acc ap
  | KFNeg a -> aids_fe acc a
  | KFBin { a; b; _ } ->
      aids_fe acc a;
      aids_fe acc b
  | KFIntrin { args; _ } -> List.iter (aids_fe acc) args

let rec aids_fc acc (c : kfcond) : unit =
  match c with
  | KFCmp (_, a, b) ->
      aids_fe acc a;
      aids_fe acc b
  | KFAnd (a, b) | KFOr (a, b) ->
      aids_fc acc a;
      aids_fc acc b
  | KFNot a -> aids_fc acc a

let rec aids_stmt acc (s : kstmt) : unit =
  match s with
  | KFor { body; _ } | KIf { body; _ } -> List.iter (aids_stmt acc) body
  | KFIf { cond; then_; else_; _ } ->
      aids_fc acc cond;
      List.iter (aids_stmt acc) then_;
      List.iter (aids_stmt acc) else_
  | KSetScalar { value; _ } -> aids_fe acc value
  | KStore { ap; value; _ } ->
      note acc ap;
      aids_fe acc value
  | KPack { ap; _ } -> note acc ap
  | KSend _ | KRecv _ | KReduceArr _ | KReduceScalar _ | KCall _
  | KUnknownSub _ ->
      ()

let emit_fn st header body =
  let add s = Buffer.add_string st.b s in
  add header;
  add "  ignore ctx; ignore rt;\n";
  (* hoists: skew and slot arrays are immutable fields, store records are
     fixed for the run; the clock accumulates locally (see [ptick]) *)
  add "  let sk = rt.C.r_skew in\n";
  add "  let clk = ref rt.C.r_clock in\n";
  add "  let ri = rt.C.r_int in\n";
  add "  let fv = rt.C.r_fval in\n";
  add "  let fvb = rt.C.r_fvalid in\n";
  add "  ignore sk; ignore ri; ignore fv; ignore fvb;\n";
  let acc = Hashtbl.create 8 in
  List.iter (aids_stmt acc) body;
  let aids = List.sort compare (Hashtbl.fold (fun a nd l -> (a, nd) :: l) acc []) in
  List.iter
    (fun (a, nd) ->
      add (spf "  let st_%d = Array.unsafe_get rt.C.r_stores %d in\n" a a);
      add (spf "  let dn_%d = st_%d.C.st_owned && not (C.st_sparse st_%d) in\n" a a a);
      add (spf "  let sd_%d = st_%d.C.st_data in\n" a a);
      add (spf "  let ss_%d = st_%d.C.st_side in\n" a a);
      add (spf "  ignore dn_%d; ignore sd_%d; ignore ss_%d;\n" a a a);
      for d = 0 to nd - 1 do
        add (spf "  let dm_%d_%d = Array.unsafe_get st_%d.C.st_dmaps %d in\n" a d a d);
        add (spf "  ignore dm_%d_%d;\n" a d);
        if d >= 1 then begin
          add (spf "  let ls_%d_%d = Array.unsafe_get st_%d.C.st_lstride %d in\n" a d a d);
          add (spf "  ignore ls_%d_%d;\n" a d)
        end
      done)
    aids;
  estmts st "  " [] body;
  add ("  " ^ flush_clk ^ "\n");
  add "  ()\n"

let emit (k : kernel) : string =
  let subs = Array.of_list k.k_subs in
  (* duplicate names resolve to the last definition, as in Compile *)
  let sub_index name =
    let idx = ref (-1) in
    Array.iteri (fun i (n, _) -> if n = name then idx := i) subs;
    !idx
  in
  let st = { b = Buffer.create 16384; gen = 0; sub_index } in
  let add s = Buffer.add_string st.b s in
  add "(* Kernel emitted by Spmdsim.Emit; compiled and dynlinked by\n";
  add "   Spmdsim.Native. Generated code - do not edit. *)\n\n";
  add "module C = Spmdsim.Compile\n";
  add "module R = Spmdsim.Runtime\n";
  add "module N = Spmdsim.Native\n";
  add "module S = Spmdsim.Serial\n";
  add "module SP = Dhpf.Spmd\n\n";
  add (spf "(* %d int slots, %d float slots; %d subscript dims proven in-bounds, %d checked *)\n"
         k.k_nint k.k_nfloat k.k_proven k.k_unproven);
  emit_fn st "let rec k_main (ctx : N.kctx) (rt : C.rt) : unit =\n" k.k_main;
  Array.iteri
    (fun i (name, body) ->
      emit_fn st
        (spf "\nand sub_%d (ctx : N.kctx) (rt : C.rt) : unit =\n  (* subroutine %s *)\n" i name)
        body)
    subs;
  add "\nlet () = N.register k_main\n";
  Buffer.contents st.b
