(** Cost model for the simulated message-passing machine.

    The defaults are loosely calibrated to a mid-1990s MPP of the IBM SP-2
    class (the paper's testbed): ~100 Mflop/s nodes, tens of microseconds of
    message latency, tens of MB/s of bandwidth. The absolute numbers do not
    matter for the reproduction — only the computation/communication ratios
    that shape Figure 7 — and they are fixed once here, not tuned per
    benchmark (see EXPERIMENTS.md). *)

type t = {
  flop_time : float;  (** seconds per floating-point operation *)
  check_time : float;  (** ownership check on a Checked reference *)
  guard_time : float;  (** evaluating a generated guard *)
  loop_time : float;  (** per-iteration loop overhead *)
  pack_time : float;  (** per element packed into a message buffer *)
  unpack_time : float;  (** per element unpacked on receipt *)
  alpha : float;  (** message start-up latency (seconds) *)
  beta : float;  (** per-byte transfer time (seconds) *)
  send_overhead : float;  (** CPU time consumed by a send *)
  recv_overhead : float;  (** CPU time consumed by a receive *)
  elem_bytes : int;  (** bytes per array element on the wire *)
  timeout : float;
      (** retransmission timer: how long a sender waits before concluding a
          transmission was dropped (fault injection only) *)
  retry_overhead : float;  (** CPU time consumed by one retransmission *)
  backoff : float;
      (** exponential backoff: the k-th consecutive retransmission of one
          message waits [timeout * backoff^k] *)
  ckpt_alpha : float;
      (** fixed per-processor cost of writing (or reading back) one
          coordinated checkpoint, independent of its size *)
  ckpt_beta : float;  (** per-byte checkpoint write/read time (seconds) *)
  detect_timeout : float;
      (** how long the group takes to conclude a silent processor has
          crashed (fail-stop detection latency) *)
  restart_latency : float;
      (** process restart cost: respawn, rejoin the group, reopen channels
          — charged once per recovery before the checkpoint is read back *)
}

let sp2 =
  {
    flop_time = 10e-9;
    check_time = 15e-9;
    guard_time = 5e-9;
    loop_time = 5e-9;
    pack_time = 40e-9;
    unpack_time = 40e-9;
    alpha = 40e-6;
    beta = 30e-9;
    send_overhead = 5e-6;
    recv_overhead = 5e-6;
    elem_bytes = 8;
    timeout = 500e-6;
    retry_overhead = 5e-6;
    backoff = 2.0;
    (* checkpoint/restart: a local-disk write at ~10 MB/s effective
       bandwidth with a 2 ms setup, millisecond-scale failure detection and
       restart — all large against the per-message costs above, so lost
       work and recovery latency are visible in the simulated clocks *)
    ckpt_alpha = 2e-3;
    ckpt_beta = 100e-9;
    detect_timeout = 5e-3;
    restart_latency = 20e-3;
  }

let default = sp2

(** Cost of an n-element message on the wire. *)
let msg_time t n = t.alpha +. (float_of_int (n * t.elem_bytes) *. t.beta)

(** Cost of a P-way all-reduce of one scalar (binary-tree up and down). *)
let allreduce_time t p =
  if p <= 1 then 0.0
  else
    let stages = int_of_float (ceil (log (float_of_int p) /. log 2.0)) in
    2.0 *. float_of_int stages *. msg_time t 1

(** Total sender-side wait for [k] consecutive dropped transmissions of one
    message: the timeout fires after each drop, with exponential backoff. *)
let retransmit_wait t k =
  let w = ref 0.0 in
  for i = 0 to k - 1 do
    w := !w +. (t.timeout *. (t.backoff ** float_of_int i))
  done;
  !w
