(* Deterministic fault schedules. Decisions are pure hashes of
   (seed, message identity, decision kind), not draws from a stateful PRNG,
   so they are independent of the order the scheduler happens to evaluate
   them in — the property the determinism tests pin down. *)

type spec = {
  seed : int;
  drop_prob : float;
  max_retries : int;
  dup_prob : float;
  delay_prob : float;
  delay_factor : float;
  reorder_prob : float;
  skew_max : float;
  crash_prob : float;
  crash_max : int;
}

let none =
  {
    seed = 0;
    drop_prob = 0.0;
    max_retries = 0;
    dup_prob = 0.0;
    delay_prob = 0.0;
    delay_factor = 0.0;
    reorder_prob = 0.0;
    skew_max = 1.0;
    crash_prob = 0.0;
    crash_max = 0;
  }

(* crashes stay off by default: a crash needs the checkpoint/restart
   controller ({!Checkpoint.run}) to recover, which plain [Exec.run] does
   not provide *)
let default ~seed =
  {
    seed;
    drop_prob = 0.15;
    max_retries = 4;
    dup_prob = 0.10;
    delay_prob = 0.30;
    delay_factor = 4.0;
    reorder_prob = 0.25;
    skew_max = 1.5;
    crash_prob = 0.0;
    crash_max = 0;
  }

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate spec : (unit, string) result =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let prob name p =
    if p < 0.0 || p > 1.0 || Float.is_nan p then
      Some (Printf.sprintf "%s probability %g outside [0,1]" name p)
    else None
  in
  let problems =
    List.filter_map Fun.id
      [
        (if spec.seed < 0 then
           Some (Printf.sprintf "seed %d is negative" spec.seed)
         else None);
        prob "drop" spec.drop_prob;
        prob "dup" spec.dup_prob;
        prob "delay" spec.delay_prob;
        prob "reorder" spec.reorder_prob;
        prob "crash" spec.crash_prob;
        (if spec.max_retries < 0 then
           Some (Printf.sprintf "max_retries %d is negative" spec.max_retries)
         else None);
        (if spec.delay_factor < 0.0 || Float.is_nan spec.delay_factor then
           Some (Printf.sprintf "delay_factor %g is negative" spec.delay_factor)
         else None);
        (if spec.skew_max < 1.0 || Float.is_nan spec.skew_max then
           Some
             (Printf.sprintf
                "skew_max %g < 1.0 (the skew multiplier is a slowdown factor)"
                spec.skew_max)
         else None);
        (if spec.crash_max < 0 then
           Some (Printf.sprintf "crash_max %d is negative" spec.crash_max)
         else None);
        (if spec.drop_prob > 0.0 && spec.max_retries = 0 then
           Some "drop_prob > 0 with max_retries = 0 would lose messages forever"
         else None);
      ]
  in
  match problems with
  | [] -> Ok ()
  | p :: _ -> err "invalid fault schedule: %s" p

(* ------------------------------------------------------------------ *)
(* Hashing                                                             *)
(* ------------------------------------------------------------------ *)

(* splitmix64 finalizer: a cheap, well-mixed 64-bit avalanche *)
let mix (z : int64) : int64 =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let hash_keys spec (keys : int list) : int64 =
  List.fold_left
    (fun acc k -> mix (Int64.add (Int64.mul acc 0x9e3779b97f4a7c15L) (Int64.of_int k)))
    (mix (Int64.add 0x2545f4914f6cdd1dL (Int64.of_int spec.seed)))
    keys

(* uniform in [0,1) from the top 53 bits *)
let u01 (h : int64) : float =
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

(* decision-kind salts keep draws for one message independent *)
let salt_drop = 1
let salt_dup = 2
let salt_delay = 3
let salt_reorder = 4
let salt_skew = 5
let salt_crash = 6

let draw spec ~salt keys = u01 (hash_keys spec (salt :: keys))

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

type msg_plan = {
  mp_drops : int;
  mp_dup : bool;
  mp_delay : float;
  mp_reorder : bool;
}

let no_faults = { mp_drops = 0; mp_dup = false; mp_delay = 0.0; mp_reorder = false }

let plan spec ~event ~src ~dst ~seq =
  let keys = [ event; src; dst; seq ] in
  let drops =
    if spec.drop_prob <= 0.0 then 0
    else begin
      (* each transmission attempt is dropped independently, bounded by
         max_retries so every message is eventually delivered *)
      let k = ref 0 in
      while
        !k < spec.max_retries
        && draw spec ~salt:salt_drop (!k :: keys) < spec.drop_prob
      do
        incr k
      done;
      !k
    end
  in
  let dup = draw spec ~salt:salt_dup keys < spec.dup_prob in
  let delay =
    if draw spec ~salt:salt_delay keys < spec.delay_prob then
      spec.delay_factor *. draw spec ~salt:salt_delay (0 :: keys)
    else 0.0
  in
  let reorder = draw spec ~salt:salt_reorder keys < spec.reorder_prob in
  { mp_drops = drops; mp_dup = dup; mp_delay = delay; mp_reorder = reorder }

let skew spec ~pid =
  if spec.skew_max <= 1.0 then 1.0
  else 1.0 +. ((spec.skew_max -. 1.0) *. draw spec ~salt:salt_skew [ pid ])

(* fail-stop crash decision for one (processor, operation) point: a pure
   hash like every other draw, so a replay that re-executes the same
   operations re-derives the same schedule — the recovery controller's
   consumed-crash bookkeeping (Runtime.crashctl) is what keeps an already
   fired crash from firing again during the replay *)
let crash spec ~pid ~op =
  spec.crash_prob > 0.0 && draw spec ~salt:salt_crash [ pid; op ] < spec.crash_prob

let describe spec =
  Printf.sprintf
    "seed=%d drop=%.2f(max %d retries) dup=%.2f delay=%.2fx%.1f reorder=%.2f \
     skew<=%.2f crash=%.3f(max %d)"
    spec.seed spec.drop_prob spec.max_retries spec.dup_prob spec.delay_prob
    spec.delay_factor spec.reorder_prob spec.skew_max spec.crash_prob
    spec.crash_max
