(** Differential resilience harness.

    Compiles a checked mini-HPF program, runs the serial oracle
    ({!Serial}), then executes the SPMD program on the simulated machine —
    first fault-free, then once per seeded fault schedule — and compares
    every array element (and declared scalar) against the oracle. The first
    divergence is reported as a structured result naming the array, the
    index, both values and the schedule seed that exposed it; a crash or
    deadlock under a schedule is reported with its seed and diagnostic.

    This is the adversarial extension of the test suite's serial-oracle
    differential testing: a compiler (or runtime-protocol) bug that only
    manifests under message drop, duplication, reordering or stragglers is
    pinned to a reproducible seed. *)

type divergence = {
  dv_seed : int option;  (** [None]: the fault-free run already diverged *)
  dv_array : string;
  dv_index : int list;
  dv_expected : float;  (** serial-oracle value *)
  dv_got : float;  (** simulated SPMD value *)
}

type outcome =
  | Pass of { runs : int }  (** every run matched the oracle *)
  | Diverged of divergence
  | Crashed of { seed : int option; error : string }
      (** a run raised (deadlock diagnostics are pretty-printed) *)

val run :
  ?engine:Exec.engine ->
  ?machine:Machine.t ->
  ?nprocs:int ->
  ?params:(string * int) list ->
  ?opts:Dhpf.Gen.options ->
  ?domains:int ->
  ?spec_of_seed:(int -> Fault.spec) ->
  seeds:int list ->
  Hpf.Sema.checked ->
  outcome
(** [run ~seeds chk] compiles [chk], validates the fault-free execution
    against the serial oracle, then replays under one fault schedule per
    seed ([spec_of_seed] defaults to {!Fault.default}). [nprocs] defaults
    to 4; [engine] selects the SPMD executor (default [`Closure]);
    [domains] shards the simulator's processor lanes across an OCaml
    domain pool (default [Par.domains ()]). *)

val engines :
  ?machine:Machine.t ->
  ?nprocs:int ->
  ?params:(string * int) list ->
  ?opts:Dhpf.Gen.options ->
  ?domains:int ->
  ?spec_of_seed:(int -> Fault.spec) ->
  seeds:int list ->
  Hpf.Sema.checked ->
  outcome
(** Engine-differential mode: run the closure engine and the tree-walking
    interpreter on the same program — fault-free first, then under one
    fault schedule per seed, both engines seeing the identical schedule —
    and require them to agree {e exactly}: bit-identical array elements
    and scalars, bit-identical simulated clocks, and identical
    message/byte/element/retransmit/duplicate counters. Any counter
    mismatch is reported as [Crashed] naming the field and both values; a
    value mismatch as [Diverged] ([dv_expected] is the interpreter's
    value, [dv_got] the closure engine's). This is the executable form of
    the engines' equivalence contract (see {!Exec.make}). *)

val domains :
  ?engine:Exec.engine ->
  ?machine:Machine.t ->
  ?nprocs:int ->
  ?params:(string * int) list ->
  ?opts:Dhpf.Gen.options ->
  ?domain_counts:int list ->
  ?spec_of_seed:(int -> Fault.spec) ->
  seeds:int list ->
  Hpf.Sema.checked ->
  outcome
(** Domain-differential mode: for each fault schedule (fault-free first,
    then one per seed) run the program once on a single domain — the
    sequential scheduler — and once per entry of [domain_counts] (default
    [\[2; 4\]]) with processor lanes sharded across that many OCaml
    domains, and require every parallel run to match the sequential one
    {e exactly}: bit-identical array elements, scalars and per-processor
    clocks, identical counters, and an identical per-pair communication
    table (live only when [Obs.Metrics] is enabled). This is the
    executable form of the parallel scheduler's determinism contract
    ({!Runtime.sched_run_par}); oversubscription is deliberate — domain
    counts above the physical core count must still be bit-identical.
    [engine] defaults to [`Closure]. *)

val crashes :
  ?machine:Machine.t ->
  ?nprocs:int ->
  ?params:(string * int) list ->
  ?opts:Dhpf.Gen.options ->
  ?domains:int ->
  ?ckpt_every:int ->
  ?spec_of_seed:(int -> Fault.spec) ->
  seeds:int list ->
  Hpf.Sema.checked ->
  outcome
(** Crash-differential mode: run a fault-free closure-engine oracle, then
    for each seed x engine run {!Checkpoint.run} under a pure-crash
    schedule ([spec_of_seed] defaults to [crash_prob = 0.02],
    [crash_max = 3]) with a coordinated checkpoint every [ckpt_every]
    (default 8) communication operations, and require the recovered run to
    match the oracle {e exactly}: bit-identical elements and scalars, and
    an identical per-pair communication table (first transmissions only,
    so crashes and replays must not perturb it — the property behind
    [--check-comm] staying exact under crash injection). The comm-table
    comparison is live only when [Obs.Metrics] is enabled; otherwise both
    tables are empty and only values are compared. [domains] applies to
    the fault-free reference run (recovery runs schedule crashes, which
    always take the sequential path). *)

val pp_outcome : Format.formatter -> outcome -> unit
