(* Closure-compiling SPMD execution engine (the default behind
   [Exec.make ~engine:`Closure]).

   The interpreter in {!Exec} re-matches the [Spmd] AST and resolves every
   name through [Hashtbl.find_opt] on every loop iteration, and keeps every
   array element in a per-processor [(int, float) Hashtbl.t]. This engine
   removes both costs with a one-time lowering pass per program:

   - every [stmt]/[fexpr]/[expr] tree becomes an OCaml closure over a small
     per-processor state record, with integer names (loop variables, [m$k],
     [vm$k]) resolved to slots of an [int array] and replicated scalars to
     slots of a [float array] once, at compile time; global parameters fold
     into compile-time constants (so most loop bounds and strides are
     literals inside the closures);
   - each processor's owned section of a distributed array is a dense
     [float array] block, addressed through per-dimension ownership tables
     built at setup from the layout descriptors — exact for block, cyclic
     and block-cyclic distributions under any alignment stride — with a
     small side hashtable only for received non-local (halo) values.

   The transport and scheduler are {!Runtime}'s, shared verbatim with the
   interpreter, and clock charges are issued in exactly the interpreter's
   order, so a closure-engine run produces bit-identical element values,
   clocks and message/byte/retransmit counters (the engine-differential
   property in the test suite asserts this, including under faults).

   Two deliberate semantic notes, both confined to error paths that the
   compiler never emits: a slot read of a loop variable after its loop
   exits sees the final value instead of the interpreter's unbound-name
   error, and arrays named in [Reduce] statements keep the sparse
   (hashtable) representation so the element-wise collective combines
   exactly the elements some processor has written — dense zero-initialized
   blocks could not distinguish "written 0.0" from "never written", which
   would change max/min reductions and the collective's priced element
   count. *)

open Dhpf

let errf = Runtime.errf

(* ------------------------------------------------------------------ *)
(* Per-processor storage                                                *)
(* ------------------------------------------------------------------ *)

type store = {
  st_am : Runtime.ameta;
  st_owned : bool;
      (* false: a FixedCoord layout dimension excludes this processor from
         holding any owned block *)
  st_dmaps : int array array;
      (* per data dimension: (x - lo_d) -> local index, or -1 if this
         processor does not own that coordinate *)
  st_lstride : int array;  (* per data dimension: stride into st_data *)
  st_data : float array;  (* dense owned block; [||] if sparse or unowned *)
  st_side : (int, float) Hashtbl.t;
      (* non-local values (received halos), keyed by global linear index;
         for sparse (reduction-target) arrays, all values live here *)
}

let st_sparse st = st.st_data == [||] && st.st_owned

(* decode a global linear index into the dense slot, or -1 if not owned *)
let slot_of_enc (st : store) (enc : int) : int =
  if not st.st_owned || st.st_data == [||] then -1
  else begin
    let ext = st.st_am.Runtime.am_ext in
    let nd = Array.length ext in
    let slot = ref 0 and rem = ref enc and ok = ref true in
    for d = 0 to nd - 1 do
      let u = !rem mod ext.(d) in
      rem := !rem / ext.(d);
      let l = st.st_dmaps.(d).(u) in
      if l < 0 then ok := false else slot := !slot + (l * st.st_lstride.(d))
    done;
    if !ok then !slot else -1
  end

let put_enc (st : store) enc v =
  let s = slot_of_enc st enc in
  if s >= 0 then st.st_data.(s) <- v else Hashtbl.replace st.st_side enc v

let get_enc (st : store) enc =
  let s = slot_of_enc st enc in
  if s >= 0 then st.st_data.(s)
  else match Hashtbl.find_opt st.st_side enc with Some v -> v | None -> 0.0

(* does this processor own the element at decoded coordinates? (used on the
   slow paths of sparse arrays, where there is no dense block to consult) *)
let owns_enc (st : store) enc =
  st.st_owned
  &&
  let ext = st.st_am.Runtime.am_ext in
  let nd = Array.length ext in
  let rem = ref enc and ok = ref true in
  for d = 0 to nd - 1 do
    let u = !rem mod ext.(d) in
    rem := !rem / ext.(d);
    if st.st_dmaps.(d).(u) < 0 then ok := false
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Per-processor runtime state                                          *)
(* ------------------------------------------------------------------ *)

type rt = {
  r_pid : int;
  r_int : int array;  (* integer slots: loop vars, m$k, vm$k *)
  r_fval : float array;  (* replicated-scalar slots *)
  r_fvalid : bool array;
      (* mirrors the interpreter's fenv membership: a slot is readable as a
         scalar only after initialization (declared) or first assignment *)
  r_stores : store array;  (* indexed by array id *)
  r_packbufs : Runtime.packbuf array;  (* indexed by event id *)
  mutable r_clock : float;
  r_skew : float;
  r_scratch : int array;  (* index scratch for arrays of rank > 3 *)
}

let tick rt dt = rt.r_clock <- rt.r_clock +. (dt *. rt.r_skew)

(* ------------------------------------------------------------------ *)
(* Compilation context                                                  *)
(* ------------------------------------------------------------------ *)

type cint = rt -> int
type cfloat = rt -> float
type cstmt = rt -> unit

(* integer values: constants fold at compile time (global parameters are
   fixed before lowering, so bounds like [n - 1] become literals) *)
type cival = KConst of int | KDyn of cint

type ctx = {
  x_prog : Spmd.program;
  x_genv : (string, int) Hashtbl.t;
  x_machine : Machine.t;
  x_tr : Runtime.transport;
  x_extents : int array;
  x_islots : (string, int) Hashtbl.t;
  mutable x_nint : int;
  x_fslots : (string, int) Hashtbl.t;
  mutable x_nfloat : int;
  x_arrays : (string, int) Hashtbl.t;  (* array name -> store id *)
  x_ameta : Runtime.ameta array;  (* by store id *)
  x_inplace : (int, unit) Hashtbl.t;
  x_rect : (int, unit) Hashtbl.t;
  x_subs : (string, cstmt Lazy.t) Hashtbl.t;
  x_vm_slots : int array;  (* slot of vm$k per processor dimension *)
  x_phys_of_vp : int list -> int;
}

let islot ctx name =
  match Hashtbl.find_opt ctx.x_islots name with
  | Some s -> s
  | None ->
      let s = ctx.x_nint in
      ctx.x_nint <- s + 1;
      Hashtbl.replace ctx.x_islots name s;
      s

let fslot ctx name =
  match Hashtbl.find_opt ctx.x_fslots name with
  | Some s -> s
  | None ->
      let s = ctx.x_nfloat in
      ctx.x_nfloat <- s + 1;
      Hashtbl.replace ctx.x_fslots name s;
      s

(* ------------------------------------------------------------------ *)
(* Integer expressions                                                  *)
(* ------------------------------------------------------------------ *)

let force = function KConst k -> fun _ -> k | KDyn f -> f

let rec cexpr ctx (e : Spmd.expr) : cival =
  let open Iset.Codegen in
  match e with
  | EInt k -> KConst k
  | EVar s -> (
      match Hashtbl.find_opt ctx.x_islots s with
      | Some slot -> KDyn (fun rt -> rt.r_int.(slot))
      | None -> (
          match Hashtbl.find_opt ctx.x_genv s with
          | Some v -> KConst v
          | None ->
              KDyn (fun rt -> errf "proc %d: unbound integer name %s" rt.r_pid s)))
  | EAdd (a, b) -> (
      match (cexpr ctx a, cexpr ctx b) with
      | KConst x, KConst y -> KConst (x + y)
      | KConst x, KDyn g -> KDyn (fun rt -> x + g rt)
      | KDyn f, KConst y -> KDyn (fun rt -> f rt + y)
      | KDyn f, KDyn g -> KDyn (fun rt -> f rt + g rt))
  | ESub (a, b) -> (
      match (cexpr ctx a, cexpr ctx b) with
      | KConst x, KConst y -> KConst (x - y)
      | KConst x, KDyn g -> KDyn (fun rt -> x - g rt)
      | KDyn f, KConst y -> KDyn (fun rt -> f rt - y)
      | KDyn f, KDyn g -> KDyn (fun rt -> f rt - g rt))
  | EMul (k, a) -> (
      match cexpr ctx a with
      | KConst x -> KConst (k * x)
      | KDyn f -> KDyn (fun rt -> k * f rt))
  | EFloorDiv (a, k) -> (
      match cexpr ctx a with
      | KConst x -> KConst (Iset.Lin.fdiv x k)
      | KDyn f -> KDyn (fun rt -> Iset.Lin.fdiv (f rt) k))
  | ECeilDiv (a, k) -> (
      match cexpr ctx a with
      | KConst x -> KConst (Iset.Lin.cdiv x k)
      | KDyn f -> KDyn (fun rt -> Iset.Lin.cdiv (f rt) k))
  | EMax es ->
      let cs = List.map (cexpr ctx) es in
      if List.for_all (function KConst _ -> true | _ -> false) cs then
        KConst
          (List.fold_left
             (fun m c -> match c with KConst k -> max m k | _ -> m)
             min_int cs)
      else
        let fs = Array.of_list (List.map force cs) in
        KDyn
          (fun rt ->
            let m = ref min_int in
            Array.iter (fun f -> m := max !m (f rt)) fs;
            !m)
  | EMin es ->
      let cs = List.map (cexpr ctx) es in
      if List.for_all (function KConst _ -> true | _ -> false) cs then
        KConst
          (List.fold_left
             (fun m c -> match c with KConst k -> min m k | _ -> m)
             max_int cs)
      else
        let fs = Array.of_list (List.map force cs) in
        KDyn
          (fun rt ->
            let m = ref max_int in
            Array.iter (fun f -> m := min !m (f rt)) fs;
            !m)
  | EAlignUp (e, target, k) -> (
      match (cexpr ctx e, cexpr ctx target, cexpr ctx k) with
      | KConst x, KConst t, KConst k -> KConst (x + Iset.Lin.pmod (t - x) k)
      | ce, ct, ck ->
          let fe = force ce and ft = force ct and fk = force ck in
          KDyn
            (fun rt ->
              let x = fe rt in
              x + Iset.Lin.pmod (ft rt - x) (fk rt)))

let cexpr_f ctx e = force (cexpr ctx e)

let rec ccond ctx (c : Spmd.cond) : rt -> bool =
  let open Iset.Codegen in
  match c with
  | CTrue -> fun _ -> true
  | CGeq0 e -> (
      match cexpr ctx e with
      | KConst k ->
          let b = k >= 0 in
          fun _ -> b
      | KDyn f -> fun rt -> f rt >= 0)
  | CEq0 e -> (
      match cexpr ctx e with
      | KConst k ->
          let b = k = 0 in
          fun _ -> b
      | KDyn f -> fun rt -> f rt = 0)
  | CDivides (k, e) -> (
      match cexpr ctx e with
      | KConst x ->
          let b = Iset.Lin.pmod x k = 0 in
          fun _ -> b
      | KDyn f -> fun rt -> Iset.Lin.pmod (f rt) k = 0)
  | CAnd cs ->
      let fs = List.map (ccond ctx) cs in
      fun rt -> List.for_all (fun f -> f rt) fs
  | COr cs ->
      let fs = List.map (ccond ctx) cs in
      fun rt -> List.exists (fun f -> f rt) fs
  | CNot c ->
      let f = ccond ctx c in
      fun rt -> not (f rt)

(* ------------------------------------------------------------------ *)
(* Element addressing                                                   *)
(* ------------------------------------------------------------------ *)

let access_name = function
  | Spmd.Local -> "Local"
  | Spmd.Overlay -> "Overlay"
  | Spmd.Checked -> "Checked"
  | Spmd.Global -> "Global"

let bounds_fail (am : Runtime.ameta) d x =
  let lo, hi = am.Runtime.am_bounds.(d) in
  errf "array %s: index %d outside [%d,%d] (dim %d)" am.Runtime.am_name x lo hi
    (d + 1)

(* One compiled access site: evaluates the subscripts, bounds-checks them in
   dimension order (matching the interpreter's [encode]), and produces the
   dense slot (or -1) and the global linear index. Ranks 1-3 are specialized
   to keep subscript values in registers; higher ranks use the per-processor
   scratch buffer (subscript expressions are integer-only, so an access
   cannot re-enter another access mid-computation). *)
type addr = { a_slot : int; a_enc : int }

let caddr ctx aid (idx : Spmd.expr list) : rt -> addr =
  let am = ctx.x_ameta.(aid) in
  let nd = Array.length am.Runtime.am_ext in
  if List.length idx <> nd then
    errf "array %s: %d subscripts for rank %d" am.Runtime.am_name
      (List.length idx) nd;
  let cidx = Array.of_list (List.map (cexpr_f ctx) idx) in
  let lo d = fst am.Runtime.am_bounds.(d) in
  let ext = am.Runtime.am_ext and str = am.Runtime.am_strides in
  let check d x =
    let u = x - lo d in
    if u < 0 || u >= ext.(d) then bounds_fail am d x;
    u
  in
  match nd with
  | 1 ->
      let i0 = cidx.(0) and lo0 = lo 0 and e0 = ext.(0) in
      fun rt ->
        let x0 = i0 rt in
        let u0 = x0 - lo0 in
        if u0 < 0 || u0 >= e0 then bounds_fail am 0 x0;
        let st = rt.r_stores.(aid) in
        let slot = if st.st_owned then st.st_dmaps.(0).(u0) else -1 in
        { a_slot = (if st.st_data == [||] then -1 else slot); a_enc = u0 }
  | 2 ->
      let i0 = cidx.(0) and i1 = cidx.(1) in
      let lo0 = lo 0 and lo1 = lo 1 in
      let e0 = ext.(0) and e1 = ext.(1) in
      let s1 = str.(1) in
      fun rt ->
        let x0 = i0 rt in
        let x1 = i1 rt in
        let u0 = x0 - lo0 in
        if u0 < 0 || u0 >= e0 then bounds_fail am 0 x0;
        let u1 = x1 - lo1 in
        if u1 < 0 || u1 >= e1 then bounds_fail am 1 x1;
        let st = rt.r_stores.(aid) in
        let slot =
          if st.st_owned && st.st_data != [||] then begin
            let l0 = st.st_dmaps.(0).(u0) and l1 = st.st_dmaps.(1).(u1) in
            if l0 >= 0 && l1 >= 0 then l0 + (l1 * st.st_lstride.(1)) else -1
          end
          else -1
        in
        { a_slot = slot; a_enc = u0 + (u1 * s1) }
  | 3 ->
      let i0 = cidx.(0) and i1 = cidx.(1) and i2 = cidx.(2) in
      let lo0 = lo 0 and lo1 = lo 1 and lo2 = lo 2 in
      let e0 = ext.(0) and e1 = ext.(1) and e2 = ext.(2) in
      let s1 = str.(1) and s2 = str.(2) in
      fun rt ->
        let x0 = i0 rt in
        let x1 = i1 rt in
        let x2 = i2 rt in
        let u0 = x0 - lo0 in
        if u0 < 0 || u0 >= e0 then bounds_fail am 0 x0;
        let u1 = x1 - lo1 in
        if u1 < 0 || u1 >= e1 then bounds_fail am 1 x1;
        let u2 = x2 - lo2 in
        if u2 < 0 || u2 >= e2 then bounds_fail am 2 x2;
        let st = rt.r_stores.(aid) in
        let slot =
          if st.st_owned && st.st_data != [||] then begin
            let l0 = st.st_dmaps.(0).(u0)
            and l1 = st.st_dmaps.(1).(u1)
            and l2 = st.st_dmaps.(2).(u2) in
            if l0 >= 0 && l1 >= 0 && l2 >= 0 then
              l0 + (l1 * st.st_lstride.(1)) + (l2 * st.st_lstride.(2))
            else -1
          end
          else -1
        in
        { a_slot = slot; a_enc = u0 + (u1 * s1) + (u2 * s2) }
  | _ ->
      fun rt ->
        let u = rt.r_scratch in
        for d = 0 to nd - 1 do
          u.(d) <- check d (cidx.(d) rt)
        done;
        let st = rt.r_stores.(aid) in
        let enc = ref 0 in
        for d = 0 to nd - 1 do
          enc := !enc + (u.(d) * str.(d))
        done;
        let slot =
          if st.st_owned && st.st_data != [||] then begin
            let s = ref 0 and ok = ref true in
            for d = 0 to nd - 1 do
              let l = st.st_dmaps.(d).(u.(d)) in
              if l < 0 then ok := false else s := !s + (l * st.st_lstride.(d))
            done;
            if !ok then !s else -1
          end
          else -1
        in
        { a_slot = slot; a_enc = !enc }

(* pretty-print the subscripts of an access for an error message (cold) *)
let idx_string (am : Runtime.ameta) enc =
  let nd = Array.length am.Runtime.am_ext in
  let parts = ref [] and rem = ref enc in
  for d = 0 to nd - 1 do
    let u = !rem mod am.Runtime.am_ext.(d) in
    rem := !rem / am.Runtime.am_ext.(d);
    parts := string_of_int (u + fst am.Runtime.am_bounds.(d)) :: !parts
  done;
  String.concat "," (List.rev !parts)

(* Cold paths, shared with the kernels the native engine emits: generated
   source inlines the hot access sequences but calls back here on a dense
   miss or an illegal access, so halo lookups, sparse-array defaults and
   failure messages stay identical across engines. *)

let load_miss (rt : rt) aid ~aname enc =
  let st = rt.r_stores.(aid) in
  match Hashtbl.find_opt st.st_side enc with
  | Some v -> v
  | None ->
      if st_sparse st && owns_enc st enc then 0.0
      else
        errf "proc %d: %s access to non-local %s(%s) with no received value"
          rt.r_pid aname st.st_am.Runtime.am_name (idx_string st.st_am enc)

let pack_miss (rt : rt) aid enc =
  let st = rt.r_stores.(aid) in
  match Hashtbl.find_opt st.st_side enc with
  | Some v -> v
  | None ->
      if st_sparse st && owns_enc st enc then 0.0
      else
        errf "proc %d: packing non-resident element %s(%s)" rt.r_pid
          st.st_am.Runtime.am_name (idx_string st.st_am enc)

let local_store_fail (rt : rt) aid enc =
  let st = rt.r_stores.(aid) in
  errf "proc %d: Local store to non-owned %s(%s)" rt.r_pid
    st.st_am.Runtime.am_name (idx_string st.st_am enc)

(* ------------------------------------------------------------------ *)
(* Float expressions                                                    *)
(* ------------------------------------------------------------------ *)

let rec cfexpr ctx (e : Spmd.fexpr) : cfloat =
  let m = ctx.x_machine in
  match e with
  | Spmd.FConst x -> fun _ -> x
  | Spmd.FOfInt ie -> (
      match cexpr ctx ie with
      | KConst k ->
          let x = float_of_int k in
          fun _ -> x
      | KDyn f -> fun rt -> float_of_int (f rt))
  | Spmd.FScalar s -> (
      let fallback =
        (* the interpreter falls back to the integer environment when a name
           is absent from fenv (e.g. FScalar wrapping a loop variable) *)
        match Hashtbl.find_opt ctx.x_islots s with
        | Some slot -> fun rt -> float_of_int rt.r_int.(slot)
        | None -> (
            match Hashtbl.find_opt ctx.x_genv s with
            | Some v ->
                let x = float_of_int v in
                fun _ -> x
            | None ->
                fun rt -> errf "proc %d: unbound integer name %s" rt.r_pid s)
      in
      match Hashtbl.find_opt ctx.x_fslots s with
      | Some slot ->
          fun rt -> if rt.r_fvalid.(slot) then rt.r_fval.(slot) else fallback rt
      | None -> fallback)
  | Spmd.FLoad { arr; idx; access } -> (
      let aid =
        match Hashtbl.find_opt ctx.x_arrays arr with
        | Some a -> a
        | None -> errf "unknown array %s" arr
      in
      let addr = caddr ctx aid idx in
      let flop = m.Machine.flop_time in
      let checked = access = Spmd.Checked in
      let check = m.Machine.check_time in
      let aname = access_name access in
      let miss rt (a : addr) = load_miss rt aid ~aname a.a_enc in
      if checked then fun rt ->
        tick rt flop;
        let a = addr rt in
        tick rt check;
        if a.a_slot >= 0 then rt.r_stores.(aid).st_data.(a.a_slot)
        else miss rt a
      else fun rt ->
        tick rt flop;
        let a = addr rt in
        if a.a_slot >= 0 then rt.r_stores.(aid).st_data.(a.a_slot)
        else miss rt a)
  | Spmd.FNeg a ->
      let f = cfexpr ctx a in
      fun rt -> -.f rt
  | Spmd.FBin (op, a, b) -> (
      let fa = cfexpr ctx a and fb = cfexpr ctx b in
      let flop = m.Machine.flop_time in
      match op with
      | Hpf.Ast.Add ->
          fun rt ->
            let x = fa rt in
            let y = fb rt in
            tick rt flop;
            x +. y
      | Hpf.Ast.Sub ->
          fun rt ->
            let x = fa rt in
            let y = fb rt in
            tick rt flop;
            x -. y
      | Hpf.Ast.Mul ->
          fun rt ->
            let x = fa rt in
            let y = fb rt in
            tick rt flop;
            x *. y
      | Hpf.Ast.Div ->
          fun rt ->
            let x = fa rt in
            let y = fb rt in
            tick rt flop;
            x /. y)
  | Spmd.FIntrin (f, args) ->
      let cargs = List.map (cfexpr ctx) args in
      let flop = m.Machine.flop_time in
      fun rt ->
        tick rt flop;
        Serial.intrinsic f (List.map (fun g -> g rt) cargs)

let rec cfcond ctx (c : Spmd.fcond) : rt -> bool =
  match c with
  | Spmd.FCmp (a, op, b) -> (
      let fa = cfexpr ctx a and fb = cfexpr ctx b in
      match op with
      | Hpf.Ast.Lt ->
          fun rt ->
            let x = fa rt in
            let y = fb rt in
            x < y
      | Hpf.Ast.Le ->
          fun rt ->
            let x = fa rt in
            let y = fb rt in
            x <= y
      | Hpf.Ast.Gt ->
          fun rt ->
            let x = fa rt in
            let y = fb rt in
            x > y
      | Hpf.Ast.Ge ->
          fun rt ->
            let x = fa rt in
            let y = fb rt in
            x >= y
      | Hpf.Ast.Eq ->
          fun rt ->
            let x = fa rt in
            let y = fb rt in
            x = y
      | Hpf.Ast.Ne ->
          fun rt ->
            let x = fa rt in
            let y = fb rt in
            x <> y)
  | Spmd.FAnd (a, b) ->
      let ca = cfcond ctx a and cb = cfcond ctx b in
      fun rt -> ca rt && cb rt
  | Spmd.FOr (a, b) ->
      let ca = cfcond ctx a and cb = cfcond ctx b in
      fun rt -> ca rt || cb rt
  | Spmd.FNot a ->
      let ca = cfcond ctx a in
      fun rt -> not (ca rt)

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let seq (fs : cstmt list) : cstmt =
  match fs with
  | [] -> fun _ -> ()
  | [ a ] -> a
  | [ a; b ] ->
      fun rt ->
        a rt;
        b rt
  | [ a; b; c ] ->
      fun rt ->
        a rt;
        b rt;
        c rt
  | l ->
      let a = Array.of_list l in
      fun rt -> Array.iter (fun f -> f rt) a

let my_vp ctx : rt -> int list =
  let slots = ctx.x_vm_slots in
  fun rt -> Array.to_list (Array.map (fun s -> rt.r_int.(s)) slots)

let rec cstmt ctx (s : Spmd.stmt) : cstmt =
  let m = ctx.x_machine in
  match s with
  | Spmd.Comment _ -> fun _ -> ()
  | Spmd.For { var; lo; hi; step; body } -> (
      let clo = cexpr ctx lo and chi = cexpr ctx hi in
      let cst = cexpr ctx step in
      let slot = islot ctx var in
      let cbody = cstmts ctx body in
      let loopt = m.Machine.loop_time in
      match cst with
      | KConst 1 ->
          let flo = force clo and fhi = force chi in
          fun rt ->
            let h = fhi rt in
            let i = ref (flo rt) in
            while !i <= h do
              rt.r_int.(slot) <- !i;
              tick rt loopt;
              cbody rt;
              incr i
            done
      | _ ->
          let flo = force clo and fhi = force chi and fst = force cst in
          fun rt ->
            let l = flo rt and h = fhi rt in
            let st = fst rt in
            if st <= 0 then
              errf "proc %d: non-positive loop step for %s" rt.r_pid var;
            let i = ref l in
            while !i <= h do
              rt.r_int.(slot) <- !i;
              tick rt loopt;
              cbody rt;
              i := !i + st
            done)
  | Spmd.If (c, body) ->
      let cc = ccond ctx c in
      let cbody = cstmts ctx body in
      let guard = m.Machine.guard_time in
      fun rt ->
        tick rt guard;
        if cc rt then cbody rt
  | Spmd.FIf (c, t, e) ->
      let cc = cfcond ctx c in
      let ct = cstmts ctx t and ce = cstmts ctx e in
      let guard = m.Machine.guard_time in
      fun rt ->
        tick rt guard;
        if cc rt then ct rt else ce rt
  | Spmd.SetScalar (name, v) ->
      let cv = cfexpr ctx v in
      let slot = fslot ctx name in
      let flop = m.Machine.flop_time in
      fun rt ->
        let x = cv rt in
        tick rt flop;
        rt.r_fval.(slot) <- x;
        rt.r_fvalid.(slot) <- true
  | Spmd.Store { arr; idx; value; access } -> (
      let aid =
        match Hashtbl.find_opt ctx.x_arrays arr with
        | Some a -> a
        | None -> errf "unknown array %s" arr
      in
      let addr = caddr ctx aid idx in
      let cv = cfexpr ctx value in
      let flop = m.Machine.flop_time in
      let put rt (a : addr) x =
        if a.a_slot >= 0 then rt.r_stores.(aid).st_data.(a.a_slot) <- x
        else Hashtbl.replace rt.r_stores.(aid).st_side a.a_enc x
      in
      match access with
      | Spmd.Checked ->
          let check = m.Machine.check_time in
          fun rt ->
            let x = cv rt in
            tick rt flop;
            let a = addr rt in
            tick rt check;
            put rt a x
      | Spmd.Local ->
          fun rt ->
            let x = cv rt in
            tick rt flop;
            let a = addr rt in
            let st = rt.r_stores.(aid) in
            let owned =
              if st_sparse st then owns_enc st a.a_enc else a.a_slot >= 0
            in
            if not owned then local_store_fail rt aid a.a_enc;
            put rt a x
      | Spmd.Overlay | Spmd.Global ->
          fun rt ->
            let x = cv rt in
            tick rt flop;
            let a = addr rt in
            put rt a x)
  | Spmd.Pack { event; arr; idx } ->
      let aid =
        match Hashtbl.find_opt ctx.x_arrays arr with
        | Some a -> a
        | None -> errf "unknown array %s" arr
      in
      let addr = caddr ctx aid idx in
      fun rt ->
        let a = addr rt in
        let v =
          if a.a_slot >= 0 then rt.r_stores.(aid).st_data.(a.a_slot)
          else pack_miss rt aid a.a_enc
        in
        Runtime.packbuf_push rt.r_packbufs.(event) ~arr a.a_enc v
  | Spmd.Send { event; dest } ->
      let cdest = List.map (cexpr_f ctx) dest in
      let inplace = Hashtbl.mem ctx.x_inplace event in
      let rect = Hashtbl.mem ctx.x_rect event in
      let myvp = my_vp ctx in
      let pvp = ctx.x_phys_of_vp in
      let tr = ctx.x_tr in
      fun rt ->
        let dest_vp = List.map (fun f -> f rt) cdest in
        let pl = Runtime.packbuf_flush rt.r_packbufs.(event) in
        Runtime.send tr
          ~tick:(fun dt -> tick rt dt)
          ~get_clock:(fun () -> rt.r_clock)
          ~pid:rt.r_pid ~dst_pid:(pvp dest_vp) ~event ~src_vp:(myvp rt)
          ~dst_vp:dest_vp ~inplace ~rect pl
  | Spmd.Recv { event; src } ->
      let csrc = List.map (cexpr_f ctx) src in
      let myvp = my_vp ctx in
      let arrays = ctx.x_arrays in
      let recv_o = m.Machine.recv_overhead in
      let unpack = m.Machine.unpack_time in
      let tr = ctx.x_tr in
      fun rt ->
        let src_vp = List.map (fun f -> f rt) csrc in
        let k =
          { Runtime.k_event = event; k_src = src_vp; k_dst = myvp rt }
        in
        let t0 = rt.r_clock in
        let msg = Effect.perform (Runtime.ERecv k) in
        tick rt recv_o;
        rt.r_clock <- Float.max rt.r_clock msg.Runtime.m_arrival;
        let pl = msg.Runtime.m_payload in
        let n = Array.length pl.Runtime.pl_idx in
        if not msg.Runtime.m_contig then tick rt (float_of_int n *. unpack);
        if n > 0 then begin
          let st =
            match Hashtbl.find_opt arrays pl.Runtime.pl_arr with
            | Some aid -> rt.r_stores.(aid)
            | None -> errf "unknown array %s" pl.Runtime.pl_arr
          in
          for i = 0 to n - 1 do
            put_enc st pl.Runtime.pl_idx.(i) pl.Runtime.pl_val.(i)
          done
        end;
        Runtime.trace_recv tr ~tid:rt.r_pid ~t0 ~t1:rt.r_clock k msg
  | Spmd.Reduce { scalar; op } ->
      if Hashtbl.mem ctx.x_arrays scalar then fun _ ->
        Effect.perform (Runtime.EReduceArr (scalar, op))
      else
        let slot = fslot ctx scalar in
        fun rt ->
          let mine = if rt.r_fvalid.(slot) then rt.r_fval.(slot) else 0.0 in
          let combined = Effect.perform (Runtime.EReduce (op, mine)) in
          rt.r_fval.(slot) <- combined;
          rt.r_fvalid.(slot) <- true
  | Spmd.Call f ->
      let sub =
        match Hashtbl.find_opt ctx.x_subs f with
        | Some l -> l
        | None -> lazy (fun rt -> errf "proc %d: unknown subroutine %s" rt.r_pid f)
      in
      fun rt -> (Lazy.force sub) rt

and cstmts ctx body = seq (List.map (cstmt ctx) body)

(* ------------------------------------------------------------------ *)
(* Setup: dense storage construction                                    *)
(* ------------------------------------------------------------------ *)

(* arrays named in Reduce statements keep the sparse representation (see
   the header comment) *)
let reduce_targets (prog : Spmd.program) =
  let tbl = Hashtbl.create 8 in
  Spmd.iter_program
    (function
      | Spmd.Reduce { scalar; _ } -> Hashtbl.replace tbl scalar ()
      | _ -> ())
    prog;
  tbl

(* build one processor's storage for one array: evaluate the ownership
   formula of every layout dimension over the full extent of its data
   dimension once, tabulating (global coordinate -> local index | -1) *)
let build_store ~geval ~(su : Runtime.setup) ~sparse pid
    (am : Runtime.ameta) (layout : Spmd.array_layout option) : store =
  let nd = Array.length am.Runtime.am_ext in
  let owned_dim = Array.init nd (fun d -> Array.make am.Runtime.am_ext.(d) true) in
  let owned = ref true in
  (match layout with
  | None -> ()
  | Some la ->
      List.iteri
        (fun k (dl : Spmd.dim_layout) ->
          let c = su.Runtime.su_coords.(pid).(k) in
          match dl.Spmd.source with
          | Spmd.AnyCoord -> ()
          | Spmd.FixedCoord e -> if geval e <> c then owned := false
          | Spmd.FromData { data_dim; _ } ->
              let lo = fst am.Runtime.am_bounds.(data_dim) in
              let scratch = Array.make nd 0 in
              for u = 0 to am.Runtime.am_ext.(data_dim) - 1 do
                scratch.(data_dim) <- lo + u;
                match Runtime.owner_coord ~eval:geval dl scratch with
                | None -> ()
                | Some o ->
                    if o <> c then owned_dim.(data_dim).(u) <- false
              done)
        la.Spmd.la_dims);
  let dmaps =
    Array.init nd (fun d ->
        let next = ref 0 in
        Array.map
          (fun own ->
            if own then begin
              let l = !next in
              incr next;
              l
            end
            else -1)
          owned_dim.(d))
  in
  let nown = Array.map (fun od -> Array.fold_left (fun n b -> if b then n + 1 else n) 0 od) owned_dim in
  let lstride = Array.make nd 1 in
  for d = 1 to nd - 1 do
    lstride.(d) <- lstride.(d - 1) * nown.(d - 1)
  done;
  let size = Array.fold_left ( * ) 1 nown in
  let data =
    if sparse || not !owned || size = 0 then [||] else Array.make size 0.0
  in
  {
    st_am = am;
    st_owned = !owned;
    st_dmaps = dmaps;
    st_lstride = lstride;
    st_data = data;
    st_side = Hashtbl.create 16;
  }

(* ------------------------------------------------------------------ *)
(* The compiled simulation                                              *)
(* ------------------------------------------------------------------ *)

type csim = {
  c_prog : Spmd.program;
  c_su : Runtime.setup;
  c_tr : Runtime.transport;
  c_rts : rt array;
  c_main : cstmt;
  c_arrays : (string, int) Hashtbl.t;
  c_ameta : Runtime.ameta array;
  c_layouts : Spmd.array_layout option array;
  c_islots : (string, int) Hashtbl.t;
  c_fslots : (string, int) Hashtbl.t;
  c_domains : int;
  mutable c_ran : bool;
}

let make ?(machine = Machine.default) ?faults ?(domains = Par.domains ())
    ~nprocs ?(params = []) (prog : Spmd.program) : csim =
  let su = Runtime.setup ?faults ~nprocs ~params prog in
  let geval e = Runtime.eval_genv su.Runtime.su_genv e in
  let tr = Runtime.transport_make ~machine ~faults ~nprocs:su.Runtime.su_total in
  let arrays = Hashtbl.create 16 in
  List.iteri (fun i (ad : Spmd.array_decl) -> Hashtbl.replace arrays ad.Spmd.ad_name i)
    prog.Spmd.arrays;
  let ameta =
    Array.of_list
      (List.map (fun ad -> Runtime.ameta ~eval:geval ad) prog.Spmd.arrays)
  in
  let layouts =
    Array.of_list (List.map (fun (ad : Spmd.array_decl) -> ad.Spmd.ad_layout) prog.Spmd.arrays)
  in
  let inplace = Hashtbl.create 8 and rect = Hashtbl.create 8 in
  List.iter
    (fun (e : Spmd.event_info) ->
      if e.Spmd.ev_inplace then Hashtbl.replace inplace e.Spmd.ev_id ();
      if e.Spmd.ev_rect then Hashtbl.replace rect e.Spmd.ev_id ())
    prog.Spmd.events;
  let phys_of_vp = Runtime.phys_of_vp ~eval:geval prog ~extents:su.Runtime.su_extents in
  let ctx =
    {
      x_prog = prog;
      x_genv = su.Runtime.su_genv;
      x_machine = machine;
      x_tr = tr;
      x_extents = su.Runtime.su_extents;
      x_islots = Hashtbl.create 32;
      x_nint = 0;
      x_fslots = Hashtbl.create 16;
      x_nfloat = 0;
      x_arrays = arrays;
      x_ameta = ameta;
      x_inplace = inplace;
      x_rect = rect;
      x_subs = Hashtbl.create 8;
      x_vm_slots = [||];
      x_phys_of_vp = phys_of_vp;
    }
  in
  (* pre-allocate coordinate and scalar slots so every compiled reference
     resolves to the same cell the startup code fills *)
  let ndim = List.length prog.Spmd.proc_dims in
  let m_slots = Array.init ndim (fun k -> islot ctx (Printf.sprintf "m$%d" (k + 1))) in
  let vm_slots = Array.init ndim (fun k -> islot ctx (Printf.sprintf "vm$%d" (k + 1))) in
  let ctx = { ctx with x_vm_slots = vm_slots } in
  List.iter (fun s -> ignore (fslot ctx s)) prog.Spmd.scalars;
  let declared = Hashtbl.copy ctx.x_fslots in
  List.iter
    (fun s -> if not (Hashtbl.mem arrays s) then ignore (fslot ctx s))
    (Spmd.assigned_scalars prog);
  (* lower subroutines through memoized lazies (so mutually recursive
     calls reference each other by name) and then the main program *)
  List.iter
    (fun (name, body) ->
      Hashtbl.replace ctx.x_subs name (lazy (cstmts ctx body)))
    prog.Spmd.subs;
  let c_main = cstmts ctx prog.Spmd.main in
  (* force every subroutine body now: compiling one may allocate new
     integer/scalar slots, and the per-processor slot arrays below are
     sized once — a body first compiled mid-run would index past them.
     (A Call closure forces the lazy at invocation, not here, so mutual
     recursion still terminates.) *)
  List.iter
    (fun (name, _) ->
      ignore (Lazy.force (Hashtbl.find ctx.x_subs name) : cstmt))
    prog.Spmd.subs;
  (* per-processor state, sized by the final slot counts *)
  let sparse = reduce_targets prog in
  let max_rank =
    Array.fold_left (fun n am -> max n (Array.length am.Runtime.am_ext)) 1 ameta
  in
  let n_events =
    let n = ref 0 in
    List.iter (fun (e : Spmd.event_info) -> n := max !n (e.Spmd.ev_id + 1)) prog.Spmd.events;
    Spmd.iter_program
      (function
        | Spmd.Pack { event; _ } | Spmd.Send { event; _ } | Spmd.Recv { event; _ } ->
            n := max !n (event + 1)
        | _ -> ())
      prog;
    !n
  in
  let rts =
    Array.init su.Runtime.su_total (fun pid ->
        let r_int = Array.make (max ctx.x_nint 1) 0 in
        Array.iteri (fun k s -> r_int.(s) <- su.Runtime.su_coords.(pid).(k)) m_slots;
        List.iter (fun (k, v) -> r_int.(vm_slots.(k)) <- v) su.Runtime.su_vm0.(pid);
        let r_fval = Array.make (max ctx.x_nfloat 1) 0.0 in
        let r_fvalid = Array.make (max ctx.x_nfloat 1) false in
        (* declared replicated scalars start initialized at zero, matching
           the interpreter's fenv pre-population *)
        Hashtbl.iter (fun _ s -> r_fvalid.(s) <- true) declared;
        let stores =
          Array.init (Array.length ameta) (fun aid ->
              build_store ~geval ~su
                ~sparse:(Hashtbl.mem sparse ameta.(aid).Runtime.am_name)
                pid ameta.(aid) layouts.(aid))
        in
        {
          r_pid = pid;
          r_int;
          r_fval;
          r_fvalid;
          r_stores = stores;
          r_packbufs = Array.init (max n_events 1) (fun _ -> Runtime.packbuf_create ());
          r_clock = 0.0;
          r_skew = su.Runtime.su_skew.(pid);
          r_scratch = Array.make max_rank 0;
        })
  in
  {
    c_prog = prog;
    c_su = su;
    c_tr = tr;
    c_rts = rts;
    c_main;
    c_arrays = arrays;
    c_ameta = ameta;
    c_layouts = layouts;
    c_islots = ctx.x_islots;
    c_fslots = ctx.x_fslots;
    c_domains = domains;
    c_ran = false;
  }

let nprocs cs = cs.c_su.Runtime.su_total

let phys_of_vp cs vp =
  Runtime.phys_of_vp
    ~eval:(Runtime.eval_genv cs.c_su.Runtime.su_genv)
    cs.c_prog ~extents:cs.c_su.Runtime.su_extents vp

(* element-wise array reduction over the (sparse) side tables: combine the
   values present on some processor, in pid order, and write the result
   back everywhere — the same algorithm, element set and combination order
   as the interpreter's collective *)
let reduce_arr cs name (op : Spmd.reduce_op) : int =
  let aid =
    match Hashtbl.find_opt cs.c_arrays name with
    | Some a -> a
    | None -> errf "unknown array %s" name
  in
  let tables = Array.map (fun rt -> rt.r_stores.(aid).st_side) cs.c_rts in
  let keys = Hashtbl.create 256 in
  Array.iter
    (fun tbl -> Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) tbl)
    tables;
  let combined = Hashtbl.create (Hashtbl.length keys) in
  Hashtbl.iter
    (fun k () ->
      let acc = ref None in
      Array.iter
        (fun tbl ->
          match Hashtbl.find_opt tbl k with
          | None -> ()
          | Some v ->
              acc :=
                Some
                  (match (!acc, op) with
                  | None, _ -> v
                  | Some a, Spmd.RSum -> a +. v
                  | Some a, Spmd.RMax -> Float.max a v
                  | Some a, Spmd.RMin -> Float.min a v))
        tables;
      match !acc with Some v -> Hashtbl.replace combined k v | None -> ())
    keys;
  Array.iter
    (fun tbl -> Hashtbl.iter (fun k v -> Hashtbl.replace tbl k v) combined)
    tables;
  Hashtbl.length combined

let run (cs : csim) : Runtime.stats =
  if cs.c_ran then
    errf "simulation already executed: Exec.run consumed this sim (build a fresh one with Exec.make)";
  cs.c_ran <- true;
  Runtime.sched_run_par ~domains:cs.c_domains
    {
      Runtime.h_nprocs = Array.length cs.c_rts;
      h_tr = cs.c_tr;
      h_clock = (fun p -> cs.c_rts.(p).r_clock);
      h_set_clock = (fun p t -> cs.c_rts.(p).r_clock <- t);
      h_body = (fun p -> cs.c_main cs.c_rts.(p));
      h_reduce_arr = reduce_arr cs;
      h_phys_of_vp = phys_of_vp cs;
    };
  Runtime.stats_of cs.c_tr
    ~proc_times:(Array.map (fun rt -> rt.r_clock) cs.c_rts)

(* ------------------------------------------------------------------ *)
(* Result inspection                                                    *)
(* ------------------------------------------------------------------ *)

(* the linear pid of the owner (replicated dims resolve to coordinate 0) *)
let owner_pid cs name (idx : int list) : int =
  let aid =
    match Hashtbl.find_opt cs.c_arrays name with
    | Some a -> a
    | None -> errf "unknown array %s" name
  in
  let geval = Runtime.eval_genv cs.c_su.Runtime.su_genv in
  match cs.c_layouts.(aid) with
  | None -> 0
  | Some la ->
      let idxa = Array.of_list idx in
      let coords =
        List.map
          (fun dl ->
            match Runtime.owner_coord ~eval:geval dl idxa with
            | None -> 0
            | Some o -> o)
          la.Spmd.la_dims
      in
      let pid = ref 0 and stride = ref 1 in
      List.iteri
        (fun k c ->
          pid := !pid + (c * !stride);
          stride := !stride * cs.c_su.Runtime.su_extents.(k))
        coords;
      !pid

(** Value of an array element after execution, read from its owner. *)
let get_elem cs name idx =
  let pid = owner_pid cs name idx in
  let aid = Hashtbl.find cs.c_arrays name in
  let enc = Runtime.encode cs.c_ameta.(aid) idx in
  get_enc cs.c_rts.(pid).r_stores.(aid) enc

(** Measured per-pair communication table (empty unless metrics were
    enabled when the sim was built). *)
let comm_cells cs = Runtime.comm_cells cs.c_tr

(** Scalar value (replicated; read from processor 0). *)
let get_scalar cs name =
  match Hashtbl.find_opt cs.c_fslots name with
  | Some slot when cs.c_rts.(0).r_fvalid.(slot) -> cs.c_rts.(0).r_fval.(slot)
  | _ -> errf "unknown scalar %s" name

(* ------------------------------------------------------------------ *)
(* Checkpoint capture                                                   *)
(* ------------------------------------------------------------------ *)

let transport cs = cs.c_tr
let clocks cs = Array.map (fun rt -> rt.r_clock) cs.c_rts
let set_clocks cs t = Array.iter (fun rt -> rt.r_clock <- t) cs.c_rts
let charge cs dt = Array.iter (fun rt -> rt.r_clock <- rt.r_clock +. dt) cs.c_rts

(* every resident element of one store as sorted (global linear index,
   value) pairs: the dense owned block enumerated through the per-dimension
   ownership tables, plus the side hashtable (halos / sparse storage) —
   the two never hold the same index, so a plain merge-and-sort suffices *)
let store_elems (st : store) : (int * float) array =
  let acc = ref [] in
  Hashtbl.iter (fun k v -> acc := (k, v) :: !acc) st.st_side;
  if st.st_owned && st.st_data != [||] then begin
    let ext = st.st_am.Runtime.am_ext in
    let nd = Array.length ext in
    let owned =
      Array.init nd (fun d ->
          let l = ref [] in
          Array.iteri
            (fun u m -> if m >= 0 then l := (u, m) :: !l)
            st.st_dmaps.(d);
          Array.of_list (List.rev !l))
    in
    let str = st.st_am.Runtime.am_strides in
    let rec go d enc slot =
      if d < 0 then acc := (enc, st.st_data.(slot)) :: !acc
      else
        Array.iter
          (fun (u, l) ->
            go (d - 1) (enc + (u * str.(d))) (slot + (l * st.st_lstride.(d))))
          owned.(d)
    in
    go (nd - 1) 0 0
  end;
  let a = Array.of_list !acc in
  Array.sort compare a;
  a

let capture (cs : csim) : Runtime.image =
  let anames =
    Hashtbl.fold (fun n aid acc -> (n, aid) :: acc) cs.c_arrays []
    |> List.sort compare
  in
  let procs =
    Array.map
      (fun rt ->
        let ints =
          Hashtbl.fold (fun n s acc -> (n, rt.r_int.(s)) :: acc) cs.c_islots []
          |> List.sort compare |> Array.of_list
        in
        let floats =
          Hashtbl.fold
            (fun n s acc ->
              if rt.r_fvalid.(s) then (n, rt.r_fval.(s)) :: acc else acc)
            cs.c_fslots []
          |> List.sort compare |> Array.of_list
        in
        let elems =
          List.map (fun (n, aid) -> (n, store_elems rt.r_stores.(aid))) anames
          |> Array.of_list
        in
        let staged = ref [] in
        Array.iteri
          (fun ev buf ->
            let pl = Runtime.packbuf_peek buf in
            if Array.length pl.Runtime.pl_idx > 0 then
              staged := (ev, pl) :: !staged)
          rt.r_packbufs;
        {
          Runtime.pi_clock = rt.r_clock;
          pi_ints = ints;
          pi_floats = floats;
          pi_elems = elems;
          pi_staged = Array.of_list (List.rev !staged);
        })
      cs.c_rts
  in
  let chans, inflight, ctrs = Runtime.capture_transport cs.c_tr in
  {
    Runtime.im_ops = cs.c_tr.Runtime.tr_gops;
    im_procs = procs;
    im_chans = chans;
    im_inflight = inflight;
    im_counters = ctrs;
  }
