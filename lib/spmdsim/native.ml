(* Native execution engine: Spmd -> Imp -> generated OCaml -> cmxs.

   [make] builds the closure engine's sim ({!Compile.make} — setup, dense
   storage, transport, slot tables), lowers the program again through
   {!Imp.lower} (asserting the two slot tables agree), prints the kernel
   with {!Emit.emit}, compiles it out-of-process with
   [ocamlfind ocamlopt -shared] into a cache directory keyed on a hash of
   the emitted source (plus compiler version and the lib .cmi digests, so
   a rebuilt tree never reuses stale kernels), dynlinks the result, and
   returns the csim with [c_main] swapped for the generated entry point.
   Everything outside the kernel body — run loop, reductions, result
   inspection, checkpoint capture — is {!Compile}'s code operating on the
   same state records, so structural identity with the closure engine is
   by construction; the kernel itself replicates Compile's clock-charge
   and FP-evaluation order (verified bit-exactly by {!Diffcheck.engines}).

   The generated unit calls back into this module: [register] hands over
   the entry point at load time, and the [do_*] / failure helpers keep
   transport interaction and error messages engine-identical.

   Loading requires the host executable to be linked with [-linkall]
   (dune [link_flags]); the emitted unit references library modules the
   host may not otherwise retain. *)

let errf = Runtime.errf

(* ------------------------------------------------------------------ *)
(* Kernel-facing runtime                                               *)
(* ------------------------------------------------------------------ *)

type kctx = {
  k_tr : Runtime.transport;
  k_phys : int list -> int;
  k_arrays : (string, int) Hashtbl.t;
  k_vm_slots : int array;
}

type kernel_fn = kctx -> Compile.rt -> unit

(* handoff slot: the dynlinked unit's top-level [let () = N.register ...]
   runs during loadfile, and [obtain] picks the closure up right after *)
let pending : kernel_fn option ref = ref None
let register f = pending := Some f

let bad_step (rt : Compile.rt) var =
  errf "proc %d: non-positive loop step for %s" rt.Compile.r_pid var

let unbound_int (rt : Compile.rt) name =
  errf "proc %d: unbound integer name %s" rt.Compile.r_pid name

let unknown_sub (rt : Compile.rt) f =
  errf "proc %d: unknown subroutine %s" rt.Compile.r_pid f

let my_vp ctx (rt : Compile.rt) =
  Array.to_list (Array.map (fun s -> rt.Compile.r_int.(s)) ctx.k_vm_slots)

let do_send ctx (rt : Compile.rt) ~event ~inplace ~rect dest_vp =
  let pl = Runtime.packbuf_flush rt.Compile.r_packbufs.(event) in
  Runtime.send ctx.k_tr
    ~tick:(fun dt -> Compile.tick rt dt)
    ~get_clock:(fun () -> rt.Compile.r_clock)
    ~pid:rt.Compile.r_pid ~dst_pid:(ctx.k_phys dest_vp) ~event
    ~src_vp:(my_vp ctx rt) ~dst_vp:dest_vp ~inplace ~rect pl

let do_recv ctx (rt : Compile.rt) ~event ~recv_o ~unpack src_vp =
  let k = { Runtime.k_event = event; k_src = src_vp; k_dst = my_vp ctx rt } in
  let t0 = rt.Compile.r_clock in
  let msg = Effect.perform (Runtime.ERecv k) in
  Compile.tick rt recv_o;
  rt.Compile.r_clock <- Float.max rt.Compile.r_clock msg.Runtime.m_arrival;
  let pl = msg.Runtime.m_payload in
  let n = Array.length pl.Runtime.pl_idx in
  if not msg.Runtime.m_contig then Compile.tick rt (float_of_int n *. unpack);
  if n > 0 then begin
    let st =
      match Hashtbl.find_opt ctx.k_arrays pl.Runtime.pl_arr with
      | Some aid -> rt.Compile.r_stores.(aid)
      | None -> errf "unknown array %s" pl.Runtime.pl_arr
    in
    for i = 0 to n - 1 do
      Compile.put_enc st pl.Runtime.pl_idx.(i) pl.Runtime.pl_val.(i)
    done
  end;
  Runtime.trace_recv ctx.k_tr ~tid:rt.Compile.r_pid ~t0 ~t1:rt.Compile.r_clock k msg

let do_reduce_arr name op = Effect.perform (Runtime.EReduceArr (name, op))

let do_reduce_scalar (rt : Compile.rt) slot op =
  let mine =
    if rt.Compile.r_fvalid.(slot) then rt.Compile.r_fval.(slot) else 0.0
  in
  let combined = Effect.perform (Runtime.EReduce (op, mine)) in
  rt.Compile.r_fval.(slot) <- combined;
  rt.Compile.r_fvalid.(slot) <- true

(* ------------------------------------------------------------------ *)
(* Out-of-process build, hash-keyed cache, dynlink                     *)
(* ------------------------------------------------------------------ *)

let libs = [ "iset"; "hpf"; "dhpf"; "obs"; "par"; "spmdsim" ]

let default_cache_dir () =
  match Sys.getenv_opt "DHPF_NATIVE_CACHE" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "dhpf-native-cache"

let rec mkdir_p d =
  if d <> "" && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(* The emitted unit compiles against the very build tree this process was
   linked from: walk up from the executable to the dune context root
   (where lib/<l>/.<l>.objs lives). DHPF_NATIVE_INCLUDES overrides with an
   explicit colon-separated include list (used by installed binaries). *)
let include_dirs () =
  match Sys.getenv_opt "DHPF_NATIVE_INCLUDES" with
  | Some s when s <> "" -> List.filter (fun d -> d <> "") (String.split_on_char ':' s)
  | _ -> (
      let probe root =
        Sys.file_exists
          (Filename.concat root "lib/spmdsim/.spmdsim.objs/byte/spmdsim.cmi")
      in
      let rec up dir n =
        if probe dir then Some dir
        else if n = 0 then None
        else
          let parent = Filename.dirname dir in
          if parent = dir then None else up parent (n - 1)
      in
      match up (Filename.dirname Sys.executable_name) 10 with
      | Some root ->
          List.concat_map
            (fun l ->
              let objs = Filename.concat root (Printf.sprintf "lib/%s/.%s.objs" l l) in
              [ Filename.concat objs "byte"; Filename.concat objs "native" ])
            libs
      | None ->
          errf
            "native engine: cannot locate the dune build tree from %s (set DHPF_NATIVE_INCLUDES to the library include directories)"
            Sys.executable_name)

(* interface digests of the libraries the kernel compiles against: part of
   the cache key, so an .ml-identical kernel never links against cmis it
   was not built with *)
let lib_cmi_digests dirs =
  List.filter_map
    (fun dir ->
      let objs = Filename.basename (Filename.dirname dir) in
      if
        String.length objs > 6
        && objs.[0] = '.'
        && Filename.check_suffix objs ".objs"
      then
        let name = String.sub objs 1 (String.length objs - 6) in
        let cmi = Filename.concat dir (name ^ ".cmi") in
        if Sys.file_exists cmi then Some (Digest.to_hex (Digest.file cmi))
        else None
      else None)
    dirs

let cache_key ~dirs src =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" (src :: Sys.ocaml_version :: lib_cmi_digests dirs)))

(* unique-temp-plus-atomic-rename, shared with the analysis disk cache:
   concurrent servers building the same kernel can never expose a torn
   file, the last rename simply wins *)
let write_file path contents = Iset.Diskcache.write_atomic path contents

(* Size bound for the kernel cache (DHPF_NATIVE_CACHE_MB, default 512
   MiB). A kernel is a group of files sharing one basename prefix — .ml,
   .cmxs, .cmi/.cmx/.o, .log — that live and die together; eviction is
   whole-group oldest-first (group age = newest member). *)
let cache_budget () =
  let mb =
    match Sys.getenv_opt "DHPF_NATIVE_CACHE_MB" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 512)
    | None -> 512
  in
  mb * 1024 * 1024

let kernel_group name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let prune_cache dir =
  ignore
    (Iset.Diskcache.prune_dir ~group:kernel_group ~max_bytes:(cache_budget ())
       dir
      : int)

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error _ -> ""

let memo : (string, kernel_fn) Hashtbl.t = Hashtbl.create 8

(* [pending], [memo] and Dynlink itself are all shared mutable state;
   one lock over the whole emit-or-reuse-then-load path makes [obtain]
   safe to call from concurrent domains (the serve daemon's workers) *)
let obtain_mu = Mutex.create ()
let m_build = lazy (Obs.Metrics.histogram "native/build_s")
let m_hits = lazy (Obs.Metrics.counter "native/cache_hit")

let compile_plugin ~dirs ~src ~ml ~cmxs =
  write_file ml src;
  let tmp = cmxs ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let log = cmxs ^ ".log" in
  let cmd =
    Printf.sprintf "ocamlfind ocamlopt -shared -w -a -package fmt %s -o %s %s > %s 2>&1"
      (String.concat " " (List.map (fun d -> "-I " ^ Filename.quote d) dirs))
      (Filename.quote tmp) (Filename.quote ml) (Filename.quote log)
  in
  let rc = Sys.command cmd in
  if rc <> 0 then
    errf "native engine: kernel compilation failed (exit %d):\n%s" rc (read_file log);
  Sys.rename tmp cmxs

(* Emit + build (or reuse) + dynlink one kernel, returning its entry
   point. The cmxs file name carries the cache key, so its module name is
   unique per kernel and repeated loads of distinct kernels cannot clash;
   an in-process memo avoids re-dynlinking a kernel this process already
   holds. *)
let obtain ~cache_dir (kernel : Imp.kernel) : kernel_fn =
  let src = Emit.emit kernel in
  let dirs = include_dirs () in
  let key = cache_key ~dirs src in
  Mutex.protect obtain_mu @@ fun () ->
  match Hashtbl.find_opt memo key with
  | Some f ->
      if Obs.Metrics.enabled () then Obs.Metrics.incr (Lazy.force m_hits);
      if Obs.Log.enabled Obs.Log.Debug then
        Obs.Log.debug "native.cache_hit"
          ~fields:(fun () -> [ ("key", Obs.Str key); ("where", Obs.Str "memo") ]);
      f
  | None ->
      mkdir_p cache_dir;
      let base = "dhpf_kernel_" ^ key in
      let ml = Filename.concat cache_dir (base ^ ".ml") in
      let cmxs = Filename.concat cache_dir (base ^ ".cmxs") in
      if Sys.file_exists cmxs then begin
        if Obs.Metrics.enabled () then Obs.Metrics.incr (Lazy.force m_hits);
        if Obs.Log.enabled Obs.Log.Debug then
          Obs.Log.debug "native.cache_hit"
            ~fields:(fun () -> [ ("key", Obs.Str key); ("where", Obs.Str "disk") ])
      end
      else begin
        if Obs.Log.enabled Obs.Log.Info then
          Obs.Log.info "native.build_start"
            ~fields:(fun () -> [ ("key", Obs.Str key) ]);
        Obs.span ~cat:"native" "native build" (fun () ->
            let t0 = Unix.gettimeofday () in
            compile_plugin ~dirs ~src ~ml ~cmxs;
            let dt = Unix.gettimeofday () -. t0 in
            if Obs.Metrics.enabled () then
              Obs.Metrics.observe (Lazy.force m_build) dt;
            if Obs.Log.enabled Obs.Log.Info then
              Obs.Log.info "native.build_done"
                ~fields:(fun () ->
                  [ ("key", Obs.Str key); ("build_s", Obs.Float dt) ]));
        (* a build added bytes: re-bound the cache (freshly built groups
           are the newest, so they survive) *)
        prune_cache cache_dir
      end;
      pending := None;
      (try Dynlink.loadfile_private cmxs
       with
      | Dynlink.Error e ->
          errf "native engine: loading %s failed: %s (is the host linked with -linkall?)"
            cmxs (Dynlink.error_message e));
      (match !pending with
      | Some f ->
          pending := None;
          Hashtbl.replace memo key f;
          f
      | None -> errf "native engine: kernel %s loaded but did not register" base)

(* ------------------------------------------------------------------ *)
(* Pack-buffer pre-sizing                                              *)
(* ------------------------------------------------------------------ *)

(* Size each (processor, event) staging buffer to the largest message the
   static communication prediction says that processor will pack for the
   event, killing the grow-and-copy reallocations mid-loop. Capacity never
   affects behavior (flush truncates to the packed length), so programs
   Predict cannot analyze simply keep the default buffers. *)
let presize_packbufs (cs : Compile.csim) ?params ~nprocs prog =
  let cells =
    try Some (Predict.comm ?params ~nprocs prog) with
    | Predict.Unpredictable _ | Runtime.Error _ | Not_found | Failure _
    | Invalid_argument _ ->
        None
  in
  match cells with
  | None -> ()
  | Some cells ->
      let caps = Hashtbl.create 32 in
      List.iter
        (fun (c : Predict.cell) ->
          let per =
            if c.Predict.p_msgs <= 0 then 0
            else (c.Predict.p_elems + c.Predict.p_msgs - 1) / c.Predict.p_msgs
          in
          let key = (c.Predict.p_event, c.Predict.p_src) in
          let cur = Option.value (Hashtbl.find_opt caps key) ~default:0 in
          if per > cur then Hashtbl.replace caps key per)
        cells;
      Array.iter
        (fun (rt : Compile.rt) ->
          Array.iteri
            (fun ev _ ->
              match Hashtbl.find_opt caps (ev, rt.Compile.r_pid) with
              | Some cap when cap > 0 ->
                  rt.Compile.r_packbufs.(ev) <- Runtime.packbuf_create ~cap ()
              | _ -> ())
            rt.Compile.r_packbufs)
        cs.Compile.c_rts

(* ------------------------------------------------------------------ *)
(* Engine construction                                                 *)
(* ------------------------------------------------------------------ *)

let sorted_tbl tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let make ?(machine = Machine.default) ?faults ?domains ?cache_dir ~nprocs
    ?params (prog : Dhpf.Spmd.program) : Compile.csim =
  let cs = Compile.make ~machine ?faults ?domains ~nprocs ?params prog in
  let kernel =
    Imp.lower ~machine ~genv:cs.Compile.c_su.Runtime.su_genv
      ~extents:cs.Compile.c_su.Runtime.su_extents ~arrays:cs.Compile.c_arrays
      ~ameta:cs.Compile.c_ameta prog
  in
  if
    sorted_tbl cs.Compile.c_islots <> kernel.Imp.k_islots
    || sorted_tbl cs.Compile.c_fslots <> kernel.Imp.k_fslots
  then
    errf
      "native engine: lowered slot tables diverge from the closure engine (internal invariant)";
  let cache_dir =
    match cache_dir with Some d -> d | None -> default_cache_dir ()
  in
  let fn = obtain ~cache_dir kernel in
  let kctx =
    {
      k_tr = cs.Compile.c_tr;
      k_phys = Compile.phys_of_vp cs;
      k_arrays = cs.Compile.c_arrays;
      k_vm_slots = kernel.Imp.k_vm_slots;
    }
  in
  presize_packbufs cs ?params ~nprocs prog;
  { cs with Compile.c_main = (fun rt -> fn kctx rt) }
