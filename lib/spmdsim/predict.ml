(* Static communication-volume prediction: evaluate the compiler's
   Figure-3 communication sets at concrete distribution parameters and
   tabulate, per (event, sender, receiver), exactly how many messages and
   elements the generated program will send — without simulating any
   computation.

   The generated SPMD program *is* the closed form of those sets: the
   partner loops enumerate [domain(SendCommMap)], the pack loops enumerate
   the flattened [send_map_full] (both synthesized by {!Iset.Codegen.gen}
   from the integer-set equations), and [Send] fires once per enumerated
   partner. So the prediction walks the communication skeleton of the
   program — every [For]/[If] that (transitively) contains a [Pack],
   [Send] or [Recv], with all other statements dropped — evaluating loop
   bounds and guards with {!Iset.Codegen.eval_expr} under the same
   startup environment ({!Runtime.setup}) the simulator itself uses.
   Walking the emitted loops rather than re-enumerating the raw relations
   keeps the oracle faithful to code-generation details a set cardinality
   would miss: overlapping disjuncts deliberately re-packed
   ([~disjoint:false]), cyclic-VP loop rewrites, and empty messages that
   still count as one send.

   Everything here is per-processor arithmetic on integers — no clocks,
   no storage, no transport — so predicted counts are exact for
   fault-free and faulty runs alike (the transport's per-pair counters
   are fault-invariant). *)

open Dhpf

exception Unpredictable of string

let errf fmt = Fmt.kstr (fun s -> raise (Unpredictable s)) fmt

type cell = {
  p_event : int;
  p_src : int;
  p_dst : int;  (** [p_src = p_dst]: local copy between co-located VPs *)
  p_msgs : int;
  p_elems : int;
}

(* does this statement (transitively) communicate? *)
let rec has_comm (prog : Spmd.program) (s : Spmd.stmt) : bool =
  match s with
  | Spmd.Pack _ | Spmd.Send _ | Spmd.Recv _ -> true
  | Spmd.For { body; _ } | Spmd.If (_, body) ->
      List.exists (has_comm prog) body
  | Spmd.FIf (_, t, e) ->
      List.exists (has_comm prog) t || List.exists (has_comm prog) e
  | Spmd.Call f -> (
      match List.assoc_opt f prog.Spmd.subs with
      | Some body -> List.exists (has_comm prog) body
      | None -> false)
  | Spmd.Store _ | Spmd.SetScalar _ | Spmd.Reduce _ | Spmd.Comment _ -> false

let comm ?(params = []) ~nprocs (prog : Spmd.program) : cell list =
  let su = Runtime.setup ~nprocs ~params prog in
  let geval = Runtime.eval_genv su.Runtime.su_genv in
  let phys =
    Runtime.phys_of_vp ~eval:geval prog ~extents:su.Runtime.su_extents
  in
  let cells : (int * int * int, int ref * int ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let cell key =
    match Hashtbl.find_opt cells key with
    | Some c -> c
    | None ->
        let c = (ref 0, ref 0) in
        Hashtbl.add cells key c;
        c
  in
  for pid = 0 to su.Runtime.su_total - 1 do
    (* local environment: grid coordinates, startup VP coordinates, then
       the loop variables of the communication skeleton *)
    let locals : (string, int) Hashtbl.t = Hashtbl.create 16 in
    Array.iteri
      (fun k c -> Hashtbl.replace locals (Printf.sprintf "m$%d" (k + 1)) c)
      su.Runtime.su_coords.(pid);
    List.iter
      (fun (k, v) ->
        Hashtbl.replace locals (Printf.sprintf "vm$%d" (k + 1)) v)
      su.Runtime.su_vm0.(pid);
    let look s =
      match Hashtbl.find_opt locals s with
      | Some v -> v
      | None -> (
          match Hashtbl.find_opt su.Runtime.su_genv s with
          | Some v -> v
          | None -> errf "unbound integer name %s in communication bounds" s)
    in
    let eval e = Iset.Codegen.eval_expr look e in
    let evalc c = Iset.Codegen.eval_cond look c in
    (* elements packed since the last Send, per event (mirrors the
       per-(processor, event) staging buffer of the runtime) *)
    let pending : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
    let pending_of event =
      match Hashtbl.find_opt pending event with
      | Some r -> r
      | None ->
          let r = ref 0 in
          Hashtbl.add pending event r;
          r
    in
    let rec walk stmts = List.iter stmt stmts
    and stmt (s : Spmd.stmt) =
      match s with
      | Spmd.Store _ | Spmd.SetScalar _ | Spmd.Reduce _ | Spmd.Comment _ -> ()
      | Spmd.FIf (_, t, e) ->
          (* communication under a data-dependent branch cannot be
             predicted statically; the compiler never emits it *)
          if List.exists (has_comm prog) t || List.exists (has_comm prog) e
          then errf "communication under a data-dependent branch"
      | Spmd.If (c, body) ->
          if List.exists (has_comm prog) body && evalc c then walk body
      | Spmd.For { var; lo; hi; step; body } ->
          if List.exists (has_comm prog) body then begin
            let l = eval lo and h = eval hi in
            let st = eval step in
            if st <= 0 then
              errf "non-positive step for communication loop %s" var;
            let i = ref l in
            while !i <= h do
              Hashtbl.replace locals var !i;
              walk body;
              i := !i + st
            done;
            Hashtbl.remove locals var
          end
      | Spmd.Pack { event; _ } -> Stdlib.incr (pending_of event)
      | Spmd.Send { event; dest } ->
          let dst = phys (List.map eval dest) in
          let n = pending_of event in
          let msgs, elems = cell (event, pid, dst) in
          Stdlib.incr msgs;
          elems := !elems + !n;
          n := 0
      | Spmd.Recv _ -> ()
      | Spmd.Call f -> (
          match List.assoc_opt f prog.Spmd.subs with
          | Some body -> if List.exists (has_comm prog) body then walk body
          | None -> errf "unknown subroutine %s" f)
    in
    walk prog.Spmd.main
  done;
  Hashtbl.fold
    (fun (event, src, dst) (msgs, elems) acc ->
      { p_event = event; p_src = src; p_dst = dst; p_msgs = !msgs;
        p_elems = !elems }
      :: acc)
    cells []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Joining prediction against measurement                               *)
(* ------------------------------------------------------------------ *)

type mismatch = {
  mm_event : int;
  mm_src : int;
  mm_dst : int;
  mm_pred_msgs : int;
  mm_meas_msgs : int;
  mm_pred_elems : int;
  mm_meas_elems : int;
}

(** Full outer join of a prediction against a measured table: rows whose
    message or element counts differ by more than [slack] (a fraction of
    the predicted value; [0.] demands exact equality). Rows present on
    only one side always mismatch. *)
let check ?(slack = 0.0) (pred : cell list) (meas : Runtime.comm_cell list) :
    mismatch list =
  let tbl : (int * int * int, (int * int) * (int * int)) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (c : cell) ->
      Hashtbl.replace tbl
        (c.p_event, c.p_src, c.p_dst)
        ((c.p_msgs, c.p_elems), (0, 0)))
    pred;
  List.iter
    (fun (c : Runtime.comm_cell) ->
      let key = (c.cm_event, c.cm_src, c.cm_dst) in
      let p, _ =
        Option.value (Hashtbl.find_opt tbl key) ~default:((0, 0), (0, 0))
      in
      Hashtbl.replace tbl key (p, (c.cm_msgs, c.cm_elems)))
    meas;
  let ok p m =
    let tol = slack *. float_of_int p in
    Float.abs (float_of_int (m - p)) <= tol
  in
  Hashtbl.fold
    (fun (event, src, dst) ((pm, pe), (mm, me)) acc ->
      if ok pm mm && ok pe me then acc
      else
        { mm_event = event; mm_src = src; mm_dst = dst; mm_pred_msgs = pm;
          mm_meas_msgs = mm; mm_pred_elems = pe; mm_meas_elems = me }
        :: acc)
    tbl []
  |> List.sort compare
