(** SPMD interpreter: executes the compiler's {!Dhpf.Spmd} programs on a
    simulated distributed-memory machine.

    Each processor runs as an effect-handler fiber with its own virtual
    clock; sends are buffered (non-blocking), receives block until the
    matching message exists, and the scheduler advances whichever processor
    can make progress. Receive completion time is
    [max(local clock + recv overhead, message arrival)] with arrival =
    sender clock at send + alpha + bytes*beta — a LogGP-style model.

    Storage is one table per (processor, array) holding both owned elements
    and received non-local values; ownership is recomputed from the layout
    descriptors, so a [Local] access to a non-owned element or a [Checked]
    read of never-communicated data raises — executing compiled code under
    the simulator doubles as a correctness check of the compiler. *)

open Dhpf

exception Error of string

let errf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type key = { k_event : int; k_src : int list; k_dst : int list }

type payload = (string * int * float) array
(* (array, encoded index, value) *)

type msg = {
  m_seq : int;
      (* per-channel sequence number: delivery matches the receiver's next
         expected seq, so in-flight reordering, duplicates and retransmitted
         drops cannot change which message a Recv consumes *)
  m_arrival : float;
  m_payload : payload;
  m_contig : bool;
}

type meta = {
  mt_bounds : (int * int) list;
  mt_strides : int array;
  mt_base : int;
  mt_layout : Spmd.array_layout option;
}

type pstate = {
  pid : int;
  coords : int array;
  ienv : (string, int) Hashtbl.t;
  fenv : (string, float) Hashtbl.t;
  mutable clock : float;
}

type sim = {
  prog : Spmd.program;
  machine : Machine.t;
  faults : Fault.spec option;
  skew : float array;  (** per-processor compute-time multiplier (>= 1) *)
  genv : (string, int) Hashtbl.t;  (** global parameter values *)
  extents : int array;
  nprocs : int;
  procs : pstate array;
  store : (string, (int, float) Hashtbl.t array) Hashtbl.t;
  meta : (string, meta) Hashtbl.t;
  mailbox : (key, msg list ref) Hashtbl.t;
      (** in-flight messages per channel, in transport (possibly reordered)
          order; delivery matches sequence numbers, not list position *)
  send_seq : (key, int) Hashtbl.t;
  recv_seq : (key, int) Hashtbl.t;
  outbuf : (int * int, (string * int * float) list ref) Hashtbl.t;
      (** (pid, event) -> elements packed so far *)
  inplace_events : (int, unit) Hashtbl.t;
  rect_events : (int, unit) Hashtbl.t;
  mutable n_msgs : int;
  mutable n_bytes : int;
  mutable n_elems_comm : int;
  mutable n_retransmits : int;
  mutable n_timeouts : int;
  mutable n_dups_delivered : int;
  mutable max_mbox_depth : int;
}

(* ------------------------------------------------------------------ *)
(* Startup                                                             *)
(* ------------------------------------------------------------------ *)

let eval_global sim e =
  Iset.Codegen.eval_expr
    (fun s ->
      match Hashtbl.find_opt sim.genv s with
      | Some v -> v
      | None -> errf "unbound parameter %s" s)
    e

let make ?(machine = Machine.default) ?faults ~nprocs ?(params = [])
    (prog : Spmd.program) : sim =
  let genv = Hashtbl.create 32 in
  Hashtbl.replace genv "number_of_processors" nprocs;
  List.iter (fun (n, v) -> Hashtbl.replace genv n v) params;
  let bind s =
    match Hashtbl.find_opt genv s with
    | Some v -> v
    | None -> errf "unbound parameter %s (needed at startup)" s
  in
  List.iter
    (fun (pb : Spmd.param_binding) ->
      match pb.pb_value with
      | `Given k -> Hashtbl.replace genv pb.pb_name k
      | `FromEnv ->
          if not (Hashtbl.mem genv pb.pb_name) then
            errf "symbolic parameter %s must be supplied" pb.pb_name
      | `Expr e -> Hashtbl.replace genv pb.pb_name (Hpf.Sema.eval_iexpr ~bind e))
    prog.params;
  let sim0_eval e = Iset.Codegen.eval_expr bind e in
  let extents = Array.of_list (List.map sim0_eval prog.proc_extents) in
  Array.iteri
    (fun k e ->
      if e < 1 then
        errf "processor grid dimension %d has extent %d with %d processors"
          (k + 1) e nprocs)
    extents;
  let total = Array.fold_left ( * ) 1 extents in
  if total < 1 then errf "empty processor grid";
  let meta = Hashtbl.create 16 in
  List.iter
    (fun (ad : Spmd.array_decl) ->
      let bounds = List.map (fun (lo, hi) -> (sim0_eval lo, sim0_eval hi)) ad.ad_bounds in
      let extentsd = List.map (fun (lo, hi) -> hi - lo + 1) bounds in
      let n = List.length extentsd in
      let strides = Array.make n 1 in
      List.iteri (fun i e -> if i + 1 < n then strides.(i + 1) <- strides.(i) * e) extentsd;
      let base =
        List.fold_left2 (fun acc (lo, _) k -> acc + (lo * k)) 0 bounds
          (Array.to_list strides)
      in
      Hashtbl.replace meta ad.ad_name
        { mt_bounds = bounds; mt_strides = strides; mt_base = base;
          mt_layout = ad.ad_layout })
    prog.arrays;
  let store = Hashtbl.create 16 in
  List.iter
    (fun (ad : Spmd.array_decl) ->
      Hashtbl.replace store ad.ad_name (Array.init total (fun _ -> Hashtbl.create 64)))
    prog.arrays;
  let procs =
    Array.init total (fun pid ->
        (* column-major linearization: first dimension varies fastest *)
        let coords = Array.make (Array.length extents) 0 in
        let rem = ref pid in
        Array.iteri
          (fun k e ->
            coords.(k) <- !rem mod e;
            rem := !rem / e)
          extents;
        let ienv = Hashtbl.create 16 in
        Array.iteri (fun k c -> Hashtbl.replace ienv (Printf.sprintf "m$%d" (k + 1)) c) coords;
        List.iteri
          (fun k (pd : Spmd.proc_dim_rt) ->
            let vm_name = Printf.sprintf "vm$%d" (k + 1) in
            match pd.pd_mode with
            | Spmd.VpIsPhys -> Hashtbl.replace ienv vm_name coords.(k)
            | Spmd.VpBlockOnePer ->
                let b = sim0_eval (Option.get pd.pd_bsize) in
                let tlo = sim0_eval pd.pd_tlo in
                Hashtbl.replace ienv vm_name ((b * coords.(k)) + tlo)
            | Spmd.VpTemplateCell -> () (* bound by generated VP loops *))
          prog.proc_dims;
        { pid; coords; ienv; fenv = Hashtbl.create 16; clock = 0.0 })
  in
  let skew =
    Array.init total (fun pid ->
        match faults with None -> 1.0 | Some sp -> Fault.skew sp ~pid)
  in
  let sim =
    {
      prog;
      machine;
      faults;
      skew;
      genv;
      extents;
      nprocs = total;
      procs;
      store;
      meta;
      mailbox = Hashtbl.create 64;
      send_seq = Hashtbl.create 64;
      recv_seq = Hashtbl.create 64;
      outbuf = Hashtbl.create 16;
      inplace_events = Hashtbl.create 8;
      rect_events = Hashtbl.create 8;
      n_msgs = 0;
      n_bytes = 0;
      n_elems_comm = 0;
      n_retransmits = 0;
      n_timeouts = 0;
      n_dups_delivered = 0;
      max_mbox_depth = 0;
    }
  in
  List.iter
    (fun (e : Spmd.event_info) ->
      if e.ev_inplace then Hashtbl.replace sim.inplace_events e.Spmd.ev_id ();
      if e.ev_rect then Hashtbl.replace sim.rect_events e.Spmd.ev_id ())
    prog.events;
  (* replicated scalars start at zero *)
  Array.iter
    (fun p -> List.iter (fun s -> Hashtbl.replace p.fenv s 0.0) prog.scalars)
    sim.procs;
  sim

let nprocs sim = sim.nprocs

(* ------------------------------------------------------------------ *)
(* Ownership and addressing                                            *)
(* ------------------------------------------------------------------ *)

let meta_of sim name =
  match Hashtbl.find_opt sim.meta name with
  | Some m -> m
  | None -> errf "unknown array %s" name

let encode sim name (idx : int list) =
  let m = meta_of sim name in
  let off = ref (-m.mt_base) in
  List.iteri
    (fun i x ->
      let lo, hi = List.nth m.mt_bounds i in
      if x < lo || x > hi then
        errf "array %s: index %d outside [%d,%d] (dim %d)" name x lo hi (i + 1);
      off := !off + (x * m.mt_strides.(i)))
    idx;
  !off

(* physical owner coordinate along one processor dimension, or None if the
   element is replicated along it *)
let owner_coord sim (dl : Spmd.dim_layout) (idx : int array) : int option =
  let t =
    match dl.source with
    | Spmd.AnyCoord -> None
    | Spmd.FixedCoord e -> Some (eval_global sim e)
    | Spmd.FromData { data_dim; coef; off } ->
        Some ((coef * idx.(data_dim)) + eval_global sim off)
  in
  match t with
  | None -> None
  | Some t -> (
      let tlo = eval_global sim dl.tlo in
      let p = eval_global sim dl.pextent in
      match dl.fmt with
      | Spmd.RBlock { bsize } ->
          let b = eval_global sim bsize in
          Some (Iset.Lin.fdiv (t - tlo) b)
      | Spmd.RCyclic -> Some (Iset.Lin.pmod (t - tlo) p)
      | Spmd.RBlockCyclic k -> Some (Iset.Lin.pmod (Iset.Lin.fdiv (t - tlo) k) p))

let owns sim (p : pstate) name (idx : int list) : bool =
  let m = meta_of sim name in
  match m.mt_layout with
  | None -> true (* replicated array: every processor has a copy *)
  | Some la ->
      let idxa = Array.of_list idx in
      List.for_all2
        (fun dl c ->
          match owner_coord sim dl idxa with None -> true | Some o -> o = c)
        la.Spmd.la_dims
        (Array.to_list p.coords)

(* the linear pid of the owner (replicated dims resolve to coordinate 0) *)
let owner_pid sim name (idx : int list) : int =
  let m = meta_of sim name in
  match m.mt_layout with
  | None -> 0
  | Some la ->
      let idxa = Array.of_list idx in
      let coords =
        List.map
          (fun dl -> match owner_coord sim dl idxa with None -> 0 | Some o -> o)
          la.Spmd.la_dims
      in
      let pid = ref 0 and stride = ref 1 in
      List.iteri
        (fun k c ->
          pid := !pid + (c * !stride);
          stride := !stride * sim.extents.(k))
        coords;
      !pid

(* VP coordinates -> linear physical pid *)
let phys_of_vp sim (vp : int list) : int =
  let pid = ref 0 and stride = ref 1 in
  List.iteri
    (fun k v ->
      let pd = List.nth sim.prog.proc_dims k in
      let c =
        match pd.pd_mode with
        | Spmd.VpIsPhys -> v
        | Spmd.VpBlockOnePer ->
            let b = eval_global sim (Option.get pd.pd_bsize) in
            Iset.Lin.fdiv (v - eval_global sim pd.pd_tlo) b
        | Spmd.VpTemplateCell ->
            Iset.Lin.pmod (v - eval_global sim pd.pd_tlo) (eval_global sim pd.pd_extent)
      in
      pid := !pid + (c * !stride);
      stride := !stride * sim.extents.(k))
    vp;
  !pid

(* ------------------------------------------------------------------ *)
(* Effects                                                             *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | ERecv : key -> msg Effect.t
  | EReduce : (Spmd.reduce_op * float) -> float Effect.t
  | EReduceArr : (string * Spmd.reduce_op) -> unit Effect.t

(* ------------------------------------------------------------------ *)
(* Per-processor interpreter                                           *)
(* ------------------------------------------------------------------ *)

let lookup_int sim p s =
  match Hashtbl.find_opt p.ienv s with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt sim.genv s with
      | Some v -> v
      | None -> errf "proc %d: unbound integer name %s" p.pid s)

let eval_expr sim p e = Iset.Codegen.eval_expr (lookup_int sim p) e
let eval_cond sim p c = Iset.Codegen.eval_cond (lookup_int sim p) c

(* advance a processor's clock by local work, scaled by its straggler
   multiplier (1.0 on the idealized machine) *)
let tick sim p dt = p.clock <- p.clock +. (dt *. sim.skew.(p.pid))

let table sim p name =
  match Hashtbl.find_opt sim.store name with
  | Some a -> a.(p.pid)
  | None -> errf "unknown array %s" name

let load sim p name idx (access : Spmd.access) : float =
  let enc = encode sim name idx in
  let tbl = table sim p name in
  (match access with
  | Spmd.Checked -> tick sim p sim.machine.Machine.check_time
  | _ -> ());
  match Hashtbl.find_opt tbl enc with
  | Some v -> v
  | None ->
      if owns sim p name idx then 0.0
      else
        errf "proc %d: %s access to non-local %s(%s) with no received value"
          p.pid
          (match access with
          | Spmd.Local -> "Local"
          | Spmd.Overlay -> "Overlay"
          | Spmd.Checked -> "Checked"
          | Spmd.Global -> "Global")
          name
          (String.concat "," (List.map string_of_int idx))

let store_elem sim p name idx value (access : Spmd.access) : unit =
  let enc = encode sim name idx in
  let tbl = table sim p name in
  (match access with
  | Spmd.Checked -> tick sim p sim.machine.Machine.check_time
  | Spmd.Local ->
      if not (owns sim p name idx) then
        errf "proc %d: Local store to non-owned %s(%s)" p.pid name
          (String.concat "," (List.map string_of_int idx))
  | _ -> ());
  Hashtbl.replace tbl enc value

let rec eval_fexpr sim p (e : Spmd.fexpr) : float =
  match e with
  | Spmd.FConst x -> x
  | Spmd.FOfInt ie -> float_of_int (eval_expr sim p ie)
  | Spmd.FScalar s -> (
      match Hashtbl.find_opt p.fenv s with
      | Some v -> v
      | None -> float_of_int (lookup_int sim p s))
  | Spmd.FLoad { arr; idx; access } ->
      tick sim p sim.machine.Machine.flop_time;
      load sim p arr (List.map (eval_expr sim p) idx) access
  | Spmd.FNeg a -> -.eval_fexpr sim p a
  | Spmd.FBin (op, a, b) ->
      let x = eval_fexpr sim p a and y = eval_fexpr sim p b in
      tick sim p sim.machine.Machine.flop_time;
      (match op with
      | Hpf.Ast.Add -> x +. y
      | Hpf.Ast.Sub -> x -. y
      | Hpf.Ast.Mul -> x *. y
      | Hpf.Ast.Div -> x /. y)
  | Spmd.FIntrin (f, args) ->
      tick sim p sim.machine.Machine.flop_time;
      Serial.intrinsic f (List.map (eval_fexpr sim p) args)

let rec eval_fcond sim p (c : Spmd.fcond) : bool =
  match c with
  | Spmd.FCmp (a, op, b) ->
      let x = eval_fexpr sim p a and y = eval_fexpr sim p b in
      (match op with
      | Hpf.Ast.Lt -> x < y
      | Hpf.Ast.Le -> x <= y
      | Hpf.Ast.Gt -> x > y
      | Hpf.Ast.Ge -> x >= y
      | Hpf.Ast.Eq -> x = y
      | Hpf.Ast.Ne -> x <> y)
  | Spmd.FAnd (a, b) -> eval_fcond sim p a && eval_fcond sim p b
  | Spmd.FOr (a, b) -> eval_fcond sim p a || eval_fcond sim p b
  | Spmd.FNot a -> not (eval_fcond sim p a)

let my_vp sim p : int list =
  List.mapi
    (fun k _ -> lookup_int sim p (Printf.sprintf "vm$%d" (k + 1)))
    sim.prog.proc_dims

let rec exec_stmt sim p (s : Spmd.stmt) : unit =
  let m = sim.machine in
  match s with
  | Spmd.Comment _ -> ()
  | Spmd.For { var; lo; hi; step; body } ->
      let l = eval_expr sim p lo and h = eval_expr sim p hi in
      let st = eval_expr sim p step in
      if st <= 0 then errf "proc %d: non-positive loop step for %s" p.pid var;
      let i = ref l in
      while !i <= h do
        Hashtbl.replace p.ienv var !i;
        tick sim p m.Machine.loop_time;
        List.iter (exec_stmt sim p) body;
        i := !i + st
      done;
      Hashtbl.remove p.ienv var
  | Spmd.If (c, body) ->
      tick sim p m.Machine.guard_time;
      if eval_cond sim p c then List.iter (exec_stmt sim p) body
  | Spmd.FIf (c, t, e) ->
      tick sim p m.Machine.guard_time;
      if eval_fcond sim p c then List.iter (exec_stmt sim p) t
      else List.iter (exec_stmt sim p) e
  | Spmd.SetScalar (name, v) ->
      let x = eval_fexpr sim p v in
      tick sim p m.Machine.flop_time;
      Hashtbl.replace p.fenv name x
  | Spmd.Store { arr; idx; value; access } ->
      let x = eval_fexpr sim p value in
      tick sim p m.Machine.flop_time;
      store_elem sim p arr (List.map (eval_expr sim p) idx) x access
  | Spmd.Pack { event; arr; idx } ->
      let idx = List.map (eval_expr sim p) idx in
      let enc = encode sim arr idx in
      let tbl = table sim p arr in
      let v =
        match Hashtbl.find_opt tbl enc with
        | Some v -> v
        | None ->
            if owns sim p arr idx then 0.0
            else
              errf "proc %d: packing non-resident element %s(%s)" p.pid arr
                (String.concat "," (List.map string_of_int idx))
      in
      (* buffer-copy cost is decided at Send time: proved-contiguous and
         runtime-contiguous transfers go in place *)
      let key = (p.pid, event) in
      let buf =
        match Hashtbl.find_opt sim.outbuf key with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.replace sim.outbuf key b;
            b
      in
      buf := (arr, enc, v) :: !buf
  | Spmd.Send { event; dest } ->
      let dest_vp = List.map (eval_expr sim p) dest in
      let key = (p.pid, event) in
      let elems =
        match Hashtbl.find_opt sim.outbuf key with
        | Some b ->
            let e = Array.of_list (List.rev !b) in
            Hashtbl.remove sim.outbuf key;
            e
        | None -> [||]
      in
      let n = Array.length elems in
      (* §3.3: transfers proved contiguous at compile time go in place; a
         rectangular section that was not proved is tested at run time (a
         handful of predicate evaluations — far cheaper than packing) and
         goes in place when the test succeeds *)
      let contig =
        if Hashtbl.mem sim.inplace_events event then true
        else if Hashtbl.mem sim.rect_events event && n > 1 then begin
          tick sim p (8.0 *. m.Machine.check_time);
          let ok = ref true in
          for i = 1 to n - 1 do
            let _, e0, _ = elems.(i - 1) and _, e1, _ = elems.(i) in
            if e1 <> e0 + 1 then ok := false
          done;
          !ok
        end
        else false
      in
      if not contig then
        tick sim p (float_of_int n *. m.Machine.pack_time);
      (* a message between two VPs of the same physical processor (cyclic
         distributions) is a local copy, not a network transfer *)
      let local = phys_of_vp sim dest_vp = p.pid in
      if local then begin
        tick sim p (float_of_int n *. m.Machine.pack_time)
      end
      else begin
        tick sim p m.Machine.send_overhead;
        sim.n_msgs <- sim.n_msgs + 1;
        sim.n_bytes <- sim.n_bytes + (n * m.Machine.elem_bytes);
        sim.n_elems_comm <- sim.n_elems_comm + n
      end;
      let k = { k_event = event; k_src = my_vp sim p; k_dst = dest_vp } in
      let seq =
        let s = Option.value (Hashtbl.find_opt sim.send_seq k) ~default:0 in
        Hashtbl.replace sim.send_seq k (s + 1);
        s
      in
      let dst_pid = phys_of_vp sim dest_vp in
      let plan =
        match sim.faults with
        | Some sp when not local ->
            Fault.plan sp ~event ~src:p.pid ~dst:dst_pid ~seq
        | _ -> Fault.no_faults
      in
      (* dropped transmissions: the sender's retransmission timer fires
         (with exponential backoff) and the message is re-sent, costing CPU
         and delaying the arrival — the payload that finally arrives is the
         same, so results are unaffected *)
      if plan.Fault.mp_drops > 0 then begin
        sim.n_timeouts <- sim.n_timeouts + plan.Fault.mp_drops;
        sim.n_retransmits <- sim.n_retransmits + plan.Fault.mp_drops;
        tick sim p (float_of_int plan.Fault.mp_drops *. m.Machine.retry_overhead)
      end;
      let wire = Machine.msg_time m n in
      let arrival =
        if local then p.clock
        else
          p.clock +. wire
          +. Machine.retransmit_wait m plan.Fault.mp_drops
          +. (plan.Fault.mp_delay *. wire)
      in
      let q =
        match Hashtbl.find_opt sim.mailbox k with
        | Some q -> q
        | None ->
            let q = ref [] in
            Hashtbl.replace sim.mailbox k q;
            q
      in
      let msg = { m_seq = seq; m_arrival = arrival; m_payload = elems; m_contig = contig } in
      (* transport order: a reordered message jumps ahead of traffic already
         in flight on its channel; delivery still matches sequence numbers *)
      if plan.Fault.mp_reorder then q := msg :: !q else q := !q @ [ msg ];
      if plan.Fault.mp_dup then
        q := !q @ [ { msg with m_arrival = arrival +. wire } ];
      let depth = List.length !q in
      if depth > sim.max_mbox_depth then sim.max_mbox_depth <- depth
  | Spmd.Recv { event; src } ->
      let src_vp = List.map (eval_expr sim p) src in
      let k = { k_event = event; k_src = src_vp; k_dst = my_vp sim p } in
      let msg = Effect.perform (ERecv k) in
      tick sim p m.Machine.recv_overhead;
      p.clock <- Float.max p.clock msg.m_arrival;
      ignore event;
      let n = Array.length msg.m_payload in
      if not msg.m_contig then
        tick sim p (float_of_int n *. m.Machine.unpack_time);
      Array.iter
        (fun (arr, enc, v) -> Hashtbl.replace (table sim p arr) enc v)
        msg.m_payload
  | Spmd.Reduce { scalar; op } ->
      if Hashtbl.mem sim.store scalar then
        (* array reduction: every processor holds partial values; the
           collective combines them element-wise *)
        Effect.perform (EReduceArr (scalar, op))
      else begin
        let mine =
          match Hashtbl.find_opt p.fenv scalar with Some v -> v | None -> 0.0
        in
        let combined = Effect.perform (EReduce (op, mine)) in
        Hashtbl.replace p.fenv scalar combined
      end
  | Spmd.Call f -> (
      match List.assoc_opt f sim.prog.subs with
      | Some body -> List.iter (exec_stmt sim p) body
      | None -> errf "proc %d: unknown subroutine %s" p.pid f)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

type waiting =
  | WRun  (** not yet started *)
  | WRecv of key * (msg, unit) Effect.Deep.continuation
  | WReduce of Spmd.reduce_op * float * (float, unit) Effect.Deep.continuation
  | WReduceArr of string * Spmd.reduce_op * (unit, unit) Effect.Deep.continuation
  | WDone

type stats = {
  s_time : float;  (** simulated execution time: max processor clock *)
  s_msgs : int;
  s_bytes : int;
  s_elems : int;
  s_proc_times : float array;
  s_retransmits : int;  (** dropped transmissions re-sent after a timeout *)
  s_timeouts : int;  (** retransmission timers fired *)
  s_dups_delivered : int;  (** duplicate copies detected and discarded *)
  s_max_mailbox : int;  (** peak in-flight depth of any one channel *)
}

(* ------------------------------------------------------------------ *)
(* Deadlock diagnostics                                                *)
(* ------------------------------------------------------------------ *)

type wait_reason =
  | WaitRecv of {
      wr_event : int;
      wr_src_vp : int list;
      wr_src_pid : int;  (** physical processor the wait is on *)
      wr_expected_seq : int;
      wr_queued : int;  (** undeliverable messages sitting on the channel *)
    }
  | WaitReduce  (** blocked in a replicated-scalar collective *)
  | WaitReduceArr of string  (** blocked in an array-reduction collective *)

type proc_wait = { w_pid : int; w_clock : float; w_reason : wait_reason }

type diagnostic = {
  dg_waiting : proc_wait list;  (** every stuck processor, by pid *)
  dg_cycle : int list;
      (** pids forming a wait-for cycle (first element repeats conceptually);
          [] when the stall is not cyclic (e.g. a missing send) *)
  dg_undelivered : (int * int list * int list * int) list;
      (** (event, src vp, dst vp, queued count) for nonempty channels *)
  dg_max_mailbox : int;
}

exception Deadlock of diagnostic

let pp_vp fmt vp =
  Fmt.pf fmt "(%s)" (String.concat "," (List.map string_of_int vp))

let pp_diagnostic fmt (d : diagnostic) =
  Fmt.pf fmt "deadlock: %d processor(s) stuck@." (List.length d.dg_waiting);
  List.iter
    (fun w ->
      match w.w_reason with
      | WaitRecv r ->
          Fmt.pf fmt
            "  proc %d [t=%.3e]: recv event %d from vp%a (pid %d), expecting \
             seq %d, %d undeliverable queued@."
            w.w_pid w.w_clock r.wr_event pp_vp r.wr_src_vp r.wr_src_pid
            r.wr_expected_seq r.wr_queued
      | WaitReduce ->
          Fmt.pf fmt "  proc %d [t=%.3e]: blocked in scalar reduction@."
            w.w_pid w.w_clock
      | WaitReduceArr a ->
          Fmt.pf fmt "  proc %d [t=%.3e]: blocked in array reduction of %s@."
            w.w_pid w.w_clock a)
    d.dg_waiting;
  (match d.dg_cycle with
  | [] -> Fmt.pf fmt "  no wait-for cycle: a send is missing entirely@."
  | c ->
      Fmt.pf fmt "  wait-for cycle: %s -> %s@."
        (String.concat " -> " (List.map string_of_int c))
        (string_of_int (List.hd c)));
  List.iter
    (fun (ev, src, dst, n) ->
      Fmt.pf fmt "  undelivered: event %d vp%a -> vp%a, %d message(s)@." ev
        pp_vp src pp_vp dst n)
    d.dg_undelivered;
  if d.dg_max_mailbox > 0 then
    Fmt.pf fmt "  peak mailbox depth: %d@." d.dg_max_mailbox

let diagnostic_to_string d = Fmt.str "%a" pp_diagnostic d

(* shortest-path-free cycle finding: DFS over the wait-for edges; small
   graphs, recursion depth bounded by nprocs *)
let find_cycle (succ : int -> int list) (nodes : int list) : int list =
  let state = Hashtbl.create 16 in
  (* 0 = on stack, 1 = done *)
  let cycle = ref [] in
  let rec dfs path n =
    match Hashtbl.find_opt state n with
    | Some _ -> ()
    | None ->
        Hashtbl.replace state n 0;
        List.iter
          (fun s ->
            if !cycle = [] then
              match Hashtbl.find_opt state s with
              | Some 0 ->
                  (* found: unwind the path back to s *)
                  let rec take = function
                    | [] -> []
                    | x :: rest -> if x = s then [ x ] else x :: take rest
                  in
                  cycle := List.rev (take (n :: path))
              | Some _ -> ()
              | None -> dfs (n :: path) s)
          (succ n);
        Hashtbl.replace state n 1
  in
  List.iter (fun n -> if !cycle = [] then dfs [] n) nodes;
  !cycle

let run (sim : sim) : stats =
  let status = Array.make sim.nprocs WRun in
  let start p =
    let open Effect.Deep in
    match_with
      (fun () -> List.iter (exec_stmt sim sim.procs.(p)) sim.prog.main)
      ()
      {
        retc = (fun () -> status.(p) <- WDone);
        exnc = (fun e -> raise e);
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | ERecv k ->
                Some
                  (fun (cont : (c, unit) continuation) ->
                    status.(p) <- WRecv (k, cont))
            | EReduce (op, v) ->
                Some
                  (fun (cont : (c, unit) continuation) ->
                    status.(p) <- WReduce (op, v, cont))
            | EReduceArr (name, op) ->
                Some
                  (fun (cont : (c, unit) continuation) ->
                    status.(p) <- WReduceArr (name, op, cont))
            | _ -> None);
      }
  in
  for p = 0 to sim.nprocs - 1 do
    start p
  done;
  let is_done = function WDone -> true | _ -> false in
  let all_done () = Array.for_all is_done status in
  let progressed = ref true in
  while (not (all_done ())) && !progressed do
    progressed := false;
    (* deliver available messages: the transport may hold duplicates and
       reordered traffic, so delivery matches the next expected sequence
       number per channel — stale (already-delivered) copies are discarded
       and counted, out-of-order messages wait in flight *)
    for p = 0 to sim.nprocs - 1 do
      match status.(p) with
      | WRecv (k, cont) -> (
          match Hashtbl.find_opt sim.mailbox k with
          | Some q when !q <> [] -> (
              let expected =
                Option.value (Hashtbl.find_opt sim.recv_seq k) ~default:0
              in
              let stale, live =
                List.partition (fun m -> m.m_seq < expected) !q
              in
              if stale <> [] then begin
                sim.n_dups_delivered <- sim.n_dups_delivered + List.length stale;
                q := live
              end;
              let rec take acc = function
                | [] -> None
                | m :: rest ->
                    if m.m_seq = expected then Some (m, List.rev_append acc rest)
                    else take (m :: acc) rest
              in
              match take [] live with
              | Some (msg, rest) ->
                  q := rest;
                  Hashtbl.replace sim.recv_seq k (expected + 1);
                  progressed := true;
                  status.(p) <- WDone;
                  (* placeholder; handler overwrites on next block *)
                  Effect.Deep.continue cont msg
              | None -> ())
          | _ -> ())
      | _ -> ()
    done;
    (* collectives *)
    if not !progressed then begin
      let at_arr_reduce =
        Array.for_all (function WReduceArr _ -> true | _ -> false) status
        && Array.length status > 0
      in
      if at_arr_reduce then begin
        let name, op, _ =
          match status.(0) with WReduceArr (n, o, c) -> (n, o, c) | _ -> assert false
        in
        let tables = Hashtbl.find sim.store name in
        (* element-wise combination of every processor's partial values *)
        let keys = Hashtbl.create 256 in
        Array.iter
          (fun tbl -> Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) tbl)
          tables;
        let combined = Hashtbl.create (Hashtbl.length keys) in
        Hashtbl.iter
          (fun k () ->
            let acc = ref None in
            Array.iter
              (fun tbl ->
                match Hashtbl.find_opt tbl k with
                | None -> ()
                | Some v ->
                    acc :=
                      Some
                        (match (!acc, op) with
                        | None, _ -> v
                        | Some a, Spmd.RSum -> a +. v
                        | Some a, Spmd.RMax -> Float.max a v
                        | Some a, Spmd.RMin -> Float.min a v))
              tables;
            match !acc with Some v -> Hashtbl.replace combined k v | None -> ())
          keys;
        Array.iter
          (fun tbl -> Hashtbl.iter (fun k v -> Hashtbl.replace tbl k v) combined)
          tables;
        let nelems = Hashtbl.length combined in
        let stages =
          if sim.nprocs <= 1 then 0
          else int_of_float (ceil (log (float_of_int sim.nprocs) /. log 2.0))
        in
        let cost =
          2.0 *. float_of_int stages *. Machine.msg_time sim.machine nelems
        in
        let tmax = Array.fold_left (fun acc p -> Float.max acc p.clock) 0.0 sim.procs in
        let t_done = tmax +. cost in
        sim.n_msgs <- sim.n_msgs + (2 * stages * sim.nprocs);
        sim.n_bytes <-
          sim.n_bytes + (2 * stages * nelems * sim.machine.Machine.elem_bytes);
        let conts =
          Array.mapi
            (fun pidx st ->
              match st with WReduceArr (_, _, c) -> Some (pidx, c) | _ -> None)
            status
        in
        Array.iter
          (function
            | Some (pidx, cont) ->
                sim.procs.(pidx).clock <- t_done;
                status.(pidx) <- WDone;
                progressed := true;
                Effect.Deep.continue cont ()
            | None -> ())
          conts
      end;
      let at_reduce =
        Array.for_all (function WReduce _ -> true | WDone -> false | _ -> false) status
        && Array.exists (function WReduce _ -> true | _ -> false) status
      in
      if at_reduce then begin
        let vals =
          Array.to_list status
          |> List.filter_map (function WReduce (op, v, _) -> Some (op, v) | _ -> None)
        in
        let op = fst (List.hd vals) in
        let combined =
          List.fold_left
            (fun acc (_, v) ->
              match op with
              | Spmd.RSum -> acc +. v
              | Spmd.RMax -> Float.max acc v
              | Spmd.RMin -> Float.min acc v)
            (match op with
            | Spmd.RSum -> 0.0
            | Spmd.RMax -> Float.neg_infinity
            | Spmd.RMin -> Float.infinity)
            vals
        in
        let tmax =
          Array.fold_left (fun acc p -> Float.max acc p.clock) 0.0 sim.procs
        in
        let t_done = tmax +. Machine.allreduce_time sim.machine sim.nprocs in
        let conts =
          Array.mapi
            (fun p s -> match s with WReduce (_, _, c) -> Some (p, c) | _ -> None)
            status
        in
        Array.iter
          (function
            | Some (p, cont) ->
                sim.procs.(p).clock <- t_done;
                status.(p) <- WDone;
                progressed := true;
                Effect.Deep.continue cont combined
            | None -> ())
          conts
      end
    end
  done;
  if not (all_done ()) then begin
    (* structured diagnosis: who waits on whom, with event ids, sequence
       numbers, simulated clocks and channel depths; extract a wait-for
       cycle when one exists *)
    let waiting =
      Array.to_list status
      |> List.mapi (fun p s ->
             let w reason =
               Some { w_pid = p; w_clock = sim.procs.(p).clock; w_reason = reason }
             in
             match s with
             | WRecv (k, _) ->
                 let queued =
                   match Hashtbl.find_opt sim.mailbox k with
                   | Some q -> List.length !q
                   | None -> 0
                 in
                 w
                   (WaitRecv
                      {
                        wr_event = k.k_event;
                        wr_src_vp = k.k_src;
                        wr_src_pid = phys_of_vp sim k.k_src;
                        wr_expected_seq =
                          Option.value (Hashtbl.find_opt sim.recv_seq k) ~default:0;
                        wr_queued = queued;
                      })
             | WReduce _ -> w WaitReduce
             | WReduceArr (name, _, _) -> w (WaitReduceArr name)
             | WRun | WDone -> None)
      |> List.filter_map Fun.id
    in
    let stuck = List.map (fun w -> w.w_pid) waiting in
    let succ p =
      match List.find_opt (fun w -> w.w_pid = p) waiting with
      | Some { w_reason = WaitRecv r; _ } ->
          if List.mem r.wr_src_pid stuck then [ r.wr_src_pid ] else []
      | Some { w_reason = WaitReduce | WaitReduceArr _; _ } ->
          (* a collective waits on every processor that has not reached it *)
          List.filter
            (fun p' ->
              p' <> p
              &&
              match List.find_opt (fun w -> w.w_pid = p') waiting with
              | Some { w_reason = WaitRecv _; _ } -> true
              | _ -> false)
            stuck
      | _ -> []
    in
    let undelivered =
      Hashtbl.fold
        (fun k q acc ->
          if !q = [] then acc
          else (k.k_event, k.k_src, k.k_dst, List.length !q) :: acc)
        sim.mailbox []
      |> List.sort compare
    in
    raise
      (Deadlock
         {
           dg_waiting = waiting;
           dg_cycle = find_cycle succ stuck;
           dg_undelivered = undelivered;
           dg_max_mailbox = sim.max_mbox_depth;
         })
  end;
  {
    s_time = Array.fold_left (fun acc p -> Float.max acc p.clock) 0.0 sim.procs;
    s_msgs = sim.n_msgs;
    s_bytes = sim.n_bytes;
    s_elems = sim.n_elems_comm;
    s_proc_times = Array.map (fun p -> p.clock) sim.procs;
    s_retransmits = sim.n_retransmits;
    s_timeouts = sim.n_timeouts;
    s_dups_delivered = sim.n_dups_delivered;
    s_max_mailbox = sim.max_mbox_depth;
  }

(* ------------------------------------------------------------------ *)
(* Result inspection                                                   *)
(* ------------------------------------------------------------------ *)

(** Value of an array element after execution, read from its owner. *)
let get_elem sim name idx =
  let pid = owner_pid sim name idx in
  let enc = encode sim name idx in
  match Hashtbl.find_opt (Hashtbl.find sim.store name).(pid) enc with
  | Some v -> v
  | None -> 0.0

(** Scalar value (replicated; read from processor 0). *)
let get_scalar sim name =
  match Hashtbl.find_opt sim.procs.(0).fenv name with
  | Some v -> v
  | None -> errf "unknown scalar %s" name
