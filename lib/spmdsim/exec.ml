(** SPMD execution facade: runs the compiler's {!Dhpf.Spmd} programs on a
    simulated distributed-memory machine, through one of two engines.

    [`Closure] (the default, {!Compile}) lowers the program once into OCaml
    closures with slot-resolved environments and dense per-processor array
    blocks. [`Interp] is the original tree-walking interpreter, kept as the
    differential oracle: both engines share {!Runtime}'s transport and
    scheduler and charge clock time in the same order, so they produce
    bit-identical element values and identical message/byte/retransmit
    counters (asserted by the engine-differential property tests).

    Each processor runs as an effect-handler fiber with its own virtual
    clock; sends are buffered (non-blocking), receives block until the
    matching message exists, and the scheduler advances whichever processor
    can make progress. Receive completion time is
    [max(local clock + recv overhead, message arrival)] with arrival =
    sender clock at send + alpha + bytes*beta — a LogGP-style model.

    In the interpreter, storage is one table per (processor, array) holding
    both owned elements and received non-local values; ownership is
    recomputed from the layout descriptors, so a [Local] access to a
    non-owned element or a [Checked] read of never-communicated data raises
    — executing compiled code under the simulator doubles as a correctness
    check of the compiler. *)

open Dhpf

exception Error = Runtime.Error

let errf fmt = Runtime.errf fmt

(* ------------------------------------------------------------------ *)
(* Interpreter state                                                    *)
(* ------------------------------------------------------------------ *)

type meta = {
  ma : Runtime.ameta;
  mt_layout : Spmd.array_layout option;
  mt_tables : (int, float) Hashtbl.t array;  (** per-pid element tables *)
}
(* metadata and storage resolve through ONE hashtable lookup per access
   (they used to be two parallel tables, looked up separately per element) *)

type pstate = {
  pid : int;
  coords : int array;
  ienv : (string, int) Hashtbl.t;
  fenv : (string, float) Hashtbl.t;
  mutable clock : float;
}

type isim = {
  prog : Spmd.program;
  i_domains : int;
  machine : Machine.t;
  skew : float array;  (** per-processor compute-time multiplier (>= 1) *)
  genv : (string, int) Hashtbl.t;  (** global parameter values *)
  extents : int array;
  inprocs : int;
  procs : pstate array;
  meta : (string, meta) Hashtbl.t;
  tr : Runtime.transport;
  outbufs : (int, Runtime.packbuf) Hashtbl.t array;
      (** per pid: event -> elements packed so far (per-processor so
          parallel lanes never contend on one table) *)
  inplace_events : (int, unit) Hashtbl.t;
  rect_events : (int, unit) Hashtbl.t;
  mutable iran : bool;
}

(* ------------------------------------------------------------------ *)
(* Startup                                                             *)
(* ------------------------------------------------------------------ *)

let eval_global sim e = Runtime.eval_genv sim.genv e

let make_interp ?(machine = Machine.default) ?faults
    ?(domains = Par.domains ()) ~nprocs ?(params = []) (prog : Spmd.program) :
    isim =
  let su = Runtime.setup ?faults ~nprocs ~params prog in
  let geval = Runtime.eval_genv su.Runtime.su_genv in
  let meta = Hashtbl.create 16 in
  List.iter
    (fun (ad : Spmd.array_decl) ->
      Hashtbl.replace meta ad.ad_name
        {
          ma = Runtime.ameta ~eval:geval ad;
          mt_layout = ad.ad_layout;
          mt_tables = Array.init su.Runtime.su_total (fun _ -> Hashtbl.create 64);
        })
    prog.arrays;
  let procs =
    Array.init su.Runtime.su_total (fun pid ->
        let coords = su.Runtime.su_coords.(pid) in
        let ienv = Hashtbl.create 16 in
        Array.iteri
          (fun k c -> Hashtbl.replace ienv (Printf.sprintf "m$%d" (k + 1)) c)
          coords;
        List.iter
          (fun (k, v) ->
            Hashtbl.replace ienv (Printf.sprintf "vm$%d" (k + 1)) v)
          su.Runtime.su_vm0.(pid);
        { pid; coords; ienv; fenv = Hashtbl.create 16; clock = 0.0 })
  in
  let sim =
    {
      prog;
      i_domains = domains;
      machine;
      skew = su.Runtime.su_skew;
      genv = su.Runtime.su_genv;
      extents = su.Runtime.su_extents;
      inprocs = su.Runtime.su_total;
      procs;
      meta;
      tr = Runtime.transport_make ~machine ~faults ~nprocs:su.Runtime.su_total;
      outbufs = Array.init su.Runtime.su_total (fun _ -> Hashtbl.create 16);
      inplace_events = Hashtbl.create 8;
      rect_events = Hashtbl.create 8;
      iran = false;
    }
  in
  List.iter
    (fun (e : Spmd.event_info) ->
      if e.ev_inplace then Hashtbl.replace sim.inplace_events e.Spmd.ev_id ();
      if e.ev_rect then Hashtbl.replace sim.rect_events e.Spmd.ev_id ())
    prog.events;
  (* replicated scalars start at zero *)
  Array.iter
    (fun p -> List.iter (fun s -> Hashtbl.replace p.fenv s 0.0) prog.scalars)
    sim.procs;
  sim

(* ------------------------------------------------------------------ *)
(* Ownership and addressing                                            *)
(* ------------------------------------------------------------------ *)

let meta_of sim name =
  match Hashtbl.find_opt sim.meta name with
  | Some m -> m
  | None -> errf "unknown array %s" name

let owns sim (p : pstate) (mt : meta) (idx : int list) : bool =
  match mt.mt_layout with
  | None -> true (* replicated array: every processor has a copy *)
  | Some la ->
      let idxa = Array.of_list idx in
      List.for_all2
        (fun dl c ->
          match Runtime.owner_coord ~eval:(eval_global sim) dl idxa with
          | None -> true
          | Some o -> o = c)
        la.Spmd.la_dims
        (Array.to_list p.coords)

(* the linear pid of the owner (replicated dims resolve to coordinate 0) *)
let owner_pid sim (mt : meta) (idx : int list) : int =
  match mt.mt_layout with
  | None -> 0
  | Some la ->
      let idxa = Array.of_list idx in
      let coords =
        List.map
          (fun dl ->
            match Runtime.owner_coord ~eval:(eval_global sim) dl idxa with
            | None -> 0
            | Some o -> o)
          la.Spmd.la_dims
      in
      let pid = ref 0 and stride = ref 1 in
      List.iteri
        (fun k c ->
          pid := !pid + (c * !stride);
          stride := !stride * sim.extents.(k))
        coords;
      !pid

(* VP coordinates -> linear physical pid *)
let phys_of_vp_i sim (vp : int list) : int =
  Runtime.phys_of_vp ~eval:(eval_global sim) sim.prog ~extents:sim.extents vp

(* ------------------------------------------------------------------ *)
(* Per-processor interpreter                                           *)
(* ------------------------------------------------------------------ *)

let lookup_int sim p s =
  match Hashtbl.find_opt p.ienv s with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt sim.genv s with
      | Some v -> v
      | None -> errf "proc %d: unbound integer name %s" p.pid s)

let eval_expr sim p e = Iset.Codegen.eval_expr (lookup_int sim p) e
let eval_cond sim p c = Iset.Codegen.eval_cond (lookup_int sim p) c

(* advance a processor's clock by local work, scaled by its straggler
   multiplier (1.0 on the idealized machine) *)
let tick sim p dt = p.clock <- p.clock +. (dt *. sim.skew.(p.pid))

let load sim p (mt : meta) idx (access : Spmd.access) : float =
  let enc = Runtime.encode mt.ma idx in
  (match access with
  | Spmd.Checked -> tick sim p sim.machine.Machine.check_time
  | _ -> ());
  match Hashtbl.find_opt mt.mt_tables.(p.pid) enc with
  | Some v -> v
  | None ->
      if owns sim p mt idx then 0.0
      else
        errf "proc %d: %s access to non-local %s(%s) with no received value"
          p.pid
          (match access with
          | Spmd.Local -> "Local"
          | Spmd.Overlay -> "Overlay"
          | Spmd.Checked -> "Checked"
          | Spmd.Global -> "Global")
          mt.ma.Runtime.am_name
          (String.concat "," (List.map string_of_int idx))

let store_elem sim p (mt : meta) idx value (access : Spmd.access) : unit =
  let enc = Runtime.encode mt.ma idx in
  (match access with
  | Spmd.Checked -> tick sim p sim.machine.Machine.check_time
  | Spmd.Local ->
      if not (owns sim p mt idx) then
        errf "proc %d: Local store to non-owned %s(%s)" p.pid
          mt.ma.Runtime.am_name
          (String.concat "," (List.map string_of_int idx))
  | _ -> ());
  Hashtbl.replace mt.mt_tables.(p.pid) enc value

let rec eval_fexpr sim p (e : Spmd.fexpr) : float =
  match e with
  | Spmd.FConst x -> x
  | Spmd.FOfInt ie -> float_of_int (eval_expr sim p ie)
  | Spmd.FScalar s -> (
      match Hashtbl.find_opt p.fenv s with
      | Some v -> v
      | None -> float_of_int (lookup_int sim p s))
  | Spmd.FLoad { arr; idx; access } ->
      tick sim p sim.machine.Machine.flop_time;
      load sim p (meta_of sim arr) (List.map (eval_expr sim p) idx) access
  | Spmd.FNeg a -> -.eval_fexpr sim p a
  | Spmd.FBin (op, a, b) ->
      let x = eval_fexpr sim p a in
      let y = eval_fexpr sim p b in
      tick sim p sim.machine.Machine.flop_time;
      (match op with
      | Hpf.Ast.Add -> x +. y
      | Hpf.Ast.Sub -> x -. y
      | Hpf.Ast.Mul -> x *. y
      | Hpf.Ast.Div -> x /. y)
  | Spmd.FIntrin (f, args) ->
      tick sim p sim.machine.Machine.flop_time;
      Serial.intrinsic f (List.map (eval_fexpr sim p) args)

let rec eval_fcond sim p (c : Spmd.fcond) : bool =
  match c with
  | Spmd.FCmp (a, op, b) ->
      let x = eval_fexpr sim p a in
      let y = eval_fexpr sim p b in
      (match op with
      | Hpf.Ast.Lt -> x < y
      | Hpf.Ast.Le -> x <= y
      | Hpf.Ast.Gt -> x > y
      | Hpf.Ast.Ge -> x >= y
      | Hpf.Ast.Eq -> x = y
      | Hpf.Ast.Ne -> x <> y)
  | Spmd.FAnd (a, b) -> eval_fcond sim p a && eval_fcond sim p b
  | Spmd.FOr (a, b) -> eval_fcond sim p a || eval_fcond sim p b
  | Spmd.FNot a -> not (eval_fcond sim p a)

let my_vp sim p : int list =
  List.mapi
    (fun k _ -> lookup_int sim p (Printf.sprintf "vm$%d" (k + 1)))
    sim.prog.proc_dims

let rec exec_stmt sim p (s : Spmd.stmt) : unit =
  let m = sim.machine in
  match s with
  | Spmd.Comment _ -> ()
  | Spmd.For { var; lo; hi; step; body } ->
      let l = eval_expr sim p lo and h = eval_expr sim p hi in
      let st = eval_expr sim p step in
      if st <= 0 then errf "proc %d: non-positive loop step for %s" p.pid var;
      let i = ref l in
      while !i <= h do
        Hashtbl.replace p.ienv var !i;
        tick sim p m.Machine.loop_time;
        List.iter (exec_stmt sim p) body;
        i := !i + st
      done;
      Hashtbl.remove p.ienv var
  | Spmd.If (c, body) ->
      tick sim p m.Machine.guard_time;
      if eval_cond sim p c then List.iter (exec_stmt sim p) body
  | Spmd.FIf (c, t, e) ->
      tick sim p m.Machine.guard_time;
      if eval_fcond sim p c then List.iter (exec_stmt sim p) t
      else List.iter (exec_stmt sim p) e
  | Spmd.SetScalar (name, v) ->
      let x = eval_fexpr sim p v in
      tick sim p m.Machine.flop_time;
      Hashtbl.replace p.fenv name x
  | Spmd.Store { arr; idx; value; access } ->
      let x = eval_fexpr sim p value in
      tick sim p m.Machine.flop_time;
      store_elem sim p (meta_of sim arr) (List.map (eval_expr sim p) idx) x
        access
  | Spmd.Pack { event; arr; idx } ->
      let mt = meta_of sim arr in
      let idx = List.map (eval_expr sim p) idx in
      let enc = Runtime.encode mt.ma idx in
      let v =
        match Hashtbl.find_opt mt.mt_tables.(p.pid) enc with
        | Some v -> v
        | None ->
            if owns sim p mt idx then 0.0
            else
              errf "proc %d: packing non-resident element %s(%s)" p.pid arr
                (String.concat "," (List.map string_of_int idx))
      in
      (* buffer-copy cost is decided at Send time: proved-contiguous and
         runtime-contiguous transfers go in place *)
      let buf =
        match Hashtbl.find_opt sim.outbufs.(p.pid) event with
        | Some b -> b
        | None ->
            let b = Runtime.packbuf_create () in
            Hashtbl.replace sim.outbufs.(p.pid) event b;
            b
      in
      Runtime.packbuf_push buf ~arr enc v
  | Spmd.Send { event; dest } ->
      let dest_vp = List.map (eval_expr sim p) dest in
      let pl =
        match Hashtbl.find_opt sim.outbufs.(p.pid) event with
        | Some b -> Runtime.packbuf_flush b
        | None -> Runtime.empty_payload
      in
      Runtime.send sim.tr
        ~tick:(fun dt -> tick sim p dt)
        ~get_clock:(fun () -> p.clock)
        ~pid:p.pid
        ~dst_pid:(phys_of_vp_i sim dest_vp)
        ~event ~src_vp:(my_vp sim p) ~dst_vp:dest_vp
        ~inplace:(Hashtbl.mem sim.inplace_events event)
        ~rect:(Hashtbl.mem sim.rect_events event)
        pl
  | Spmd.Recv { event; src } ->
      let src_vp = List.map (eval_expr sim p) src in
      let k =
        { Runtime.k_event = event; k_src = src_vp; k_dst = my_vp sim p }
      in
      let t0 = p.clock in
      let msg = Effect.perform (Runtime.ERecv k) in
      tick sim p m.Machine.recv_overhead;
      p.clock <- Float.max p.clock msg.Runtime.m_arrival;
      let pl = msg.Runtime.m_payload in
      let n = Array.length pl.Runtime.pl_idx in
      if not msg.Runtime.m_contig then
        tick sim p (float_of_int n *. m.Machine.unpack_time);
      if n > 0 then begin
        (* resolve the destination table once per message, not per element *)
        let tbl = (meta_of sim pl.Runtime.pl_arr).mt_tables.(p.pid) in
        for i = 0 to n - 1 do
          Hashtbl.replace tbl pl.Runtime.pl_idx.(i) pl.Runtime.pl_val.(i)
        done
      end;
      Runtime.trace_recv sim.tr ~tid:p.pid ~t0 ~t1:p.clock k msg
  | Spmd.Reduce { scalar; op } ->
      if Hashtbl.mem sim.meta scalar then
        (* array reduction: every processor holds partial values; the
           collective combines them element-wise *)
        Effect.perform (Runtime.EReduceArr (scalar, op))
      else begin
        let mine =
          match Hashtbl.find_opt p.fenv scalar with Some v -> v | None -> 0.0
        in
        let combined = Effect.perform (Runtime.EReduce (op, mine)) in
        Hashtbl.replace p.fenv scalar combined
      end
  | Spmd.Call f -> (
      match List.assoc_opt f sim.prog.subs with
      | Some body -> List.iter (exec_stmt sim p) body
      | None -> errf "proc %d: unknown subroutine %s" p.pid f)

(* ------------------------------------------------------------------ *)
(* Interpreter collectives and scheduling                              *)
(* ------------------------------------------------------------------ *)

(* element-wise combination of every processor's partial values *)
let reduce_arr_interp sim name (op : Spmd.reduce_op) : int =
  let tables = (meta_of sim name).mt_tables in
  let keys = Hashtbl.create 256 in
  Array.iter
    (fun tbl -> Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) tbl)
    tables;
  let combined = Hashtbl.create (Hashtbl.length keys) in
  Hashtbl.iter
    (fun k () ->
      let acc = ref None in
      Array.iter
        (fun tbl ->
          match Hashtbl.find_opt tbl k with
          | None -> ()
          | Some v ->
              acc :=
                Some
                  (match (!acc, op) with
                  | None, _ -> v
                  | Some a, Spmd.RSum -> a +. v
                  | Some a, Spmd.RMax -> Float.max a v
                  | Some a, Spmd.RMin -> Float.min a v))
        tables;
      match !acc with Some v -> Hashtbl.replace combined k v | None -> ())
    keys;
  Array.iter
    (fun tbl -> Hashtbl.iter (fun k v -> Hashtbl.replace tbl k v) combined)
    tables;
  Hashtbl.length combined

let run_interp (sim : isim) : Runtime.stats =
  if sim.iran then
    errf "simulation already executed: Exec.run consumed this sim (build a fresh one with Exec.make)";
  sim.iran <- true;
  Runtime.sched_run_par ~domains:sim.i_domains
    {
      Runtime.h_nprocs = sim.inprocs;
      h_tr = sim.tr;
      h_clock = (fun p -> sim.procs.(p).clock);
      h_set_clock = (fun p t -> sim.procs.(p).clock <- t);
      h_body =
        (fun p -> List.iter (exec_stmt sim sim.procs.(p)) sim.prog.main);
      h_reduce_arr = reduce_arr_interp sim;
      h_phys_of_vp = phys_of_vp_i sim;
    };
  Runtime.stats_of sim.tr
    ~proc_times:(Array.map (fun p -> p.clock) sim.procs)

(* ------------------------------------------------------------------ *)
(* Interpreter result inspection                                       *)
(* ------------------------------------------------------------------ *)

let get_elem_interp sim name idx =
  let mt = meta_of sim name in
  let pid = owner_pid sim mt idx in
  let enc = Runtime.encode mt.ma idx in
  match Hashtbl.find_opt mt.mt_tables.(pid) enc with
  | Some v -> v
  | None -> 0.0

let get_scalar_interp sim name =
  match Hashtbl.find_opt sim.procs.(0).fenv name with
  | Some v -> v
  | None -> errf "unknown scalar %s" name

(* ------------------------------------------------------------------ *)
(* Interpreter checkpoint capture                                      *)
(* ------------------------------------------------------------------ *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare |> Array.of_list

let capture_interp (sim : isim) : Runtime.image =
  let arrays =
    Hashtbl.fold (fun name _ acc -> name :: acc) sim.meta []
    |> List.sort compare
  in
  let procs =
    Array.map
      (fun (p : pstate) ->
        let elems =
          List.map
            (fun name ->
              (name, sorted_bindings (meta_of sim name).mt_tables.(p.pid)))
            arrays
          |> Array.of_list
        in
        let staged =
          Hashtbl.fold
            (fun event buf acc ->
              match Runtime.packbuf_peek buf with
              | pl when Array.length pl.Runtime.pl_idx > 0 -> (event, pl) :: acc
              | _ -> acc)
            sim.outbufs.(p.pid) []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> Array.of_list
        in
        {
          Runtime.pi_clock = p.clock;
          pi_ints = sorted_bindings p.ienv;
          pi_floats = sorted_bindings p.fenv;
          pi_elems = elems;
          pi_staged = staged;
        })
      sim.procs
  in
  let chans, inflight, ctrs = Runtime.capture_transport sim.tr in
  {
    Runtime.im_ops = sim.tr.Runtime.tr_gops;
    im_procs = procs;
    im_chans = chans;
    im_inflight = inflight;
    im_counters = ctrs;
  }

(* ------------------------------------------------------------------ *)
(* Public facade                                                       *)
(* ------------------------------------------------------------------ *)

type engine = [ `Closure | `Interp | `Native ]

let engine_names = [ "closure"; "interp"; "native" ]

let engine_of_string = function
  | "closure" -> Some `Closure
  | "interp" -> Some `Interp
  | "native" -> Some `Native
  | _ -> None

let engine_to_string = function
  | `Closure -> "closure"
  | `Interp -> "interp"
  | `Native -> "native"

(* The native engine returns a Compile.csim with the generated kernel
   swapped in as its main, so its whole dispatch surface is Compile's. *)
type sim = SClosure of Compile.csim | SInterp of isim | SNative of Compile.csim

let make ?(engine = `Closure) ?machine ?faults ?domains ~nprocs ?params
    (prog : Spmd.program) : sim =
  match engine with
  | `Closure ->
      SClosure (Compile.make ?machine ?faults ?domains ~nprocs ?params prog)
  | `Interp -> SInterp (make_interp ?machine ?faults ?domains ~nprocs ?params prog)
  | `Native -> SNative (Native.make ?machine ?faults ?domains ~nprocs ?params prog)

let nprocs = function
  | SClosure cs | SNative cs -> Compile.nprocs cs
  | SInterp s -> s.inprocs

let phys_of_vp = function
  | SClosure cs | SNative cs -> Compile.phys_of_vp cs
  | SInterp s -> phys_of_vp_i s

type stats = Runtime.stats = {
  s_time : float;
  s_msgs : int;
  s_bytes : int;
  s_elems : int;
  s_proc_times : float array;
  s_retransmits : int;
  s_timeouts : int;
  s_dups_delivered : int;
  s_max_mailbox : int;
  s_crashes : int;
  s_recoveries : int;
  s_ckpts : int;
  s_ckpt_bytes : int;
  s_lost_work : float;
}

type wait_reason = Runtime.wait_reason =
  | WaitRecv of {
      wr_event : int;
      wr_src_vp : int list;
      wr_src_pid : int;
      wr_expected_seq : int;
      wr_queued : int;
    }
  | WaitReduce
  | WaitReduceArr of string

type proc_wait = Runtime.proc_wait = {
  w_pid : int;
  w_clock : float;
  w_reason : wait_reason;
}

type diagnostic = Runtime.diagnostic = {
  dg_waiting : proc_wait list;
  dg_cycle : int list;
  dg_undelivered : (int * int list * int list * int) list;
  dg_max_mailbox : int;
}

exception Deadlock = Runtime.Deadlock

let pp_diagnostic = Runtime.pp_diagnostic
let diagnostic_to_string = Runtime.diagnostic_to_string

let run = function
  | SClosure cs | SNative cs -> Compile.run cs
  | SInterp s -> run_interp s

type comm_cell = Runtime.comm_cell = {
  cm_event : int;
  cm_src : int;
  cm_dst : int;
  cm_msgs : int;
  cm_elems : int;
  cm_bytes : int;
}

let comm_cells = function
  | SClosure cs | SNative cs -> Compile.comm_cells cs
  | SInterp s -> Runtime.comm_cells s.tr

let get_elem = function
  | SClosure cs | SNative cs -> Compile.get_elem cs
  | SInterp s -> get_elem_interp s

let get_scalar = function
  | SClosure cs | SNative cs -> Compile.get_scalar cs
  | SInterp s -> get_scalar_interp s

exception Crash = Runtime.Crash

let transport = function
  | SClosure cs | SNative cs -> Compile.transport cs
  | SInterp s -> s.tr

let capture = function
  | SClosure cs | SNative cs -> Compile.capture cs
  | SInterp s -> capture_interp s

let clocks = function
  | SClosure cs | SNative cs -> Compile.clocks cs
  | SInterp s -> Array.map (fun (p : pstate) -> p.clock) s.procs

let set_clocks sim t =
  match sim with
  | SClosure cs | SNative cs -> Compile.set_clocks cs t
  | SInterp s -> Array.iter (fun (p : pstate) -> p.clock <- t) s.procs

let charge sim dt =
  match sim with
  | SClosure cs | SNative cs -> Compile.charge cs dt
  | SInterp s -> Array.iter (fun (p : pstate) -> p.clock <- p.clock +. dt) s.procs
