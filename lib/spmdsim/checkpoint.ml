(* Coordinated checkpoint/restart for the SPMD simulator.

   The protocol is the classic coordinated scheme made trivial by
   determinism: every [Runtime.tr_ckpt_every] global communication
   operations, the controller captures a deep image of the whole group —
   per-processor clocks, live bindings, every resident array element
   (dense owned blocks, halo side tables, sparse reduction storage),
   staged pack buffers, per-channel sequence counters and in-flight
   messages — and prices the write on every processor's clock.

   Consistency argument: a snapshot is taken inside the scheduler at a
   deterministic global operation count, between operations, so it is a
   cut of the unique deterministic execution — no processor is mid-send,
   no message is half-delivered, and the same cut is reproduced by any
   replay. Quiescence is not required: in-flight messages are part of the
   image.

   Recovery is re-execution-based. OCaml effect continuations (the
   processor fibers) cannot be serialized, so "restore from snapshot"
   runs a fresh simulation from the start and replays deterministically
   up to the rollback point — message faults, crash draws and checkpoint
   charges all re-derive identically (pure hashes + shared consumed-crash
   set), so the replayed state at the rollback boundary is bit-identical
   to the stored snapshot. The controller verifies exactly that
   ({!image_equal}, floats compared by bits) before applying the restart
   barrier: every clock is set to the recovery time

     T_r = max clock at crash + detection timeout + restart latency
           + checkpoint read-back cost (alpha + bytes * beta)

   Element values never depend on clocks (delivery is sequence-matched),
   so the barrier cannot change results: values stay bit-identical to the
   fault-free run and the first-transmission-only comm matrix stays
   fault-invariant. Only clocks — lost work, detection, restart, reads —
   move, which is the point.

   Earlier recoveries are replayed too: each attempt re-applies every
   previously-applied restart barrier at its operation count, so clock
   evolution (and with it message arrival times and later snapshots) is
   identical across attempts — what makes rollback verification exact
   even after multiple crashes. *)

let errf = Runtime.errf

(* ------------------------------------------------------------------ *)
(* Bit-exact image equality                                             *)
(* ------------------------------------------------------------------ *)

(* bit comparison: NaNs compare equal to themselves, 0.0 <> -0.0 — the
   right notion for "deterministic replay reproduced the exact state" *)
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let arr_equal eq a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if not (eq x b.(i)) then ok := false) a;
  !ok

let farr_equal = arr_equal feq

let payload_equal (a : Runtime.payload) (b : Runtime.payload) =
  String.equal a.Runtime.pl_arr b.Runtime.pl_arr
  && arr_equal Int.equal a.Runtime.pl_idx b.Runtime.pl_idx
  && farr_equal a.Runtime.pl_val b.Runtime.pl_val

let msg_equal (a : Runtime.msg) (b : Runtime.msg) =
  a.Runtime.m_seq = b.Runtime.m_seq
  && feq a.Runtime.m_arrival b.Runtime.m_arrival
  && payload_equal a.Runtime.m_payload b.Runtime.m_payload
  && a.Runtime.m_contig = b.Runtime.m_contig

let counters_equal (a : Runtime.counters) (b : Runtime.counters) =
  a.Runtime.n_msgs = b.Runtime.n_msgs
  && a.Runtime.n_bytes = b.Runtime.n_bytes
  && a.Runtime.n_elems = b.Runtime.n_elems
  && a.Runtime.n_retransmits = b.Runtime.n_retransmits
  && a.Runtime.n_timeouts = b.Runtime.n_timeouts
  && a.Runtime.n_dups = b.Runtime.n_dups
  && a.Runtime.n_max_mbox = b.Runtime.n_max_mbox

let proc_equal (a : Runtime.proc_image) (b : Runtime.proc_image) =
  feq a.Runtime.pi_clock b.Runtime.pi_clock
  && arr_equal
       (fun (n, v) (n', v') -> String.equal n n' && v = v')
       a.Runtime.pi_ints b.Runtime.pi_ints
  && arr_equal
       (fun (n, v) (n', v') -> String.equal n n' && feq v v')
       a.Runtime.pi_floats b.Runtime.pi_floats
  && arr_equal
       (fun (n, es) (n', es') ->
         String.equal n n'
         && arr_equal (fun (i, v) (i', v') -> i = i' && feq v v') es es')
       a.Runtime.pi_elems b.Runtime.pi_elems
  && arr_equal
       (fun (e, pl) (e', pl') -> e = e' && payload_equal pl pl')
       a.Runtime.pi_staged b.Runtime.pi_staged

let image_equal (a : Runtime.image) (b : Runtime.image) =
  a.Runtime.im_ops = b.Runtime.im_ops
  && arr_equal proc_equal a.Runtime.im_procs b.Runtime.im_procs
  && arr_equal
       (fun (k, s, r) (k', s', r') -> k = k' && s = s' && r = r')
       a.Runtime.im_chans b.Runtime.im_chans
  && arr_equal
       (fun (k, ms) (k', ms') -> k = k' && arr_equal msg_equal ms ms')
       a.Runtime.im_inflight b.Runtime.im_inflight
  && counters_equal a.Runtime.im_counters b.Runtime.im_counters

(* ------------------------------------------------------------------ *)
(* Binary encoding                                                      *)
(* ------------------------------------------------------------------ *)

(* Self-contained little-endian format (see DESIGN.md §12): fixed magic,
   then nested length-prefixed sections. Every integer is 8 bytes LE,
   floats are their IEEE-754 bits, strings are length-prefixed UTF-8.
   The encoder is what prices a checkpoint (its output length times
   [Machine.ckpt_beta]); the decoder exists for the round-trip tests and
   for offline inspection of dumped snapshots. *)

let magic = "DHPFCKPT1"

let w_int b (v : int) = Buffer.add_int64_le b (Int64.of_int v)
let w_float b (v : float) = Buffer.add_int64_le b (Int64.bits_of_float v)

let w_str b (s : string) =
  w_int b (String.length s);
  Buffer.add_string b s

let w_arr b f a =
  w_int b (Array.length a);
  Array.iter (f b) a

let w_ilist b (l : int list) =
  w_int b (List.length l);
  List.iter (w_int b) l

let w_key b (k : Runtime.key) =
  w_int b k.Runtime.k_event;
  w_ilist b k.Runtime.k_src;
  w_ilist b k.Runtime.k_dst

let w_payload b (pl : Runtime.payload) =
  w_str b pl.Runtime.pl_arr;
  w_arr b w_int pl.Runtime.pl_idx;
  w_arr b w_float pl.Runtime.pl_val

let w_msg b (m : Runtime.msg) =
  w_int b m.Runtime.m_seq;
  w_float b m.Runtime.m_arrival;
  w_payload b m.Runtime.m_payload;
  w_int b (if m.Runtime.m_contig then 1 else 0)

let w_proc b (p : Runtime.proc_image) =
  w_float b p.Runtime.pi_clock;
  w_arr b
    (fun b (n, v) ->
      w_str b n;
      w_int b v)
    p.Runtime.pi_ints;
  w_arr b
    (fun b (n, v) ->
      w_str b n;
      w_float b v)
    p.Runtime.pi_floats;
  w_arr b
    (fun b (n, es) ->
      w_str b n;
      w_arr b
        (fun b (i, v) ->
          w_int b i;
          w_float b v)
        es)
    p.Runtime.pi_elems;
  w_arr b
    (fun b (e, pl) ->
      w_int b e;
      w_payload b pl)
    p.Runtime.pi_staged

let encode (im : Runtime.image) : bytes =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  w_int b im.Runtime.im_ops;
  w_arr b w_proc im.Runtime.im_procs;
  w_arr b
    (fun b (k, s, r) ->
      w_key b k;
      w_int b s;
      w_int b r)
    im.Runtime.im_chans;
  w_arr b
    (fun b (k, ms) ->
      w_key b k;
      w_arr b w_msg ms)
    im.Runtime.im_inflight;
  let c = im.Runtime.im_counters in
  w_int b c.Runtime.n_msgs;
  w_int b c.Runtime.n_bytes;
  w_int b c.Runtime.n_elems;
  w_int b c.Runtime.n_retransmits;
  w_int b c.Runtime.n_timeouts;
  w_int b c.Runtime.n_dups;
  w_int b c.Runtime.n_max_mbox;
  Buffer.to_bytes b

type reader = { rd : bytes; mutable pos : int }

let r_int r =
  let v = Bytes.get_int64_le r.rd r.pos in
  r.pos <- r.pos + 8;
  Int64.to_int v

let r_float r =
  let v = Bytes.get_int64_le r.rd r.pos in
  r.pos <- r.pos + 8;
  Int64.float_of_bits v

let r_str r =
  let n = r_int r in
  let s = Bytes.sub_string r.rd r.pos n in
  r.pos <- r.pos + n;
  s

let r_arr r f = Array.init (r_int r) (fun _ -> f r)
let r_ilist r = List.init (r_int r) (fun _ -> r_int r)

let r_key r =
  let k_event = r_int r in
  let k_src = r_ilist r in
  let k_dst = r_ilist r in
  { Runtime.k_event; k_src; k_dst }

let r_payload r =
  let pl_arr = r_str r in
  let pl_idx = r_arr r r_int in
  let pl_val = r_arr r r_float in
  { Runtime.pl_arr; pl_idx; pl_val }

let r_msg r =
  let m_seq = r_int r in
  let m_arrival = r_float r in
  let m_payload = r_payload r in
  let m_contig = r_int r <> 0 in
  { Runtime.m_seq; m_arrival; m_payload; m_contig }

let r_proc r =
  let pi_clock = r_float r in
  let pi_ints =
    r_arr r (fun r ->
        let n = r_str r in
        let v = r_int r in
        (n, v))
  in
  let pi_floats =
    r_arr r (fun r ->
        let n = r_str r in
        let v = r_float r in
        (n, v))
  in
  let pi_elems =
    r_arr r (fun r ->
        let n = r_str r in
        let es =
          r_arr r (fun r ->
              let i = r_int r in
              let v = r_float r in
              (i, v))
        in
        (n, es))
  in
  let pi_staged =
    r_arr r (fun r ->
        let e = r_int r in
        let pl = r_payload r in
        (e, pl))
  in
  { Runtime.pi_clock; pi_ints; pi_floats; pi_elems; pi_staged }

let decode (buf : bytes) : Runtime.image =
  if
    Bytes.length buf < String.length magic
    || not (String.equal (Bytes.sub_string buf 0 (String.length magic)) magic)
  then errf "checkpoint decode: bad magic (not a %s image)" magic;
  let r = { rd = buf; pos = String.length magic } in
  let im_ops = r_int r in
  let im_procs = r_arr r r_proc in
  let im_chans =
    r_arr r (fun r ->
        let k = r_key r in
        let s = r_int r in
        let rv = r_int r in
        (k, s, rv))
  in
  let im_inflight =
    r_arr r (fun r ->
        let k = r_key r in
        let ms = r_arr r r_msg in
        (k, ms))
  in
  let n_msgs = r_int r in
  let n_bytes = r_int r in
  let n_elems = r_int r in
  let n_retransmits = r_int r in
  let n_timeouts = r_int r in
  let n_dups = r_int r in
  let n_max_mbox = r_int r in
  {
    Runtime.im_ops;
    im_procs;
    im_chans;
    im_inflight;
    im_counters =
      { Runtime.n_msgs; n_bytes; n_elems; n_retransmits; n_timeouts; n_dups;
        n_max_mbox };
  }

(* ------------------------------------------------------------------ *)
(* Recovery controller                                                  *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  sn_ops : int;  (** global op count of the boundary *)
  sn_img : Runtime.image;
  sn_bytes : int;  (** encoded size — the read-back cost driver *)
}

type crash_record = {
  cr_pid : int;
  cr_op : int;  (** the crashed processor's communication-op index *)
  cr_clock : float;  (** its clock when it died *)
  cr_restore_ops : int;  (** rollback boundary (0 = restart from scratch) *)
  cr_restart_t : float;  (** T_r: when the group resumes *)
  cr_lost_work : float;  (** discarded simulated seconds, summed over procs *)
}

(* a restart barrier applied at a boundary in every later replay, so clock
   evolution is identical across attempts *)
type barrier = {
  b_ops : int;
  b_t : float;  (* T_r of the recovery that created it *)
  b_pid : int;  (* the processor whose crash caused it (trace label) *)
  b_snap : snapshot option;  (* None: restart-from-scratch (ops 0) *)
}

type report = {
  rp_sim : Exec.sim;  (** the completed (final-attempt) simulation *)
  rp_stats : Runtime.stats;  (** with crash/checkpoint fields filled in *)
  rp_crashes : crash_record list;  (** chronological *)
  rp_attempts : int;  (** executions launched, including the first *)
}

let run ?engine ?(machine = Machine.default) ?faults ?(plan = [])
    ?(ckpt_every = 0) ?(max_events = 0) ~nprocs ?params prog : report =
  let budget =
    List.length plan
    + (match faults with
      | Some sp when sp.Fault.crash_prob > 0.0 -> sp.Fault.crash_max
      | _ -> 0)
  in
  (* shared across attempts: consumed crashes never re-fire during replay *)
  let cc = Runtime.crashctl_make ~plan ?spec:faults ~max:budget () in
  let barriers : barrier list ref = ref [] in
  let crashes = ref [] in
  let attempts = ref 0 in
  let rec attempt () =
    incr attempts;
    let sim = Exec.make ?engine ~machine ?faults ~nprocs ?params prog in
    let tr = Exec.transport sim in
    tr.Runtime.tr_crash <- Some cc;
    tr.Runtime.tr_ckpt_every <- ckpt_every;
    tr.Runtime.tr_max_events <- max_events;
    (* pending restart barriers, ascending ops; re-applied during replay *)
    let pending = ref (List.rev !barriers) in
    (* rollback source for the NEXT crash, and the per-proc clock baseline
       lost work is measured against *)
    let cur_snap : snapshot option ref = ref None in
    let baseline = ref (Array.make (Exec.nprocs sim) 0.0) in
    let n_writes = ref 0 and n_wbytes = ref 0 in
    let apply_barrier b =
      Exec.set_clocks sim b.b_t;
      Runtime.trace_instant tr ~tid:b.b_pid ~ts:b.b_t
        ~args:[ ("ops", Obs.Int b.b_ops) ]
        "restore";
      (match b.b_snap with
      | Some s ->
          (* the restore point becomes the rollback source: its on-disk
             image is b_snap's, its live state is the post-barrier capture *)
          cur_snap :=
            Some
              { sn_ops = b.b_ops; sn_img = Exec.capture sim;
                sn_bytes = s.sn_bytes }
      | None -> cur_snap := None);
      baseline := Array.map (fun _ -> b.b_t) !baseline
    in
    (* restart-from-scratch barriers apply before any operation runs *)
    let rec apply_start () =
      match !pending with
      | b :: rest when b.b_ops = 0 ->
          pending := rest;
          apply_barrier b;
          apply_start ()
      | _ -> ()
    in
    apply_start ();
    tr.Runtime.tr_on_ckpt <-
      (fun gops ->
        (* replaying past an earlier recovery: verify the replayed state is
           bit-identical to what was checkpointed, then re-apply the
           restart barrier — no write happened here in the original run *)
        let is_barrier = ref false in
        let img = ref None in
        let capture () =
          match !img with
          | Some i -> i
          | None ->
              let i = Exec.capture sim in
              img := Some i;
              i
        in
        let rec apply_here () =
          match !pending with
          | b :: rest when b.b_ops = gops ->
              is_barrier := true;
              pending := rest;
              (match b.b_snap with
              | Some s ->
                  if not (image_equal (capture ()) s.sn_img) then
                    errf
                      "checkpoint recovery: replayed state at op %d diverges \
                       from the stored snapshot (determinism violated)"
                      gops
              | None -> ());
              apply_barrier b;
              img := None;
              apply_here ()
          | _ -> ()
        in
        apply_here ();
        if not !is_barrier then begin
          (* coordinated write: capture first (the image carries pre-write
             clocks, which is what a replay re-derives), then charge every
             processor for the write *)
          let i = capture () in
          let bytes = Bytes.length (encode i) in
          let cost =
            machine.Machine.ckpt_alpha
            +. (float_of_int bytes *. machine.Machine.ckpt_beta)
          in
          (* each processor pays the write on its own clock — the write is
             coordinated (same cut) but not a barrier *)
          Exec.charge sim cost;
          incr n_writes;
          n_wbytes := !n_wbytes + bytes;
          cur_snap := Some { sn_ops = gops; sn_img = i; sn_bytes = bytes };
          baseline := Exec.clocks sim
        end);
    match Exec.run sim with
    | stats -> (sim, stats, !n_writes, !n_wbytes)
    | exception Runtime.Crash { cp_pid; cp_op; cp_clock } ->
        let clocks = Exec.clocks sim in
        let t_max = Array.fold_left Float.max 0.0 clocks in
        let read_cost, restore_ops, snap =
          match !cur_snap with
          | Some s ->
              ( machine.Machine.ckpt_alpha
                +. (float_of_int s.sn_bytes *. machine.Machine.ckpt_beta),
                s.sn_ops,
                Some s )
          | None -> (0.0, 0, None)
        in
        let t_r =
          t_max +. machine.Machine.detect_timeout
          +. machine.Machine.restart_latency +. read_cost
        in
        let lost =
          let base = !baseline in
          let acc = ref 0.0 in
          Array.iteri
            (fun p t -> acc := !acc +. Float.max 0.0 (t -. base.(p)))
            clocks;
          !acc
        in
        crashes :=
          { cr_pid = cp_pid; cr_op = cp_op; cr_clock = cp_clock;
            cr_restore_ops = restore_ops; cr_restart_t = t_r;
            cr_lost_work = lost }
          :: !crashes;
        barriers :=
          { b_ops = restore_ops; b_t = t_r; b_pid = cp_pid; b_snap = snap }
          :: !barriers;
        attempt ()
  in
  let sim, raw, n_writes, n_wbytes = attempt () in
  let crashes = List.rev !crashes in
  let n_crashes = List.length crashes in
  let lost = List.fold_left (fun a c -> a +. c.cr_lost_work) 0.0 crashes in
  if Obs.Metrics.enabled () then begin
    let module M = Obs.Metrics in
    let inc n v = M.inc (M.counter n) v in
    inc "sim/crashes" (float_of_int n_crashes);
    inc "sim/recoveries" (float_of_int n_crashes);
    inc "sim/ckpt_count" (float_of_int n_writes);
    inc "sim/ckpt_bytes" (float_of_int n_wbytes);
    inc "sim/lost_work_s" lost
  end;
  {
    rp_sim = sim;
    rp_stats =
      {
        raw with
        Runtime.s_crashes = n_crashes;
        s_recoveries = n_crashes;
        s_ckpts = n_writes;
        s_ckpt_bytes = n_wbytes;
        s_lost_work = lost;
      };
    rp_crashes = crashes;
    rp_attempts = !attempts;
  }
