(* Shared runtime substrate for the two SPMD execution engines (the
   tree-walking interpreter in {!Exec} and the closure-compiled engine in
   {!Compile}): startup parameter binding, array metadata, the packed
   message transport with per-channel sequence matching and fault
   injection, the effect-based scheduler with its collectives, and the
   structured deadlock diagnostics.

   Keeping the transport and scheduler here — used verbatim by both
   engines — is what makes the engine-differential guarantee structural:
   message counters, retransmit accounting and delivery order cannot
   diverge between engines, because there is only one implementation. *)

open Dhpf

exception Error of string

let errf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Startup: parameter binding, processor grid, per-proc coordinates     *)
(* ------------------------------------------------------------------ *)

type setup = {
  su_genv : (string, int) Hashtbl.t;  (** global parameter values *)
  su_extents : int array;  (** processor grid extents *)
  su_total : int;  (** total processors: product of extents *)
  su_coords : int array array;  (** per-pid grid coordinates (m$k) *)
  su_vm0 : (int * int) list array;
      (** per-pid initial VP coordinates: (proc-dim index, vm$k value) for
          the modes bound at startup; template-cell VPs are loop-bound *)
  su_skew : float array;  (** per-processor straggler multiplier (>= 1) *)
}

let eval_genv genv e =
  Iset.Codegen.eval_expr
    (fun s ->
      match Hashtbl.find_opt genv s with
      | Some v -> v
      | None -> errf "unbound parameter %s" s)
    e

let setup ?faults ~nprocs ~params (prog : Spmd.program) : setup =
  let genv = Hashtbl.create 32 in
  Hashtbl.replace genv "number_of_processors" nprocs;
  List.iter (fun (n, v) -> Hashtbl.replace genv n v) params;
  let bind s =
    match Hashtbl.find_opt genv s with
    | Some v -> v
    | None -> errf "unbound parameter %s (needed at startup)" s
  in
  List.iter
    (fun (pb : Spmd.param_binding) ->
      match pb.pb_value with
      | `Given k -> Hashtbl.replace genv pb.pb_name k
      | `FromEnv ->
          if not (Hashtbl.mem genv pb.pb_name) then
            errf "symbolic parameter %s must be supplied" pb.pb_name
      | `Expr e -> Hashtbl.replace genv pb.pb_name (Hpf.Sema.eval_iexpr ~bind e))
    prog.params;
  let ev e = eval_genv genv e in
  let extents = Array.of_list (List.map ev prog.proc_extents) in
  Array.iteri
    (fun k e ->
      if e < 1 then
        errf "processor grid dimension %d has extent %d with %d processors"
          (k + 1) e nprocs)
    extents;
  let total = Array.fold_left ( * ) 1 extents in
  if total < 1 then errf "empty processor grid";
  let coords =
    Array.init total (fun pid ->
        (* column-major linearization: first dimension varies fastest *)
        let c = Array.make (Array.length extents) 0 in
        let rem = ref pid in
        Array.iteri
          (fun k e ->
            c.(k) <- !rem mod e;
            rem := !rem / e)
          extents;
        c)
  in
  let vm0 =
    Array.init total (fun pid ->
        List.concat
          (List.mapi
             (fun k (pd : Spmd.proc_dim_rt) ->
               match pd.pd_mode with
               | Spmd.VpIsPhys -> [ (k, coords.(pid).(k)) ]
               | Spmd.VpBlockOnePer ->
                   let b = ev (Option.get pd.pd_bsize) in
                   let tlo = ev pd.pd_tlo in
                   [ (k, (b * coords.(pid).(k)) + tlo) ]
               | Spmd.VpTemplateCell -> [] (* bound by generated VP loops *))
             prog.proc_dims))
  in
  let skew =
    Array.init total (fun pid ->
        match faults with None -> 1.0 | Some sp -> Fault.skew sp ~pid)
  in
  { su_genv = genv; su_extents = extents; su_total = total;
    su_coords = coords; su_vm0 = vm0; su_skew = skew }

(* ------------------------------------------------------------------ *)
(* Array metadata: bounds, strides, linear encoding                     *)
(* ------------------------------------------------------------------ *)

type ameta = {
  am_name : string;
  am_bounds : (int * int) array;  (** per-dim [lo, hi] *)
  am_ext : int array;  (** per-dim extent *)
  am_strides : int array;  (** column-major strides (dim 0 fastest) *)
  am_base : int;  (** sum of lo_d * stride_d, subtracted by the encoding *)
}

let ameta ~eval (ad : Spmd.array_decl) : ameta =
  let bounds =
    Array.of_list (List.map (fun (lo, hi) -> (eval lo, eval hi)) ad.ad_bounds)
  in
  let n = Array.length bounds in
  let ext = Array.map (fun (lo, hi) -> hi - lo + 1) bounds in
  let strides = Array.make n 1 in
  for i = 1 to n - 1 do
    strides.(i) <- strides.(i - 1) * ext.(i - 1)
  done;
  let base = ref 0 in
  Array.iteri (fun i (lo, _) -> base := !base + (lo * strides.(i))) bounds;
  { am_name = ad.ad_name; am_bounds = bounds; am_ext = ext; am_strides = strides;
    am_base = !base }

(** Global linear index of [idx], bounds-checked. *)
let encode (m : ameta) (idx : int list) : int =
  let off = ref (-m.am_base) in
  List.iteri
    (fun i x ->
      let lo, hi = m.am_bounds.(i) in
      if x < lo || x > hi then
        errf "array %s: index %d outside [%d,%d] (dim %d)" m.am_name x lo hi
          (i + 1);
      off := !off + (x * m.am_strides.(i)))
    idx;
  !off

(* ------------------------------------------------------------------ *)
(* Ownership and VP mapping (shared formulas; engines differ only in     *)
(* whether they evaluate them per access or tabulate them at setup)      *)
(* ------------------------------------------------------------------ *)

(* physical owner coordinate along one processor dimension, or None if the
   element is replicated along it *)
let owner_coord ~eval (dl : Spmd.dim_layout) (idx : int array) : int option =
  let t =
    match dl.Spmd.source with
    | Spmd.AnyCoord -> None
    | Spmd.FixedCoord e -> Some (eval e)
    | Spmd.FromData { data_dim; coef; off } ->
        Some ((coef * idx.(data_dim)) + eval off)
  in
  match t with
  | None -> None
  | Some t -> (
      let tlo = eval dl.Spmd.tlo in
      let p = eval dl.Spmd.pextent in
      match dl.Spmd.fmt with
      | Spmd.RBlock { bsize } ->
          let b = eval bsize in
          Some (Iset.Lin.fdiv (t - tlo) b)
      | Spmd.RCyclic -> Some (Iset.Lin.pmod (t - tlo) p)
      | Spmd.RBlockCyclic k -> Some (Iset.Lin.pmod (Iset.Lin.fdiv (t - tlo) k) p))

(* VP coordinates -> linear physical pid *)
let phys_of_vp ~eval (prog : Spmd.program) ~extents (vp : int list) : int =
  let pid = ref 0 and stride = ref 1 in
  List.iteri
    (fun k v ->
      let pd = List.nth prog.Spmd.proc_dims k in
      let c =
        match pd.Spmd.pd_mode with
        | Spmd.VpIsPhys -> v
        | Spmd.VpBlockOnePer ->
            let b = eval (Option.get pd.Spmd.pd_bsize) in
            Iset.Lin.fdiv (v - eval pd.Spmd.pd_tlo) b
        | Spmd.VpTemplateCell ->
            Iset.Lin.pmod (v - eval pd.Spmd.pd_tlo) (eval pd.Spmd.pd_extent)
      in
      pid := !pid + (c * !stride);
      stride := !stride * extents.(k))
    vp;
  !pid

(* ------------------------------------------------------------------ *)
(* Packed message payloads and buffers                                  *)
(* ------------------------------------------------------------------ *)

type payload = {
  pl_arr : string;  (** destination array; "" for an empty message *)
  pl_idx : int array;  (** global linear (encoded) element indices *)
  pl_val : float array;
}
(** Flat packed payload: parallel (index, value) arrays for one array, the
    wire format of both engines (the interpreter's former
    [(string * int * float) list] representation allocated three words of
    boxing per element and forced a per-element string compare on unpack). *)

let empty_payload = { pl_arr = ""; pl_idx = [||]; pl_val = [||] }

type packbuf = {
  mutable pb_arr : string;
  mutable pb_idx : int array;
  mutable pb_val : float array;
  mutable pb_len : int;
}
(** Growable send-side staging buffer, reused across messages of one
    (processor, event) channel so steady-state packing does not allocate. *)

let packbuf_create ?(cap = 16) () =
  let cap = max cap 16 in
  { pb_arr = ""; pb_idx = Array.make cap 0; pb_val = Array.make cap 0.0; pb_len = 0 }

let packbuf_push (b : packbuf) ~arr enc v =
  if b.pb_len = 0 then b.pb_arr <- arr
  else if b.pb_arr <> arr then
    errf "message buffer mixes arrays %s and %s in one event" b.pb_arr arr;
  let cap = Array.length b.pb_idx in
  if b.pb_len = cap then begin
    let idx' = Array.make (2 * cap) 0 and val' = Array.make (2 * cap) 0.0 in
    Array.blit b.pb_idx 0 idx' 0 cap;
    Array.blit b.pb_val 0 val' 0 cap;
    b.pb_idx <- idx';
    b.pb_val <- val'
  end;
  b.pb_idx.(b.pb_len) <- enc;
  b.pb_val.(b.pb_len) <- v;
  b.pb_len <- b.pb_len + 1

(** Read the staged elements without resetting the buffer (checkpoint
    capture: staged-but-unsent data is part of a processor's state). *)
let packbuf_peek (b : packbuf) : payload =
  if b.pb_len = 0 then empty_payload
  else
    { pl_arr = b.pb_arr;
      pl_idx = Array.sub b.pb_idx 0 b.pb_len;
      pl_val = Array.sub b.pb_val 0 b.pb_len }

(** Snapshot the staged elements as an immutable payload and reset. *)
let packbuf_flush (b : packbuf) : payload =
  if b.pb_len = 0 then empty_payload
  else begin
    let pl =
      { pl_arr = b.pb_arr;
        pl_idx = Array.sub b.pb_idx 0 b.pb_len;
        pl_val = Array.sub b.pb_val 0 b.pb_len }
    in
    b.pb_len <- 0;
    pl
  end

(* ------------------------------------------------------------------ *)
(* Fail-stop crash control                                              *)
(* ------------------------------------------------------------------ *)

exception Crash of { cp_pid : int; cp_op : int; cp_clock : float }

type crashctl = {
  cc_spec : Fault.spec option;
      (* probability-driven schedule: a crash fires at (pid, op) when
         [Fault.crash] says so — a pure hash, so a deterministic replay
         re-derives the same schedule *)
  cc_plan : (int * int) list;
      (* explicit (pid, op) crash points, for tests that need a crash at a
         known place (e.g. inside a collective) *)
  mutable cc_budget : int;
  cc_fired : (int * int, unit) Hashtbl.t;
      (* crashes already consumed: the control block is shared across
         recovery attempts, so a replay re-reaching a (pid, op) that
         crashed before does NOT crash again — without this the pure hash
         would fire forever at the same point *)
}

let crashctl_make ?(plan = []) ?spec ~max () =
  { cc_spec = spec; cc_plan = plan; cc_budget = max;
    cc_fired = Hashtbl.create 4 }

(* ------------------------------------------------------------------ *)
(* Transport: channels, sequence numbers, fault plans, counters         *)
(* ------------------------------------------------------------------ *)

type key = { k_event : int; k_src : int list; k_dst : int list }

type msg = {
  m_seq : int;
      (* per-channel sequence number: delivery matches the receiver's next
         expected seq, so in-flight reordering, duplicates and retransmitted
         drops cannot change which message a Recv consumes *)
  m_arrival : float;
  m_payload : payload;
  m_contig : bool;
}

type counters = {
  mutable n_msgs : int;
  mutable n_bytes : int;
  mutable n_elems : int;
  mutable n_retransmits : int;
  mutable n_timeouts : int;
  mutable n_dups : int;
  mutable n_max_mbox : int;
}

type trace = {
  tw_pid : int;
      (** Chrome process id of this simulation instance (pid 0 is the
          compiler's lane; each traced simulation claims a fresh pid) *)
  tw_flow : (key * int, int) Hashtbl.t;
      (** (channel, seq) -> flow id, linking a send slice to the recv slice
          that consumes that sequence number *)
  tw_last : (int, float) Hashtbl.t;
      (** per-processor end time of the last traced slice, in simulated
          seconds; the gap up to the next slice is rendered as compute *)
}

type comm_cell = {
  cm_event : int;  (** communication event id, or [-1] for a collective *)
  cm_src : int;
  cm_dst : int;  (** [cm_src = cm_dst]: local copy between co-located VPs *)
  cm_msgs : int;
  cm_elems : int;
  cm_bytes : int;
}

type simmetrics = {
  sm_nprocs : int;
  sm_mx_msgs : int array;  (** P*P dense matrices, indexed [src*P + dst] *)
  sm_mx_elems : int array;
  sm_cells : (int * int * int, int ref * int ref) Hashtbl.t;
      (** (event, src, dst) -> (msgs, elems); diagonal = local copies *)
  sm_send_t : float array;  (** per-proc seconds inside sends (incl. packing) *)
  sm_recv_t : float array;  (** per-proc seconds blocked + unpacking in recvs *)
  sm_coll_t : float array;  (** per-proc seconds inside collectives *)
  sm_recv_elems : int array;  (** per-proc halo elements received *)
  sm_retrans : int array;  (** retransmissions by sending processor *)
  sm_msg_bytes : Obs.Metrics.histogram;  (** wire size of network messages *)
  mutable sm_coll_msgs : int;  (** messages attributed to collectives *)
  mutable sm_coll_bytes : int;
  mutable sm_local_msgs : int;  (** co-located VP copies (never on the wire) *)
  mutable sm_local_elems : int;
}

type transport = {
  tr_machine : Machine.t;
  tr_faults : Fault.spec option;
  tr_mailbox : (key, msg list ref) Hashtbl.t;
      (** in-flight messages per channel, in transport (possibly reordered)
          order; delivery matches sequence numbers, not list position *)
  tr_send_seq : (key, int) Hashtbl.t;
  tr_recv_seq : (key, int) Hashtbl.t;
  tr_c : counters;
  tr_trace : trace option;
      (** present iff tracing was enabled when the transport was built;
          tracing only reads the virtual clocks, never advances them, so a
          traced run is bit-identical to an untraced one *)
  tr_metrics : simmetrics option;
      (** present iff [Obs.Metrics] was enabled at build time; like
          tracing, metrics recording only reads clocks and payload sizes,
          so a metered run is bit-identical to a bare one *)
  tr_pid_ops : int array;
      (** per-processor communication-operation index: sends, receive
          completions and collective completions, in execution order — the
          coordinate crash schedules are keyed on *)
  mutable tr_gops : int;  (** total operations across all processors *)
  mutable tr_crash : crashctl option;  (** installed by {!Checkpoint.run} *)
  mutable tr_ckpt_every : int;  (** checkpoint interval in ops; 0 = off *)
  mutable tr_on_ckpt : int -> unit;
      (** checkpoint trigger, called with the global op count whenever it
          crosses a multiple of [tr_ckpt_every] *)
  mutable tr_max_events : int;
      (** scheduler watchdog: raise {!Error} once the global op count
          exceeds this bound; 0 = off *)
}

(* simulated seconds -> trace microseconds *)
let us t = t *. 1e6

let trace_ctr = Atomic.make 0

let transport_make ~machine ~faults ~nprocs =
  {
    tr_machine = machine;
    tr_faults = faults;
    tr_mailbox = Hashtbl.create 64;
    tr_send_seq = Hashtbl.create 64;
    tr_recv_seq = Hashtbl.create 64;
    tr_c =
      { n_msgs = 0; n_bytes = 0; n_elems = 0; n_retransmits = 0;
        n_timeouts = 0; n_dups = 0; n_max_mbox = 0 };
    tr_trace =
      (if Obs.enabled () then
         Some
           { tw_pid = Atomic.fetch_and_add trace_ctr 1 + 1;
             tw_flow = Hashtbl.create 64;
             tw_last = Hashtbl.create 16 }
       else None);
    tr_metrics =
      (if Obs.Metrics.enabled () then
         Some
           {
             sm_nprocs = nprocs;
             sm_mx_msgs = Array.make (nprocs * nprocs) 0;
             sm_mx_elems = Array.make (nprocs * nprocs) 0;
             sm_cells = Hashtbl.create 64;
             sm_send_t = Array.make nprocs 0.0;
             sm_recv_t = Array.make nprocs 0.0;
             sm_coll_t = Array.make nprocs 0.0;
             sm_recv_elems = Array.make nprocs 0;
             sm_retrans = Array.make nprocs 0;
             sm_msg_bytes = Obs.Metrics.histogram "sim/msg_bytes";
             sm_coll_msgs = 0;
             sm_coll_bytes = 0;
             sm_local_msgs = 0;
             sm_local_elems = 0;
           }
       else None);
    tr_pid_ops = Array.make nprocs 0;
    tr_gops = 0;
    tr_crash = None;
    tr_ckpt_every = 0;
    tr_on_ckpt = (fun _ -> ());
    tr_max_events = 0;
  }

let metrics_cell sm ~event ~src ~dst =
  match Hashtbl.find_opt sm.sm_cells (event, src, dst) with
  | Some c -> c
  | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.add sm.sm_cells (event, src, dst) c;
      c

(* the idle-to-busy gap on a lane, rendered as a compute slice: the
   processors only accumulate clock time in compute statements and in the
   traced transport operations, so whatever lies between two traced slices
   is computation *)
let trace_gap tw ~tid t0 =
  let last = Option.value (Hashtbl.find_opt tw.tw_last tid) ~default:0.0 in
  if t0 -. last > 1e-12 then
    Obs.complete ~pid:tw.tw_pid ~tid ~ts:(us last) ~dur:(us (t0 -. last))
      ~cat:"compute" "compute"

let trace_slice tw ~tid ~t0 ~t1 ~cat ?args name =
  trace_gap tw ~tid t0;
  Obs.complete ~pid:tw.tw_pid ~tid ~ts:(us t0) ~dur:(us (t1 -. t0)) ~cat
    ?args name;
  Hashtbl.replace tw.tw_last tid t1

(** Chrome pid of this simulation's trace lane group, when traced. *)
let trace_pid tr = Option.map (fun tw -> tw.tw_pid) tr.tr_trace

(** Emit an instant marker on a processor's lane ([ts] in simulated
    seconds); no-op when untraced. The recovery controller uses this for
    crash / restore events. *)
let trace_instant tr ~tid ~ts ?(cat = "fault") ?args name =
  match tr.tr_trace with
  | Some tw -> Obs.instant_at ~pid:tw.tw_pid ~tid ~ts:(us ts) ~cat ?args name
  | None -> ()

(* One communication operation completed on [pid]: bump the per-processor
   and global operation indices, feed the scheduler watchdog, evaluate the
   crash schedule, and fire the checkpoint trigger on interval boundaries.
   Both engines route every send, receive completion and collective
   completion through here (via {!send} and the scheduler), so operation
   indices — and with them crash points and checkpoint boundaries — are
   identical across engines and across deterministic replays. *)
let op_point tr ~pid ~clock =
  tr.tr_pid_ops.(pid) <- tr.tr_pid_ops.(pid) + 1;
  tr.tr_gops <- tr.tr_gops + 1;
  if tr.tr_max_events > 0 && tr.tr_gops > tr.tr_max_events then
    errf
      "scheduler watchdog: %d communication events exceed the --max-events \
       budget of %d (processor %d at its operation %d, t=%.3e) — \
       pathological schedule or livelock"
      tr.tr_gops tr.tr_max_events pid tr.tr_pid_ops.(pid) clock;
  let op = tr.tr_pid_ops.(pid) in
  (match tr.tr_crash with
  | Some cc when cc.cc_budget > 0 && not (Hashtbl.mem cc.cc_fired (pid, op)) ->
      let fires =
        List.mem (pid, op) cc.cc_plan
        ||
        match cc.cc_spec with
        | Some sp -> Fault.crash sp ~pid ~op
        | None -> false
      in
      if fires then begin
        cc.cc_budget <- cc.cc_budget - 1;
        Hashtbl.replace cc.cc_fired (pid, op) ();
        trace_instant tr ~tid:pid ~ts:clock
          ~args:[ ("op", Obs.Int op) ]
          "crash";
        raise (Crash { cp_pid = pid; cp_op = op; cp_clock = clock })
      end
  | _ -> ());
  if tr.tr_ckpt_every > 0 && tr.tr_gops mod tr.tr_ckpt_every = 0 then
    tr.tr_on_ckpt tr.tr_gops

(* ------------------------------------------------------------------ *)
(* Parallel lanes: deferred transport mutations                         *)
(* ------------------------------------------------------------------ *)

(* The parallel scheduler ({!sched_run_par}) runs processor fibers on a
   domain pool and keeps the run bit-identical to {!sched_run} with a
   two-pass split: pass 1 executes the engine bodies in parallel but logs
   every transport mutation as a deferred operation per lane (processor),
   delivering messages through a (channel, seq)-keyed concurrent mailbox;
   pass 2 replays the logs through the sequential scheduler, committing
   counters, mailbox evolution, traces, metrics and operation points in
   exactly the sequential interleaving. Pass 1 is sound because message
   delivery is sequence-matched (never availability-ordered), every
   channel has a single sending processor, and all clock arithmetic is a
   deterministic function of per-lane execution — so values, clocks and
   the logged operations are independent of domain interleaving. *)

exception Cancelled
(* unwinds lanes parked forever when the parallel pass detects a stall;
   the replay pass then reproduces the sequential {!Deadlock} diagnosis *)

type lane_op =
  | OSend of (unit -> unit)  (* captured transport commit *)
  | ORecv of { rk : key; rseq : int; rt0 : float; rt1 : float }
  | OReduce of { zop : Spmd.reduce_op; zmine : float; zt0 : float }
  | OReduceArr of { aname : string; aop : Spmd.reduce_op; at0 : float }
  | OPendRecv of { pk : key; pt0 : float }  (* parked at stall time *)

type lane = {
  l_pid : int;
  mutable l_log : lane_op list;  (* reversed; replay walks List.rev *)
  l_sseq : (key, int) Hashtbl.t;
      (* lane-local send sequence numbers: every channel has exactly one
         sending processor, so these match [tr_send_seq] of a sequential
         run without touching shared state *)
  l_rseq : (key, int) Hashtbl.t;  (* lane-local receive cursors *)
  l_post : key -> msg -> unit;  (* publish an original to the pass-1 mail *)
}

(* set for the duration of every lane start/resume in pass 1; [send] and
   [trace_recv] check it to defer their transport mutations *)
let lane_key : lane option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(** Complete a send: decide contiguity (§3.3 compile-time proof or runtime
    check), charge packing / send CPU, apply the deterministic fault plan
    (drops with retransmit pricing, delay, duplication, reordering), and
    enqueue on the channel. [tick] charges CPU time to the sending
    processor; [get_clock] reads its clock after those charges.

    Under a parallel lane the clock charges and fault plan are computed
    immediately (they are lane-local), the message is published to the
    parallel mailbox, and every transport mutation is captured in an
    {!OSend} commit replayed by pass 2. *)
let send tr ~tick ~get_clock ~pid ~dst_pid ~event ~src_vp ~dst_vp ~inplace
    ~rect (pl : payload) : unit =
  let m = tr.tr_machine in
  let n = Array.length pl.pl_idx in
  (* clock before any charge: start of the traced/metered send window *)
  let tt0 =
    if tr.tr_trace = None && tr.tr_metrics = None then 0.0 else get_clock ()
  in
  (* §3.3: transfers proved contiguous at compile time go in place; a
     rectangular section that was not proved is tested at run time (a
     handful of predicate evaluations — far cheaper than packing) and
     goes in place when the test succeeds *)
  let contig =
    if inplace then true
    else if rect && n > 1 then begin
      tick (8.0 *. m.Machine.check_time);
      let ok = ref true in
      for i = 1 to n - 1 do
        if pl.pl_idx.(i) <> pl.pl_idx.(i - 1) + 1 then ok := false
      done;
      !ok
    end
    else false
  in
  if not contig then tick (float_of_int n *. m.Machine.pack_time);
  (* a message between two VPs of the same physical processor (cyclic
     distributions) is a local copy, not a network transfer *)
  let local = dst_pid = pid in
  if local then tick (float_of_int n *. m.Machine.pack_time)
  else tick m.Machine.send_overhead;
  let lane = Domain.DLS.get lane_key in
  let k = { k_event = event; k_src = src_vp; k_dst = dst_vp } in
  let seq =
    match lane with
    | None -> Option.value (Hashtbl.find_opt tr.tr_send_seq k) ~default:0
    | Some l ->
        let s = Option.value (Hashtbl.find_opt l.l_sseq k) ~default:0 in
        Hashtbl.replace l.l_sseq k (s + 1);
        s
  in
  let plan =
    match tr.tr_faults with
    | Some sp when not local -> Fault.plan sp ~event ~src:pid ~dst:dst_pid ~seq
    | _ -> Fault.no_faults
  in
  (* dropped transmissions: the sender's retransmission timer fires (with
     exponential backoff) and the message is re-sent, costing CPU and
     delaying the arrival — the payload that finally arrives is the same,
     so results are unaffected *)
  if plan.Fault.mp_drops > 0 then
    tick (float_of_int plan.Fault.mp_drops *. m.Machine.retry_overhead);
  (* every later clock read in the sequential path sees this same value:
     no charge is issued past this point *)
  let tfin = get_clock () in
  let wire = Machine.msg_time m n in
  let arrival =
    if local then tfin
    else
      tfin +. wire
      +. Machine.retransmit_wait m plan.Fault.mp_drops
      +. (plan.Fault.mp_delay *. wire)
  in
  let msg = { m_seq = seq; m_arrival = arrival; m_payload = pl; m_contig = contig } in
  let commit () =
    if not local then begin
      tr.tr_c.n_msgs <- tr.tr_c.n_msgs + 1;
      tr.tr_c.n_bytes <- tr.tr_c.n_bytes + (n * m.Machine.elem_bytes);
      tr.tr_c.n_elems <- tr.tr_c.n_elems + n
    end;
    Hashtbl.replace tr.tr_send_seq k (seq + 1);
    if plan.Fault.mp_drops > 0 then begin
      tr.tr_c.n_timeouts <- tr.tr_c.n_timeouts + plan.Fault.mp_drops;
      tr.tr_c.n_retransmits <- tr.tr_c.n_retransmits + plan.Fault.mp_drops
    end;
    let q =
      match Hashtbl.find_opt tr.tr_mailbox k with
      | Some q -> q
      | None ->
          let q = ref [] in
          Hashtbl.replace tr.tr_mailbox k q;
          q
    in
    (* transport order: a reordered message jumps ahead of traffic already
       in flight on its channel; delivery still matches sequence numbers *)
    if plan.Fault.mp_reorder then q := msg :: !q else q := !q @ [ msg ];
    if plan.Fault.mp_dup then
      q := !q @ [ { msg with m_arrival = arrival +. wire } ];
    let depth = List.length !q in
    if depth > tr.tr_c.n_max_mbox then tr.tr_c.n_max_mbox <- depth;
    (match tr.tr_metrics with
    | None -> ()
    | Some sm ->
        (* reads only: the clock delta charged above and the payload size *)
        sm.sm_send_t.(pid) <- sm.sm_send_t.(pid) +. (tfin -. tt0);
        let msgs, elems = metrics_cell sm ~event ~src:pid ~dst:dst_pid in
        Stdlib.incr msgs;
        elems := !elems + n;
        let cell = (pid * sm.sm_nprocs) + dst_pid in
        sm.sm_mx_msgs.(cell) <- sm.sm_mx_msgs.(cell) + 1;
        sm.sm_mx_elems.(cell) <- sm.sm_mx_elems.(cell) + n;
        sm.sm_retrans.(pid) <- sm.sm_retrans.(pid) + plan.Fault.mp_drops;
        if local then begin
          sm.sm_local_msgs <- sm.sm_local_msgs + 1;
          sm.sm_local_elems <- sm.sm_local_elems + n
        end
        else
          Obs.Metrics.observe sm.sm_msg_bytes
            (float_of_int (n * m.Machine.elem_bytes)));
    (match tr.tr_trace with
    | None -> ()
    | Some tw ->
        trace_slice tw ~tid:pid ~t0:tt0 ~t1:tfin ~cat:"comm"
          ~args:
            [ ("dst_pid", Obs.Int dst_pid);
              ("seq", Obs.Int seq);
              ("elems", Obs.Int n);
              ("bytes", Obs.Int (n * m.Machine.elem_bytes));
              ("contig", Obs.Bool contig);
              ("local", Obs.Bool local);
              ("drops", Obs.Int plan.Fault.mp_drops) ]
          (Printf.sprintf "send e%d" event);
        (* flow arrows only for network messages, so the number of flow
           starts equals the transport's point-to-point message counter;
           local copies have a slice but no arrow *)
        if not local then begin
          let fid = Obs.next_flow_id () in
          Hashtbl.replace tw.tw_flow (k, seq) fid;
          Obs.flow_start ~pid:tw.tw_pid ~tid:pid ~ts:(us tt0) ~id:fid "msg"
        end);
    op_point tr ~pid ~clock:tfin
  in
  match lane with
  | None -> commit ()
  | Some l ->
      (* the original (never the duplicate, never reordered — delivery is
         keyed by sequence number) becomes visible to the receiving lane;
         all bookkeeping waits for the replay pass *)
      l.l_post k msg;
      l.l_log <- OSend commit :: l.l_log

(** Trace a completed receive: [t0] is the receiver's clock when it
    blocked, [t1] its clock after arrival synchronization and unpack
    charges. Emits the recv slice (blocking wait included) and closes the
    send's flow arrow. Both engines call this from their [Recv]
    implementations; a no-op when the transport is untraced. *)
let trace_recv tr ~tid ~t0 ~t1 (k : key) (msg : msg) : unit =
  match Domain.DLS.get lane_key with
  | Some l ->
      (* parallel lane: record the receive (park and completion clocks) so
         the replay pass re-performs it and emits the metrics and trace
         side effects in the sequential interleaving *)
      l.l_log <- ORecv { rk = k; rseq = msg.m_seq; rt0 = t0; rt1 = t1 } :: l.l_log
  | None -> (
  (match tr.tr_metrics with
  | None -> ()
  | Some sm ->
      sm.sm_recv_t.(tid) <- sm.sm_recv_t.(tid) +. (t1 -. t0);
      sm.sm_recv_elems.(tid) <-
        sm.sm_recv_elems.(tid) + Array.length msg.m_payload.pl_idx);
  match tr.tr_trace with
  | None -> ()
  | Some tw -> (
      let n = Array.length msg.m_payload.pl_idx in
      trace_slice tw ~tid ~t0 ~t1 ~cat:"comm"
        ~args:
          [ ("seq", Obs.Int msg.m_seq);
            ("elems", Obs.Int n);
            ("contig", Obs.Bool msg.m_contig) ]
        (Printf.sprintf "recv e%d" k.k_event);
      match Hashtbl.find_opt tw.tw_flow (k, msg.m_seq) with
      | Some fid ->
          Hashtbl.remove tw.tw_flow (k, msg.m_seq);
          Obs.flow_end ~pid:tw.tw_pid ~tid ~ts:(us t1) ~id:fid "msg"
      | None -> ()))

(* ------------------------------------------------------------------ *)
(* Checkpoint images                                                    *)
(* ------------------------------------------------------------------ *)

type proc_image = {
  pi_clock : float;
  pi_ints : (string * int) array;  (** live integer bindings, sorted *)
  pi_floats : (string * float) array;  (** live scalar bindings, sorted *)
  pi_elems : (string * (int * float) array) array;
      (** per array (sorted by name): every resident element as (global
          linear index, value), sorted — dense owned blocks, halo side
          tables and sparse reduction storage alike *)
  pi_staged : (int * payload) array;
      (** per event id: elements packed but not yet sent *)
}

type image = {
  im_ops : int;  (** global op count at capture *)
  im_procs : proc_image array;
  im_chans : (key * int * int) array;
      (** per channel: (key, next send seq, next recv seq), sorted *)
  im_inflight : (key * msg array) array;  (** undelivered messages *)
  im_counters : counters;  (** copy of the transport counters *)
}

let counters_copy (c : counters) : counters =
  { n_msgs = c.n_msgs; n_bytes = c.n_bytes; n_elems = c.n_elems;
    n_retransmits = c.n_retransmits; n_timeouts = c.n_timeouts;
    n_dups = c.n_dups; n_max_mbox = c.n_max_mbox }

(** Transport half of a checkpoint image: per-channel sequence counters,
    in-flight messages, and a copy of the counters. Engine-independent —
    both engines' [capture] build on this. *)
let capture_transport tr =
  let chans = Hashtbl.create 64 in
  Hashtbl.iter
    (fun k s ->
      let r = Option.value (Hashtbl.find_opt tr.tr_recv_seq k) ~default:0 in
      Hashtbl.replace chans k (s, r))
    tr.tr_send_seq;
  Hashtbl.iter
    (fun k r -> if not (Hashtbl.mem chans k) then Hashtbl.replace chans k (0, r))
    tr.tr_recv_seq;
  let im_chans =
    Hashtbl.fold (fun k (s, r) acc -> (k, s, r) :: acc) chans []
    |> List.sort compare |> Array.of_list
  in
  let im_inflight =
    Hashtbl.fold
      (fun k q acc -> if !q = [] then acc else (k, Array.of_list !q) :: acc)
      tr.tr_mailbox []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> Array.of_list
  in
  (im_chans, im_inflight, counters_copy tr.tr_c)

type _ Effect.t +=
  | ERecv : key -> msg Effect.t
  | EReduce : (Spmd.reduce_op * float) -> float Effect.t
  | EReduceArr : (string * Spmd.reduce_op) -> unit Effect.t

(* ------------------------------------------------------------------ *)
(* Statistics                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  s_time : float;  (** simulated execution time: max processor clock *)
  s_msgs : int;
  s_bytes : int;
  s_elems : int;
  s_proc_times : float array;
  s_retransmits : int;  (** dropped transmissions re-sent after a timeout *)
  s_timeouts : int;  (** retransmission timers fired *)
  s_dups_delivered : int;  (** duplicate copies detected and discarded *)
  s_max_mailbox : int;  (** peak in-flight depth of any one channel *)
  s_crashes : int;  (** fail-stop crashes suffered (checkpoint runs only) *)
  s_recoveries : int;  (** successful restarts from a snapshot or scratch *)
  s_ckpts : int;  (** coordinated checkpoints taken on the final attempt *)
  s_ckpt_bytes : int;  (** encoded size of those checkpoints *)
  s_lost_work : float;
      (** simulated seconds of work discarded by rollbacks, summed over
          processors and recoveries *)
}

(* ------------------------------------------------------------------ *)
(* Deadlock diagnostics                                                 *)
(* ------------------------------------------------------------------ *)

type wait_reason =
  | WaitRecv of {
      wr_event : int;
      wr_src_vp : int list;
      wr_src_pid : int;  (** physical processor the wait is on *)
      wr_expected_seq : int;
      wr_queued : int;  (** undeliverable messages sitting on the channel *)
    }
  | WaitReduce  (** blocked in a replicated-scalar collective *)
  | WaitReduceArr of string  (** blocked in an array-reduction collective *)

type proc_wait = { w_pid : int; w_clock : float; w_reason : wait_reason }

type diagnostic = {
  dg_waiting : proc_wait list;  (** every stuck processor, by pid *)
  dg_cycle : int list;
      (** pids forming a wait-for cycle (first element repeats conceptually);
          [] when the stall is not cyclic (e.g. a missing send) *)
  dg_undelivered : (int * int list * int list * int) list;
      (** (event, src vp, dst vp, queued count) for nonempty channels *)
  dg_max_mailbox : int;
}

exception Deadlock of diagnostic

let pp_vp fmt vp =
  Fmt.pf fmt "(%s)" (String.concat "," (List.map string_of_int vp))

let pp_diagnostic fmt (d : diagnostic) =
  Fmt.pf fmt "deadlock: %d processor(s) stuck@." (List.length d.dg_waiting);
  List.iter
    (fun w ->
      match w.w_reason with
      | WaitRecv r ->
          Fmt.pf fmt
            "  proc %d [t=%.3e]: recv event %d from vp%a (pid %d), expecting \
             seq %d, %d undeliverable queued@."
            w.w_pid w.w_clock r.wr_event pp_vp r.wr_src_vp r.wr_src_pid
            r.wr_expected_seq r.wr_queued
      | WaitReduce ->
          Fmt.pf fmt "  proc %d [t=%.3e]: blocked in scalar reduction@."
            w.w_pid w.w_clock
      | WaitReduceArr a ->
          Fmt.pf fmt "  proc %d [t=%.3e]: blocked in array reduction of %s@."
            w.w_pid w.w_clock a)
    d.dg_waiting;
  (match d.dg_cycle with
  | [] -> Fmt.pf fmt "  no wait-for cycle: a send is missing entirely@."
  | c ->
      Fmt.pf fmt "  wait-for cycle: %s -> %s@."
        (String.concat " -> " (List.map string_of_int c))
        (string_of_int (List.hd c)));
  List.iter
    (fun (ev, src, dst, n) ->
      Fmt.pf fmt "  undelivered: event %d vp%a -> vp%a, %d message(s)@." ev
        pp_vp src pp_vp dst n)
    d.dg_undelivered;
  if d.dg_max_mailbox > 0 then
    Fmt.pf fmt "  peak mailbox depth: %d@." d.dg_max_mailbox

let diagnostic_to_string d = Fmt.str "%a" pp_diagnostic d

(* shortest-path-free cycle finding: DFS over the wait-for edges; small
   graphs, recursion depth bounded by nprocs *)
let find_cycle (succ : int -> int list) (nodes : int list) : int list =
  let state = Hashtbl.create 16 in
  (* 0 = on stack, 1 = done *)
  let cycle = ref [] in
  let rec dfs path n =
    match Hashtbl.find_opt state n with
    | Some _ -> ()
    | None ->
        Hashtbl.replace state n 0;
        List.iter
          (fun s ->
            if !cycle = [] then
              match Hashtbl.find_opt state s with
              | Some 0 ->
                  (* found: unwind the path back to s *)
                  let rec take = function
                    | [] -> []
                    | x :: rest -> if x = s then [ x ] else x :: take rest
                  in
                  cycle := List.rev (take (n :: path))
              | Some _ -> ()
              | None -> dfs (n :: path) s)
          (succ n);
        Hashtbl.replace state n 1
  in
  List.iter (fun n -> if !cycle = [] then dfs [] n) nodes;
  !cycle

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)
(* ------------------------------------------------------------------ *)

type hooks = {
  h_nprocs : int;
  h_tr : transport;
  h_clock : int -> float;  (** read processor clock *)
  h_set_clock : int -> float -> unit;
  h_body : int -> unit;  (** run processor [p]'s node program to completion *)
  h_reduce_arr : string -> Spmd.reduce_op -> int;
      (** combine every processor's partial values of the named array
          element-wise and write the result back everywhere; returns the
          number of distinct elements combined (for pricing) *)
  h_phys_of_vp : int list -> int;
}

type waiting =
  | WRun  (** not yet started *)
  | WRecv of key * (msg, unit) Effect.Deep.continuation
  | WReduce of Spmd.reduce_op * float * (float, unit) Effect.Deep.continuation
  | WReduceArr of string * Spmd.reduce_op * (unit, unit) Effect.Deep.continuation
  | WDone

let sched_run (h : hooks) : unit =
  let tr = h.h_tr in
  let machine = tr.tr_machine in
  let nprocs = h.h_nprocs in
  let status = Array.make nprocs WRun in
  let start p =
    let open Effect.Deep in
    match_with
      (fun () -> h.h_body p)
      ()
      {
        retc = (fun () -> status.(p) <- WDone);
        exnc = (fun e -> raise e);
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | ERecv k ->
                Some
                  (fun (cont : (c, unit) continuation) ->
                    status.(p) <- WRecv (k, cont))
            | EReduce (op, v) ->
                Some
                  (fun (cont : (c, unit) continuation) ->
                    status.(p) <- WReduce (op, v, cont))
            | EReduceArr (name, op) ->
                Some
                  (fun (cont : (c, unit) continuation) ->
                    status.(p) <- WReduceArr (name, op, cont))
            | _ -> None);
      }
  in
  for p = 0 to nprocs - 1 do
    start p
  done;
  let is_done = function WDone -> true | _ -> false in
  let all_done () = Array.for_all is_done status in
  let max_clock () =
    let t = ref 0.0 in
    for p = 0 to nprocs - 1 do
      t := Float.max !t (h.h_clock p)
    done;
    !t
  in
  let progressed = ref true in
  while (not (all_done ())) && !progressed do
    progressed := false;
    (* deliver available messages: the transport may hold duplicates and
       reordered traffic, so delivery matches the next expected sequence
       number per channel — stale (already-delivered) copies are discarded
       and counted, out-of-order messages wait in flight *)
    for p = 0 to nprocs - 1 do
      match status.(p) with
      | WRecv (k, cont) -> (
          match Hashtbl.find_opt tr.tr_mailbox k with
          | Some q when !q <> [] -> (
              let expected =
                Option.value (Hashtbl.find_opt tr.tr_recv_seq k) ~default:0
              in
              let stale, live =
                List.partition (fun m -> m.m_seq < expected) !q
              in
              if stale <> [] then begin
                tr.tr_c.n_dups <- tr.tr_c.n_dups + List.length stale;
                (match tr.tr_trace with
                | Some tw ->
                    Obs.instant_at ~pid:tw.tw_pid ~tid:p
                      ~ts:(us (h.h_clock p)) ~cat:"fault"
                      ~args:[ ("count", Obs.Int (List.length stale)) ]
                      "dup discarded"
                | None -> ());
                q := live
              end;
              let rec take acc = function
                | [] -> None
                | m :: rest ->
                    if m.m_seq = expected then Some (m, List.rev_append acc rest)
                    else take (m :: acc) rest
              in
              match take [] live with
              | Some (msg, rest) ->
                  q := rest;
                  Hashtbl.replace tr.tr_recv_seq k (expected + 1);
                  progressed := true;
                  status.(p) <- WDone;
                  (* placeholder; handler overwrites on next block *)
                  op_point tr ~pid:p ~clock:(h.h_clock p);
                  Effect.Deep.continue cont msg
              | None -> ())
          | _ -> ())
      | _ -> ()
    done;
    (* collectives *)
    if not !progressed then begin
      let at_arr_reduce =
        Array.for_all (function WReduceArr _ -> true | _ -> false) status
        && Array.length status > 0
      in
      if at_arr_reduce then begin
        let name, op, _ =
          match status.(0) with
          | WReduceArr (n, o, c) -> (n, o, c)
          | _ -> assert false
        in
        let nelems = h.h_reduce_arr name op in
        let stages =
          if nprocs <= 1 then 0
          else int_of_float (ceil (log (float_of_int nprocs) /. log 2.0))
        in
        let cost = 2.0 *. float_of_int stages *. Machine.msg_time machine nelems in
        let t_done = max_clock () +. cost in
        tr.tr_c.n_msgs <- tr.tr_c.n_msgs + (2 * stages * nprocs);
        tr.tr_c.n_bytes <-
          tr.tr_c.n_bytes + (2 * stages * nelems * machine.Machine.elem_bytes);
        (match tr.tr_metrics with
        | None -> ()
        | Some sm ->
            sm.sm_coll_msgs <- sm.sm_coll_msgs + (2 * stages * nprocs);
            sm.sm_coll_bytes <-
              sm.sm_coll_bytes
              + (2 * stages * nelems * machine.Machine.elem_bytes);
            for p = 0 to nprocs - 1 do
              sm.sm_coll_t.(p) <- sm.sm_coll_t.(p) +. (t_done -. h.h_clock p)
            done);
        (match tr.tr_trace with
        | Some tw ->
            for p = 0 to nprocs - 1 do
              trace_slice tw ~tid:p ~t0:(h.h_clock p) ~t1:t_done ~cat:"coll"
                ~args:[ ("elems", Obs.Int nelems); ("stages", Obs.Int stages) ]
                (Printf.sprintf "allreduce_arr %s" name)
            done
        | None -> ());
        let conts =
          Array.mapi
            (fun pidx st ->
              match st with WReduceArr (_, _, c) -> Some (pidx, c) | _ -> None)
            status
        in
        Array.iter
          (function
            | Some (pidx, cont) ->
                h.h_set_clock pidx t_done;
                status.(pidx) <- WDone;
                progressed := true;
                op_point tr ~pid:pidx ~clock:t_done;
                Effect.Deep.continue cont ()
            | None -> ())
          conts
      end;
      let at_reduce =
        Array.for_all
          (function WReduce _ -> true | WDone -> false | _ -> false)
          status
        && Array.exists (function WReduce _ -> true | _ -> false) status
      in
      if at_reduce then begin
        let vals =
          Array.to_list status
          |> List.filter_map (function
               | WReduce (op, v, _) -> Some (op, v)
               | _ -> None)
        in
        let op = fst (List.hd vals) in
        let combined =
          List.fold_left
            (fun acc (_, v) ->
              match op with
              | Spmd.RSum -> acc +. v
              | Spmd.RMax -> Float.max acc v
              | Spmd.RMin -> Float.min acc v)
            (match op with
            | Spmd.RSum -> 0.0
            | Spmd.RMax -> Float.neg_infinity
            | Spmd.RMin -> Float.infinity)
            vals
        in
        let t_done = max_clock () +. Machine.allreduce_time machine nprocs in
        (match tr.tr_metrics with
        | None -> ()
        | Some sm ->
            Array.iteri
              (fun p s ->
                match s with
                | WReduce _ ->
                    sm.sm_coll_t.(p) <-
                      sm.sm_coll_t.(p) +. (t_done -. h.h_clock p)
                | _ -> ())
              status);
        (match tr.tr_trace with
        | Some tw ->
            let opname =
              match op with
              | Spmd.RSum -> "sum"
              | Spmd.RMax -> "max"
              | Spmd.RMin -> "min"
            in
            Array.iteri
              (fun p s ->
                match s with
                | WReduce _ ->
                    trace_slice tw ~tid:p ~t0:(h.h_clock p) ~t1:t_done
                      ~cat:"coll"
                      (Printf.sprintf "allreduce %s" opname)
                | _ -> ())
              status
        | None -> ());
        let conts =
          Array.mapi
            (fun p s -> match s with WReduce (_, _, c) -> Some (p, c) | _ -> None)
            status
        in
        Array.iter
          (function
            | Some (p, cont) ->
                h.h_set_clock p t_done;
                status.(p) <- WDone;
                progressed := true;
                op_point tr ~pid:p ~clock:t_done;
                Effect.Deep.continue cont combined
            | None -> ())
          conts
      end
    end
  done;
  if not (all_done ()) then begin
    (* structured diagnosis: who waits on whom, with event ids, sequence
       numbers, simulated clocks and channel depths; extract a wait-for
       cycle when one exists *)
    let waiting =
      Array.to_list status
      |> List.mapi (fun p s ->
             let w reason =
               Some { w_pid = p; w_clock = h.h_clock p; w_reason = reason }
             in
             match s with
             | WRecv (k, _) ->
                 let queued =
                   match Hashtbl.find_opt tr.tr_mailbox k with
                   | Some q -> List.length !q
                   | None -> 0
                 in
                 w
                   (WaitRecv
                      {
                        wr_event = k.k_event;
                        wr_src_vp = k.k_src;
                        wr_src_pid = h.h_phys_of_vp k.k_src;
                        wr_expected_seq =
                          Option.value
                            (Hashtbl.find_opt tr.tr_recv_seq k)
                            ~default:0;
                        wr_queued = queued;
                      })
             | WReduce _ -> w WaitReduce
             | WReduceArr (name, _, _) -> w (WaitReduceArr name)
             | WRun | WDone -> None)
      |> List.filter_map Fun.id
    in
    let stuck = List.map (fun w -> w.w_pid) waiting in
    let succ p =
      match List.find_opt (fun w -> w.w_pid = p) waiting with
      | Some { w_reason = WaitRecv r; _ } ->
          if List.mem r.wr_src_pid stuck then [ r.wr_src_pid ] else []
      | Some { w_reason = WaitReduce | WaitReduceArr _; _ } ->
          (* a collective waits on every processor that has not reached it *)
          List.filter
            (fun p' ->
              p' <> p
              &&
              match List.find_opt (fun w -> w.w_pid = p') waiting with
              | Some { w_reason = WaitRecv _; _ } -> true
              | _ -> false)
            stuck
      | _ -> []
    in
    let undelivered =
      Hashtbl.fold
        (fun k q acc ->
          if !q = [] then acc
          else (k.k_event, k.k_src, k.k_dst, List.length !q) :: acc)
        tr.tr_mailbox []
      |> List.sort compare
    in
    raise
      (Deadlock
         {
           dg_waiting = waiting;
           dg_cycle = find_cycle succ stuck;
           dg_undelivered = undelivered;
           dg_max_mailbox = tr.tr_c.n_max_mbox;
         })
  end

(* ------------------------------------------------------------------ *)
(* Parallel scheduler: lanes across a domain pool + sequential replay   *)
(* ------------------------------------------------------------------ *)

(* a collective rendezvous: at most one is open at any time (a lane
   cannot pass a collective before every lane reaches it), so a single
   current-slot reference suffices; lanes keep their own reference, which
   stays valid after the slot fires and a new one opens *)
type coll_slot = {
  mutable sl_sc : (int * Spmd.reduce_op * float) list;  (* scalar arrivals *)
  mutable sl_ar : (int * string * Spmd.reduce_op) list;  (* array arrivals *)
  mutable sl_fired : bool;
  mutable sl_scalar : float;  (* combined value, scalar collectives *)
  mutable sl_tdone : float;
}

type lane_state =
  | LStart
  | LRecv of key * (msg, unit) Effect.Deep.continuation
  | LReduce of coll_slot * (float, unit) Effect.Deep.continuation
  | LReduceArr of coll_slot * (unit, unit) Effect.Deep.continuation
  | LDone

let sched_run_par ?(domains = 1) (h : hooks) : unit =
  let tr = h.h_tr in
  let nprocs = h.h_nprocs in
  if
    domains <= 1 || nprocs <= 1
    || tr.tr_crash <> None
    || tr.tr_ckpt_every > 0
    || tr.tr_max_events > 0
  then
    (* exactly today's code path: single domain, or a crash/checkpoint/
       watchdog run, whose mid-run transport captures and op-indexed crash
       schedules are inherently sequential *)
    sched_run h
  else begin
    let machine = tr.tr_machine in
    let nd = min domains nprocs in
    let mu = Mutex.create () in
    let cond = Condition.create () in
    (* progress epoch: bumped on every publication that can unblock another
       domain (message post, collective firing); idlers re-sweep when it
       moves and park on [cond] while it does not *)
    let seqno = ref 0 in
    let mail : (key * int, msg) Hashtbl.t = Hashtbl.create 256 in
    let coll : coll_slot option ref = ref None in
    let arr_nelems : int Queue.t = Queue.create () in
    let n_done = ref 0 in
    let n_idle = ref 0 in
    let n_exited = ref 0 in
    (* per-domain idle stamp: -1 active, -2 exited, else the epoch it went
       to sleep at — a stall is declared only when every domain is asleep
       at the *current* epoch, so a firing that has not yet been collected
       by its sleeping owner can never be mistaken for a deadlock *)
    let idle_seen = Array.make nd (-1) in
    let abort = ref false in
    let error : (int * exn * Printexc.raw_backtrace) option ref = ref None in
    let init_clocks = Array.init nprocs h.h_clock in
    let lanes =
      Array.init nprocs (fun p ->
          {
            l_pid = p;
            l_log = [];
            l_sseq = Hashtbl.create 16;
            l_rseq = Hashtbl.create 16;
            l_post =
              (fun k m ->
                Mutex.protect mu (fun () ->
                    Hashtbl.replace mail (k, m.m_seq) m;
                    incr seqno;
                    Condition.broadcast cond));
          })
    in
    let record_error p e bt =
      Mutex.protect mu (fun () ->
          (match !error with
          | Some (p0, _, _) when p0 <= p -> ()
          | _ -> error := Some (p, e, bt));
          abort := true;
          incr seqno;
          Condition.broadcast cond)
    in
    (* fire the open collective if complete; caller holds [mu]. Mirrors the
       sequential conditions exactly: a scalar collective needs all lanes
       in it (one terminated lane blocks it forever, as in [sched_run]);
       an array collective likewise needs every lane. *)
    let try_fire (s : coll_slot) =
      if not s.sl_fired then begin
        let max_clock () =
          let t = ref 0.0 in
          for p = 0 to nprocs - 1 do
            t := Float.max !t (h.h_clock p)
          done;
          !t
        in
        if List.length s.sl_ar = nprocs then begin
          let _, name, op =
            List.find (fun (p, _, _) -> p = 0) s.sl_ar
          in
          let nelems = h.h_reduce_arr name op in
          Queue.push nelems arr_nelems;
          let stages =
            if nprocs <= 1 then 0
            else int_of_float (ceil (log (float_of_int nprocs) /. log 2.0))
          in
          s.sl_tdone <-
            max_clock ()
            +. (2.0 *. float_of_int stages *. Machine.msg_time machine nelems);
          s.sl_fired <- true;
          incr seqno;
          Condition.broadcast cond
        end
        else if List.length s.sl_sc = nprocs then begin
          let vals =
            List.sort (fun (a, _, _) (b, _, _) -> compare a b) s.sl_sc
          in
          let op = match vals with (_, op, _) :: _ -> op | [] -> assert false in
          s.sl_scalar <-
            List.fold_left
              (fun acc (_, _, v) ->
                match op with
                | Spmd.RSum -> acc +. v
                | Spmd.RMax -> Float.max acc v
                | Spmd.RMin -> Float.min acc v)
              (match op with
              | Spmd.RSum -> 0.0
              | Spmd.RMax -> Float.neg_infinity
              | Spmd.RMin -> Float.infinity)
              vals;
          s.sl_tdone <- max_clock () +. Machine.allreduce_time machine nprocs;
          s.sl_fired <- true;
          incr seqno;
          Condition.broadcast cond
        end
      end
    in
    (* register an arrival at the current collective; caller holds [mu] *)
    let arrive p (kind : [ `Sc of Spmd.reduce_op * float | `Ar of string * Spmd.reduce_op ])
        : coll_slot =
      let s =
        match !coll with
        | Some s when not s.sl_fired -> s
        | _ ->
            let s =
              { sl_sc = []; sl_ar = []; sl_fired = false; sl_scalar = 0.0;
                sl_tdone = 0.0 }
            in
            coll := Some s;
            s
      in
      (match kind with
      | `Sc (op, v) -> s.sl_sc <- (p, op, v) :: s.sl_sc
      | `Ar (name, op) -> s.sl_ar <- (p, name, op) :: s.sl_ar);
      try_fire s;
      s
    in
    let domain_loop d =
      let my =
        Array.of_list
          (List.filter
             (fun p -> p mod nd = d)
             (List.init nprocs (fun p -> p)))
      in
      let st = Array.map (fun _ -> LStart) my in
      let set_state i v = st.(i) <- v in
      (* run a lane step (start, resume or cancel) with its DLS marker
         installed; lane exceptions abort the whole run — Cancelled is the
         abort unwind itself and stays silent *)
      let lane_step p f =
        Domain.DLS.set lane_key (Some lanes.(p));
        Fun.protect ~finally:(fun () -> Domain.DLS.set lane_key None) f
      in
      let start i p =
        let open Effect.Deep in
        match_with
          (fun () -> h.h_body p)
          ()
          {
            retc =
              (fun () ->
                set_state i LDone;
                Mutex.protect mu (fun () -> incr n_done));
            exnc = (fun e -> raise e);
            effc =
              (fun (type c) (eff : c Effect.t) ->
                match eff with
                | ERecv k ->
                    Some
                      (fun (cont : (c, unit) continuation) ->
                        set_state i (LRecv (k, cont)))
                | EReduce (op, v) ->
                    Some
                      (fun (cont : (c, unit) continuation) ->
                        let s =
                          Mutex.protect mu (fun () ->
                              lanes.(p).l_log <-
                                OReduce
                                  { zop = op; zmine = v; zt0 = h.h_clock p }
                                :: lanes.(p).l_log;
                              arrive p (`Sc (op, v)))
                        in
                        set_state i (LReduce (s, cont)))
                | EReduceArr (name, op) ->
                    Some
                      (fun (cont : (c, unit) continuation) ->
                        let s =
                          Mutex.protect mu (fun () ->
                              lanes.(p).l_log <-
                                OReduceArr
                                  { aname = name; aop = op; at0 = h.h_clock p }
                                :: lanes.(p).l_log;
                              arrive p (`Ar (name, op)))
                        in
                        set_state i (LReduceArr (s, cont)))
                | _ -> None);
          }
      in
      let all_done () = Array.for_all (function LDone -> true | _ -> false) st in
      (try
         while (not (all_done ())) && not !abort do
           (* the epoch is read before the sweep: a publication landing
              mid-sweep moves it, so the no-progress re-check under the
              lock cannot miss a message the sweep was too early to see *)
           let seen = Mutex.protect mu (fun () -> !seqno) in
           let progressed = ref false in
           Array.iteri
             (fun i p ->
               if not !abort then
                 match st.(i) with
                 | LStart ->
                     progressed := true;
                     lane_step p (fun () -> start i p)
                 | LRecv (k, cont) -> (
                     let expected =
                       Option.value
                         (Hashtbl.find_opt lanes.(p).l_rseq k)
                         ~default:0
                     in
                     let m =
                       Mutex.protect mu (fun () ->
                           match Hashtbl.find_opt mail (k, expected) with
                           | Some m ->
                               Hashtbl.remove mail (k, expected);
                               Some m
                           | None -> None)
                     in
                     match m with
                     | Some m ->
                         Hashtbl.replace lanes.(p).l_rseq k (expected + 1);
                         progressed := true;
                         set_state i LDone;
                         (* placeholder; handler overwrites on next block *)
                         lane_step p (fun () -> Effect.Deep.continue cont m)
                     | None -> ())
                 | LReduce (s, cont) ->
                     if s.sl_fired then begin
                       progressed := true;
                       h.h_set_clock p s.sl_tdone;
                       set_state i LDone;
                       lane_step p (fun () ->
                           Effect.Deep.continue cont s.sl_scalar)
                     end
                 | LReduceArr (s, cont) ->
                     if s.sl_fired then begin
                       progressed := true;
                       h.h_set_clock p s.sl_tdone;
                       set_state i LDone;
                       lane_step p (fun () -> Effect.Deep.continue cont ())
                     end
                 | LDone -> ())
             my;
           if (not !progressed) && not (all_done ()) then
             Mutex.protect mu (fun () ->
                 (* an epoch moved since the sweep started means it may
                    have missed a publication: re-sweep instead of sleeping *)
                 if !seqno = seen && not !abort then begin
                   idle_seen.(d) <- seen;
                   incr n_idle;
                   if
                     !n_idle + !n_exited = nd
                     && !n_done < nprocs
                     && Array.for_all (fun s -> s = seen || s = -2) idle_seen
                   then begin
                     (* every domain is asleep at the current epoch and
                        lanes remain blocked: a genuine stall *)
                     abort := true;
                     Condition.broadcast cond
                   end
                   else
                     while !seqno = seen && not !abort do
                       Condition.wait cond mu
                     done;
                   decr n_idle;
                   idle_seen.(d) <- -1
                 end)
         done
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         (match e with
         | Cancelled -> ()
         | _ -> record_error d e bt));
      (* tear down: park clocks of still-blocked lanes go on the log so the
         replay reproduces the sequential deadlock diagnosis (collective
         parks were logged on arrival), then unwind their fibers *)
      if !abort then
        Array.iteri
          (fun i p ->
            let cancel cont =
              try lane_step p (fun () -> Effect.Deep.discontinue cont Cancelled)
              with
              | Cancelled -> ()
              | e ->
                  let bt = Printexc.get_raw_backtrace () in
                  record_error p e bt
            in
            match st.(i) with
            | LRecv (k, cont) ->
                lanes.(p).l_log <-
                  OPendRecv { pk = k; pt0 = h.h_clock p } :: lanes.(p).l_log;
                set_state i LDone;
                cancel cont
            | LReduce (_, cont) ->
                set_state i LDone;
                cancel cont
            | LReduceArr (_, cont) ->
                set_state i LDone;
                cancel cont
            | LStart | LDone -> ())
          my;
      Mutex.protect mu (fun () ->
          idle_seen.(d) <- -2;
          incr n_exited;
          if
            !n_idle + !n_exited = nd
            && !n_done < nprocs
            && Array.for_all (fun s -> s = !seqno || s = -2) idle_seen
          then begin
            abort := true;
            Condition.broadcast cond
          end)
    in
    (try Par.spawn_join nd domain_loop
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       record_error nprocs e bt);
    (match !error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    let stalled = !abort in
    (* pass 2: replay the lane logs through the sequential scheduler so
       every transport mutation — counters, mailbox evolution (duplicates,
       reordering, stale discards), sequence cursors, op points, metrics
       and traces — happens in exactly the sequential interleaving, against
       shadow clocks restored from the logged park/completion times *)
    let shadow = Array.copy init_clocks in
    let walk p =
      List.iter
        (function
          | OSend commit -> commit ()
          | ORecv { rk; rseq; rt0; rt1 } ->
              shadow.(p) <- rt0;
              let m = Effect.perform (ERecv rk) in
              if m.m_seq <> rseq then
                errf
                  "parallel replay divergence: proc %d event %d delivered \
                   seq %d, lane consumed seq %d"
                  p rk.k_event m.m_seq rseq;
              shadow.(p) <- rt1;
              trace_recv tr ~tid:p ~t0:rt0 ~t1:rt1 rk m
          | OReduce { zop; zmine; zt0 } ->
              shadow.(p) <- zt0;
              ignore (Effect.perform (EReduce (zop, zmine)) : float)
          | OReduceArr { aname; aop; at0 } ->
              shadow.(p) <- at0;
              Effect.perform (EReduceArr (aname, aop))
          | OPendRecv { pk; pt0 } ->
              shadow.(p) <- pt0;
              ignore (Effect.perform (ERecv pk) : msg);
              errf "parallel replay divergence: stalled receive completed")
        (List.rev lanes.(p).l_log)
    in
    let rh =
      {
        h with
        h_clock = (fun p -> shadow.(p));
        h_set_clock = (fun p t -> shadow.(p) <- t);
        h_body = walk;
        h_reduce_arr =
          (fun _ _ ->
            (* pass 1 already combined, in global collective order *)
            Queue.pop arr_nelems);
      }
    in
    if stalled then begin
      sched_run rh;
      (* the replay of a stalled run must stall too (raising Deadlock) *)
      errf "parallel replay divergence: replay completed but lanes stalled"
    end
    else
      match sched_run rh with
      | () -> ()
      | exception Deadlock _ ->
          errf "parallel replay divergence: replay stalled on a completed run"
  end

(** Sorted per-pair point-to-point table, one row per (event, src, dst)
    that carried traffic; the diagonal rows are co-located VP copies.
    Empty unless [Obs.Metrics] was enabled when the transport was built.
    Per-pair counts never re-increment on retransmission or duplication,
    so the measured matrix is invariant under fault injection — exactly
    the property [--check-comm] relies on. *)
let comm_cells tr : comm_cell list =
  match tr.tr_metrics with
  | None -> []
  | Some sm ->
      Hashtbl.fold
        (fun (event, src, dst) (msgs, elems) acc ->
          { cm_event = event; cm_src = src; cm_dst = dst; cm_msgs = !msgs;
            cm_elems = !elems;
            cm_bytes = !elems * tr.tr_machine.Machine.elem_bytes }
          :: acc)
        sm.sm_cells []
      |> List.sort compare

(* fold the per-run accumulators into the global metrics registry: the
   communication matrix, per-processor time split, halo occupancy, fault
   breakdown and the derived load-balance figures of merit *)
let metrics_publish tr sm ~proc_times =
  let module M = Obs.Metrics in
  let p = sm.sm_nprocs in
  let label_pair src dst =
    [ ("src", string_of_int src); ("dst", string_of_int dst) ]
  in
  for src = 0 to p - 1 do
    for dst = 0 to p - 1 do
      let c = (src * p) + dst in
      if sm.sm_mx_msgs.(c) > 0 then begin
        let labels = label_pair src dst in
        M.inc (M.counter ~labels "sim/comm_msgs")
          (float_of_int sm.sm_mx_msgs.(c));
        M.inc (M.counter ~labels "sim/comm_elems")
          (float_of_int sm.sm_mx_elems.(c));
        M.inc (M.counter ~labels "sim/comm_bytes")
          (float_of_int
             (sm.sm_mx_elems.(c) * tr.tr_machine.Machine.elem_bytes))
      end
    done
  done;
  let halo = M.histogram "sim/halo_elems_per_proc" in
  let compute_sum = ref 0.0 and compute_max = ref 0.0 and comm_sum = ref 0.0 in
  Array.iteri
    (fun i total ->
      let comm = sm.sm_send_t.(i) +. sm.sm_recv_t.(i) +. sm.sm_coll_t.(i) in
      let compute = Float.max 0.0 (total -. comm) in
      compute_sum := !compute_sum +. compute;
      comm_sum := !comm_sum +. comm;
      if compute > !compute_max then compute_max := compute;
      let labels = [ ("proc", string_of_int i) ] in
      M.set (M.gauge ~labels "sim/proc_total_s") total;
      M.set (M.gauge ~labels "sim/proc_compute_s") compute;
      M.set (M.gauge ~labels "sim/proc_send_s") sm.sm_send_t.(i);
      M.set (M.gauge ~labels "sim/proc_recv_wait_s") sm.sm_recv_t.(i);
      M.set (M.gauge ~labels "sim/proc_coll_s") sm.sm_coll_t.(i);
      if sm.sm_retrans.(i) > 0 then
        M.inc
          (M.counter ~labels:[ ("src", string_of_int i) ] "sim/retransmits_by_src")
          (float_of_int sm.sm_retrans.(i));
      M.observe halo (float_of_int sm.sm_recv_elems.(i)))
    proc_times;
  let inc_tot name v = M.inc (M.counter name) (float_of_int v) in
  inc_tot "sim/msgs_total" tr.tr_c.n_msgs;
  inc_tot "sim/bytes_total" tr.tr_c.n_bytes;
  inc_tot "sim/elems_total" tr.tr_c.n_elems;
  inc_tot "sim/coll_msgs" sm.sm_coll_msgs;
  inc_tot "sim/coll_bytes" sm.sm_coll_bytes;
  inc_tot "sim/local_copies" sm.sm_local_msgs;
  inc_tot "sim/local_copy_elems" sm.sm_local_elems;
  inc_tot "sim/retransmits" tr.tr_c.n_retransmits;
  inc_tot "sim/timeouts" tr.tr_c.n_timeouts;
  inc_tot "sim/dups_discarded" tr.tr_c.n_dups;
  M.set (M.gauge "sim/max_mailbox") (float_of_int tr.tr_c.n_max_mbox);
  let mean = !compute_sum /. float_of_int (max 1 p) in
  M.set (M.gauge "sim/compute_max_s") !compute_max;
  M.set (M.gauge "sim/compute_mean_s") mean;
  if mean > 0.0 then M.set (M.gauge "sim/load_imbalance") (!compute_max /. mean);
  if !compute_sum > 0.0 then
    M.set (M.gauge "sim/comm_to_compute") (!comm_sum /. !compute_sum)

(** Assemble the final statistics from the transport counters and the
    per-processor clocks. For a traced run this is also the end of the
    timeline: name the lanes and fill each processor's tail (last traced
    slice to its final clock) as compute. For a metered run this is where
    the accumulators fold into the [Obs.Metrics] registry. *)
let stats_of tr ~proc_times : stats =
  (match tr.tr_trace with
  | Some tw ->
      Obs.set_process_name ~pid:tw.tw_pid
        (Printf.sprintf "spmd simulation %d" tw.tw_pid);
      Array.iteri
        (fun p t ->
          Obs.set_thread_name ~pid:tw.tw_pid ~tid:p (Printf.sprintf "proc %d" p);
          trace_gap tw ~tid:p t;
          Hashtbl.replace tw.tw_last p t)
        proc_times
  | None -> ());
  (match tr.tr_metrics with
  | Some sm -> metrics_publish tr sm ~proc_times
  | None -> ());
  {
    s_time = Array.fold_left Float.max 0.0 proc_times;
    s_msgs = tr.tr_c.n_msgs;
    s_bytes = tr.tr_c.n_bytes;
    s_elems = tr.tr_c.n_elems;
    s_proc_times = proc_times;
    s_retransmits = tr.tr_c.n_retransmits;
    s_timeouts = tr.tr_c.n_timeouts;
    s_dups_delivered = tr.tr_c.n_dups;
    s_max_mailbox = tr.tr_c.n_max_mbox;
    (* crash/recovery accounting lives in the {!Checkpoint} controller,
       which patches these after assembling the final attempt's stats *)
    s_crashes = 0;
    s_recoveries = 0;
    s_ckpts = 0;
    s_ckpt_bytes = 0;
    s_lost_work = 0.0;
  }
