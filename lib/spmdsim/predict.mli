(** Static communication-volume prediction — the paper's Figure-3
    communication sets evaluated at concrete distribution parameters.

    The compiler synthesizes its partner and packing loops from the
    integer-set equations ({!Iset.Codegen.gen} over [SendCommMap] and its
    flattened full map), so the generated SPMD program is a closed form of
    those sets. {!comm} walks just the communication skeleton of the
    program — the [For]/[If] nests that transitively contain a [Pack],
    [Send] or [Recv] — under the same startup environment the simulator
    uses ({!Runtime.setup}), and tabulates per (event, sender, receiver)
    exactly how many messages and elements every processor will send.
    No clocks, storage or transport are involved, so prediction is cheap
    and exact: in a fault-free run the simulator's measured table
    ({!Exec.comm_cells}) must equal it bit for bit, and since per-pair
    counters never re-increment on retransmission, the equality holds
    under fault injection too. [dhpfc run --check-comm] enforces this
    continuously. *)

exception Unpredictable of string
(** Raised when communication depends on runtime data (a [FIf] branch
    containing comm — never emitted by this compiler) or on an unbound
    parameter. *)

type cell = {
  p_event : int;  (** communication event id *)
  p_src : int;  (** sending physical processor *)
  p_dst : int;  (** [p_src = p_dst]: local copy between co-located VPs *)
  p_msgs : int;
  p_elems : int;
}

val comm :
  ?params:(string * int) list -> nprocs:int -> Dhpf.Spmd.program -> cell list
(** Predicted point-to-point communication table, sorted by (event, src,
    dst); one row per pair the program sends to (empty messages still
    count one [p_msgs]). [params] and [nprocs] as in {!Exec.make}.
    @raise Unpredictable on data-dependent communication.
    @raise Runtime.Error on startup binding failures. *)

type mismatch = {
  mm_event : int;
  mm_src : int;
  mm_dst : int;
  mm_pred_msgs : int;
  mm_meas_msgs : int;
  mm_pred_elems : int;
  mm_meas_elems : int;
}

val check :
  ?slack:float -> cell list -> Runtime.comm_cell list -> mismatch list
(** Full outer join of predicted vs. measured rows: those whose message
    or element counts differ by more than [slack * predicted] (default
    [0.] — exact equality). Empty result means the prediction held. *)
