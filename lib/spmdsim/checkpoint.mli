(** Coordinated checkpoint/restart recovery for fail-stop processor
    crashes (DESIGN.md §12).

    Every [ckpt_every] global communication operations the controller
    captures a deep image of the whole group ({!Exec.capture}) — clocks,
    live bindings, every resident array element, staged pack buffers,
    per-channel sequence counters and in-flight messages — prices the
    write on every processor's clock
    ([Machine.ckpt_alpha + bytes * Machine.ckpt_beta]) and keeps the
    latest image as the rollback source. The snapshot is taken inside the
    scheduler between operations at a deterministic global count, so it is
    a consistent cut of the unique deterministic execution; in-flight
    messages are part of the image, so no quiescence is needed.

    When a crash fires ({!Runtime.Crash}), recovery is re-execution-based
    — effect-handler fibers cannot be serialized — so a fresh simulation
    replays deterministically from the start (consumed crashes never
    re-fire, message faults and checkpoint charges re-derive identically).
    At the rollback boundary the controller verifies the replayed state is
    bit-identical to the stored snapshot ({!image_equal}) and applies the
    restart barrier: every clock is set to

    [T_r = max clock at crash + detect_timeout + restart_latency + read cost].

    Values never depend on clocks (delivery is sequence-matched), so
    element results stay bit-identical to the fault-free run on both
    engines and the first-transmission-only comm matrix is fault-invariant
    — only clocks absorb the lost work and recovery latency. *)

(** {1 Snapshot images} *)

val image_equal : Runtime.image -> Runtime.image -> bool
(** Structural equality with floats compared by their IEEE-754 bits (NaN
    equals itself, [0.] differs from [-0.]) — "the replay reproduced the
    exact state", which [Stdlib.(=)] on floats does not express. *)

val encode : Runtime.image -> bytes
(** Serialize to the self-contained little-endian ["DHPFCKPT1"] format:
    8-byte LE integers, floats as their bits, length-prefixed strings and
    arrays. The output length is what prices the checkpoint. *)

val decode : bytes -> Runtime.image
(** Inverse of {!encode}; [decode (encode im)] is {!image_equal} to [im].
    @raise Runtime.Error on a bad magic. *)

(** {1 Recovery controller} *)

type snapshot = {
  sn_ops : int;  (** global op count of the boundary *)
  sn_img : Runtime.image;
  sn_bytes : int;  (** encoded size — the read-back cost driver *)
}

type crash_record = {
  cr_pid : int;
  cr_op : int;  (** the crashed processor's communication-op index *)
  cr_clock : float;  (** its clock when it died *)
  cr_restore_ops : int;  (** rollback boundary (0 = restart from scratch) *)
  cr_restart_t : float;  (** T_r: when the group resumes *)
  cr_lost_work : float;  (** discarded simulated seconds, summed over procs *)
}

type report = {
  rp_sim : Exec.sim;
      (** the completed final-attempt simulation — read results and
          {!Exec.comm_cells} from it *)
  rp_stats : Runtime.stats;
      (** final-attempt stats with [s_crashes] / [s_recoveries] /
          [s_ckpts] / [s_ckpt_bytes] / [s_lost_work] filled in *)
  rp_crashes : crash_record list;  (** chronological *)
  rp_attempts : int;  (** executions launched, including the first *)
}

val run :
  ?engine:Exec.engine ->
  ?machine:Machine.t ->
  ?faults:Fault.spec ->
  ?plan:(int * int) list ->
  ?ckpt_every:int ->
  ?max_events:int ->
  nprocs:int ->
  ?params:(string * int) list ->
  Dhpf.Spmd.program ->
  report
(** Run [prog] under crash injection with checkpoint/restart recovery.

    [plan] lists explicit (pid, op) crash points (tests); [faults]
    supplies the hash-driven schedule when its [crash_prob] is positive,
    bounded by its [crash_max], plus the usual message faults. The total
    crash budget is [crash_max + length plan], so attempts are bounded.
    [ckpt_every = 0] (default) disables snapshots: every recovery restarts
    from scratch. [max_events] forwards the scheduler watchdog bound.

    Metrics (when enabled): [sim/crashes], [sim/recoveries],
    [sim/ckpt_count], [sim/ckpt_bytes], [sim/lost_work_s]. Tracing: a
    ["crash"] instant on the dying attempt and a ["restore"] instant at
    [T_r] on each replay. Note the per-simulation metrics of aborted
    attempts are never folded into the registry (only the completed
    attempt reaches [stats_of]), but live wire-level histograms do
    accumulate across attempts — they record wire truth, retransmitted
    work included. *)
