(** Shared runtime substrate for the two SPMD execution engines: the
    tree-walking interpreter ({!Exec} with [`Interp]) and the
    closure-compiling engine ({!Compile}, the default [`Closure]).

    The transport (packed payloads, per-channel sequence numbers, fault
    plans, message/byte/retransmit counters) and the scheduler (message
    delivery, scalar and array collectives, deadlock diagnosis) live here
    and are used verbatim by both engines, so the engine-differential
    guarantee — identical counters, identical delivery order — is
    structural rather than re-implemented twice. *)

open Dhpf

exception Error of string

val errf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message. *)

(** {1 Startup} *)

type setup = {
  su_genv : (string, int) Hashtbl.t;  (** global parameter values *)
  su_extents : int array;  (** processor grid extents *)
  su_total : int;  (** total processors: product of extents *)
  su_coords : int array array;  (** per-pid grid coordinates (m$k) *)
  su_vm0 : (int * int) list array;
      (** per-pid startup VP coordinates: (proc-dim index, vm$k value);
          template-cell VPs are bound by generated loops instead *)
  su_skew : float array;  (** per-processor straggler multiplier (>= 1) *)
}

val setup :
  ?faults:Fault.spec ->
  nprocs:int ->
  params:(string * int) list ->
  Spmd.program ->
  setup
(** Evaluate startup parameter bindings (with
    [number_of_processors() = nprocs]), size the processor grid and compute
    each processor's coordinates and clock skew. *)

val eval_genv : (string, int) Hashtbl.t -> Spmd.expr -> int
(** Evaluate an expression over global parameters only. *)

(** {1 Ownership and VP mapping} *)

val owner_coord :
  eval:(Spmd.expr -> int) -> Spmd.dim_layout -> int array -> int option
(** Physical owner coordinate of an element along one processor dimension,
    or [None] when the element is replicated along it. *)

val phys_of_vp :
  eval:(Spmd.expr -> int) -> Spmd.program -> extents:int array -> int list -> int
(** Linear physical pid owning a virtual-processor coordinate tuple. *)

(** {1 Array metadata} *)

type ameta = {
  am_name : string;
  am_bounds : (int * int) array;
  am_ext : int array;
  am_strides : int array;  (** column-major strides (dim 0 fastest) *)
  am_base : int;
}

val ameta : eval:(Spmd.expr -> int) -> Spmd.array_decl -> ameta

val encode : ameta -> int list -> int
(** Global linear index, bounds-checked ([Error] outside the declaration). *)

(** {1 Packed payloads} *)

type payload = {
  pl_arr : string;  (** destination array; [""] for an empty message *)
  pl_idx : int array;  (** global linear element indices *)
  pl_val : float array;
}

val empty_payload : payload

type packbuf

val packbuf_create : unit -> packbuf
val packbuf_push : packbuf -> arr:string -> int -> float -> unit
val packbuf_flush : packbuf -> payload

(** {1 Transport} *)

type key = { k_event : int; k_src : int list; k_dst : int list }

type msg = {
  m_seq : int;
  m_arrival : float;
  m_payload : payload;
  m_contig : bool;
}

type counters = {
  mutable n_msgs : int;
  mutable n_bytes : int;
  mutable n_elems : int;
  mutable n_retransmits : int;
  mutable n_timeouts : int;
  mutable n_dups : int;
  mutable n_max_mbox : int;
}

type trace
(** Per-simulation tracing state: a fresh Chrome pid, the (channel, seq) ->
    flow-id map linking sends to receives, and per-processor last-slice
    times for compute-gap rendering. Allocated by {!transport_make} iff
    [Obs.enabled ()]; tracing reads the virtual clocks but never advances
    them, so traced and untraced runs are bit-identical. *)

type simmetrics
(** Per-simulation metrics accumulators: the dense P×P communication
    matrix, the per-(event, src, dst) cell table, per-processor
    send/recv-wait/collective time, halo occupancy and the fault
    breakdown. Allocated by {!transport_make} iff [Obs.Metrics.enabled
    ()]; like tracing it only reads the virtual clocks and payload sizes,
    so a metered run is bit-identical (values, clocks, counters) to a bare
    one. Folded into the [Obs.Metrics] registry by {!stats_of} under
    [sim/]-prefixed series names. *)

type transport = {
  tr_machine : Machine.t;
  tr_faults : Fault.spec option;
  tr_mailbox : (key, msg list ref) Hashtbl.t;
  tr_send_seq : (key, int) Hashtbl.t;
  tr_recv_seq : (key, int) Hashtbl.t;
  tr_c : counters;
  tr_trace : trace option;
  tr_metrics : simmetrics option;
}

val transport_make :
  machine:Machine.t -> faults:Fault.spec option -> nprocs:int -> transport

type comm_cell = {
  cm_event : int;  (** communication event id *)
  cm_src : int;  (** sending physical processor *)
  cm_dst : int;  (** [cm_src = cm_dst]: local copy between co-located VPs *)
  cm_msgs : int;
  cm_elems : int;
  cm_bytes : int;  (** [cm_elems * elem_bytes] *)
}

val comm_cells : transport -> comm_cell list
(** Measured point-to-point communication table, sorted by (event, src,
    dst); one row per pair that carried traffic. Empty unless
    [Obs.Metrics] was enabled when the transport was built. Per-pair
    counts never re-increment on retransmission or duplicate delivery, so
    the table is invariant under fault injection. *)

val trace_recv :
  transport -> tid:int -> t0:float -> t1:float -> key -> msg -> unit
(** Trace a completed receive ([t0] = clock at block, [t1] = clock after
    arrival sync and unpack charges, both in simulated seconds): emits the
    recv slice and closes the matching send's flow arrow. No-op when the
    transport is untraced — both engines call it unconditionally. *)

val send :
  transport ->
  tick:(float -> unit) ->
  get_clock:(unit -> float) ->
  pid:int ->
  dst_pid:int ->
  event:int ->
  src_vp:int list ->
  dst_vp:int list ->
  inplace:bool ->
  rect:bool ->
  payload ->
  unit
(** Complete a send: contiguity decision (§3.3), packing/send CPU charges
    via [tick], fault plan application (drops priced as retransmissions,
    delay, duplication, reordering) and enqueue. Both engines call this, so
    counter and timing semantics cannot diverge. *)

(** {1 Effects} *)

type _ Effect.t +=
  | ERecv : key -> msg Effect.t
  | EReduce : (Spmd.reduce_op * float) -> float Effect.t
  | EReduceArr : (string * Spmd.reduce_op) -> unit Effect.t

(** {1 Statistics} *)

type stats = {
  s_time : float;
  s_msgs : int;
  s_bytes : int;
  s_elems : int;
  s_proc_times : float array;
  s_retransmits : int;
  s_timeouts : int;
  s_dups_delivered : int;
  s_max_mailbox : int;
}

val stats_of : transport -> proc_times:float array -> stats

(** {1 Deadlock diagnostics} *)

type wait_reason =
  | WaitRecv of {
      wr_event : int;
      wr_src_vp : int list;
      wr_src_pid : int;
      wr_expected_seq : int;
      wr_queued : int;
    }
  | WaitReduce
  | WaitReduceArr of string

type proc_wait = { w_pid : int; w_clock : float; w_reason : wait_reason }

type diagnostic = {
  dg_waiting : proc_wait list;
  dg_cycle : int list;
  dg_undelivered : (int * int list * int list * int) list;
  dg_max_mailbox : int;
}

exception Deadlock of diagnostic

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string
val find_cycle : (int -> int list) -> int list -> int list

(** {1 Scheduler} *)

type hooks = {
  h_nprocs : int;
  h_tr : transport;
  h_clock : int -> float;
  h_set_clock : int -> float -> unit;
  h_body : int -> unit;
  h_reduce_arr : string -> Spmd.reduce_op -> int;
      (** element-wise combine of every processor's partial values, result
          written back everywhere; returns the element count (for pricing) *)
  h_phys_of_vp : int list -> int;
}

val sched_run : hooks -> unit
(** Drive every processor fiber to completion: deliver sequence-matched
    messages, execute collectives, and raise {!Deadlock} with a structured
    diagnosis when no progress is possible. *)
