(** Shared runtime substrate for the two SPMD execution engines: the
    tree-walking interpreter ({!Exec} with [`Interp]) and the
    closure-compiling engine ({!Compile}, the default [`Closure]).

    The transport (packed payloads, per-channel sequence numbers, fault
    plans, message/byte/retransmit counters) and the scheduler (message
    delivery, scalar and array collectives, deadlock diagnosis) live here
    and are used verbatim by both engines, so the engine-differential
    guarantee — identical counters, identical delivery order — is
    structural rather than re-implemented twice. *)

open Dhpf

exception Error of string

val errf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message. *)

(** {1 Startup} *)

type setup = {
  su_genv : (string, int) Hashtbl.t;  (** global parameter values *)
  su_extents : int array;  (** processor grid extents *)
  su_total : int;  (** total processors: product of extents *)
  su_coords : int array array;  (** per-pid grid coordinates (m$k) *)
  su_vm0 : (int * int) list array;
      (** per-pid startup VP coordinates: (proc-dim index, vm$k value);
          template-cell VPs are bound by generated loops instead *)
  su_skew : float array;  (** per-processor straggler multiplier (>= 1) *)
}

val setup :
  ?faults:Fault.spec ->
  nprocs:int ->
  params:(string * int) list ->
  Spmd.program ->
  setup
(** Evaluate startup parameter bindings (with
    [number_of_processors() = nprocs]), size the processor grid and compute
    each processor's coordinates and clock skew. *)

val eval_genv : (string, int) Hashtbl.t -> Spmd.expr -> int
(** Evaluate an expression over global parameters only. *)

(** {1 Ownership and VP mapping} *)

val owner_coord :
  eval:(Spmd.expr -> int) -> Spmd.dim_layout -> int array -> int option
(** Physical owner coordinate of an element along one processor dimension,
    or [None] when the element is replicated along it. *)

val phys_of_vp :
  eval:(Spmd.expr -> int) -> Spmd.program -> extents:int array -> int list -> int
(** Linear physical pid owning a virtual-processor coordinate tuple. *)

(** {1 Array metadata} *)

type ameta = {
  am_name : string;
  am_bounds : (int * int) array;
  am_ext : int array;
  am_strides : int array;  (** column-major strides (dim 0 fastest) *)
  am_base : int;
}

val ameta : eval:(Spmd.expr -> int) -> Spmd.array_decl -> ameta

val encode : ameta -> int list -> int
(** Global linear index, bounds-checked ([Error] outside the declaration). *)

(** {1 Packed payloads} *)

type payload = {
  pl_arr : string;  (** destination array; [""] for an empty message *)
  pl_idx : int array;  (** global linear element indices *)
  pl_val : float array;
}

val empty_payload : payload

type packbuf

val packbuf_create : ?cap:int -> unit -> packbuf
(** [?cap] preallocates capacity for that many elements (floored at 16), so
    engines that know a channel's message cardinality up front — the native
    engine sizes per-(event, processor) buffers from [Predict]'s comm-set
    counts — never pay the doubling reallocations during packing. *)

val packbuf_push : packbuf -> arr:string -> int -> float -> unit
val packbuf_flush : packbuf -> payload

val packbuf_peek : packbuf -> payload
(** Read the staged elements without resetting the buffer — checkpoint
    capture treats staged-but-unsent data as part of processor state. *)

(** {1 Fail-stop crash control} *)

exception Crash of { cp_pid : int; cp_op : int; cp_clock : float }
(** A scheduled fail-stop crash fired: processor [cp_pid] died at its
    [cp_op]-th communication operation, local clock [cp_clock]. Recovered
    by {!Checkpoint.run}; under plain [Exec.run] it propagates to the
    caller. *)

type crashctl
(** Crash schedule control block: the probability spec and/or explicit
    (pid, op) plan, the remaining crash budget, and the set of crashes
    already consumed. Shared across recovery attempts so a deterministic
    replay does not re-fire a crash it already suffered. *)

val crashctl_make :
  ?plan:(int * int) list -> ?spec:Fault.spec -> max:int -> unit -> crashctl
(** [plan] lists explicit (pid, op) crash points (tests); [spec] supplies
    the hash-driven schedule ({!Fault.crash}); [max] bounds total crashes. *)

(** {1 Transport} *)

type key = { k_event : int; k_src : int list; k_dst : int list }

type msg = {
  m_seq : int;
  m_arrival : float;
  m_payload : payload;
  m_contig : bool;
}

type counters = {
  mutable n_msgs : int;
  mutable n_bytes : int;
  mutable n_elems : int;
  mutable n_retransmits : int;
  mutable n_timeouts : int;
  mutable n_dups : int;
  mutable n_max_mbox : int;
}

type trace
(** Per-simulation tracing state: a fresh Chrome pid, the (channel, seq) ->
    flow-id map linking sends to receives, and per-processor last-slice
    times for compute-gap rendering. Allocated by {!transport_make} iff
    [Obs.enabled ()]; tracing reads the virtual clocks but never advances
    them, so traced and untraced runs are bit-identical. *)

type simmetrics
(** Per-simulation metrics accumulators: the dense P×P communication
    matrix, the per-(event, src, dst) cell table, per-processor
    send/recv-wait/collective time, halo occupancy and the fault
    breakdown. Allocated by {!transport_make} iff [Obs.Metrics.enabled
    ()]; like tracing it only reads the virtual clocks and payload sizes,
    so a metered run is bit-identical (values, clocks, counters) to a bare
    one. Folded into the [Obs.Metrics] registry by {!stats_of} under
    [sim/]-prefixed series names. *)

type transport = {
  tr_machine : Machine.t;
  tr_faults : Fault.spec option;
  tr_mailbox : (key, msg list ref) Hashtbl.t;
  tr_send_seq : (key, int) Hashtbl.t;
  tr_recv_seq : (key, int) Hashtbl.t;
  tr_c : counters;
  tr_trace : trace option;
  tr_metrics : simmetrics option;
  tr_pid_ops : int array;
      (** per-processor communication-operation index (sends, receive
          completions, collective completions, in execution order) — the
          coordinate crash schedules are keyed on *)
  mutable tr_gops : int;  (** total operations across all processors *)
  mutable tr_crash : crashctl option;
      (** installed by the {!Checkpoint} controller; a firing crash raises
          {!Crash} from inside the scheduler *)
  mutable tr_ckpt_every : int;
      (** coordinated-checkpoint interval in global operations; 0 = off *)
  mutable tr_on_ckpt : int -> unit;
      (** checkpoint trigger, called with the global op count whenever it
          crosses a multiple of [tr_ckpt_every] *)
  mutable tr_max_events : int;
      (** scheduler watchdog: raise {!Error} once the global op count
          exceeds this bound; 0 = off *)
}

val transport_make :
  machine:Machine.t -> faults:Fault.spec option -> nprocs:int -> transport

type comm_cell = {
  cm_event : int;  (** communication event id *)
  cm_src : int;  (** sending physical processor *)
  cm_dst : int;  (** [cm_src = cm_dst]: local copy between co-located VPs *)
  cm_msgs : int;
  cm_elems : int;
  cm_bytes : int;  (** [cm_elems * elem_bytes] *)
}

val comm_cells : transport -> comm_cell list
(** Measured point-to-point communication table, sorted by (event, src,
    dst); one row per pair that carried traffic. Empty unless
    [Obs.Metrics] was enabled when the transport was built. Per-pair
    counts never re-increment on retransmission or duplicate delivery, so
    the table is invariant under fault injection. *)

val trace_recv :
  transport -> tid:int -> t0:float -> t1:float -> key -> msg -> unit
(** Trace a completed receive ([t0] = clock at block, [t1] = clock after
    arrival sync and unpack charges, both in simulated seconds): emits the
    recv slice and closes the matching send's flow arrow. No-op when the
    transport is untraced — both engines call it unconditionally. *)

val send :
  transport ->
  tick:(float -> unit) ->
  get_clock:(unit -> float) ->
  pid:int ->
  dst_pid:int ->
  event:int ->
  src_vp:int list ->
  dst_vp:int list ->
  inplace:bool ->
  rect:bool ->
  payload ->
  unit
(** Complete a send: contiguity decision (§3.3), packing/send CPU charges
    via [tick], fault plan application (drops priced as retransmissions,
    delay, duplication, reordering) and enqueue. Both engines call this, so
    counter and timing semantics cannot diverge. Ends with an {!op_point},
    so a send is one communication operation. *)

val op_point : transport -> pid:int -> clock:float -> unit
(** One communication operation completed on [pid]: advance the operation
    indices, feed the watchdog, evaluate the crash schedule (possibly
    raising {!Crash}), and fire the checkpoint trigger on interval
    boundaries. Called by {!send} and the scheduler; engines never call it
    directly. *)

val trace_pid : transport -> int option
(** Chrome pid of this simulation's trace lane group, when traced. *)

val trace_instant :
  transport ->
  tid:int ->
  ts:float ->
  ?cat:string ->
  ?args:(string * Obs.arg) list ->
  string ->
  unit
(** Emit an instant marker on processor [tid]'s lane at simulated time
    [ts]; no-op when untraced. Category defaults to ["fault"]. *)

(** {1 Checkpoint images}

    A deep, engine-independent value snapshot of a simulation: all live
    bindings and resident array elements per processor, plus the transport
    state (channel sequence counters, in-flight messages, counters). Keys
    are sorted so two captures of identical state are structurally equal
    regardless of hash-table iteration order. *)

type proc_image = {
  pi_clock : float;
  pi_ints : (string * int) array;  (** live integer bindings, sorted *)
  pi_floats : (string * float) array;  (** live scalar bindings, sorted *)
  pi_elems : (string * (int * float) array) array;
      (** per array (sorted by name): every resident element as (global
          linear index, value), sorted — dense owned blocks, halo side
          tables and sparse reduction storage alike *)
  pi_staged : (int * payload) array;
      (** per event id: elements packed but not yet sent *)
}

type image = {
  im_ops : int;  (** global op count at capture *)
  im_procs : proc_image array;
  im_chans : (key * int * int) array;
      (** per channel: (key, next send seq, next recv seq), sorted *)
  im_inflight : (key * msg array) array;  (** undelivered messages *)
  im_counters : counters;  (** copy of the transport counters *)
}

val capture_transport :
  transport -> (key * int * int) array * (key * msg array) array * counters
(** Transport half of an image: sorted per-channel sequence counters,
    sorted in-flight queues, and a copy of the counters. *)

val counters_copy : counters -> counters

(** {1 Effects} *)

type _ Effect.t +=
  | ERecv : key -> msg Effect.t
  | EReduce : (Spmd.reduce_op * float) -> float Effect.t
  | EReduceArr : (string * Spmd.reduce_op) -> unit Effect.t

(** {1 Statistics} *)

type stats = {
  s_time : float;
  s_msgs : int;
  s_bytes : int;
  s_elems : int;
  s_proc_times : float array;
  s_retransmits : int;
  s_timeouts : int;
  s_dups_delivered : int;
  s_max_mailbox : int;
  s_crashes : int;  (** fail-stop crashes suffered (checkpoint runs only) *)
  s_recoveries : int;  (** successful restarts from a snapshot or scratch *)
  s_ckpts : int;  (** coordinated checkpoints taken on the final attempt *)
  s_ckpt_bytes : int;  (** encoded size of those checkpoints *)
  s_lost_work : float;
      (** simulated seconds of work discarded by rollbacks, summed over
          processors and recoveries *)
}

val stats_of : transport -> proc_times:float array -> stats

(** {1 Deadlock diagnostics} *)

type wait_reason =
  | WaitRecv of {
      wr_event : int;
      wr_src_vp : int list;
      wr_src_pid : int;
      wr_expected_seq : int;
      wr_queued : int;
    }
  | WaitReduce
  | WaitReduceArr of string

type proc_wait = { w_pid : int; w_clock : float; w_reason : wait_reason }

type diagnostic = {
  dg_waiting : proc_wait list;
  dg_cycle : int list;
  dg_undelivered : (int * int list * int list * int) list;
  dg_max_mailbox : int;
}

exception Deadlock of diagnostic

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string
val find_cycle : (int -> int list) -> int list -> int list

(** {1 Scheduler} *)

type hooks = {
  h_nprocs : int;
  h_tr : transport;
  h_clock : int -> float;
  h_set_clock : int -> float -> unit;
  h_body : int -> unit;
  h_reduce_arr : string -> Spmd.reduce_op -> int;
      (** element-wise combine of every processor's partial values, result
          written back everywhere; returns the element count (for pricing) *)
  h_phys_of_vp : int list -> int;
}

val sched_run : hooks -> unit
(** Drive every processor fiber to completion: deliver sequence-matched
    messages, execute collectives, and raise {!Deadlock} with a structured
    diagnosis when no progress is possible. *)

val sched_run_par : ?domains:int -> hooks -> unit
(** {!sched_run} with processor lanes sharded across [domains] OCaml
    domains. Bit-identical to the sequential scheduler in element values,
    clocks, transport counters, metrics and traces: lanes advance in
    parallel between communication points against a (channel, sequence)-
    keyed concurrent mailbox while logging every transport mutation, and a
    sequential replay pass then commits those mutations — mailbox
    evolution, duplicate discards, operation points, trace slices — in
    exactly the sequential interleaving. [domains <= 1], a single
    processor, or an installed crash schedule / checkpoint trigger /
    watchdog bound falls back to {!sched_run} unchanged.
    @raise Deadlock as {!sched_run}, with the identical diagnosis. *)
