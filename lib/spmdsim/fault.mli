(** Deterministic, seed-driven fault schedules for the SPMD simulator.

    A {!spec} describes an adversarial transport and machine: messages may
    be delayed, reordered in flight, delivered twice, or dropped (and
    retransmitted after a timeout, priced by the {!Machine.t} retry
    fields), and each processor computes under a fixed straggler clock-skew
    multiplier. Every decision is a pure hash of the seed and the message's
    stable identity (event id, sender, receiver, per-channel sequence
    number) — not of a mutable PRNG stream — so a schedule is reproducible
    from its seed regardless of scheduler interleaving, and two runs with
    the same seed make byte-identical decisions. *)

type spec = {
  seed : int;
  drop_prob : float;  (** probability a transmission attempt is dropped *)
  max_retries : int;  (** bound on consecutive drops of one message *)
  dup_prob : float;  (** probability a message is delivered twice *)
  delay_prob : float;  (** probability a message is delayed in flight *)
  delay_factor : float;
      (** maximum extra in-flight latency, as a multiple of the message's
          wire time *)
  reorder_prob : float;
      (** probability a message jumps ahead of earlier undelivered traffic
          on the same channel *)
  skew_max : float;
      (** straggler model: each processor's compute-time multiplier is
          drawn from [1, skew_max]; 1.0 disables skew *)
  crash_prob : float;
      (** fail-stop model: probability a processor crashes at each of its
          communication operations (sends, receive completions, collective
          completions). Recovering from a crash requires the coordinated
          checkpoint/restart controller ({!Checkpoint.run}); under plain
          [Exec.run] a scheduled crash surfaces as [Runtime.Crash]. *)
  crash_max : int;  (** bound on total crashes across the whole run *)
}

val none : spec
(** All probabilities zero, no skew: the idealized machine. *)

val default : seed:int -> spec
(** A moderately hostile schedule (drops, duplicates, delays, reordering
    and stragglers all enabled, crashes off) keyed to [seed]. *)

val validate : spec -> (unit, string) result
(** Reject malformed schedules before they produce nonsense plans:
    probabilities outside [0,1], negative seed/retries/crash budget,
    [skew_max < 1.0], or a positive drop probability with a zero retry
    bound (which would lose messages forever). The CLI calls this at parse
    time and maps [Error] to exit code 2. *)

type msg_plan = {
  mp_drops : int;  (** transmissions dropped before the one that arrives *)
  mp_dup : bool;  (** a second copy of the message is delivered *)
  mp_delay : float;  (** extra wire-time multiplier in [0, delay_factor) *)
  mp_reorder : bool;  (** message jumps the channel queue *)
}

val no_faults : msg_plan

val plan : spec -> event:int -> src:int -> dst:int -> seq:int -> msg_plan
(** The faults scheduled for one message, identified by its communication
    event, physical sender and receiver pids, and per-channel sequence
    number. Pure: same spec and identity always give the same plan. *)

val skew : spec -> pid:int -> float
(** Clock-skew multiplier (>= 1.0) for one processor. *)

val crash : spec -> pid:int -> op:int -> bool
(** Fail-stop crash decision for processor [pid] at its [op]-th
    communication operation. Pure, like {!plan}: a deterministic replay
    re-derives the identical schedule, and the recovery controller's
    consumed-crash set is what prevents an already-fired crash from firing
    again before the restore point. *)

val describe : spec -> string
(** One-line human-readable summary of the schedule parameters. *)
