(* Domain-pool helpers shared by the compiler and the simulator.

   The library deliberately does NOT clamp domain counts: correctness
   never depends on the physical core count (four domains on one core is
   merely slow), and the differential tests want to exercise real
   multi-domain schedules everywhere. The [dhpfc] CLI applies the
   user-facing clamp to [Domain.recommended_domain_count]. *)

let recommended () = Domain.recommended_domain_count ()

(** Clamp a requested domain count to [1 .. recommended ()]; the CLI
    policy for [-j] / [DHPF_DOMAINS]. *)
let clamp n = max 1 (min n (recommended ()))

let env_domains () =
  match Sys.getenv_opt "DHPF_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

(* session default: DHPF_DOMAINS when set, else 1 (= the sequential code
   path, bit-for-bit) *)
let current = Atomic.make 1
let () = match env_domains () with Some n -> Atomic.set current n | None -> ()
let domains () = Atomic.get current
let set_domains n = Atomic.set current (max 1 n)

(** [spawn_join n f] runs [f 0 .. f (n-1)] concurrently, [f 0] on the
    calling domain. Every spawned domain is joined even when some [f i]
    raises; the first exception (lowest index) is re-raised with its
    backtrace. *)
let spawn_join n f =
  if n <= 1 then f 0
  else begin
    let wrap i () =
      match f i with
      | () -> None
      | exception e -> Some (e, Printexc.get_raw_backtrace ())
    in
    let doms = Array.init (n - 1) (fun i -> Domain.spawn (wrap (i + 1))) in
    let r0 = wrap 0 () in
    let rs = Array.map Domain.join doms in
    let first =
      Array.fold_left
        (fun acc r -> match acc with Some _ -> acc | None -> r)
        r0 rs
    in
    match first with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(** [iter ~domains n f] applies [f] to [0 .. n-1] through an atomic
    worklist over [min domains n] domains. [f] must tolerate being called
    from any domain; iteration order is unspecified. *)
let iter ~domains n f =
  let d = max 1 (min domains n) in
  if d <= 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let next = Atomic.make 0 in
    spawn_join d (fun _ ->
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            f i;
            go ()
          end
        in
        go ())
  end

(** [map ~domains n f] is [iter] collecting results into an array. *)
let map ~domains n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    iter ~domains n (fun i -> out.(i) <- Some (f i));
    Array.map Option.get out
  end
