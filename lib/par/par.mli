(** Domain-pool helpers: session domain-count policy and small
    spawn/join + worklist combinators shared by the parallel compiler
    phases and the simulator's lane scheduler.

    The library never clamps requested counts to the physical core count
    — four domains on one core is merely slow, and the differential
    suites deliberately over-subscribe. The [dhpfc] CLI applies {!clamp}
    as its [-j] / [DHPF_DOMAINS] policy. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val clamp : int -> int
(** Clamp to [1 .. recommended ()]. *)

val env_domains : unit -> int option
(** Parse [DHPF_DOMAINS] (positive integer), if set and well-formed. *)

val domains : unit -> int
(** Session default domain count: [DHPF_DOMAINS] at startup, else 1. *)

val set_domains : int -> unit
(** Override the session default (floored at 1). *)

val spawn_join : int -> (int -> unit) -> unit
(** [spawn_join n f] runs [f 0 .. f (n-1)] concurrently ([f 0] on the
    calling domain), joins every domain even on failure, and re-raises
    the lowest-index exception with its backtrace. *)

val iter : domains:int -> int -> (int -> unit) -> unit
(** Atomic-worklist parallel iteration over [0 .. n-1] on
    [min domains n] domains; order unspecified. *)

val map : domains:int -> int -> (int -> 'a) -> 'a array
(** {!iter} collecting results. *)
