(** The [dhpfc serve] daemon: a persistent compilation service over a
    Unix-domain socket speaking {!Proto} ([dhpf-serve/1]).

    One process owns the socket. An acceptor domain admits connections
    into a bounded FIFO queue; past [max_queue] pending requests it
    replies with the structured ["overloaded"] response instead of
    letting clients hang. A fixed pool of worker domains (run through
    {!Par.spawn_join}) drains the queue; each request compiles with a
    private {!Dhpf.Phase} profiler, so concurrent compiles never
    interleave their phase accounting, while both cache layers — the
    in-memory {!Iset.Cache} tables and the on-disk {!Iset.Diskcache} —
    are shared, which is the whole point: the second compile of a
    program is served out of cache.

    Shutdown is cooperative: {!request_stop} (safe to call from a signal
    handler: one atomic store and one pipe write) stops admission, the
    acceptor unlinks the socket, and the workers finish every request
    already queued before exiting.

    Telemetry: every request carries a trace id ([rid] — the client's,
    or a generated [r-<n>]) threaded through the structured log
    ({!Obs.Log}), the flight recorder ({!Obs.Recorder}) and a
    [telemetry] section injected into the response (inside the
    [dhpf-report/2] compile report when there is one, top-level
    otherwise) with queue-wait and service latency plus per-request
    integer-set counter deltas (exact at one worker, approximate under
    concurrency — the counters are process-global). The [stats] op
    answers [dhpf-stats/2]: lifetime totals plus rolling-window gauges
    (RPS, p50/p95/p99 service and queue-wait latency, errors, overload
    rejections) and memo/disk hit ratios; [dump] returns the
    flight-recorder bundle and a metrics snapshot. All instrumentation
    only reads compiler/simulator state, so responses are byte-identical
    with telemetry on or off. *)

type config = {
  version : string;  (** reported by [ping] and in compile reports *)
  socket : string;  (** Unix-domain socket path *)
  workers : int;  (** worker domains (floored at 1) *)
  max_queue : int;  (** pending requests admitted before [overloaded] *)
  disk_cache : string option;
      (** [Some dir] points {!Iset.Diskcache} there; [None] leaves the
          process-wide setting (environment or CLI flag) alone *)
  lookup : string -> string option;
      (** resolve a request's [src] label to program text (the CLI passes
          its built-in benchmark table); the server never reads
          server-side files *)
  quiet : bool;  (** suppress the startup/shutdown notes on stderr *)
  log : string option;
      (** [Some path] opens the process-wide {!Obs.Log} JSONL sink there
          ([-] for stderr) and the server emits
          [serve.start]/[serve.admit]/[serve.dispatch]/[serve.complete]/
          [serve.error]/[serve.overloaded]/[serve.shutdown] events;
          [None] leaves the sink alone *)
  prom : string option;
      (** [Some path] rewrites a Prometheus text exposition of the
          metrics registry there (atomically, throttled to once a
          second) after requests and at shutdown *)
  flight_dump : string option;
      (** [Some path] writes the flight-recorder bundle there on a
          worker exception and at shutdown (so a SIGTERM leaves a
          postmortem) *)
  recorder_slots : int;
      (** flight-recorder ring capacity; [0] leaves the process-wide
          recorder alone *)
}

exception Bind_error of string
(** The socket could not be claimed: the path is a live server's socket,
    an existing non-socket file, or bind/listen failed. The CLI maps
    this to its own exit code. *)

type t

val launch : config -> t
(** Claim the socket (replacing a stale socket file left by a crashed
    server — liveness is probed with a connect), enable the metrics
    registry, point the disk cache, and start the acceptor and worker
    domains.
    @raise Bind_error when the socket cannot be claimed. *)

val socket_path : t -> string
val queue_depth : t -> int

val request_stop : t -> unit
(** Begin shutdown; returns immediately. Idempotent. *)

val wait : t -> unit
(** Block until the server has fully stopped (acceptor and workers
    joined, socket unlinked). *)

val stop : t -> unit
(** [request_stop] then [wait]. *)
