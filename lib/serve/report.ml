(* dhpf-report/2 (see report.mli). *)

let schema = "dhpf-report/2"

let compile_report ?telemetry ~version ~src ~domains ~phase ~events
    ~statements () =
  let phases =
    List.map
      (fun l ->
        Jsonx.Obj
          [
            ("phase", Jsonx.Str l);
            ("seconds", Jsonx.Num (Dhpf.Phase.total phase l));
          ])
      (Dhpf.Phase.labels phase)
  in
  let counters =
    List.map (fun (n, v) -> (n, Jsonx.int v)) (Iset.Stats.report ())
  in
  let diskcache =
    Jsonx.Obj
      [
        ("enabled", Jsonx.Bool (Iset.Diskcache.enabled ()));
        ( "dir",
          match Iset.Diskcache.dir () with
          | Some d -> Jsonx.Str d
          | None -> Jsonx.Null );
        ("max_bytes", Jsonx.int (Iset.Diskcache.max_bytes ()));
        ("bytes", Jsonx.int (Iset.Diskcache.bytes_used ()));
      ]
  in
  Jsonx.Obj
    ([
       ("schema", Jsonx.Str schema);
       ("version", Jsonx.Str version);
       ("src", Jsonx.Str src);
       ("domains", Jsonx.int domains);
       ("total_s", Jsonx.Num (Dhpf.Phase.elapsed phase));
       ("phases", Jsonx.List phases);
       ("events", Jsonx.int events);
       ("statements", Jsonx.int statements);
       ( "cache",
         Jsonx.Obj
           [
             ("enabled", Jsonx.Bool (Iset.Cache.enabled ()));
             ("counters", Jsonx.Obj counters);
           ] );
       ("diskcache", diskcache);
     ]
    @ match telemetry with Some t -> [ ("telemetry", t) ] | None -> [])
