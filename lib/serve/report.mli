(** The stable machine-readable compile report, schema [dhpf-report/2]:
    the JSON twin of [dhpfc compile --report], emitted by
    [--report-json] and embedded verbatim in serve compile responses.

    Shape:
    [{"schema":"dhpf-report/2","version":...,"src":...,"domains":n,
      "total_s":x,"phases":[{"phase":label,"seconds":x},...],
      "events":n,"statements":n,
      "cache":{"enabled":b,"counters":{name:int,...}},
      "diskcache":{"enabled":b,"dir":...,"max_bytes":n,"bytes":n},
      "telemetry":{...}?}]

    [/2] adds the optional [telemetry] object the daemon injects into
    serve responses (request id, queue-wait and service latency,
    integer-set/disk-cache counter deltas); a CLI [--report-json] never
    carries it, so local reports stay byte-stable run to run.

    Phase rows follow the profiler's label order; cache counters are the
    integer-set engine's global measurement window
    ({!Iset.Stats.report}), which the CLI resets at subcommand entry and
    a server never resets (a serve report shows process-lifetime
    counters — the interesting deltas are per-series in
    [Obs.Metrics]). *)

val schema : string
(** ["dhpf-report/2"]. *)

val compile_report :
  ?telemetry:Jsonx.t ->
  version:string ->
  src:string ->
  domains:int ->
  phase:Dhpf.Phase.t ->
  events:int ->
  statements:int ->
  unit ->
  Jsonx.t
