(** The stable machine-readable compile report, schema [dhpf-report/1]:
    the JSON twin of [dhpfc compile --report], emitted by
    [--report-json] and embedded verbatim in serve compile responses.

    Shape:
    [{"schema":"dhpf-report/1","version":...,"src":...,"domains":n,
      "total_s":x,"phases":[{"phase":label,"seconds":x},...],
      "events":n,"statements":n,
      "cache":{"enabled":b,"counters":{name:int,...}},
      "diskcache":{"enabled":b,"dir":...,"max_bytes":n,"bytes":n}}]

    Phase rows follow the profiler's label order; cache counters are the
    integer-set engine's global measurement window
    ({!Iset.Stats.report}), which the CLI resets at subcommand entry and
    a server never resets (a serve report shows process-lifetime
    counters — the interesting deltas are per-series in
    [Obs.Metrics]). *)

val schema : string
(** ["dhpf-report/1"]. *)

val compile_report :
  version:string ->
  src:string ->
  domains:int ->
  phase:Dhpf.Phase.t ->
  events:int ->
  statements:int ->
  unit ->
  Jsonx.t
