(** The [dhpf-serve/1] wire protocol: length-prefixed JSON over a
    Unix-domain socket, one request per connection.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON. The client connects, writes one request frame,
    reads one response frame, and the server closes the connection.

    Every request is an object with an ["op"] field; every response is an
    object with ["schema"] = ["dhpf-serve/1"] and a ["status"] field:

    - ["ok"] — the operation succeeded; payload fields depend on the op
      (e.g. ["report"] for compiles, ["run"] for runs).
    - ["error"] — the operation failed; ["code"] is one of ["protocol"],
      ["parse"], ["semantic"], ["unsupported"], ["runtime"] (mirroring
      the CLI exit codes), and ["message"] is human-readable.
    - ["overloaded"] — admission control rejected the request because the
      server's queue was at [--max-queue]; retry later. *)

val schema : string
(** ["dhpf-serve/1"]. *)

val max_frame : int
(** Largest accepted payload (16 MiB); larger frames are a protocol
    error. *)

exception Proto_error of string
(** A malformed frame: oversized length, short read mid-frame, or a
    payload that does not parse as JSON. *)

(** {1 Framing} *)

val write_frame : Unix.file_descr -> string -> unit

val read_frame : Unix.file_descr -> string option
(** [None] on a clean EOF before the first length byte.
    @raise Proto_error on a short or oversized frame. *)

val write_json : Unix.file_descr -> Jsonx.t -> unit

val read_json : Unix.file_descr -> Jsonx.t option
(** @raise Proto_error when the payload is not valid JSON. *)

(** {1 Requests} *)

type request =
  | Ping
  | Stats  (** metrics snapshot + queue depth + rolling-window gauges *)
  | Dump  (** flight-recorder bundle + metrics snapshot *)
  | Shutdown  (** acknowledge, then stop the server *)
  | Compile of {
      label : string;  (** builtin name, or a caller-chosen label *)
      source : string option;  (** inline mini-HPF text; overrides label *)
      opts : Dhpf.Gen.options;
    }
  | Run of {
      label : string;
      source : string option;
      opts : Dhpf.Gen.options;
      nprocs : int;
      params : (string * int) list;
      engine : string;
    }

val op_name : request -> string
(** The wire ["op"] string of a request (["ping"], ["compile"], ...). *)

val request_to_json : request -> Jsonx.t

val request_of_json : Jsonx.t -> (request, string) result
(** [Error] carries the reason (unknown op, missing field, bad type). *)

(** {1 Response builders} *)

val ok : (string * Jsonx.t) list -> Jsonx.t
val error : code:string -> string -> Jsonx.t
val overloaded : Jsonx.t
