(* Closed-loop load generator (see loadgen.mli). *)

type result = {
  lg_total : int;
  lg_ok : int;
  lg_error : int;
  lg_overloaded : int;
  lg_wall_s : float;
  lg_latencies : float array;
  lg_queue_waits : float array;
  lg_services : float array;
  lg_by_op : (string * float array) list;
}

type tally = {
  mutable t_ok : int;
  mutable t_error : int;
  mutable t_overloaded : int;
  mutable t_lat : (string * float) list;  (* (op, end-to-end seconds) *)
  mutable t_queue : float list;
  mutable t_service : float list;
}

(* the server-side split of a response: the telemetry section lives
   inside the compile report when there is one, top-level otherwise *)
let telemetry_of v =
  match Option.bind (Jsonx.get v "report") (fun r -> Jsonx.get r "telemetry") with
  | Some t -> Some t
  | None -> Jsonx.get v "telemetry"

(* one request, retrying overloaded answers with linear backoff; returns
   the final status and the overloaded count along the way *)
let issue ~socket ~rid req tally =
  let op = Proto.op_name req in
  let rec go attempt =
    let t0 = Unix.gettimeofday () in
    let status, telemetry =
      try
        let v = Client.request ~rid ~socket req in
        ( Option.value (Jsonx.get_str v "status") ~default:"error",
          telemetry_of v )
      with Client.Connect_error _ | Proto.Proto_error _ -> ("error", None)
    in
    let dt = Unix.gettimeofday () -. t0 in
    if status = "overloaded" && attempt < 200 then begin
      tally.t_overloaded <- tally.t_overloaded + 1;
      Unix.sleepf (0.001 *. float_of_int (min attempt 20));
      go (attempt + 1)
    end
    else begin
      tally.t_lat <- (op, dt) :: tally.t_lat;
      (match telemetry with
      | Some t ->
          (match Jsonx.get_num t "queue_wait_s" with
          | Some q -> tally.t_queue <- q :: tally.t_queue
          | None -> ());
          (match Jsonx.get_num t "service_s" with
          | Some s -> tally.t_service <- s :: tally.t_service
          | None -> ())
      | None -> ());
      if status = "ok" then tally.t_ok <- tally.t_ok + 1
      else tally.t_error <- tally.t_error + 1
    end
  in
  go 1

let sorted_array xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a

let run ~socket ~clients ~requests ~workload =
  let clients = max 1 clients and requests = max 0 requests in
  let tallies =
    Array.init clients (fun _ ->
        {
          t_ok = 0;
          t_error = 0;
          t_overloaded = 0;
          t_lat = [];
          t_queue = [];
          t_service = [];
        })
  in
  let t0 = Unix.gettimeofday () in
  Par.spawn_join clients (fun c ->
      let tally = tallies.(c) in
      for seq = 0 to requests - 1 do
        let rid = Printf.sprintf "lg-c%d-%d" c seq in
        issue ~socket ~rid (workload ~client:c ~seq) tally
      done);
  let wall = Unix.gettimeofday () -. t0 in
  let all_lat =
    List.concat_map (fun t -> t.t_lat) (Array.to_list tallies)
  in
  let ops =
    List.sort_uniq compare (List.map fst all_lat)
  in
  let by_op =
    List.map
      (fun op ->
        ( op,
          sorted_array
            (List.filter_map
               (fun (o, l) -> if o = op then Some l else None)
               all_lat) ))
      ops
  in
  let sum f = Array.fold_left (fun a t -> a + f t) 0 tallies in
  let gather f =
    sorted_array (List.concat_map f (Array.to_list tallies))
  in
  {
    lg_total = clients * requests;
    lg_ok = sum (fun t -> t.t_ok);
    lg_error = sum (fun t -> t.t_error);
    lg_overloaded = sum (fun t -> t.t_overloaded);
    lg_wall_s = wall;
    lg_latencies = sorted_array (List.map snd all_lat);
    lg_queue_waits = gather (fun t -> t.t_queue);
    lg_services = gather (fun t -> t.t_service);
    lg_by_op = by_op;
  }

let percentile q a =
  let n = Array.length a in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
