(* Closed-loop load generator (see loadgen.mli). *)

type result = {
  lg_total : int;
  lg_ok : int;
  lg_error : int;
  lg_overloaded : int;
  lg_wall_s : float;
  lg_latencies : float array;
}

type tally = {
  mutable t_ok : int;
  mutable t_error : int;
  mutable t_overloaded : int;
  mutable t_lat : float list;
}

(* one request, retrying overloaded answers with linear backoff; returns
   the final status and the overloaded count along the way *)
let issue ~socket req tally =
  let rec go attempt =
    let t0 = Unix.gettimeofday () in
    let status =
      try
        let v = Client.request ~socket req in
        Option.value (Jsonx.get_str v "status") ~default:"error"
      with Client.Connect_error _ | Proto.Proto_error _ -> "error"
    in
    let dt = Unix.gettimeofday () -. t0 in
    if status = "overloaded" && attempt < 200 then begin
      tally.t_overloaded <- tally.t_overloaded + 1;
      Unix.sleepf (0.001 *. float_of_int (min attempt 20));
      go (attempt + 1)
    end
    else begin
      tally.t_lat <- dt :: tally.t_lat;
      if status = "ok" then tally.t_ok <- tally.t_ok + 1
      else tally.t_error <- tally.t_error + 1
    end
  in
  go 1

let run ~socket ~clients ~requests ~workload =
  let clients = max 1 clients and requests = max 0 requests in
  let tallies =
    Array.init clients (fun _ ->
        { t_ok = 0; t_error = 0; t_overloaded = 0; t_lat = [] })
  in
  let t0 = Unix.gettimeofday () in
  Par.spawn_join clients (fun c ->
      let tally = tallies.(c) in
      for seq = 0 to requests - 1 do
        issue ~socket (workload ~client:c ~seq) tally
      done);
  let wall = Unix.gettimeofday () -. t0 in
  let lats =
    Array.of_list (List.concat_map (fun t -> t.t_lat) (Array.to_list tallies))
  in
  Array.sort compare lats;
  let sum f = Array.fold_left (fun a t -> a + f t) 0 tallies in
  {
    lg_total = clients * requests;
    lg_ok = sum (fun t -> t.t_ok);
    lg_error = sum (fun t -> t.t_error);
    lg_overloaded = sum (fun t -> t.t_overloaded);
    lg_wall_s = wall;
    lg_latencies = lats;
  }

let percentile q a =
  let n = Array.length a in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
