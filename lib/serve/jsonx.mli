(** Minimal dependency-free JSON: the value type, a strict parser and a
    stable printer, shared by the serve protocol, the compile report and
    the traffic generator.

    The printer escapes every control character and emits integral
    numbers without a fractional part, so equal values print to equal
    bytes (object field order is preserved, not sorted — builders emit
    fields in schema order). The parser accepts standard JSON (UTF-8
    passthrough, [\uXXXX] escapes including surrogate pairs) and rejects
    trailing garbage. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Error of string

val to_string : t -> string
(** Non-finite numbers print as [null] (they never appear in the schemas
    this repo emits). *)

val of_string : string -> t
(** @raise Error on any malformation, including trailing garbage. *)

(** {1 Builders and accessors} *)

val int : int -> t

val get : t -> string -> t option
(** Field of an [Obj]; [None] on anything else or when absent. *)

val get_str : t -> string -> string option
val get_int : t -> string -> int option
val get_bool : t -> string -> bool option
val get_num : t -> string -> float option
val get_list : t -> string -> t list option
