(* Client side of dhpf-serve/1 (see client.mli). *)

exception Connect_error of string

(* without this the EPIPE handling below is moot: the default SIGPIPE
   disposition kills the process before write ever returns the error *)
let ignore_sigpipe =
  lazy (Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let connect socket =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX socket);
    fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with _ -> ());
    raise
      (Connect_error
         (Printf.sprintf "%s: %s" socket (Unix.error_message e)))

let request_json ~socket payload =
  let fd = connect socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      (* an overloaded server answers and closes without reading the
         request, so the write can hit a closed peer (EPIPE) while a
         perfectly good response sits in the socket buffer — push on to
         the read and let it decide *)
      (try Proto.write_json fd payload
       with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
      match Proto.read_json fd with
      | Some v -> v
      | None ->
          raise (Proto.Proto_error "server closed without a response"))

let request ?rid ~socket req =
  let payload = Proto.request_to_json req in
  let payload =
    match (rid, payload) with
    | Some r, Jsonx.Obj fields ->
        Jsonx.Obj (fields @ [ ("rid", Jsonx.Str r) ])
    | _ -> payload
  in
  request_json ~socket payload

let wait_ready ?(attempts = 100) ?(delay_s = 0.05) ~socket () =
  let rec go n =
    if n <= 0 then false
    else
      let up =
        try
          let v = request ~socket Proto.Ping in
          Jsonx.get_str v "status" = Some "ok"
        with Connect_error _ | Proto.Proto_error _ -> false
      in
      if up then true
      else begin
        Unix.sleepf delay_s;
        go (n - 1)
      end
  in
  go attempts
