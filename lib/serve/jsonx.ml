(* Minimal JSON (see jsonx.mli). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* -- printing ------------------------------------------------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_num b x =
  if not (Float.is_finite x) then Buffer.add_string b "null"
  else if Float.is_integer x && Float.abs x < 9.007199254740992e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.17g" x)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num x -> add_num b x
  | Str s -> escape b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          add b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          add b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

(* -- parsing -------------------------------------------------------- *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let next c =
  match peek c with
  | Some ch ->
      c.pos <- c.pos + 1;
      ch
  | None -> err "unexpected end of input"

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        c.pos <- c.pos + 1;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  let got = next c in
  if got <> ch then err "expected %C at offset %d, got %C" ch (c.pos - 1) got

let literal c word v =
  String.iter (fun ch -> expect c ch) word;
  v

let hex4 c =
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> err "bad \\u escape"
  in
  let a = digit (next c) in
  let b = digit (next c) in
  let d = digit (next c) in
  let e = digit (next c) in
  (a lsl 12) lor (b lsl 8) lor (d lsl 4) lor e

let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match next c with
    | '"' -> Buffer.contents b
    | '\\' ->
        (match next c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            let cp = hex4 c in
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              (* high surrogate: a low surrogate must follow *)
              expect c '\\';
              expect c 'u';
              let lo = hex4 c in
              if lo < 0xDC00 || lo > 0xDFFF then err "unpaired surrogate";
              add_utf8 b
                (0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00)))
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then err "unpaired surrogate"
            else add_utf8 b cp
        | ch -> err "bad escape \\%C" ch);
        go ()
    | ch when Char.code ch < 0x20 -> err "raw control character in string"
    | ch ->
        Buffer.add_char b ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when num_char ch -> true | _ -> false do
    c.pos <- c.pos + 1
  done;
  let tok = String.sub c.s start (c.pos - start) in
  match float_of_string_opt tok with
  | Some x -> Num x
  | None -> err "bad number %S at offset %d" tok start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> err "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match next c with
          | ',' -> fields ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | ch -> err "expected ',' or '}', got %C" ch
        in
        fields []
      end
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match next c with
          | ',' -> elems (v :: acc)
          | ']' -> List (List.rev (v :: acc))
          | ch -> err "expected ',' or ']', got %C" ch
        in
        elems []
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then err "trailing garbage at offset %d" c.pos;
  v

(* -- builders and accessors ----------------------------------------- *)

let int n = Num (float_of_int n)

let get v k =
  match v with Obj fields -> List.assoc_opt k fields | _ -> None

let get_str v k = match get v k with Some (Str s) -> Some s | _ -> None

let get_int v k =
  match get v k with
  | Some (Num x) when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let get_bool v k = match get v k with Some (Bool b) -> Some b | _ -> None
let get_num v k = match get v k with Some (Num x) -> Some x | _ -> None
let get_list v k = match get v k with Some (List xs) -> Some xs | _ -> None
