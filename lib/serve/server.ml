(* The serve daemon (see server.mli).

   Threading model: one acceptor domain blocked in select() on the
   listening socket plus a self-pipe (so request_stop can wake it with a
   single write), and [workers] worker domains blocked on a
   mutex/condition-protected FIFO of accepted connections. Admission
   control lives in the acceptor: past [max_queue] queued connections it
   answers [overloaded] itself and closes, so a saturated server keeps
   giving structured answers instead of stacking clients up in the
   listen backlog.

   Telemetry model: every admitted connection is stamped at admission,
   so the worker that dequeues it can split queue-wait from service
   time. Each request gets a trace id (the client's "rid" field, or a
   generated "r-<n>"), which threads through the structured log
   (Obs.Log), the flight recorder (Obs.Recorder) and the telemetry
   section injected into every response. Completed requests also land in
   a small lock-free ring of window samples from which the stats op
   derives rolling-window gauges (RPS, latency percentiles). All of it
   only ever *reads* compiler/simulator state, so responses stay
   byte-identical with telemetry on or off. *)

type config = {
  version : string;
  socket : string;
  workers : int;
  max_queue : int;
  disk_cache : string option;
  lookup : string -> string option;
  quiet : bool;
  log : string option;
  prom : string option;
  flight_dump : string option;
  recorder_slots : int;
}

exception Bind_error of string

(* internal: a [src] label the lookup table doesn't know *)
exception Unknown_source of string

(* one completed (or rejected) request in the rolling stats window *)
type wsample = {
  w_done : float;  (* completion time, unix seconds *)
  w_op : string;
  w_status : string;
  w_queue_s : float;
  w_service_s : float;
}

let window_slots = 512
let window_seconds = 60.0

type state = {
  cfg : config;
  listen : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  mu : Mutex.t;
  cond : Condition.t;
  q : (Unix.file_descr * float) Queue.t;  (* (connection, admitted-at) *)
  depth : int Atomic.t;  (* = Queue.length q, readable without the lock *)
  served : int Atomic.t;
  started : float;
  rid_ctr : int Atomic.t;
  rejected : int Atomic.t;
  window : wsample option array;  (* ring, lock-free like Obs.Recorder *)
  wpos : int Atomic.t;
  prom_last : float Atomic.t;
}

type t = {
  st : state;
  acceptor : unit Domain.t;
  pool : unit Domain.t;
  joined : bool Atomic.t;
}

let note st fmt =
  if st.cfg.quiet then Format.ifprintf Format.err_formatter fmt
  else Format.eprintf fmt

(* -- metrics -------------------------------------------------------- *)

let m_request op status =
  Obs.Metrics.incr
    (Obs.Metrics.counter
       ~labels:[ ("op", op); ("status", status) ]
       "serve/requests")

let m_depth st =
  Obs.Metrics.set
    (Obs.Metrics.gauge "serve/queue_depth")
    (float_of_int (Atomic.get st.depth))

let m_latency op seconds =
  Obs.Metrics.observe
    (Obs.Metrics.histogram ~labels:[ ("op", op) ] "serve/latency_s")
    seconds

let m_queue_wait op seconds =
  Obs.Metrics.observe
    (Obs.Metrics.histogram ~labels:[ ("op", op) ] "serve/queue_wait_s")
    seconds

(* -- rolling window -------------------------------------------------- *)

let window_record st ~op ~status ~queue_s ~service_s =
  let i = Atomic.fetch_and_add st.wpos 1 in
  st.window.(i mod window_slots) <-
    Some
      {
        w_done = Unix.gettimeofday ();
        w_op = op;
        w_status = status;
        w_queue_s = queue_s;
        w_service_s = service_s;
      }

(* maybe-rewrite the Prometheus exposition file, at most once a second *)
let prom_tick st =
  match st.cfg.prom with
  | None -> ()
  | Some path ->
      let now = Unix.gettimeofday () in
      let last = Atomic.get st.prom_last in
      if
        now -. last >= 1.0
        && Atomic.compare_and_set st.prom_last last now
      then try Obs.Metrics.write_prometheus path with Sys_error _ -> ()

let flight_flush st =
  match st.cfg.flight_dump with
  | Some path when Obs.Recorder.enabled () -> (
      try Obs.Recorder.write path with Sys_error _ -> ())
  | _ -> ()

(* -- request handling ----------------------------------------------- *)

(* mirror the CLI's handle_errors triage so a serve client can script
   against the same failure classes as a batch caller *)
let classify = function
  | Unknown_source l ->
      ("parse",
       Printf.sprintf
         "unknown program %S (not a built-in; pass inline \"source\")" l)
  | Sys_error msg -> ("parse", msg)
  | Hpf.Parser.Error (msg, line) ->
      ("parse", Printf.sprintf "parse error, line %d: %s" line msg)
  | Hpf.Lexer.Error (msg, line) ->
      ("parse", Printf.sprintf "lexical error, line %d: %s" line msg)
  | Iset.Parse.Error msg | Iset.Calc.Error msg -> ("parse", msg)
  | Hpf.Sema.Error msg -> ("semantic", msg)
  | Dhpf.Gen.Unsupported msg
  | Dhpf.Layout.Unsupported msg
  | Iset.Codegen.Unsupported msg ->
      ("unsupported", msg)
  | Spmdsim.Exec.Error msg | Spmdsim.Serial.Error msg -> ("runtime", msg)
  | Spmdsim.Exec.Deadlock d ->
      ("runtime", Format.asprintf "%a" Spmdsim.Exec.pp_diagnostic d)
  | Spmdsim.Predict.Unpredictable msg -> ("unsupported", msg)
  | e -> ("runtime", Printexc.to_string e)

let source_text st ~label ~source =
  match source with
  | Some s -> s
  | None -> (
      match st.cfg.lookup label with
      | Some s -> s
      | None -> raise (Unknown_source label))

(* compile with a per-request profiler: Phase.global would interleave
   concurrent requests' timings *)
let do_compile st ~label ~source ~opts =
  let text = source_text st ~label ~source in
  let phase = Dhpf.Phase.create () in
  let chk =
    Dhpf.Phase.time phase "parse and semantic analysis" (fun () ->
        Hpf.Sema.analyze_source text)
  in
  let compiled = Dhpf.Gen.compile ~opts ~phase chk in
  let report =
    Report.compile_report ~version:st.cfg.version ~src:label
      ~domains:(Par.domains ()) ~phase
      ~events:(List.length compiled.Dhpf.Gen.cevents)
      ~statements:(List.length compiled.Dhpf.Gen.cprog.Dhpf.Spmd.main)
      ()
  in
  (chk, compiled, report)

let handle_compile st ~label ~source ~opts =
  let _, compiled, report = do_compile st ~label ~source ~opts in
  (* the compiled node program rides along: it is the artifact a
     compilation service exists to produce, and returning it lets
     clients assert warm answers are byte-identical to cold ones *)
  Proto.ok
    [
      ("report", report);
      ( "spmd",
        Jsonx.Str (Dhpf.Spmd.program_to_string compiled.Dhpf.Gen.cprog) );
    ]

let handle_run st ~label ~source ~opts ~nprocs ~params ~engine =
  match Spmdsim.Exec.engine_of_string engine with
  | None ->
      Proto.error ~code:"parse"
        (Printf.sprintf "unknown engine %S; valid engines: %s" engine
           (String.concat ", " Spmdsim.Exec.engine_names))
  | Some engine ->
      let chk, compiled, report = do_compile st ~label ~source ~opts in
      let serial = Spmdsim.Serial.run ~params chk in
      let sim =
        Spmdsim.Exec.make ~engine ~nprocs ~params compiled.Dhpf.Gen.cprog
      in
      let stats = Spmdsim.Exec.run sim in
      Proto.ok
        [
          ("report", report);
          ( "run",
            Jsonx.Obj
              [
                ("nprocs", Jsonx.int (Spmdsim.Exec.nprocs sim));
                ("engine", Jsonx.Str (Spmdsim.Exec.engine_to_string engine));
                ("serial_s", Jsonx.Num serial.Spmdsim.Serial.r_time);
                ("flops", Jsonx.int serial.Spmdsim.Serial.r_flops);
                ("spmd_s", Jsonx.Num stats.Spmdsim.Exec.s_time);
                ("msgs", Jsonx.int stats.Spmdsim.Exec.s_msgs);
                ("bytes", Jsonx.int stats.Spmdsim.Exec.s_bytes);
                ( "speedup",
                  Jsonx.Num
                    (serial.Spmdsim.Serial.r_time
                    /. stats.Spmdsim.Exec.s_time) );
              ] );
        ]

(* -- stats op (dhpf-stats/2) ----------------------------------------- *)

(* nearest-rank percentile over a sorted array *)
let pctl q a =
  let n = Array.length a in
  if n = 0 then 0.0
  else a.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))

let cache_ratios () =
  let r = Iset.Stats.report () in
  let g n = Option.value (List.assoc_opt n r) ~default:0 in
  let memo_l =
    g "sat lookups" + g "simplify lookups" + g "gist lookups"
    + g "implies lookups" + g "subset lookups"
  and memo_h =
    g "sat hits" + g "simplify hits" + g "gist hits" + g "implies hits"
    + g "subset hits"
  in
  let ratio h l = if l = 0 then 0.0 else float_of_int h /. float_of_int l in
  Jsonx.Obj
    [
      ("memo_hit", Jsonx.Num (ratio memo_h memo_l));
      ("disk_hit", Jsonx.Num (ratio (g "disk hits") (g "disk lookups")));
    ]

let window_stats st =
  let now = Unix.gettimeofday () in
  let live =
    Array.to_list st.window
    |> List.filter_map (fun s ->
           match s with
           | Some w when now -. w.w_done <= window_seconds -> Some w
           | _ -> None)
  in
  let handled, rejected =
    List.partition (fun w -> w.w_status <> "overloaded") live
  in
  let errors =
    List.length (List.filter (fun w -> w.w_status <> "ok") handled)
  in
  let sorted f =
    let a = Array.of_list (List.map f handled) in
    Array.sort compare a;
    a
  in
  let services = sorted (fun w -> w.w_service_s) in
  let queues = sorted (fun w -> w.w_queue_s) in
  (* the rate denominator: a daemon younger than the window has only
     been collecting for its uptime *)
  let horizon = Float.max 0.001 (Float.min window_seconds (now -. st.started)) in
  Jsonx.Obj
    [
      ("seconds", Jsonx.Num window_seconds);
      ("samples", Jsonx.int (List.length handled));
      ("rps", Jsonx.Num (float_of_int (List.length handled) /. horizon));
      ("service_p50_s", Jsonx.Num (pctl 0.50 services));
      ("service_p95_s", Jsonx.Num (pctl 0.95 services));
      ("service_p99_s", Jsonx.Num (pctl 0.99 services));
      ("queue_p50_s", Jsonx.Num (pctl 0.50 queues));
      ("queue_p95_s", Jsonx.Num (pctl 0.95 queues));
      ("queue_p99_s", Jsonx.Num (pctl 0.99 queues));
      ("errors", Jsonx.int errors);
      ("overloaded", Jsonx.int (List.length rejected));
    ]

let handle_stats st =
  let counters =
    List.map (fun (n, v) -> (n, Jsonx.int v)) (Iset.Stats.report ())
  in
  (* the registry export is already stable JSON; round-trip it through
     the parser to embed it structurally *)
  let metrics = Jsonx.of_string (Obs.Metrics.to_json ()) in
  Proto.ok
    [
      ("stats_schema", Jsonx.Str "dhpf-stats/2");
      ("version", Jsonx.Str st.cfg.version);
      ("uptime_s", Jsonx.Num (Unix.gettimeofday () -. st.started));
      ("queue_depth", Jsonx.int (Atomic.get st.depth));
      ("workers", Jsonx.int st.cfg.workers);
      ("served", Jsonx.int (Atomic.get st.served));
      ("rejected", Jsonx.int (Atomic.get st.rejected));
      ("window", window_stats st);
      ("ratios", cache_ratios ());
      ("iset", Jsonx.Obj counters);
      ( "diskcache",
        Jsonx.Obj
          [
            ("enabled", Jsonx.Bool (Iset.Diskcache.enabled ()));
            ("bytes", Jsonx.int (Iset.Diskcache.bytes_used ()));
          ] );
      ("metrics", metrics);
    ]

let handle_dump () =
  Proto.ok
    [
      ("flight", Jsonx.of_string (Obs.Recorder.to_json ()));
      ("metrics", Jsonx.of_string (Obs.Metrics.to_json ()));
    ]

let wake st = try ignore (Unix.write st.wake_w (Bytes.make 1 '!') 0 1) with _ -> ()

let begin_stop st =
  if not (Atomic.exchange st.stopping true) then wake st

let dispatch st = function
  | Proto.Ping ->
      Proto.ok
        [
          ("version", Jsonx.Str st.cfg.version);
          ("workers", Jsonx.int st.cfg.workers);
        ]
  | Proto.Stats -> handle_stats st
  | Proto.Dump -> handle_dump ()
  | Proto.Shutdown ->
      begin_stop st;
      Proto.ok [ ("stopping", Jsonx.Bool true) ]
  | Proto.Compile { label; source; opts } ->
      handle_compile st ~label ~source ~opts
  | Proto.Run { label; source; opts; nprocs; params; engine } ->
      handle_run st ~label ~source ~opts ~nprocs ~params ~engine

(* the per-request counter attribution: the iset engine's counters are
   process-global, so under concurrent workers a delta can include a
   neighbour's activity — exact at workers=1, approximate above. The
   per-series truth is in Obs.Metrics. *)
let iset_delta before =
  let d =
    List.filter_map
      (fun (n, v1) ->
        match List.assoc_opt n before with
        | Some v0 when v1 - v0 <> 0 -> Some (n, Jsonx.int (v1 - v0))
        | None when v1 <> 0 -> Some (n, Jsonx.int v1)
        | _ -> None)
      (Iset.Stats.report ())
  in
  if d = [] then [] else [ ("iset", Jsonx.Obj d) ]

(* every response carries its trace id; the telemetry object rides
   inside the compile report when there is one (dhpf-report/2), at the
   top level otherwise *)
let inject_telemetry r ~rid ~telemetry =
  match r with
  | Jsonx.Obj fields ->
      let has_report = ref false in
      let fields =
        List.map
          (fun (k, v) ->
            match (k, v) with
            | "report", Jsonx.Obj rf ->
                has_report := true;
                (k, Jsonx.Obj (rf @ [ ("telemetry", telemetry) ]))
            | _ -> (k, v))
          fields
      in
      Jsonx.Obj
        (fields
        @ ("rid", Jsonx.Str rid)
          :: (if !has_report then [] else [ ("telemetry", telemetry) ]))
  | r -> r

let handle st fd ~admitted =
  let t0 = Unix.gettimeofday () in
  let queue_s = Float.max 0.0 (t0 -. admitted) in
  let op = ref "invalid" in
  let resp =
    match Proto.read_json fd with
    | None -> None (* connected, then closed without sending a request *)
    | exception Proto.Proto_error e ->
        Some (Proto.error ~code:"protocol" e, "")
    | Some v ->
        let rid =
          match Jsonx.get_str v "rid" with
          | Some r -> r
          | None ->
              Printf.sprintf "r-%d" (Atomic.fetch_and_add st.rid_ctr 1)
        in
        let r =
          match Proto.request_of_json v with
          | Error e -> Proto.error ~code:"protocol" e
          | Ok req ->
              op := Proto.op_name req;
              if Obs.Log.enabled Obs.Log.Debug then
                Obs.Log.debug ~rid
                  ~fields:(fun () ->
                    [
                      ("op", Obs.Str !op);
                      ("queue_wait_s", Obs.Float queue_s);
                    ])
                  "serve.dispatch";
              let iset0 = Iset.Stats.report () in
              let resp =
                Obs.span ~cat:"serve" ("serve/" ^ !op) (fun () ->
                    try dispatch st req
                    with e ->
                      let code, msg = classify e in
                      Obs.Log.error ~rid
                        ~fields:(fun () ->
                          [
                            ("op", Obs.Str !op);
                            ("code", Obs.Str code);
                            ("message", Obs.Str msg);
                          ])
                        "serve.error";
                      (* postmortem: freeze the flight ring at the
                         failure *)
                      flight_flush st;
                      Proto.error ~code msg)
              in
              let telemetry =
                Jsonx.Obj
                  ([
                     ("rid", Jsonx.Str rid);
                     ("queue_wait_s", Jsonx.Num queue_s);
                     ( "service_s",
                       Jsonx.Num (Unix.gettimeofday () -. t0) );
                   ]
                  @ iset_delta iset0)
              in
              inject_telemetry resp ~rid ~telemetry
        in
        Some (r, rid)
  in
  (match resp with
  | None -> ()
  | Some (r, rid) ->
      (try Proto.write_json fd r with _ -> ());
      Atomic.incr st.served;
      let status =
        Option.value (Jsonx.get_str r "status") ~default:"error"
      in
      let status =
        match Jsonx.get_str r "code" with
        | Some "protocol" -> "protocol"
        | _ -> status
      in
      let service_s = Unix.gettimeofday () -. t0 in
      m_request !op status;
      m_latency !op service_s;
      m_queue_wait !op queue_s;
      window_record st ~op:!op ~status ~queue_s ~service_s;
      if Obs.Recorder.enabled () then
        Obs.Recorder.record ~kind:"request" ~rid
          ~fields:
            [
              ("op", Obs.Str !op);
              ("status", Obs.Str status);
              ("queue_wait_s", Obs.Float queue_s);
              ("service_s", Obs.Float service_s);
            ]
          "serve.request";
      if Obs.Log.enabled Obs.Log.Info then
        Obs.Log.info ~rid
          ~fields:(fun () ->
            [
              ("op", Obs.Str !op);
              ("status", Obs.Str status);
              ("queue_wait_s", Obs.Float queue_s);
              ("service_s", Obs.Float service_s);
            ])
          "serve.complete";
      prom_tick st);
  try Unix.close fd with _ -> ()

(* -- worker pool ---------------------------------------------------- *)

let rec worker st =
  Mutex.lock st.mu;
  while Queue.is_empty st.q && not (Atomic.get st.stopping) do
    Condition.wait st.cond st.mu
  done;
  if Queue.is_empty st.q then Mutex.unlock st.mu
    (* stopping, queue drained: exit *)
  else begin
    let fd, admitted = Queue.pop st.q in
    ignore (Atomic.fetch_and_add st.depth (-1));
    Mutex.unlock st.mu;
    m_depth st;
    handle st fd ~admitted;
    worker st
  end

(* -- acceptor ------------------------------------------------------- *)

let admit st fd =
  if Atomic.get st.depth >= st.cfg.max_queue then begin
    (* structured back-pressure: answer here in the acceptor, never
       blocking a worker on an over-admitted connection *)
    (try Proto.write_json fd Proto.overloaded with _ -> ());
    (try Unix.close fd with _ -> ());
    Atomic.incr st.rejected;
    m_request "admit" "overloaded";
    window_record st ~op:"admit" ~status:"overloaded" ~queue_s:0.0
      ~service_s:0.0;
    if Obs.Log.enabled Obs.Log.Warn then
      Obs.Log.warn
        ~fields:(fun () ->
          [
            ("queue_depth", Obs.Int (Atomic.get st.depth));
            ("max_queue", Obs.Int st.cfg.max_queue);
          ])
        "serve.overloaded"
  end
  else begin
    let admitted = Unix.gettimeofday () in
    Mutex.lock st.mu;
    Queue.push (fd, admitted) st.q;
    ignore (Atomic.fetch_and_add st.depth 1);
    Condition.signal st.cond;
    Mutex.unlock st.mu;
    m_depth st;
    if Obs.Log.enabled Obs.Log.Debug then
      Obs.Log.debug
        ~fields:(fun () ->
          [ ("queue_depth", Obs.Int (Atomic.get st.depth)) ])
        "serve.admit"
  end

let drain_wake st =
  let b = Bytes.create 32 in
  try ignore (Unix.read st.wake_r b 0 32) with _ -> ()

let rec accept_loop st =
  if not (Atomic.get st.stopping) then begin
    (match Unix.select [ st.listen; st.wake_r ] [] [] (-1.0) with
    | rs, _, _ ->
        if List.mem st.wake_r rs then drain_wake st;
        if (not (Atomic.get st.stopping)) && List.mem st.listen rs then begin
          match Unix.accept st.listen with
          | fd, _ -> admit st fd
          | exception
              Unix.Unix_error
                ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                  | Unix.ECONNABORTED ),
                  _,
                  _ ) ->
              ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    accept_loop st
  end

let acceptor_main st =
  accept_loop st;
  (try Unix.close st.listen with _ -> ());
  (try Unix.unlink st.cfg.socket with _ -> ());
  (* wake every worker so they notice [stopping] and drain out *)
  Mutex.lock st.mu;
  Condition.broadcast st.cond;
  Mutex.unlock st.mu

(* -- socket claim --------------------------------------------------- *)

let bind_error fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

(* a socket file may be a live server or the droppings of a crashed one;
   only a connect can tell them apart *)
let claim_socket path =
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        try
          Unix.connect probe (Unix.ADDR_UNIX path);
          true
        with Unix.Unix_error _ -> false
      in
      (try Unix.close probe with _ -> ());
      if live then bind_error "%s: a server is already listening" path;
      (try Unix.unlink path with _ -> ())
  | _ -> bind_error "%s: exists and is not a socket" path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with _ -> ());
    bind_error "%s: %s" path (Unix.error_message e)

(* -- lifecycle ------------------------------------------------------ *)

let launch cfg =
  let cfg = { cfg with workers = max 1 cfg.workers } in
  (* a client that hangs up mid-response must cost the daemon an EPIPE,
     not a fatal SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Obs.Metrics.enable ();
  (match cfg.log with Some path -> Obs.Log.set_out (Some path) | None -> ());
  if cfg.recorder_slots > 0 then
    Obs.Recorder.start ~capacity:cfg.recorder_slots ();
  (match cfg.disk_cache with
  | Some dir -> Iset.Diskcache.set_dir (Some dir)
  | None -> ());
  let listen = claim_socket cfg.socket in
  let wake_r, wake_w = Unix.pipe () in
  let st =
    {
      cfg;
      listen;
      wake_r;
      wake_w;
      stopping = Atomic.make false;
      mu = Mutex.create ();
      cond = Condition.create ();
      q = Queue.create ();
      depth = Atomic.make 0;
      served = Atomic.make 0;
      started = Unix.gettimeofday ();
      rid_ctr = Atomic.make 0;
      rejected = Atomic.make 0;
      window = Array.make window_slots None;
      wpos = Atomic.make 0;
      prom_last = Atomic.make 0.0;
    }
  in
  note st "serve: listening on %s (%d worker%s, queue %d, disk cache %s)@."
    cfg.socket cfg.workers
    (if cfg.workers = 1 then "" else "s")
    cfg.max_queue
    (match Iset.Diskcache.dir () with
    | Some d when Iset.Diskcache.enabled () -> d
    | _ -> "off");
  if Obs.Log.enabled Obs.Log.Info then
    Obs.Log.info
      ~fields:(fun () ->
        [
          ("socket", Obs.Str cfg.socket);
          ("workers", Obs.Int cfg.workers);
          ("max_queue", Obs.Int cfg.max_queue);
          ("version", Obs.Str cfg.version);
        ])
      "serve.start";
  let acceptor = Domain.spawn (fun () -> acceptor_main st) in
  let pool =
    Domain.spawn (fun () -> Par.spawn_join cfg.workers (fun _ -> worker st))
  in
  { st; acceptor; pool; joined = Atomic.make false }

let socket_path t = t.st.cfg.socket
let queue_depth t = Atomic.get t.st.depth
let request_stop t = begin_stop t.st

let wait t =
  (* Poll instead of parking straight in Domain.join: OCaml signal
     handlers run on the main domain at safe points, and a main domain
     blocked in Domain.join never reaches one — a SIGTERM would be
     recorded but its handler (the caller's request_stop) never run.
     Sleeping in short slices reaches a safe point every iteration. *)
  while not (Atomic.get t.st.stopping) do
    Unix.sleepf 0.05
  done;
  if not (Atomic.exchange t.joined true) then begin
    Domain.join t.acceptor;
    Domain.join t.pool;
    (try Unix.close t.st.wake_r with _ -> ());
    (try Unix.close t.st.wake_w with _ -> ());
    if Obs.Log.enabled Obs.Log.Info then
      Obs.Log.info
        ~fields:(fun () ->
          [
            ("served", Obs.Int (Atomic.get t.st.served));
            ("rejected", Obs.Int (Atomic.get t.st.rejected));
          ])
        "serve.shutdown";
    (* the postmortem bundle and a final scrape survive the shutdown *)
    flight_flush t.st;
    (match t.st.cfg.prom with
    | Some path -> (
        try Obs.Metrics.write_prometheus path with Sys_error _ -> ())
    | None -> ());
    (match t.st.cfg.log with Some _ -> Obs.Log.close () | None -> ());
    note t.st "serve: stopped after %d request%s@."
      (Atomic.get t.st.served)
      (if Atomic.get t.st.served = 1 then "" else "s")
  end

let stop t =
  request_stop t;
  wait t
