(** Closed-loop load generator for a running serve daemon: [clients]
    concurrent loops each issue [requests] requests back-to-back, so the
    offered concurrency is exactly [clients]. Used by
    [dhpfc bench-serve] and the serve tests. *)

type result = {
  lg_total : int;  (** requests issued (clients x requests) *)
  lg_ok : int;
  lg_error : int;  (** final non-ok answers (protocol or error status) *)
  lg_overloaded : int;
      (** overloaded answers observed; each is retried with backoff and
          counts again under its final status *)
  lg_wall_s : float;
  lg_latencies : float array;  (** per-request seconds, sorted ascending *)
  lg_queue_waits : float array;
      (** server-reported queue-wait seconds (from each response's
          [telemetry] section), sorted ascending; empty against a server
          that does not report telemetry *)
  lg_services : float array;
      (** server-reported service seconds, sorted ascending — so
          client-observed latency splits into wait vs work *)
  lg_by_op : (string * float array) list;
      (** end-to-end latencies grouped by op kind ([compile], [run],
          ...), each sorted ascending; ops in sorted order *)
}

val run :
  socket:string ->
  clients:int ->
  requests:int ->
  workload:(client:int -> seq:int -> Proto.request) ->
  result
(** [workload ~client ~seq] picks the request for client [client]'s
    [seq]-th issue, so callers can mix operations deterministically.
    Overloaded answers are retried (up to 200 times, linear backoff)
    rather than counted as failures — the generator is closed-loop, so
    retrying is what a well-behaved client would do. *)

val percentile : float -> float array -> float
(** [percentile q sorted] by nearest-rank; [0.] on an empty array. *)
