(** Client side of [dhpf-serve/1]: connect, send one request, read one
    response. *)

exception Connect_error of string
(** The socket could not be reached (no server, stale path, refused). *)

val request : ?rid:string -> socket:string -> Proto.request -> Jsonx.t
(** One round trip on a fresh connection. [rid] is the caller-chosen
    trace id stamped on the request; the server threads it through its
    log/flight-recorder and echoes it in the response ([rid] plus the
    [telemetry] section).
    @raise Connect_error when the connection cannot be established.
    @raise Proto.Proto_error on a malformed response (including a server
    that closed the connection without answering). *)

val request_json : socket:string -> Jsonx.t -> Jsonx.t
(** {!request} with a caller-built payload — the escape hatch used by
    the protocol-error tests to send frames no {!Proto.request}
    constructor would produce. *)

val wait_ready : ?attempts:int -> ?delay_s:float -> socket:string -> unit -> bool
(** Poll [ping] until the server answers [ok] (true) or the attempts
    run out (false). Default: 100 attempts, 50 ms apart. *)
