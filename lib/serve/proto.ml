(* dhpf-serve/1 framing and request codec (see proto.mli). *)

let schema = "dhpf-serve/1"
let max_frame = 16 * 1024 * 1024

exception Proto_error of string

let perr fmt = Printf.ksprintf (fun s -> raise (Proto_error s)) fmt

(* -- framing -------------------------------------------------------- *)

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (pos + n) (len - n)
  end

(* [false] on EOF at the very first byte (and only there) *)
let read_exact fd buf pos len =
  let rec go pos len =
    if len = 0 then true
    else
      match Unix.read fd buf pos len with
      | 0 ->
          if pos = 0 then false else perr "short read: connection closed mid-frame"
      | n -> go (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos len
  in
  go pos len

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then perr "frame of %d bytes exceeds %d" len max_frame;
  let b = Bytes.create (4 + len) in
  Bytes.set_uint8 b 0 ((len lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((len lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((len lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (len land 0xFF);
  Bytes.blit_string payload 0 b 4 len;
  write_all fd b 0 (Bytes.length b)

let read_frame fd =
  let hdr = Bytes.create 4 in
  if not (read_exact fd hdr 0 4) then None
  else begin
    let len =
      (Bytes.get_uint8 hdr 0 lsl 24)
      lor (Bytes.get_uint8 hdr 1 lsl 16)
      lor (Bytes.get_uint8 hdr 2 lsl 8)
      lor Bytes.get_uint8 hdr 3
    in
    if len > max_frame then perr "frame of %d bytes exceeds %d" len max_frame;
    let b = Bytes.create len in
    if len > 0 && not (read_exact fd b 0 len) then
      perr "short read: connection closed mid-frame";
    Some (Bytes.unsafe_to_string b)
  end

let write_json fd v = write_frame fd (Jsonx.to_string v)

let read_json fd =
  match read_frame fd with
  | None -> None
  | Some payload -> (
      match Jsonx.of_string payload with
      | v -> Some v
      | exception Jsonx.Error msg -> perr "bad JSON payload: %s" msg)

(* -- requests ------------------------------------------------------- *)

type request =
  | Ping
  | Stats
  | Dump
  | Shutdown
  | Compile of {
      label : string;
      source : string option;
      opts : Dhpf.Gen.options;
    }
  | Run of {
      label : string;
      source : string option;
      opts : Dhpf.Gen.options;
      nprocs : int;
      params : (string * int) list;
      engine : string;
    }

let opts_to_json (o : Dhpf.Gen.options) =
  Jsonx.Obj
    [
      ("split", Jsonx.Bool o.Dhpf.Gen.opt_split);
      ("vectorize", Jsonx.Bool o.Dhpf.Gen.opt_vectorize);
      ("coalesce", Jsonx.Bool o.Dhpf.Gen.opt_coalesce);
      ("inplace", Jsonx.Bool o.Dhpf.Gen.opt_inplace);
    ]

let opts_of_json v =
  match Jsonx.get v "opts" with
  | None -> Dhpf.Gen.default_options
  | Some o ->
      let d = Dhpf.Gen.default_options in
      let flag k dflt = Option.value (Jsonx.get_bool o k) ~default:dflt in
      {
        Dhpf.Gen.opt_split = flag "split" d.Dhpf.Gen.opt_split;
        opt_vectorize = flag "vectorize" d.Dhpf.Gen.opt_vectorize;
        opt_coalesce = flag "coalesce" d.Dhpf.Gen.opt_coalesce;
        opt_inplace = flag "inplace" d.Dhpf.Gen.opt_inplace;
      }

let params_to_json ps =
  Jsonx.List
    (List.map (fun (n, v) -> Jsonx.List [ Jsonx.Str n; Jsonx.int v ]) ps)

let params_of_json v =
  match Jsonx.get v "params" with
  | None -> Ok []
  | Some (Jsonx.List xs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Jsonx.List [ Jsonx.Str n; Jsonx.Num x ] :: rest
          when Float.is_integer x ->
            go ((n, int_of_float x) :: acc) rest
        | _ -> Error "params must be a list of [name, int] pairs"
      in
      go [] xs
  | Some _ -> Error "params must be a list of [name, int] pairs"

let src_fields label source =
  ("src", Jsonx.Str label)
  ::
  (match source with Some s -> [ ("source", Jsonx.Str s) ] | None -> [])

let op_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Dump -> "dump"
  | Shutdown -> "shutdown"
  | Compile _ -> "compile"
  | Run _ -> "run"

let request_to_json = function
  | Ping -> Jsonx.Obj [ ("op", Jsonx.Str "ping") ]
  | Stats -> Jsonx.Obj [ ("op", Jsonx.Str "stats") ]
  | Dump -> Jsonx.Obj [ ("op", Jsonx.Str "dump") ]
  | Shutdown -> Jsonx.Obj [ ("op", Jsonx.Str "shutdown") ]
  | Compile { label; source; opts } ->
      Jsonx.Obj
        ((("op", Jsonx.Str "compile") :: src_fields label source)
        @ [ ("opts", opts_to_json opts) ])
  | Run { label; source; opts; nprocs; params; engine } ->
      Jsonx.Obj
        ((("op", Jsonx.Str "run") :: src_fields label source)
        @ [
            ("opts", opts_to_json opts);
            ("nprocs", Jsonx.int nprocs);
            ("params", params_to_json params);
            ("engine", Jsonx.Str engine);
          ])

let request_of_json v =
  match Jsonx.get_str v "op" with
  | None -> Error "missing op field"
  | Some "ping" -> Ok Ping
  | Some "stats" -> Ok Stats
  | Some "dump" -> Ok Dump
  | Some "shutdown" -> Ok Shutdown
  | Some ("compile" | "run") as op -> (
      let op = Option.get op in
      let source = Jsonx.get_str v "source" in
      let label =
        match (Jsonx.get_str v "src", source) with
        | Some l, _ -> Some l
        | None, Some _ -> Some "<inline>"
        | None, None -> None
      in
      match label with
      | None -> Error "compile/run needs src (builtin name) or source (text)"
      | Some label -> (
          let opts = opts_of_json v in
          match op with
          | "compile" -> Ok (Compile { label; source; opts })
          | _ -> (
              match params_of_json v with
              | Error e -> Error e
              | Ok params ->
                  let nprocs =
                    Option.value (Jsonx.get_int v "nprocs") ~default:4
                  in
                  let engine =
                    Option.value (Jsonx.get_str v "engine") ~default:"closure"
                  in
                  if nprocs < 1 then Error "nprocs must be positive"
                  else Ok (Run { label; source; opts; nprocs; params; engine })
              )))
  | Some op -> Error (Printf.sprintf "unknown op %S" op)

(* -- responses ------------------------------------------------------ *)

let base status rest =
  Jsonx.Obj
    ((("schema", Jsonx.Str schema) :: [ ("status", Jsonx.Str status) ]) @ rest)

let ok fields = base "ok" fields

let error ~code msg =
  base "error" [ ("code", Jsonx.Str code); ("message", Jsonx.Str msg) ]

let overloaded =
  base "overloaded"
    [ ("message", Jsonx.Str "queue full; retry later") ]
