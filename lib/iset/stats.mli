(** Counters and gauges for the hash-consing / memoization layer of the
    integer-set engine, surfaced by [dhpfc compile --report] and the
    benchmark harness (Table-1 rows show both time and cache behaviour). *)

type counter

val counter : string -> counter
(** Create and register a named counter. *)

val bump : counter -> unit
val count : counter -> int

val register_gauge : string -> (unit -> int) -> unit
(** Register a live-state gauge (interned-node count, cache size). *)

(** {1 The engine's counters} *)

val sat_lookups : counter
val sat_hits : counter
val sat_prefilter_kills : counter
val simplify_lookups : counter
val simplify_hits : counter
val gist_lookups : counter
val gist_hits : counter
val implies_lookups : counter
val implies_hits : counter
val subset_lookups : counter
val subset_hits : counter
val evictions : counter

(** On-disk analysis-cache traffic (see {!Diskcache}): lookups/hits count
    content-addressed entry reads on in-memory misses, stores count
    published entries, evictions count files removed by the size-bounded
    GC. *)

val disk_lookups : counter
val disk_hits : counter
val disk_stores : counter
val disk_evictions : counter

(** {1 Reporting} *)

val reset : unit -> unit
(** Zero every counter (cache contents are untouched). *)

val report : unit -> (string * int) list
(** All counters (in registration order) followed by all gauges. *)

val hit_rate : lookups:counter -> hits:counter -> float

val pp : Format.formatter -> unit -> unit
