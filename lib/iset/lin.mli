(** Linear (affine) integer terms: [sum_i c_i * v_i + k].

    Coefficients are native ints (the sets the compiler manipulates stay far
    below [2^62]); zero coefficients are never stored, so structural
    equality of the coefficient map is semantic equality. *)

type t = { coeffs : int Var.Map.t; const : int }

val zero : t
val const : int -> t

val var : ?coef:int -> Var.t -> t
(** [var ~coef v] is [coef * v]; [coef] defaults to 1. *)

val of_list : (int * Var.t) list -> int -> t
(** [of_list [(c1,v1);...] k] is [c1*v1 + ... + k]. *)

val coeff : t -> Var.t -> int
(** Coefficient of a variable (0 when absent). *)

val constant : t -> int
val is_const : t -> bool
val mem : Var.t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val add_const : int -> t -> t

val drop : Var.t -> t -> t
(** Remove the variable's term entirely. *)

val subst : Var.t -> t -> t -> t
(** [subst v rhs t] replaces every occurrence of [v] by the term [rhs]. *)

val vars : t -> Var.Set.t
val fold : (Var.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
val exists_var : (Var.t -> bool) -> t -> bool
val map_vars : (Var.t -> Var.t) -> t -> t

val gcd : int -> int -> int
val coeff_gcd : t -> int
(** Gcd of all variable coefficients (0 if the term is constant). *)

val compare : t -> t -> int
(** Physical equality is used as a fast path: interned terms compare in
    O(1). *)

val equal : t -> t -> bool
val hash : t -> int

val intern : t -> t
(** Canonical physically-shared representative (see {!Hcons}). *)

val id : t -> int
(** Stable interned id; never reused across cache evictions. *)

val wire_put : Buffer.t -> t -> unit
(** Canonical byte codec (see {!Wire}); structurally equal terms encode
    to equal bytes. *)

val wire_read : Wire.cursor -> t
(** @raise Wire.Malformed on a truncated or ill-formed stream. *)

val fdiv : int -> int -> int
(** Floor division; the divisor must be positive. *)

val cdiv : int -> int -> int
(** Ceiling division; the divisor must be positive. *)

val pmod : int -> int -> int
(** Positive remainder in [\[0, b)]. *)

val smod : int -> int -> int
(** Symmetric remainder in [(-b/2, b/2]] — the "mod-hat" of Omega's
    equality-coefficient reduction. *)

val eval : (Var.t -> int) -> t -> int

val pp : ?pp_var:(Format.formatter -> Var.t -> unit) -> Format.formatter -> t -> unit
val to_string : t -> string
