(** Linear (affine) integer terms: [sum_i c_i * v_i + k].

    Coefficients are native ints; the sets manipulated by the compiler stay
    far below 2^62. Zero coefficients are never stored. *)

type t = { coeffs : int Var.Map.t; const : int }

let zero = { coeffs = Var.Map.empty; const = 0 }

let const k = { coeffs = Var.Map.empty; const = k }

let var ?(coef = 1) v =
  if coef = 0 then zero else { coeffs = Var.Map.singleton v coef; const = 0 }

let coeff t v = match Var.Map.find_opt v t.coeffs with Some c -> c | None -> 0

let constant t = t.const

let is_const t = Var.Map.is_empty t.coeffs

let add a b =
  let coeffs =
    Var.Map.union (fun _ x y -> if x + y = 0 then None else Some (x + y)) a.coeffs b.coeffs
  in
  { coeffs; const = a.const + b.const }

let neg a =
  { coeffs = Var.Map.map (fun c -> -c) a.coeffs; const = -a.const }

let sub a b = add a (neg b)

let scale k a =
  if k = 0 then zero
  else if k = 1 then a
  else { coeffs = Var.Map.map (fun c -> k * c) a.coeffs; const = k * a.const }

let add_const k a = { a with const = a.const + k }

let of_list pairs k =
  List.fold_left (fun acc (c, v) -> add acc (var ~coef:c v)) (const k) pairs

(** Remove [v]'s term entirely. *)
let drop v t = { t with coeffs = Var.Map.remove v t.coeffs }

(** [subst v rhs t] replaces every occurrence of [v] by the term [rhs]. *)
let subst v rhs t =
  match Var.Map.find_opt v t.coeffs with
  | None -> t
  | Some c -> add (drop v t) (scale c rhs)

let vars t = Var.Map.fold (fun v _ acc -> Var.Set.add v acc) t.coeffs Var.Set.empty

let mem v t = Var.Map.mem v t.coeffs

let fold f t acc = Var.Map.fold f t.coeffs acc

let exists_var p t = Var.Map.exists (fun v _ -> p v) t.coeffs

let map_vars f t =
  Var.Map.fold (fun v c acc -> add acc (var ~coef:c (f v))) t.coeffs (const t.const)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** Gcd of all variable coefficients (0 if constant). *)
let coeff_gcd t = Var.Map.fold (fun _ c g -> gcd c g) t.coeffs 0

let compare a b =
  if a == b then 0
  else
    let c = Var.Map.compare Int.compare a.coeffs b.coeffs in
    if c <> 0 then c else Int.compare a.const b.const

let equal a b = a == b || compare a b = 0

(* Deterministic: Var.Map folds in canonical key order. *)
let hash t =
  Var.Map.fold
    (fun v c acc -> (((acc * 31) + Var.hash v) * 31) + c)
    t.coeffs
    ((t.const * 17) + 11)
  land max_int

module Tbl = Hcons.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end) ()

let () = Tbl.register_gauge "interned terms"
let intern t = fst (Tbl.intern t)
let id t = snd (Tbl.intern t)

(* canonical byte codec: coefficient pairs in Var.Map key order (zero
   coefficients are never stored, so structural equality is byte
   equality), then the constant *)
let wire_put b t =
  Wire.list
    (fun b (v, c) ->
      Var.wire_put b v;
      Wire.int b c)
    b (Var.Map.bindings t.coeffs);
  Wire.int b t.const

let wire_read c =
  let pairs =
    Wire.read_list
      (fun c ->
        let v = Var.wire_read c in
        let k = Wire.read_int c in
        (v, k))
      c
  in
  let coeffs =
    List.fold_left (fun m (v, k) -> Var.Map.add v k m) Var.Map.empty pairs
  in
  { coeffs; const = Wire.read_int c }

(* Euclidean division helpers: floor and ceil for possibly-negative
   numerators, positive denominators. *)
let fdiv a b =
  assert (b > 0);
  if a >= 0 then a / b else -(((-a) + b - 1) / b)

let cdiv a b =
  assert (b > 0);
  if a >= 0 then (a + b - 1) / b else -((-a) / b)

(* Positive remainder in [0, b). *)
let pmod a b =
  assert (b > 0);
  let r = a mod b in
  if r < 0 then r + b else r

(* Symmetric remainder in (-b/2, b/2] used by Omega's equality reduction:
   a mod' b = a - b * floor(a/b + 1/2). *)
let smod a b =
  assert (b > 0);
  let r = pmod a b in
  if 2 * r > b then r - b else r

let eval env t =
  Var.Map.fold (fun v c acc -> acc + (c * env v)) t.coeffs t.const

let pp ?(pp_var = Var.pp) fmt t =
  let terms = Var.Map.bindings t.coeffs in
  let pp_term first fmt (v, c) =
    if c = 1 then Fmt.pf fmt (if first then "%a" else "+%a") pp_var v
    else if c = -1 then Fmt.pf fmt "-%a" pp_var v
    else if c >= 0 then Fmt.pf fmt (if first then "%d%a" else "+%d%a") c pp_var v
    else Fmt.pf fmt "%d%a" c pp_var v
  in
  match terms with
  | [] -> Fmt.int fmt t.const
  | (v0, c0) :: rest ->
      pp_term true fmt (v0, c0);
      List.iter (fun vc -> pp_term false fmt vc) rest;
      if t.const > 0 then Fmt.pf fmt "+%d" t.const
      else if t.const < 0 then Fmt.pf fmt "%d" t.const

let to_string t = Fmt.str "%a" (pp ?pp_var:None) t
