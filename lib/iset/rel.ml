(** Relations between integer tuples: unions of {!Conj.t} with declared
    input/output arities. A set is a relation with [out_ar = 0] whose tuple
    variables are the inputs.

    Operation names follow the paper (Appendix A): [compose r1 r2] is the
    paper's [R1 o R2] — it maps [i -> j] iff there is an [a] with
    [r1 : i -> a] and [r2 : a -> j] (diagrammatic order). *)

type t = {
  in_ar : int;
  out_ar : int;
  conjs : Conj.t list; (* disjunction; [] is the empty relation *)
  in_names : string array;
  out_names : string array;
}

let default_names prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix (i + 1))

let make ?in_names ?out_names ~in_ar ~out_ar conjs =
  let in_names =
    match in_names with Some a -> a | None -> default_names "i" in_ar
  in
  let out_names =
    match out_names with Some a -> a | None -> default_names "j" out_ar
  in
  assert (Array.length in_names = in_ar && Array.length out_names = out_ar);
  { in_ar; out_ar; conjs; in_names; out_names }

let empty ?in_names ?out_names ~in_ar ~out_ar () =
  make ?in_names ?out_names ~in_ar ~out_ar []

let universe ?in_names ?out_names ~in_ar ~out_ar () =
  make ?in_names ?out_names ~in_ar ~out_ar [ Conj.true_ ]

let set ?names ~ar conjs = make ?in_names:names ~in_ar:ar ~out_ar:0 conjs

let in_arity t = t.in_ar
let out_arity t = t.out_ar
let conjuncts t = t.conjs
let in_names t = t.in_names
let out_names t = t.out_names
let with_names ?in_names ?out_names t =
  {
    t with
    in_names = (match in_names with Some a -> a | None -> t.in_names);
    out_names = (match out_names with Some a -> a | None -> t.out_names);
  }

let is_set t = t.out_ar = 0

let same_sig a b = a.in_ar = b.in_ar && a.out_ar = b.out_ar

let check_sig op a b =
  if not (same_sig a b) then
    invalid_arg
      (Printf.sprintf "Rel.%s: signature mismatch (%d->%d vs %d->%d)" op a.in_ar
         a.out_ar b.in_ar b.out_ar)

(* ------------------------------------------------------------------ *)
(* Simplification                                                      *)
(* ------------------------------------------------------------------ *)

(** Light simplification: per-conjunct normalization only. *)
let simplify t = { t with conjs = List.filter_map Conj.simplify t.conjs }

(** Heavier: additionally drop unsatisfiable conjuncts (Omega test) and
    conjuncts subsumed by an earlier one. *)
let coalesce t =
  let conjs = List.filter_map Conj.simplify t.conjs in
  let conjs = List.filter Conj.sat conjs in
  (* drop syntactic duplicates *)
  let conjs =
    List.fold_left
      (fun acc c ->
        if List.exists (fun c' -> Conj.constraints c' = Conj.constraints c) acc then acc
        else c :: acc)
      [] conjs
    |> List.rev
  in
  { t with conjs }

let is_empty t = not (List.exists Conj.sat t.conjs)

let is_sat t = List.exists Conj.sat t.conjs

(* ------------------------------------------------------------------ *)
(* Boolean operations                                                  *)
(* ------------------------------------------------------------------ *)

let union a b =
  check_sig "union" a b;
  { a with conjs = a.conjs @ b.conjs }

let inter a b =
  check_sig "inter" a b;
  let conjs =
    List.concat_map (fun ca -> List.map (fun cb -> Conj.meet ca cb) b.conjs) a.conjs
  in
  simplify { a with conjs }

(** [diff a b] = a minus b. Exact; raises [Conj.Inexact_negation] if some
    conjunct of [b] has non-stride residual existentials (does not occur for
    the set classes the compiler produces). *)
let diff a b =
  check_sig "diff" a b;
  let sub_one acc bconj =
    (* acc := acc ∧ ¬bconj *)
    let negs = Conj.negate bconj in
    List.concat_map
      (fun ca -> List.filter_map (fun n -> Conj.simplify (Conj.meet ca n)) negs)
      acc
  in
  let conjs = List.fold_left sub_one a.conjs b.conjs in
  coalesce { a with conjs }

let complement t =
  diff (universe ~in_names:t.in_names ~out_names:t.out_names ~in_ar:t.in_ar ~out_ar:t.out_ar ()) t

(* ------------------------------------------------------------------ *)
(* Variable plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let map_tuple_vars f t =
  { t with conjs = List.map (Conj.map_lin (Lin.map_vars f)) t.conjs }

(** Existentially quantify the output tuple: Domain. *)
let domain t =
  let conjs =
    List.map
      (fun c ->
        let base = Conj.n_ex c in
        let f = function Var.Out i -> Var.Ex (base + i) | v -> v in
        Conj.make ~n_ex:(base + t.out_ar)
          (List.map (Constr.map_lin (Lin.map_vars f)) (Conj.constraints c)))
      t.conjs
  in
  simplify (make ~in_names:t.in_names ~in_ar:t.in_ar ~out_ar:0 conjs)

(** Existentially quantify the input tuple and make outputs the set tuple:
    Range. *)
let range t =
  let conjs =
    List.map
      (fun c ->
        let base = Conj.n_ex c in
        let f = function
          | Var.In i -> Var.Ex (base + i)
          | Var.Out i -> Var.In i
          | v -> v
        in
        Conj.make ~n_ex:(base + t.in_ar)
          (List.map (Constr.map_lin (Lin.map_vars f)) (Conj.constraints c)))
      t.conjs
  in
  simplify (make ~in_names:t.out_names ~in_ar:t.out_ar ~out_ar:0 conjs)

let inverse t =
  let f = function Var.In i -> Var.Out i | Var.Out i -> Var.In i | v -> v in
  make ~in_names:t.out_names ~out_names:t.in_names ~in_ar:t.out_ar ~out_ar:t.in_ar
    (List.map (fun c -> Conj.map_lin (Lin.map_vars f) c) t.conjs)

(** [compose r1 r2] (paper's [R1 o R2]): i -> j iff exists a. r1(i,a) and
    r2(a,j). Requires [r1.out_ar = r2.in_ar]. *)
let compose r1 r2 =
  if r1.out_ar <> r2.in_ar then
    invalid_arg
      (Printf.sprintf "Rel.compose: mid arity mismatch (%d vs %d)" r1.out_ar r2.in_ar);
  let mid = r1.out_ar in
  let conjs =
    List.concat_map
      (fun c1 ->
        List.map
          (fun c2 ->
            (* rename apart, then map r1's Out and r2's In to shared
               existentials *)
            let c2 = Conj.shift_ex (Conj.n_ex c1) c2 in
            let base = Conj.n_ex c2 in
            let f1 = function Var.Out i -> Var.Ex (base + i) | v -> v in
            let f2 = function Var.In i -> Var.Ex (base + i) | v -> v in
            let cs1 =
              List.map (Constr.map_lin (Lin.map_vars f1)) (Conj.constraints c1)
            in
            let cs2 =
              List.map (Constr.map_lin (Lin.map_vars f2)) (Conj.constraints c2)
            in
            Conj.make ~n_ex:(base + mid) (cs1 @ cs2))
          r2.conjs)
      r1.conjs
  in
  simplify
    (make ~in_names:r1.in_names ~out_names:r2.out_names ~in_ar:r1.in_ar
       ~out_ar:r2.out_ar conjs)

let restrict_domain r s =
  if not (is_set s) || s.in_ar <> r.in_ar then
    invalid_arg "Rel.restrict_domain: operand must be a set over the input tuple";
  let conjs =
    List.concat_map
      (fun cr -> List.map (fun cs -> Conj.meet cr cs) s.conjs)
      r.conjs
  in
  simplify { r with conjs }

let restrict_range r s =
  if not (is_set s) || s.in_ar <> r.out_ar then
    invalid_arg "Rel.restrict_range: operand must be a set over the output tuple";
  let f = function Var.In i -> Var.Out i | v -> v in
  let s' = List.map (fun c -> Conj.map_lin (Lin.map_vars f) c) s.conjs in
  let conjs =
    List.concat_map (fun cr -> List.map (fun cs -> Conj.meet cr cs) s') r.conjs
  in
  simplify { r with conjs }

(** [apply r s] = Range(restrict_domain r s) — the paper's [R(S)]. *)
let apply r s = range (restrict_domain r s)

(** Flatten a relation into a set over the concatenated [in; out] tuple. *)
let flatten r =
  let k = r.in_ar in
  let f = function Var.Out i -> Var.In (k + i) | v -> v in
  let names = Array.append r.in_names r.out_names in
  make ~in_names:names ~in_ar:(k + r.out_ar) ~out_ar:0
    (List.map (fun c -> Conj.map_lin (Lin.map_vars f) c) r.conjs)

(** Inverse of {!flatten}: split a set over [k + m] variables into a relation
    [k -> m]. *)
let unflatten ~in_ar set =
  assert (is_set set);
  let m = set.in_ar - in_ar in
  assert (m >= 0);
  let f = function
    | Var.In i when i >= in_ar -> Var.Out (i - in_ar)
    | v -> v
  in
  make
    ~in_names:(Array.sub set.in_names 0 in_ar)
    ~out_names:(Array.sub set.in_names in_ar m)
    ~in_ar ~out_ar:m
    (List.map (fun c -> Conj.map_lin (Lin.map_vars f) c) set.conjs)

(** Substitute a parameter by a linear term everywhere. *)
let subst_param name lin t =
  { t with conjs = List.map (Conj.subst (Var.Param name) lin) t.conjs }

(** [apply_point r lins]: the set {j : r(p, j)} where the input tuple is fixed
    to the given linear terms (typically parameters such as the processor id
    [m], or constants). *)
let apply_point r lins =
  if List.length lins <> r.in_ar then invalid_arg "Rel.apply_point: arity";
  let conjs =
    List.map
      (fun c ->
        List.fold_left
          (fun (c, i) lin -> (Conj.subst (Var.In i) lin c, i + 1))
          (c, 0) lins
        |> fst)
      r.conjs
  in
  range { r with conjs }

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)
(* ------------------------------------------------------------------ *)

module SubsetMemo = Cache.Memo (struct
  (* (in_ar, out_ar, conj ids of a, conj ids of b); names are cosmetic and
     deliberately excluded — subset is a property of the point sets only *)
  type t = int * int * int list * int list

  let equal (a, b, xs, ys) (a', b', xs', ys') =
    a = a' && b = b' && List.equal Int.equal xs xs' && List.equal Int.equal ys ys'

  let hash = Hashtbl.hash
end)

let subset_memo : bool SubsetMemo.t =
  SubsetMemo.create "subset" ~lookups:Stats.subset_lookups
    ~hits:Stats.subset_hits

let subset a b =
  check_sig "subset" a b;
  (* miss-only span, mirroring the Conj operations: the memoized hit path
     stays span-free (see the tracing-policy note in conj.ml) *)
  let slow () =
    if Obs.enabled () then
      Obs.span ~cat:"iset"
        ~args:(fun () ->
          [ ("lookups", Obs.Int (Stats.count Stats.subset_lookups));
            ("hits", Obs.Int (Stats.count Stats.subset_hits)) ])
        "subset"
        (fun () -> is_empty (diff a b))
    else is_empty (diff a b)
  in
  if not (Cache.enabled ()) then slow ()
  else
    SubsetMemo.find_or_add subset_memo
      (a.in_ar, a.out_ar, List.map Conj.id a.conjs, List.map Conj.id b.conjs)
      (fun () ->
        (* disk layer beneath the memo, content-keyed exactly like the
           in-memory key: arities plus both conjunct lists (names are
           cosmetic and excluded) *)
        Diskcache.memo ~kind:"subset"
          ~key:(fun () ->
            let buf = Buffer.create 256 in
            Wire.int buf a.in_ar;
            Wire.int buf a.out_ar;
            Wire.list Conj.wire_put buf a.conjs;
            Wire.list Conj.wire_put buf b.conjs;
            Buffer.contents buf)
          ~encode:(fun r ->
            let buf = Buffer.create 1 in
            Wire.bool buf r;
            Buffer.contents buf)
          ~decode:Wire.read_bool slow)

let equal a b = subset a b && subset b a

(** Gist: simplify [t] under the assumption [given] (applied per conjunct,
    using every conjunct of [given] that is a single conjunct; when [given]
    is a union, only constraints common to all its conjuncts could be
    assumed, so we conservatively use the first conjunct only if the union is
    a singleton). *)
let gist t ~given =
  match given.conjs with
  | [ g ] -> { t with conjs = List.map (fun c -> Conj.gist c ~given:g) t.conjs }
  | _ -> t

(** Make the disjuncts pairwise disjoint (same union of points). Used before
    code generation so that no tuple is enumerated twice. Note that the
    pieces produced by a single [diff] may overlap each other (the negation
    of a conjunct is a non-disjoint disjunction), so each piece is inserted
    separately and re-differenced against the pieces accepted so far. *)
let disjointify t =
  let one conj = { t with conjs = [ conj ] } in
  let budget = ref 1000 in
  let rec insert acc c =
    decr budget;
    if !budget < 0 then invalid_arg "Rel.disjointify: too many pieces";
    if acc = [] then [ c ]
    else
      let d = List.fold_left (fun d s -> diff d (one s)) (one c) acc in
      let d = coalesce d in
      match d.conjs with
      | [] -> acc
      | [ p ] -> acc @ [ p ]
      | p :: rest ->
          (* p is disjoint from acc; the remaining pieces may still overlap
             p, so insert them recursively *)
          List.fold_left insert (acc @ [ p ]) rest
  in
  { t with conjs = List.fold_left insert [] t.conjs }

(* ------------------------------------------------------------------ *)
(* Membership (testing oracle)                                         *)
(* ------------------------------------------------------------------ *)

(** Exact membership test: [mem ~env t (ins, outs)] decides whether the tuple
    belongs to the relation with parameters bound by [env]. Remaining
    existentials are decided by the Omega test. *)
let mem ?(env = []) t (ins, outs) =
  if List.length ins <> t.in_ar || List.length outs <> t.out_ar then
    invalid_arg "Rel.mem: arity";
  List.exists
    (fun c ->
      let c =
        List.fold_left
          (fun (c, i) x -> (Conj.subst (Var.In i) (Lin.const x) c, i + 1))
          (c, 0) ins
        |> fst
      in
      let c =
        List.fold_left
          (fun (c, i) x -> (Conj.subst (Var.Out i) (Lin.const x) c, i + 1))
          (c, 0) outs
        |> fst
      in
      let c =
        List.fold_left
          (fun c (name, x) -> Conj.subst (Var.Param name) (Lin.const x) c)
          c env
      in
      Conj.sat c)
    t.conjs

let mem_set ?env t ins = mem ?env t (ins, [])

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_var_named t fmt = function
  | Var.In i when i < Array.length t.in_names -> Fmt.string fmt t.in_names.(i)
  | Var.Out i when i < Array.length t.out_names -> Fmt.string fmt t.out_names.(i)
  | v -> Var.pp fmt v

(* Render a constraint in a readable a <= b / a = b form: move negative
   terms to the other side. *)
let pp_constr pp_var fmt c =
  let lin = Constr.lin c in
  let pos, neg =
    Lin.fold
      (fun v a (pos, neg) ->
        if a > 0 then (Lin.add pos (Lin.var ~coef:a v), neg)
        else (pos, Lin.add neg (Lin.var ~coef:(-a) v)))
      lin (Lin.zero, Lin.zero)
  in
  let k = Lin.constant lin in
  let pos, neg =
    if k > 0 then (Lin.add_const k pos, neg) else (pos, Lin.add_const (-k) neg)
  in
  match Constr.kind c with
  | Constr.Eq -> Fmt.pf fmt "%a = %a" (Lin.pp ~pp_var) pos (Lin.pp ~pp_var) neg
  | Constr.Geq -> Fmt.pf fmt "%a <= %a" (Lin.pp ~pp_var) neg (Lin.pp ~pp_var) pos

let pp_conj pp_var fmt c =
  let n = Conj.n_ex c in
  if n > 0 then begin
    Fmt.pf fmt "exists(%a: "
      Fmt.(list ~sep:(any ",") (fun fmt i -> Var.pp fmt (Var.Ex i)))
      (List.init n (fun i -> i))
  end;
  (match Conj.constraints c with
  | [] -> Fmt.string fmt "TRUE"
  | cs -> Fmt.(list ~sep:(any " && ") (pp_constr pp_var)) fmt cs);
  if n > 0 then Fmt.string fmt ")"

let pp fmt t =
  let pp_var = pp_var_named t in
  let tuple names = Array.to_list names in
  Fmt.pf fmt "{[%a]" Fmt.(list ~sep:(any ",") string) (tuple t.in_names);
  if t.out_ar > 0 || not (is_set t) then
    Fmt.pf fmt " -> [%a]" Fmt.(list ~sep:(any ",") string) (tuple t.out_names);
  (match t.conjs with
  | [] -> Fmt.pf fmt " : FALSE"
  | [ c ] when Conj.constraints c = [] -> ()
  | cs -> Fmt.pf fmt " : %a" Fmt.(list ~sep:(any " || ") (pp_conj pp_var)) cs);
  Fmt.string fmt "}"

let to_string t = Fmt.str "%a" pp t
