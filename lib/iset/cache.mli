(** Global switchboard for the memoization layer of the integer-set engine.

    Every memo/intern table in {!Lin}, {!Constr}, {!Conj} and {!Rel}
    registers here; tables share one capacity bound and are bounded by
    clear-on-full eviction. Interned ids are never reused across clears, so
    id-keyed memo entries from a previous epoch are merely unreachable —
    stale hits are impossible by construction (invalidation-free keying). *)

val enabled : unit -> bool
(** Caching on? Defaults to on; [DHPF_ISET_CACHE=off] (or [0], [false],
    [no]) in the environment disables it at startup. *)

val set_enabled : bool -> unit
(** Toggle caching; flushes every registered table (used by the differential
    cache-correctness tests). *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Set the per-table entry bound (clamped to at least 4); flushes every
    registered table. *)

val register_clear : (unit -> unit) -> unit
val clear_all : unit -> unit

(** Bounded memo table; creation registers a clear hook and a size gauge. *)
module Memo (K : Hashtbl.HashedType) : sig
  type 'v t

  val create : string -> lookups:Stats.counter -> hits:Stats.counter -> 'v t
  val length : 'v t -> int

  val find_or_add : 'v t -> K.t -> (unit -> 'v) -> 'v
  (** Memoized call; a transparent pass-through when caching is disabled. *)
end
