(** Canonical byte encoding for integer-set structures, used by the
    on-disk analysis cache ({!Diskcache}).

    Encoding is a pure function of the structure: structurally equal
    values encode to equal bytes, which is the property the
    content-addressed cache keys rely on (interned ids are process-local
    and deliberately never serialized). The format is a flat text stream —
    decimals terminated by a space, strings length-prefixed — chosen for
    determinism and trivial bounds checking, not compactness. *)

exception Malformed
(** Raised by every [read_*] on a truncated or ill-formed stream. A
    disk-cache reader treats it as a cache miss, never an error. *)

type cursor

val cursor : ?pos:int -> string -> cursor
val at_end : cursor -> bool

val char : Buffer.t -> char -> unit
val read_char : cursor -> char

val int : Buffer.t -> int -> unit
val read_int : cursor -> int

val bool : Buffer.t -> bool -> unit
val read_bool : cursor -> bool

val string : Buffer.t -> string -> unit
val read_string : cursor -> string

val list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
val read_list : (cursor -> 'a) -> cursor -> 'a list
