(** Hash-consing (interning) tables.

    [intern] maps a value to a canonical physically-shared representative
    plus a stable small integer id. Ids are monotone and never reused, even
    across clear-on-full evictions: after a clear, re-interned values get
    fresh ids, so memo tables keyed by ids need no invalidation — entries
    holding retired ids can never be matched again.

    Domain safety: the table is sharded into lock-striped stripes keyed by
    the value's hash, and the id counter is a global [Atomic.t], so the
    monotone never-reused invariant holds under concurrent interning from
    parallel compiler phases. Two structurally-equal values always land on
    the same stripe (equal values hash equal), so canonical representatives
    stay unique. Clear-on-full applies per stripe with a per-stripe share of
    {!Cache.capacity}, preserving the global bound whenever the capacity is
    at least the stripe count (each stripe must hold at least one entry). *)

module Make (H : Hashtbl.HashedType) () = struct
  module T = Hashtbl.Make (H)

  let n_stripes = 16

  type stripe = { mu : Mutex.t; tbl : (H.t * int) T.t }

  let stripes =
    Array.init n_stripes (fun _ -> { mu = Mutex.create (); tbl = T.create 64 })

  let next_id = Atomic.make 0

  let () =
    Cache.register_clear (fun () ->
        Array.iter
          (fun s -> Mutex.protect s.mu (fun () -> T.reset s.tbl))
          stripes)

  let size () = Array.fold_left (fun acc s -> acc + T.length s.tbl) 0 stripes

  let register_gauge name = Stats.register_gauge name size

  let intern x =
    let s = stripes.(H.hash x land max_int mod n_stripes) in
    Mutex.protect s.mu @@ fun () ->
    match T.find_opt s.tbl x with
    | Some rep -> rep
    | None ->
        let id = Atomic.fetch_and_add next_id 1 in
        if T.length s.tbl >= max 1 (Cache.capacity () / n_stripes) then begin
          T.reset s.tbl;
          Stats.bump Stats.evictions
        end;
        T.replace s.tbl x (x, id);
        (x, id)

  let id x = snd (intern x)
end
