(** Hash-consing (interning) tables.

    [intern] maps a value to a canonical physically-shared representative
    plus a stable small integer id. Ids are monotone and never reused, even
    across clear-on-full evictions: after a clear, re-interned values get
    fresh ids, so memo tables keyed by ids need no invalidation — entries
    holding retired ids can never be matched again. *)

module Make (H : Hashtbl.HashedType) () = struct
  module T = Hashtbl.Make (H)

  let tbl : (H.t * int) T.t = T.create 1024
  let next_id = ref 0

  let () = Cache.register_clear (fun () -> T.reset tbl)

  let size () = T.length tbl

  let register_gauge name = Stats.register_gauge name size

  let intern x =
    match T.find_opt tbl x with
    | Some rep -> rep
    | None ->
        let id = !next_id in
        incr next_id;
        if T.length tbl >= Cache.capacity () then begin
          T.reset tbl;
          Stats.bump Stats.evictions
        end;
        T.replace tbl x (x, id);
        (x, id)

  let id x = snd (intern x)
end
