(* Canonical byte encoding for integer-set structures (see wire.mli).

   The stream is flat text: an int is its decimal image terminated by one
   space, a string is its length followed by the raw bytes, a list is its
   length followed by the elements. Every reader bounds-checks against the
   end of the buffer and raises {!Malformed} on any shortfall, so a
   truncated cache entry can never read past its bytes or loop. *)

exception Malformed

type cursor = { buf : string; mutable pos : int }

let cursor ?(pos = 0) buf = { buf; pos }
let at_end c = c.pos >= String.length c.buf

let take c n =
  if n < 0 || c.pos + n > String.length c.buf then raise Malformed;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let char b c = Buffer.add_char b c

let read_char c =
  if at_end c then raise Malformed;
  let ch = c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  ch

let int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ' '

(* decimal, optional leading '-', at least one digit, terminated by one
   space; anything else is malformed. Accumulates negated to represent
   [min_int] without overflow. *)
let read_int c =
  let neg =
    if (not (at_end c)) && c.buf.[c.pos] = '-' then begin
      c.pos <- c.pos + 1;
      true
    end
    else false
  in
  let rec digits acc n =
    match read_char c with
    | '0' .. '9' as d -> digits ((acc * 10) - (Char.code d - Char.code '0')) (n + 1)
    | ' ' when n > 0 -> acc
    | _ -> raise Malformed
  in
  let acc = digits 0 0 in
  if neg then acc else if acc = min_int then raise Malformed else -acc

let bool b v = Buffer.add_char b (if v then '1' else '0')

let read_bool c =
  match read_char c with
  | '1' -> true
  | '0' -> false
  | _ -> raise Malformed

let string b s =
  int b (String.length s);
  Buffer.add_string b s

let read_string c = take c (read_int c)

let list f b xs =
  int b (List.length xs);
  List.iter (f b) xs

(* elements must be read left to right ([List.init] does not guarantee an
   application order), so build the list with an explicit fold *)
let read_list f c =
  let n = read_int c in
  if n < 0 then raise Malformed;
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f c :: acc) in
  go n []
