(** Loop-nest synthesis from integer sets — the analogue of Kelly, Pugh and
    Rosser's multiple-mappings code generation used by the paper.

    Given one iteration set per statement over a common tuple of loop
    variables, {!gen} produces an AST of [do] loops, guards and statement
    leaves that enumerates each set in lexicographic order (statements in
    list order within an iteration). Single-conjunct nests take a fast
    path in which every constraint becomes a loop bound or a stride;
    non-convex sets either share hull loops with per-statement guards or
    (order-insensitive callers) emit one exact nest per disjunct. *)

exception Unsupported of string

(** {1 Expressions, conditions, ASTs} *)

type expr =
  | EInt of int
  | EVar of string
  | EAdd of expr * expr
  | ESub of expr * expr
  | EMul of int * expr
  | EFloorDiv of expr * int
  | ECeilDiv of expr * int
  | EMax of expr list
  | EMin of expr list
  | EAlignUp of expr * expr * expr
      (** [EAlignUp (e, target, k)]: smallest [x >= e] with
          [x ≡ target (mod k)]; the modulus may be symbolic. *)

type cond =
  | CTrue
  | CGeq0 of expr
  | CEq0 of expr
  | CDivides of int * expr
  | CAnd of cond list
  | COr of cond list
  | CNot of cond

type 'a ast =
  | AFor of { var : string; lo : expr; hi : expr; step : int; body : 'a ast list }
  | AIf of cond * 'a ast list
  | ALeaf of 'a

(** Smart constructors with constant folding. *)

val eint : int -> expr
val eadd : expr -> expr -> expr
val esub : expr -> expr -> expr
val emul : int -> expr -> expr
val efloordiv : expr -> int -> expr
val eceildiv : expr -> int -> expr
val emax : expr list -> expr
val emin : expr list -> expr
val cand : cond list -> cond

val expr_of_lin : name_of:(int -> string) -> Lin.t -> expr
(** Convert a linear term; [name_of] maps input-variable positions to loop
    variable names. @raise Unsupported on existentials. *)

(** {1 Evaluation} *)

val eval_expr : (string -> int) -> expr -> int
val eval_cond : (string -> int) -> cond -> bool

val run : env:(string -> int) -> f:('a -> (string * int) list -> unit) -> 'a ast list -> unit
(** Execute the AST: call [f tag bindings] for every statement instance in
    emission order. [env] resolves parameters; loop variables shadow it.
    Loops follow the sign of their step ([step > 0] ascending while
    [i <= hi], [step < 0] descending while [i >= hi]); an empty range
    (e.g. [lo > hi] with a positive step) runs zero iterations.
    @raise Invalid_argument on a zero step. *)

val count_points : env:(string -> int) -> 'a ast list -> int
(** Number of statement instances the AST enumerates at a concrete
    parameter binding — the point count of the generated nest (set
    cardinality times any deliberate disjunct overlap). This is the
    compile-time evaluation of the paper's message-size loops: counting
    the points of a communication set at given distribution parameters
    without materializing the elements. Same loop-direction and zero-step
    semantics as {!run}. *)

(** {1 Interval analysis}

    Conservative bounds for expressions, used by the native engine to prove
    at lowering time that a subscript expression stays inside an array's
    declared extent, licensing unchecked accesses in emitted kernels. *)

type interval = { ilo : int option; ihi : int option }
(** Inclusive integer interval; [None] means unbounded on that side. *)

val itv_top : interval
val itv_const : int -> interval
val itv : ?lo:int -> ?hi:int -> unit -> interval
val itv_add : interval -> interval -> interval
val itv_sub : interval -> interval -> interval
val itv_scale : int -> interval -> interval
val itv_max : interval -> interval -> interval
val itv_min : interval -> interval -> interval

val interval_of_expr : (string -> interval) -> expr -> interval
(** Interval of an expression under an environment that must return
    {!itv_top} for names it cannot bound. Sound (the true value always lies
    inside the returned interval) but not exact. *)

val itv_within : interval -> lo:int -> hi:int -> bool
(** [itv_within iv ~lo ~hi] is true when the interval is finite and contained
    in [\[lo, hi\]] — the proof obligation for an unchecked access. *)

(** {1 Generation} *)

type 'a stmt = { tag : 'a; dom : Rel.t }

val gen :
  ?context:Rel.t ->
  ?disjoint:bool ->
  ?order:[ `Lex | `Any ] ->
  names:string array ->
  'a stmt list ->
  'a ast list
(** Generate loop nests enumerating every statement's [dom] (a set over the
    variables named by [names]).

    [context] holds constraints already enforced by the enclosing scope (the
    paper's [Known] argument); it supplies fallback bounds. Overlapping
    disjuncts of one statement fire exactly once via runtime first-match
    exclusion guards; pass [~disjoint:false] to allow re-enumeration instead
    (idempotent statements such as message packing). [~order:`Any] — legal
    when the caller does not need lexicographic interleaving across
    disjuncts and all statements share one domain — emits each disjunct as
    its own exact nest (tight bounds instead of hull-plus-guards).

    @raise Unsupported on unbounded variables or non-window existentials. *)

val approx : Rel.t -> Rel.t
(** Sound over-approximation: drop every constraint involving an existential
    outside the stride/window class (enlarging the set). Used for
    intermediate iteration-demand sets, which deeper levels re-restrict. *)

(** {1 Internals exposed for the compiler and tests} *)

type classified = {
  plain : Constr.t list;
  strides : stride list;
  windows : window list;
}

and stride = { level : int; modulus : int; rest : Lin.t; vcoef : int }

and window = { w_lows : (int * Lin.t) list; w_highs : (int * Lin.t) list }

val classify : Conj.t -> Constr.t list * stride list * window list
(** Split a conjunct into existential-free constraints, loop strides and
    existential windows. @raise Unsupported on other existential shapes. *)

type bound = Lower of expr | Upper of expr | NotBound

val bound_of : name_of:(int -> string) -> int -> Constr.t -> bound
val cond_of_constr : name_of:(int -> string) -> Constr.t -> cond
val cond_of_stride : name_of:(int -> string) -> stride -> cond
val cond_of_window : name_of:(int -> string) -> window -> cond

(** {1 Printing} *)

val pp_expr : Format.formatter -> expr -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp_ast :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> ?indent:int -> 'a ast -> unit
val ast_to_string : (Format.formatter -> 'a -> unit) -> 'a ast list -> string
