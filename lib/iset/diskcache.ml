(* Content-addressed on-disk analysis cache (see diskcache.mli).

   Layout: <root>/v<format_version>/<kind>/<md5(key)>. An entry file is
   a magic line followed by the Wire encoding of (kind, key, value); the
   full key is stored so a digest collision reads as a miss instead of a
   wrong answer. Publication is write-to-temp + atomic rename, reads
   treat any malformation as a miss, and the footprint is bounded by
   oldest-first whole-entry eviction. *)

let format_version = 1
let magic = "DHPFDC1\n"

(* -- configuration -------------------------------------------------- *)

let dir_ref : string option Atomic.t = Atomic.make None
let max_bytes_ref = Atomic.make (256 * 1024 * 1024)

(* tracked footprint of the enabled directory; -1 = not yet scanned *)
let bytes_ref = Atomic.make (-1)
let mu = Mutex.create ()

let set_dir d =
  Atomic.set dir_ref d;
  Atomic.set bytes_ref (-1)

let dir () = Atomic.get dir_ref
let enabled () = Atomic.get dir_ref <> None
let max_bytes () = Atomic.get max_bytes_ref
let set_max_bytes n = Atomic.set max_bytes_ref (max (64 * 1024) n)

let init_env () =
  (match Sys.getenv_opt "DHPF_DISK_CACHE" with
  | Some d when d <> "" -> set_dir (Some d)
  | _ -> ());
  match Sys.getenv_opt "DHPF_DISK_CACHE_MB" with
  | Some s -> (
      match int_of_string_opt s with
      | Some mb when mb > 0 -> set_max_bytes (mb * 1024 * 1024)
      | _ -> ())
  | None -> ()

(* -- metrics -------------------------------------------------------- *)

let m_hits = lazy (Obs.Metrics.counter "diskcache/hits")
let m_misses = lazy (Obs.Metrics.counter "diskcache/misses")
let m_evictions = lazy (Obs.Metrics.counter "diskcache/evictions")
let m_bytes = lazy (Obs.Metrics.gauge "diskcache/bytes")

let note_bytes () =
  if Obs.Metrics.enabled () then
    let b = Atomic.get bytes_ref in
    if b >= 0 then Obs.Metrics.set (Lazy.force m_bytes) (float_of_int b)

(* -- filesystem helpers --------------------------------------------- *)

let rec mkdir_p d =
  if d <> "" && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let tmp_seq = Atomic.make 0

let tmp_name target =
  Printf.sprintf "%s.tmp.%d.%d" target (Unix.getpid ())
    (Atomic.fetch_and_add tmp_seq 1)

let write_atomic path contents =
  let tmp = tmp_name path in
  let oc = open_out_bin tmp in
  (try output_string oc contents
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

let file_size path =
  try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

(* in-flight temp files are not entries: scans and GC skip them so a
   concurrent writer's rename cannot be raced away *)
let is_tmp name =
  let rec has i =
    i + 5 <= String.length name
    && (String.sub name i 5 = ".tmp." || has (i + 1))
  in
  has 0

(* -- entry paths ---------------------------------------------------- *)

let version_dir root = Filename.concat root (Printf.sprintf "v%d" format_version)

let entry_path root ~kind key =
  Filename.concat
    (Filename.concat (version_dir root) kind)
    (Digest.to_hex (Digest.string key))

(* every plain file under <root>/v*/<kind>/ that is not an in-flight temp *)
let entries root =
  let acc = ref [] in
  let subdirs d =
    match Sys.readdir d with
    | names -> Array.to_list names
    | exception Sys_error _ -> []
  in
  List.iter
    (fun v ->
      let vdir = Filename.concat root v in
      if String.length v > 1 && v.[0] = 'v' && Sys.is_directory vdir then
        List.iter
          (fun kind ->
            let kdir = Filename.concat vdir kind in
            if Sys.is_directory kdir then
              List.iter
                (fun name ->
                  if is_tmp name then ()
                  else
                    let p = Filename.concat kdir name in
                    match Unix.stat p with
                  | { Unix.st_kind = Unix.S_REG; st_mtime; st_size; _ } ->
                      acc := (p, st_mtime, st_size) :: !acc
                  | _ -> ()
                  | exception Unix.Unix_error _ -> ())
                (subdirs kdir))
          (subdirs vdir))
    (subdirs root);
  !acc

let scanned_bytes root =
  List.fold_left (fun a (_, _, sz) -> a + sz) 0 (entries root)

(* footprint, scanning the directory once per configuration *)
let tracked_bytes root =
  let b = Atomic.get bytes_ref in
  if b >= 0 then b
  else
    Mutex.protect mu (fun () ->
        let b = Atomic.get bytes_ref in
        if b >= 0 then b
        else begin
          let b = scanned_bytes root in
          Atomic.set bytes_ref b;
          b
        end)

let bytes_used () =
  match dir () with None -> 0 | Some root -> tracked_bytes root

let add_bytes root delta =
  ignore (tracked_bytes root);
  ignore (Atomic.fetch_and_add bytes_ref delta : int);
  note_bytes ()

(* -- eviction ------------------------------------------------------- *)

(* oldest-first until within [max_bytes]; group age is the newest member
   so freshly completed multi-file entries are evicted last *)
let prune_dir ?(group = fun name -> name) ~max_bytes d =
  let files =
    match Sys.readdir d with
    | names ->
        Array.to_list names
        |> List.filter_map (fun name ->
               if is_tmp name then None
               else
                 let p = Filename.concat d name in
                 match Unix.stat p with
               | { Unix.st_kind = Unix.S_REG; st_mtime; st_size; _ } ->
                   Some (name, p, st_mtime, st_size)
               | _ -> None
               | exception Unix.Unix_error _ -> None)
    | exception Sys_error _ -> []
  in
  let total = List.fold_left (fun a (_, _, _, sz) -> a + sz) 0 files in
  if total <= max_bytes then 0
  else begin
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (name, p, mt, sz) ->
        let g = group name in
        let mt', sz', ps =
          Option.value (Hashtbl.find_opt tbl g) ~default:(neg_infinity, 0, [])
        in
        Hashtbl.replace tbl g (Float.max mt mt', sz + sz', p :: ps))
      files;
    let groups =
      Hashtbl.fold (fun _ g acc -> g :: acc) tbl []
      |> List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b)
    in
    let removed = ref 0 in
    let remaining = ref total in
    List.iter
      (fun (_, sz, ps) ->
        if !remaining > max_bytes then begin
          List.iter
            (fun p ->
              try
                Sys.remove p;
                incr removed
              with Sys_error _ -> ())
            ps;
          remaining := !remaining - sz
        end)
      groups;
    !removed
  end

(* whole-store GC: rescan (cheap relative to eviction, and immune to
   counter drift), evict oldest entries down to 3/4 of the budget so one
   overflow does not trigger a GC per store *)
let gc () =
  match dir () with
  | None -> 0
  | Some root ->
      Mutex.protect mu (fun () ->
          let budget = max_bytes () in
          let files = entries root in
          let total = List.fold_left (fun a (_, _, sz) -> a + sz) 0 files in
          Atomic.set bytes_ref total;
          if total <= budget then begin
            note_bytes ();
            0
          end
          else begin
            let files =
              List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) files
            in
            let target = budget * 3 / 4 in
            let removed = ref 0 in
            let remaining = ref total in
            List.iter
              (fun (p, _, sz) ->
                if !remaining > target then (
                  try
                    Sys.remove p;
                    remaining := !remaining - sz;
                    incr removed;
                    Stats.bump Stats.disk_evictions;
                    if Obs.Metrics.enabled () then
                      Obs.Metrics.incr (Lazy.force m_evictions)
                  with Sys_error _ -> ()))
              files;
            Atomic.set bytes_ref !remaining;
            note_bytes ();
            if Obs.Log.enabled Obs.Log.Info then begin
              let before = total and after = !remaining in
              Obs.Log.info "diskcache.gc"
                ~fields:(fun () ->
                  [
                    ("evicted", Obs.Int !removed);
                    ("bytes_before", Obs.Int before);
                    ("bytes_after", Obs.Int after);
                    ("budget", Obs.Int budget);
                  ])
            end;
            !removed
          end)

let clear () =
  match dir () with
  | None -> ()
  | Some root ->
      Mutex.protect mu (fun () ->
          List.iter
            (fun (p, _, _) -> try Sys.remove p with Sys_error _ -> ())
            (entries root);
          Atomic.set bytes_ref 0;
          note_bytes ())

(* -- entry access --------------------------------------------------- *)

let encode_entry ~kind key value =
  let b = Buffer.create (String.length value + String.length key + 64) in
  Buffer.add_string b magic;
  Wire.string b kind;
  Wire.string b key;
  Wire.string b value;
  Buffer.contents b

(* any malformation — short file, bad magic, foreign kind, digest
   collision — is [None]; never an exception *)
let decode_entry ~kind key bytes =
  let n = String.length magic in
  if String.length bytes < n || String.sub bytes 0 n <> magic then None
  else
    match
      let c = Wire.cursor ~pos:n bytes in
      let k = Wire.read_string c in
      let key' = Wire.read_string c in
      let v = Wire.read_string c in
      if Wire.at_end c then Some (k, key', v) else None
    with
    | Some (k, key', v) when String.equal k kind && String.equal key' key ->
        Some v
    | Some _ | None -> None
    | exception Wire.Malformed -> None

let find ~kind key =
  match dir () with
  | None -> None
  | Some root -> (
      Stats.bump Stats.disk_lookups;
      let path = entry_path root ~kind key in
      match read_file path with
      | None ->
          if Obs.Metrics.enabled () then
            Obs.Metrics.incr (Lazy.force m_misses);
          None
      | Some bytes -> (
          match decode_entry ~kind key bytes with
          | Some v ->
              Stats.bump Stats.disk_hits;
              if Obs.Metrics.enabled () then
                Obs.Metrics.incr (Lazy.force m_hits);
              (* refresh the entry's age so eviction approximates LRU *)
              (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
              Some v
          | None ->
              if Obs.Metrics.enabled () then
                Obs.Metrics.incr (Lazy.force m_misses);
              (* a readable file that fails to decode is a cache fault
                 (corruption or digest collision), not a routine miss *)
              if Obs.Log.enabled Obs.Log.Warn then
                Obs.Log.warn "diskcache.corrupt_entry"
                  ~fields:(fun () ->
                    [
                      ("kind", Obs.Str kind);
                      ("path", Obs.Str path);
                      ("bytes", Obs.Int (String.length bytes));
                    ]);
              None))

let store ~kind key value =
  match dir () with
  | None -> ()
  | Some root -> (
      let path = entry_path root ~kind key in
      mkdir_p (Filename.dirname path);
      let bytes = encode_entry ~kind key value in
      let before = file_size path in
      match write_atomic path bytes with
      | () ->
          Stats.bump Stats.disk_stores;
          add_bytes root (String.length bytes - before);
          if Atomic.get bytes_ref > max_bytes () then ignore (gc () : int)
      | exception Sys_error _ -> ())

let memo ~kind ~key ~encode ~decode f =
  if not (enabled ()) then f ()
  else
    let key = key () in
    let decoded =
      match find ~kind key with
      | None -> None
      | Some v -> (
          match decode (Wire.cursor v) with
          | r -> Some r
          | exception Wire.Malformed -> None)
    in
    match decoded with
    | Some r -> r
    | None ->
        let r = f () in
        store ~kind key (encode r);
        r
