(** Loop-nest synthesis from integer sets — the analogue of Kelly, Pugh and
    Rosser's multiple-mappings code generation used by the paper.

    Given one iteration set per statement (over a common tuple of loop
    variables) and a [context] of constraints already enforced by the
    enclosing scope, [gen] produces an AST of [do] loops, guards and
    statement leaves that enumerates each set in lexicographic order.

    Single-statement nests take the fast path: every constraint of the (one)
    conjunct becomes a loop bound or stride, so the generated loops carry no
    guards. Multi-statement nests share loops over the implied-constraint
    hull of the union and filter with per-statement guards placed at the
    innermost level — the paper's "guards not lifted" configuration, which
    avoids the code replication MM-CODEGEN otherwise performs (§5). Loop
    strides come from stride-like existentials; non-loop divisibility
    constraints become [k | e] guards. *)

exception Unsupported of string

(* ------------------------------------------------------------------ *)
(* Expressions and conditions                                          *)
(* ------------------------------------------------------------------ *)

type expr =
  | EInt of int
  | EVar of string
  | EAdd of expr * expr
  | ESub of expr * expr
  | EMul of int * expr
  | EFloorDiv of expr * int
  | ECeilDiv of expr * int
  | EMax of expr list
  | EMin of expr list
  | EAlignUp of expr * expr * expr
      (** [EAlignUp (e, target, k)]: smallest [x >= e] with [x ≡ target (mod k)];
          the modulus may be symbolic (virtual-processor strides). *)

type cond =
  | CTrue
  | CGeq0 of expr
  | CEq0 of expr
  | CDivides of int * expr
  | CAnd of cond list
  | COr of cond list
  | CNot of cond

type 'a ast =
  | AFor of { var : string; lo : expr; hi : expr; step : int; body : 'a ast list }
  | AIf of cond * 'a ast list
  | ALeaf of 'a

(* Smart constructors with constant folding. *)

let eint k = EInt k

let eadd a b =
  match (a, b) with
  | EInt x, EInt y -> EInt (x + y)
  | EInt 0, e | e, EInt 0 -> e
  | _ -> EAdd (a, b)

let esub a b =
  match (a, b) with
  | EInt x, EInt y -> EInt (x - y)
  | e, EInt 0 -> e
  | _ -> ESub (a, b)

let emul k e =
  match (k, e) with
  | 0, _ -> EInt 0
  | 1, e -> e
  | k, EInt x -> EInt (k * x)
  | _ -> EMul (k, e)

let efloordiv e k =
  assert (k > 0);
  match (e, k) with e, 1 -> e | EInt x, k -> EInt (Lin.fdiv x k) | _ -> EFloorDiv (e, k)

let eceildiv e k =
  assert (k > 0);
  match (e, k) with e, 1 -> e | EInt x, k -> EInt (Lin.cdiv x k) | _ -> ECeilDiv (e, k)

let emax = function
  | [] -> invalid_arg "emax: empty"
  | [ e ] -> e
  | es -> EMax es

let emin = function
  | [] -> invalid_arg "emin: empty"
  | [ e ] -> e
  | es -> EMin es

let cand = function [] -> CTrue | [ c ] -> c | cs -> CAnd cs

(* ------------------------------------------------------------------ *)
(* Lin -> expr                                                         *)
(* ------------------------------------------------------------------ *)

(** Convert a linear term to an expression; [name_of] maps tuple variables to
    loop-variable names. Raises [Unsupported] on existentials. *)
let expr_of_lin ~name_of lin =
  Lin.fold
    (fun v c acc ->
      match v with
      | Var.Ex _ -> raise (Unsupported "existential variable in generated expression")
      | Var.Param s -> eadd acc (emul c (EVar s))
      | Var.In i -> eadd acc (emul c (EVar (name_of i)))
      | Var.Out _ -> raise (Unsupported "output variable in generated expression"))
    lin
    (eint (Lin.constant lin))

(* ------------------------------------------------------------------ *)
(* Evaluation (used by the SPMD interpreter and the tests)             *)
(* ------------------------------------------------------------------ *)

let rec eval_expr env = function
  | EInt k -> k
  | EVar s -> env s
  | EAdd (a, b) -> eval_expr env a + eval_expr env b
  | ESub (a, b) -> eval_expr env a - eval_expr env b
  | EMul (k, e) -> k * eval_expr env e
  | EFloorDiv (e, k) -> Lin.fdiv (eval_expr env e) k
  | ECeilDiv (e, k) -> Lin.cdiv (eval_expr env e) k
  | EMax es -> List.fold_left (fun m e -> max m (eval_expr env e)) min_int es
  | EMin es -> List.fold_left (fun m e -> min m (eval_expr env e)) max_int es
  | EAlignUp (e, target, k) ->
      let x = eval_expr env e in
      x + Lin.pmod (eval_expr env target - x) (eval_expr env k)

let rec eval_cond env = function
  | CTrue -> true
  | CGeq0 e -> eval_expr env e >= 0
  | CEq0 e -> eval_expr env e = 0
  | CDivides (k, e) -> Lin.pmod (eval_expr env e) k = 0
  | CAnd cs -> List.for_all (eval_cond env) cs
  | COr cs -> List.exists (eval_cond env) cs
  | CNot c -> not (eval_cond env c)

(** Execute the AST: call [f tag bindings] for every statement instance, in
    emission order. [env] resolves parameters; loop variables shadow it.
    Loop direction follows the sign of the step: [step > 0] counts up while
    [!i <= hi], [step < 0] counts down while [!i >= hi]; a zero step is
    rejected rather than looping forever. *)
let run ~env ~f asts =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let lookup s = match Hashtbl.find_opt tbl s with Some v -> v | None -> env s in
  let rec go = function
    | ALeaf tag ->
        f tag (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
    | AIf (c, body) -> if eval_cond lookup c then List.iter go body
    | AFor { var; lo; hi; step; body } ->
        if step = 0 then invalid_arg "Codegen.run: zero loop step";
        let l = eval_expr lookup lo and h = eval_expr lookup hi in
        let i = ref l in
        while (if step > 0 then !i <= h else !i >= h) do
          Hashtbl.replace tbl var !i;
          List.iter go body;
          i := !i + step
        done;
        Hashtbl.remove tbl var
  in
  List.iter go asts

(** Number of statement instances the AST enumerates at a concrete
    parameter binding, i.e. the point count of the underlying set times
    any deliberate disjunct overlap — the compile-time evaluation of the
    paper's message-size loops. Avoids allocating the per-instance
    binding lists that {!run} builds for its callback. *)
let count_points ~env asts =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let lookup s = match Hashtbl.find_opt tbl s with Some v -> v | None -> env s in
  let n = ref 0 in
  let rec go = function
    | ALeaf _ -> incr n
    | AIf (c, body) -> if eval_cond lookup c then List.iter go body
    | AFor { var; lo; hi; step; body } ->
        if step = 0 then invalid_arg "Codegen.count_points: zero loop step";
        let l = eval_expr lookup lo and h = eval_expr lookup hi in
        let i = ref l in
        while (if step > 0 then !i <= h else !i >= h) do
          Hashtbl.replace tbl var !i;
          List.iter go body;
          i := !i + step
        done;
        Hashtbl.remove tbl var
  in
  List.iter go asts;
  !n

(* ------------------------------------------------------------------ *)
(* Interval analysis (bounds proofs for emitted kernels)               *)
(* ------------------------------------------------------------------ *)

type interval = { ilo : int option; ihi : int option }

let itv_top = { ilo = None; ihi = None }
let itv_const k = { ilo = Some k; ihi = Some k }
let itv ?lo ?hi () = { ilo = lo; ihi = hi }

let opt_map2 f a b = match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

let itv_add a b = { ilo = opt_map2 ( + ) a.ilo b.ilo; ihi = opt_map2 ( + ) a.ihi b.ihi }
let itv_sub a b = { ilo = opt_map2 ( - ) a.ilo b.ihi; ihi = opt_map2 ( - ) a.ihi b.ilo }

let itv_scale k a =
  if k = 0 then itv_const 0
  else if k > 0 then
    { ilo = Option.map (fun x -> k * x) a.ilo; ihi = Option.map (fun x -> k * x) a.ihi }
  else
    { ilo = Option.map (fun x -> k * x) a.ihi; ihi = Option.map (fun x -> k * x) a.ilo }

(* Monotone image for f with f(lo) <= f(hi) whenever lo <= hi. *)
let itv_mono f a = { ilo = Option.map f a.ilo; ihi = Option.map f a.ihi }

(* max of two intervals: the lower bound improves as soon as either side
   has one; the upper bound needs both. *)
let itv_max a b =
  let lo =
    match (a.ilo, b.ilo) with
    | Some x, Some y -> Some (max x y)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  { ilo = lo; ihi = opt_map2 max a.ihi b.ihi }

let itv_min a b =
  let hi =
    match (a.ihi, b.ihi) with
    | Some x, Some y -> Some (min x y)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  { ilo = opt_map2 min a.ilo b.ilo; ihi = hi }

(** Conservative integer interval of an expression under [env] (which must
    return {!itv_top} for unknown names). Used by the native engine to prove
    array subscripts in-range at lowering time so the emitted kernel can use
    unchecked accesses. *)
let rec interval_of_expr env = function
  | EInt k -> itv_const k
  | EVar s -> env s
  | EAdd (a, b) -> itv_add (interval_of_expr env a) (interval_of_expr env b)
  | ESub (a, b) -> itv_sub (interval_of_expr env a) (interval_of_expr env b)
  | EMul (k, e) -> itv_scale k (interval_of_expr env e)
  | EFloorDiv (e, k) -> itv_mono (fun x -> Lin.fdiv x k) (interval_of_expr env e)
  | ECeilDiv (e, k) -> itv_mono (fun x -> Lin.cdiv x k) (interval_of_expr env e)
  | EMax [] | EMin [] -> itv_top
  | EMax (e :: es) ->
      List.fold_left
        (fun acc e -> itv_max acc (interval_of_expr env e))
        (interval_of_expr env e) es
  | EMin (e :: es) ->
      List.fold_left
        (fun acc e -> itv_min acc (interval_of_expr env e))
        (interval_of_expr env e) es
  | EAlignUp (e, _target, k) -> (
      (* result = e + pmod (target - e) k, with pmod in [0, k-1] for k >= 1 *)
      let ie = interval_of_expr env e and ik = interval_of_expr env k in
      match ik.ilo with
      | Some klo when klo >= 1 -> (
          match ik.ihi with
          | Some khi -> { ilo = ie.ilo; ihi = Option.map (fun h -> h + khi - 1) ie.ihi }
          | None -> { ilo = ie.ilo; ihi = None })
      | _ -> itv_top)

let itv_within iv ~lo ~hi =
  match (iv.ilo, iv.ihi) with
  | Some l, Some h -> l >= lo && h <= hi
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Constraint classification                                           *)
(* ------------------------------------------------------------------ *)

(* Deepest input-variable index in a term; -1 if none. *)
let deepest lin =
  Lin.fold (fun v _ acc -> match v with Var.In i -> max acc i | _ -> acc) lin (-1)

type stride = { level : int; modulus : int; rest : Lin.t; vcoef : int }
(* A stride-like equality  vcoef·v_level + modulus·α + rest = 0  (α existential,
   |vcoef| = 1) — representable as a loop step; or, when vcoef = 0 or
   |vcoef| > 1, a divisibility guard on [rest']. *)

type window = { w_lows : (int * Lin.t) list; w_highs : (int * Lin.t) list }
(* ∃α: a_i·α >= l_i for all i, b_j·α <= u_j for all j (all a_i, b_j > 0):
   an integer α exists iff max_i ceil(l_i/a_i) <= min_j floor(u_j/b_j),
   which is directly expressible as a guard. Produced by set differences
   and inexact projections (e.g. pipelined participation sets). *)

(* Classify a conjunct: returns (plain ex-free constraints, strides,
   windows). Raises [Unsupported] on other existential shapes. *)
let classify conj =
  let cs = Conj.constraints conj in
  let exvars = Var.Set.filter Var.is_ex (Conj.vars conj) in
  let strides = ref [] in
  let windows = ref [] in
  let consumed = ref [] in
  let only_ex a lin =
    Var.Set.for_all
      (fun v -> (not (Var.is_ex v)) || Var.equal v a)
      (Lin.vars lin)
  in
  Var.Set.iter
    (fun a ->
      match List.filter (Constr.mem a) cs with
      | [ c ] when Constr.kind c = Constr.Eq ->
          let lin = Constr.lin c in
          if not (only_ex a lin) then
            raise (Unsupported "coupled existentials in code generation");
          let m = abs (Lin.coeff lin a) in
          let rest = Lin.drop a lin in
          (* m·α ± ... : rest ≡ 0 (mod m). Find the deepest variable in rest;
             if it has unit coefficient the stride can drive that loop. *)
          let d = deepest rest in
          let vc = if d >= 0 then Lin.coeff rest (Var.In d) else 0 in
          strides := { level = d; modulus = m; rest; vcoef = vc } :: !strides;
          consumed := c :: !consumed
      | occs when List.for_all (fun c -> Constr.kind c = Constr.Geq) occs ->
          (* α bounded by inequalities only: collect lower/upper bounds *)
          let lows = ref [] and highs = ref [] in
          List.iter
            (fun c ->
              if not (only_ex a (Constr.lin c)) then
                raise (Unsupported "coupled existentials in code generation");
              let k = Constr.coeff c a in
              let rest = Lin.drop a (Constr.lin c) in
              if k > 0 then
                (* k·α + rest >= 0 -> k·α >= -rest *)
                lows := (k, Lin.neg rest) :: !lows
              else highs := (-k, rest) :: !highs;
              consumed := c :: !consumed)
            occs;
          if !lows <> [] && !highs <> [] then
            windows := { w_lows = !lows; w_highs = !highs } :: !windows
          (* one-sided: vacuous, constraints dropped *)
      | _ -> raise (Unsupported "non-stride existential in code generation"))
    exvars;
  let plain =
    List.filter
      (fun c ->
        (not (List.memq c !consumed))
        && not (Lin.exists_var Var.is_ex (Constr.lin c)))
      cs
  in
  (plain, List.rev !strides, List.rev !windows)

(* Lower/upper bound expressions for variable [v_d] from a Geq constraint. *)
type bound = Lower of expr | Upper of expr | NotBound

let bound_of ~name_of d c =
  match Constr.kind c with
  | Constr.Eq -> NotBound
  | Constr.Geq ->
      let lin = Constr.lin c in
      let a = Lin.coeff lin (Var.In d) in
      if a = 0 then NotBound
      else
        let rest = Lin.drop (Var.In d) lin in
        if a > 0 then
          (* a·v + rest >= 0  =>  v >= ceil(−rest / a) *)
          Lower (eceildiv (expr_of_lin ~name_of (Lin.neg rest)) a)
        else Upper (efloordiv (expr_of_lin ~name_of rest) (-a))

let cond_of_constr ~name_of c =
  let e = expr_of_lin ~name_of (Constr.lin c) in
  match Constr.kind c with Constr.Eq -> CEq0 e | Constr.Geq -> CGeq0 e

let cond_of_stride ~name_of (s : stride) =
  CDivides (s.modulus, expr_of_lin ~name_of s.rest)

let cond_of_window ~name_of (w : window) =
  CGeq0
    (esub
       (emin (List.map (fun (b, u) -> efloordiv (expr_of_lin ~name_of u) b) w.w_highs))
       (emax (List.map (fun (a, l) -> eceildiv (expr_of_lin ~name_of l) a) w.w_lows)))

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

type 'a stmt = { tag : 'a; dom : Rel.t }

type classified = {
  plain : Constr.t list;
  strides : stride list;
  windows : window list;
}

type 'a item = {
  tag_ : 'a;
  cls : classified;
  excl : classified list;
      (* earlier overlapping pieces of the same statement: a point fires
         this piece only if it matches no earlier piece (runtime
         first-match replaces set-level disjointification) *)
}

(* Split constraints of an item by deepest level. *)
let at_level d cs = List.partition (fun c -> deepest (Constr.lin c) = d) cs

let strides_at_level d ss = List.partition (fun s -> s.level = d) ss

(* Membership condition of a classified conjunct, for runtime exclusion. *)
let cond_of_classified ~name_of (c : classified) =
  cand
    (List.map (cond_of_constr ~name_of) c.plain
    @ List.map (cond_of_stride ~name_of) c.strides
    @ List.map (cond_of_window ~name_of) c.windows)

let excl_conds ~name_of excl =
  List.map (fun prior -> CNot (cond_of_classified ~name_of prior)) excl

(* Fast path: a single conjunct enumerated exactly, constraints become
   bounds and strides become steps; no guards except divisibility windows
   and first-match exclusions at the leaf. [tags] are the statements to
   emit, in order, at each enumerated point. *)
let rec gen_single ~names ~context_conj ~k ~tags level (it : unit item) : 'a ast list =
  let name_of i = names.(i) in
  if level = k then begin
    (* remaining constraints involve no loop vars deeper than k: they were
       either consumed or are invariant; emit them as a guard. *)
    let conds =
      List.map (cond_of_constr ~name_of) it.cls.plain
      @ List.map (cond_of_stride ~name_of) it.cls.strides
      @ List.map (cond_of_window ~name_of) it.cls.windows
      @ excl_conds ~name_of it.excl
    in
    let leaves = List.map (fun t -> ALeaf t) tags in
    match conds with [] -> leaves | cs -> [ AIf (cand cs, leaves) ]
  end
  else begin
    let here, rest = at_level level it.cls.plain in
    let strides_here, strides_rest = strides_at_level level it.cls.strides in
    let lbs, ubs, guards =
      List.fold_left
        (fun (lbs, ubs, gs) c ->
          match Constr.kind c with
          | Constr.Eq ->
              let lin = Constr.lin c in
              let a = Lin.coeff lin (Var.In level) in
              let rest = Lin.drop (Var.In level) lin in
              (* a·v + rest = 0  =>  v = −rest/a *)
              let num =
                expr_of_lin ~name_of (if a > 0 then Lin.neg rest else rest)
              in
              let a = abs a in
              (eceildiv num a :: lbs, efloordiv num a :: ubs, gs)
          | Constr.Geq -> (
              match bound_of ~name_of level c with
              | Lower e -> (e :: lbs, ubs, gs)
              | Upper e -> (lbs, e :: ubs, gs)
              | NotBound -> (lbs, ubs, c :: gs)))
        ([], [], []) here
    in
    assert (guards = []);
    (* fall back on context bounds when the set leaves a side open *)
    let ctx_bounds side =
      List.filter_map
        (fun c ->
          if deepest (Constr.lin c) <> level then None
          else
            match bound_of ~name_of level c with
            | Lower e when side = `Lo -> Some e
            | Upper e when side = `Hi -> Some e
            | _ -> None)
        (Conj.constraints context_conj)
    in
    let lbs = if lbs = [] then ctx_bounds `Lo else lbs in
    let ubs = if ubs = [] then ctx_bounds `Hi else ubs in
    if lbs = [] || ubs = [] then
      raise (Unsupported (Printf.sprintf "unbounded loop variable %s" names.(level)));
    (* steps from stride-like existentials on this level *)
    let step, lo, extra_guards =
      match strides_here with
      | [ st ] when abs st.vcoef = 1 && deepest (Lin.drop (Var.In st.level) st.rest) < level ->
          (* vcoef·v + rest' ≡ 0 (mod m): v ≡ −vcoef·rest' (mod m) *)
          let rest' = Lin.drop (Var.In level) st.rest in
          let target = expr_of_lin ~name_of (Lin.scale (-st.vcoef) rest') in
          (st.modulus, EAlignUp (emax lbs, target, EInt st.modulus), [])
      | ss -> (1, emax lbs, List.map (cond_of_stride ~name_of) ss)
    in
    let body =
      gen_single ~names ~context_conj ~k ~tags (level + 1)
        { it with cls = { it.cls with plain = rest; strides = strides_rest } }
    in
    let body = match extra_guards with [] -> body | gs -> [ AIf (cand gs, body) ] in
    [ AFor { var = names.(level); lo; hi = emin ubs; step; body } ]
  end

(* One conjunct as its own exact nest, invariant constraints lifted to a
   top-level guard. *)
let gen_piece ~names ~context_conj ~k ~tags (it : unit item) : 'a ast list =
  let inv, rest = List.partition (fun c -> deepest (Constr.lin c) < 0) it.cls.plain in
  let inv_s, rest_s = List.partition (fun st -> deepest st.rest < 0) it.cls.strides in
  let nest =
    gen_single ~names ~context_conj ~k ~tags 0
      { it with cls = { it.cls with plain = rest; strides = rest_s } }
  in
  let name_of i = names.(i) in
  let conds =
    List.map (cond_of_constr ~name_of) inv @ List.map (cond_of_stride ~name_of) inv_s
  in
  if conds = [] then nest else [ AIf (cand conds, nest) ]

(* General path: shared hull loops, per-item guards at the leaves.

   Hull bounds are computed lazily: constraints shared syntactically by
   every conjunct are free; the Omega-backed entailment test runs only for
   a loop level whose lower or upper bound is otherwise missing. Residual
   leaf guards keep the enumeration exact either way. *)
let gen_multi ~names ~context_conj ~k (items : 'a item list) : 'a ast list =
  let name_of i = names.(i) in
  let conjs = List.map (fun it -> Conj.make ~n_ex:0 it.cls.plain) items in
  let syn_implied =
    Hull.implied_constraints ~syntactic_only:true ~context:context_conj conjs
  in
  let exact_implied =
    lazy (Hull.implied_constraints ~context:context_conj conjs)
  in
  (* Expand equalities into inequality pairs so they can serve as bounds. *)
  let expand c =
    match Constr.kind c with
    | Constr.Geq -> [ c ]
    | Constr.Eq -> [ Constr.geq (Constr.lin c); Constr.geq (Lin.neg (Constr.lin c)) ]
  in
  let syn_ineqs = List.concat_map expand syn_implied in
  (* invariant (loop-variable-free) constraints shared by every item cannot
     become loop bounds and are filtered out of the leaf residuals, so they
     must guard the whole nest *)
  let inv_conds =
    List.filter_map
      (fun c ->
        if deepest (Constr.lin c) < 0 then Some (cond_of_constr ~name_of c) else None)
      syn_implied
  in
  let rec build level =
    if level = k then
      List.concat_map
        (fun it ->
          let residual =
            List.filter
              (fun c -> not (List.exists (Constr.equal c) syn_implied))
              it.cls.plain
          in
          let conds =
            List.map (cond_of_constr ~name_of) residual
            @ List.map (cond_of_stride ~name_of) it.cls.strides
            @ List.map (cond_of_window ~name_of) it.cls.windows
            @ excl_conds ~name_of it.excl
          in
          match conds with
          | [] -> [ ALeaf it.tag_ ]
          | cs -> [ AIf (cand cs, [ ALeaf it.tag_ ]) ])
        items
    else begin
      let collect cs side =
        List.filter_map
          (fun c ->
            if deepest (Constr.lin c) <> level then None
            else
              match bound_of ~name_of level c with
              | Lower e when side = `Lo -> Some e
              | Upper e when side = `Hi -> Some e
              | _ -> None)
          cs
      in
      let pick side =
        match collect syn_ineqs side with
        | [] -> (
            match collect (Conj.constraints context_conj) side with
            | [] -> collect (List.concat_map expand (Lazy.force exact_implied)) side
            | bs -> bs)
        | bs -> bs
      in
      let lbs = pick `Lo and ubs = pick `Hi in
      if lbs = [] || ubs = [] then
        raise (Unsupported (Printf.sprintf "unbounded loop variable %s" names.(level)));
      [ AFor { var = names.(level); lo = emax lbs; hi = emin ubs; step = 1; body = build (level + 1) } ]
    end
  in
  match inv_conds with [] -> build 0 | cs -> [ AIf (cand cs, build 0) ]

(** Generate loop nests that enumerate every statement's iteration set in
    lexicographic order (statements in list order within an iteration).
    All [dom]s must be sets of the same arity over the variables named by
    [names]; [context] holds constraints already enforced by the enclosing
    scope (the paper's [Known] argument).

    Overlapping disjuncts of one statement are resolved by first-match
    exclusion guards evaluated at run time (pass [~disjoint:false] to allow
    re-enumeration instead, for idempotent statements such as packing). *)
let gen ?context ?(disjoint = true) ?(order = `Lex) ~names (stmts : 'a stmt list) :
    'a ast list =
  let k = Array.length names in
  let context_conj =
    match context with
    | None -> Conj.true_
    | Some ctx -> (
        match Rel.conjuncts ctx with
        | [ c ] -> c
        | [] -> Conj.true_
        | _ -> Conj.true_)
  in
  let classify_dom dom =
    let dom = Rel.coalesce dom in
    List.map
      (fun conj ->
        let plain, strides, windows = classify conj in
        { plain; strides; windows })
      (Rel.conjuncts dom)
  in
  (* piecewise generation: each disjunct becomes its own exact nest (bounds
     instead of hull-plus-guards); earlier pieces are excluded at run time.
     Legal only when the caller does not need lexicographic interleaving
     across pieces. Requires all statements to share one domain. *)
  let shared_dom =
    match stmts with
    | [] -> None
    | [ s ] -> Some s.dom
    | s0 :: rest -> if List.for_all (fun s -> s.dom == s0.dom) rest then Some s0.dom else None
  in
  match (order, shared_dom) with
  | `Any, Some dom ->
      let tags = List.map (fun s -> s.tag) stmts in
      let classifieds = classify_dom dom in
      List.concat
        (List.mapi
           (fun i cls ->
             let excl =
               if disjoint && i > 0 then List.filteri (fun j _ -> j < i) classifieds
               else []
             in
             gen_piece ~names ~context_conj ~k ~tags { tag_ = (); cls; excl })
           classifieds)
  | _ ->
      let items =
        List.concat_map
          (fun { tag; dom } ->
            if Rel.in_arity dom <> k || not (Rel.is_set dom) then
              invalid_arg "Codegen.gen: statement domain arity mismatch";
            let classifieds = classify_dom dom in
            List.mapi
              (fun i cls ->
                let excl =
                  if disjoint && i > 0 then List.filteri (fun j _ -> j < i) classifieds
                  else []
                in
                { tag_ = tag; cls; excl })
              classifieds)
          stmts
      in
      (match items with
      | [] -> []
      | [ it ] ->
          gen_piece ~names ~context_conj ~k ~tags:[ it.tag_ ]
            { tag_ = (); cls = it.cls; excl = it.excl }
      | items -> gen_multi ~names ~context_conj ~k items)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp_expr fmt = function
  | EInt k -> Fmt.int fmt k
  | EVar s -> Fmt.string fmt s
  | EAdd (a, b) -> Fmt.pf fmt "%a + %a" pp_expr a pp_expr b
  | ESub (a, b) -> Fmt.pf fmt "%a - %a" pp_expr a pp_paren b
  | EMul (k, e) -> Fmt.pf fmt "%d*%a" k pp_paren e
  | EFloorDiv (e, k) -> Fmt.pf fmt "floor(%a, %d)" pp_expr e k
  | ECeilDiv (e, k) -> Fmt.pf fmt "ceil(%a, %d)" pp_expr e k
  | EMax es -> Fmt.pf fmt "max(%a)" Fmt.(list ~sep:comma pp_expr) es
  | EMin es -> Fmt.pf fmt "min(%a)" Fmt.(list ~sep:comma pp_expr) es
  | EAlignUp (e, t, k) -> Fmt.pf fmt "alignup(%a, %a, %a)" pp_expr e pp_expr t pp_expr k

and pp_paren fmt e =
  match e with
  | EAdd _ | ESub _ -> Fmt.pf fmt "(%a)" pp_expr e
  | _ -> pp_expr fmt e

let rec pp_cond fmt = function
  | CTrue -> Fmt.string fmt ".true."
  | CGeq0 e -> Fmt.pf fmt "%a >= 0" pp_expr e
  | CEq0 e -> Fmt.pf fmt "%a == 0" pp_expr e
  | CDivides (k, e) -> Fmt.pf fmt "mod(%a, %d) == 0" pp_expr e k
  | CAnd cs -> Fmt.(list ~sep:(any " .and. ") pp_cond_paren) fmt cs
  | COr cs -> Fmt.(list ~sep:(any " .or. ") pp_cond_paren) fmt cs
  | CNot c -> Fmt.pf fmt ".not. %a" pp_cond_paren c

and pp_cond_paren fmt c =
  match c with
  | CAnd _ | COr _ | CNot _ -> Fmt.pf fmt "(%a)" pp_cond c
  | _ -> pp_cond fmt c

let rec pp_ast pp_tag fmt ?(indent = 0) ast =
  let pad = String.make indent ' ' in
  match ast with
  | AFor { var; lo; hi; step; body } ->
      if step = 1 then Fmt.pf fmt "%sdo %s = %a, %a@." pad var pp_expr lo pp_expr hi
      else Fmt.pf fmt "%sdo %s = %a, %a, %d@." pad var pp_expr lo pp_expr hi step;
      List.iter (pp_ast pp_tag fmt ~indent:(indent + 2)) body;
      Fmt.pf fmt "%senddo@." pad
  | AIf (c, body) ->
      Fmt.pf fmt "%sif (%a) then@." pad pp_cond c;
      List.iter (pp_ast pp_tag fmt ~indent:(indent + 2)) body;
      Fmt.pf fmt "%sendif@." pad
  | ALeaf tag -> Fmt.pf fmt "%s%a@." pad pp_tag tag

let ast_to_string pp_tag asts =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt 400;
  List.iter (pp_ast pp_tag fmt ~indent:0) asts;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Sound over-approximation                                            *)
(* ------------------------------------------------------------------ *)

(* Is the existential [a] in a shape classify can handle? *)
let ex_shape_ok cs a =
  let occs = List.filter (Constr.mem a) cs in
  let only_ex lin =
    Var.Set.for_all (fun v -> (not (Var.is_ex v)) || Var.equal v a) (Lin.vars lin)
  in
  match occs with
  | [ c ] when Constr.kind c = Constr.Eq -> only_ex (Constr.lin c)
  | occs ->
      List.for_all
        (fun c -> Constr.kind c = Constr.Geq && only_ex (Constr.lin c))
        occs

(** Sound over-approximation of a set: drop every constraint involving an
    existential that does not fit the stride/window classification (removing
    constraints only enlarges the set). Intermediate iteration-demand sets
    may be enlarged freely — deeper loop levels and leaf guards re-restrict
    — so this keeps code generation total on projections that exact
    simplification cannot decouple. *)
let approx (r : Rel.t) : Rel.t =
  let fix_conj conj =
    let rec go conj =
      let cs = Conj.constraints conj in
      let bad =
        Var.Set.filter
          (fun v -> Var.is_ex v && not (ex_shape_ok cs v))
          (Conj.vars conj)
      in
      if Var.Set.is_empty bad then conj
      else
        let cs' =
          List.filter
            (fun c ->
              not (Var.Set.exists (fun v -> Constr.mem v c) bad))
            cs
        in
        go (Conj.make ~n_ex:(Conj.n_ex conj) cs')
    in
    Conj.compact_ex (go conj)
  in
  Rel.make ~in_names:(Rel.in_names r) ~out_names:(Rel.out_names r)
    ~in_ar:(Rel.in_arity r) ~out_ar:(Rel.out_arity r)
    (List.map fix_conj (Rel.conjuncts r))
