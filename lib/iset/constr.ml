(** Atomic constraints over linear terms: [t = 0] or [t >= 0]. *)

type kind = Eq | Geq

type t = { kind : kind; lin : Lin.t }

let eq lin = { kind = Eq; lin }
let geq lin = { kind = Geq; lin }

(** [a <= b] as a constraint: b - a >= 0. *)
let le a b = geq (Lin.sub b a)

(** [a = b]. *)
let equal_terms a b = eq (Lin.sub a b)

let kind c = c.kind
let lin c = c.lin

let compare a b =
  if a == b then 0
  else
    match (a.kind, b.kind) with
    | Eq, Geq -> -1
    | Geq, Eq -> 1
    | _ -> Lin.compare a.lin b.lin

let equal a b = a == b || compare a b = 0

let hash c = (Lin.hash c.lin * 2) + (match c.kind with Eq -> 0 | Geq -> 1)

module Tbl = Hcons.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end) ()

let () = Tbl.register_gauge "interned constraints"

(* Interning a constraint also interns its term, so structurally equal
   constraints share their whole subtree and compare by pointer. *)
let intern c = fst (Tbl.intern { c with lin = Lin.intern c.lin })
let id c = snd (Tbl.intern { c with lin = Lin.intern c.lin })

(* canonical byte codec: one kind character, then the term *)
let wire_put b c =
  Wire.char b (match c.kind with Eq -> '=' | Geq -> '>');
  Lin.wire_put b c.lin

let wire_read cur =
  let kind =
    match Wire.read_char cur with
    | '=' -> Eq
    | '>' -> Geq
    | _ -> raise Wire.Malformed
  in
  { kind; lin = Lin.wire_read cur }

let mem v c = Lin.mem v c.lin
let coeff c v = Lin.coeff c.lin v

type norm = Tauto | Contra | Ok of t

(** Canonicalize: divide by the gcd of variable coefficients; for [Geq] the
    constant is floored (integer tightening), for [Eq] non-divisibility means
    the constraint (hence the conjunct) is unsatisfiable. Equalities are
    sign-normalized so the leading coefficient is positive. *)
let normalize c =
  if Lin.is_const c.lin then
    let k = Lin.constant c.lin in
    match c.kind with
    | Eq -> if k = 0 then Tauto else Contra
    | Geq -> if k >= 0 then Tauto else Contra
  else
    let g = Lin.coeff_gcd c.lin in
    let lin =
      if g <= 1 then c.lin
      else
        match c.kind with
        | Geq ->
            let scaled =
              Lin.fold (fun v cf acc -> Lin.add acc (Lin.var ~coef:(cf / g) v)) c.lin Lin.zero
            in
            Lin.add_const (Lin.fdiv (Lin.constant c.lin) g) scaled
        | Eq ->
            if Lin.constant c.lin mod g <> 0 then Lin.const 1 (* marker: unsat *)
            else
              let scaled =
                Lin.fold (fun v cf acc -> Lin.add acc (Lin.var ~coef:(cf / g) v)) c.lin Lin.zero
              in
              Lin.add_const (Lin.constant c.lin / g) scaled
    in
    if c.kind = Eq && Lin.is_const lin then Contra
    else
      let lin =
        if c.kind = Eq then
          (* make the smallest variable's coefficient positive for canonical form *)
          match Var.Map.min_binding_opt lin.Lin.coeffs with
          | Some (_, cf) when cf < 0 -> Lin.neg lin
          | _ -> lin
        else lin
      in
      Ok { c with lin }

let subst v rhs c = { c with lin = Lin.subst v rhs c.lin }

let map_lin f c = { c with lin = f c.lin }

(** Negation of a single constraint, as a disjunction of constraints.
    [not (t >= 0)] is [-t - 1 >= 0]; [not (t = 0)] is [t - 1 >= 0 \/ -t - 1 >= 0]. *)
let negate c =
  match c.kind with
  | Geq -> [ geq (Lin.add_const (-1) (Lin.neg c.lin)) ]
  | Eq ->
      [ geq (Lin.add_const (-1) c.lin); geq (Lin.add_const (-1) (Lin.neg c.lin)) ]

let pp ?pp_var fmt c =
  match c.kind with
  | Eq -> Fmt.pf fmt "%a = 0" (Lin.pp ?pp_var) c.lin
  | Geq -> Fmt.pf fmt "%a >= 0" (Lin.pp ?pp_var) c.lin

let to_string c = Fmt.str "%a" (pp ?pp_var:None) c
