(** Variables occurring in integer-set formulas.

    A relation constrains an input tuple ([In i]) and an output tuple
    ([Out i]); a set uses only [In]. [Param] names a free symbolic constant
    (array extent, processor id, enclosing loop index at a vectorization
    level, ...). [Ex] is an existentially quantified variable local to one
    conjunct; ids are dense within the conjunct that owns them. *)

type t =
  | In of int
  | Out of int
  | Param of string
  | Ex of int

let compare a b =
  let tag = function In _ -> 0 | Out _ -> 1 | Param _ -> 2 | Ex _ -> 3 in
  match (a, b) with
  | In i, In j | Out i, Out j | Ex i, Ex j -> Int.compare i j
  | Param s, Param t -> String.compare s t
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let hash = function
  | In i -> (i * 4) + 0
  | Out i -> (i * 4) + 1
  | Param s -> (Hashtbl.hash s * 4) + 2
  | Ex i -> (i * 4) + 3

let is_ex = function Ex _ -> true | _ -> false
let is_param = function Param _ -> true | _ -> false
let is_tuple = function In _ | Out _ -> true | _ -> false

(* canonical byte codec (see {!Wire}): one tag character plus payload *)
let wire_put b = function
  | In i ->
      Wire.char b 'i';
      Wire.int b i
  | Out i ->
      Wire.char b 'o';
      Wire.int b i
  | Param s ->
      Wire.char b 'p';
      Wire.string b s
  | Ex i ->
      Wire.char b 'e';
      Wire.int b i

let wire_read c =
  match Wire.read_char c with
  | 'i' -> In (Wire.read_int c)
  | 'o' -> Out (Wire.read_int c)
  | 'p' -> Param (Wire.read_string c)
  | 'e' -> Ex (Wire.read_int c)
  | _ -> raise Wire.Malformed

let pp fmt = function
  | In i -> Fmt.pf fmt "$in%d" i
  | Out i -> Fmt.pf fmt "$out%d" i
  | Param s -> Fmt.string fmt s
  | Ex i -> Fmt.pf fmt "$a%d" i

let to_string v = Fmt.str "%a" pp v

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)
