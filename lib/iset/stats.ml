(** Counters for the hash-consing / memoization layer.

    Counters are monotone within a measurement window; {!reset} starts a new
    window (cache contents are untouched — hits after a reset still count).
    Gauges report live state (interned-node counts, cache sizes) and are
    registered by the owning table at creation time. *)

type counter = { c_name : string; mutable c_count : int }

let counters : counter list ref = ref []

let counter name =
  let c = { c_name = name; c_count = 0 } in
  counters := c :: !counters;
  c

let bump c = c.c_count <- c.c_count + 1

let gauges : (string * (unit -> int)) list ref = ref []

let register_gauge name f = gauges := (name, f) :: !gauges

(* -- the counters of the iset engine, in reporting order -- *)

let sat_lookups = counter "sat lookups"
let sat_hits = counter "sat hits"
let sat_prefilter_kills = counter "sat pre-filter kills"
let simplify_lookups = counter "simplify lookups"
let simplify_hits = counter "simplify hits"
let gist_lookups = counter "gist lookups"
let gist_hits = counter "gist hits"
let implies_lookups = counter "implies lookups"
let implies_hits = counter "implies hits"
let subset_lookups = counter "subset lookups"
let subset_hits = counter "subset hits"
let evictions = counter "cache evictions"

let reset () = List.iter (fun c -> c.c_count <- 0) !counters

let report () =
  List.rev_map (fun c -> (c.c_name, c.c_count)) !counters
  @ List.rev_map (fun (n, f) -> (n, f ())) !gauges

let hit_rate ~lookups ~hits =
  if lookups.c_count = 0 then 0.0
  else float_of_int hits.c_count /. float_of_int lookups.c_count

let count c = c.c_count

let pp fmt () =
  List.iter (fun (n, v) -> Fmt.pf fmt "  %-28s %10d@." n v) (report ())
