(** Counters for the hash-consing / memoization layer.

    Counters are monotone within a measurement window; {!reset} starts a new
    window (cache contents are untouched — hits after a reset still count).
    Gauges report live state (interned-node counts, cache sizes) and are
    registered by the owning table at creation time.

    Counts live in [Atomic.t] cells so bumps from parallel compiler phases
    never race or lose increments; a counter read is a plain atomic load, so
    totals observed after a join are exact. *)

type counter = { c_name : string; c_count : int Atomic.t }

let registry_mu = Mutex.create ()
let counters : counter list ref = ref []

let counter name =
  let c = { c_name = name; c_count = Atomic.make 0 } in
  Mutex.protect registry_mu (fun () -> counters := c :: !counters);
  c

let bump c = ignore (Atomic.fetch_and_add c.c_count 1 : int)

let gauges : (string * (unit -> int)) list ref = ref []

let register_gauge name f =
  Mutex.protect registry_mu (fun () -> gauges := (name, f) :: !gauges)

(* -- the counters of the iset engine, in reporting order -- *)

let sat_lookups = counter "sat lookups"
let sat_hits = counter "sat hits"
let sat_prefilter_kills = counter "sat pre-filter kills"
let simplify_lookups = counter "simplify lookups"
let simplify_hits = counter "simplify hits"
let gist_lookups = counter "gist lookups"
let gist_hits = counter "gist hits"
let implies_lookups = counter "implies lookups"
let implies_hits = counter "implies hits"
let subset_lookups = counter "subset lookups"
let subset_hits = counter "subset hits"
let evictions = counter "cache evictions"
let disk_lookups = counter "disk lookups"
let disk_hits = counter "disk hits"
let disk_stores = counter "disk stores"
let disk_evictions = counter "disk evictions"

let reset () = List.iter (fun c -> Atomic.set c.c_count 0) !counters

let report () =
  List.rev_map (fun c -> (c.c_name, Atomic.get c.c_count)) !counters
  @ List.rev_map (fun (n, f) -> (n, f ())) !gauges

let hit_rate ~lookups ~hits =
  if Atomic.get lookups.c_count = 0 then 0.0
  else
    float_of_int (Atomic.get hits.c_count)
    /. float_of_int (Atomic.get lookups.c_count)

let count c = Atomic.get c.c_count

let pp fmt () =
  List.iter (fun (n, v) -> Fmt.pf fmt "  %-28s %10d@." n v) (report ())
