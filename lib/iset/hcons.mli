(** Hash-consing (interning) tables with stable, never-reused integer ids.

    The generative functor creates one bounded table (clear-on-full, bound
    shared via {!Cache.capacity}) whose clear hook is registered with
    {!Cache}. Ids are monotone across clears, which makes id-keyed memo
    tables invalidation-free. *)

module Make (H : Hashtbl.HashedType) () : sig
  val intern : H.t -> H.t * int
  (** Canonical representative and stable id; the first interning of a value
      makes it the representative. *)

  val id : H.t -> int

  val size : unit -> int
  val register_gauge : string -> unit
  (** Publish the live node count under the given name in {!Stats}. *)
end
