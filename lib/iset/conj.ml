(** Conjuncts: a conjunction of affine constraints together with a block of
    existentially quantified variables.

    This module carries the heart of the framework: constraint normalization,
    Pugh's exact equality elimination (including the symmetric-modulus
    coefficient-reduction step), exact and inexact Fourier-Motzkin
    elimination, the Omega satisfiability test (real shadow / dark shadow /
    splinters), negation of conjuncts (exact, provided residual existentials
    are stride-like), and gist. *)

exception Inexact_negation

type t = { n_ex : int; cs : Constr.t list }

let true_ = { n_ex = 0; cs = [] }

let make ~n_ex cs = { n_ex; cs }

let constraints t = t.cs
let n_ex t = t.n_ex

let add t cs = { t with cs = cs @ t.cs }

let fresh_ex t = ({ t with n_ex = t.n_ex + 1 }, Var.Ex t.n_ex)

let map_lin f t = { t with cs = List.map (Constr.map_lin f) t.cs }

let subst v rhs t = map_lin (Lin.subst v rhs) t

(** All variables occurring in the conjunct. *)
let vars t =
  List.fold_left
    (fun acc c -> Var.Set.union acc (Lin.vars (Constr.lin c)))
    Var.Set.empty t.cs

let mem_var v t = List.exists (Constr.mem v) t.cs

(** Shift every existential id by [offset]. *)
let shift_ex offset t =
  if offset = 0 then t
  else
    let f = function Var.Ex i -> Var.Ex (i + offset) | v -> v in
    { n_ex = t.n_ex + offset; cs = List.map (Constr.map_lin (Lin.map_vars f)) t.cs }

(** Conjunction of two conjuncts (renaming [b]'s existentials apart). *)
let meet a b =
  let b = shift_ex a.n_ex b in
  { n_ex = b.n_ex; cs = a.cs @ b.cs }

(** Renumber existentials densely and drop unused ids. *)
let compact_ex t =
  let used =
    Var.Set.filter Var.is_ex (vars t) |> Var.Set.elements
    |> List.map (function Var.Ex i -> i | _ -> assert false)
    |> List.sort Int.compare
  in
  let tbl = Hashtbl.create 8 in
  List.iteri (fun fresh old -> Hashtbl.replace tbl old fresh) used;
  let f = function
    | Var.Ex i -> Var.Ex (Hashtbl.find tbl i)
    | v -> v
  in
  { n_ex = List.length used; cs = List.map (Constr.map_lin (Lin.map_vars f)) t.cs }

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

let equal a b = a == b || (a.n_ex = b.n_ex && List.equal Constr.equal a.cs b.cs)

let hash t =
  List.fold_left (fun acc c -> (acc * 31) + Constr.hash c) (t.n_ex + 1) t.cs
  land max_int

module Tbl = Hcons.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end) ()

let () = Tbl.register_gauge "interned conjuncts"

(* Interning a conjunct interns its constraints (and their terms), so equal
   conjuncts share the whole subtree and the physical-equality fast paths in
   [Constr.equal] / [Lin.compare] fire on every later comparison. *)
let intern_pair t = Tbl.intern { t with cs = List.map Constr.intern t.cs }
let intern t = fst (intern_pair t)
let id t = snd (intern_pair t)

(* canonical byte codec: the existential count, then the constraints in
   list order (the order is part of structural identity, exactly as in
   [equal]/[hash]) *)
let wire_put b t =
  Wire.int b t.n_ex;
  Wire.list Constr.wire_put b t.cs

let wire_read c =
  let n_ex = Wire.read_int c in
  if n_ex < 0 then raise Wire.Malformed;
  { n_ex; cs = Wire.read_list Constr.wire_read c }

(* disk-layer codec plumbing: content keys for the persistent cache
   beneath the memo tables (see {!Diskcache}); interned ids never appear
   in these bytes *)
let wire_of_conj t =
  let b = Buffer.create 128 in
  wire_put b t;
  Buffer.contents b

let wire_of_pair t u =
  let b = Buffer.create 256 in
  wire_put b t;
  wire_put b u;
  Buffer.contents b

let enc_bool r =
  let b = Buffer.create 1 in
  Wire.bool b r;
  Buffer.contents b

let enc_conj t = wire_of_conj t

(* decoded structures are interned so a disk hit hands back the same
   canonical representative recomputation would *)
let dec_conj c = intern (wire_read c)

let enc_opt_conj = function
  | None -> "N"
  | Some t -> "S" ^ wire_of_conj t

let dec_opt_conj c =
  match Wire.read_char c with
  | 'N' -> None
  | 'S' -> Some (dec_conj c)
  | _ -> raise Wire.Malformed

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

exception Unsat

let normalize_list cs =
  let keep =
    List.filter_map
      (fun c ->
        match Constr.normalize c with
        | Constr.Tauto -> None
        | Constr.Contra -> raise Unsat
        | Constr.Ok c -> Some c)
      cs
  in
  List.sort_uniq Constr.compare keep

(* Group inequalities by their coefficient vector; for identical coefficient
   vectors keep the tightest constant; detect opposite pairs that contradict
   or force an equality. *)
module LinKey = Map.Make (struct
  type t = int Var.Map.t
  let compare = Var.Map.compare Int.compare
end)

let tighten cs =
  let eqs, geqs = List.partition (fun c -> Constr.kind c = Constr.Eq) cs in
  (* tightest constant per coefficient vector *)
  let best =
    List.fold_left
      (fun m c ->
        let lin = Constr.lin c in
        let key = lin.Lin.coeffs in
        let k = Lin.constant lin in
        LinKey.update key
          (function None -> Some k | Some k' -> Some (min k k'))
          m)
      LinKey.empty geqs
  in
  (* opposite pairs *)
  let extra_eqs = ref [] in
  let dropped = Hashtbl.create 8 in
  LinKey.iter
    (fun key k ->
      let nkey = Var.Map.map (fun c -> -c) key in
      match LinKey.find_opt nkey best with
      | Some k' when not (Var.Map.is_empty key) ->
          (* key·x + k >= 0 and -key·x + k' >= 0, i.e. -k <= key·x <= k' *)
          if -k > k' then raise Unsat
          else if -k = k' then begin
            if not (Hashtbl.mem dropped nkey) then begin
              Hashtbl.replace dropped key ();
              extra_eqs :=
                Constr.eq { Lin.coeffs = key; const = k } :: !extra_eqs
            end
          end
      | _ -> ())
    best;
  let geqs =
    LinKey.fold
      (fun key k acc ->
        if Hashtbl.mem dropped key || Hashtbl.mem dropped (Var.Map.map (fun c -> -c) key)
        then acc
        else Constr.geq { Lin.coeffs = key; const = k } :: acc)
      best []
  in
  eqs @ !extra_eqs @ geqs

(* ------------------------------------------------------------------ *)
(* Equality-based elimination (Pugh)                                   *)
(* ------------------------------------------------------------------ *)

(* Solve equality [c] for variable [v] when |coeff| = 1: returns rhs term. *)
let solve_unit_eq c v =
  let lin = Constr.lin c in
  let a = Lin.coeff lin v in
  assert (abs a = 1);
  let rest = Lin.drop v lin in
  (* a·v + rest = 0  =>  v = -rest / a *)
  if a = 1 then Lin.neg rest else rest

(* One step of Omega's symmetric-modulus coefficient reduction applied to an
   equality in which every variable has |coeff| > 1. Returns the transformed
   conjunct (a fresh existential is introduced; coefficients strictly
   shrink). [t] must contain [c]. *)
let reduce_equality t c =
  let lin = Constr.lin c in
  (* pick the variable with the smallest |coeff| *)
  let xk, ak =
    Lin.fold
      (fun v a (bv, ba) -> if abs a < abs ba then (v, a) else (bv, ba))
      lin
      (Var.Param "!none", max_int)
  in
  assert (ak <> max_int);
  let m = abs ak + 1 in
  let t, sigma = fresh_ex t in
  (* m·σ = Σ smod(a_i, m)·x_i + smod(c, m); and smod(a_k, m) = -sign(a_k) *)
  let rhs =
    Lin.fold
      (fun v a acc -> Lin.add acc (Lin.var ~coef:(Lin.smod a m) v))
      lin
      (Lin.const (Lin.smod (Lin.constant lin) m))
  in
  (* The defining constraint m·σ = rhs has coefficient −sign(a_k) on x_k
     (since |a_k| = m − 1 gives smod(a_k, m) = −sign(a_k)), so it can be
     solved exactly for x_k:
       x_k = sign(a_k) · (Σ_{i≠k} smod(a_i,m)·x_i + smod(c,m) − m·σ).
     Substituting everywhere eliminates x_k and shrinks the coefficients of
     the original equality. *)
  let sign = if ak > 0 then 1 else -1 in
  let rest = Lin.drop xk rhs in
  let xk_rhs = Lin.scale sign (Lin.sub rest (Lin.var ~coef:m sigma)) in
  let cs = List.map (Constr.subst xk xk_rhs) t.cs in
  (* Re-add the definition of x_k so the relation still mentions x_k if it is
     a tuple variable; if x_k is existential the definition fully replaces
     it. *)
  let defc = Constr.eq (Lin.sub (Lin.var xk) xk_rhs) in
  let cs = if Var.is_ex xk then cs else defc :: cs in
  { t with cs }

(* ------------------------------------------------------------------ *)
(* Fourier-Motzkin elimination                                         *)
(* ------------------------------------------------------------------ *)

type bounds = {
  lowers : (int * Lin.t) list; (* a·v >= L  encoded as (a, L) with a > 0 *)
  uppers : (int * Lin.t) list; (* b·v <= U  encoded as (b, U) with b > 0 *)
  others : Constr.t list; (* constraints not involving v *)
  eqs_with_v : Constr.t list;
}

let bounds_of v t =
  List.fold_left
    (fun acc c ->
      let a = Constr.coeff c v in
      if a = 0 then { acc with others = c :: acc.others }
      else
        match Constr.kind c with
        | Constr.Eq -> { acc with eqs_with_v = c :: acc.eqs_with_v }
        | Constr.Geq ->
            let rest = Lin.drop v (Constr.lin c) in
            if a > 0 then
              (* a·v + rest >= 0  =>  a·v >= -rest *)
              { acc with lowers = (a, Lin.neg rest) :: acc.lowers }
            else
              (* a·v + rest >= 0 with a < 0  =>  |a|·v <= rest *)
              { acc with uppers = (-a, rest) :: acc.uppers })
    { lowers = []; uppers = []; others = []; eqs_with_v = [] }
    t.cs

(* Real-shadow constraint for pair (a·v >= L, b·v <= U): a·U − b·L >= 0. *)
let real_shadow_pair (a, l) (b, u) = Constr.geq (Lin.sub (Lin.scale a u) (Lin.scale b l))

(* Dark-shadow: a·U − b·L >= (a−1)(b−1). *)
let dark_shadow_pair (a, l) (b, u) =
  Constr.geq (Lin.add_const (-((a - 1) * (b - 1))) (Lin.sub (Lin.scale a u) (Lin.scale b l)))

type elim_result =
  | Exact of t
  | Inexact of { real : t; dark : t; lowers : (int * Lin.t) list; max_upper_coef : int }

(* Eliminate variable [v] from the inequalities of [t]. Precondition: v does
   not occur in any equality of [t]. *)
let fme v t =
  let b = bounds_of v t in
  assert (b.eqs_with_v = []);
  if b.lowers = [] || b.uppers = [] then Exact { t with cs = b.others }
  else
    let exact =
      List.for_all
        (fun (a, _) -> List.for_all (fun (bb, _) -> a = 1 || bb = 1) b.uppers)
        b.lowers
    in
    let combine pairf =
      List.concat_map (fun lo -> List.map (fun up -> pairf lo up) b.uppers) b.lowers
    in
    if exact then Exact { t with cs = combine real_shadow_pair @ b.others }
    else
      let real = { t with cs = combine real_shadow_pair @ b.others } in
      let dark = { t with cs = combine dark_shadow_pair @ b.others } in
      let max_upper_coef = List.fold_left (fun m (bb, _) -> max m bb) 1 b.uppers in
      Inexact { real; dark; lowers = b.lowers; max_upper_coef }

(* ------------------------------------------------------------------ *)
(* Simplification                                                      *)
(* ------------------------------------------------------------------ *)

(* Use equality [c] (with coefficient a on v, |a| > 1) to remove v from every
   OTHER constraint, by scaling each by |a| and substituting a·v = −rest.
   Exact: scaling an inequality by a positive factor preserves its integer
   solutions, and the equality itself is kept. Afterwards v occurs only in
   [c], i.e. it is stride-like. *)
let scale_subst t c v =
  let a = Constr.coeff c v in
  let s = if a > 0 then 1 else -1 in
  let rest = Lin.drop v (Constr.lin c) in
  let cs =
    List.map
      (fun c2 ->
        if c2 == c then c2
        else
          let b = Constr.coeff c2 v in
          if b = 0 then c2
          else
            let r2 = Lin.drop v (Constr.lin c2) in
            (* |a|·(b·v + r2) = b·s·(a·v) + |a|·r2 = −b·s·rest + |a|·r2 *)
            let lin = Lin.sub (Lin.scale (abs a) r2) (Lin.scale (b * s) rest) in
            match Constr.kind c2 with
            | Constr.Eq -> Constr.eq lin
            | Constr.Geq -> Constr.geq lin)
      t.cs
  in
  { t with cs }

(* Try to remove existential variables exactly. One pass; returns the
   conjunct and whether progress was made. *)
let eliminate_existentials t =
  let progress = ref false in
  (* [confined] prevents ping-ponging: two existentials coupled by one
     equality would otherwise take turns rewriting each other's bounds
     forever. Each variable is confined (scale_subst'ed) at most once per
     pass; the outer simplification fixpoint handles the rest. *)
  let rec go confined t =
    let exs = Var.Set.filter Var.is_ex (vars t) |> Var.Set.elements in
    (* prefer a defining equality with as few existentials as possible, so
       bounds get rewritten towards tuple variables and parameters *)
    let pick_eq eqs =
      let n_ex_of c =
        Var.Set.cardinal (Var.Set.filter Var.is_ex (Lin.vars (Constr.lin c)))
      in
      List.fold_left
        (fun best c -> if n_ex_of c < n_ex_of best then c else best)
        (List.hd eqs) (List.tl eqs)
    in
    let try_var t v =
      let b = bounds_of v t in
      match b.eqs_with_v with
      | c :: _ when abs (Constr.coeff c v) = 1 ->
          (* substitute v away; the defining equality disappears *)
          let rhs = solve_unit_eq c v in
          let cs = List.filter (fun c' -> not (c' == c)) t.cs in
          progress := true;
          Some (`Elim { t with cs = List.map (Constr.subst v rhs) cs })
      | _ :: _ as eqs ->
          let occurs_elsewhere =
            b.lowers <> [] || b.uppers <> [] || List.length eqs > 1
          in
          if occurs_elsewhere && not (Var.Set.mem v confined) then begin
            (* confine v to its defining equality; it becomes stride-like *)
            progress := true;
            let t' = scale_subst t (pick_eq eqs) v in
            let t' = { t' with cs = normalize_list t'.cs } in
            Some (`Confined (v, t'))
          end
          else
            (* v occurs only in this equality: a stride (divisibility)
               constraint on the remaining variables; keep it *)
            None
      | [] -> (
          if b.lowers = [] || b.uppers = [] then begin
            progress := true;
            Some (`Elim { t with cs = b.others })
          end
          else
            match fme v t with
            | Exact t' ->
                progress := true;
                Some (`Elim t')
            | Inexact _ -> None)
    in
    let rec loop t = function
      | [] -> t
      | v :: rest -> (
          if not (mem_var v t) then loop t rest
          else
            match try_var t v with
            | Some (`Elim t') -> go confined t'
            | Some (`Confined (v, t')) -> go (Var.Set.add v confined) t'
            | None -> loop t rest)
    in
    loop t exs
  in
  let t = go Var.Set.empty t in
  (t, !progress)

(* Substitute unit-coefficient equalities through the other constraints so
   that tuple-variable relationships propagate (the equality itself is
   kept when it defines a tuple or parameter variable). *)
let propagate_equalities t =
  let rec go processed = function
    | [] -> { t with cs = List.rev processed }
    | c :: rest when Constr.kind c = Constr.Eq -> (
        (* find a variable with unit coefficient, preferring existentials *)
        let lin = Constr.lin c in
        let candidates =
          Lin.fold (fun v a acc -> if abs a = 1 then v :: acc else acc) lin []
        in
        let pickv =
          match List.find_opt Var.is_ex candidates with
          | Some v -> Some v
          | None -> ( match candidates with v :: _ -> Some v | [] -> None)
        in
        match pickv with
        | None -> go (c :: processed) rest
        | Some v ->
            let rhs = solve_unit_eq c v in
            let processed = List.map (Constr.subst v rhs) processed in
            let rest = List.map (Constr.subst v rhs) rest in
            (* existential definitions disappear; tuple/parameter definitions
               are kept so the relation still relates its tuple variables *)
            let processed = if Var.is_ex v then processed else c :: processed in
            go processed rest)
    | c :: rest -> go (c :: processed) rest
  in
  go [] t.cs

(* Merge several existentials that occur only in one equality into a single
   one: c1·α1 + c2·α2 + ... (each αi nowhere else) spans exactly the
   multiples of gcd(c1,c2,...), so the group is replaced by g·β. This is
   what turns the composition of two cyclic layouts into a single stride. *)
let merge_eq_existentials t =
  let progress = ref false in
  let occurrences v = List.length (List.filter (Constr.mem v) t.cs) in
  let t =
    List.fold_left
      (fun t c ->
        if Constr.kind c <> Constr.Eq || not (List.memq c t.cs) then t
        else
          let lin = Constr.lin c in
          let exclusive =
            Lin.fold
              (fun v coef acc ->
                if Var.is_ex v && occurrences v = 1 then (v, coef) :: acc else acc)
              lin []
          in
          if List.length exclusive < 2 then t
          else begin
            progress := true;
            let g = List.fold_left (fun g (_, c) -> Lin.gcd g c) 0 exclusive in
            let t', beta = fresh_ex t in
            let lin' =
              List.fold_left (fun l (v, _) -> Lin.drop v l) lin exclusive
            in
            let lin' = Lin.add lin' (Lin.var ~coef:g beta) in
            let cs =
              List.map (fun c' -> if c' == c then Constr.eq lin' else c') t'.cs
            in
            { t' with cs }
          end)
      t t.cs
  in
  (t, !progress)

(* An equality c·α + rest = 0 with α occurring nowhere else is just the
   congruence rest ≡ 0 (mod |c|), so every coefficient of [rest] (and its
   constant) can be reduced to its symmetric remainder mod |c|. In
   particular coefficients divisible by |c| vanish — this decouples
   stride constraints produced by composing cyclic layouts. *)
let reduce_stride_coeffs t =
  let progress = ref false in
  let occurrences v = List.length (List.filter (Constr.mem v) t.cs) in
  let cs =
    List.map
      (fun c ->
        if Constr.kind c <> Constr.Eq then c
        else
          let lin = Constr.lin c in
          match
            Lin.fold
              (fun v coef acc ->
                if acc = None && Var.is_ex v && occurrences v = 1 then Some (v, coef)
                else acc)
              lin None
          with
          | None -> c
          | Some (alpha, coef) ->
              let m = abs coef in
              if m <= 1 then c
              else
                let lin' =
                  Lin.fold
                    (fun v r acc ->
                      if Var.equal v alpha then Lin.add acc (Lin.var ~coef:r v)
                      else begin
                        let r' = Lin.smod r m in
                        if r' <> r then progress := true;
                        Lin.add acc (Lin.var ~coef:r' v)
                      end)
                    lin
                    (let k = Lin.constant lin in
                     let k' = Lin.smod k m in
                     if k' <> k then progress := true;
                     Lin.const k')
                in
                Constr.eq lin')
      t.cs
  in
  ({ t with cs }, !progress)

let simplify_raw t =
  try
    let rec fix t n =
      if n > 12 then Some t
      else
        let cs = normalize_list t.cs in
        let cs = tighten cs in
        let t = { t with cs } in
        let t = propagate_equalities t in
        let t, progress = eliminate_existentials t in
        let t, progress2 = merge_eq_existentials t in
        let t, progress3 = reduce_stride_coeffs t in
        let cs' = normalize_list t.cs in
        let t = { t with cs = cs' } in
        if progress || progress2 || progress3 then fix t (n + 1)
        else Some (compact_ex t)
    in
    fix t 0
  with Unsat -> None

module IntMemo = Cache.Memo (struct
  type t = int
  let equal = Int.equal
  let hash x = x
end)

module PairMemo = Cache.Memo (struct
  type t = int * int
  let equal (a, b) (a', b') = a = a' && b = b'
  let hash = Hashtbl.hash
end)

let simplify_memo : t option IntMemo.t =
  IntMemo.create "simplify" ~lookups:Stats.simplify_lookups
    ~hits:Stats.simplify_hits

(* Tracing policy: spans are emitted only around the raw slow paths — the
   actual Omega-test / simplification work on a cache miss — so the
   memoized hit path stays span-free and traces show where set-operation
   time is really spent. Each span snapshots its operation's lookup/hit
   counters as arguments. *)
let traced name ~lookups ~hits f =
  if Obs.enabled () then
    Obs.span ~cat:"iset"
      ~args:(fun () ->
        [ ("lookups", Obs.Int (Stats.count lookups));
          ("hits", Obs.Int (Stats.count hits)) ])
      name f
  else f ()

(* Simplification is a pure function of the structure, so memoizing on the
   interned id returns exactly what recomputation would. The cached result
   is interned too: every caller of a repeated conjunct gets the same
   physically-shared simplified form. *)
let simplify t =
  let slow t =
    traced "simplify" ~lookups:Stats.simplify_lookups
      ~hits:Stats.simplify_hits (fun () -> simplify_raw t)
  in
  if not (Cache.enabled ()) then slow t
  else
    let rep, key = intern_pair t in
    IntMemo.find_or_add simplify_memo key (fun () ->
        Diskcache.memo ~kind:"simplify"
          ~key:(fun () -> wire_of_conj rep)
          ~encode:enc_opt_conj ~decode:dec_opt_conj
          (fun () -> Option.map intern (slow rep)))

(* ------------------------------------------------------------------ *)
(* Omega satisfiability test                                           *)
(* ------------------------------------------------------------------ *)

exception Too_hard

(* For satisfiability every variable is treated as existential. *)
let all_existential t =
  let tbl = Hashtbl.create 8 in
  let next = ref t.n_ex in
  let f v =
    if Var.is_ex v then v
    else begin
      match Hashtbl.find_opt tbl v with
      | Some v' -> v'
      | None ->
          let v' = Var.Ex !next in
          incr next;
          Hashtbl.replace tbl v v';
          v'
    end
  in
  let cs = List.map (Constr.map_lin (Lin.map_vars f)) t.cs in
  { n_ex = !next; cs }

let rec omega_sat ~fuel t =
  if fuel <= 0 then raise Too_hard;
  match simplify t with
  | None -> false
  | Some t -> (
      let vs = vars t |> Var.Set.elements in
      match vs with
      | [] -> true (* only tautological constraints remain *)
      | _ -> (
          (* After simplify, any remaining equality has no unit-coefficient
             handle on an existential; but since every var is existential in
             sat mode, propagate_equalities has already consumed unit
             equalities. Handle remaining equalities by coefficient
             reduction. *)
          match List.find_opt (fun c -> Constr.kind c = Constr.Eq) t.cs with
          | Some c -> (
              let unit_v =
                Lin.fold
                  (fun v a acc -> if abs a = 1 then Some v else acc)
                  (Constr.lin c) None
              in
              match unit_v with
              | Some v ->
                  let rhs = solve_unit_eq c v in
                  let cs = List.filter (fun c' -> not (c' == c)) t.cs in
                  omega_sat ~fuel:(fuel - 1)
                    { t with cs = List.map (Constr.subst v rhs) cs }
              | None -> omega_sat ~fuel:(fuel - 1) (reduce_equality t c))
          | None ->
              (* choose the variable with the cheapest elimination *)
              let cost v =
                let b = bounds_of v t in
                let nl = List.length b.lowers and nu = List.length b.uppers in
                let exact =
                  List.for_all
                    (fun (a, _) -> List.for_all (fun (bb, _) -> a = 1 || bb = 1) b.uppers)
                    b.lowers
                in
                ((if exact then 0 else 1000000), (nl * nu) - nl - nu)
              in
              let v =
                List.fold_left
                  (fun (bv, bc) v ->
                    let c = cost v in
                    if c < bc then (v, c) else (bv, bc))
                  (List.hd vs, cost (List.hd vs))
                  (List.tl vs)
                |> fst
              in
              (match fme v t with
              | Exact t' -> omega_sat ~fuel:(fuel - 1) t'
              | Inexact { real; dark; lowers; max_upper_coef = m } ->
                  if not (omega_sat ~fuel:(fuel - 1) real) then false
                  else if omega_sat ~fuel:(fuel - 1) dark then true
                  else
                    (* splinters: for each lower bound a·v >= L, test
                       a·v = L + i for i in 0 .. (a·m − a − m)/m *)
                    List.exists
                      (fun (a, l) ->
                        let hi = ((a * m) - a - m) / m in
                        let rec try_i i =
                          if i > hi then false
                          else
                            let eqc =
                              Constr.eq
                                (Lin.sub (Lin.var ~coef:a v) (Lin.add_const i l))
                            in
                            omega_sat ~fuel:(fuel - 1) { t with cs = eqc :: t.cs }
                            || try_i (i + 1)
                        in
                        try_i 0)
                      lowers)))

let sat_raw t = omega_sat ~fuel:300 (all_existential t)

(* Cheap unsatisfiability pre-filter, run before the Omega machinery spins
   up: constant violations, gcd non-divisibility of equalities, and
   single-variable interval contradictions. Sound: [true] means the conjunct
   is definitely empty. *)
let trivially_unsat t =
  let exception Kill in
  try
    let (_ : (int * int) Var.Map.t) =
      List.fold_left
        (fun ivals c ->
          let lin = Constr.lin c in
          if Lin.is_const lin then begin
            let k = Lin.constant lin in
            (match Constr.kind c with
            | Constr.Eq -> if k <> 0 then raise Kill
            | Constr.Geq -> if k < 0 then raise Kill);
            ivals
          end
          else begin
            (match Constr.kind c with
            | Constr.Eq ->
                let g = Lin.coeff_gcd lin in
                if g > 1 && Lin.constant lin mod g <> 0 then raise Kill
            | Constr.Geq -> ());
            match Var.Map.bindings lin.Lin.coeffs with
            | [ (v, a) ] ->
                let k = Lin.constant lin in
                let lo, hi =
                  match Var.Map.find_opt v ivals with
                  | Some b -> b
                  | None -> (min_int, max_int)
                in
                let lo, hi =
                  match Constr.kind c with
                  | Constr.Geq ->
                      (* a·v + k >= 0 *)
                      if a > 0 then (max lo (Lin.cdiv (-k) a), hi)
                      else (lo, min hi (Lin.fdiv k (-a)))
                  | Constr.Eq ->
                      if k mod a <> 0 then raise Kill
                      else
                        let x = -k / a in
                        (max lo x, min hi x)
                in
                if lo > hi then raise Kill;
                Var.Map.add v (lo, hi) ivals
            | _ -> ivals
          end)
        Var.Map.empty t.cs
    in
    false
  with Kill -> true

let sat_memo : bool IntMemo.t =
  IntMemo.create "sat" ~lookups:Stats.sat_lookups ~hits:Stats.sat_hits

let sat t =
  let slow t =
    traced "sat" ~lookups:Stats.sat_lookups ~hits:Stats.sat_hits (fun () ->
        sat_raw t)
  in
  if trivially_unsat t then begin
    Stats.bump Stats.sat_prefilter_kills;
    false
  end
  else if not (Cache.enabled ()) then slow t
  else
    let rep, key = intern_pair t in
    IntMemo.find_or_add sat_memo key (fun () ->
        Diskcache.memo ~kind:"sat"
          ~key:(fun () -> wire_of_conj rep)
          ~encode:enc_bool ~decode:Wire.read_bool
          (fun () -> slow rep))

let is_empty t = not (sat t)

(* ------------------------------------------------------------------ *)
(* Negation, implication, gist                                         *)
(* ------------------------------------------------------------------ *)

(** Negate a conjunct, producing a disjunction of conjuncts.

    Exact when every residual existential α is in {e window} form: its
    occurrences amount to [l <= k·α <= u] for affine l, u free of other
    existentials — either a single equality ([l = u], a stride) or a
    lower/upper inequality pair. The negation of "some multiple of k lies in
    [l,u]" is "some multiple of k lies in [u−k+1, l−1]", which is again a
    window, so the class is closed under the set operations the compiler
    performs. Raises [Inexact_negation] otherwise. *)
let negate t =
  match simplify t with
  | None -> [ true_ ] (* ¬false = true *)
  | Some t ->
      let exs = Var.Set.filter Var.is_ex (vars t) in
      (* window_of α: (k, l, u, constraints consumed) with l <= k·α <= u *)
      let window_of a =
        let occs = List.filter (Constr.mem a) t.cs in
        let no_other_ex lin =
          Var.Set.for_all
            (fun v -> (not (Var.is_ex v)) || Var.equal v a)
            (Lin.vars lin)
        in
        match occs with
        | [ c ] when Constr.kind c = Constr.Eq ->
            let ka = Lin.coeff (Constr.lin c) a in
            let rest = Lin.drop a (Constr.lin c) in
            if not (no_other_ex rest) then raise Inexact_negation;
            (* ka·α + rest = 0  ⇔  |ka|·α = −sign(ka)·rest *)
            let r = Lin.scale (if ka > 0 then -1 else 1) rest in
            (abs ka, r, r, occs)
        | [ c1; c2 ] when Constr.kind c1 = Constr.Geq && Constr.kind c2 = Constr.Geq ->
            let k1 = Constr.coeff c1 a and k2 = Constr.coeff c2 a in
            if k1 + k2 <> 0 then raise Inexact_negation;
            let clo, chi = if k1 > 0 then (c1, c2) else (c2, c1) in
            let l = Lin.neg (Lin.drop a (Constr.lin clo)) in
            let u = Lin.drop a (Constr.lin chi) in
            if not (no_other_ex l && no_other_ex u) then raise Inexact_negation;
            (abs k1, l, u, occs)
        | _ -> raise Inexact_negation
      in
      let windows = List.map window_of (Var.Set.elements exs) in
      let consumed = List.concat_map (fun (_, _, _, cs) -> cs) windows in
      let plain = List.filter (fun c -> not (List.memq c consumed)) t.cs in
      let neg_plain =
        List.concat_map
          (fun c -> List.map (fun nc -> make ~n_ex:0 [ nc ]) (Constr.negate c))
          plain
      in
      let neg_windows =
        List.map
          (fun (k, l, u, _) ->
            (* ¬(∃α: l <= k·α <= u) = ∃β: u − k + 1 <= k·β <= l − 1 *)
            let beta = Var.Ex 0 in
            let kb = Lin.var ~coef:k beta in
            make ~n_ex:1
              [
                Constr.geq (Lin.sub kb (Lin.add_const (-k + 1) u));
                Constr.geq (Lin.sub (Lin.add_const (-1) l) kb);
              ])
          windows
      in
      neg_plain @ neg_windows

(** [implies t c]: does [t] entail the single constraint [c]?
    [c] must not mention existential variables of [t]. *)
let implies_raw t c =
  List.for_all (fun nc -> is_empty (meet t nc)) (negate (make ~n_ex:0 [ c ]))

let implies_memo : bool PairMemo.t =
  PairMemo.create "implies" ~lookups:Stats.implies_lookups
    ~hits:Stats.implies_hits

let implies t c =
  if not (Cache.enabled ()) then implies_raw t c
  else
    PairMemo.find_or_add implies_memo (id t, Constr.id c) (fun () ->
        Diskcache.memo ~kind:"implies"
          ~key:(fun () ->
            let b = Buffer.create 192 in
            wire_put b t;
            Constr.wire_put b c;
            Buffer.contents b)
          ~encode:enc_bool ~decode:Wire.read_bool
          (fun () -> implies_raw t c))

let constr_has_ex c = Lin.exists_var Var.is_ex (Constr.lin c)

(** [gist t ~given]: drop constraints of [t] entailed by [given] plus the
    remaining constraints of [t]. Constraints mentioning existentials of [t]
    are always kept (dropping them safely would require scoped negation). *)
let gist_raw t ~given =
  let rec go kept = function
    | [] -> { t with cs = List.rev kept }
    | c :: rest ->
        if constr_has_ex c then go (c :: kept) rest
        else
          let ctx = { t with cs = List.rev_append kept rest } in
          if implies (meet ctx given) c then go kept rest else go (c :: kept) rest
  in
  go [] t.cs

let gist_memo : t PairMemo.t =
  PairMemo.create "gist" ~lookups:Stats.gist_lookups ~hits:Stats.gist_hits

let gist t ~given =
  let slow () =
    traced "gist" ~lookups:Stats.gist_lookups ~hits:Stats.gist_hits (fun () ->
        gist_raw t ~given)
  in
  if not (Cache.enabled ()) then slow ()
  else
    PairMemo.find_or_add gist_memo (id t, id given) (fun () ->
        Diskcache.memo ~kind:"gist"
          ~key:(fun () -> wire_of_pair t given)
          ~encode:enc_conj ~decode:dec_conj slow)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp ?pp_var fmt t =
  if t.cs = [] then Fmt.string fmt "TRUE"
  else Fmt.(list ~sep:(any " && ") (Constr.pp ?pp_var)) fmt t.cs

let to_string t = Fmt.str "%a" (pp ?pp_var:None) t
