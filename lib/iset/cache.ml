(** Global configuration for the memoization layer: a single on/off switch
    (runtime-togglable, [DHPF_ISET_CACHE=off] in the environment disables it
    at startup), a shared capacity bound, and a registry of clear hooks so
    every memo/intern table can be flushed together.

    Eviction policy is clear-on-full: when a table reaches the capacity it is
    emptied wholesale. Interned ids are {e never} reused across clears (the
    id counters are monotone), so memo entries keyed by ids from a previous
    epoch simply become unreachable — no invalidation protocol is needed. *)

let enabled_ref =
  ref
    (match Sys.getenv_opt "DHPF_ISET_CACHE" with
    | Some ("0" | "off" | "false" | "no") -> false
    | _ -> true)

let capacity_ref = ref 65536

let clear_hooks : (unit -> unit) list ref = ref []

let register_clear f = clear_hooks := f :: !clear_hooks

let clear_all () = List.iter (fun f -> f ()) !clear_hooks

let enabled () = !enabled_ref

let set_enabled b =
  enabled_ref := b;
  clear_all ()

let capacity () = !capacity_ref

let set_capacity n =
  capacity_ref := max 4 n;
  clear_all ()

(** Bounded memo table over an arbitrary key; registers its own clear hook
    and a size gauge. *)
module Memo (K : Hashtbl.HashedType) = struct
  module T = Hashtbl.Make (K)

  type 'v t = { tbl : 'v T.t; lookups : Stats.counter; hits : Stats.counter }

  let create name ~lookups ~hits =
    let tbl = T.create 256 in
    register_clear (fun () -> T.reset tbl);
    Stats.register_gauge (name ^ " cache size") (fun () -> T.length tbl);
    { tbl; lookups; hits }

  let length m = T.length m.tbl

  (** [find_or_add m k f]: memoized [f ()]. With caching disabled this is
      just [f ()] — no lookup, no insertion, no counter traffic. *)
  let find_or_add m k f =
    if not (enabled ()) then f ()
    else begin
      Stats.bump m.lookups;
      match T.find_opt m.tbl k with
      | Some v ->
          Stats.bump m.hits;
          v
      | None ->
          let v = f () in
          if T.length m.tbl >= !capacity_ref then begin
            T.reset m.tbl;
            Stats.bump Stats.evictions
          end;
          T.replace m.tbl k v;
          v
    end
end
