(** Global configuration for the memoization layer: a single on/off switch
    (runtime-togglable, [DHPF_ISET_CACHE=off] in the environment disables it
    at startup), a shared capacity bound, and a registry of clear hooks so
    every memo/intern table can be flushed together.

    Eviction policy is clear-on-full: when a table reaches the capacity it is
    emptied wholesale. Interned ids are {e never} reused across clears (the
    id counters are monotone), so memo entries keyed by ids from a previous
    epoch simply become unreachable — no invalidation protocol is needed.

    Domain safety: the switch and capacity are [Atomic.t]; {!Memo} tables
    are domain-local ([Domain.DLS]), so lookups and insertions never take a
    lock and never race. A worker domain starts with empty memo tables and
    drops them at join — only cross-domain cache reuse is lost, never
    correctness, because every memoized function is pure and keyed by
    interned ids that are never reused. *)

let enabled_ref =
  Atomic.make
    (match Sys.getenv_opt "DHPF_ISET_CACHE" with
    | Some ("0" | "off" | "false" | "no") -> false
    | _ -> true)

let capacity_ref = Atomic.make 65536
let hooks_mu = Mutex.create ()
let clear_hooks : (unit -> unit) list ref = ref []

let register_clear f =
  Mutex.protect hooks_mu (fun () -> clear_hooks := f :: !clear_hooks)

let clear_all () =
  List.iter (fun f -> f ()) (Mutex.protect hooks_mu (fun () -> !clear_hooks))

let enabled () = Atomic.get enabled_ref

let set_enabled b =
  Atomic.set enabled_ref b;
  clear_all ()

let capacity () = Atomic.get capacity_ref

let set_capacity n =
  Atomic.set capacity_ref (max 4 n);
  clear_all ()

(** Bounded memo table over an arbitrary key; registers its own clear hook
    and a size gauge. The table is domain-local: each domain memoizes into
    its own storage, so no synchronization is needed on the hot path. Clear
    hooks and the size gauge act on the calling domain's table — in
    practice the main domain's, the only long-lived one. *)
module Memo (K : Hashtbl.HashedType) = struct
  module T = Hashtbl.Make (K)

  type 'v t = {
    key : 'v T.t Domain.DLS.key;
    lookups : Stats.counter;
    hits : Stats.counter;
  }

  let create name ~lookups ~hits =
    let key = Domain.DLS.new_key (fun () -> T.create 256) in
    register_clear (fun () -> T.reset (Domain.DLS.get key));
    Stats.register_gauge (name ^ " cache size") (fun () ->
        T.length (Domain.DLS.get key));
    { key; lookups; hits }

  let length m = T.length (Domain.DLS.get m.key)

  (** [find_or_add m k f]: memoized [f ()]. With caching disabled this is
      just [f ()] — no lookup, no insertion, no counter traffic. *)
  let find_or_add m k f =
    if not (enabled ()) then f ()
    else begin
      Stats.bump m.lookups;
      let tbl = Domain.DLS.get m.key in
      match T.find_opt tbl k with
      | Some v ->
          Stats.bump m.hits;
          v
      | None ->
          let v = f () in
          if T.length tbl >= capacity () then begin
            T.reset tbl;
            Stats.bump Stats.evictions
          end;
          T.replace tbl k v;
          v
    end
end
