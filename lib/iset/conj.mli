(** Conjuncts: a conjunction of affine constraints with a block of
    existentially quantified variables.

    This module carries the heart of the framework: constraint
    normalization, Pugh's exact equality elimination (including the
    symmetric-modulus coefficient-reduction step), exact and inexact
    Fourier–Motzkin elimination, the Omega satisfiability test (real shadow,
    dark shadow, splinters), exact negation over the stride/window class,
    and gist. *)

type t

exception Inexact_negation
(** Raised by {!negate} (and operations built on it, such as set difference)
    when a residual existential is not in window form; does not occur for
    the set class the compiler produces. *)

val true_ : t
val make : n_ex:int -> Constr.t list -> t
val constraints : t -> Constr.t list
val n_ex : t -> int
(** Number of existential variables; their ids are [0 .. n_ex-1]. *)

val add : t -> Constr.t list -> t
val fresh_ex : t -> t * Var.t
val map_lin : (Lin.t -> Lin.t) -> t -> t
val subst : Var.t -> Lin.t -> t -> t

val vars : t -> Var.Set.t
val mem_var : Var.t -> t -> bool
val constr_has_ex : Constr.t -> bool

val equal : t -> t -> bool
(** Structural equality (same existential count, same constraint list), with
    a physical-equality fast path. *)

val hash : t -> int

val intern : t -> t
(** Canonical physically-shared representative; interns the constraints and
    terms too. *)

val id : t -> int
(** Stable interned id (see {!Hcons}); never reused across evictions. *)

val wire_put : Buffer.t -> t -> unit
(** Canonical byte codec (see {!Wire}): the content key and value format
    of the on-disk analysis cache ({!Diskcache}). Structurally equal
    conjuncts encode to equal bytes; interned ids are never written. *)

val wire_read : Wire.cursor -> t
(** @raise Wire.Malformed on a truncated or ill-formed stream. *)

val trivially_unsat : t -> bool
(** Cheap sound unsatisfiability pre-filter (constant violations, equality
    gcd tests, single-variable interval contradictions); [true] means the
    conjunct is definitely empty, [false] means "don't know". *)

val shift_ex : int -> t -> t
(** Shift every existential id; used to rename conjuncts apart. *)

val meet : t -> t -> t
(** Conjunction; the right operand's existentials are renamed apart, the
    left operand's ids are stable. *)

val compact_ex : t -> t
(** Renumber existentials densely, dropping unused ids. *)

val simplify : t -> t option
(** Normalize constraints, propagate equalities, eliminate existentials
    where exact (unit substitution, modulus reduction, exact FME, gcd
    merging, stride-coefficient reduction), and tighten inequality pairs.
    [None] means the conjunct was detected unsatisfiable. Memoized on the
    interned id (see {!Cache}). *)

val sat : t -> bool
(** The full Omega test, treating every variable (tuple, parameter,
    existential) as existentially quantified: is the conjunct satisfiable
    for {e some} assignment? Exact. Guarded by {!trivially_unsat} and
    memoized on the interned id (see {!Cache}). *)

val is_empty : t -> bool

val negate : t -> t list
(** Negation as a disjunction of conjuncts. Exact when every residual
    existential α occurs as a window [l <= k·α <= u] (a stride when
    [l = u]); the complement of a window is again a window, so the class is
    closed under the operations the compiler performs.
    @raise Inexact_negation otherwise. *)

val implies : t -> Constr.t -> bool
(** [implies t c]: does [t] entail [c]? [c] must not mention existentials
    of [t]. *)

val gist : t -> given:t -> t
(** Drop constraints of [t] entailed by [given] plus the remaining
    constraints; constraints mentioning [t]'s existentials are kept. *)

val pp : ?pp_var:(Format.formatter -> Var.t -> unit) -> Format.formatter -> t -> unit
val to_string : t -> string
