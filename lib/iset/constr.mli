(** Atomic constraints over linear terms: [t = 0] or [t >= 0]. *)

type kind = Eq | Geq

type t = { kind : kind; lin : Lin.t }

val eq : Lin.t -> t
(** [eq t] is the constraint [t = 0]. *)

val geq : Lin.t -> t
(** [geq t] is the constraint [t >= 0]. *)

val le : Lin.t -> Lin.t -> t
(** [le a b] is [a <= b], i.e. [b - a >= 0]. *)

val equal_terms : Lin.t -> Lin.t -> t
(** [equal_terms a b] is [a = b]. *)

val kind : t -> kind
val lin : t -> Lin.t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val intern : t -> t
(** Canonical representative; also interns the underlying term. *)

val id : t -> int
(** Stable interned id; never reused across cache evictions. *)

val wire_put : Buffer.t -> t -> unit
(** Canonical byte codec (see {!Wire}); structurally equal constraints
    encode to equal bytes. *)

val wire_read : Wire.cursor -> t
(** @raise Wire.Malformed on a truncated or ill-formed stream. *)

val mem : Var.t -> t -> bool
val coeff : t -> Var.t -> int

type norm = Tauto | Contra | Ok of t

val normalize : t -> norm
(** Canonicalize: divide by the gcd of the variable coefficients (tightening
    the constant of an inequality, detecting unsatisfiable equalities), and
    sign-normalize equalities. Constant constraints resolve to [Tauto] or
    [Contra]. *)

val subst : Var.t -> Lin.t -> t -> t
val map_lin : (Lin.t -> Lin.t) -> t -> t

val negate : t -> t list
(** Negation as a disjunction: [not (t >= 0)] is [[-t-1 >= 0]];
    [not (t = 0)] is [[t-1 >= 0; -t-1 >= 0]]. *)

val pp : ?pp_var:(Format.formatter -> Var.t -> unit) -> Format.formatter -> t -> unit
val to_string : t -> string
