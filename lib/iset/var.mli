(** Variables occurring in integer-set formulas.

    A relation constrains an input tuple ([In i]) and an output tuple
    ([Out i]); a set uses only the input tuple. [Param] names a free symbolic
    constant (array extent, processor count, block size, enclosing loop
    index at a vectorization point, [vm$k] ...). [Ex] is an existentially
    quantified variable local to one conjunct; its id is dense within the
    owning conjunct. *)

type t = In of int | Out of int | Param of string | Ex of int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val is_ex : t -> bool
val is_param : t -> bool
val is_tuple : t -> bool

val wire_put : Buffer.t -> t -> unit
(** Canonical byte codec (see {!Wire}); structurally equal variables
    encode to equal bytes. *)

val wire_read : Wire.cursor -> t
(** @raise Wire.Malformed on a truncated or ill-formed stream. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
