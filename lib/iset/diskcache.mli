(** Content-addressed on-disk analysis cache: the persistent layer beneath
    {!Cache}.

    Entries are keyed by the {!Wire} encoding of the analyzed structure
    (its {e content} — interned ids are process-local and never written),
    an analysis kind, and the cache format version; the value is the Wire
    encoding of the analysis result. Because every cached operation is a
    pure function of the structure and the codec is canonical, a disk hit
    decodes to exactly what recomputation would produce — warm compiles are
    byte-identical to cold ones by construction.

    Robustness contract:
    - writes go to a temp file in the cache directory and are published
      with an atomic [rename], so concurrent servers and crashes can never
      expose a torn entry;
    - reads tolerate arbitrary corruption: a truncated, mismatched-version
      or mismatched-key entry is a {e miss}, never an error;
    - the store is size-bounded: once the tracked footprint exceeds the
      budget, whole entries are evicted oldest-first (reads refresh an
      entry's timestamp, approximating LRU).

    The layer is disabled until a directory is configured ({!set_dir},
    [--disk-cache], or [DHPF_DISK_CACHE] via {!init_env}); when disabled,
    {!memo} is a transparent pass-through. It sits strictly beneath the
    in-memory memo tables: a disk lookup happens only on an in-memory
    miss, and disabling {!Cache} disables this layer too. All operations
    are domain-safe. *)

val format_version : int
(** Bumped whenever the {!Wire} codec of any cached structure changes;
    part of every entry path, so entries from another format are
    unreachable rather than misread. *)

val set_dir : string option -> unit
(** Enable the cache rooted at a directory (created on demand), or
    disable with [None]. *)

val dir : unit -> string option

val enabled : unit -> bool

val init_env : unit -> unit
(** [DHPF_DISK_CACHE=dir] enables the cache at startup;
    [DHPF_DISK_CACHE_MB=n] sets the size budget (default 256 MiB).
    Called once by the CLI driver. *)

val max_bytes : unit -> int
val set_max_bytes : int -> unit
(** Set the eviction budget in bytes (clamped to at least 64 KiB — low
    enough that an eviction-pressure benchmark can squeeze a real
    workload, high enough that a single entry always fits). *)

val bytes_used : unit -> int
(** Tracked footprint of the enabled cache directory (0 when disabled);
    initialized by a scan on first use, then maintained incrementally. *)

(** {1 Entry access} *)

val find : kind:string -> string -> string option
(** [find ~kind key]: the stored value bytes, or [None] on any miss —
    absent, truncated, wrong version, or a digest collision (the full key
    is stored and compared). Counts [disk lookups] / [disk hits]. *)

val store : kind:string -> string -> string -> unit
(** [store ~kind key value]: publish atomically, then evict oldest-first
    if the footprint exceeds the budget. Write failures (permissions,
    disk full) are swallowed: the cache degrades to a miss, it never
    fails a compile. *)

val memo :
  kind:string ->
  key:(unit -> string) ->
  encode:('a -> string) ->
  decode:(Wire.cursor -> 'a) ->
  (unit -> 'a) ->
  'a
(** [memo ~kind ~key ~encode ~decode f]: [f ()] when disabled; otherwise
    look the key up, decode on a hit ({!Wire.Malformed} demotes to a
    miss), and on a miss compute, store and return. [key] is only forced
    when the layer is enabled. *)

(** {1 Maintenance} *)

val gc : unit -> int
(** Evict oldest-first until the footprint is within budget; returns the
    number of entries removed. Runs automatically from {!store}. *)

val clear : unit -> unit
(** Remove every entry of the enabled cache (all format versions). *)

(** {1 Shared hygiene helpers}

    Reused by other on-disk caches (the native engine's kernel cache). *)

val write_atomic : string -> string -> unit
(** Write contents to a unique temp file next to the target, then
    [rename] into place.
    @raise Sys_error when the write itself fails. *)

val prune_dir :
  ?group:(string -> string) -> max_bytes:int -> string -> int
(** [prune_dir ~group ~max_bytes d]: bound the total size of the plain
    files directly under [d] by deleting groups of files oldest-first
    (group age = newest member's mtime) until the total is within
    [max_bytes]. [group] maps a file name to its group key (default: each
    file is its own group), so multi-file entries — a kernel's [.ml],
    [.cmxs], [.log] — live and die together. Returns the number of files
    removed; a missing directory is 0. *)
