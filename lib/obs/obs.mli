(** Structured tracing and metrics for the compiler and the SPMD
    simulator: a zero-dependency event buffer with Chrome trace-event
    export.

    Two timestamp domains share one buffer, distinguished by category:

    - {e real time}: {!span}, {!instant} and {!counter} stamp events with
      wall-clock microseconds relative to the trace epoch (the first
      {!enable}); the compiler pipeline uses these.
    - {e simulated time}: {!complete}, {!instant_at}, {!counter_at},
      {!flow_start} and {!flow_end} take explicit timestamps, which the
      SPMD simulator supplies from its virtual clocks. Tracing only ever
      {e reads} those clocks, so a traced run is bit-identical (values,
      clocks, counters) to an untraced one.

    The disabled path is a single [bool] read: guard hot call sites with
    [if Obs.enabled () then ...] and nothing is allocated when tracing is
    off. Lanes in the exported trace are (pid, tid) pairs: the compiler
    reports on pid 0, each simulation instance claims a fresh pid with one
    tid per simulated processor. *)

(** {1 Event model} *)

type arg =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool  (** typed span/instant argument values *)

type phase =
  | X  (** complete slice: [e_ts] .. [e_ts +. e_dur] *)
  | I  (** instant *)
  | C  (** counter sample; series are in [e_args] as [Float]s *)
  | FlowStart  (** flow arrow origin, keyed by [e_id] *)
  | FlowEnd  (** flow arrow target ([bp:"e"]), keyed by [e_id] *)
  | Meta of string  (** metadata record ("process_name" / "thread_name") *)

type event = {
  e_ph : phase;
  e_name : string;
  e_cat : string;  (** "" means no category *)
  e_pid : int;
  e_tid : int;
  e_ts : float;  (** microseconds (since epoch, or simulated *1e6) *)
  e_dur : float;  (** microseconds; [X] only *)
  e_id : int;  (** flow identifier; flow events only *)
  e_args : (string * arg) list;
}

(** {1 Lifecycle} *)

val enabled : unit -> bool
(** The one-word guard every instrumentation site checks first. *)

val enable : unit -> unit
(** Start recording. The first call fixes the trace epoch (wall clock). *)

val disable : unit -> unit
(** Stop recording; the buffer is kept for export. *)

val reset : unit -> unit
(** Drop all buffered events and flow/lane bookkeeping; a subsequent
    {!enable} starts a fresh epoch. *)

val init_env : unit -> unit
(** [DHPF_TRACE=out.json] support: when the variable is set and non-empty,
    enable tracing now and write the Chrome trace there at process exit.
    Called once by the CLI driver. *)

val now_us : unit -> float
(** Wall-clock microseconds since the trace epoch. *)

val epoch_wall : unit -> float
(** Absolute [Unix.gettimeofday] of the trace epoch (0. before the first
    {!enable}); recorded in the export so real-time spans can be mapped
    back to wall-clock times. *)

(** {1 Real-time events (compiler side)} *)

val span : ?cat:string -> ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a complete event. Spans nest by timestamp
    containment (no explicit parent links). [args] is evaluated once, at
    span close, and only when tracing is on. When tracing is off this is
    exactly [f ()]. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
val counter : string -> (string * float) list -> unit

(** {1 Explicit-timestamp events (simulator side; ts/dur in microseconds)} *)

val complete :
  pid:int -> tid:int -> ts:float -> dur:float ->
  ?cat:string -> ?args:(string * arg) list -> string -> unit

val instant_at :
  pid:int -> tid:int -> ts:float -> ?cat:string ->
  ?args:(string * arg) list -> string -> unit

val counter_at :
  pid:int -> tid:int -> ts:float -> string -> (string * float) list -> unit

val next_flow_id : unit -> int
(** Fresh identifier linking one {!flow_start} to one {!flow_end}. *)

val flow_start : pid:int -> tid:int -> ts:float -> id:int -> string -> unit
val flow_end : pid:int -> tid:int -> ts:float -> id:int -> string -> unit

val set_process_name : pid:int -> string -> unit
val set_thread_name : pid:int -> tid:int -> string -> unit

(** {1 Export and inspection} *)

val events : unit -> event list
(** Buffered events in emission order. *)

val events_count : unit -> int

val to_chrome_json : unit -> string
(** The buffer as a Chrome trace-event JSON object ({e JSON Object
    Format}: [{"traceEvents": [...], ...}]), loadable in Perfetto and
    chrome://tracing. All strings are escaped; timestamps are microseconds. *)

val write : string -> unit
(** Write {!to_chrome_json} to a file. *)

val summary : unit -> string
(** Plain-text table aggregating complete events by (category, name):
    count, total and mean duration, sorted by total within category. *)

(** {1 Flight recorder}

    An always-on bounded ring of recent events for postmortems: writers
    claim a slot with one [fetch_and_add] and store the entry with a
    single pointer write, so recording is lock-free, O(1) and safe from
    any domain. When the ring is full the oldest entries are overwritten.
    Disabled (the default) is one atomic load and zero allocation. The
    dump is a best-effort consistent JSON bundle (schema [dhpf-flight/1]);
    a reader racing a writer sees each slot as either the old or the new
    entry, never a torn one. *)

module Recorder : sig
  val schema : string
  (** ["dhpf-flight/1"] *)

  type entry = {
    fr_ts : float;  (** absolute unix seconds *)
    fr_kind : string;  (** ["log"], ["request"], or caller-chosen *)
    fr_level : string;
    fr_rid : string;  (** [""] when the event has no request id *)
    fr_event : string;
    fr_fields : (string * arg) list;
  }

  val enabled : unit -> bool
  val capacity : unit -> int

  val recorded : unit -> int
  (** Total entries recorded since {!start} (may exceed {!capacity}). *)

  val start : ?capacity:int -> unit -> unit
  (** Allocate the ring (default 1024 slots, floor 16) and reset the
      write index. *)

  val stop : unit -> unit
  (** Drop the ring; recording becomes a no-op again. *)

  val record :
    ?ts:float -> ?kind:string -> ?level:string -> ?rid:string ->
    ?fields:(string * arg) list -> string -> unit
  (** [record event] appends one entry ([ts] defaults to now). No-op when
      disabled. *)

  val entries : unit -> entry list
  (** Current ring contents, oldest first (best-effort under concurrent
      writers). *)

  val to_json : unit -> string
  (** The ring as a [dhpf-flight/1] bundle:
      [{"schema":...,"capacity":N,"recorded":M,"dropped":D,
      "entries":[...]}]. *)

  val write : string -> unit
end

(** {1 Structured logging}

    Leveled JSONL event logging (schema [dhpf-log/1]): one JSON object
    per line — [{"schema":"dhpf-log/1","ts":<unix>,"level":"info",
    "rid":"r-3","event":"serve.complete","fields":{...}}] — on a
    mutex-guarded channel flushed per line, so concurrent domains never
    interleave records. Every emitted line also tees into the
    {!Recorder} when it is running. The disabled path is two atomic
    loads and allocates nothing: [fields] is a thunk forced only when a
    sink will consume it. *)

module Log : sig
  val schema : string
  (** ["dhpf-log/1"] *)

  type level = Debug | Info | Warn | Error

  val level_to_string : level -> string
  val level_of_string : string -> level option

  val set_out : string option -> unit
  (** [Some path] opens (append, create) the sink; [Some "-"] logs to
      stderr; [None] closes the current sink. *)

  val close : unit -> unit

  val set_level : level -> unit
  (** Minimum level written to the sink (default [Info]). The recorder
      tee ignores the threshold. *)

  val level : unit -> level

  val enabled : level -> bool
  (** True when an [emit] at this level would reach the sink or the
      flight recorder — the guard for call sites whose field computation
      is not free. *)

  val emit :
    ?rid:string -> ?fields:(unit -> (string * arg) list) ->
    level -> string -> unit

  val debug :
    ?rid:string -> ?fields:(unit -> (string * arg) list) -> string -> unit

  val info :
    ?rid:string -> ?fields:(unit -> (string * arg) list) -> string -> unit

  val warn :
    ?rid:string -> ?fields:(unit -> (string * arg) list) -> string -> unit

  val error :
    ?rid:string -> ?fields:(unit -> (string * arg) list) -> string -> unit

  val init_env : unit -> unit
  (** [DHPF_LOG=path] opens the sink ([-] for stderr); [DHPF_LOG_LEVEL]
      sets the threshold. Called once by the CLI driver. *)
end

(** {1 Metrics}

    The aggregate complement to the event timeline: a process-global
    registry of labelled series — monotone counters, last-value gauges and
    log₂-bucketed histograms — with the same design constraints as
    tracing. The disabled path is a single [bool] read per mutation;
    instrumentation only reads simulated state (never advances clocks), so
    a metered simulation run is bit-identical to a bare one; export is
    dependency-free JSON.

    Handles are interned by (name, sorted labels): creating the same
    series twice returns the same cell, so instrumentation sites can be
    re-entered freely. Series names are namespaced by subsystem with a
    ["sys/"] prefix (e.g. ["sim/comm_msgs"], ["compiler/phase_s"],
    ["iset/cache hits"]) so independent subsystems can never interleave
    into one series by accident. *)

module Metrics : sig
  (** {2 Lifecycle} *)

  val enabled : unit -> bool
  (** The one-word guard; mutation is a no-op when false. *)

  val enable : unit -> unit
  val disable : unit -> unit

  val reset : unit -> unit
  (** Drop every registered series. Existing handles become detached: they
      can still be written through, but no longer appear in snapshots. *)

  val init_env : unit -> unit
  (** [DHPF_METRICS=out.json] support: when set and non-empty, enable
      metrics now and write the JSON export at process exit. Called once
      by the CLI driver. *)

  (** {2 Series handles} *)

  type counter
  type gauge
  type histogram

  val counter : ?labels:(string * string) list -> string -> counter
  val gauge : ?labels:(string * string) list -> string -> gauge

  val histogram : ?labels:(string * string) list -> string -> histogram
  (** Log₂-bucketed: bucket 0 holds values [<= 0]; bucket [b] in
      [1..62] holds [(2^(b-33), 2^(b-32)]] (so [2^-32 .. 2^30] is covered
      exactly and the tails clamp into the extreme buckets). *)

  val inc : counter -> float -> unit
  val incr : counter -> unit
  val set : gauge -> float -> unit
  val observe : histogram -> float -> unit

  val bucket_of : float -> int
  val bucket_upper : int -> float
  (** Inclusive upper edge of a bucket ([0.] for bucket 0). *)

  (** {2 Snapshots} *)

  type histo = {
    hs_count : int;
    hs_sum : float;
    hs_min : float;  (** 0 when the histogram is empty *)
    hs_max : float;
    hs_buckets : (int * int) list;
        (** nonzero (bucket index, count) pairs, ascending by index *)
  }

  type value = VCounter of float | VGauge of float | VHisto of histo

  type sample = {
    m_name : string;
    m_labels : (string * string) list;  (** sorted by key *)
    m_value : value;
  }

  val snapshot : unit -> sample list
  (** Every registered series, sorted by (name, labels) — the stable order
      used by every export. *)

  val merge : sample list -> sample list -> sample list
  (** Pointwise merge of two snapshots: counters and histogram cells add
      (bucket-wise), gauges take the right operand. All three rules are
      associative — asserted by the property tests — so sweep results can
      be folded in any grouping.
      @raise Invalid_argument when one series name carries two types. *)

  val percentile : float -> histo -> float
  (** [percentile q h] estimates the [q]-quantile from the buckets: the
      upper edge of the bucket holding rank [ceil (q * count)], clamped
      into [[hs_min, hs_max]]. Monotone in [q]; exact at [q >= 1.]; off by
      at most one power of two in between. [0.] on an empty histogram. *)

  (** {2 Export} *)

  val report : unit -> string
  (** Plain-text table of every series (histograms with count/sum/min/
      p50/p90/p99/max). *)

  val to_json : unit -> string
  (** The snapshot as stable machine-readable JSON, schema
      [dhpf-metrics/1]:
      [{"schema":"dhpf-metrics/1","metrics":[{"name":...,"labels":{...},
      "type":"counter"|"gauge"|"histogram",...}]}]. *)

  val samples_to_json : sample list -> string
  (** {!to_json} over an explicit (e.g. merged) snapshot. *)

  val write : string -> unit
  (** Write {!to_json} to a file. *)

  val to_prometheus : sample list -> string
  (** The snapshot in Prometheus text exposition format: names are
      sanitized to [[a-zA-Z0-9_:]] (["serve/latency_s"] becomes
      [serve_latency_s]), one [# TYPE] line per family, histograms as
      cumulative [_bucket{le="..."}] series (log₂ upper edges plus
      [+Inf]) with [_sum] and [_count]. *)

  val write_prometheus : string -> unit
  (** Write {!to_prometheus} of the current {!snapshot} to a file
      atomically (temp + rename). *)
end
