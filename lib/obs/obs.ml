(* Structured tracing substrate. Design constraints, in order:
   (1) the disabled path is one boolean read — the simulator's send/recv
       hot paths check [enabled ()] and allocate nothing when it is false;
   (2) tracing never writes simulated state — simulator events carry
       explicit timestamps read from the virtual clocks, so traced and
       untraced runs are bit-identical;
   (3) no dependencies beyond [unix] (for the wall clock), and a
       hand-rolled JSON writer rather than a JSON library. *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type phase = X | I | C | FlowStart | FlowEnd | Meta of string

type event = {
  e_ph : phase;
  e_name : string;
  e_cat : string;
  e_pid : int;
  e_tid : int;
  e_ts : float;
  e_dur : float;
  e_id : int;
  e_args : (string * arg) list;
}

(* growable buffer: a reversed list is fine for the event volumes the
   compiler and simulator produce (tens of thousands), and keeps the
   disabled path free of array bookkeeping *)
let on = ref false
let buf : event list ref = ref []
let n = ref 0
let epoch = ref 0.0
let flow_ctr = ref 0

let enabled () = !on

let enable () =
  if not !on then begin
    on := true;
    if !epoch = 0.0 then epoch := Unix.gettimeofday ()
  end

let disable () = on := false

let reset () =
  buf := [];
  n := 0;
  flow_ctr := 0;
  epoch := if !on then Unix.gettimeofday () else 0.0

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6
let epoch_wall () = !epoch

let push e =
  buf := e :: !buf;
  incr n

let ev ?(cat = "") ?(args = []) ~ph ~pid ~tid ~ts ?(dur = 0.0) ?(id = 0) name =
  push
    { e_ph = ph; e_name = name; e_cat = cat; e_pid = pid; e_tid = tid;
      e_ts = ts; e_dur = dur; e_id = id; e_args = args }

(* ------------------------------------------------------------------ *)
(* Real-time events (compiler side): pid 0, tid 0                      *)
(* ------------------------------------------------------------------ *)

let span ?cat ?args name f =
  if not !on then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_us () in
        let args = match args with None -> [] | Some g -> g () in
        ev ?cat ~args ~ph:X ~pid:0 ~tid:0 ~ts:t0 ~dur:(t1 -. t0) name)
      f
  end

let instant ?cat ?args name =
  if !on then ev ?cat ?args ~ph:I ~pid:0 ~tid:0 ~ts:(now_us ()) name

let counter name series =
  if !on then
    ev ~ph:C ~pid:0 ~tid:0 ~ts:(now_us ())
      ~args:(List.map (fun (s, v) -> (s, Float v)) series)
      name

(* ------------------------------------------------------------------ *)
(* Explicit-timestamp events (simulator side)                          *)
(* ------------------------------------------------------------------ *)

let complete ~pid ~tid ~ts ~dur ?cat ?args name =
  if !on then ev ?cat ?args ~ph:X ~pid ~tid ~ts ~dur name

let instant_at ~pid ~tid ~ts ?cat ?args name =
  if !on then ev ?cat ?args ~ph:I ~pid ~tid ~ts name

let counter_at ~pid ~tid ~ts name series =
  if !on then
    ev ~ph:C ~pid ~tid ~ts
      ~args:(List.map (fun (s, v) -> (s, Float v)) series)
      name

let next_flow_id () =
  incr flow_ctr;
  !flow_ctr

let flow_start ~pid ~tid ~ts ~id name =
  if !on then ev ~cat:"flow" ~ph:FlowStart ~pid ~tid ~ts ~id name

let flow_end ~pid ~tid ~ts ~id name =
  if !on then ev ~cat:"flow" ~ph:FlowEnd ~pid ~tid ~ts ~id name

let set_process_name ~pid name =
  if !on then
    ev ~ph:(Meta "process_name") ~pid ~tid:0 ~ts:0.0
      ~args:[ ("name", Str name) ] "process_name"

let set_thread_name ~pid ~tid name =
  if !on then
    ev ~ph:(Meta "thread_name") ~pid ~tid ~ts:0.0
      ~args:[ ("name", Str name) ] "thread_name"

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let events () = List.rev !buf
let events_count () = !n

(* JSON string escaping per RFC 8259: quote, backslash and control
   characters; everything else (including UTF-8 bytes) passes through *)
let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let jstr b s =
  Buffer.add_char b '"';
  escape_into b s;
  Buffer.add_char b '"'

let jfloat v =
  (* JSON has no infinities/NaN; clamp rather than emit invalid output *)
  if Float.is_nan v then "0"
  else if v = Float.infinity then "1e308"
  else if v = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%.3f" v

let jarg b = function
  | Str s -> jstr b s
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float v -> Buffer.add_string b (jfloat v)
  | Bool v -> Buffer.add_string b (string_of_bool v)

let jargs b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      jstr b k;
      Buffer.add_char b ':';
      jarg b v)
    args;
  Buffer.add_char b '}'

let event_into b e =
  let field k v =
    Buffer.add_char b ',';
    jstr b k;
    Buffer.add_char b ':';
    v ()
  in
  Buffer.add_string b "{\"ph\":";
  let ph_str =
    match e.e_ph with
    | X -> "X"
    | I -> "i"
    | C -> "C"
    | FlowStart -> "s"
    | FlowEnd -> "f"
    | Meta _ -> "M"
  in
  jstr b ph_str;
  field "name" (fun () ->
      jstr b (match e.e_ph with Meta m -> m | _ -> e.e_name));
  if e.e_cat <> "" then field "cat" (fun () -> jstr b e.e_cat);
  field "pid" (fun () -> Buffer.add_string b (string_of_int e.e_pid));
  field "tid" (fun () -> Buffer.add_string b (string_of_int e.e_tid));
  field "ts" (fun () -> Buffer.add_string b (jfloat e.e_ts));
  (match e.e_ph with
  | X -> field "dur" (fun () -> Buffer.add_string b (jfloat e.e_dur))
  | I -> field "s" (fun () -> jstr b "t")
  | FlowStart | FlowEnd ->
      field "id" (fun () -> Buffer.add_string b (string_of_int e.e_id));
      if e.e_ph = FlowEnd then field "bp" (fun () -> jstr b "e")
  | C | Meta _ -> ());
  if e.e_args <> [] then field "args" (fun () -> jargs b e.e_args);
  Buffer.add_char b '}'

let to_chrome_json () =
  let b = Buffer.create (256 * (!n + 2)) in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  Buffer.add_string b "\"generator\":\"dhpf obs\",\"trace_epoch_unix_s\":";
  jstr b (Printf.sprintf "%.6f" !epoch);
  Buffer.add_string b "},\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      event_into b e)
    (events ());
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))

let summary () =
  (* aggregate complete events per (cat, name) *)
  let tbl : (string * string, int ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun e ->
      if e.e_ph = X then begin
        let key = (e.e_cat, e.e_name) in
        let cnt, tot =
          match Hashtbl.find_opt tbl key with
          | Some p -> p
          | None ->
              let p = (ref 0, ref 0.0) in
              Hashtbl.add tbl key p;
              p
        in
        incr cnt;
        tot := !tot +. e.e_dur
      end)
    (events ());
  let rows =
    Hashtbl.fold (fun (c, nm) (cnt, tot) acc -> (c, nm, !cnt, !tot) :: acc) tbl []
    |> List.sort (fun (c1, _, _, t1) (c2, _, _, t2) ->
           match compare c1 c2 with 0 -> compare t2 t1 | o -> o)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-12s %-36s %10s %14s %12s\n" "category" "span" "count"
       "total (ms)" "mean (us)");
  List.iter
    (fun (c, nm, cnt, tot) ->
      Buffer.add_string b
        (Printf.sprintf "%-12s %-36s %10d %14.3f %12.2f\n"
           (if c = "" then "-" else c)
           nm cnt (tot /. 1e3)
           (tot /. float_of_int cnt)))
    rows;
  Buffer.contents b

let init_env () =
  match Sys.getenv_opt "DHPF_TRACE" with
  | Some path when path <> "" ->
      enable ();
      at_exit (fun () -> try write path with Sys_error _ -> ())
  | _ -> ()
