(* Structured tracing substrate. Design constraints, in order:
   (1) the disabled path is one boolean read — the simulator's send/recv
       hot paths check [enabled ()] and allocate nothing when it is false;
   (2) tracing never writes simulated state — simulator events carry
       explicit timestamps read from the virtual clocks, so traced and
       untraced runs are bit-identical;
   (3) no dependencies beyond [unix] (for the wall clock), and a
       hand-rolled JSON writer rather than a JSON library. *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type phase = X | I | C | FlowStart | FlowEnd | Meta of string

type event = {
  e_ph : phase;
  e_name : string;
  e_cat : string;
  e_pid : int;
  e_tid : int;
  e_ts : float;
  e_dur : float;
  e_id : int;
  e_args : (string * arg) list;
}

(* growable buffer: a reversed list is fine for the event volumes the
   compiler and simulator produce (tens of thousands), and keeps the
   disabled path free of array bookkeeping. The enabled flag and flow-id
   counter are atomics and the buffer is mutex-protected so parallel
   compiler phases can emit events concurrently; the disabled path is
   still one atomic load and takes no lock. *)
let on = Atomic.make false
let buf_mu = Mutex.create ()
let buf : event list ref = ref []
let n = ref 0
let epoch = ref 0.0
let flow_ctr = Atomic.make 0

let enabled () = Atomic.get on

let enable () =
  if not (Atomic.get on) then begin
    Atomic.set on true;
    if !epoch = 0.0 then epoch := Unix.gettimeofday ()
  end

let disable () = Atomic.set on false

let reset () =
  Mutex.protect buf_mu (fun () ->
      buf := [];
      n := 0);
  Atomic.set flow_ctr 0;
  epoch := (if Atomic.get on then Unix.gettimeofday () else 0.0)

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6
let epoch_wall () = !epoch

let push e =
  Mutex.protect buf_mu (fun () ->
      buf := e :: !buf;
      incr n)

let ev ?(cat = "") ?(args = []) ~ph ~pid ~tid ~ts ?(dur = 0.0) ?(id = 0) name =
  push
    { e_ph = ph; e_name = name; e_cat = cat; e_pid = pid; e_tid = tid;
      e_ts = ts; e_dur = dur; e_id = id; e_args = args }

(* ------------------------------------------------------------------ *)
(* Real-time events (compiler side): pid 0, tid 0                      *)
(* ------------------------------------------------------------------ *)

let span ?cat ?args name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_us () in
        let args = match args with None -> [] | Some g -> g () in
        ev ?cat ~args ~ph:X ~pid:0 ~tid:0 ~ts:t0 ~dur:(t1 -. t0) name)
      f
  end

let instant ?cat ?args name =
  if Atomic.get on then ev ?cat ?args ~ph:I ~pid:0 ~tid:0 ~ts:(now_us ()) name

let counter name series =
  if Atomic.get on then
    ev ~ph:C ~pid:0 ~tid:0 ~ts:(now_us ())
      ~args:(List.map (fun (s, v) -> (s, Float v)) series)
      name

(* ------------------------------------------------------------------ *)
(* Explicit-timestamp events (simulator side)                          *)
(* ------------------------------------------------------------------ *)

let complete ~pid ~tid ~ts ~dur ?cat ?args name =
  if Atomic.get on then ev ?cat ?args ~ph:X ~pid ~tid ~ts ~dur name

let instant_at ~pid ~tid ~ts ?cat ?args name =
  if Atomic.get on then ev ?cat ?args ~ph:I ~pid ~tid ~ts name

let counter_at ~pid ~tid ~ts name series =
  if Atomic.get on then
    ev ~ph:C ~pid ~tid ~ts
      ~args:(List.map (fun (s, v) -> (s, Float v)) series)
      name

let next_flow_id () = Atomic.fetch_and_add flow_ctr 1 + 1

let flow_start ~pid ~tid ~ts ~id name =
  if Atomic.get on then ev ~cat:"flow" ~ph:FlowStart ~pid ~tid ~ts ~id name

let flow_end ~pid ~tid ~ts ~id name =
  if Atomic.get on then ev ~cat:"flow" ~ph:FlowEnd ~pid ~tid ~ts ~id name

let set_process_name ~pid name =
  if Atomic.get on then
    ev ~ph:(Meta "process_name") ~pid ~tid:0 ~ts:0.0
      ~args:[ ("name", Str name) ] "process_name"

let set_thread_name ~pid ~tid name =
  if Atomic.get on then
    ev ~ph:(Meta "thread_name") ~pid ~tid ~ts:0.0
      ~args:[ ("name", Str name) ] "thread_name"

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let events () = Mutex.protect buf_mu (fun () -> List.rev !buf)
let events_count () = Mutex.protect buf_mu (fun () -> !n)

(* JSON string escaping per RFC 8259: quote, backslash and control
   characters; everything else (including UTF-8 bytes) passes through *)
let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let jstr b s =
  Buffer.add_char b '"';
  escape_into b s;
  Buffer.add_char b '"'

let jfloat v =
  (* JSON has no infinities/NaN; clamp rather than emit invalid output *)
  if Float.is_nan v then "0"
  else if v = Float.infinity then "1e308"
  else if v = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%.3f" v

let jarg b = function
  | Str s -> jstr b s
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float v -> Buffer.add_string b (jfloat v)
  | Bool v -> Buffer.add_string b (string_of_bool v)

let jargs b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      jstr b k;
      Buffer.add_char b ':';
      jarg b v)
    args;
  Buffer.add_char b '}'

let event_into b e =
  let field k v =
    Buffer.add_char b ',';
    jstr b k;
    Buffer.add_char b ':';
    v ()
  in
  Buffer.add_string b "{\"ph\":";
  let ph_str =
    match e.e_ph with
    | X -> "X"
    | I -> "i"
    | C -> "C"
    | FlowStart -> "s"
    | FlowEnd -> "f"
    | Meta _ -> "M"
  in
  jstr b ph_str;
  field "name" (fun () ->
      jstr b (match e.e_ph with Meta m -> m | _ -> e.e_name));
  if e.e_cat <> "" then field "cat" (fun () -> jstr b e.e_cat);
  field "pid" (fun () -> Buffer.add_string b (string_of_int e.e_pid));
  field "tid" (fun () -> Buffer.add_string b (string_of_int e.e_tid));
  field "ts" (fun () -> Buffer.add_string b (jfloat e.e_ts));
  (match e.e_ph with
  | X -> field "dur" (fun () -> Buffer.add_string b (jfloat e.e_dur))
  | I -> field "s" (fun () -> jstr b "t")
  | FlowStart | FlowEnd ->
      field "id" (fun () -> Buffer.add_string b (string_of_int e.e_id));
      if e.e_ph = FlowEnd then field "bp" (fun () -> jstr b "e")
  | C | Meta _ -> ());
  if e.e_args <> [] then field "args" (fun () -> jargs b e.e_args);
  Buffer.add_char b '}'

let to_chrome_json () =
  let b = Buffer.create (256 * (events_count () + 2)) in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  Buffer.add_string b "\"generator\":\"dhpf obs\",\"trace_epoch_unix_s\":";
  jstr b (Printf.sprintf "%.6f" !epoch);
  Buffer.add_string b "},\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      event_into b e)
    (events ());
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))

let summary () =
  (* aggregate complete events per (cat, name) *)
  let tbl : (string * string, int ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun e ->
      if e.e_ph = X then begin
        let key = (e.e_cat, e.e_name) in
        let cnt, tot =
          match Hashtbl.find_opt tbl key with
          | Some p -> p
          | None ->
              let p = (ref 0, ref 0.0) in
              Hashtbl.add tbl key p;
              p
        in
        incr cnt;
        tot := !tot +. e.e_dur
      end)
    (events ());
  let rows =
    Hashtbl.fold (fun (c, nm) (cnt, tot) acc -> (c, nm, !cnt, !tot) :: acc) tbl []
    |> List.sort (fun (c1, _, _, t1) (c2, _, _, t2) ->
           match compare c1 c2 with 0 -> compare t2 t1 | o -> o)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-12s %-36s %10s %14s %12s\n" "category" "span" "count"
       "total (ms)" "mean (us)");
  List.iter
    (fun (c, nm, cnt, tot) ->
      Buffer.add_string b
        (Printf.sprintf "%-12s %-36s %10d %14.3f %12.2f\n"
           (if c = "" then "-" else c)
           nm cnt (tot /. 1e3)
           (tot /. float_of_int cnt)))
    rows;
  Buffer.contents b

let init_env () =
  match Sys.getenv_opt "DHPF_TRACE" with
  | Some path when path <> "" ->
      enable ();
      at_exit (fun () -> try write path with Sys_error _ -> ())
  | _ -> ()

(* precise numbers for the log/flight-recorder/prometheus exporters:
   jfloat's fixed %.3f is right for microsecond trace timestamps but
   truncates latencies-in-seconds and absolute unix times; %.17g
   round-trips every float and stays valid JSON once non-finite values
   are clamped *)
let jnum v =
  if Float.is_nan v then "0"
  else if v = Float.infinity then "1e308"
  else if v = Float.neg_infinity then "-1e308"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let jarg_num b = function
  | Str s -> jstr b s
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float v -> Buffer.add_string b (jnum v)
  | Bool v -> Buffer.add_string b (string_of_bool v)

let jfields b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      jstr b k;
      Buffer.add_char b ':';
      jarg_num b v)
    fields;
  Buffer.add_char b '}'

(* ------------------------------------------------------------------ *)
(* Flight recorder: an always-on bounded ring of recent events          *)
(* ------------------------------------------------------------------ *)

module Recorder = struct
  (* A fixed array of [entry option] slots plus one atomic write index:
     writers claim a slot with fetch_and_add and overwrite it with a
     single pointer store, so recording is lock-free and O(1) and the
     ring self-bounds by overwriting the oldest entries. Readers (the
     dump path) may observe a slot mid-overwrite as either the old or
     the new entry — never a torn one — which is the right contract for
     a postmortem buffer. Disabled (the default) is an empty array: one
     atomic load, nothing allocated. *)

  let schema = "dhpf-flight/1"

  type entry = {
    fr_ts : float;  (* absolute unix seconds *)
    fr_kind : string;  (* "log" | "request" | caller-chosen *)
    fr_level : string;
    fr_rid : string;  (* "" when the event has no request id *)
    fr_event : string;
    fr_fields : (string * arg) list;
  }

  let slots : entry option array Atomic.t = Atomic.make [||]
  let widx = Atomic.make 0

  let enabled () = Array.length (Atomic.get slots) > 0
  let capacity () = Array.length (Atomic.get slots)
  let recorded () = Atomic.get widx

  let start ?(capacity = 1024) () =
    Atomic.set widx 0;
    Atomic.set slots (Array.make (max 16 capacity) None)

  let stop () = Atomic.set slots [||]

  let record ?ts ?(kind = "log") ?(level = "info") ?(rid = "")
      ?(fields = []) event =
    let a = Atomic.get slots in
    let n = Array.length a in
    if n > 0 then begin
      let e =
        {
          fr_ts = (match ts with Some t -> t | None -> Unix.gettimeofday ());
          fr_kind = kind;
          fr_level = level;
          fr_rid = rid;
          fr_event = event;
          fr_fields = fields;
        }
      in
      let i = Atomic.fetch_and_add widx 1 in
      a.(i mod n) <- Some e
    end

  let entries () =
    let a = Atomic.get slots in
    let n = Array.length a in
    if n = 0 then []
    else begin
      let w = Atomic.get widx in
      let lo = if w > n then w - n else 0 in
      List.filter_map (fun k -> a.((lo + k) mod n)) (List.init (w - lo) Fun.id)
    end

  let entry_into b e =
    Buffer.add_string b "{\"ts\":";
    Buffer.add_string b (jnum e.fr_ts);
    Buffer.add_string b ",\"kind\":";
    jstr b e.fr_kind;
    Buffer.add_string b ",\"level\":";
    jstr b e.fr_level;
    if e.fr_rid <> "" then begin
      Buffer.add_string b ",\"rid\":";
      jstr b e.fr_rid
    end;
    Buffer.add_string b ",\"event\":";
    jstr b e.fr_event;
    if e.fr_fields <> [] then begin
      Buffer.add_string b ",\"fields\":";
      jfields b e.fr_fields
    end;
    Buffer.add_char b '}'

  let to_json () =
    let es = entries () in
    let total = recorded () in
    let b = Buffer.create (256 * (List.length es + 2)) in
    Buffer.add_string b "{\"schema\":";
    jstr b schema;
    Buffer.add_string b
      (Printf.sprintf ",\"capacity\":%d,\"recorded\":%d,\"dropped\":%d"
         (capacity ()) total
         (max 0 (total - capacity ())));
    Buffer.add_string b ",\"entries\":[";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '\n';
        entry_into b e)
      es;
    Buffer.add_string b "\n]}\n";
    Buffer.contents b

  let write path =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_json ()))
end

(* ------------------------------------------------------------------ *)
(* Structured leveled JSONL logging (dhpf-log/1)                        *)
(* ------------------------------------------------------------------ *)

module Log = struct
  (* One JSON object per line on a mutex-guarded channel, flushed per
     line so `tail -f` and crash postmortems see complete records. The
     disabled path is two atomic loads and allocates nothing: [fields]
     is a thunk forced only when a sink (the channel or the flight
     recorder, which tees every line) will consume it. *)

  let schema = "dhpf-log/1"

  type level = Debug | Info | Warn | Error

  let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

  let level_to_string = function
    | Debug -> "debug"
    | Info -> "info"
    | Warn -> "warn"
    | Error -> "error"

  let level_of_string = function
    | "debug" -> Some Debug
    | "info" -> Some Info
    | "warn" -> Some Warn
    | "error" -> Some Error
    | _ -> None

  let log_mu = Mutex.create ()

  (* (channel, we_own_it): "-" maps to stderr, which is never closed *)
  let out : (out_channel * bool) option ref = ref None
  let sink = Atomic.make false
  let threshold = Atomic.make (rank Info)

  let set_level l = Atomic.set threshold (rank l)

  let level () =
    match Atomic.get threshold with
    | 0 -> Debug
    | 1 -> Info
    | 2 -> Warn
    | _ -> Error

  let close_locked () =
    match !out with
    | Some (oc, owned) ->
        (try flush oc with Sys_error _ -> ());
        if owned then (try close_out oc with Sys_error _ -> ());
        out := None
    | None -> ()

  let set_out path =
    Mutex.protect log_mu (fun () ->
        close_locked ();
        match path with
        | None -> Atomic.set sink false
        | Some "-" ->
            out := Some (Stdlib.stderr, false);
            Atomic.set sink true
        | Some p ->
            out := Some (open_out_gen [ Open_append; Open_creat ] 0o644 p, true);
            Atomic.set sink true)

  let close () = set_out None

  let enabled lvl =
    (Atomic.get sink && rank lvl >= Atomic.get threshold)
    || Recorder.enabled ()

  let line ~ts ~lvl ~rid ~fields event =
    let b = Buffer.create 160 in
    Buffer.add_string b "{\"schema\":";
    jstr b schema;
    Buffer.add_string b ",\"ts\":";
    Buffer.add_string b (jnum ts);
    Buffer.add_string b ",\"level\":";
    jstr b (level_to_string lvl);
    (match rid with
    | Some r ->
        Buffer.add_string b ",\"rid\":";
        jstr b r
    | None -> ());
    Buffer.add_string b ",\"event\":";
    jstr b event;
    if fields <> [] then begin
      Buffer.add_string b ",\"fields\":";
      jfields b fields
    end;
    Buffer.add_char b '}';
    Buffer.contents b

  let emit ?rid ?(fields = fun () -> []) lvl event =
    let to_sink = Atomic.get sink && rank lvl >= Atomic.get threshold in
    let to_rec = Recorder.enabled () in
    if to_sink || to_rec then begin
      let ts = Unix.gettimeofday () in
      let fs = fields () in
      if to_rec then
        Recorder.record ~ts ~kind:"log" ~level:(level_to_string lvl)
          ~rid:(Option.value rid ~default:"") ~fields:fs event;
      if to_sink then begin
        let s = line ~ts ~lvl ~rid ~fields:fs event in
        Mutex.protect log_mu (fun () ->
            match !out with
            | Some (oc, _) -> (
                try
                  output_string oc s;
                  output_char oc '\n';
                  flush oc
                with Sys_error _ -> ())
            | None -> ())
      end
    end

  let debug ?rid ?fields event = emit ?rid ?fields Debug event
  let info ?rid ?fields event = emit ?rid ?fields Info event
  let warn ?rid ?fields event = emit ?rid ?fields Warn event
  let error ?rid ?fields event = emit ?rid ?fields Error event

  let init_env () =
    (match Sys.getenv_opt "DHPF_LOG_LEVEL" with
    | Some s -> ( match level_of_string s with Some l -> set_level l | None -> ())
    | None -> ());
    match Sys.getenv_opt "DHPF_LOG" with
    | Some path when path <> "" -> set_out (Some path)
    | _ -> ()
end

(* ------------------------------------------------------------------ *)
(* Metrics: the aggregate complement to the event timeline              *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  (* Same design constraints as tracing: the disabled path is one boolean
     read (mutation sites check [enabled ()] and touch nothing when off),
     instrumentation only ever *reads* simulated state, and export is
     hand-rolled RFC-8259 JSON. Unlike trace events, metrics are
     pre-aggregated: a series is (name, sorted labels) -> one counter,
     gauge or log2-bucketed histogram cell, so cost is O(series), not
     O(events). *)

  let m_on = Atomic.make false
  let enabled () = Atomic.get m_on
  let enable () = Atomic.set m_on true
  let disable () = Atomic.set m_on false

  (* -------------------- histogram cells -------------------- *)

  (* Log2 buckets: bucket 0 holds values <= 0; bucket b (1..62) holds
     (2^(b-33), 2^(b-32)], so the range 2^-32 .. 2^30 — virtual seconds on
     one side, byte counts on the other — is covered exactly, with the two
     extreme buckets absorbing the clamped tails. *)
  let n_buckets = 63

  let bucket_of v =
    if v <= 0.0 then 0
    else
      let _, e = Float.frexp v in
      (* v in (2^(e-1), 2^e] up to the half-open convention of frexp *)
      let b = e + 32 in
      if b < 1 then 1 else if b > n_buckets - 1 then n_buckets - 1 else b

  let bucket_upper b = if b <= 0 then 0.0 else Float.ldexp 1.0 (b - 32)

  (* histogram cells carry several fields that must move together, so they
     are guarded by a per-cell mutex rather than made individually atomic *)
  type hcell = {
    h_mu : Mutex.t;
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_buckets : int array;
  }

  let hcell () =
    { h_mu = Mutex.create (); h_count = 0; h_sum = 0.0;
      h_min = Float.infinity; h_max = Float.neg_infinity;
      h_buckets = Array.make n_buckets 0 }

  (* -------------------- registry -------------------- *)

  (* counters and gauges are single [float Atomic.t] cells: increments use
     a CAS loop, so concurrent bumps from different domains never lose
     counts and a post-join snapshot is exact *)
  type cell =
    | KCounter of float Atomic.t
    | KGauge of float Atomic.t
    | KHisto of hcell

  type counter = float Atomic.t
  type gauge = float Atomic.t
  type histogram = hcell

  let reg_mu = Mutex.create ()

  let registry : (string * (string * string) list, cell) Hashtbl.t =
    Hashtbl.create 64

  let reset () = Mutex.protect reg_mu (fun () -> Hashtbl.reset registry)

  let norm_labels labels = List.sort compare labels

  let intern name labels mk =
    let labels = norm_labels labels in
    let key = (name, labels) in
    Mutex.protect reg_mu @@ fun () ->
    match Hashtbl.find_opt registry key with
    | Some c -> c
    | None ->
        let c = mk () in
        Hashtbl.add registry key c;
        c

  let counter ?(labels = []) name : counter =
    match intern name labels (fun () -> KCounter (Atomic.make 0.0)) with
    | KCounter r -> r
    | _ -> invalid_arg ("metric " ^ name ^ " already registered with another type")

  let gauge ?(labels = []) name : gauge =
    match intern name labels (fun () -> KGauge (Atomic.make 0.0)) with
    | KGauge r -> r
    | _ -> invalid_arg ("metric " ^ name ^ " already registered with another type")

  let histogram ?(labels = []) name : histogram =
    match intern name labels (fun () -> KHisto (hcell ())) with
    | KHisto h -> h
    | _ -> invalid_arg ("metric " ^ name ^ " already registered with another type")

  (* mutation: one atomic load when disabled; increments are lock-free
     CAS loops so no concurrent bump is ever lost *)
  let rec atomic_add (r : float Atomic.t) v =
    let cur = Atomic.get r in
    if not (Atomic.compare_and_set r cur (cur +. v)) then atomic_add r v

  let inc (c : counter) v = if Atomic.get m_on then atomic_add c v
  let incr (c : counter) = if Atomic.get m_on then atomic_add c 1.0
  let set (g : gauge) v = if Atomic.get m_on then Atomic.set g v

  let observe (h : histogram) v =
    if Atomic.get m_on then
      Mutex.protect h.h_mu (fun () ->
          h.h_count <- h.h_count + 1;
          h.h_sum <- h.h_sum +. v;
          if v < h.h_min then h.h_min <- v;
          if v > h.h_max then h.h_max <- v;
          let b = bucket_of v in
          h.h_buckets.(b) <- h.h_buckets.(b) + 1)

  (* -------------------- snapshots -------------------- *)

  type histo = {
    hs_count : int;
    hs_sum : float;
    hs_min : float;  (** 0 when the histogram is empty *)
    hs_max : float;
    hs_buckets : (int * int) list;
        (** nonzero (bucket index, count) pairs, ascending by index *)
  }

  type value = VCounter of float | VGauge of float | VHisto of histo

  type sample = {
    m_name : string;
    m_labels : (string * string) list;  (** sorted by key *)
    m_value : value;
  }

  let histo_of (h : hcell) : histo =
    Mutex.protect h.h_mu @@ fun () ->
    let buckets = ref [] in
    for b = n_buckets - 1 downto 0 do
      if h.h_buckets.(b) > 0 then buckets := (b, h.h_buckets.(b)) :: !buckets
    done;
    {
      hs_count = h.h_count;
      hs_sum = h.h_sum;
      hs_min = (if h.h_count = 0 then 0.0 else h.h_min);
      hs_max = (if h.h_count = 0 then 0.0 else h.h_max);
      hs_buckets = !buckets;
    }

  let sample_order a b =
    match compare a.m_name b.m_name with
    | 0 -> compare a.m_labels b.m_labels
    | o -> o

  let snapshot () : sample list =
    (* copy the cell list under the registry lock, then read each cell
       outside it (histogram reads take their own per-cell lock) *)
    let cells =
      Mutex.protect reg_mu (fun () ->
          Hashtbl.fold (fun k c acc -> (k, c) :: acc) registry [])
    in
    List.map
      (fun ((name, labels), cell) ->
        let v =
          match cell with
          | KCounter r -> VCounter (Atomic.get r)
          | KGauge r -> VGauge (Atomic.get r)
          | KHisto h -> VHisto (histo_of h)
        in
        { m_name = name; m_labels = labels; m_value = v })
      cells
    |> List.sort sample_order

  (* merge two snapshots (e.g. from per-run registries of a sweep):
     counters and histogram cells add, gauges take the right operand —
     all three rules are associative, which the property tests assert *)
  let merge_histo a b =
    let rec add xs ys =
      match (xs, ys) with
      | [], r | r, [] -> r
      | (bx, cx) :: tx, (by, cy) :: ty ->
          if bx < by then (bx, cx) :: add tx ys
          else if by < bx then (by, cy) :: add xs ty
          else (bx, cx + cy) :: add tx ty
    in
    if a.hs_count = 0 then b
    else if b.hs_count = 0 then a
    else
      {
        hs_count = a.hs_count + b.hs_count;
        hs_sum = a.hs_sum +. b.hs_sum;
        hs_min = Float.min a.hs_min b.hs_min;
        hs_max = Float.max a.hs_max b.hs_max;
        hs_buckets = add a.hs_buckets b.hs_buckets;
      }

  let merge (a : sample list) (b : sample list) : sample list =
    let rec go xs ys =
      match (xs, ys) with
      | [], r | r, [] -> r
      | x :: tx, y :: ty -> (
          match sample_order x y with
          | c when c < 0 -> x :: go tx ys
          | c when c > 0 -> y :: go xs ty
          | _ ->
              let v =
                match (x.m_value, y.m_value) with
                | VCounter u, VCounter v -> VCounter (u +. v)
                | VGauge _, VGauge v -> VGauge v
                | VHisto u, VHisto v -> VHisto (merge_histo u v)
                | _ ->
                    invalid_arg
                      ("metric " ^ x.m_name ^ ": merging mismatched types")
              in
              { x with m_value = v } :: go tx ty)
    in
    go (List.sort sample_order a) (List.sort sample_order b)

  (* percentile estimate from the bucket histogram: the value at rank
     ceil(q*count) is somewhere in its bucket; report the bucket's upper
     edge clamped into [min, max], so the estimate is never below the true
     minimum, never above the true maximum, and off by at most one
     power of two in between *)
  let percentile q (h : histo) : float =
    if h.hs_count = 0 then 0.0
    else if q <= 0.0 then h.hs_min
    else if q >= 1.0 then h.hs_max
    else begin
      let rank =
        let r = int_of_float (ceil (q *. float_of_int h.hs_count)) in
        if r < 1 then 1 else if r > h.hs_count then h.hs_count else r
      in
      let rec find cum = function
        | [] -> h.hs_max
        | (b, c) :: rest ->
            if cum + c >= rank then bucket_upper b else find (cum + c) rest
      in
      let est = find 0 h.hs_buckets in
      Float.min h.hs_max (Float.max h.hs_min est)
    end

  (* -------------------- reporting -------------------- *)

  let label_string labels =
    match labels with
    | [] -> ""
    | _ ->
        "{"
        ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
        ^ "}"

  let report () =
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf "%-52s %-10s %s\n" "metric" "type" "value");
    List.iter
      (fun s ->
        let name = s.m_name ^ label_string s.m_labels in
        match s.m_value with
        | VCounter v ->
            Buffer.add_string b
              (Printf.sprintf "%-52s %-10s %.6g\n" name "counter" v)
        | VGauge v ->
            Buffer.add_string b
              (Printf.sprintf "%-52s %-10s %.6g\n" name "gauge" v)
        | VHisto h ->
            Buffer.add_string b
              (Printf.sprintf
                 "%-52s %-10s count=%d sum=%.6g min=%.6g p50=%.6g p90=%.6g \
                  p99=%.6g max=%.6g\n"
                 name "histogram" h.hs_count h.hs_sum h.hs_min
                 (percentile 0.50 h) (percentile 0.90 h) (percentile 0.99 h)
                 h.hs_max))
      (snapshot ());
    Buffer.contents b

  (* machine-readable export: schema dhpf-metrics/1, stable ordering *)
  let samples_to_json (samples : sample list) : string =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"schema\":\"dhpf-metrics/1\",\"metrics\":[";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "\n{\"name\":";
        jstr b s.m_name;
        if s.m_labels <> [] then begin
          Buffer.add_string b ",\"labels\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char b ',';
              jstr b k;
              Buffer.add_char b ':';
              jstr b v)
            s.m_labels;
          Buffer.add_char b '}'
        end;
        (match s.m_value with
        | VCounter v ->
            Buffer.add_string b ",\"type\":\"counter\",\"value\":";
            Buffer.add_string b (jfloat v)
        | VGauge v ->
            Buffer.add_string b ",\"type\":\"gauge\",\"value\":";
            Buffer.add_string b (jfloat v)
        | VHisto h ->
            Buffer.add_string b
              (Printf.sprintf ",\"type\":\"histogram\",\"count\":%d,\"sum\":%s"
                 h.hs_count (jfloat h.hs_sum));
            Buffer.add_string b
              (Printf.sprintf ",\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s"
                 (jfloat h.hs_min) (jfloat h.hs_max)
                 (jfloat (percentile 0.50 h))
                 (jfloat (percentile 0.90 h))
                 (jfloat (percentile 0.99 h)));
            Buffer.add_string b ",\"buckets\":[";
            List.iteri
              (fun j (bk, c) ->
                if j > 0 then Buffer.add_char b ',';
                Buffer.add_string b (Printf.sprintf "[%d,%d]" bk c))
              h.hs_buckets;
            Buffer.add_char b ']');
        Buffer.add_char b '}')
      samples;
    Buffer.add_string b "\n]}\n";
    Buffer.contents b

  let to_json () = samples_to_json (snapshot ())

  let write path =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_json ()))

  (* ---------------- Prometheus text exposition ---------------- *)

  let prom_ident name =
    let b = Bytes.of_string name in
    Bytes.iteri
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
        | _ -> Bytes.set b i '_')
      b;
    let s = Bytes.to_string b in
    if s = "" then "_"
    else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

  let prom_label_value v =
    let b = Buffer.create (String.length v + 2) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b

  let prom_num v =
    if Float.is_nan v then "NaN"
    else if v = Float.infinity then "+Inf"
    else if v = Float.neg_infinity then "-Inf"
    else jnum v

  (* labels (plus an optional trailing le="...") in exposition syntax *)
  let prom_labels ?le labels =
    let parts =
      List.map
        (fun (k, v) ->
          Printf.sprintf "%s=\"%s\"" (prom_ident k) (prom_label_value v))
        labels
      @ match le with None -> [] | Some e -> [ Printf.sprintf "le=\"%s\"" e ]
    in
    match parts with [] -> "" | _ -> "{" ^ String.concat "," parts ^ "}"

  let to_prometheus samples =
    let b = Buffer.create 4096 in
    let last_family = ref "" in
    List.iter
      (fun s ->
        let name = prom_ident s.m_name in
        let typ =
          match s.m_value with
          | VCounter _ -> "counter"
          | VGauge _ -> "gauge"
          | VHisto _ -> "histogram"
        in
        if name <> !last_family then begin
          last_family := name;
          Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
        end;
        match s.m_value with
        | VCounter v | VGauge v ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %s\n" name (prom_labels s.m_labels)
                 (prom_num v))
        | VHisto h ->
            let cum = ref 0 in
            List.iter
              (fun (bk, c) ->
                cum := !cum + c;
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" name
                     (prom_labels
                        ~le:(prom_num (bucket_upper bk))
                        s.m_labels)
                     !cum))
              h.hs_buckets;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (prom_labels ~le:"+Inf" s.m_labels)
                 h.hs_count);
            Buffer.add_string b
              (Printf.sprintf "%s_sum%s %s\n" name (prom_labels s.m_labels)
                 (prom_num h.hs_sum));
            Buffer.add_string b
              (Printf.sprintf "%s_count%s %d\n" name (prom_labels s.m_labels)
                 h.hs_count))
      samples;
    Buffer.contents b

  let write_prometheus path =
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_prometheus (snapshot ())));
    Sys.rename tmp path

  let init_env () =
    match Sys.getenv_opt "DHPF_METRICS" with
    | Some path when path <> "" ->
        enable ();
        at_exit (fun () -> try write path with Sys_error _ -> ())
    | _ -> ()
end
