(** Wall-clock phase accounting, used to regenerate the paper's Table 1
    (breakdown of dHPF compilation time). Phases may nest; a phase's time is
    attributed to its own label and, implicitly, to every enclosing label
    (the paper's table shows nested refinements the same way).

    Safe to share across domains: the totals table is mutex-protected and
    the nesting stack is domain-local, so the parallel compiler phases can
    attribute time to one profiler concurrently — each domain's spans nest
    independently, and a label's total is the sum over domains. *)

type t = {
  totals : (string, float) Hashtbl.t;
  mu : Mutex.t;
  stack : (string * float) list ref Domain.DLS.key;
      (** per-domain nesting stack: re-entrancy and outermost-ness are
          properties of one domain's call chain *)
  mutable t0 : float;
}

let create () =
  {
    totals = Hashtbl.create 32;
    mu = Mutex.create ();
    stack = Domain.DLS.new_key (fun () -> ref []);
    t0 = Unix.gettimeofday ();
  }

let reset t =
  Mutex.protect t.mu (fun () -> Hashtbl.reset t.totals);
  Domain.DLS.get t.stack := [];
  t.t0 <- Unix.gettimeofday ()

let add t label dt =
  Mutex.protect t.mu (fun () ->
      let cur = try Hashtbl.find t.totals label with Not_found -> 0.0 in
      Hashtbl.replace t.totals label (cur +. dt))

(** Time [f], attributing the elapsed time to [label]. Re-entrant: nested
    timings of the same label are not double counted (and re-entry emits no
    trace span either, matching the accounting). Outermost phases attach a
    snapshot of the integer-set cache counters to their span, so a Chrome
    trace of a compile carries the cache behaviour of each top-level pass.
    Spans carry the domain id as their trace [tid], so parallel compiles
    render one track per domain. *)
let time t label f =
  let stack = Domain.DLS.get t.stack in
  if List.exists (fun (l, _) -> l = label) !stack then f ()
  else begin
    let start = Unix.gettimeofday () in
    let outermost = !stack = [] in
    stack := (label, start) :: !stack;
    let traced = Obs.enabled () in
    let ts = if traced then Obs.now_us () else 0.0 in
    Fun.protect
      ~finally:(fun () ->
        stack := List.tl !stack;
        add t label (Unix.gettimeofday () -. start);
        if traced then begin
          let dur = Obs.now_us () -. ts in
          let args =
            if outermost then
              List.map (fun (n, v) -> (n, Obs.Int v)) (Iset.Stats.report ())
            else []
          in
          Obs.complete ~pid:0
            ~tid:(Domain.self () :> int)
            ~ts ~dur ~cat:"phase" ~args label;
          (* counter series are keyed by name alone in the Chrome trace, so
             the name carries a subsystem prefix: a samely-named series
             emitted by another subsystem (e.g. the simulator) would
             otherwise interleave into this track *)
          if outermost then
            Obs.counter "iset/cache hits"
              [ ("sat", float_of_int (Iset.Stats.count Iset.Stats.sat_hits));
                ( "simplify",
                  float_of_int (Iset.Stats.count Iset.Stats.simplify_hits) );
                ("gist", float_of_int (Iset.Stats.count Iset.Stats.gist_hits));
                ( "subset",
                  float_of_int (Iset.Stats.count Iset.Stats.subset_hits) ) ]
        end)
      f
  end

let total t label =
  Mutex.protect t.mu (fun () ->
      try Hashtbl.find t.totals label with Not_found -> 0.0)

let elapsed t = Unix.gettimeofday () -. t.t0

let labels t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold (fun l _ acc -> l :: acc) t.totals [])
  |> List.sort compare

(** The global profiler used by the compiler driver. *)
let global = create ()
