(** The SPMD intermediate representation emitted by the compiler and executed
    by the {!Spmdsim} machine simulator.

    Loop bounds, guards and subscripts reuse the expression language of
    {!Iset.Codegen} (affine terms with max/min/floor/ceil/alignment); loop
    variables and symbolic parameters are referenced by name and resolved by
    the interpreter's environment. The processor tuple in all communication
    constructs is in {e virtual processor} coordinates (§4 of the paper);
    [dim_binding] tells the runtime how VP coordinates relate to physical
    processors. *)

type expr = Iset.Codegen.expr
type cond = Iset.Codegen.cond

(** How a reference is addressed at run time. [Checked] references test
    ownership and fall back to the non-local receive overlay — the paper's
    buffered non-local access, whose per-reference cost loop splitting
    removes. [Local] references are proved local (or are on the fast path of
    a split loop). [Global] is used by serial (reference) code. *)
type access = Local | Overlay | Checked | Global
(** [Overlay]: proved non-local by loop splitting — read directly from the
    receive overlay (write: straight to the outgoing buffer), no ownership
    check. *)

type fexpr =
  | FConst of float
  | FLoad of { arr : string; idx : expr list; access : access }
  | FScalar of string
  | FBin of Hpf.Ast.fbinop * fexpr * fexpr
  | FNeg of fexpr
  | FIntrin of string * fexpr list
  | FOfInt of expr

type fcond =
  | FCmp of fexpr * Hpf.Ast.cmpop * fexpr
  | FAnd of fcond * fcond
  | FOr of fcond * fcond
  | FNot of fcond

type reduce_op = RSum | RMax | RMin

type stmt =
  | For of { var : string; lo : expr; hi : expr; step : expr; body : stmt list }
  | If of cond * stmt list
  | FIf of fcond * stmt list * stmt list
  | Store of { arr : string; idx : expr list; value : fexpr; access : access }
  | SetScalar of string * fexpr
  | Pack of { event : int; arr : string; idx : expr list }
      (** append element [arr(idx)] to the buffer for the current partner *)
  | Send of { event : int; dest : expr list }
      (** flush the packed buffer to the VP with the given coordinates *)
  | Recv of { event : int; src : expr list }
      (** block until the matching message arrives; contents are unpacked
          into the receive overlay (or in place, per the event's flag) *)
  | Reduce of { scalar : string; op : reduce_op }
      (** replicated-scalar reduction across all processors *)
  | Call of string
  | Comment of string  (** annotation shown by the pretty-printer *)

(* ------------------------------------------------------------------ *)
(* Layout descriptors (runtime ownership)                              *)
(* ------------------------------------------------------------------ *)

(** Distribution format of one processor/VP dimension, with symbolic pieces
    as expressions over parameters. *)
type fmt_rt =
  | RBlock of { bsize : expr }  (** owner p: t in [tlo + p·B, tlo + (p+1)·B) *)
  | RCyclic  (** owner p: (t − tlo) mod P = p *)
  | RBlockCyclic of int  (** cyclic(k): owner p: ((t − tlo)/k) mod P = p *)

(** How a VP coordinate in this dimension maps back to a physical processor
    coordinate, and which VPs a processor owns. *)
type vp_mode =
  | VpIsPhys  (** concrete distribution: VP coordinate = processor coordinate *)
  | VpBlockOnePer  (** symbolic block: vm = B·m + tlo; one active VP per proc *)
  | VpTemplateCell  (** symbolic cyclic: VP = template cell; owner = (v−tlo) mod P *)

type dim_source =
  | FromData of { data_dim : int; coef : int; off : expr }
      (** template coord = coef·idx[data_dim] + off *)
  | FixedCoord of expr  (** align target is a constant expression *)
  | AnyCoord  (** align target is '*': replicated over this dimension *)

type dim_layout = {
  source : dim_source;
  fmt : fmt_rt;
  tlo : expr;  (** template lower bound in this dimension *)
  vp_mode : vp_mode;
  pextent : expr;  (** number of processors in this dimension *)
}

type array_layout = {
  la_name : string;
  la_dims : dim_layout list;  (** one entry per processor-array dimension *)
}

type array_decl = {
  ad_name : string;
  ad_bounds : (expr * expr) list;
  ad_layout : array_layout option;  (** None: replicated (no distribution) *)
}

(* ------------------------------------------------------------------ *)
(* Communication events                                                *)
(* ------------------------------------------------------------------ *)

type event_info = {
  ev_id : int;
  ev_array : string;
  ev_kind : [ `ReadComm | `WriteComm ];
      (** ReadComm: owners send values to readers (into the overlay).
          WriteComm: writers send computed values back to owners (into the
          local array). *)
  ev_inplace : bool;
      (** §3.3: contiguity proved at compile time — pack/unpack cost waived *)
  ev_rect : bool;
      (** the communication set is a rectangular section: when compile-time
          contiguity is unproved, the runtime check of §3.3 applies *)
  ev_desc : string;  (** human-readable provenance (array, source line) *)
}

(* ------------------------------------------------------------------ *)
(* Whole program                                                       *)
(* ------------------------------------------------------------------ *)

type param_binding = {
  pb_name : string;
  pb_value : [ `Given of int | `Expr of Hpf.Ast.iexpr | `FromEnv ];
      (** Given: compile-time constant. Expr: computed at startup (processor
          extents, block sizes — may use number_of_processors()). FromEnv:
          must be supplied when the simulation is launched. *)
}

type proc_dim_rt = {
  pd_mode : vp_mode;
  pd_extent : expr;
  pd_tlo : expr;
  pd_bsize : expr option;
}
(** Runtime description of one processor/VP dimension: how myid's VP
    coordinate is computed at startup and how VP coordinates map back to
    physical processors. *)

type program = {
  proc_dims : proc_dim_rt list;
  proc_extents : expr list;  (** extent of each processor dimension *)
  params : param_binding list;
  arrays : array_decl list;
  scalars : string list;
  events : event_info list;
  main : stmt list;
  subs : (string * stmt list) list;
}

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

(** Apply [f] to [s] and every statement nested inside it, pre-order. *)
let rec iter_stmt f (s : stmt) : unit =
  f s;
  match s with
  | For { body; _ } -> List.iter (iter_stmt f) body
  | If (_, body) -> List.iter (iter_stmt f) body
  | FIf (_, t, e) ->
      List.iter (iter_stmt f) t;
      List.iter (iter_stmt f) e
  | Store _ | SetScalar _ | Pack _ | Send _ | Recv _ | Reduce _ | Call _
  | Comment _ ->
      ()

let iter_stmts f body = List.iter (iter_stmt f) body

(** Apply [f] to every statement of [main] and of every subroutine. *)
let iter_program f (p : program) : unit =
  iter_stmts f p.main;
  List.iter (fun (_, body) -> iter_stmts f body) p.subs

(** Names assigned by [SetScalar] anywhere in the program (targets may lie
    outside the declared [scalars] list; the runtime must still give them a
    storage cell). *)
let assigned_scalars (p : program) : string list =
  let seen = Hashtbl.create 16 in
  iter_program
    (function
      | SetScalar (name, _) | Reduce { scalar = name; _ } ->
          Hashtbl.replace seen name ()
      | _ -> ())
    p;
  Hashtbl.fold (fun name () acc -> name :: acc) seen []
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Pretty-printing (Fortran-like, for the examples and the CLI)        *)
(* ------------------------------------------------------------------ *)

let pp_expr = Iset.Codegen.pp_expr
let pp_cond = Iset.Codegen.pp_cond

let rec pp_fexpr fmt = function
  | FConst x -> Fmt.float fmt x
  | FLoad { arr; idx; access } ->
      let marker =
        match access with Local | Global -> "" | Checked -> "@" | Overlay -> "~"
      in
      Fmt.pf fmt "%s%s(%a)" marker arr Fmt.(list ~sep:comma pp_expr) idx
  | FScalar s -> Fmt.string fmt s
  | FBin (op, a, b) ->
      let s = match op with Hpf.Ast.Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" in
      Fmt.pf fmt "(%a %s %a)" pp_fexpr a s pp_fexpr b
  | FNeg a -> Fmt.pf fmt "(-%a)" pp_fexpr a
  | FIntrin (f, args) -> Fmt.pf fmt "%s(%a)" f Fmt.(list ~sep:comma pp_fexpr) args
  | FOfInt e -> pp_expr fmt e

let rec pp_fcond fmt = function
  | FCmp (a, op, b) ->
      Fmt.pf fmt "%a %s %a" pp_fexpr a (Hpf.Ast.string_of_cmpop op) pp_fexpr b
  | FAnd (a, b) -> Fmt.pf fmt "(%a .and. %a)" pp_fcond a pp_fcond b
  | FOr (a, b) -> Fmt.pf fmt "(%a .or. %a)" pp_fcond a pp_fcond b
  | FNot a -> Fmt.pf fmt "(.not. %a)" pp_fcond a

let rec pp_stmt ?(indent = 0) fmt s =
  let pad = String.make indent ' ' in
  let body b = List.iter (pp_stmt ~indent:(indent + 2) fmt) b in
  match s with
  | For { var; lo; hi; step; body = b } ->
      (match step with
      | Iset.Codegen.EInt 1 ->
          Fmt.pf fmt "%sdo %s = %a, %a@." pad var pp_expr lo pp_expr hi
      | _ ->
          Fmt.pf fmt "%sdo %s = %a, %a, %a@." pad var pp_expr lo pp_expr hi pp_expr step);
      body b;
      Fmt.pf fmt "%senddo@." pad
  | If (c, b) ->
      Fmt.pf fmt "%sif (%a) then@." pad pp_cond c;
      body b;
      Fmt.pf fmt "%sendif@." pad
  | FIf (c, t, e) ->
      Fmt.pf fmt "%sif (%a) then@." pad pp_fcond c;
      body t;
      if e <> [] then begin
        Fmt.pf fmt "%selse@." pad;
        body e
      end;
      Fmt.pf fmt "%sendif@." pad
  | Store { arr; idx; value; access } ->
      let marker = match access with Checked -> "@" | _ -> "" in
      Fmt.pf fmt "%s%s%s(%a) = %a@." pad marker arr
        Fmt.(list ~sep:comma pp_expr) idx pp_fexpr value
  | SetScalar (s, v) -> Fmt.pf fmt "%s%s = %a@." pad s pp_fexpr v
  | Pack { event; arr; idx } ->
      Fmt.pf fmt "%scall pack_%d(%s(%a))@." pad event arr
        Fmt.(list ~sep:comma pp_expr) idx
  | Send { event; dest } ->
      Fmt.pf fmt "%scall send_%d(vp=(%a))@." pad event Fmt.(list ~sep:comma pp_expr) dest
  | Recv { event; src } ->
      Fmt.pf fmt "%scall recv_%d(vp=(%a))@." pad event Fmt.(list ~sep:comma pp_expr) src
  | Reduce { scalar; op } ->
      let s = match op with RSum -> "sum" | RMax -> "max" | RMin -> "min" in
      Fmt.pf fmt "%scall allreduce_%s(%s)@." pad s scalar
  | Call f -> Fmt.pf fmt "%scall %s@." pad f
  | Comment c -> Fmt.pf fmt "%s! %s@." pad c

let pp_stmts fmt body = List.iter (pp_stmt ~indent:0 fmt) body

let program_to_string (p : program) =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt 400;
  (fun fmt () ->
      Fmt.pf fmt "! SPMD node program@.";
      List.iter
        (fun (name, body) ->
          Fmt.pf fmt "subroutine %s@." name;
          List.iter (pp_stmt ~indent:2 fmt) body;
          Fmt.pf fmt "end subroutine@.@.")
        p.subs;
      Fmt.pf fmt "program main@.";
      List.iter (pp_stmt ~indent:2 fmt) p.main;
      Fmt.pf fmt "end program@.")
    fmt ();
  Format.pp_print_flush fmt ();
  Buffer.contents buf
