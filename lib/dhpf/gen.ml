(** SPMD code generation: hierarchical loop partitioning (§3.1), placement
    and synthesis of communication (§3.2), loop splitting (§3.4), and the
    virtual-processor loops of §4.2.

    The generator works scope by scope, as dHPF does: for each loop it
    computes one iteration-demand set per statement group (including
    communication events placed inside the loop, which is what makes
    pipelined patterns come out right), synthesizes bounds and guards with
    {!Iset.Codegen}, and recurses. *)

open Iset

exception Unsupported = Cp.Unsupported

let errf fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

type options = {
  opt_vectorize : bool;  (** hoist communication out of loops (dependence permitting) *)
  opt_coalesce : bool;  (** merge communication for references to one array *)
  opt_split : bool;  (** non-local index-set splitting (Figure 4) *)
  opt_inplace : bool;  (** §3.3 contiguity recognition *)
}

let split_debug = ref false

let default_options =
  { opt_vectorize = true; opt_coalesce = true; opt_split = true; opt_inplace = true }

(* ------------------------------------------------------------------ *)
(* Set plumbing helpers                                                *)
(* ------------------------------------------------------------------ *)

(* Keep the first k input variables of a set; existentialize the rest. *)
let project_onto_prefix (r : Rel.t) k : Rel.t =
  let ar = Rel.in_arity r in
  assert (k <= ar);
  let conjs =
    List.map
      (fun c ->
        let base = Conj.n_ex c in
        let f = function
          | Var.In i when i >= k -> Var.Ex (base + i - k)
          | v -> v
        in
        Conj.make ~n_ex:(base + ar - k)
          (List.map (Constr.map_lin (Lin.map_vars f)) (Conj.constraints c)))
      (Rel.conjuncts r)
  in
  Rel.simplify
    (Rel.set ~names:(Array.sub (Rel.in_names r) 0 k) ~ar:k conjs)

(* Turn a k-var prefix set into a 1-var set over variable k-1, with the
   outer variables becoming parameters named after themselves (they are
   bound by the enclosing generated loops at run time). *)
let scope_set (r : Rel.t) : Rel.t =
  let k = Rel.in_arity r in
  assert (k >= 1);
  let names = Rel.in_names r in
  let f = function
    | Var.In i when i = k - 1 -> Var.In 0
    | Var.In i -> Var.Param names.(i)
    | v -> v
  in
  Rel.simplify
    (Rel.set ~names:[| names.(k - 1) |] ~ar:1
       (List.map (fun c -> Conj.map_lin (Lin.map_vars f) c) (Rel.conjuncts r)))

(* Bind the first [np] variables of a set to parameters with the given
   names; remaining variables shift down. *)
let bind_prefix_params (pnames : string array) (r : Rel.t) : Rel.t =
  let np = Array.length pnames in
  let ar = Rel.in_arity r in
  let f = function
    | Var.In i when i < np -> Var.Param pnames.(i)
    | Var.In i -> Var.In (i - np)
    | v -> v
  in
  Rel.simplify
    (Rel.set
       ~names:(Array.sub (Rel.in_names r) np (ar - np))
       ~ar:(ar - np)
       (List.map (fun c -> Conj.map_lin (Lin.map_vars f) c) (Rel.conjuncts r)))

let rename_vars names (r : Rel.t) = Rel.with_names ~in_names:names r

(* ------------------------------------------------------------------ *)
(* Expression conversion                                               *)
(* ------------------------------------------------------------------ *)

(* iexpr -> runtime expression; loop variables and parameters both become
   EVar and are resolved by the interpreter's scope. *)
let rec rt_iexpr (e : Hpf.Ast.iexpr) : Spmd.expr =
  let module C = Codegen in
  match e with
  | INum k -> C.EInt k
  | IName s -> C.EVar s
  | IAdd (a, b) -> C.eadd (rt_iexpr a) (rt_iexpr b)
  | ISub (a, b) -> C.esub (rt_iexpr a) (rt_iexpr b)
  | INeg a -> C.esub (C.EInt 0) (rt_iexpr a)
  | IMul (a, b) -> (
      match (rt_iexpr a, rt_iexpr b) with
      | C.EInt x, eb -> C.emul x eb
      | ea, C.EInt y -> C.emul y ea
      | _ -> errf "non-affine multiplication: %a" Hpf.Ast.pp_iexpr e)
  | IDiv (a, b) -> (
      match rt_iexpr b with
      | C.EInt k when k > 0 -> C.efloordiv (rt_iexpr a) k
      | _ -> errf "division in subscript: %a" Hpf.Ast.pp_iexpr e)
  | ICall (f, _) -> errf "call to %s in integer expression" f

let rec rt_fexpr ~(access_of : Hpf.Ast.ref_ -> Spmd.access) (e : Hpf.Ast.fexpr) :
    Spmd.fexpr =
  match e with
  | FNum x -> Spmd.FConst x
  | FInt ie -> Spmd.FOfInt (rt_iexpr ie)
  | FRef (n, []) -> Spmd.FScalar n
  | FRef (n, idx) ->
      Spmd.FLoad { arr = n; idx = List.map rt_iexpr idx; access = access_of (n, idx) }
  | FNeg a -> Spmd.FNeg (rt_fexpr ~access_of a)
  | FBin (op, a, b) -> Spmd.FBin (op, rt_fexpr ~access_of a, rt_fexpr ~access_of b)
  | FCall (f, args) -> Spmd.FIntrin (f, List.map (rt_fexpr ~access_of) args)

let rec rt_fcond ~access_of (c : Hpf.Ast.cond) : Spmd.fcond =
  match c with
  | CCmp (a, op, b) -> Spmd.FCmp (rt_fexpr ~access_of a, op, rt_fexpr ~access_of b)
  | CAnd (a, b) -> Spmd.FAnd (rt_fcond ~access_of a, rt_fcond ~access_of b)
  | COr (a, b) -> Spmd.FOr (rt_fcond ~access_of a, rt_fcond ~access_of b)
  | CNot a -> Spmd.FNot (rt_fcond ~access_of a)

(* ------------------------------------------------------------------ *)
(* Analysis tree                                                       *)
(* ------------------------------------------------------------------ *)

type assign_info = {
  ai_lhs : Hpf.Ast.ref_;
  ai_rhs : Hpf.Ast.fexpr;
  ai_line : int;
  ai_nest : Cp.loop list;  (** enclosing loops, outermost first *)
  mutable ai_cpmap : Rel.t;  (** vp -> iterations *)
  mutable ai_cpiter : Rel.t;  (** iterations of myid (vm-parameterized) *)
  ai_reduction : Cp.reduction option;
  ai_replicated : bool;  (** CP assigns every iteration to every processor *)
  mutable ai_nl_reads : Hpf.Ast.ref_ list;  (** refs needing communication *)
  mutable ai_write_nl : bool;  (** lhs write can be non-local *)
}

type event = {
  mutable ev_id : int;
      (** unit-local during analysis; renumbered to the global sequential
          order before emission (see {!compile}) *)
  ev_array : string;
  ev_kind : [ `Read | `Write ];
  ev_level_vars : string list;  (** loops enclosing the placement point *)
  ev_maps : Comm.maps;
  ev_active : Vp.active option;  (** computed when cyclic VP dims exist *)
  ev_inplace : Inplace.result;
  ev_desc : string;
}

type node =
  | NAssign of assign_info
  | NLoop of Cp.loop * node list
  | NIf of Hpf.Ast.cond * node list * node list * Rel.t option
      (** demand CP iter set of the guard (union of children), lazily set *)
  | NCall of string
  | NCommSend of event
  | NCommRecv of event
  | NReduce of string * Spmd.reduce_op

(* ------------------------------------------------------------------ *)
(* Pass A: statement analysis                                          *)
(* ------------------------------------------------------------------ *)

type gctx = {
  ctx : Layout.ctx;
  opts : options;
  mutable events : event list;
  mutable next_event : int;
  phase : Phase.t;
  comm_reads : (int * Hpf.Ast.ref_, unit) Hashtbl.t;
      (** pre-placement non-local-read classification, per unit (placement
          consumes [ai_nl_reads]; emission needs the original) *)
  comm_write : (int, unit) Hashtbl.t;  (** likewise for non-local writes *)
}

let is_distributed g name = Layout.distributed g.ctx name

(* CP references of an assignment: explicit on_home, else owner-computes on
   the LHS; reductions partition on the data being reduced. *)
let cp_refs_of g (lhs : Hpf.Ast.ref_) on_home reduction =
  match on_home with
  | Some refs -> refs
  | None -> (
      match reduction with
      | Some (r : Cp.reduction) -> (
          match
            List.find_opt (fun (n, _) -> is_distributed g n) (Cp.refs_of_fexpr r.red_rhs)
          with
          | Some r -> [ r ]
          | None -> [])
      | None ->
          let name, idx = lhs in
          if idx <> [] && is_distributed g name then [ lhs ] else [])

let rec analyze_stmt g nest (s : Hpf.Ast.stmt) : node =
  match s with
  | Hpf.Ast.SDo { var; lo; hi; step; body } ->
      let l = { Cp.lvar = var; llo = lo; lhi = hi; lstep = step } in
      NLoop (l, List.map (analyze_stmt g (nest @ [ l ])) body)
  | Hpf.Ast.SIf { cond; then_; else_ } ->
      NIf
        ( cond,
          List.map (analyze_stmt g nest) then_,
          List.map (analyze_stmt g nest) else_,
          None )
  | Hpf.Ast.SCall (f, _) ->
      (* a call executes on every processor (replicated demand); the callee
         body partitions its own loops *)
      ignore nest;
      NCall f
  | Hpf.Ast.SAssign { lhs; rhs; on_home; line } ->
      Phase.time g.phase "partitioning computation" @@ fun () ->
      let reduction =
        match Cp.reduction_of lhs rhs with
        | Some r when snd lhs <> [] && is_distributed g (fst lhs) ->
            (* array reductions are supported for replicated accumulators
               only; a distributed accumulator goes through the normal
               owner-computes + communication path *)
            ignore r;
            None
        | r -> r
      in
      let iter = Cp.iter_space g.ctx nest in
      let refs = cp_refs_of g lhs on_home reduction in
      let cpmap =
        if refs = [] then Cp.replicated_cpmap g.ctx iter
        else Cp.cpmap_of_refs g.ctx nest iter refs
      in
      let cpiter = Cp.cp_iter_set g.ctx cpmap in
      let replicated =
        refs = [] || (try Rel.equal cpiter iter with Conj.Inexact_negation -> false)
      in
      NAssign
        {
          ai_lhs = lhs;
          ai_rhs = rhs;
          ai_line = line;
          ai_nest = nest;
          ai_cpmap = cpmap;
          ai_cpiter = cpiter;
          ai_reduction = reduction;
          ai_replicated = replicated;
          ai_nl_reads = [];
          ai_write_nl = false;
        }

(* Existentialize the iteration (output) dimensions of a CPMap beyond
   depth d, so a consumer in a deeper nest contributes a CP at the
   producer's depth. *)
let proj_cpmap_depth (cpmap : Rel.t) d : Rel.t =
  let out_ar = Rel.out_arity cpmap in
  assert (d <= out_ar);
  let conjs =
    List.map
      (fun c ->
        let base = Conj.n_ex c in
        let f = function
          | Var.Out i when i >= d -> Var.Ex (base + i - d)
          | v -> v
        in
        Conj.make ~n_ex:(base + out_ar - d)
          (List.map (Constr.map_lin (Lin.map_vars f)) (Conj.constraints c)))
      (Rel.conjuncts cpmap)
  in
  Rel.simplify
    (Rel.make
       ~in_names:(Rel.in_names cpmap)
       ~out_names:(Array.sub (Rel.out_names cpmap) 0 d)
       ~in_ar:(Rel.in_arity cpmap) ~out_ar:d conjs)

(* Privatizable-scalar CPs: a non-reduction scalar assignment inside a loop
   takes the union of the CPs of the statements later in the same body that
   read the scalar (projected to the producer's nest depth); it stays
   replicated if there are none. *)
let rec fix_scalar_cps g (nodes : node list) : unit =
  let rec consumers name = function
    | NAssign ai when List.mem name (Cp.scalars_of_fexpr ai.ai_rhs) -> [ ai ]
    | NLoop (_, body) -> List.concat_map (consumers name) body
    | NIf (_, t, e, _) -> List.concat_map (consumers name) (t @ e)
    | _ -> []
  in
  let rec go = function
    | [] -> ()
    | NAssign ai :: rest
      when ai.ai_nest <> [] && snd ai.ai_lhs = [] && ai.ai_reduction = None ->
        let name = fst ai.ai_lhs in
        let d = List.length ai.ai_nest in
        let cs =
          List.concat_map (consumers name) rest
          |> List.filter (fun c -> List.length c.ai_nest >= d)
        in
        (match cs with
        | [] -> () (* replicated *)
        | c0 :: crest ->
            let u =
              List.fold_left
                (fun acc c -> Rel.union acc (proj_cpmap_depth c.ai_cpmap d))
                (proj_cpmap_depth c0.ai_cpmap d)
                crest
            in
            ai.ai_cpmap <- u;
            ai.ai_cpiter <- Cp.cp_iter_set g.ctx u);
        go rest
    | NLoop (_, body) :: rest ->
        fix_scalar_cps g body;
        go rest
    | NIf (_, t, e, _) :: rest ->
        fix_scalar_cps g t;
        fix_scalar_cps g e;
        go rest
    | _ :: rest -> go rest
  in
  go nodes

(* ------------------------------------------------------------------ *)
(* Pass B: non-local reference identification                          *)
(* ------------------------------------------------------------------ *)

(* Is the reference potentially non-local under the statement's CP?
   (Figure 3 specialized to one reference with no vectorization.) *)
let ref_is_nonlocal g ai (r : Hpf.Ast.ref_) =
  let name, _ = r in
  match Layout.layout_of g.ctx name with
  | None -> false
  | Some layout ->
      Phase.time g.phase "communication analysis" @@ fun () ->
      let iter = Cp.iter_space g.ctx ai.ai_nest in
      let rm = Rel.restrict_domain (Cp.refmap g.ctx ai.ai_nest r) iter in
      let accessed = Rel.apply rm ai.ai_cpiter in
      let owned = Rel.apply_point layout (Layout.my_vp_point g.ctx) in
      not (Rel.is_empty (Rel.diff accessed owned))

(* Annotate every assignment with its non-local reads and writes. *)
let rec annotate_nl g = function
  | NAssign ai ->
      let rhs = match ai.ai_reduction with Some r -> r.Cp.red_rhs | None -> ai.ai_rhs in
      let reads =
        Cp.refs_of_fexpr rhs
        |> List.filter (fun (n, _) -> is_distributed g n)
        |> List.sort_uniq compare
      in
      ai.ai_nl_reads <- List.filter (ref_is_nonlocal g ai) reads;
      let lname, lidx = ai.ai_lhs in
      ai.ai_write_nl <-
        lidx <> [] && is_distributed g lname && ref_is_nonlocal g ai ai.ai_lhs
  | NLoop (_, body) -> List.iter (annotate_nl g) body
  | NIf (cond, t, e, _) ->
      List.iter
        (fun (n, _) ->
          if is_distributed g n then
            errf "distributed array %s referenced in an IF condition" n)
        (Cp.refs_of_cond cond);
      List.iter (annotate_nl g) t;
      List.iter (annotate_nl g) e
  | NCall _ | NCommSend _ | NCommRecv _ | NReduce _ -> ()

(* ------------------------------------------------------------------ *)
(* Pass B: communication placement (vectorization) and event creation  *)
(* ------------------------------------------------------------------ *)

(* mutable placement state lives in ai_nl_reads / ai_write_nl: entries are
   consumed when an event is created for them *)

let rec pending_reads = function
  | NAssign ai -> List.map (fun r -> (ai, r)) ai.ai_nl_reads
  | NLoop (_, body) -> List.concat_map pending_reads body
  | NIf (_, t, e, _) -> List.concat_map pending_reads (t @ e)
  | _ -> []

let rec pending_writes = function
  | NAssign ai -> if ai.ai_write_nl then [ ai ] else []
  | NLoop (_, body) -> List.concat_map pending_writes body
  | NIf (_, t, e, _) -> List.concat_map pending_writes (t @ e)
  | _ -> []

(* Data touched by reference [r] of [ai], for conflict tests. *)
let data_of_ref g ai r =
  let iter = Cp.iter_space g.ctx ai.ai_nest in
  Rel.apply (Cp.refmap g.ctx ai.ai_nest r) iter

(* Would communication for read [r] of [ai_r], placed just before this
   subtree at loop depth [depth], be stale because the subtree writes the
   same array elements within the same iteration of the enclosing loops?

   The test is the set-based dependence refinement of §3: build the
   data-flow relation D = RefMap_w o RefMap_r^-1 (write iteration ->
   read iteration touching the same element), equate the first [depth]
   loop coordinates (communication is re-executed for every iteration of
   the enclosing loops, so only same-prefix flow blocks hoisting), and ask
   whether it is empty. This is what vectorizes the Gauss pivot-row read
   out of a loop that writes the same array, and what places the
   ERLEBACHER z-sweep communication exactly one loop level in (the
   pipelined pattern). *)
let rec write_conflict g node ~depth ~(read : assign_info * Hpf.Ast.ref_) =
  let ai_r, r = read in
  let name = fst r in
  match node with
  | NAssign ai_w when fst ai_w.ai_lhs = name && snd ai_w.ai_lhs <> [] ->
      Phase.time g.phase "communication analysis" @@ fun () ->
      let iter_r = Cp.iter_space g.ctx ai_r.ai_nest in
      let rm_r = Rel.restrict_domain (Cp.refmap g.ctx ai_r.ai_nest r) iter_r in
      let iter_w = Cp.iter_space g.ctx ai_w.ai_nest in
      let rm_w =
        Rel.restrict_domain (Cp.refmap g.ctx ai_w.ai_nest ai_w.ai_lhs) iter_w
      in
      let d = Rel.compose rm_w (Rel.inverse rm_r) in
      let k = min depth (min (Rel.in_arity d) (Rel.out_arity d)) in
      let prefix_eq =
        List.init k (fun l ->
            Constr.equal_terms (Lin.var (Var.In l)) (Lin.var (Var.Out l)))
      in
      not (Rel.is_empty (Comm.add_constraints d prefix_eq))
  | NAssign _ -> false
  | NLoop (_, body) -> List.exists (fun n -> write_conflict g n ~depth ~read) body
  | NIf (_, t, e, _) -> List.exists (fun n -> write_conflict g n ~depth ~read) (t @ e)
  | _ -> false

let rec read_conflict g node ~name ~data =
  match node with
  | NAssign ai ->
      let rhs = match ai.ai_reduction with Some r -> r.Cp.red_rhs | None -> ai.ai_rhs in
      Phase.time g.phase "communication analysis" @@ fun () ->
      List.exists
        (fun (n, idx) ->
          n = name
          && not (Rel.is_empty (Rel.inter (data_of_ref g ai (n, idx)) data)))
        (Cp.refs_of_fexpr rhs)
  | NLoop (_, body) -> List.exists (fun n -> read_conflict g n ~name ~data) body
  | NIf (_, t, e, _) -> List.exists (fun n -> read_conflict g n ~name ~data) (t @ e)
  | _ -> false

let array_bounds_set g name =
  let ai =
    match Hpf.Sema.find_array g.ctx.Layout.env name with
    | Some a -> a
    | None -> errf "unknown array %s" name
  in
  let rank = List.length ai.adims in
  let cs =
    List.concat
      (List.mapi
         (fun i (lo, hi) ->
           let v = Lin.var (Var.In i) in
           [
             Constr.le (Layout.lin_of_iexpr g.ctx.Layout.env lo) v;
             Constr.le v (Layout.lin_of_iexpr g.ctx.Layout.env hi);
           ])
         ai.adims)
  in
  Rel.set ~names:(Array.init rank (fun i -> Printf.sprintf "a%d" (i + 1))) ~ar:rank
    [ Conj.make ~n_ex:0 cs ]

let has_cyclic_vps g =
  List.exists (fun d -> d.Layout.vp_mode = Spmd.VpTemplateCell) g.ctx.Layout.dims

(* Build one logical communication event for coalesced references. *)
let make_event g ~nest ~kind ~array (refs : (assign_info * Hpf.Ast.ref_) list) : event =
  Phase.time g.phase "communication generation" @@ fun () ->
  let level_vars = List.map (fun l -> l.Cp.lvar) nest in
  let pairs =
    List.map
      (fun (ai, r) ->
        let iter = Cp.iter_space g.ctx ai.ai_nest in
        let rm = Rel.restrict_domain (Cp.refmap g.ctx ai.ai_nest r) iter in
        (ai.ai_cpmap, rm))
      refs
  in
  let maps =
    Comm.comm_maps g.ctx
      ~kind:(kind :> [ `Read | `Write ])
      ~level_vars ~array pairs
  in
  let active =
    if has_cyclic_vps g then
      Some
        (Vp.for_event g.ctx
           ~layout:(Option.get (Layout.layout_of g.ctx array))
           ~kind:(kind :> [ `Read | `Write ])
           pairs)
    else None
  in
  let ev_id = g.next_event in
  g.next_event <- ev_id + 1;
  let inplace =
    if g.opts.opt_inplace then begin
      let pn =
        Array.init g.ctx.Layout.rank_p (fun k -> Printf.sprintf "p%d_e%d" (k + 1) ev_id)
      in
      let pack_set = bind_prefix_params pn (Rel.flatten maps.Comm.send_map_full) in
      Phase.time g.phase "check if msg is contiguous" @@ fun () ->
      Inplace.analyze ~comm_set:pack_set ~array_bounds:(array_bounds_set g array)
    end
    else { Inplace.contiguous = false; rect_section = false; break_dim = 0 }
  in
  let lines =
    List.map (fun (ai, _) -> string_of_int ai.ai_line) refs |> List.sort_uniq compare
  in
  let ev =
    {
      ev_id;
      ev_array = array;
      ev_kind = (kind :> [ `Read | `Write ]);
      ev_level_vars = level_vars;
      ev_maps = maps;
      ev_active = active;
      ev_inplace = inplace;
      ev_desc =
        Printf.sprintf "%s %s (line %s)"
          (match kind with `Read -> "read" | `Write -> "write")
          array (String.concat "," lines);
    }
  in
  g.events <- g.events @ [ ev ];
  ev

(* Insert communication nodes. Reads are hoisted to the outermost subtree
   boundary with no conflicting write (message vectorization); writes are
   flushed after the outermost subtree with no conflicting read. *)
let rec place_comm g ~nest nodes =
  List.concat_map
    (fun node ->
      match node with
      | NAssign _ | NLoop _ | NIf _ ->
          (* reads that vectorize to just before this subtree *)
          let cands = pending_reads node in
          let placeable, kept =
            match node with
            | NAssign _ ->
                (* innermost fallback: communication immediately before the
                   statement is always legal — the fetched value is the
                   owner's pre-statement value for this iteration *)
                (cands, [])
            | _ when not g.opts.opt_vectorize -> ([], cands)
            | _ ->
                let depth = List.length nest in
                List.partition
                  (fun (ai, r) -> not (write_conflict g node ~depth ~read:(ai, r)))
                  cands
          in
          ignore kept;
          (* consume the placed reads *)
          List.iter
            (fun (ai, r) ->
              ai.ai_nl_reads <- List.filter (fun r' -> r' <> r) ai.ai_nl_reads)
            placeable;
          let groups =
            if g.opts.opt_coalesce then
              (* one event per array *)
              let arrays =
                List.sort_uniq compare (List.map (fun (_, (n, _)) -> n) placeable)
              in
              List.map
                (fun a -> (a, List.filter (fun (_, (n, _)) -> n = a) placeable))
                arrays
            else List.map (fun ((_, (n, _)) as p) -> (n, [ p ])) placeable
          in
          let read_events =
            List.map (fun (a, refs) -> make_event g ~nest ~kind:`Read ~array:a refs) groups
          in
          (* writes that flush right after this subtree *)
          let wcands = pending_writes node in
          let wplaceable, _ =
            List.partition
              (fun ai ->
                (match node with NAssign _ -> true | _ -> false)
                ||
                let data = data_of_ref g ai ai.ai_lhs in
                not (read_conflict g node ~name:(fst ai.ai_lhs) ~data))
              wcands
          in
          List.iter (fun ai -> ai.ai_write_nl <- false) wplaceable;
          let wgroups =
            let arrays =
              List.sort_uniq compare (List.map (fun ai -> fst ai.ai_lhs) wplaceable)
            in
            List.map
              (fun a ->
                ( a,
                  List.map
                    (fun ai -> (ai, ai.ai_lhs))
                    (List.filter (fun ai -> fst ai.ai_lhs = a) wplaceable) ))
              arrays
          in
          let write_events =
            List.map (fun (a, refs) -> make_event g ~nest ~kind:`Write ~array:a refs) wgroups
          in
          (* recurse for anything still pending deeper *)
          let node =
            match node with
            | NLoop (l, body) -> NLoop (l, place_comm g ~nest:(nest @ [ l ]) body)
            | NIf (c, t, e, d) ->
                NIf (c, place_comm g ~nest t, place_comm g ~nest e, d)
            | n -> n
          in
          List.map (fun e -> NCommSend e) read_events
          @ List.map (fun e -> NCommRecv e) read_events
          @ [ node ]
          @ List.map (fun e -> NCommSend e) write_events
          @ List.map (fun e -> NCommRecv e) write_events
      | n -> [ n ])
    nodes

(* ------------------------------------------------------------------ *)
(* Pass B: reduction finalization points                               *)
(* ------------------------------------------------------------------ *)

let rec scalar_used_in name = function
  | NAssign ai ->
      fst ai.ai_lhs = name
      || List.mem name (Cp.scalars_of_fexpr ai.ai_rhs)
      || List.exists (fun (n, _) -> n = name) (Cp.refs_of_fexpr ai.ai_rhs)
  | NLoop (_, body) -> List.exists (scalar_used_in name) body
  | NIf (cond, t, e, _) ->
      let rec cond_scalars = function
        | Hpf.Ast.CCmp (a, _, b) ->
            Cp.scalars_of_fexpr a @ Cp.scalars_of_fexpr b
        | Hpf.Ast.CAnd (a, b) | Hpf.Ast.COr (a, b) -> cond_scalars a @ cond_scalars b
        | Hpf.Ast.CNot a -> cond_scalars a
      in
      List.mem name (cond_scalars cond)
      || List.exists (scalar_used_in name) (t @ e)
  | _ -> false

(* Returns the rebuilt node list and the reductions still pending
   finalization (to be inserted by an enclosing scope). *)
let rec insert_reduces g ~toplevel nodes =
  (* first rebuild children (inner bodies may finalize their own) *)
  let rebuilt =
    List.map
      (fun node ->
        match node with
        | NLoop (l, body) ->
            let body', pending = insert_reduces g ~toplevel:false body in
            (NLoop (l, body'), pending)
        | NIf (c, t, e, d) ->
            let t', p1 = insert_reduces g ~toplevel:false t in
            let e', p2 = insert_reduces g ~toplevel:false e in
            (NIf (c, t', e', d), p1 @ p2)
        | NAssign ai -> (
            match ai.ai_reduction with
            | Some r when not ai.ai_replicated -> (node, [ (fst ai.ai_lhs, r.Cp.red_op) ])
            | _ -> (node, []))
        | n -> (n, []))
      nodes
  in
  (* a child's pending reduction is finalized here if the scalar is used by
     a sibling (or we are at the top level); otherwise it stays pending *)
  let out = ref [] and still = ref [] in
  List.iteri
    (fun i (node, pending) ->
      out := node :: !out;
      List.iter
        (fun (scalar, op) ->
          let used_by_sibling =
            List.exists
              (fun (j, (n, _)) -> j <> i && scalar_used_in scalar n)
              (List.mapi (fun j x -> (j, x)) rebuilt)
          in
          if used_by_sibling || toplevel then
            out := NReduce (scalar, op) :: !out
          else still := (scalar, op) :: !still)
        (List.sort_uniq compare pending))
    rebuilt;
  (List.rev !out, !still)

(* ------------------------------------------------------------------ *)
(* Pass B': snapshot persistent communication classification           *)
(* ------------------------------------------------------------------ *)

(* ai_nl_reads / ai_write_nl are consumed by placement; access-mode decisions
   at emission need the pre-placement classification (kept per unit in the
   gctx, so units can be analyzed concurrently). *)
let rec snapshot_nl g = function
  | NAssign ai ->
      List.iter
        (fun r -> Hashtbl.replace g.comm_reads (ai.ai_line, r) ())
        ai.ai_nl_reads;
      if ai.ai_write_nl then Hashtbl.replace g.comm_write ai.ai_line ()
  | NLoop (_, body) -> List.iter (snapshot_nl g) body
  | NIf (_, t, e, _) -> List.iter (snapshot_nl g) (t @ e)
  | _ -> ()

let is_comm_read g ai r = Hashtbl.mem g.comm_reads (ai.ai_line, r)
let is_comm_write g ai = Hashtbl.mem g.comm_write ai.ai_line

(* ------------------------------------------------------------------ *)
(* Pass C: emission                                                    *)
(* ------------------------------------------------------------------ *)

let rec ast_to_stmts ~leaf ~for_hook (asts : 'a Codegen.ast list) : Spmd.stmt list =
  List.concat_map
    (fun a ->
      match (a : 'a Codegen.ast) with
      | Codegen.AFor { var; lo; hi; step; body } ->
          let lo, hi, step = for_hook var (lo, hi, Codegen.EInt step) in
          [ Spmd.For { var; lo; hi; step; body = ast_to_stmts ~leaf ~for_hook body } ]
      | Codegen.AIf (c, body) -> [ Spmd.If (c, ast_to_stmts ~leaf ~for_hook body) ]
      | Codegen.ALeaf t -> leaf t)
    asts

let no_hook _var x = x

let dummy_name _ = failwith "unexpected tuple variable"

(* Membership of a rank-0 (parameter-only) set, as a runtime condition. *)
let cond_of_set (r : Rel.t) : Codegen.cond =
  match Rel.conjuncts r with
  | [] -> Codegen.CGeq0 (Codegen.EInt (-1)) (* false *)
  | conjs ->
      let of_conj c =
        let plain, strides, windows = Codegen.classify c in
        Codegen.cand
          (List.map (Codegen.cond_of_constr ~name_of:dummy_name) plain
          @ List.map (Codegen.cond_of_stride ~name_of:dummy_name) strides
          @ List.map (Codegen.cond_of_window ~name_of:dummy_name) windows)
      in
      let cs = List.map of_conj conjs in
      (match cs with [ c ] -> c | cs -> Codegen.COr cs)

let not_self g (pn : string array) : Codegen.cond =
  let module C = Codegen in
  let per_dim k =
    let p = C.EVar pn.(k) and vm = C.EVar g.ctx.Layout.vm.(k) in
    [
      C.CGeq0 (C.esub (C.esub p vm) (C.EInt 1));
      C.CGeq0 (C.esub (C.esub vm p) (C.EInt 1));
    ]
  in
  C.COr (List.concat_map per_dim (List.init (Array.length pn) Fun.id))

(* Partner loops over VP-block dimensions step through real VPs only:
   lo aligned to tlo mod B, step B (Figure 6's refinement for block). *)
let vp_partner_hook g (pn : string array) var (lo, hi, step) =
  let module C = Codegen in
  let rec find k =
    if k >= Array.length pn then None
    else if pn.(k) = var then Some (List.nth g.ctx.Layout.dims k)
    else find (k + 1)
  in
  match find 0 with
  | Some d when d.Layout.vp_mode = Spmd.VpBlockOnePer ->
      let b = Option.get d.Layout.bsize_expr in
      (C.EAlignUp (lo, d.Layout.tlo_expr, b), hi, b)
  | _ -> (lo, hi, step)

let thi_expr (d : Layout.dim_info) = Layout.expr_of_lin d.Layout.thi_lin

(* Wrap code referencing vm$k in VP loops for cyclic (template-cell) dims,
   restricted at run time to the active VPs owned by myid (§4.2). *)
let wrap_vp g ~(active : Rel.t) (body : Spmd.stmt list) : Spmd.stmt list =
  let module C = Codegen in
  let rec go dims body =
    match dims with
    | [] -> body
    | (k, (d : Layout.dim_info)) :: rest when d.Layout.vp_mode = Spmd.VpTemplateCell ->
        let proj = Inplace.proj_dim active k in
        let implied = Hull.implied_constraints (Rel.conjuncts proj) in
        let lbs, ubs =
          List.fold_left
            (fun (lbs, ubs) c ->
              match Codegen.bound_of ~name_of:dummy_name 0 c with
              | Codegen.Lower e -> (e :: lbs, ubs)
              | Codegen.Upper e -> (lbs, e :: ubs)
              | Codegen.NotBound -> (lbs, ubs))
            ([], []) implied
        in
        let lo = match lbs with [] -> d.Layout.tlo_expr | _ -> C.emax lbs in
        let hi = match ubs with [] -> thi_expr d | _ -> C.emin ubs in
        let target = C.eadd d.Layout.tlo_expr (C.EVar g.ctx.Layout.mphys.(k)) in
        [
          Spmd.For
            {
              var = g.ctx.Layout.vm.(k);
              lo = C.EAlignUp (lo, target, d.Layout.pextent_expr);
              hi;
              step = d.Layout.pextent_expr;
              body = go rest body;
            };
        ]
    | _ :: rest -> go rest body
  in
  if has_cyclic_vps g then
    go (List.mapi (fun k d -> (k, d)) g.ctx.Layout.dims) body
  else body

(* ---- communication code ---- *)

let partner_names g ev =
  Array.init g.ctx.Layout.rank_p (fun k -> Printf.sprintf "p%d_e%d" (k + 1) ev.ev_id)

let emit_comm_send g ev : Spmd.stmt list =
  Phase.time g.phase "communication generation" @@ fun () ->
  if has_cyclic_vps g && ev.ev_level_vars <> [] then
    errf "communication inside loops with cyclic distributions is not supported";
  let pn = partner_names g ev in
  let rank = Rel.out_arity ev.ev_maps.Comm.send_map in
  let en = Array.init rank (fun i -> Printf.sprintf "x%d_e%d" (i + 1) ev.ev_id) in
  let pack_set =
    rename_vars en (bind_prefix_params pn (Rel.flatten ev.ev_maps.Comm.send_map_full))
  in
  (* enumerate elements in column-major order (first array dimension
     innermost), i.e. in increasing memory offset: that is the order Fortran
     packs buffers, and it lets the §3.3 runtime contiguity check observe
     consecutive offsets *)
  let pack_set =
    Rel.with_names
      ~in_names:(Array.init rank (fun i -> en.(rank - 1 - i)))
      (Rel.map_tuple_vars
         (function
           | Iset.Var.In i -> Iset.Var.In (rank - 1 - i)
           | v -> v)
         pack_set)
  in
  let pack_stmts =
    Phase.time g.phase "loops to compute msg sizes" @@ fun () ->
    (* packing the same element twice is harmless (the receiver stores by
       index), so overlapping disjuncts need not be separated *)
    let asts =
      Codegen.gen ~disjoint:false ~order:`Any
        ~names:(Array.init rank (fun i -> en.(rank - 1 - i)))
        [ { Codegen.tag = 0; dom = pack_set } ]
    in
    ast_to_stmts
      ~leaf:(fun _ ->
        [
          Spmd.Pack
            {
              event = ev.ev_id;
              arr = ev.ev_array;
              idx = Array.to_list (Array.map (fun n -> Codegen.EVar n) en);
            };
        ])
      ~for_hook:no_hook asts
  in
  let send =
    Spmd.Send
      { event = ev.ev_id; dest = Array.to_list (Array.map (fun n -> Codegen.EVar n) pn) }
  in
  let dom = rename_vars pn (Rel.domain ev.ev_maps.Comm.send_map) in
  let stmts =
    Phase.time g.phase "loops over comm partners" @@ fun () ->
    let asts = Codegen.gen ~order:`Any ~names:pn [ { Codegen.tag = 0; dom } ] in
    ast_to_stmts
      ~leaf:(fun _ -> [ Spmd.If (not_self g pn, pack_stmts @ [ send ]) ])
      ~for_hook:(vp_partner_hook g pn) asts
  in
  let stmts = Spmd.Comment (Printf.sprintf "send for %s" ev.ev_desc) :: stmts in
  match ev.ev_active with
  | Some a -> wrap_vp g ~active:a.Vp.active_send stmts
  | None -> stmts

let emit_comm_recv g ev : Spmd.stmt list =
  Phase.time g.phase "communication generation" @@ fun () ->
  let pn = partner_names g ev in
  let dom = rename_vars pn (Rel.domain ev.ev_maps.Comm.recv_map) in
  let recv =
    Spmd.Recv
      { event = ev.ev_id; src = Array.to_list (Array.map (fun n -> Codegen.EVar n) pn) }
  in
  let stmts =
    Phase.time g.phase "loops over comm partners" @@ fun () ->
    let asts = Codegen.gen ~order:`Any ~names:pn [ { Codegen.tag = 0; dom } ] in
    ast_to_stmts
      ~leaf:(fun _ -> [ Spmd.If (not_self g pn, [ recv ]) ])
      ~for_hook:(vp_partner_hook g pn) asts
  in
  let stmts = Spmd.Comment (Printf.sprintf "recv for %s" ev.ev_desc) :: stmts in
  match ev.ev_active with
  | Some a -> wrap_vp g ~active:a.Vp.active_recv stmts
  | None -> stmts

(* ---- statement emission ---- *)

let default_access g ai (r : Hpf.Ast.ref_) : Spmd.access =
  if is_comm_read g ai r then Spmd.Checked else Spmd.Local

let emit_assign g ?(access_of : (Hpf.Ast.ref_ -> Spmd.access) option) ai :
    Spmd.stmt list =
  let access_of =
    match access_of with Some f -> f | None -> default_access g ai
  in
  let value = rt_fexpr ~access_of ai.ai_rhs in
  let name, idx = ai.ai_lhs in
  if idx = [] then [ Spmd.SetScalar (name, value) ]
  else
    let access =
      if is_comm_write g ai then
        match access_of ai.ai_lhs with Spmd.Local -> Spmd.Checked | a -> a
      else Spmd.Local
    in
    [ Spmd.Store { arr = name; idx = List.map rt_iexpr idx; value; access } ]

(* demand of a node at loop depth [depth] (1-based): Some set over one var,
   or None meaning "every iteration / every processor" *)
let rec demand_at g depth node : Rel.t option =
  let union a b =
    match (a, b) with
    | None, _ | _, None -> None
    | Some x, Some y -> Some (Rel.union x y)
  in
  match node with
  | NAssign ai ->
      let d = scope_set (project_onto_prefix ai.ai_cpiter depth) in
      (* intermediate projections may be over-approximated: deeper levels
         re-restrict (the deepest level is the cpiter itself, kept exact) *)
      Some (if depth < List.length ai.ai_nest then Codegen.approx d else d)
  | NLoop (_, body) -> (
      match body with
      | [] -> None
      | b :: bs ->
          List.fold_left (fun acc n -> union acc (demand_at g depth n)) (demand_at g depth b) bs)
  | NIf (_, t, e, _) -> (
      match t @ e with
      | [] -> None
      | b :: bs ->
          List.fold_left (fun acc n -> union acc (demand_at g depth n)) (demand_at g depth b) bs)
  | NCommSend ev ->
      (* communication participation demands are over-approximable at any
         level: the partner-loop bounds and guards are generated from the
         exact sets, so an extra iteration sends/receives nothing *)
      Some
        (Codegen.approx
           (scope_set
              (project_onto_prefix
                 (Comm.participation ~level_vars:ev.ev_level_vars
                    ev.ev_maps.Comm.send_map)
                 depth)))
  | NCommRecv ev ->
      Some
        (Codegen.approx
           (scope_set
              (project_onto_prefix
                 (Comm.participation ~level_vars:ev.ev_level_vars
                    ev.ev_maps.Comm.recv_map)
                 depth)))
  | NReduce _ | NCall _ -> None

(* Syntactic set equality for statement grouping: a false negative merely
   splits a group (extra guards), never breaks correctness — and avoids the
   Omega-backed Rel.equal on every pair of adjacent statements. *)
let demand_equal a b =
  let conj_key c = List.sort Constr.compare (Conj.constraints c) in
  let key r = List.sort compare (List.map conj_key (Rel.conjuncts r)) in
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> ( try key x = key y with _ -> false)
  | _ -> false

(* context set for one loop: lo <= v <= hi with outer loop variables as
   parameters *)
let loop_ctx_set g ~outer (l : Cp.loop) : Rel.t =
  let lookup s =
    if s = l.Cp.lvar then Var.In 0
    else if List.mem s outer then Var.Param s
    else if Hpf.Sema.is_param g.ctx.Layout.env s then Var.Param s
    else errf "unknown name %s in loop bound" s
  in
  let aff e =
    try Hpf.Sema.subst_known_params g.ctx.Layout.env (Hpf.Sema.affine ~lookup e)
    with Hpf.Sema.Nonaffine _ -> errf "loop bound not affine"
  in
  let v = Lin.var (Var.In 0) in
  let lo = aff l.Cp.llo and hi = aff l.Cp.lhi in
  let base = [ Constr.le lo v; Constr.le v hi ] in
  let conj =
    if l.Cp.lstep = 1 then Conj.make ~n_ex:0 base
    else
      Conj.make ~n_ex:1
        (Constr.eq (Lin.sub (Lin.sub v lo) (Lin.var ~coef:l.Cp.lstep (Var.Ex 0)))
        :: base)
  in
  Rel.set ~names:[| l.Cp.lvar |] ~ar:1 [ conj ]

(* ---- loop splitting (Figure 4) ---- *)

(* Does any dependence carried by the loops connect the write [rmw] to the
   access [rma] (same array)? Splitting reorders iterations, so a carried
   true, anti or output dependence forbids it — the paper restricts the
   transformation to nests "having no dependences that prevent iteration
   reordering". Lexicographic formulation: some first level l with equal
   prefix and differing coordinate relates two iterations touching one
   element. *)
let carried_dependence g ~from_level ~depth rmw rma =
  ignore g;
  let d = Rel.compose rmw (Rel.inverse rma) in
  let rec try_level l =
    if l >= depth then false
    else
      let prefix_eq =
        List.init l (fun k ->
            Constr.equal_terms (Lin.var (Var.In k)) (Lin.var (Var.Out k)))
      in
      let lt =
        Constr.le (Lin.add_const 1 (Lin.var (Var.In l))) (Lin.var (Var.Out l))
      in
      let gt =
        Constr.le (Lin.add_const 1 (Lin.var (Var.Out l))) (Lin.var (Var.In l))
      in
      let test c = not (Rel.is_empty (Comm.add_constraints d (c :: prefix_eq))) in
      test lt || test gt || try_level (l + 1)
  in
  (* loops outside the reordered region stay sequential, so only
     differences first arising at [from_level] or deeper matter *)
  try_level from_level

(* A split candidate: a loop subtree containing only loops and assignments,
   all assignments sharing one cpIterSet, with at least one communicated
   reference and no loop-carried dependences within the reordered loops.
   [outer_depth] is the number of enclosing loops already generated (they
   remain sequential). Returns the assigns (in order) and the common
   nest. *)
let split_candidate g ~outer_depth node =
  if not g.opts.opt_split then None
  else
    let ok = ref true in
    let assigns = ref [] in
    let rec walk = function
      | NAssign ai -> assigns := ai :: !assigns
      | NLoop (_, body) -> List.iter walk body
      | _ -> ok := false
    in
    walk node;
    let assigns = List.rev !assigns in
    match assigns with
    | [] -> None
    | a0 :: rest ->
        let comm_reads ai =
          List.filter (is_comm_read g ai)
            (List.sort_uniq compare (Cp.refs_of_fexpr ai.ai_rhs))
        in
        let no_carried_deps () =
          Phase.time g.phase "loop splitting" @@ fun () ->
          let nest = a0.ai_nest in
          let depth = List.length nest in
          let iter = Cp.iter_space g.ctx nest in
          let rm r = Rel.restrict_domain (Cp.refmap g.ctx nest r) iter in
          let writes =
            List.filter_map
              (fun a -> if snd a.ai_lhs <> [] then Some (fst a.ai_lhs, rm a.ai_lhs) else None)
              assigns
          in
          let accesses =
            writes
            @ List.concat_map
                (fun a ->
                  List.map (fun ((n, _) as r) -> (n, rm r)) (Cp.refs_of_fexpr a.ai_rhs))
                assigns
          in
          List.for_all
            (fun (wn, wrm) ->
              List.for_all
                (fun (an, arm) ->
                  wn <> an
                  || not (carried_dependence g ~from_level:outer_depth ~depth wrm arm))
                accesses)
            writes
        in
        if
          !ok
          && List.for_all
               (fun a ->
                 a.ai_nest == a0.ai_nest
                 && (try Rel.equal a.ai_cpiter a0.ai_cpiter
                     with Conj.Inexact_negation -> false))
               rest
          && a0.ai_nest <> []
          && List.for_all (fun a -> a.ai_reduction = None) assigns
          && List.exists
               (fun a -> comm_reads a <> [] || is_comm_write g a)
               assigns
          && no_carried_deps ()
        then Some (a0.ai_nest, assigns)
        else None


(* Access modes per (reference, kind) for one section, computed once (the
   underlying subset tests are Omega queries). *)
let section_access_table (sections : Split.sections) sec :
    (Hpf.Ast.ref_ * [ `Read | `Write ]) list * (Hpf.Ast.ref_ -> Spmd.access) =
  let table =
    List.map
      (fun c ->
        let mode =
          match Split.access_in sec c with
          | Split.AllLocal -> Spmd.Local
          | Split.AllNonLocal -> Spmd.Overlay
          | Split.Mixed -> Spmd.Checked
        in
        ((c.Split.rc_ref, c.Split.rc_kind), mode))
      sections.Split.ref_classes
  in
  let lookup r =
    match List.assoc_opt (r, `Read) table with
    | Some m -> m
    | None -> (
        match List.assoc_opt (r, `Write) table with Some m -> m | None -> Spmd.Local)
  in
  (List.map fst table, lookup)

(* ---- main emission recursion ---- *)

let busy_of g node : Rel.t =
  let empty = Rel.empty ~in_ar:g.ctx.Layout.rank_p ~out_ar:0 () in
  let rec go = function
    | NAssign ai -> Rel.domain ai.ai_cpmap
    | NLoop (_, body) -> List.fold_left (fun acc n -> Rel.union acc (go n)) empty body
    | NIf (_, t, e, _) ->
        List.fold_left (fun acc n -> Rel.union acc (go n)) empty (t @ e)
    | _ -> empty
  in
  go node

let rec emit_children g ~outer (nodes : node list) : Spmd.stmt list =
  match nodes with
  | [] -> []
  | _ ->
      (* recognize [read sends; read recvs; splittable nest] windows *)
      let rec take_comm sends recvs = function
        | NCommSend e :: rest when e.ev_kind = `Read ->
            take_comm (e :: sends) recvs rest
        | NCommRecv e :: rest when e.ev_kind = `Read ->
            take_comm sends (e :: recvs) rest
        | rest -> (List.rev sends, List.rev recvs, rest)
      in
      let sends, recvs, rest = take_comm [] [] nodes in
      (match rest with
      | (NLoop _ as loop) :: tail
        when split_candidate g ~outer_depth:(List.length outer) loop <> None -> (
          match try_split g ~outer loop ~sends ~recvs with
          | Some stmts -> stmts @ emit_children g ~outer tail
          | None ->
              List.concat_map (fun e -> emit_comm_send g e) sends
              @ List.concat_map (fun e -> emit_comm_recv g e) recvs
              @ emit_node g ~outer loop
              @ emit_children g ~outer tail)
      | _ ->
          (* no split: emit the comms (if any) and then continue node by
             node *)
          let comm_stmts =
            List.concat_map (fun e -> emit_comm_send g e) sends
            @ List.concat_map (fun e -> emit_comm_recv g e) recvs
          in
          (match rest with
          | [] -> comm_stmts
          | n :: tail -> comm_stmts @ emit_node g ~outer n @ emit_children g ~outer tail))

and emit_node g ~outer node : Spmd.stmt list =
  match node with
  | NAssign ai ->
      let stmts = emit_assign g ai in
      if outer = [] then begin
        let stmts =
          match cond_of_set ai.ai_cpiter with
          | Codegen.CTrue -> stmts
          | c -> [ Spmd.If (c, stmts) ]
        in
        if has_cyclic_vps g then wrap_vp g ~active:(busy_of g node) stmts else stmts
      end
      else stmts
  | NLoop (l, body) ->
      let stmts = emit_loop g ~outer l body in
      if outer = [] && has_cyclic_vps g then
        wrap_vp g ~active:(busy_of g node) stmts
      else stmts
  | NIf (c, t, e, _) ->
      [
        Spmd.FIf
          ( rt_fcond ~access_of:(fun _ -> Spmd.Local) c,
            emit_children g ~outer t,
            emit_children g ~outer e );
      ]
  | NCall f -> [ Spmd.Call f ]
  | NCommSend ev -> emit_comm_send g ev
  | NCommRecv ev -> emit_comm_recv g ev
  | NReduce (s, op) -> [ Spmd.Reduce { scalar = s; op } ]

and emit_loop g ~outer (l : Cp.loop) children : Spmd.stmt list =
  let depth = List.length outer + 1 in
  let demands, groups =
    Phase.time g.phase "loop bounds reduction" @@ fun () ->
    let demands = List.map (fun n -> (n, demand_at g depth n)) children in
    (* group consecutive children with equal demands *)
    let groups =
      List.fold_left
        (fun acc (n, d) ->
          match acc with
          | (d', ns) :: tl when demand_equal d d' -> (d', n :: ns) :: tl
          | _ -> (d, [ n ]) :: acc)
        [] demands
      |> List.rev_map (fun (d, ns) -> (d, List.rev ns))
    in
    (demands, groups)
  in
  ignore demands;
  let ctx_set = loop_ctx_set g ~outer l in
  let garr = Array.of_list groups in
  let items =
    List.mapi
      (fun i (d, _) ->
        { Codegen.tag = i; dom = (match d with Some s -> s | None -> ctx_set) })
      groups
  in
  let asts =
    Phase.time g.phase "loop bounds reduction" @@ fun () ->
    Codegen.gen ~context:ctx_set ~names:[| l.Cp.lvar |] items
  in
  ast_to_stmts
    ~leaf:(fun i -> emit_children g ~outer:(outer @ [ l.Cp.lvar ]) (snd garr.(i)))
    ~for_hook:no_hook asts

and try_split g ~outer loop_node ~sends ~recvs : Spmd.stmt list option =
  match split_candidate g ~outer_depth:(List.length outer) loop_node with
  | None -> None
  | Some (nest, assigns) -> (
      try
        let a0 = List.hd assigns in
        let refs =
          let reads =
            List.concat_map
              (fun ai ->
                List.filter_map
                  (fun r ->
                    if is_comm_read g ai r then
                      let iter = Cp.iter_space g.ctx nest in
                      let rm =
                        Rel.restrict_domain (Cp.refmap g.ctx nest r) iter
                      in
                      Some (r, `Read, rm)
                    else None)
                  (List.sort_uniq compare (Cp.refs_of_fexpr ai.ai_rhs)))
              assigns
          in
          let writes =
            List.filter_map
              (fun ai ->
                if is_comm_write g ai then
                  let iter = Cp.iter_space g.ctx nest in
                  let rm =
                    Rel.restrict_domain (Cp.refmap g.ctx nest ai.ai_lhs) iter
                  in
                  Some (ai.ai_lhs, `Write, rm)
                else None)
              assigns
          in
          (* one class per distinct reference *)
          List.sort_uniq (fun (r1, k1, _) (r2, k2, _) -> compare (r1, k1) (r2, k2))
            (reads @ writes)
        in
        let sections =
          Phase.time g.phase "loop splitting" @@ fun () ->
          Split.compute g.ctx ~cp_iter:a0.ai_cpiter ~refs
        in
        if not (Split.worthwhile sections) then None
        else begin
          let outern = Array.of_list outer in
          let context =
            bind_prefix_params outern (Cp.iter_space g.ctx nest)
          in
          let emit_sec what set =
            if !split_debug then
              Printf.eprintf "[split] %s: empty=%s set=%s\n%!" what
                (try string_of_bool (Rel.is_empty set) with e -> Printexc.to_string e)
                (Rel.to_string set);
            if (try Rel.is_empty set with _ -> false) then []
            else begin
              let _, access_of =
                Phase.time g.phase "loop splitting" @@ fun () ->
                section_access_table sections set
              in
              let bound = bind_prefix_params outern set in
              let items = List.map (fun ai -> { Codegen.tag = ai; dom = bound }) assigns in
              let asts =
                Phase.time g.phase "loop bounds reduction" @@ fun () ->
                Codegen.gen ~order:`Any ~context ~names:(Rel.in_names bound) items
              in
              let stmts =
                Spmd.Comment (Printf.sprintf "%s section" what)
                :: ast_to_stmts
                     ~leaf:(fun ai -> emit_assign g ~access_of ai)
                     ~for_hook:no_hook asts
              in
              (* cyclic (template-cell) dims bind vm$k only through generated
                 VP loops; at top level each section needs its own wrapping,
                 exactly like the unsplit nest in emit_node (the comm
                 sends/recvs between sections wrap themselves) *)
              if outer = [] && has_cyclic_vps g then
                wrap_vp g ~active:(busy_of g loop_node) stmts
              else stmts
            end
          in
          Some
            (List.concat_map (emit_comm_send g) sends
            @ emit_sec "non-local write-only" sections.Split.nl_wo_iters
            @ emit_sec "local" sections.Split.local_iters
            @ List.concat_map (emit_comm_recv g) recvs
            @ emit_sec "non-local read-only" sections.Split.nl_ro_iters
            @ emit_sec "non-local read-write" sections.Split.nl_rw_iters)
        end
      with Unsupported _ | Conj.Inexact_negation | Codegen.Unsupported _ -> None)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

type compiled = {
  cprog : Spmd.program;
  cevents : event list;
  cctx : Layout.ctx;
}

let compile ?(opts = default_options) ?(phase = Phase.global)
    ?(domains = Par.domains ()) (chk : Hpf.Sema.checked) : compiled =
  let ctx = Phase.time phase "layout construction" (fun () -> Layout.build chk) in
  (* interprocedural analysis: call-graph sanity (calls resolve, no
     recursion) and global layout visibility *)
  Phase.time phase "interprocedural analysis" (fun () ->
      let rec calls_of (s : Hpf.Ast.stmt) =
        match s with
        | Hpf.Ast.SCall (f, _) -> [ f ]
        | Hpf.Ast.SDo { body; _ } -> List.concat_map calls_of body
        | Hpf.Ast.SIf { then_; else_; _ } -> List.concat_map calls_of (then_ @ else_)
        | _ -> []
      in
      let rec check seen uname =
        if List.mem uname seen then errf "recursive call chain through %s" uname;
        match Hashtbl.find_opt chk.env.Hpf.Sema.subroutines uname with
        | None -> ()
        | Some u ->
            List.iter (check (uname :: seen)) (List.concat_map calls_of u.Hpf.Ast.body)
      in
      List.iter
        (fun (u : Hpf.Ast.unit_) ->
          List.iter (check [ u.uname ]) (List.concat_map calls_of u.body))
        chk.prog.units);
  (* Program units (subroutines, then main) are analyzed and emitted
     independently: they share only the read-only layout ctx and the
     domain-safe integer-set caches, so both passes fan out across a
     domain pool. Between the passes, event ids — unit-local during
     analysis — are renumbered sequentially in unit order, so the emitted
     program (whose buffer and partner-variable names embed event ids) is
     identical for every domain count. *)
  let units =
    List.filter (fun (u : Hpf.Ast.unit_) -> u.kind = `Subroutine)
      chk.prog.units
    @ [ Hpf.Ast.main_unit chk.prog ]
  in
  let uarr = Array.of_list units in
  let nd = max 1 (min domains (Array.length uarr)) in
  let par_map f arr =
    if nd <= 1 then Array.map f arr
    else Par.map ~domains:nd (Array.length arr) (fun i -> f arr.(i))
  in
  (* passes A+B: statement analysis, communication placement, reduction
     finalization — builds each unit's node tree and event list *)
  let analyze_unit (u : Hpf.Ast.unit_) =
    Phase.time phase "module compilation" @@ fun () ->
    let g =
      {
        ctx;
        opts;
        events = [];
        next_event = 0;
        phase;
        comm_reads = Hashtbl.create 64;
        comm_write = Hashtbl.create 64;
      }
    in
    let nodes = List.map (analyze_stmt g []) u.body in
    fix_scalar_cps g nodes;
    List.iter (annotate_nl g) nodes;
    List.iter (snapshot_nl g) nodes;
    let nodes = place_comm g ~nest:[] nodes in
    let nodes, pending = insert_reduces g ~toplevel:true nodes in
    assert (pending = []);
    (g, nodes)
  in
  let analyzed = par_map analyze_unit uarr in
  let next = ref 0 in
  Array.iter
    (fun (g, _) ->
      List.iter
        (fun ev ->
          ev.ev_id <- !next;
          incr next)
        g.events)
    analyzed;
  let all_events = List.concat_map (fun (g, _) -> g.events) (Array.to_list analyzed) in
  (* pass C: emission *)
  let emit_unit (g, nodes) =
    Phase.time phase "module compilation" @@ fun () ->
    emit_children g ~outer:[] nodes
  in
  let emitted = par_map emit_unit analyzed in
  let main = emitted.(Array.length emitted - 1) in
  let subs =
    List.init
      (Array.length emitted - 1)
      (fun i -> (uarr.(i).Hpf.Ast.uname, emitted.(i)))
  in
  let prog_params =
    Hashtbl.fold
      (fun name v acc ->
        {
          Spmd.pb_name = name;
          pb_value = (match v with Some k -> `Given k | None -> `FromEnv);
        }
        :: acc)
      chk.env.Hpf.Sema.params []
    |> List.sort (fun a b -> compare a.Spmd.pb_name b.Spmd.pb_name)
  in
  let scalars =
    Hashtbl.fold (fun n _ acc -> n :: acc) chk.env.Hpf.Sema.scalars []
  in
  let events_info =
    List.map
      (fun e ->
        {
          Spmd.ev_id = e.ev_id;
          ev_array = e.ev_array;
          ev_kind = (match e.ev_kind with `Read -> `ReadComm | `Write -> `WriteComm);
          ev_inplace = e.ev_inplace.Inplace.contiguous;
          ev_rect = e.ev_inplace.Inplace.rect_section;
          ev_desc = e.ev_desc;
        })
      all_events
  in
  let sorted_dims =
    List.sort (fun a b -> compare a.Layout.proc_dim b.Layout.proc_dim) ctx.Layout.dims
  in
  let proc_extents = List.map (fun d -> d.Layout.pextent_expr) sorted_dims in
  let proc_dims =
    List.map
      (fun (d : Layout.dim_info) ->
        {
          Spmd.pd_mode = d.vp_mode;
          pd_extent = d.pextent_expr;
          pd_tlo = d.tlo_expr;
          pd_bsize = d.bsize_expr;
        })
      sorted_dims
  in
  {
    cprog =
      {
        Spmd.proc_dims;
        proc_extents;
        params = prog_params @ ctx.Layout.params;
        arrays = ctx.Layout.rt_arrays;
        scalars;
        events = events_info;
        main;
        subs;
      };
    cevents = all_events;
    cctx = ctx;
  }
