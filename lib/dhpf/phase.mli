(** Wall-clock phase accounting, used to regenerate the paper's Table 1
    (breakdown of dHPF compilation time). Phases may nest; re-entrant
    timings of one label are not double counted. Safe to share across
    domains: totals are mutex-protected and the nesting stack is
    domain-local, so the parallel compiler phases can attribute time to
    one profiler concurrently. *)

type t

val create : unit -> t
val reset : t -> unit

val time : t -> string -> (unit -> 'a) -> 'a
(** Attribute the elapsed time of the thunk to the label. *)

val total : t -> string -> float
val elapsed : t -> float
val labels : t -> string list

val global : t
(** The profiler used by {!Gen.compile} by default. *)
