(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus Bechamel micro-benchmarks of the integer-set
   operations (backing the §6 claim that the set representation is not a
   dominant compile-time factor).

     Table 1   — breakdown of compilation time (SP-4, SP-sym, TOMCATV-sym)
     Figure 7a — TOMCATV speedups, two problem sizes
     Figure 7b — ERLEBACHER speedups, two problem sizes
     Figure 7c — JACOBI speedups
     (ablation) — optimization on/off deltas for the §3 optimizations

   Run with: dune exec bench/main.exe
   Sections can be selected by name: dune exec bench/main.exe -- table1 fig7c *)

let section title =
  Fmt.pr "@.======================================================================@.";
  Fmt.pr "  %s@." title;
  Fmt.pr "======================================================================@."

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let compile_timed src =
  let ph = Dhpf.Phase.global in
  Dhpf.Phase.reset ph;
  Iset.Stats.reset ();
  Iset.Cache.clear_all ();
  let chk = Hpf.Sema.analyze_source src in
  let t0 = Unix.gettimeofday () in
  let compiled = Dhpf.Gen.compile ~phase:ph chk in
  let total = Unix.gettimeofday () -. t0 in
  (compiled, total, ph, Iset.Stats.report ())

(* The domain counts every parallel sweep reports. Counts above the host
   core count still run (the pool just oversubscribes) so the sweep shape
   is stable across machines; [host_cores] in the JSON tells the reader
   which rows could actually run concurrently. *)
let domain_sweep = [ 1; 2; 4 ]

(* Wall-clock of a parallel compile at a given domain count. The output
   is byte-identical at every count (enforced by the test suite), so only
   the time is interesting here. *)
let compile_par_timed ~domains chk =
  let ph = Dhpf.Phase.create () in
  let t0 = Unix.gettimeofday () in
  ignore (Dhpf.Gen.compile ~phase:ph ~domains chk);
  Unix.gettimeofday () -. t0

let table1_apps ?(smoke = false) () =
  if smoke then
    [
      ("SP-sym-small", Codes.sp_like ~n:12 ~nsub:8 ~procs:(Codes.Symbolic2 2) ());
      ("T-sym-small", Codes.tomcatv ~n:65 ~iters:1 ~procs:(Codes.Symbolic2 1) ());
    ]
  else
    [
      ("SP-4", Codes.sp_like ~n:24 ~nsub:30 ~procs:(Codes.Fixed (2, 2)) ());
      ("SP-sym", Codes.sp_like ~n:24 ~nsub:30 ~procs:(Codes.Symbolic2 2) ());
      ("T-sym", Codes.tomcatv ~n:257 ~iters:3 ~procs:(Codes.Symbolic2 1) ());
    ]

(* The cache counters shown alongside Table 1 (time and cache behaviour per
   row, as the perf-trajectory tracking wants). *)
let cache_keys =
  [
    "sat lookups";
    "sat hits";
    "sat pre-filter kills";
    "simplify lookups";
    "simplify hits";
    "gist lookups";
    "gist hits";
    "implies lookups";
    "implies hits";
    "subset lookups";
    "subset hits";
    "cache evictions";
    "interned conjuncts";
    "interned constraints";
    "interned terms";
  ]

let table1 () =
  section "Table 1: Breakdown of compilation time";
  Fmt.pr
    "(paper: SP-4 1145s, SP-sym 1073s, T-sym 28s on a 250MHz UltraSparc;@.\
    \ the row structure and the SP-sym ~ SP-4 relationship are the@.\
    \ reproduction targets, not 1998 absolute times)@.@.";
  let apps = table1_apps () in
  let rows =
    [
      ("interprocedural analysis", [ "interprocedural analysis" ]);
      ("module compilation", [ "module compilation" ]);
      ("  partitioning computation", [ "partitioning computation" ]);
      ("  communication analysis", [ "communication analysis" ]);
      ("  loop splitting", [ "loop splitting" ]);
      ("  loop bounds reduction", [ "loop bounds reduction" ]);
      ("  communication generation", [ "communication generation" ]);
      ("    loops to compute msg sizes", [ "loops to compute msg sizes" ]);
      ("    loops over comm partners", [ "loops over comm partners" ]);
      ("    check if msg is contiguous", [ "check if msg is contiguous" ]);
      ( "  set-based code generation (MM-CODEGEN analogue)",
        [ "loop bounds reduction"; "loops to compute msg sizes"; "loops over comm partners" ]
      );
    ]
  in
  let results =
    List.map
      (fun (name, src) ->
        let _, total, ph, stats = compile_timed src in
        ( name,
          total,
          List.map
            (fun (_, ls) ->
              List.fold_left (fun acc l -> acc +. Dhpf.Phase.total ph l) 0.0 ls)
            rows,
          stats ))
      apps
  in
  Fmt.pr "%-50s" "application";
  List.iter (fun (n, _, _, _) -> Fmt.pr "%10s" n) results;
  Fmt.pr "@.";
  Fmt.pr "%-50s" "total compilation wall-clock time";
  List.iter (fun (_, t, _, _) -> Fmt.pr "%9.2fs" t) results;
  Fmt.pr "@.";
  List.iteri
    (fun i (label, _) ->
      Fmt.pr "%-50s" label;
      List.iter
        (fun (_, total, vals, _) ->
          Fmt.pr "%9.1f%%" (100.0 *. List.nth vals i /. Float.max total 1e-9))
        results;
      Fmt.pr "@.")
    rows;
  Fmt.pr "@.integer-set cache behaviour (%s):@."
    (if Iset.Cache.enabled () then "enabled" else "disabled");
  List.iter
    (fun key ->
      Fmt.pr "%-50s" key;
      List.iter
        (fun (_, _, _, stats) ->
          Fmt.pr "%10d" (try List.assoc key stats with Not_found -> 0))
        results;
      Fmt.pr "@.")
    cache_keys;
  match results with
  | [ (_, t4, _, _); (_, tsym, _, _); _ ] ->
      Fmt.pr "@.SP-sym / SP-4 compile-time ratio: %.2f (paper: 0.94)@." (tsym /. t4)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Figure 7: speedups                                                  *)
(* ------------------------------------------------------------------ *)

let speedup_series ~label ~src ~procs =
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Dhpf.Gen.compile chk in
  let serial = Spmdsim.Serial.run chk in
  Fmt.pr "@.%s: T(1) = %.1f ms serial@." label (serial.r_time *. 1e3);
  Fmt.pr "%6s %12s %10s %8s %10s@." "procs" "time (ms)" "speedup" "msgs" "KiB moved";
  List.iter
    (fun p ->
      let sim = Spmdsim.Exec.make ~nprocs:p compiled.cprog in
      let stats = Spmdsim.Exec.run sim in
      Fmt.pr "%6d %12.2f %10.2f %8d %10d@." p (stats.s_time *. 1e3)
        (serial.r_time /. stats.s_time) stats.s_msgs (stats.s_bytes / 1024))
    procs

let fig7a () =
  section "Figure 7(a): TOMCATV speedups, (BLOCK,*) on 1-D processor grid";
  Fmt.pr
    "(paper: moderate speedups at the small size, limited by the two global@.\
    \ max reductions in the main loop; better scaling at the larger size)@.";
  speedup_series ~label:"TOMCATV 129x129 (small)"
    ~src:(Codes.tomcatv ~n:129 ~iters:3 ~procs:(Codes.Symbolic2 1) ())
    ~procs:[ 1; 2; 4; 8; 16 ];
  speedup_series ~label:"TOMCATV 257x257 (large)"
    ~src:(Codes.tomcatv ~n:257 ~iters:3 ~procs:(Codes.Symbolic2 1) ())
    ~procs:[ 1; 2; 4; 8; 16 ]

let fig7b () =
  section "Figure 7(b): ERLEBACHER speedups, (*,*,BLOCK) on 1-D processor grid";
  Fmt.pr
    "(paper: limited speedup — pipelined z-sweeps with many small messages,@.\
    \ a broadcast panel, a 3D-to-2D reduction; better at the larger size)@.";
  speedup_series ~label:"ERLEBACHER 24^3 (small)"
    ~src:(Codes.erlebacher ~n:24 ~iters:2 ~procs:(Codes.Symbolic2 1) ())
    ~procs:[ 1; 2; 4; 8 ];
  speedup_series ~label:"ERLEBACHER 40^3 (large)"
    ~src:(Codes.erlebacher ~n:40 ~iters:2 ~procs:(Codes.Symbolic2 1) ())
    ~procs:[ 1; 2; 4; 8 ]

let fig7c () =
  section "Figure 7(c): JACOBI speedups, (BLOCK,BLOCK) on 2 x (P/2) grid";
  Fmt.pr "(paper: near-linear scaling for this simple regular stencil)@.";
  (* the 2 x (P/2) grid needs P >= 2; T(1) is the serial reference *)
  speedup_series ~label:"JACOBI 384x384"
    ~src:(Codes.jacobi ~n:384 ~iters:4 ~procs:(Codes.Symbolic2 2) ())
    ~procs:[ 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Optimization ablations (§3 optimizations, measured)                 *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations: effect of the section-3 optimizations (16 procs)";
  let src = Codes.jacobi ~n:256 ~iters:3 ~procs:(Codes.Symbolic2 2) () in
  let chk = Hpf.Sema.analyze_source src in
  let run name opts =
    let compiled = Dhpf.Gen.compile ~opts chk in
    let sim = Spmdsim.Exec.make ~nprocs:16 compiled.cprog in
    let stats = Spmdsim.Exec.run sim in
    Fmt.pr "%-28s %10.2f ms %8d msgs %10d KiB@." name (stats.s_time *. 1e3)
      stats.s_msgs (stats.s_bytes / 1024)
  in
  let d = Dhpf.Gen.default_options in
  run "all optimizations" d;
  run "no loop splitting" { d with opt_split = false };
  run "no in-place recognition" { d with opt_inplace = false };
  (* coalescing merges messages when one partner pair serves several
     references; the 9-point TOMCATV stencil shows it, the 4-point JACOBI
     does not *)
  let tsrc = Codes.tomcatv ~n:129 ~iters:2 ~procs:(Codes.Symbolic2 1) () in
  let tchk = Hpf.Sema.analyze_source tsrc in
  let trun name opts =
    let compiled = Dhpf.Gen.compile ~opts tchk in
    let sim = Spmdsim.Exec.make ~nprocs:8 compiled.cprog in
    let stats = Spmdsim.Exec.run sim in
    Fmt.pr "%-28s %10.2f ms %8d msgs %10d KiB   (TOMCATV, 8 procs)@." name
      (stats.s_time *. 1e3) stats.s_msgs (stats.s_bytes / 1024)
  in
  trun "tomcatv, coalescing" d;
  trun "tomcatv, no coalescing" { d with opt_coalesce = false };
  (* in-place transfers matter when whole contiguous planes move:
     ERLEBACHER's boundary planes are column-major contiguous *)
  let esrc = Codes.erlebacher ~n:32 ~iters:2 ~procs:(Codes.Symbolic2 1) () in
  let echk = Hpf.Sema.analyze_source esrc in
  let erun name opts =
    let compiled = Dhpf.Gen.compile ~opts echk in
    let sim = Spmdsim.Exec.make ~nprocs:4 compiled.cprog in
    let stats = Spmdsim.Exec.run sim in
    Fmt.pr "%-28s %10.2f ms %8d msgs %10d KiB   (ERLEBACHER, 4 procs)@." name
      (stats.s_time *. 1e3) stats.s_msgs (stats.s_bytes / 1024)
  in
  erun "erlebacher, in-place" d;
  erun "erlebacher, no in-place" { d with opt_inplace = false };
  Fmt.pr "(message vectorization, ablated on a small kernel:@.";
  let tiny = Codes.jacobi ~n:24 ~iters:1 ~procs:(Codes.Fixed (2, 2)) () in
  let chk = Hpf.Sema.analyze_source tiny in
  let msgs opts =
    let compiled = Dhpf.Gen.compile ~opts chk in
    (Spmdsim.Exec.run (Spmdsim.Exec.make ~nprocs:4 compiled.cprog)).s_msgs
  in
  Fmt.pr " vectorized: %d msgs, unvectorized: %d msgs)@."
    (msgs d)
    (msgs { d with opt_vectorize = false })

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the set framework                      *)
(* ------------------------------------------------------------------ *)

let set_micro () =
  section "Integer-set operation micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let s1 = Iset.Parse.set "{[i,j] : 1 <= i <= n && 25p+1 <= j <= 25p+25 && 0 <= p}" in
  let s2 = Iset.Parse.set "{[i,j] : 2 <= i <= n+1 && 1 <= j <= 100}" in
  let r1 = Iset.Parse.rel "{[i,j] -> [a,b] : a = i - 1 && b = j}" in
  let lay =
    Iset.Parse.rel "{[p] -> [a,b] : 25p+1 <= a <= 25p+25 && 1 <= b <= 100 && 0 <= p <= 3}"
  in
  let stencil =
    Iset.Parse.set
      "{[i,j] : 2 <= i <= 99 && 25m+1 <= j && j <= 25m+25 && 1 <= j} union {[i,j] : 2 <= i <= 99 && j = 25m}"
  in
  let tests =
    [
      Test.make ~name:"inter" (Staged.stage (fun () -> ignore (Iset.Rel.inter s1 s2)));
      Test.make ~name:"union+coalesce"
        (Staged.stage (fun () -> ignore (Iset.Rel.coalesce (Iset.Rel.union s1 s2))));
      Test.make ~name:"diff" (Staged.stage (fun () -> ignore (Iset.Rel.diff s1 s2)));
      Test.make ~name:"compose"
        (Staged.stage (fun () -> ignore (Iset.Rel.compose lay (Iset.Rel.inverse r1))));
      Test.make ~name:"emptiness (omega)"
        (Staged.stage (fun () -> ignore (Iset.Rel.is_empty (Iset.Rel.diff s1 s2))));
      Test.make ~name:"codegen 2-level"
        (Staged.stage (fun () ->
             ignore
               (Iset.Codegen.gen
                  ~names:(Iset.Rel.in_names stencil)
                  [ { Iset.Codegen.tag = 0; dom = stencil } ])));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"iset" ~fmt:"%s/%s" tests)
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ t ] -> Fmt.pr "%-24s %12.1f ns/op@." name t
      | _ -> Fmt.pr "%-24s (no estimate)@." name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Machine-readable output: `-- json` (full Table 1) and `-- smoke`     *)
(* (fast subset + cache-hit assertion, for `make bench-smoke`)          *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Compile the Table-1 applications and emit one JSON document with per-app
   wall-clock, per-phase seconds, and the cache counters — the format the
   checked-in BENCH_compile.json baseline uses to track the perf
   trajectory. *)
let bench_json ~smoke () =
  let apps = table1_apps ~smoke () in
  let results =
    List.map
      (fun (name, src) ->
        let _, total, ph, stats = compile_timed src in
        let phases =
          List.map (fun l -> (l, Dhpf.Phase.total ph l)) (Dhpf.Phase.labels ph)
        in
        (* domain sweep of the same compile: output is byte-identical at
           every count, only wall-clock moves *)
        let chk = Hpf.Sema.analyze_source src in
        let par =
          List.map (fun d -> (d, compile_par_timed ~domains:d chk)) domain_sweep
        in
        (name, total, phases, stats, par))
      apps
  in
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "{\n";
  pf "  \"schema\": \"dhpf-bench-compile/2\",\n";
  pf "  \"mode\": \"%s\",\n" (if smoke then "smoke" else "full");
  pf "  \"host_cores\": %d,\n" (Par.recommended ());
  pf "  \"cache_enabled\": %b,\n" (Iset.Cache.enabled ());
  pf "  \"apps\": [\n";
  List.iteri
    (fun i (name, total, phases, stats, par) ->
      pf "    {\n";
      pf "      \"name\": \"%s\",\n" (json_escape name);
      pf "      \"total_s\": %.6f,\n" total;
      pf "      \"compile_domains\": [\n";
      (let t1 =
         try List.assoc 1 par with Not_found -> List.assoc (List.hd domain_sweep) par
       in
       List.iteri
         (fun j (d, s) ->
           pf "        {\"domains\": %d, \"wall_s\": %.6f, \"speedup\": %.2f}%s\n"
             d s
             (t1 /. Float.max s 1e-9)
             (if j + 1 < List.length par then "," else ""))
         par);
      pf "      ],\n";
      pf "      \"phases_s\": {\n";
      List.iteri
        (fun j (l, s) ->
          pf "        \"%s\": %.6f%s\n" (json_escape l) s
            (if j + 1 < List.length phases then "," else ""))
        phases;
      pf "      },\n";
      pf "      \"cache\": {\n";
      let n = List.length stats in
      List.iteri
        (fun j (k, v) ->
          pf "        \"%s\": %d%s\n" (json_escape k) v
            (if j + 1 < n then "," else ""))
        stats;
      pf "      }\n";
      pf "    }%s\n" (if i + 1 < List.length results then "," else ""))
    results;
  pf "  ]\n";
  pf "}\n";
  print_string (Buffer.contents buf);
  results

let json () = ignore (bench_json ~smoke:false ())

(* ------------------------------------------------------------------ *)
(* Runtime benchmark: `-- run-json` / `-- run-smoke` (BENCH_run.json)   *)
(* ------------------------------------------------------------------ *)

(* The Figure-7 workloads timed end to end (Exec.make + Exec.run, i.e.
   including the closure engine's lowering pass) under both engines. The
   engines must agree exactly on the transport counters — a cheap standing
   differential check here; the bit-identical element comparison lives in
   the test suite's engine-differential property. *)
let run_workloads ?(smoke = false) () =
  if smoke then
    [
      ("JACOBI-96", Codes.jacobi ~n:96 ~iters:3 ~procs:(Codes.Symbolic2 2) (), 4);
      ("TOMCATV-65", Codes.tomcatv ~n:65 ~iters:2 ~procs:(Codes.Symbolic2 1) (), 4);
    ]
  else
    [
      ("TOMCATV-129", Codes.tomcatv ~n:129 ~iters:3 ~procs:(Codes.Symbolic2 1) (), 8);
      ("TOMCATV-257", Codes.tomcatv ~n:257 ~iters:3 ~procs:(Codes.Symbolic2 1) (), 8);
      ("ERLEBACHER-40", Codes.erlebacher ~n:40 ~iters:2 ~procs:(Codes.Symbolic2 1) (), 4);
      ("JACOBI-384", Codes.jacobi ~n:384 ~iters:4 ~procs:(Codes.Symbolic2 2) (), 8);
    ]

type run_row = {
  rr_name : string;
  rr_nprocs : int;
  rr_compile_s : float;
  rr_phases : (string * float) list;  (* per-phase compile breakdown *)
  rr_interp_s : float;
  rr_closure_s : float;
  rr_stats : Spmdsim.Exec.stats;
  rr_counters_equal : bool;
  rr_domains : (int * float * bool) list;
      (* sharded-lane sweep: domains, wall_s, counters bit-equal to 1-domain *)
  rr_matrix : (int * int * int * int * int) list;
      (* aggregated comm matrix: src, dst, msgs, elems, bytes *)
  rr_metrics : (string * float) list;  (* selected scalar series *)
}

let time_engine engine prog nprocs =
  let t0 = Unix.gettimeofday () in
  let sim = Spmdsim.Exec.make ~engine ~nprocs prog in
  let stats = Spmdsim.Exec.run sim in
  (Unix.gettimeofday () -. t0, stats)

(* Closure-engine wall clock with processor lanes sharded over [domains];
   also reports whether every transport counter and the simulated clock
   are bit-equal to the reference stats (they must be — the parallel
   scheduler's contract, enforced hard by the test suite and re-checked
   here because the bench is where a silent divergence would first show
   up in the wild). *)
let time_domains ~domains prog nprocs (ref_stats : Spmdsim.Exec.stats) =
  let t0 = Unix.gettimeofday () in
  let sim = Spmdsim.Exec.make ~domains ~nprocs prog in
  let stats = Spmdsim.Exec.run sim in
  let wall = Unix.gettimeofday () -. t0 in
  let eq =
    stats.Spmdsim.Exec.s_time = ref_stats.Spmdsim.Exec.s_time
    && stats.s_msgs = ref_stats.s_msgs
    && stats.s_bytes = ref_stats.s_bytes
    && stats.s_elems = ref_stats.s_elems
    && stats.s_retransmits = ref_stats.s_retransmits
  in
  (wall, eq)

(* One extra metered (untimed) closure run per workload. The timed runs
   stay unmetered so engine timings are not polluted by registry upkeep;
   metering cannot perturb the results themselves (the registry only
   reads simulated state). *)
let metered_run ?engine:(engine = `Closure) prog nprocs =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let sim = Spmdsim.Exec.make ~engine ~nprocs prog in
  ignore (Spmdsim.Exec.run sim);
  let cells = Spmdsim.Exec.comm_cells sim in
  let snap = Obs.Metrics.snapshot () in
  Obs.Metrics.disable ();
  Obs.Metrics.reset ();
  (cells, snap)

(* fold the per-event cells into the P x P matrix *)
let comm_matrix cells =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c : Spmdsim.Exec.comm_cell) ->
      let key = (c.cm_src, c.cm_dst) in
      let m, e, b = try Hashtbl.find tbl key with Not_found -> (0, 0, 0) in
      Hashtbl.replace tbl key (m + c.cm_msgs, e + c.cm_elems, b + c.cm_bytes))
    cells;
  Hashtbl.fold (fun (s, d) (m, e, b) acc -> (s, d, m, e, b) :: acc) tbl []
  |> List.sort compare

let snap_scalar snap name =
  let open Obs.Metrics in
  match
    List.find_opt (fun s -> s.m_name = name && s.m_labels = []) snap
  with
  | Some { m_value = VCounter v | VGauge v; _ } -> v
  | _ -> 0.0

(* the scalar series embedded per workload in dhpf-bench-run/3 *)
let embedded_series =
  [
    "sim/msgs_total"; "sim/bytes_total"; "sim/elems_total"; "sim/coll_msgs";
    "sim/coll_bytes"; "sim/local_copies"; "sim/retransmits"; "sim/max_mailbox";
    "sim/compute_max_s"; "sim/compute_mean_s"; "sim/load_imbalance";
    "sim/comm_to_compute";
  ]

(* ---- crash/checkpoint sweep: lost work vs. checkpoint interval ---- *)

(* One workload under a FIXED crash schedule, swept over checkpoint
   intervals. Crash points are keyed on (pid, op), so the same crashes
   fire at every interval — the sweep isolates the checkpoint-frequency
   trade-off: frequent snapshots cost write time but bound the work a
   rollback discards; interval 0 means no snapshots (every recovery
   restarts from scratch). Values are bit-identical to the fault-free run
   at every point of the sweep (asserted by the resilience test suite);
   only the clocks move. *)

let ckpt_workload ~smoke =
  if smoke then
    ("JACOBI-96", Codes.jacobi ~n:96 ~iters:3 ~procs:(Codes.Symbolic2 2) (), 4)
  else
    ("JACOBI-384", Codes.jacobi ~n:384 ~iters:4 ~procs:(Codes.Symbolic2 2) (), 8)

let ckpt_intervals ~smoke = if smoke then [ 0; 8; 32 ] else [ 0; 5; 20; 80; 320 ]
let ckpt_faults = (17, 0.04, 4) (* seed, crash_prob, crash_max *)

type ckpt_row = {
  ck_every : int;
  ck_ckpts : int;
  ck_bytes : int;
  ck_crashes : int;
  ck_lost_s : float;
  ck_time_s : float;
}

let ckpt_sweep ~smoke () =
  let _, src, nprocs = ckpt_workload ~smoke in
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Dhpf.Gen.compile chk in
  let seed, crash_prob, crash_max = ckpt_faults in
  let faults = { Spmdsim.Fault.none with seed; crash_prob; crash_max } in
  List.map
    (fun every ->
      let rep =
        Spmdsim.Checkpoint.run ~faults ~ckpt_every:every ~nprocs
          compiled.Dhpf.Gen.cprog
      in
      {
        ck_every = every;
        ck_ckpts = rep.Spmdsim.Checkpoint.rp_stats.s_ckpts;
        ck_bytes = rep.rp_stats.s_ckpt_bytes;
        ck_crashes = rep.rp_stats.s_crashes;
        ck_lost_s = rep.rp_stats.s_lost_work;
        ck_time_s = rep.rp_stats.s_time;
      })
    (ckpt_intervals ~smoke)

let resilience () =
  section "Checkpoint interval sweep: lost work vs. checkpoint cost";
  let name, _, nprocs = ckpt_workload ~smoke:false in
  let seed, crash_prob, crash_max = ckpt_faults in
  Fmt.pr
    "(%s on %d procs, crash schedule seed %d: p=%.2f per comm op, max %d \
     crashes;@.\
    \ the same crashes fire at every interval — only the rollback distance \
     changes)@.@."
    name nprocs seed crash_prob crash_max;
  Fmt.pr "%10s %8s %12s %9s %14s %12s@." "interval" "ckpts" "ckpt KiB"
    "crashes" "lost work ms" "time ms";
  List.iter
    (fun r ->
      Fmt.pr "%10s %8d %12d %9d %14.3f %12.2f@."
        (if r.ck_every = 0 then "none" else string_of_int r.ck_every)
        r.ck_ckpts (r.ck_bytes / 1024) r.ck_crashes (r.ck_lost_s *. 1e3)
        (r.ck_time_s *. 1e3))
    (ckpt_sweep ~smoke:false ())

let bench_run_json ~smoke () =
  let rows =
    List.map
      (fun (name, src, nprocs) ->
        let chk = Hpf.Sema.analyze_source src in
        (* fresh measurement window per workload: phase totals and cache
           counters are process-global (see Iset.Stats) *)
        let ph = Dhpf.Phase.global in
        Dhpf.Phase.reset ph;
        Iset.Stats.reset ();
        let ct0 = Unix.gettimeofday () in
        let compiled = Dhpf.Gen.compile chk in
        let compile_s = Unix.gettimeofday () -. ct0 in
        let phases =
          List.map (fun l -> (l, Dhpf.Phase.total ph l)) (Dhpf.Phase.labels ph)
        in
        let ti, si = time_engine `Interp compiled.Dhpf.Gen.cprog nprocs in
        let tc, sc = time_engine `Closure compiled.Dhpf.Gen.cprog nprocs in
        let eq =
          si.Spmdsim.Exec.s_msgs = sc.Spmdsim.Exec.s_msgs
          && si.s_bytes = sc.s_bytes && si.s_elems = sc.s_elems
          && si.s_retransmits = sc.s_retransmits
          && si.s_time = sc.s_time
        in
        let dsweep =
          List.map
            (fun d ->
              let w, deq = time_domains ~domains:d compiled.Dhpf.Gen.cprog nprocs sc in
              (d, w, deq))
            domain_sweep
        in
        let cells, snap = metered_run compiled.Dhpf.Gen.cprog nprocs in
        {
          rr_name = name;
          rr_nprocs = nprocs;
          rr_compile_s = compile_s;
          rr_phases = phases;
          rr_interp_s = ti;
          rr_closure_s = tc;
          rr_stats = sc;
          rr_counters_equal = eq;
          rr_domains = dsweep;
          rr_matrix = comm_matrix cells;
          rr_metrics = List.map (fun n -> (n, snap_scalar snap n)) embedded_series;
        })
      (run_workloads ~smoke ())
  in
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ckpt_rows = ckpt_sweep ~smoke () in
  pf "{\n";
  pf "  \"schema\": \"dhpf-bench-run/5\",\n";
  pf "  \"mode\": \"%s\",\n" (if smoke then "smoke" else "full");
  pf "  \"host_cores\": %d,\n" (Par.recommended ());
  pf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      pf "    {\n";
      pf "      \"name\": \"%s\",\n" (json_escape r.rr_name);
      pf "      \"nprocs\": %d,\n" r.rr_nprocs;
      pf "      \"compile_wall_s\": %.6f,\n" r.rr_compile_s;
      pf "      \"compile_phases_s\": {\n";
      List.iteri
        (fun j (l, s) ->
          pf "        \"%s\": %.6f%s\n" (json_escape l) s
            (if j + 1 < List.length r.rr_phases then "," else ""))
        r.rr_phases;
      pf "      },\n";
      pf "      \"interp_wall_s\": %.6f,\n" r.rr_interp_s;
      pf "      \"closure_wall_s\": %.6f,\n" r.rr_closure_s;
      pf "      \"speedup\": %.2f,\n" (r.rr_interp_s /. r.rr_closure_s);
      pf "      \"counters_equal\": %b,\n" r.rr_counters_equal;
      pf "      \"sim_domains\": [\n";
      (let t1 =
         match r.rr_domains with (1, w, _) :: _ -> w | _ -> r.rr_closure_s
       in
       List.iteri
         (fun j (d, w, deq) ->
           pf
             "        {\"domains\": %d, \"wall_s\": %.6f, \"speedup\": %.2f, \
              \"bit_identical\": %b}%s\n"
             d w
             (t1 /. Float.max w 1e-9)
             deq
             (if j + 1 < List.length r.rr_domains then "," else ""))
         r.rr_domains);
      pf "      ],\n";
      pf "      \"sim\": {\n";
      pf "        \"time_s\": %.9f,\n" r.rr_stats.Spmdsim.Exec.s_time;
      pf "        \"msgs\": %d,\n" r.rr_stats.s_msgs;
      pf "        \"bytes\": %d,\n" r.rr_stats.s_bytes;
      pf "        \"elems\": %d\n" r.rr_stats.s_elems;
      pf "      },\n";
      pf "      \"metrics\": {\n";
      List.iter
        (fun (n, v) -> pf "        \"%s\": %.6f,\n" (json_escape n) v)
        r.rr_metrics;
      pf "        \"comm_matrix\": [\n";
      List.iteri
        (fun j (s, d, m, e, b) ->
          pf
            "          {\"src\": %d, \"dst\": %d, \"msgs\": %d, \"elems\": \
             %d, \"bytes\": %d}%s\n"
            s d m e b
            (if j + 1 < List.length r.rr_matrix then "," else ""))
        r.rr_matrix;
      pf "        ]\n";
      pf "      }\n";
      pf "    }%s\n" (if i + 1 < List.length rows then "," else ""))
    rows;
  pf "  ],\n";
  (let name, _, nprocs = ckpt_workload ~smoke in
   let seed, crash_prob, crash_max = ckpt_faults in
   pf "  \"resilience\": {\n";
   pf "    \"workload\": \"%s\",\n" (json_escape name);
   pf "    \"nprocs\": %d,\n" nprocs;
   pf "    \"crash_seed\": %d,\n" seed;
   pf "    \"crash_prob\": %.4f,\n" crash_prob;
   pf "    \"crash_max\": %d,\n" crash_max;
   pf "    \"sweep\": [\n";
   List.iteri
     (fun j r ->
       pf
         "      {\"checkpoint_every\": %d, \"ckpts\": %d, \"ckpt_bytes\": \
          %d, \"crashes\": %d, \"lost_work_s\": %.9f, \"time_s\": %.9f}%s\n"
         r.ck_every r.ck_ckpts r.ck_bytes r.ck_crashes r.ck_lost_s r.ck_time_s
         (if j + 1 < List.length ckpt_rows then "," else ""))
     ckpt_rows;
   pf "    ]\n";
   pf "  }\n");
  pf "}\n";
  print_string (Buffer.contents buf);
  rows

let run_json () = ignore (bench_run_json ~smoke:false ())

(* Backs `make bench-run-smoke` in the tier-1 check flow: the closure
   engine must beat the interpreter on every smoke workload, with identical
   transport counters — otherwise the staged engine (or its cost-model
   parity) has regressed. *)
let run_smoke () =
  let rows = bench_run_json ~smoke:true () in
  let bad_counters = List.filter (fun r -> not r.rr_counters_equal) rows in
  let bad_domains =
    List.filter
      (fun r -> List.exists (fun (_, _, deq) -> not deq) r.rr_domains)
      rows
  in
  let slow = List.filter (fun r -> r.rr_closure_s >= r.rr_interp_s) rows in
  List.iter
    (fun r ->
      Fmt.epr "bench run-smoke: %s: engines disagree on counters/clocks@."
        r.rr_name)
    bad_counters;
  List.iter
    (fun r ->
      Fmt.epr
        "bench run-smoke: %s: sharded-lane run not bit-identical to the \
         1-domain run@."
        r.rr_name)
    bad_domains;
  List.iter
    (fun r ->
      Fmt.epr
        "bench run-smoke: %s: closure engine not faster (%.3fs vs %.3fs interp)@."
        r.rr_name r.rr_closure_s r.rr_interp_s)
    slow;
  if bad_counters <> [] || bad_domains <> [] || slow <> [] then begin
    Fmt.epr "bench run-smoke: FAILED@.";
    exit 1
  end;
  List.iter
    (fun r ->
      Fmt.epr "bench run-smoke: %s ok (%.2fx)@." r.rr_name
        (r.rr_interp_s /. r.rr_closure_s))
    rows

(* Backs `make metrics-smoke`: on a symmetric stencil (JACOBI) over a
   square processor grid the measured communication matrix must be
   symmetric, the integer-set prediction must equal the measured table
   cell for cell, and both engines must meter identically. *)
let metrics_smoke () =
  let nprocs = 4 in
  let src = Codes.jacobi ~n:64 ~iters:2 ~procs:(Codes.Fixed (2, 2)) () in
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Dhpf.Gen.compile chk in
  let cells_of engine =
    fst (metered_run ~engine compiled.Dhpf.Gen.cprog nprocs)
  in
  let cc = cells_of `Closure in
  let ci = cells_of `Interp in
  let fail = ref false in
  if cc <> ci then begin
    Fmt.epr "metrics-smoke: engines disagree on the communication matrix@.";
    fail := true
  end;
  let mat = comm_matrix cc in
  if mat = [] then begin
    Fmt.epr "metrics-smoke: empty communication matrix (metering broken?)@.";
    fail := true
  end;
  List.iter
    (fun (s, d, m, e, b) ->
      let mirrored =
        List.exists
          (fun (s', d', m', e', b') ->
            s' = d && d' = s && m' = m && e' = e && b' = b)
          mat
      in
      if not mirrored then begin
        Fmt.epr
          "metrics-smoke: asymmetric matrix cell %d->%d (%d msgs, %d elems, \
           %d bytes)@."
          s d m e b;
        fail := true
      end)
    mat;
  let predicted = Spmdsim.Predict.comm ~nprocs compiled.Dhpf.Gen.cprog in
  let mism = Spmdsim.Predict.check predicted cc in
  List.iter
    (fun (mm : Spmdsim.Predict.mismatch) ->
      Fmt.epr
        "metrics-smoke: event %d %d->%d predicted %d msgs/%d elems, measured \
         %d msgs/%d elems@."
        mm.mm_event mm.mm_src mm.mm_dst mm.mm_pred_msgs mm.mm_pred_elems
        mm.mm_meas_msgs mm.mm_meas_elems;
      fail := true)
    mism;
  if !fail then begin
    Fmt.epr "metrics-smoke: FAILED@.";
    exit 1
  end;
  Fmt.epr
    "metrics-smoke: ok (%d matrix cells, symmetric, prediction exact, \
     engines agree)@."
    (List.length mat)

(* Backs `make bench-par-smoke`: the correctness half always runs (the
   domain-differential axis on a mid-size workload — sharded lanes must be
   bit-identical to the sequential scheduler, faults included); the
   speedup half is gated on the host actually having cores to scale on.
   On a multi-core host the 4-way (or as-wide-as-the-host) compile and
   simulation must beat 1 domain by DHPF_PAR_SMOKE_MIN_SPEEDUP (default
   1.5x); single-core hosts skip with a message, because oversubscribed
   domains can only measure interleaving, not speed. *)
let par_smoke () =
  let chk =
    Hpf.Sema.analyze_source
      (Codes.jacobi ~n:96 ~iters:3 ~procs:(Codes.Symbolic2 2) ())
  in
  (match
     Spmdsim.Diffcheck.domains ~nprocs:4 ~domain_counts:[ 2; 4 ] ~seeds:[ 7 ]
       chk
   with
  | Spmdsim.Diffcheck.Pass { runs } ->
      Fmt.epr "bench par-smoke: domain-differential ok (%d run(s))@." runs
  | out ->
      Fmt.epr "bench par-smoke: FAILED — %a@." Spmdsim.Diffcheck.pp_outcome out;
      exit 1);
  let cores = Par.recommended () in
  if cores < 2 then
    Fmt.epr
      "bench par-smoke: speedup check SKIPPED — host has %d usable core(s); \
       need >= 2 to measure parallel speedup@."
      cores
  else begin
    let min_speedup =
      match Sys.getenv_opt "DHPF_PAR_SMOKE_MIN_SPEEDUP" with
      | Some s -> ( try float_of_string s with _ -> 1.5)
      | None -> 1.5
    in
    let d = min 4 cores in
    let fail = ref false in
    (* compile side: the many-unit SP application *)
    let schk =
      Hpf.Sema.analyze_source
        (Codes.sp_like ~n:24 ~nsub:30 ~procs:(Codes.Symbolic2 2) ())
    in
    ignore (compile_par_timed ~domains:1 schk) (* warm caches *);
    let c1 = compile_par_timed ~domains:1 schk in
    let cd = compile_par_timed ~domains:d schk in
    let cs = c1 /. Float.max cd 1e-9 in
    Fmt.epr "bench par-smoke: compile %d-domain speedup %.2fx (%.3fs -> %.3fs)@."
      d cs c1 cd;
    if cs < min_speedup then begin
      Fmt.epr "bench par-smoke: compile speedup below %.2fx threshold@."
        min_speedup;
      fail := true
    end;
    (* simulator side: the large JACOBI closure-engine run *)
    let jchk =
      Hpf.Sema.analyze_source
        (Codes.jacobi ~n:384 ~iters:4 ~procs:(Codes.Symbolic2 2) ())
    in
    let prog = (Dhpf.Gen.compile jchk).Dhpf.Gen.cprog in
    let s1 = Spmdsim.Exec.make ~domains:1 ~nprocs:8 prog in
    let w1, st1 = ((fun () ->
        let t0 = Unix.gettimeofday () in
        let st = Spmdsim.Exec.run s1 in
        (Unix.gettimeofday () -. t0, st)) ()) in
    let wd, deq = time_domains ~domains:d prog 8 st1 in
    let ss = w1 /. Float.max wd 1e-9 in
    Fmt.epr "bench par-smoke: sim %d-domain speedup %.2fx (%.3fs -> %.3fs)@."
      d ss w1 wd;
    if not deq then begin
      Fmt.epr "bench par-smoke: sharded run not bit-identical@.";
      fail := true
    end;
    if ss < min_speedup then begin
      Fmt.epr "bench par-smoke: simulator speedup below %.2fx threshold@."
        min_speedup;
      fail := true
    end;
    if !fail then begin
      Fmt.epr "bench par-smoke: FAILED@.";
      exit 1
    end
  end;
  Fmt.epr "bench par-smoke: ok@."

(* --------------------------------------------------------------------- *)
(* Native-engine benchmark: `-- native-smoke` / `-- native-json`         *)
(* (BENCH_native.json). Three-way bit-identity (closure / interpreter /  *)
(* generated-OCaml kernel, fault schedules included) is always asserted; *)
(* the speedup gate compares warm-cache kernel execution against the     *)
(* closure engine's run phase on JACOBI-384. The out-of-process ocamlopt *)
(* build is reported separately — it is a one-time cost the source-hash  *)
(* cache amortizes across runs.                                          *)

type native_row = {
  nv_diff_runs : int;  (* three-way differential runs that agreed *)
  nv_obtain_s : float;  (* first make: cold build or cache hit *)
  nv_make_warm_s : float;  (* second make: lower+emit+hash+dynlink *)
  nv_interp_s : float;
  nv_closure_s : float;
  nv_native_s : float;
}

let native_measure () =
  let chk =
    Hpf.Sema.analyze_source
      (Codes.jacobi ~n:96 ~iters:3 ~procs:(Codes.Symbolic2 2) ())
  in
  let runs =
    match Spmdsim.Diffcheck.engines ~nprocs:4 ~seeds:[ 7 ] chk with
    | Spmdsim.Diffcheck.Pass { runs } -> runs
    | out ->
        Fmt.epr "bench native: three-way differential FAILED — %a@."
          Spmdsim.Diffcheck.pp_outcome out;
        exit 1
  in
  let jchk =
    Hpf.Sema.analyze_source
      (Codes.jacobi ~n:384 ~iters:4 ~procs:(Codes.Symbolic2 2) ())
  in
  let prog = (Dhpf.Gen.compile jchk).Dhpf.Gen.cprog in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let obtain_s, _ =
    timed (fun () -> Spmdsim.Exec.make ~engine:`Native ~nprocs:8 prog)
  in
  let make_warm_s, _ =
    timed (fun () -> Spmdsim.Exec.make ~engine:`Native ~nprocs:8 prog)
  in
  (* run phase only, best of [best] after one warm-up run: each engine
     gets a fresh sim per run (the runtime refuses to re-run one) *)
  let run_phase ?(best = 3) engine =
    let one () =
      let sim = Spmdsim.Exec.make ~engine ~nprocs:8 prog in
      fst (timed (fun () -> ignore (Spmdsim.Exec.run sim)))
    in
    ignore (one ());
    let t = ref infinity in
    for _ = 1 to best do
      t := Float.min !t (one ())
    done;
    !t
  in
  {
    nv_diff_runs = runs;
    nv_obtain_s = obtain_s;
    nv_make_warm_s = make_warm_s;
    nv_interp_s = run_phase ~best:1 `Interp;
    nv_closure_s = run_phase `Closure;
    nv_native_s = run_phase `Native;
  }

let native_json_doc r =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "{\n";
  pf "  \"schema\": \"dhpf-bench-native/1\",\n";
  pf "  \"host_cores\": %d,\n" (Par.recommended ());
  pf "  \"workload\": \"JACOBI-384\",\n";
  pf "  \"nprocs\": 8,\n";
  pf
    "  \"three_way_identity\": {\"workload\": \"JACOBI-96\", \"runs\": %d, \
     \"pass\": true},\n"
    r.nv_diff_runs;
  pf "  \"kernel_obtain_s\": %.6f,\n" r.nv_obtain_s;
  pf "  \"kernel_make_warm_s\": %.6f,\n" r.nv_make_warm_s;
  pf "  \"interp_run_s\": %.6f,\n" r.nv_interp_s;
  pf "  \"closure_run_s\": %.6f,\n" r.nv_closure_s;
  pf "  \"native_run_s\": %.6f,\n" r.nv_native_s;
  pf "  \"speedup_vs_closure\": %.2f,\n"
    (r.nv_closure_s /. Float.max r.nv_native_s 1e-9);
  pf "  \"speedup_vs_interp\": %.2f\n"
    (r.nv_interp_s /. Float.max r.nv_native_s 1e-9);
  pf "}\n";
  Buffer.contents buf

let native_json () = print_string (native_json_doc (native_measure ()))

(* Backs `make bench-native-smoke`: identity always, speedup gated by
   DHPF_NATIVE_SMOKE_MIN_SPEEDUP (default 3x — the run-phase comparison
   is single-threaded, so unlike par-smoke it holds on one core too). *)
let native_smoke () =
  let r = native_measure () in
  let sp = r.nv_closure_s /. Float.max r.nv_native_s 1e-9 in
  let min_speedup =
    match Sys.getenv_opt "DHPF_NATIVE_SMOKE_MIN_SPEEDUP" with
    | Some s -> ( try float_of_string s with _ -> 3.0)
    | None -> 3.0
  in
  Fmt.epr
    "bench native-smoke: three-way ok (%d run(s)); JACOBI-384 run phase \
     closure=%.3fs native=%.3fs interp=%.3fs (%.2fx over closure; warm make \
     %.3fs, first obtain %.3fs)@."
    r.nv_diff_runs r.nv_closure_s r.nv_native_s r.nv_interp_s sp
    r.nv_make_warm_s r.nv_obtain_s;
  if sp < min_speedup then begin
    Fmt.epr "bench native-smoke: speedup below %.2fx threshold@." min_speedup;
    exit 1
  end;
  Fmt.epr "bench native-smoke: ok@."

(* Smoke mode backs `make bench-smoke` in the tier-1 check flow: a fast
   Table-1 subset, JSON on stdout, and a hard failure if the memoization
   layer shows no hits (i.e. the caches silently stopped working). *)
let smoke () =
  let results = bench_json ~smoke:true () in
  if Iset.Cache.enabled () then begin
    let hits_of (_, _, _, stats, _) =
      List.fold_left
        (fun acc key -> acc + (try List.assoc key stats with Not_found -> 0))
        0
        [ "sat hits"; "simplify hits"; "gist hits"; "implies hits"; "subset hits" ]
    in
    let total_hits = List.fold_left (fun acc r -> acc + hits_of r) 0 results in
    if total_hits = 0 then begin
      Fmt.epr "bench smoke: FAILED — zero cache hits across the smoke apps@.";
      exit 1
    end;
    Fmt.epr "bench smoke: ok (%d cache hits)@." total_hits
  end
  else Fmt.epr "bench smoke: ok (caches disabled via DHPF_ISET_CACHE)@."

let () =
  let all =
    [
      ("table1", table1);
      ("fig7a", fig7a);
      ("fig7b", fig7b);
      ("fig7c", fig7c);
      ("ablations", ablations);
      ("resilience", resilience);
      ("micro", set_micro);
    ]
  in
  (* json/smoke are machine-readable modes, kept out of the default
     every-section run so stdout stays a single JSON document *)
  let special =
    [
      ("json", json);
      ("smoke", smoke);
      ("run-json", run_json);
      ("run-smoke", run_smoke);
      ("par-smoke", par_smoke);
      ("native-smoke", native_smoke);
      ("native-json", native_json);
      ("metrics-smoke", metrics_smoke);
    ]
  in
  match Array.to_list Sys.argv with
  | _ :: args when List.for_all (fun a -> List.mem_assoc a special) args && args <> []
    ->
      List.iter (fun a -> (List.assoc a special) ()) args
  | argv ->
      let want =
        match argv with _ :: args when args <> [] -> args | _ -> List.map fst all
      in
      List.iter
        (fun name ->
          match List.assoc_opt name all with
          | Some f -> f ()
          | None -> Fmt.epr "unknown section %s@." name)
        want;
      Fmt.pr "@.done.@."
