(* dhpfc — command-line driver for the dHPF-reproduction compiler.

   Subcommands:
     compile   parse, analyze and compile a mini-HPF file; print the SPMD
               node program, communication sets, or a phase-time report
     run       compile and execute on the simulated machine, with a serial
               run for comparison
     bench     print one of the built-in benchmark programs *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let builtin name =
  match name with
  | "jacobi" -> Some (Codes.jacobi ())
  | "tomcatv" -> Some (Codes.tomcatv ())
  | "erlebacher" -> Some (Codes.erlebacher ())
  | "gauss" -> Some (Codes.gauss ())
  | "figure2" -> Some (Codes.figure2 ())
  | "sp_like" -> Some (Codes.sp_like ())
  | _ -> None

let load src_arg =
  match builtin src_arg with
  | Some src -> src
  | None -> read_file src_arg

(* distinct exit codes so scripts can triage failures:
   2 = parse/lexical, 3 = semantic, 4 = unsupported construct,
   5 = runtime (simulator error or deadlock) *)
let exit_parse = 2
let exit_semantic = 3
let exit_unsupported = 4
let exit_runtime = 5

let handle_errors f =
  try f () with
  | Sys_error msg ->
      Fmt.epr "error: %s (not a file or built-in benchmark)@." msg;
      exit exit_parse
  | Hpf.Parser.Error (msg, line) ->
      Fmt.epr "parse error, line %d: %s@." line msg;
      exit exit_parse
  | Hpf.Lexer.Error (msg, line) ->
      Fmt.epr "lexical error, line %d: %s@." line msg;
      exit exit_parse
  | Iset.Parse.Error msg ->
      Fmt.epr "set-expression parse error: %s@." msg;
      exit exit_parse
  | Iset.Calc.Error msg ->
      Fmt.epr "calculator error: %s@." msg;
      exit exit_parse
  | Hpf.Sema.Error msg ->
      Fmt.epr "semantic error: %s@." msg;
      exit exit_semantic
  | Dhpf.Gen.Unsupported msg | Dhpf.Layout.Unsupported msg
  | Iset.Codegen.Unsupported msg ->
      Fmt.epr "unsupported: %s@." msg;
      exit exit_unsupported
  | Spmdsim.Exec.Error msg ->
      Fmt.epr "runtime error: %s@." msg;
      exit exit_runtime
  | Spmdsim.Serial.Error msg ->
      Fmt.epr "serial interpreter error: %s@." msg;
      exit exit_runtime
  | Spmdsim.Exec.Deadlock d ->
      Fmt.epr "%a" Spmdsim.Exec.pp_diagnostic d;
      exit exit_runtime
  | Spmdsim.Predict.Unpredictable msg ->
      Fmt.epr "unsupported: communication volume not predictable: %s@." msg;
      exit exit_unsupported

(* ---- tracing ---- *)

(* --trace FILE (or DHPF_TRACE=FILE in the environment, handled by
   Obs.init_env in main): record a Chrome trace-event timeline of the
   compile and/or the simulated run, plus a plain-text span summary on
   stderr. *)
let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON timeline to $(docv) (loadable \
           in Perfetto or chrome://tracing): compiler phases with \
           integer-set cache snapshots, and one lane per simulated \
           processor with compute/comm spans and send$(b,->)recv flow \
           arrows. A span summary table is printed to stderr.")

let trace_begin = function
  | None -> ()
  | Some _ ->
      Obs.enable ();
      Obs.set_process_name ~pid:0 "dhpf compiler";
      Obs.set_thread_name ~pid:0 ~tid:0 "main"

let trace_finish = function
  | None -> ()
  | Some path ->
      Obs.write path;
      Fmt.epr "%s" (Obs.summary ());
      Fmt.epr "trace: %d events -> %s@." (Obs.events_count ()) path

(* every subcommand entry starts a fresh measurement window: phase totals
   and integer-set cache counters are process-global and would otherwise
   leak across multiple compiles in one process (cache *contents* survive
   deliberately — only the counters are windowed) *)
let fresh_window () =
  Dhpf.Phase.reset Dhpf.Phase.global;
  Iset.Stats.reset ()

(* ---- metrics ---- *)

(* --metrics FILE (or DHPF_METRICS=FILE in the environment, handled by
   Obs.Metrics.init_env in main): record the aggregate metrics registry —
   compiler phase times and integer-set engine counters, and for `run` the
   simulator's communication matrix, per-processor time split and fault
   breakdown — as dhpf-metrics/1 JSON. *)
let metrics_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry to $(docv) as stable dhpf-metrics/1 \
           JSON: compiler phase seconds and integer-set engine counters, \
           plus (for $(b,run)) the full P$(b,x)P communication matrix, \
           per-processor compute/send/recv-wait/collective seconds, \
           message-size and halo-occupancy histograms, retransmit \
           breakdowns and derived load-imbalance gauges.")

let metrics_begin = function None -> () | Some _ -> Obs.Metrics.enable ()

(* publish the compiler-side series; the simulator publishes its own at
   the end of each metered run *)
let metrics_compiler () =
  if Obs.Metrics.enabled () then begin
    let module M = Obs.Metrics in
    let ph = Dhpf.Phase.global in
    List.iter
      (fun l ->
        M.set
          (M.gauge ~labels:[ ("phase", l) ] "compiler/phase_s")
          (Dhpf.Phase.total ph l))
      (Dhpf.Phase.labels ph);
    List.iter
      (fun (n, v) -> M.set (M.gauge ("iset/" ^ n)) (float_of_int v))
      (Iset.Stats.report ());
    M.set (M.gauge "compiler/domains") (float_of_int (Par.domains ()))
  end

let metrics_finish = function
  | None -> ()
  | Some path ->
      Obs.Metrics.write path;
      Fmt.epr "metrics: %d series -> %s@."
        (List.length (Obs.Metrics.snapshot ()))
        path

(* ---- arguments ---- *)

let src_t =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SRC"
        ~doc:
          "Mini-HPF source file, or the name of a built-in benchmark \
           (jacobi, tomcatv, erlebacher, gauss, figure2, sp_like).")

let show_sets_t =
  Arg.(value & flag & info [ "show-sets" ] ~doc:"Print the communication sets of every event.")

let show_spmd_t =
  Arg.(value & flag & info [ "show-spmd" ] ~doc:"Print the generated SPMD node program.")

let report_t =
  Arg.(value & flag & info [ "report" ] ~doc:"Print the compilation phase-time breakdown.")

let no_opt names doc = Arg.(value & flag & info names ~doc)
let no_split_t = no_opt [ "no-split" ] "Disable loop splitting (Figure 4)."
let no_vect_t = no_opt [ "no-vectorize" ] "Disable message vectorization."
let no_coal_t = no_opt [ "no-coalesce" ] "Disable message coalescing."
let no_inplace_t = no_opt [ "no-inplace" ] "Disable in-place communication recognition."

let opts_of ~no_split ~no_vect ~no_coal ~no_inplace =
  {
    Dhpf.Gen.opt_split = not no_split;
    opt_vectorize = not no_vect;
    opt_coalesce = not no_coal;
    opt_inplace = not no_inplace;
  }

let nprocs_t =
  Arg.(value & opt int 4 & info [ "p"; "nprocs" ] ~docv:"P" ~doc:"Number of simulated processors.")

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Size of the OCaml domain pool used by the parallel compiler \
           phases and the simulator's lane scheduler (default: \
           $(b,DHPF_DOMAINS), else 1). Clamped to the machine's recommended \
           domain count. Any value produces bit-identical compiler output \
           and simulation results — the pool only changes wall-clock time.")

(* resolve the session domain pool: -j wins over DHPF_DOMAINS; both are
   clamped to the physical core count here and only here (the libraries
   never clamp, so the differential suites can oversubscribe
   deliberately). Returns the resolved count and stamps it into the trace
   timeline when one is being recorded. *)
let apply_jobs jobs =
  (match jobs with
  | Some n when n < 1 ->
      Fmt.epr "invalid --jobs %d: need a positive domain count@." n;
      exit exit_parse
  | Some n -> Par.set_domains (Par.clamp n)
  | None -> Par.set_domains (Par.clamp (Par.domains ())));
  let d = Par.domains () in
  if Obs.enabled () then
    Obs.instant ~cat:"meta" ~args:[ ("domains", Obs.Int d) ] "domain pool";
  d

let param_t =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string int) []
    & info [ "D"; "param" ] ~docv:"NAME=VALUE" ~doc:"Bind a symbolic program parameter.")

(* parsed as a plain string and resolved through Exec.engine_of_string so
   an unknown name exits with the parse-error code (2) and a message that
   lists the valid engines, instead of cmdliner's generic cli-error 124 *)
let engine_t =
  Arg.(
    value & opt string "closure"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "SPMD execution engine: $(b,closure) (the default; the program is \
           lowered once to OCaml closures over dense per-processor storage), \
           $(b,interp) (the tree-walking interpreter kept as the \
           differential oracle), or $(b,native) (the program is emitted as \
           OCaml source, compiled out-of-process into a content-addressed \
           cache and dynlinked — see $(b,--native-cache)). All engines \
           produce bit-identical results and identical message statistics.")

let resolve_engine name =
  match Spmdsim.Exec.engine_of_string name with
  | Some e -> e
  | None ->
      Fmt.epr "dhpfc: unknown engine %S; valid engines: %s@." name
        (String.concat ", " Spmdsim.Exec.engine_names);
      exit exit_parse

let native_cache_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "native-cache" ] ~docv:"DIR"
        ~doc:
          "Build-cache directory for $(b,--engine native) kernels (also \
           settable via $(b,DHPF_NATIVE_CACHE)). Defaults to \
           $(b,<tmpdir>/dhpf-native-cache); a warm cache skips the \
           out-of-process compiler entirely.")

(* ---- fault-injection knobs ---- *)

let faults_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "faults" ] ~docv:"SEED"
        ~doc:
          "Enable deterministic fault injection with the given schedule \
           seed: message delay, reordering, duplicate delivery, \
           drop-with-retransmit and straggler clock skew. Results are \
           unchanged; timing and resilience statistics reflect the faults.")

let fault_drop_t =
  Arg.(
    value & opt float 0.15
    & info [ "fault-drop" ] ~docv:"P"
        ~doc:"Per-transmission drop probability under --faults/--diff.")

let fault_dup_t =
  Arg.(
    value & opt float 0.10
    & info [ "fault-dup" ] ~docv:"P"
        ~doc:"Duplicate-delivery probability under --faults/--diff.")

let fault_delay_t =
  Arg.(
    value & opt float 0.30
    & info [ "fault-delay" ] ~docv:"P"
        ~doc:"In-flight delay probability under --faults/--diff.")

let fault_skew_t =
  Arg.(
    value & opt float 1.5
    & info [ "fault-skew" ] ~docv:"F"
        ~doc:
          "Straggler clock-skew bound: each processor computes slower by a \
           factor drawn from [1,F].")

let crash_procs_t =
  Arg.(
    value & opt int 0
    & info [ "crash-procs" ] ~docv:"N"
        ~doc:
          "Enable fail-stop crash injection: up to $(docv) processor \
           crashes over the run, at deterministic points drawn from the \
           fault-schedule seed (--faults, or seed 0). Each crash triggers \
           coordinated recovery: the group restarts from the last \
           checkpoint (see $(b,--checkpoint-every)) or from scratch, and \
           replays. Results stay bit-identical to the fault-free run; \
           detection, restart and lost work are charged to the clocks.")

let crash_prob_t =
  Arg.(
    value & opt float 0.01
    & info [ "crash-prob" ] ~docv:"P"
        ~doc:
          "Per-communication-operation crash probability under \
           $(b,--crash-procs).")

let ckpt_every_t =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Write a coordinated checkpoint of the whole group every $(docv) \
           global communication operations (0 = never). Each write charges \
           every processor alpha + bytes*beta (machine checkpoint \
           parameters); crash recovery rolls back to the latest snapshot \
           instead of restarting from scratch.")

let max_events_t =
  Arg.(
    value & opt int 0
    & info [ "max-events" ] ~docv:"N"
        ~doc:
          "Scheduler watchdog (0 = off): abort with a structured runtime \
           error (exit 5) once the global communication-event count \
           exceeds $(docv) — a guard against pathological schedules and \
           livelock.")

let diff_t =
  Arg.(
    value & opt int 0
    & info [ "diff" ] ~docv:"N"
        ~doc:
          "Differential resilience harness: replay the program under N \
           seeded fault schedules and report the first divergence from the \
           serial oracle.")

let diff_engines_t =
  Arg.(
    value & opt int 0
    & info [ "diff-engines" ] ~docv:"N"
        ~doc:
          "Engine-differential harness: run all three engines (closure, \
           interpreter, generated-native kernel) against each other — \
           fault-free plus N seeded fault schedules — and report the first \
           deviation from bit-identical values, clocks and message \
           counters.")

let diff_domains_t =
  Arg.(
    value & opt int 0
    & info [ "diff-domains" ] ~docv:"N"
        ~doc:
          "Domain-differential harness: run the program on a single domain \
           and with processor lanes sharded across an oversubscribed pool \
           (2 and 4 domains) — fault-free plus N seeded fault schedules — \
           and report the first deviation from bit-identical values, \
           per-processor clocks, message counters and per-pair \
           communication cells.")

let diff_crashes_t =
  Arg.(
    value & opt int 0
    & info [ "diff-crashes" ] ~docv:"N"
        ~doc:
          "Crash-differential harness: run both engines under N seeded \
           crash schedules with checkpoint/restart recovery and report the \
           first deviation from the fault-free oracle — bit-identical \
           values and an identical per-pair communication table.")

let spec_of ~seed ~drop ~dup ~delay ~skew ~crash_prob ~crash_procs =
  {
    (Spmdsim.Fault.default ~seed) with
    drop_prob = drop;
    dup_prob = dup;
    delay_prob = delay;
    skew_max = skew;
    crash_prob = (if crash_procs > 0 then crash_prob else 0.0);
    crash_max = crash_procs;
  }

(* malformed schedules are a usage error: reject at parse time, exit 2 *)
let validated sp =
  match Spmdsim.Fault.validate sp with
  | Ok () -> sp
  | Error msg ->
      Fmt.epr "invalid fault specification: %s@." msg;
      exit exit_parse

(* ---- compile ---- *)

let compile_cmd =
  let run src show_sets show_spmd report no_split no_vect no_coal no_inplace
      jobs trace metrics =
    handle_errors @@ fun () ->
    let opts = opts_of ~no_split ~no_vect ~no_coal ~no_inplace in
    fresh_window ();
    trace_begin trace;
    metrics_begin metrics;
    let domains = apply_jobs jobs in
    let ph = Dhpf.Phase.global in
    let chk =
      Dhpf.Phase.time ph "parse and semantic analysis" (fun () ->
          Hpf.Sema.analyze_source (load src))
    in
    let compiled = Dhpf.Gen.compile ~opts chk in
    trace_finish trace;
    metrics_compiler ();
    metrics_finish metrics;
    if show_sets then
      List.iter
        (fun (e : Dhpf.Gen.event) ->
          Fmt.pr "event %d: %s%s@." e.ev_id e.ev_desc
            (if e.ev_inplace.Dhpf.Inplace.contiguous then " [in-place]"
             else if e.ev_inplace.Dhpf.Inplace.rect_section then " [rect]"
             else "");
          Fmt.pr "  SendCommMap(m) = %a@." Iset.Rel.pp e.ev_maps.Dhpf.Comm.send_map;
          Fmt.pr "  RecvCommMap(m) = %a@." Iset.Rel.pp e.ev_maps.Dhpf.Comm.recv_map;
          match e.ev_active with
          | Some a ->
              Fmt.pr "  busyVPSet        = %a@." Iset.Rel.pp a.Dhpf.Vp.busy;
              Fmt.pr "  activeSendVPSet  = %a@." Iset.Rel.pp a.Dhpf.Vp.active_send;
              Fmt.pr "  activeRecvVPSet  = %a@." Iset.Rel.pp a.Dhpf.Vp.active_recv
          | None -> ())
        compiled.cevents;
    if show_spmd then print_string (Dhpf.Spmd.program_to_string compiled.cprog);
    if report then begin
      let ph = Dhpf.Phase.global in
      Fmt.pr "total compilation time: %.3f s@." (Dhpf.Phase.elapsed ph);
      Fmt.pr "domain pool: %d domain(s)@." domains;
      List.iter
        (fun l -> Fmt.pr "  %-32s %8.3f s@." l (Dhpf.Phase.total ph l))
        (Dhpf.Phase.labels ph);
      Fmt.pr "integer-set engine caches (%s):@."
        (if Iset.Cache.enabled () then "enabled" else "disabled");
      Fmt.pr "%a" Iset.Stats.pp ()
    end;
    if not (show_sets || show_spmd || report) then
      Fmt.pr "compiled: %d communication events, %d statements@."
        (List.length compiled.cevents)
        (List.length compiled.cprog.Dhpf.Spmd.main)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a mini-HPF program")
    Term.(
      const run $ src_t $ show_sets_t $ show_spmd_t $ report_t $ no_split_t
      $ no_vect_t $ no_coal_t $ no_inplace_t $ jobs_t $ trace_t $ metrics_t)

(* ---- run ---- *)

let check_comm_t =
  Arg.(
    value & flag
    & info [ "check-comm" ]
        ~doc:
          "Predicted-vs-measured communication check: evaluate the \
           compiler's communication sets at the concrete distribution \
           parameters (the paper's compile-time message counting), run the \
           program, and fail (exit 1) unless every (event, sender, \
           receiver) cell of the simulated communication matrix matches \
           the prediction. Per-pair counters ignore retransmission, so the \
           check also holds under $(b,--faults).")

let comm_slack_t =
  Arg.(
    value & opt float 0.0
    & info [ "comm-slack" ] ~docv:"F"
        ~doc:
          "Relative tolerance for $(b,--check-comm): a cell passes when \
           |measured - predicted| <= F * predicted. Default 0 (exact).")

let run_cmd =
  let run src nprocs params engine native_cache no_split no_vect no_coal
      no_inplace jobs faults_seed drop dup delay skew crash_procs crash_prob
      ckpt_every max_events diff diff_engines diff_domains diff_crashes trace
      metrics check_comm comm_slack =
    handle_errors @@ fun () ->
    let engine = resolve_engine engine in
    Option.iter (Unix.putenv "DHPF_NATIVE_CACHE") native_cache;
    List.iter
      (fun (name, v) ->
        if v < 0 then begin
          Fmt.epr "invalid fault specification: %s %d is negative@." name v;
          exit exit_parse
        end)
      [
        ("--crash-procs", crash_procs);
        ("--checkpoint-every", ckpt_every);
        ("--max-events", max_events);
      ];
    let opts = opts_of ~no_split ~no_vect ~no_coal ~no_inplace in
    fresh_window ();
    trace_begin trace;
    metrics_begin metrics;
    if check_comm then Obs.Metrics.enable ();
    let domains = apply_jobs jobs in
    let chk =
      Dhpf.Phase.time Dhpf.Phase.global "parse and semantic analysis"
        (fun () -> Hpf.Sema.analyze_source (load src))
    in
    if diff > 0 then begin
      (* differential resilience sweep: serial oracle vs. N fault seeds *)
      let spec_of_seed seed =
        validated
          (spec_of ~seed ~drop ~dup ~delay ~skew ~crash_prob ~crash_procs:0)
      in
      let seeds = List.init diff (fun i -> i + 1) in
      let out =
        Spmdsim.Diffcheck.run ~engine ~nprocs ~params ~opts ~spec_of_seed
          ~seeds chk
      in
      Fmt.pr "%a@." Spmdsim.Diffcheck.pp_outcome out;
      match out with
      | Spmdsim.Diffcheck.Pass _ -> ()
      | _ -> exit exit_runtime
    end
    else if diff_engines > 0 then begin
      (* engine-differential sweep: closure vs. interpreter vs. native *)
      let spec_of_seed seed =
        validated
          (spec_of ~seed ~drop ~dup ~delay ~skew ~crash_prob ~crash_procs:0)
      in
      let seeds = List.init diff_engines (fun i -> i + 1) in
      let out =
        Spmdsim.Diffcheck.engines ~nprocs ~params ~opts ~spec_of_seed ~seeds
          chk
      in
      Fmt.pr "%a@." Spmdsim.Diffcheck.pp_outcome out;
      match out with
      | Spmdsim.Diffcheck.Pass _ -> ()
      | _ -> exit exit_runtime
    end
    else if diff_domains > 0 then begin
      (* domain-differential sweep: sequential scheduler vs. an
         oversubscribed domain pool *)
      let spec_of_seed seed =
        validated
          (spec_of ~seed ~drop ~dup ~delay ~skew ~crash_prob ~crash_procs:0)
      in
      let seeds = List.init diff_domains (fun i -> i + 1) in
      let out =
        Spmdsim.Diffcheck.domains ~engine ~nprocs ~params ~opts ~spec_of_seed
          ~seeds chk
      in
      Fmt.pr "%a@." Spmdsim.Diffcheck.pp_outcome out;
      match out with
      | Spmdsim.Diffcheck.Pass _ -> ()
      | _ -> exit exit_runtime
    end
    else if diff_crashes > 0 then begin
      (* crash-differential sweep: checkpoint/restart recovery on both
         engines vs. the fault-free oracle *)
      let seeds = List.init diff_crashes (fun i -> i + 1) in
      let out =
        match ckpt_every with
        | 0 -> Spmdsim.Diffcheck.crashes ~nprocs ~params ~opts ~seeds chk
        | n ->
            Spmdsim.Diffcheck.crashes ~nprocs ~params ~opts ~ckpt_every:n
              ~seeds chk
      in
      Fmt.pr "%a@." Spmdsim.Diffcheck.pp_outcome out;
      match out with
      | Spmdsim.Diffcheck.Pass _ -> ()
      | _ -> exit exit_runtime
    end
    else begin
      let compiled = Dhpf.Gen.compile ~opts chk in
      let serial = Spmdsim.Serial.run ~params chk in
      let faults =
        match faults_seed with
        | Some seed ->
            Some
              (validated
                 (spec_of ~seed ~drop ~dup ~delay ~skew ~crash_prob
                    ~crash_procs))
        | None when crash_procs > 0 ->
            (* crash injection without message faults: a pure-crash spec *)
            Some
              (validated
                 {
                   Spmdsim.Fault.none with
                   seed = 0;
                   crash_prob;
                   crash_max = crash_procs;
                 })
        | None -> None
      in
      let sim, stats, report =
        if crash_procs > 0 || ckpt_every > 0 then begin
          let rep =
            Spmdsim.Checkpoint.run ~engine ?faults ~ckpt_every ~max_events
              ~nprocs ~params compiled.cprog
          in
          (rep.rp_sim, rep.rp_stats, Some rep)
        end
        else begin
          let sim =
            Spmdsim.Exec.make ~engine ?faults ~nprocs ~params compiled.cprog
          in
          if max_events > 0 then
            (Spmdsim.Exec.transport sim).tr_max_events <- max_events;
          (sim, Spmdsim.Exec.run sim, None)
        end
      in
      Fmt.pr "serial (T1)     : %10.3f ms  (%d flops)@." (serial.r_time *. 1e3)
        serial.r_flops;
      Fmt.pr "spmd on %2d procs: %10.3f ms  (%d msgs, %d KiB)@." (Spmdsim.Exec.nprocs sim)
        (stats.s_time *. 1e3) stats.s_msgs (stats.s_bytes / 1024);
      Fmt.pr "speedup         : %10.2f@." (serial.r_time /. stats.s_time);
      if domains > 1 then Fmt.pr "domain pool     : %10d domains@." domains;
      if Obs.Metrics.enabled () then
        Obs.Metrics.set
          (Obs.Metrics.gauge "sim/domains")
          (float_of_int domains);
      (match faults with
      | None -> ()
      | Some sp ->
          Fmt.pr "fault schedule  : %s@." (Spmdsim.Fault.describe sp);
          Fmt.pr "resilience      : %d retransmits, %d timeouts, %d duplicates \
                  discarded, peak mailbox %d@."
            stats.s_retransmits stats.s_timeouts stats.s_dups_delivered
            stats.s_max_mailbox);
      (match report with
      | None -> ()
      | Some rep ->
          if ckpt_every > 0 then
            Fmt.pr "checkpoints     : %d written (%d KiB), every %d comm ops@."
              stats.s_ckpts
              ((stats.s_ckpt_bytes + 1023) / 1024)
              ckpt_every;
          if stats.s_crashes > 0 then begin
            Fmt.pr
              "crashes         : %d crash(es), %d recoveries in %d attempts, \
               lost work %.3f ms@."
              stats.s_crashes stats.s_recoveries rep.rp_attempts
              (stats.s_lost_work *. 1e3);
            List.iter
              (fun (c : Spmdsim.Checkpoint.crash_record) ->
                Fmt.pr
                  "  crash: processor %d at its op %d (t=%.3f ms) -> %s, \
                   group resumes at %.3f ms@."
                  c.cr_pid c.cr_op (c.cr_clock *. 1e3)
                  (if c.cr_restore_ops > 0 then
                     Printf.sprintf "rollback to op %d" c.cr_restore_ops
                   else "restart from scratch")
                  (c.cr_restart_t *. 1e3))
              rep.rp_crashes
          end);
      if check_comm then begin
        let predicted =
          Spmdsim.Predict.comm ~params ~nprocs:(Spmdsim.Exec.nprocs sim)
            compiled.cprog
        in
        let measured = Spmdsim.Exec.comm_cells sim in
        let pmsgs = List.fold_left (fun a c -> a + c.Spmdsim.Predict.p_msgs) 0 predicted
        and pelems = List.fold_left (fun a c -> a + c.Spmdsim.Predict.p_elems) 0 predicted in
        let mismatches = Spmdsim.Predict.check ~slack:comm_slack predicted measured in
        if mismatches = [] then
          Fmt.pr "comm check      : ok — %d pair cells, %d msgs, %d elems \
                  (predicted = measured)@."
            (List.length predicted) pmsgs pelems
        else begin
          Fmt.epr "comm check FAILED: %d cell(s) diverge@." (List.length mismatches);
          List.iter
            (fun m ->
              Fmt.epr
                "  event %d %d->%d: predicted %d msgs/%d elems, measured %d \
                 msgs/%d elems@."
                m.Spmdsim.Predict.mm_event m.Spmdsim.Predict.mm_src
                m.Spmdsim.Predict.mm_dst m.Spmdsim.Predict.mm_pred_msgs
                m.Spmdsim.Predict.mm_pred_elems m.Spmdsim.Predict.mm_meas_msgs
                m.Spmdsim.Predict.mm_meas_elems)
            mismatches;
          exit 1
        end
      end
    end;
    trace_finish trace;
    metrics_compiler ();
    metrics_finish metrics
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute on the simulated machine")
    Term.(
      const run $ src_t $ nprocs_t $ param_t $ engine_t $ native_cache_t
      $ no_split_t $ no_vect_t
      $ no_coal_t $ no_inplace_t $ jobs_t $ faults_t $ fault_drop_t
      $ fault_dup_t $ fault_delay_t $ fault_skew_t $ crash_procs_t
      $ crash_prob_t $ ckpt_every_t $ max_events_t $ diff_t $ diff_engines_t
      $ diff_domains_t $ diff_crashes_t $ trace_t $ metrics_t $ check_comm_t
      $ comm_slack_t)

(* ---- bench (print a built-in source) ---- *)

let bench_cmd =
  let run name =
    match builtin name with
    | Some src -> print_string src
    | None ->
        Fmt.epr "unknown benchmark %s@." name;
        exit 1
  in
  Cmd.v
    (Cmd.info "source" ~doc:"Print a built-in benchmark program")
    Term.(const run $ src_t)

(* ---- omega (set calculator REPL) ---- *)

let omega_cmd =
  let run script =
    handle_errors @@ fun () ->
    match script with
    | Some path ->
        List.iter print_endline (Iset.Calc.eval_script (read_file path))
    | None ->
        Fmt.pr "dhpf omega calculator — A := {[i] : 1 <= i <= n}; sat A; ...@.";
        let env = ref [] in
        (try
           while true do
             Fmt.pr "omega> %!";
             let line = input_line stdin in
             match Iset.Calc.eval_line !env line with
             | env', out ->
                 env := env';
                 if out <> "" then print_endline out
             | exception Iset.Calc.Error msg -> Fmt.pr "error: %s@." msg
             | exception Iset.Parse.Error msg -> Fmt.pr "parse error: %s@." msg
           done
         with End_of_file -> ())
  in
  let script_t =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SCRIPT" ~doc:"Script file; omitted: interactive.")
  in
  Cmd.v
    (Cmd.info "omega" ~doc:"Interactive integer-set calculator (Omega-calculator style)")
    Term.(const run $ script_t)

let version = "1.5.0"

let () =
  Obs.init_env ();
  Obs.Metrics.init_env ();
  let info =
    Cmd.info "dhpfc" ~version
      ~doc:"dHPF-reproduction data-parallel compiler"
  in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; run_cmd; bench_cmd; omega_cmd ]))
