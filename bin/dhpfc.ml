(* dhpfc — command-line driver for the dHPF-reproduction compiler.

   Subcommands:
     compile     parse, analyze and compile a mini-HPF file; print the SPMD
                 node program, communication sets, or a phase-time report
     run         compile and execute on the simulated machine, with a serial
                 run for comparison
     bench       print one of the built-in benchmark programs
     serve       persistent compilation daemon on a Unix-domain socket
     bench-serve cold-vs-warm serve throughput benchmark, plus a
                 disk-cache eviction-pressure phase and an
                 observability smoke mode
     top         live-refreshing dashboard over a running daemon's
                 stats op *)

open Cmdliner

let version = "1.7.0"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let builtin name =
  match name with
  | "jacobi" -> Some (Codes.jacobi ())
  | "tomcatv" -> Some (Codes.tomcatv ())
  | "erlebacher" -> Some (Codes.erlebacher ())
  | "gauss" -> Some (Codes.gauss ())
  | "figure2" -> Some (Codes.figure2 ())
  | "sp_like" -> Some (Codes.sp_like ())
  | _ -> None

let load src_arg =
  match builtin src_arg with
  | Some src -> src
  | None -> read_file src_arg

(* distinct exit codes so scripts can triage failures:
   2 = parse/lexical, 3 = semantic, 4 = unsupported construct,
   5 = runtime (simulator error or deadlock), 6 = serve daemon could not
   bind its socket, 7 = serve wire-protocol error *)
let exit_parse = 2
let exit_semantic = 3
let exit_unsupported = 4
let exit_runtime = 5
let exit_bind = 6
let exit_protocol = 7

let handle_errors f =
  try f () with
  | Sys_error msg ->
      Fmt.epr "error: %s (not a file or built-in benchmark)@." msg;
      exit exit_parse
  | Hpf.Parser.Error (msg, line) ->
      Fmt.epr "parse error, line %d: %s@." line msg;
      exit exit_parse
  | Hpf.Lexer.Error (msg, line) ->
      Fmt.epr "lexical error, line %d: %s@." line msg;
      exit exit_parse
  | Iset.Parse.Error msg ->
      Fmt.epr "set-expression parse error: %s@." msg;
      exit exit_parse
  | Iset.Calc.Error msg ->
      Fmt.epr "calculator error: %s@." msg;
      exit exit_parse
  | Hpf.Sema.Error msg ->
      Fmt.epr "semantic error: %s@." msg;
      exit exit_semantic
  | Dhpf.Gen.Unsupported msg | Dhpf.Layout.Unsupported msg
  | Iset.Codegen.Unsupported msg ->
      Fmt.epr "unsupported: %s@." msg;
      exit exit_unsupported
  | Spmdsim.Exec.Error msg ->
      Fmt.epr "runtime error: %s@." msg;
      exit exit_runtime
  | Spmdsim.Serial.Error msg ->
      Fmt.epr "serial interpreter error: %s@." msg;
      exit exit_runtime
  | Spmdsim.Exec.Deadlock d ->
      Fmt.epr "%a" Spmdsim.Exec.pp_diagnostic d;
      exit exit_runtime
  | Spmdsim.Predict.Unpredictable msg ->
      Fmt.epr "unsupported: communication volume not predictable: %s@." msg;
      exit exit_unsupported
  | Serve.Server.Bind_error msg ->
      Fmt.epr "bind error: %s@." msg;
      exit exit_bind
  | Serve.Proto.Proto_error msg ->
      Fmt.epr "protocol error: %s@." msg;
      exit exit_protocol
  | Serve.Client.Connect_error msg ->
      Fmt.epr "connect error: %s@." msg;
      exit exit_protocol

(* ---- tracing ---- *)

(* --trace FILE (or DHPF_TRACE=FILE in the environment, handled by
   Obs.init_env in main): record a Chrome trace-event timeline of the
   compile and/or the simulated run, plus a plain-text span summary on
   stderr. *)
let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON timeline to $(docv) (loadable \
           in Perfetto or chrome://tracing): compiler phases with \
           integer-set cache snapshots, and one lane per simulated \
           processor with compute/comm spans and send$(b,->)recv flow \
           arrows. A span summary table is printed to stderr.")

let trace_begin = function
  | None -> ()
  | Some _ ->
      Obs.enable ();
      Obs.set_process_name ~pid:0 "dhpf compiler";
      Obs.set_thread_name ~pid:0 ~tid:0 "main"

let trace_finish = function
  | None -> ()
  | Some path ->
      Obs.write path;
      Fmt.epr "%s" (Obs.summary ());
      Fmt.epr "trace: %d events -> %s@." (Obs.events_count ()) path

(* every subcommand entry starts a fresh measurement window: phase totals
   and integer-set cache counters are process-global and would otherwise
   leak across multiple compiles in one process (cache *contents* survive
   deliberately — only the counters are windowed) *)
let fresh_window () =
  Dhpf.Phase.reset Dhpf.Phase.global;
  Iset.Stats.reset ()

(* ---- metrics ---- *)

(* --metrics FILE (or DHPF_METRICS=FILE in the environment, handled by
   Obs.Metrics.init_env in main): record the aggregate metrics registry —
   compiler phase times and integer-set engine counters, and for `run` the
   simulator's communication matrix, per-processor time split and fault
   breakdown — as dhpf-metrics/1 JSON. *)
let metrics_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry to $(docv) as stable dhpf-metrics/1 \
           JSON: compiler phase seconds and integer-set engine counters, \
           plus (for $(b,run)) the full P$(b,x)P communication matrix, \
           per-processor compute/send/recv-wait/collective seconds, \
           message-size and halo-occupancy histograms, retransmit \
           breakdowns and derived load-imbalance gauges.")

let metrics_begin = function None -> () | Some _ -> Obs.Metrics.enable ()

(* publish the compiler-side series; the simulator publishes its own at
   the end of each metered run *)
let metrics_compiler () =
  if Obs.Metrics.enabled () then begin
    let module M = Obs.Metrics in
    let ph = Dhpf.Phase.global in
    List.iter
      (fun l ->
        M.set
          (M.gauge ~labels:[ ("phase", l) ] "compiler/phase_s")
          (Dhpf.Phase.total ph l))
      (Dhpf.Phase.labels ph);
    List.iter
      (fun (n, v) -> M.set (M.gauge ("iset/" ^ n)) (float_of_int v))
      (Iset.Stats.report ());
    M.set (M.gauge "compiler/domains") (float_of_int (Par.domains ()))
  end

let metrics_finish = function
  | None -> ()
  | Some path ->
      Obs.Metrics.write path;
      Fmt.epr "metrics: %d series -> %s@."
        (List.length (Obs.Metrics.snapshot ()))
        path

(* ---- arguments ---- *)

let src_t =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SRC"
        ~doc:
          "Mini-HPF source file, or the name of a built-in benchmark \
           (jacobi, tomcatv, erlebacher, gauss, figure2, sp_like).")

let show_sets_t =
  Arg.(value & flag & info [ "show-sets" ] ~doc:"Print the communication sets of every event.")

let show_spmd_t =
  Arg.(value & flag & info [ "show-spmd" ] ~doc:"Print the generated SPMD node program.")

let report_t =
  Arg.(value & flag & info [ "report" ] ~doc:"Print the compilation phase-time breakdown.")

let report_json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "report-json" ] ~docv:"FILE"
        ~doc:
          "Write the compile report as stable dhpf-report/2 JSON to \
           $(docv) ($(b,-) for stdout): phase-time breakdown, event and \
           statement counts, integer-set cache counters and the disk-cache \
           state. The same document is embedded in $(b,serve) compile \
           responses.")

(* ---- persistent disk cache ---- *)

let disk_cache_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "disk-cache" ] ~docv:"DIR"
        ~doc:
          "Persistent analysis-cache directory (also settable via \
           $(b,DHPF_DISK_CACHE)). Memoized integer-set analyses — \
           simplify, satisfiability, implication, gist, subset — are \
           stored content-addressed under $(docv) and shared by every \
           process pointed at the same directory; a warm cache turns \
           recompiles into disk lookups. Corrupt or truncated entries \
           are treated as misses, never errors.")

let disk_cache_mb_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "disk-cache-mb" ] ~docv:"MB"
        ~doc:
          "Size budget for $(b,--disk-cache) in MiB (default 256, floor \
           1; also $(b,DHPF_DISK_CACHE_MB)). When the cache overflows, \
           the oldest entries are evicted down to 3/4 of the budget.")

let apply_disk_cache dir mb =
  (match dir with
  | Some d -> Iset.Diskcache.set_dir (Some d)
  | None -> ());
  match mb with
  | Some m when m < 1 ->
      Fmt.epr "invalid --disk-cache-mb %d: need a positive MiB budget@." m;
      exit exit_parse
  | Some m -> Iset.Diskcache.set_max_bytes (m * 1024 * 1024)
  | None -> ()

let no_opt names doc = Arg.(value & flag & info names ~doc)
let no_split_t = no_opt [ "no-split" ] "Disable loop splitting (Figure 4)."
let no_vect_t = no_opt [ "no-vectorize" ] "Disable message vectorization."
let no_coal_t = no_opt [ "no-coalesce" ] "Disable message coalescing."
let no_inplace_t = no_opt [ "no-inplace" ] "Disable in-place communication recognition."

let opts_of ~no_split ~no_vect ~no_coal ~no_inplace =
  {
    Dhpf.Gen.opt_split = not no_split;
    opt_vectorize = not no_vect;
    opt_coalesce = not no_coal;
    opt_inplace = not no_inplace;
  }

let nprocs_t =
  Arg.(value & opt int 4 & info [ "p"; "nprocs" ] ~docv:"P" ~doc:"Number of simulated processors.")

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Size of the OCaml domain pool used by the parallel compiler \
           phases and the simulator's lane scheduler (default: \
           $(b,DHPF_DOMAINS), else 1). Clamped to the machine's recommended \
           domain count. Any value produces bit-identical compiler output \
           and simulation results — the pool only changes wall-clock time.")

(* resolve the session domain pool: -j wins over DHPF_DOMAINS; both are
   clamped to the physical core count here and only here (the libraries
   never clamp, so the differential suites can oversubscribe
   deliberately). Returns the resolved count and stamps it into the trace
   timeline when one is being recorded. *)
let apply_jobs jobs =
  (match jobs with
  | Some n when n < 1 ->
      Fmt.epr "invalid --jobs %d: need a positive domain count@." n;
      exit exit_parse
  | Some n -> Par.set_domains (Par.clamp n)
  | None -> Par.set_domains (Par.clamp (Par.domains ())));
  let d = Par.domains () in
  if Obs.enabled () then
    Obs.instant ~cat:"meta" ~args:[ ("domains", Obs.Int d) ] "domain pool";
  d

let param_t =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string int) []
    & info [ "D"; "param" ] ~docv:"NAME=VALUE" ~doc:"Bind a symbolic program parameter.")

(* parsed as a plain string and resolved through Exec.engine_of_string so
   an unknown name exits with the parse-error code (2) and a message that
   lists the valid engines, instead of cmdliner's generic cli-error 124 *)
let engine_t =
  Arg.(
    value & opt string "closure"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "SPMD execution engine: $(b,closure) (the default; the program is \
           lowered once to OCaml closures over dense per-processor storage), \
           $(b,interp) (the tree-walking interpreter kept as the \
           differential oracle), or $(b,native) (the program is emitted as \
           OCaml source, compiled out-of-process into a content-addressed \
           cache and dynlinked — see $(b,--native-cache)). All engines \
           produce bit-identical results and identical message statistics.")

let resolve_engine name =
  match Spmdsim.Exec.engine_of_string name with
  | Some e -> e
  | None ->
      Fmt.epr "dhpfc: unknown engine %S; valid engines: %s@." name
        (String.concat ", " Spmdsim.Exec.engine_names);
      exit exit_parse

let native_cache_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "native-cache" ] ~docv:"DIR"
        ~doc:
          "Build-cache directory for $(b,--engine native) kernels (also \
           settable via $(b,DHPF_NATIVE_CACHE)). Defaults to \
           $(b,<tmpdir>/dhpf-native-cache); a warm cache skips the \
           out-of-process compiler entirely.")

(* ---- fault-injection knobs ---- *)

let faults_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "faults" ] ~docv:"SEED"
        ~doc:
          "Enable deterministic fault injection with the given schedule \
           seed: message delay, reordering, duplicate delivery, \
           drop-with-retransmit and straggler clock skew. Results are \
           unchanged; timing and resilience statistics reflect the faults.")

let fault_drop_t =
  Arg.(
    value & opt float 0.15
    & info [ "fault-drop" ] ~docv:"P"
        ~doc:"Per-transmission drop probability under --faults/--diff.")

let fault_dup_t =
  Arg.(
    value & opt float 0.10
    & info [ "fault-dup" ] ~docv:"P"
        ~doc:"Duplicate-delivery probability under --faults/--diff.")

let fault_delay_t =
  Arg.(
    value & opt float 0.30
    & info [ "fault-delay" ] ~docv:"P"
        ~doc:"In-flight delay probability under --faults/--diff.")

let fault_skew_t =
  Arg.(
    value & opt float 1.5
    & info [ "fault-skew" ] ~docv:"F"
        ~doc:
          "Straggler clock-skew bound: each processor computes slower by a \
           factor drawn from [1,F].")

let crash_procs_t =
  Arg.(
    value & opt int 0
    & info [ "crash-procs" ] ~docv:"N"
        ~doc:
          "Enable fail-stop crash injection: up to $(docv) processor \
           crashes over the run, at deterministic points drawn from the \
           fault-schedule seed (--faults, or seed 0). Each crash triggers \
           coordinated recovery: the group restarts from the last \
           checkpoint (see $(b,--checkpoint-every)) or from scratch, and \
           replays. Results stay bit-identical to the fault-free run; \
           detection, restart and lost work are charged to the clocks.")

let crash_prob_t =
  Arg.(
    value & opt float 0.01
    & info [ "crash-prob" ] ~docv:"P"
        ~doc:
          "Per-communication-operation crash probability under \
           $(b,--crash-procs).")

let ckpt_every_t =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Write a coordinated checkpoint of the whole group every $(docv) \
           global communication operations (0 = never). Each write charges \
           every processor alpha + bytes*beta (machine checkpoint \
           parameters); crash recovery rolls back to the latest snapshot \
           instead of restarting from scratch.")

let max_events_t =
  Arg.(
    value & opt int 0
    & info [ "max-events" ] ~docv:"N"
        ~doc:
          "Scheduler watchdog (0 = off): abort with a structured runtime \
           error (exit 5) once the global communication-event count \
           exceeds $(docv) — a guard against pathological schedules and \
           livelock.")

let diff_t =
  Arg.(
    value & opt int 0
    & info [ "diff" ] ~docv:"N"
        ~doc:
          "Differential resilience harness: replay the program under N \
           seeded fault schedules and report the first divergence from the \
           serial oracle.")

let diff_engines_t =
  Arg.(
    value & opt int 0
    & info [ "diff-engines" ] ~docv:"N"
        ~doc:
          "Engine-differential harness: run all three engines (closure, \
           interpreter, generated-native kernel) against each other — \
           fault-free plus N seeded fault schedules — and report the first \
           deviation from bit-identical values, clocks and message \
           counters.")

let diff_domains_t =
  Arg.(
    value & opt int 0
    & info [ "diff-domains" ] ~docv:"N"
        ~doc:
          "Domain-differential harness: run the program on a single domain \
           and with processor lanes sharded across an oversubscribed pool \
           (2 and 4 domains) — fault-free plus N seeded fault schedules — \
           and report the first deviation from bit-identical values, \
           per-processor clocks, message counters and per-pair \
           communication cells.")

let diff_crashes_t =
  Arg.(
    value & opt int 0
    & info [ "diff-crashes" ] ~docv:"N"
        ~doc:
          "Crash-differential harness: run both engines under N seeded \
           crash schedules with checkpoint/restart recovery and report the \
           first deviation from the fault-free oracle — bit-identical \
           values and an identical per-pair communication table.")

let spec_of ~seed ~drop ~dup ~delay ~skew ~crash_prob ~crash_procs =
  {
    (Spmdsim.Fault.default ~seed) with
    drop_prob = drop;
    dup_prob = dup;
    delay_prob = delay;
    skew_max = skew;
    crash_prob = (if crash_procs > 0 then crash_prob else 0.0);
    crash_max = crash_procs;
  }

(* malformed schedules are a usage error: reject at parse time, exit 2 *)
let validated sp =
  match Spmdsim.Fault.validate sp with
  | Ok () -> sp
  | Error msg ->
      Fmt.epr "invalid fault specification: %s@." msg;
      exit exit_parse

(* ---- compile ---- *)

let compile_cmd =
  let run src show_sets show_spmd report report_json no_split no_vect no_coal
      no_inplace jobs disk_cache disk_cache_mb trace metrics =
    handle_errors @@ fun () ->
    let opts = opts_of ~no_split ~no_vect ~no_coal ~no_inplace in
    fresh_window ();
    trace_begin trace;
    metrics_begin metrics;
    apply_disk_cache disk_cache disk_cache_mb;
    let domains = apply_jobs jobs in
    let ph = Dhpf.Phase.global in
    let chk =
      Dhpf.Phase.time ph "parse and semantic analysis" (fun () ->
          Hpf.Sema.analyze_source (load src))
    in
    let compiled = Dhpf.Gen.compile ~opts chk in
    trace_finish trace;
    metrics_compiler ();
    metrics_finish metrics;
    if show_sets then
      List.iter
        (fun (e : Dhpf.Gen.event) ->
          Fmt.pr "event %d: %s%s@." e.ev_id e.ev_desc
            (if e.ev_inplace.Dhpf.Inplace.contiguous then " [in-place]"
             else if e.ev_inplace.Dhpf.Inplace.rect_section then " [rect]"
             else "");
          Fmt.pr "  SendCommMap(m) = %a@." Iset.Rel.pp e.ev_maps.Dhpf.Comm.send_map;
          Fmt.pr "  RecvCommMap(m) = %a@." Iset.Rel.pp e.ev_maps.Dhpf.Comm.recv_map;
          match e.ev_active with
          | Some a ->
              Fmt.pr "  busyVPSet        = %a@." Iset.Rel.pp a.Dhpf.Vp.busy;
              Fmt.pr "  activeSendVPSet  = %a@." Iset.Rel.pp a.Dhpf.Vp.active_send;
              Fmt.pr "  activeRecvVPSet  = %a@." Iset.Rel.pp a.Dhpf.Vp.active_recv
          | None -> ())
        compiled.cevents;
    if show_spmd then print_string (Dhpf.Spmd.program_to_string compiled.cprog);
    if report then begin
      let ph = Dhpf.Phase.global in
      Fmt.pr "total compilation time: %.3f s@." (Dhpf.Phase.elapsed ph);
      Fmt.pr "domain pool: %d domain(s)@." domains;
      List.iter
        (fun l -> Fmt.pr "  %-32s %8.3f s@." l (Dhpf.Phase.total ph l))
        (Dhpf.Phase.labels ph);
      Fmt.pr "integer-set engine caches (%s):@."
        (if Iset.Cache.enabled () then "enabled" else "disabled");
      Fmt.pr "%a" Iset.Stats.pp ()
    end;
    (match report_json with
    | None -> ()
    | Some path ->
        let j =
          Serve.Report.compile_report ~version ~src ~domains
            ~phase:Dhpf.Phase.global
            ~events:(List.length compiled.cevents)
            ~statements:(List.length compiled.cprog.Dhpf.Spmd.main)
            ()
        in
        let s = Serve.Jsonx.to_string j in
        if path = "-" then print_endline s
        else begin
          let oc = open_out path in
          output_string oc s;
          output_char oc '\n';
          close_out oc;
          Fmt.epr "report: %s@." path
        end);
    if not (show_sets || show_spmd || report || report_json <> None) then
      Fmt.pr "compiled: %d communication events, %d statements@."
        (List.length compiled.cevents)
        (List.length compiled.cprog.Dhpf.Spmd.main)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a mini-HPF program")
    Term.(
      const run $ src_t $ show_sets_t $ show_spmd_t $ report_t
      $ report_json_t $ no_split_t $ no_vect_t $ no_coal_t $ no_inplace_t
      $ jobs_t $ disk_cache_t $ disk_cache_mb_t $ trace_t $ metrics_t)

(* ---- run ---- *)

let check_comm_t =
  Arg.(
    value & flag
    & info [ "check-comm" ]
        ~doc:
          "Predicted-vs-measured communication check: evaluate the \
           compiler's communication sets at the concrete distribution \
           parameters (the paper's compile-time message counting), run the \
           program, and fail (exit 1) unless every (event, sender, \
           receiver) cell of the simulated communication matrix matches \
           the prediction. Per-pair counters ignore retransmission, so the \
           check also holds under $(b,--faults).")

let comm_slack_t =
  Arg.(
    value & opt float 0.0
    & info [ "comm-slack" ] ~docv:"F"
        ~doc:
          "Relative tolerance for $(b,--check-comm): a cell passes when \
           |measured - predicted| <= F * predicted. Default 0 (exact).")

let run_cmd =
  let run src nprocs params engine native_cache disk_cache disk_cache_mb
      no_split no_vect no_coal no_inplace jobs faults_seed drop dup delay
      skew crash_procs crash_prob ckpt_every max_events diff diff_engines
      diff_domains diff_crashes trace metrics check_comm comm_slack =
    handle_errors @@ fun () ->
    let engine = resolve_engine engine in
    Option.iter (Unix.putenv "DHPF_NATIVE_CACHE") native_cache;
    apply_disk_cache disk_cache disk_cache_mb;
    List.iter
      (fun (name, v) ->
        if v < 0 then begin
          Fmt.epr "invalid fault specification: %s %d is negative@." name v;
          exit exit_parse
        end)
      [
        ("--crash-procs", crash_procs);
        ("--checkpoint-every", ckpt_every);
        ("--max-events", max_events);
      ];
    let opts = opts_of ~no_split ~no_vect ~no_coal ~no_inplace in
    fresh_window ();
    trace_begin trace;
    metrics_begin metrics;
    if check_comm then Obs.Metrics.enable ();
    let domains = apply_jobs jobs in
    let chk =
      Dhpf.Phase.time Dhpf.Phase.global "parse and semantic analysis"
        (fun () -> Hpf.Sema.analyze_source (load src))
    in
    if diff > 0 then begin
      (* differential resilience sweep: serial oracle vs. N fault seeds *)
      let spec_of_seed seed =
        validated
          (spec_of ~seed ~drop ~dup ~delay ~skew ~crash_prob ~crash_procs:0)
      in
      let seeds = List.init diff (fun i -> i + 1) in
      let out =
        Spmdsim.Diffcheck.run ~engine ~nprocs ~params ~opts ~spec_of_seed
          ~seeds chk
      in
      Fmt.pr "%a@." Spmdsim.Diffcheck.pp_outcome out;
      match out with
      | Spmdsim.Diffcheck.Pass _ -> ()
      | _ -> exit exit_runtime
    end
    else if diff_engines > 0 then begin
      (* engine-differential sweep: closure vs. interpreter vs. native *)
      let spec_of_seed seed =
        validated
          (spec_of ~seed ~drop ~dup ~delay ~skew ~crash_prob ~crash_procs:0)
      in
      let seeds = List.init diff_engines (fun i -> i + 1) in
      let out =
        Spmdsim.Diffcheck.engines ~nprocs ~params ~opts ~spec_of_seed ~seeds
          chk
      in
      Fmt.pr "%a@." Spmdsim.Diffcheck.pp_outcome out;
      match out with
      | Spmdsim.Diffcheck.Pass _ -> ()
      | _ -> exit exit_runtime
    end
    else if diff_domains > 0 then begin
      (* domain-differential sweep: sequential scheduler vs. an
         oversubscribed domain pool *)
      let spec_of_seed seed =
        validated
          (spec_of ~seed ~drop ~dup ~delay ~skew ~crash_prob ~crash_procs:0)
      in
      let seeds = List.init diff_domains (fun i -> i + 1) in
      let out =
        Spmdsim.Diffcheck.domains ~engine ~nprocs ~params ~opts ~spec_of_seed
          ~seeds chk
      in
      Fmt.pr "%a@." Spmdsim.Diffcheck.pp_outcome out;
      match out with
      | Spmdsim.Diffcheck.Pass _ -> ()
      | _ -> exit exit_runtime
    end
    else if diff_crashes > 0 then begin
      (* crash-differential sweep: checkpoint/restart recovery on both
         engines vs. the fault-free oracle *)
      let seeds = List.init diff_crashes (fun i -> i + 1) in
      let out =
        match ckpt_every with
        | 0 -> Spmdsim.Diffcheck.crashes ~nprocs ~params ~opts ~seeds chk
        | n ->
            Spmdsim.Diffcheck.crashes ~nprocs ~params ~opts ~ckpt_every:n
              ~seeds chk
      in
      Fmt.pr "%a@." Spmdsim.Diffcheck.pp_outcome out;
      match out with
      | Spmdsim.Diffcheck.Pass _ -> ()
      | _ -> exit exit_runtime
    end
    else begin
      let compiled = Dhpf.Gen.compile ~opts chk in
      let serial = Spmdsim.Serial.run ~params chk in
      let faults =
        match faults_seed with
        | Some seed ->
            Some
              (validated
                 (spec_of ~seed ~drop ~dup ~delay ~skew ~crash_prob
                    ~crash_procs))
        | None when crash_procs > 0 ->
            (* crash injection without message faults: a pure-crash spec *)
            Some
              (validated
                 {
                   Spmdsim.Fault.none with
                   seed = 0;
                   crash_prob;
                   crash_max = crash_procs;
                 })
        | None -> None
      in
      let sim, stats, report =
        if crash_procs > 0 || ckpt_every > 0 then begin
          let rep =
            Spmdsim.Checkpoint.run ~engine ?faults ~ckpt_every ~max_events
              ~nprocs ~params compiled.cprog
          in
          (rep.rp_sim, rep.rp_stats, Some rep)
        end
        else begin
          let sim =
            Spmdsim.Exec.make ~engine ?faults ~nprocs ~params compiled.cprog
          in
          if max_events > 0 then
            (Spmdsim.Exec.transport sim).tr_max_events <- max_events;
          (sim, Spmdsim.Exec.run sim, None)
        end
      in
      Fmt.pr "serial (T1)     : %10.3f ms  (%d flops)@." (serial.r_time *. 1e3)
        serial.r_flops;
      Fmt.pr "spmd on %2d procs: %10.3f ms  (%d msgs, %d KiB)@." (Spmdsim.Exec.nprocs sim)
        (stats.s_time *. 1e3) stats.s_msgs (stats.s_bytes / 1024);
      Fmt.pr "speedup         : %10.2f@." (serial.r_time /. stats.s_time);
      if domains > 1 then Fmt.pr "domain pool     : %10d domains@." domains;
      if Obs.Metrics.enabled () then
        Obs.Metrics.set
          (Obs.Metrics.gauge "sim/domains")
          (float_of_int domains);
      (match faults with
      | None -> ()
      | Some sp ->
          Fmt.pr "fault schedule  : %s@." (Spmdsim.Fault.describe sp);
          Fmt.pr "resilience      : %d retransmits, %d timeouts, %d duplicates \
                  discarded, peak mailbox %d@."
            stats.s_retransmits stats.s_timeouts stats.s_dups_delivered
            stats.s_max_mailbox);
      (match report with
      | None -> ()
      | Some rep ->
          if ckpt_every > 0 then
            Fmt.pr "checkpoints     : %d written (%d KiB), every %d comm ops@."
              stats.s_ckpts
              ((stats.s_ckpt_bytes + 1023) / 1024)
              ckpt_every;
          if stats.s_crashes > 0 then begin
            Fmt.pr
              "crashes         : %d crash(es), %d recoveries in %d attempts, \
               lost work %.3f ms@."
              stats.s_crashes stats.s_recoveries rep.rp_attempts
              (stats.s_lost_work *. 1e3);
            List.iter
              (fun (c : Spmdsim.Checkpoint.crash_record) ->
                Fmt.pr
                  "  crash: processor %d at its op %d (t=%.3f ms) -> %s, \
                   group resumes at %.3f ms@."
                  c.cr_pid c.cr_op (c.cr_clock *. 1e3)
                  (if c.cr_restore_ops > 0 then
                     Printf.sprintf "rollback to op %d" c.cr_restore_ops
                   else "restart from scratch")
                  (c.cr_restart_t *. 1e3))
              rep.rp_crashes
          end);
      if check_comm then begin
        let predicted =
          Spmdsim.Predict.comm ~params ~nprocs:(Spmdsim.Exec.nprocs sim)
            compiled.cprog
        in
        let measured = Spmdsim.Exec.comm_cells sim in
        let pmsgs = List.fold_left (fun a c -> a + c.Spmdsim.Predict.p_msgs) 0 predicted
        and pelems = List.fold_left (fun a c -> a + c.Spmdsim.Predict.p_elems) 0 predicted in
        let mismatches = Spmdsim.Predict.check ~slack:comm_slack predicted measured in
        if mismatches = [] then
          Fmt.pr "comm check      : ok — %d pair cells, %d msgs, %d elems \
                  (predicted = measured)@."
            (List.length predicted) pmsgs pelems
        else begin
          Fmt.epr "comm check FAILED: %d cell(s) diverge@." (List.length mismatches);
          List.iter
            (fun m ->
              Fmt.epr
                "  event %d %d->%d: predicted %d msgs/%d elems, measured %d \
                 msgs/%d elems@."
                m.Spmdsim.Predict.mm_event m.Spmdsim.Predict.mm_src
                m.Spmdsim.Predict.mm_dst m.Spmdsim.Predict.mm_pred_msgs
                m.Spmdsim.Predict.mm_pred_elems m.Spmdsim.Predict.mm_meas_msgs
                m.Spmdsim.Predict.mm_meas_elems)
            mismatches;
          exit 1
        end
      end
    end;
    trace_finish trace;
    metrics_compiler ();
    metrics_finish metrics
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute on the simulated machine")
    Term.(
      const run $ src_t $ nprocs_t $ param_t $ engine_t $ native_cache_t
      $ disk_cache_t $ disk_cache_mb_t $ no_split_t $ no_vect_t
      $ no_coal_t $ no_inplace_t $ jobs_t $ faults_t $ fault_drop_t
      $ fault_dup_t $ fault_delay_t $ fault_skew_t $ crash_procs_t
      $ crash_prob_t $ ckpt_every_t $ max_events_t $ diff_t $ diff_engines_t
      $ diff_domains_t $ diff_crashes_t $ trace_t $ metrics_t $ check_comm_t
      $ comm_slack_t)

(* ---- bench (print a built-in source) ---- *)

let bench_cmd =
  let run name =
    match builtin name with
    | Some src -> print_string src
    | None ->
        Fmt.epr "unknown benchmark %s@." name;
        exit 1
  in
  Cmd.v
    (Cmd.info "source" ~doc:"Print a built-in benchmark program")
    Term.(const run $ src_t)

(* ---- omega (set calculator REPL) ---- *)

let omega_cmd =
  let run script =
    handle_errors @@ fun () ->
    match script with
    | Some path ->
        List.iter print_endline (Iset.Calc.eval_script (read_file path))
    | None ->
        Fmt.pr "dhpf omega calculator — A := {[i] : 1 <= i <= n}; sat A; ...@.";
        let env = ref [] in
        (try
           while true do
             Fmt.pr "omega> %!";
             let line = input_line stdin in
             match Iset.Calc.eval_line !env line with
             | env', out ->
                 env := env';
                 if out <> "" then print_endline out
             | exception Iset.Calc.Error msg -> Fmt.pr "error: %s@." msg
             | exception Iset.Parse.Error msg -> Fmt.pr "parse error: %s@." msg
           done
         with End_of_file -> ())
  in
  let script_t =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SCRIPT" ~doc:"Script file; omitted: interactive.")
  in
  Cmd.v
    (Cmd.info "omega" ~doc:"Interactive integer-set calculator (Omega-calculator style)")
    Term.(const run $ script_t)

(* ---- serve (persistent compilation daemon) ---- *)

let default_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "dhpf-serve.sock"

let socket_t =
  Arg.(
    value & opt string default_socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on (one request per \
              connection, dhpf-serve/1 framing).")

let workers_t =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker domains serving requests concurrently (default 0 = the \
           session domain pool: $(b,-j)/$(b,DHPF_DOMAINS), else 1).")

let max_queue_t =
  Arg.(
    value & opt int 64
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Admission bound: pending requests queued before new \
           connections are answered with the structured \
           $(b,overloaded) response instead of waiting.")

let quiet_t =
  Arg.(
    value & flag
    & info [ "quiet" ] ~doc:"Suppress the startup/shutdown notes on stderr.")

let log_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:
          "Structured JSONL event log (dhpf-log/1): one JSON object per \
           line — ts, level, request id, event, typed fields — for \
           accept/dispatch/complete/error/overloaded/shutdown and \
           cache-fault events. $(b,-) logs to stderr. Also settable via \
           $(b,DHPF_LOG) (with $(b,DHPF_LOG_LEVEL) = \
           debug|info|warn|error).")

let prom_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom" ] ~docv:"FILE"
        ~doc:
          "Prometheus text exposition of the metrics registry, rewritten \
           atomically (at most once a second) as requests complete and at \
           shutdown; point a node-exporter textfile collector at it.")

let flight_dump_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dump" ] ~docv:"FILE"
        ~doc:
          "Write the flight-recorder bundle (dhpf-flight/1) to $(docv) \
           whenever a worker request fails and at shutdown — so a crash \
           or SIGTERM always leaves a postmortem of the most recent \
           requests and log events.")

let recorder_slots_t =
  Arg.(
    value & opt int 1024
    & info [ "recorder-slots" ] ~docv:"N"
        ~doc:
          "Flight-recorder ring capacity (recent request summaries and \
           log events kept for the $(b,dump) op and $(b,--flight-dump)); \
           0 disables the recorder.")

let serve_man =
  [
    `S Manpage.s_description;
    `P
      "Run a persistent compilation service. Clients connect to the \
       Unix-domain socket, send one length-prefixed JSON request \
       (dhpf-serve/1) and read one response. Both cache layers are \
       shared across requests and — through $(b,--disk-cache) — across \
       server generations: a warm daemon answers repeat compiles out of \
       cache with byte-identical analysis results.";
    `P
      "Response statuses: $(b,ok) (payload depends on the op), \
       $(b,error) (with a $(b,code) of protocol/parse/semantic/\
       unsupported/runtime, mirroring the batch exit codes) and \
       $(b,overloaded) (admission control; retry later). SIGTERM and \
       SIGINT stop admission, drain the queue and exit cleanly.";
    `S Manpage.s_exit_status;
    `P "6 when the socket cannot be bound; the usual codes otherwise.";
  ]

let serve_cmd =
  let run socket workers max_queue disk_cache disk_cache_mb jobs quiet trace
      metrics log prom flight_dump recorder_slots =
    handle_errors @@ fun () ->
    if max_queue < 0 then begin
      Fmt.epr "invalid --max-queue %d: need a non-negative bound@." max_queue;
      exit exit_parse
    end;
    fresh_window ();
    trace_begin trace;
    metrics_begin metrics;
    apply_disk_cache disk_cache disk_cache_mb;
    let domains = apply_jobs jobs in
    let workers = if workers <= 0 then domains else workers in
    let cfg =
      {
        Serve.Server.version;
        socket;
        workers;
        max_queue;
        disk_cache = None (* already applied process-wide above *);
        lookup = builtin;
        quiet;
        log;
        prom;
        flight_dump;
        recorder_slots = max 0 recorder_slots;
      }
    in
    (* install the handlers before launch so a signal in the startup
       window is never lost; the daemon drains its queue and exits *)
    let srv_ref = ref None in
    let stop _ =
      match !srv_ref with
      | Some srv -> Serve.Server.request_stop srv
      | None -> Stdlib.exit 0
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    let srv = Serve.Server.launch cfg in
    srv_ref := Some srv;
    Serve.Server.wait srv;
    trace_finish trace;
    metrics_compiler ();
    metrics_finish metrics
  in
  Cmd.v
    (Cmd.info "serve" ~man:serve_man
       ~doc:"Persistent compilation service on a Unix-domain socket")
    Term.(
      const run $ socket_t $ workers_t $ max_queue_t $ disk_cache_t
      $ disk_cache_mb_t $ jobs_t $ quiet_t $ trace_t $ metrics_t $ log_t
      $ prom_t $ flight_dump_t $ recorder_slots_t)

(* ---- bench-serve (cold vs. warm vs. eviction-pressure) ---- *)

let bench_serve_cmd =
  let clients_t =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"N"
          ~doc:"Concurrent closed-loop clients (the offered concurrency).")
  in
  let requests_t =
    Arg.(
      value & opt int 4
      & info [ "requests" ] ~docv:"N"
          ~doc:"Requests each client issues back-to-back.")
  in
  let bworkers_t =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains per daemon.")
  in
  let json_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the results as dhpf-bench-serve/2 JSON to $(docv).")
  in
  let pressure_kb_t =
    Arg.(
      value & opt int 256
      & info [ "pressure-kb" ] ~docv:"KB"
          ~doc:
            "Disk-cache budget (KiB, floor 64) for the eviction-pressure \
             daemon: a third phase replays the warm workload against the \
             same cache squeezed to $(docv) KiB, recording hit-ratio \
             degradation and GC eviction counts. 0 skips the phase.")
  in
  let obs_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs" ] ~docv:"DIR"
          ~doc:
            "Route each daemon's observability output into $(docv) \
             ($(i,tag).log.jsonl, $(i,tag).prom, $(i,tag).flight.json) \
             and, under $(b,--smoke), assert it: every log line parses \
             as dhpf-log/1, the Prometheus file has TYPE lines, the \
             stats snapshot is sane and the $(b,dump) op returns a \
             valid flight bundle.")
  in
  let smoke_t =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Assert the invariants (every request answered ok, warm \
             phase hits the disk cache, every daemon exits cleanly on \
             SIGTERM, dump ops return parseable flight bundles — plus \
             the $(b,--obs) artifact checks when that is set) and fail \
             with exit 1 otherwise.")
  in
  let run clients requests workers json pressure_kb obs smoke =
    handle_errors @@ fun () ->
    if clients < 1 || requests < 1 then begin
      Fmt.epr "bench-serve: need positive --clients and --requests@.";
      exit exit_parse
    end;
    let base =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dhpf-bench-serve-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir base 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    (match obs with
    | Some dir -> (
        try Unix.mkdir dir 0o755
        with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    | None -> ());
    let cache_dir = Filename.concat base "cache" in
    let sock_of tag = Filename.concat base (tag ^ ".sock") in
    let obs_file tag ext =
      Option.map (fun dir -> Filename.concat dir (tag ^ ext)) obs
    in
    (* Fork every daemon before this process spawns any domain: the
       load generator multicores the parent, and forking a runtime with
       live domains is not supported. The warm daemon idles until the
       cold phase has populated the shared disk cache; being a separate
       process, its in-memory tables start empty, so every hit it gets
       is a genuine cross-process disk hit. The pressure daemon gets the
       same cache squeezed to a tiny byte budget, so its stores trigger
       the oldest-first GC underneath its own lookups. *)
    let fork_server ?cache_kb tag =
      let socket = sock_of tag in
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      match Unix.fork () with
      | 0 ->
          let code =
            try
              (match cache_kb with
              | Some kb -> Iset.Diskcache.set_max_bytes (kb * 1024)
              | None -> ());
              let cfg =
                {
                  Serve.Server.version;
                  socket;
                  workers = max 1 workers;
                  max_queue = 1024;
                  disk_cache = Some cache_dir;
                  lookup = builtin;
                  quiet = true;
                  log = obs_file tag ".log.jsonl";
                  prom = obs_file tag ".prom";
                  flight_dump = obs_file tag ".flight.json";
                  recorder_slots = 1024;
                }
              in
              let srv_ref = ref None in
              let stop _ =
                match !srv_ref with
                | Some srv -> Serve.Server.request_stop srv
                | None -> Unix._exit 0
              in
              Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
              let srv = Serve.Server.launch cfg in
              srv_ref := Some srv;
              Serve.Server.wait srv;
              0
            with _ -> 1
          in
          Unix._exit code
      | pid -> pid
    in
    let with_pressure = pressure_kb > 0 in
    let pid_cold = fork_server "cold" in
    let pid_warm = fork_server "warm" in
    let pid_pressure =
      if with_pressure then Some (fork_server ~cache_kb:pressure_kb "pressure")
      else None
    in
    (* mixed workload: every built-in at smoke size as inline source,
       with every fourth request a full simulated run *)
    let progs = Array.of_list (Codes.all_small ()) in
    let nprogs = Array.length progs in
    let workload ~client ~seq =
      let name, text = progs.((client + seq) mod nprogs) in
      if (client + seq) mod 4 = 3 then
        Serve.Proto.Run
          {
            label = name;
            source = Some text;
            opts = Dhpf.Gen.default_options;
            nprocs = 4;
            params = [];
            engine = "closure";
          }
      else
        Serve.Proto.Compile
          { label = name; source = Some text; opts = Dhpf.Gen.default_options }
    in
    let run_phase ?prime name socket =
      if not (Serve.Client.wait_ready ~socket ()) then begin
        Fmt.epr "bench-serve: %s daemon did not come up on %s@." name socket;
        exit exit_runtime
      end;
      (match prime with
      | Some req -> (
          try ignore (Serve.Client.request ~socket req)
          with Serve.Client.Connect_error _ | Serve.Proto.Proto_error _ -> ())
      | None -> ());
      let r = Serve.Loadgen.run ~socket ~clients ~requests ~workload in
      let ask req =
        try Some (Serve.Client.request ~socket req)
        with Serve.Client.Connect_error _ | Serve.Proto.Proto_error _ -> None
      in
      (r, ask Serve.Proto.Stats, ask Serve.Proto.Dump)
    in
    let cold, cold_stats, cold_dump = run_phase "cold" (sock_of "cold") in
    let warm, warm_stats, warm_dump = run_phase "warm" (sock_of "warm") in
    let pressure =
      if with_pressure then
        (* the replayed workload would hit 100% and never store, and the
           disk GC only runs on store — one novel compile trips it under
           the squeezed budget, after which the evicted entries turn the
           replay into genuine miss/store/evict churn *)
        let prime =
          Serve.Proto.Compile
            {
              label = "pressure-prime";
              source = Some (Codes.jacobi ~n:20 ~iters:1 ());
              opts = Dhpf.Gen.default_options;
            }
        in
        Some (run_phase ~prime "pressure" (sock_of "pressure"))
      else None
    in
    let shutdown name pid =
      Unix.kill pid Sys.sigterm;
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> true
      | _, _ ->
          Fmt.epr "bench-serve: %s daemon did not exit cleanly@." name;
          false
    in
    let clean_cold = shutdown "cold" pid_cold in
    let clean_warm = shutdown "warm" pid_warm in
    let clean_pressure =
      match pid_pressure with
      | Some pid -> shutdown "pressure" pid
      | None -> true
    in
    let clean = clean_cold && clean_warm && clean_pressure in
    let disk_counter stats key =
      match stats with
      | None -> 0
      | Some v -> (
          match Serve.Jsonx.get v "iset" with
          | Some o -> Option.value (Serve.Jsonx.get_int o key) ~default:0
          | None -> 0)
    in
    let hit_ratio stats =
      let l = disk_counter stats "disk lookups" in
      if l = 0 then 0.0
      else float_of_int (disk_counter stats "disk hits") /. float_of_int l
    in
    let rps (r : Serve.Loadgen.result) =
      float_of_int r.lg_ok /. Float.max 1e-9 r.lg_wall_s
    in
    let pct q (r : Serve.Loadgen.result) =
      Serve.Loadgen.percentile q r.lg_latencies
    in
    let line name (r : Serve.Loadgen.result) stats =
      Fmt.pr
        "%-8s %4d ok %3d err %4d overload-retries %8.3f s  %7.1f req/s  \
         p50 %6.1f ms  p99 %6.1f ms  disk %d/%d  evict %d@."
        name r.lg_ok r.lg_error r.lg_overloaded r.lg_wall_s (rps r)
        (pct 0.5 r *. 1e3) (pct 0.99 r *. 1e3)
        (disk_counter stats "disk hits")
        (disk_counter stats "disk lookups")
        (disk_counter stats "disk evictions")
    in
    Fmt.pr "bench-serve: %d clients x %d requests, %d workers per daemon@."
      clients requests workers;
    line "cold" cold cold_stats;
    line "warm" warm warm_stats;
    (match pressure with
    | Some (r, stats, _) -> line "pressure" r stats
    | None -> ());
    if rps cold > 0. then
      Fmt.pr "warm/cold throughput: %.2fx@." (rps warm /. rps cold);
    (match pressure with
    | Some (_, stats, _) when with_pressure ->
        Fmt.pr
          "eviction pressure (%d KiB budget): hit ratio %.1f%% (warm \
           %.1f%%), %d evictions@."
          pressure_kb
          (hit_ratio stats *. 100.)
          (hit_ratio warm_stats *. 100.)
          (disk_counter stats "disk evictions")
    | _ -> ());
    (match json with
    | None -> ()
    | Some path ->
        let op_json (op, lats) =
          ( op,
            Serve.Jsonx.Obj
              [
                ("n", Serve.Jsonx.int (Array.length lats));
                ( "p50_s",
                  Serve.Jsonx.Num (Serve.Loadgen.percentile 0.5 lats) );
                ( "p90_s",
                  Serve.Jsonx.Num (Serve.Loadgen.percentile 0.9 lats) );
                ( "p99_s",
                  Serve.Jsonx.Num (Serve.Loadgen.percentile 0.99 lats) );
              ] )
        in
        let phase_json name (r : Serve.Loadgen.result) stats =
          Serve.Jsonx.Obj
            [
              ("phase", Serve.Jsonx.Str name);
              ("ok", Serve.Jsonx.int r.lg_ok);
              ("error", Serve.Jsonx.int r.lg_error);
              ("overloaded_retries", Serve.Jsonx.int r.lg_overloaded);
              ("wall_s", Serve.Jsonx.Num r.lg_wall_s);
              ("throughput_rps", Serve.Jsonx.Num (rps r));
              ("p50_s", Serve.Jsonx.Num (pct 0.5 r));
              ("p90_s", Serve.Jsonx.Num (pct 0.9 r));
              ("p99_s", Serve.Jsonx.Num (pct 0.99 r));
              ( "queue_p50_s",
                Serve.Jsonx.Num
                  (Serve.Loadgen.percentile 0.5 r.lg_queue_waits) );
              ( "queue_p99_s",
                Serve.Jsonx.Num
                  (Serve.Loadgen.percentile 0.99 r.lg_queue_waits) );
              ( "service_p50_s",
                Serve.Jsonx.Num
                  (Serve.Loadgen.percentile 0.5 r.lg_services) );
              ( "service_p99_s",
                Serve.Jsonx.Num
                  (Serve.Loadgen.percentile 0.99 r.lg_services) );
              ("by_op", Serve.Jsonx.Obj (List.map op_json r.lg_by_op));
              ("disk_hits", Serve.Jsonx.int (disk_counter stats "disk hits"));
              ( "disk_lookups",
                Serve.Jsonx.int (disk_counter stats "disk lookups") );
              ( "disk_evictions",
                Serve.Jsonx.int (disk_counter stats "disk evictions") );
              ("disk_hit_ratio", Serve.Jsonx.Num (hit_ratio stats));
            ]
        in
        let doc =
          Serve.Jsonx.Obj
            [
              ("schema", Serve.Jsonx.Str "dhpf-bench-serve/2");
              ("version", Serve.Jsonx.Str version);
              ("clients", Serve.Jsonx.int clients);
              ("requests_per_client", Serve.Jsonx.int requests);
              ("workers", Serve.Jsonx.int workers);
              ("pressure_kb", Serve.Jsonx.int pressure_kb);
              ( "phases",
                Serve.Jsonx.List
                  ([
                     phase_json "cold" cold cold_stats;
                     phase_json "warm" warm warm_stats;
                   ]
                  @
                  match pressure with
                  | Some (r, stats, _) ->
                      [ phase_json "pressure" r stats ]
                  | None -> []) );
              ("clean_shutdown", Serve.Jsonx.Bool clean);
            ]
        in
        let oc = open_out path in
        output_string oc (Serve.Jsonx.to_string doc);
        output_char oc '\n';
        close_out oc;
        Fmt.epr "bench-serve: results -> %s@." path);
    if smoke then begin
      let failures = ref [] in
      let check b msg = if not b then failures := msg :: !failures in
      check (cold.lg_error = 0) "cold phase had failing requests";
      check (warm.lg_error = 0) "warm phase had failing requests";
      check
        (disk_counter warm_stats "disk hits" > 0)
        "warm daemon recorded no disk-cache hits";
      check clean "daemons did not shut down cleanly on SIGTERM";
      (* the telemetry section must thread back through the load
         generator: every response carries queue-wait and service time *)
      check
        (Array.length warm.lg_services = warm.lg_ok + warm.lg_error)
        "warm responses were missing telemetry sections";
      (* dump must return a parseable flight bundle under load *)
      let check_dump name dump =
        match Option.bind dump (fun v -> Serve.Jsonx.get v "flight") with
        | Some flight ->
            check
              (Serve.Jsonx.get_str flight "schema" = Some "dhpf-flight/1")
              (name ^ " dump returned a bundle with the wrong schema");
            check
              (match Serve.Jsonx.get_list flight "entries" with
              | Some (_ :: _) -> true
              | _ -> false)
              (name ^ " dump returned an empty flight recorder")
        | None -> check false (name ^ " dump op failed")
      in
      check_dump "cold" cold_dump;
      check_dump "warm" warm_dump;
      (* the squeezed daemon must actually churn: evictions recorded and
         a hit ratio visibly below the warm daemon's *)
      (match pressure with
      | Some (r, stats, dump) ->
          check (r.Serve.Loadgen.lg_error = 0)
            "pressure phase had failing requests";
          check
            (disk_counter stats "disk evictions" > 0)
            "pressure daemon recorded no evictions";
          check
            (hit_ratio stats < hit_ratio warm_stats)
            "pressure hit ratio did not degrade below warm";
          check_dump "pressure" dump
      | None -> ());
      (* stats v2 sanity: rolling-window gauges present and ordered *)
      (let wnum stats k =
         Option.bind stats (fun v ->
             Option.bind (Serve.Jsonx.get v "window") (fun w ->
                 Serve.Jsonx.get_num w k))
       in
       match (wnum warm_stats "service_p50_s", wnum warm_stats "service_p99_s")
       with
      | Some p50, Some p99 ->
          check (p50 >= 0. && p99 >= p50) "warm stats window percentiles not ordered"
      | _ -> check false "warm stats response lacks window gauges");
      check
        (match
           Option.bind warm_stats (fun v ->
               Serve.Jsonx.get_str v "stats_schema")
         with
        | Some "dhpf-stats/2" -> true
        | _ -> false)
        "stats response is not dhpf-stats/2";
      (* observability artifacts, when routed to a directory *)
      (match obs with
      | None -> ()
      | Some _ ->
          List.iter
            (fun tag ->
              (match obs_file tag ".log.jsonl" with
              | Some path when Sys.file_exists path ->
                  let lines =
                    String.split_on_char '\n' (read_file path)
                    |> List.filter (fun l -> String.trim l <> "")
                  in
                  check (lines <> []) (tag ^ " log is empty");
                  List.iter
                    (fun l ->
                      match Serve.Jsonx.of_string l with
                      | v ->
                          check
                            (Serve.Jsonx.get_str v "schema"
                             = Some "dhpf-log/1"
                            && Serve.Jsonx.get_num v "ts" <> None
                            && Serve.Jsonx.get_str v "level" <> None
                            && Serve.Jsonx.get_str v "event" <> None)
                            (tag ^ " log line missing dhpf-log/1 fields")
                      | exception Serve.Jsonx.Error _ ->
                          check false (tag ^ " log line is not valid JSON"))
                    lines
              | _ -> check false (tag ^ " log file missing"));
              (match obs_file tag ".prom" with
              | Some path when Sys.file_exists path ->
                  let body = read_file path in
                  check
                    (String.length body > 0
                    && String.trim body <> ""
                    &&
                    let rec has_type i =
                      match String.index_from_opt body i '#' with
                      | None -> false
                      | Some j ->
                          (String.length body - j > 6
                          && String.sub body j 7 = "# TYPE ")
                          || has_type (j + 1)
                    in
                    has_type 0)
                    (tag ^ " prometheus file has no TYPE lines")
              | _ -> check false (tag ^ " prometheus file missing"));
              match obs_file tag ".flight.json" with
              | Some path when Sys.file_exists path -> (
                  match Serve.Jsonx.of_string (read_file path) with
                  | v ->
                      check
                        (Serve.Jsonx.get_str v "schema"
                        = Some "dhpf-flight/1")
                        (tag ^ " flight dump has the wrong schema")
                  | exception Serve.Jsonx.Error _ ->
                      check false (tag ^ " flight dump is not valid JSON"))
              | _ -> check false (tag ^ " flight dump missing"))
            ([ "cold"; "warm" ] @ if with_pressure then [ "pressure" ] else []));
      match List.rev !failures with
      | [] -> Fmt.pr "bench-serve smoke: ok@."
      | fs ->
          List.iter (fun m -> Fmt.epr "bench-serve smoke FAILED: %s@." m) fs;
          exit 1
    end
  in
  Cmd.v
    (Cmd.info "bench-serve"
       ~doc:
         "Benchmark the serve daemon: cold vs. warm disk cache, plus \
          eviction pressure and telemetry smoke checks")
    Term.(
      const run $ clients_t $ requests_t $ bworkers_t $ json_t
      $ pressure_kb_t $ obs_t $ smoke_t)

(* ---- top (live dashboard over the stats op) ---- *)

let top_cmd =
  let interval_t =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"S" ~doc:"Seconds between stats polls.")
  in
  let iterations_t =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop after $(docv) refreshes (0 = run until interrupted).")
  in
  let plain_t =
    Arg.(
      value & flag
      & info [ "plain" ]
          ~doc:
            "No ANSI clear between refreshes: append one snapshot block \
             per poll (for logs and tests).")
  in
  let run socket interval iterations plain =
    handle_errors @@ fun () ->
    let interval = Float.max 0.05 interval in
    let buf = Buffer.create 1024 in
    let render v =
      Buffer.clear buf;
      let s fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      let num ?(o = v) k = Option.value (Serve.Jsonx.get_num o k) ~default:0. in
      let int_ ?(o = v) k = Option.value (Serve.Jsonx.get_int o k) ~default:0 in
      let str k d = Option.value (Serve.Jsonx.get_str v k) ~default:d in
      s "dhpfc top — %s   version %s   uptime %.1fs\n" socket
        (str "version" "?") (num "uptime_s");
      s "served %d   rejected %d   queue %d   workers %d\n" (int_ "served")
        (int_ "rejected") (int_ "queue_depth") (int_ "workers");
      (match Serve.Jsonx.get v "window" with
      | Some w ->
          s "window %.0fs: %d reqs  %.1f rps  errors %d  overloaded %d\n"
            (num ~o:w "seconds") (int_ ~o:w "samples") (num ~o:w "rps")
            (int_ ~o:w "errors") (int_ ~o:w "overloaded");
          s "  service p50/p95/p99  %6.1f / %6.1f / %6.1f ms\n"
            (num ~o:w "service_p50_s" *. 1e3)
            (num ~o:w "service_p95_s" *. 1e3)
            (num ~o:w "service_p99_s" *. 1e3);
          s "  queue   p50/p95/p99  %6.1f / %6.1f / %6.1f ms\n"
            (num ~o:w "queue_p50_s" *. 1e3)
            (num ~o:w "queue_p95_s" *. 1e3)
            (num ~o:w "queue_p99_s" *. 1e3)
      | None -> ());
      (match Serve.Jsonx.get v "ratios" with
      | Some r ->
          s "ratios: memo %.1f%%   disk %.1f%%\n"
            (num ~o:r "memo_hit" *. 100.)
            (num ~o:r "disk_hit" *. 100.)
      | None -> ());
      (match Serve.Jsonx.get v "diskcache" with
      | Some d -> s "diskcache: %d bytes\n" (int_ ~o:d "bytes")
      | None -> ());
      Buffer.contents buf
    in
    let rec loop i =
      if iterations = 0 || i < iterations then begin
        let body =
          match
            (try Some (Serve.Client.request ~socket Serve.Proto.Stats)
             with
            | Serve.Client.Connect_error msg -> (
                ignore msg;
                None)
            | Serve.Proto.Proto_error _ -> None)
          with
          | Some v -> render v
          | None -> Printf.sprintf "dhpfc top — %s: server unreachable\n" socket
        in
        if plain then print_string body
        else begin
          print_string "\027[2J\027[H";
          print_string body
        end;
        flush stdout;
        if iterations = 0 || i + 1 < iterations then Unix.sleepf interval;
        loop (i + 1)
      end
    in
    loop 0
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard over a running serve daemon: RPS, \
          latency percentiles, queue depth and cache hit ratios from \
          repeated stats polls")
    Term.(const run $ socket_t $ interval_t $ iterations_t $ plain_t)

let () =
  Obs.init_env ();
  Obs.Metrics.init_env ();
  Obs.Log.init_env ();
  Iset.Diskcache.init_env ();
  let info =
    Cmd.info "dhpfc" ~version
      ~doc:"dHPF-reproduction data-parallel compiler"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            compile_cmd; run_cmd; bench_cmd; omega_cmd; serve_cmd;
            bench_serve_cmd; top_cmd;
          ]))
