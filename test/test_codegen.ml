(* Tests for loop-nest code generation: the generated AST must enumerate
   exactly the tuples of each statement's set, in lexicographic order. *)

open Iset

let enumerate ?(env = fun _ -> failwith "no param") asts =
  let out = ref [] in
  Codegen.run ~env
    ~f:(fun tag binds -> out := (tag, binds) :: !out)
    asts;
  List.rev !out

let points_of names enum =
  List.map
    (fun (tag, binds) -> (tag, List.map (fun n -> List.assoc n binds) names))
    enum

(* Brute-force reference: all tuples of [set] within box, via Rel.mem. *)
let brute ?env set box =
  let k = Rel.in_arity set in
  let rec go prefix d acc =
    if d = k then if Rel.mem_set ?env set (List.rev prefix) then List.rev prefix :: acc else acc
    else
      let lo, hi = box in
      let acc = ref acc in
      for x = lo to hi do
        acc := go (x :: prefix) (d + 1) !acc
      done;
      !acc
  in
  List.rev (go [] 0 [])

let check_enum ?env ?(box = (-2, 12)) msg src =
  let set = Parse.set src in
  let names = Rel.in_names set in
  let asts = Codegen.gen ~names [ { Codegen.tag = 0; dom = set } ] in
  let got =
    points_of (Array.to_list names)
      (enumerate ?env:(Option.map (fun e s -> List.assoc s e) env) asts)
    |> List.map snd
  in
  let env = match env with Some e -> Some e | None -> None in
  let want = brute ?env set box in
  Alcotest.(check (list (list int))) msg want got

let test_box () = check_enum "1d box" "{[i] : 1 <= i <= 10}"
let test_empty () = check_enum "empty" "{[i] : 5 <= i <= 2}"

let test_2d () =
  check_enum "2d box" "{[i,j] : 1 <= i <= 4 && i <= j <= 5}"

let test_triangular () =
  check_enum "triangle" "{[i,j] : 1 <= i <= 5 && 1 <= j < i}"

let test_stride () =
  check_enum "stride 2" "{[i] : exists(a : i = 2a) && 1 <= i <= 10}";
  check_enum "stride 3 offset" "{[i] : exists(a : i = 3a + 1) && 0 <= i <= 12}"

let test_stride_2d () =
  check_enum "inner stride depends on outer"
    "{[i,j] : 1 <= i <= 4 && exists(a : j = 2a + i) && i <= j <= 8}"

let test_union () =
  check_enum "disjoint union" "{[i] : 1 <= i <= 3} union {[i] : 7 <= i <= 9}";
  check_enum "overlapping union" "{[i] : 1 <= i <= 5} union {[i] : 4 <= i <= 9}"

let test_union_2d () =
  check_enum "L-shape"
    "{[i,j] : 1 <= i <= 2 && 1 <= j <= 6} union {[i,j] : 1 <= i <= 6 && 1 <= j <= 2}"

let test_params () =
  check_enum ~env:[ ("n", 7) ] "symbolic bound" "{[i] : 1 <= i <= n}";
  check_enum ~env:[ ("n", 6); ("p", 1) ] "block slice"
    "{[i] : 3p + 1 <= i <= 3p + 3 && 1 <= i <= n}"

let test_equality_loop () =
  check_enum "pinned var" "{[i,j] : i = 3 && 1 <= j <= 4}";
  check_enum "diagonal" "{[i,j] : 1 <= i <= 5 && j = i}"

let test_multi_stmt () =
  (* two statements sharing a nest: interleaving must preserve source order
     within an iteration and lexicographic order across iterations *)
  let s1 = Parse.set "{[i] : 1 <= i <= 4}" in
  let s2 = Parse.set "{[i] : 3 <= i <= 6}" in
  let asts =
    Codegen.gen ~names:[| "i" |]
      [ { Codegen.tag = 1; dom = s1 }; { Codegen.tag = 2; dom = s2 } ]
  in
  let got = List.map (fun (tag, binds) -> (tag, List.assoc "i" binds)) (enumerate asts) in
  let want =
    [ (1, 1); (1, 2); (1, 3); (2, 3); (1, 4); (2, 4); (2, 5); (2, 6) ]
  in
  Alcotest.(check (list (pair int int))) "interleaved" want got

let test_context () =
  (* unbounded set, bounds supplied by context *)
  let s = Parse.set "{[i] : exists(a : i = 2a)}" in
  let ctx = Parse.set "{[i] : 0 <= i <= 9}" in
  let asts = Codegen.gen ~context:ctx ~names:[| "i" |] [ { Codegen.tag = 0; dom = s } ] in
  let got = List.map (fun (_, binds) -> List.assoc "i" binds) (enumerate asts) in
  Alcotest.(check (list int)) "evens via context" [ 0; 2; 4; 6; 8 ] got

(* count_points: direct coverage for empty, single-point, and negative-step
   nests (previously only exercised indirectly through Predict). *)
let env_fail _ = failwith "no param"

let afor ?(step = 1) var lo hi body =
  Codegen.AFor { var; lo; hi; step; body }

let test_count_points () =
  let open Codegen in
  let count = count_points ~env:env_fail in
  (* empty range: lo > hi with a positive step runs zero iterations *)
  Alcotest.(check int) "empty nest" 0 (count [ afor "i" (EInt 5) (EInt 2) [ ALeaf () ] ]);
  (* empty from the set level too *)
  let s = Parse.set "{[i] : 5 <= i <= 2}" in
  let asts = Codegen.gen ~names:[| "i" |] [ { Codegen.tag = (); dom = s } ] in
  Alcotest.(check int) "empty set" 0 (count asts);
  (* single point: lo = hi *)
  Alcotest.(check int) "single point" 1 (count [ afor "i" (EInt 3) (EInt 3) [ ALeaf () ] ]);
  let s1 = Parse.set "{[i,j] : i = 2 && j = 7}" in
  let asts1 = Codegen.gen ~names:[| "i"; "j" |] [ { Codegen.tag = (); dom = s1 } ] in
  Alcotest.(check int) "single-point set" 1 (count asts1);
  (* negative step: 10, 8, 6, 4, 2 — five iterations, counting down *)
  Alcotest.(check int) "negative step" 5
    (count [ afor ~step:(-2) "i" (EInt 10) (EInt 2) [ ALeaf () ] ]);
  (* negative step, empty: lo already below hi *)
  Alcotest.(check int) "negative step empty" 0
    (count [ afor ~step:(-1) "i" (EInt 0) (EInt 4) [ ALeaf () ] ]);
  (* nested, inner descending and bounded by the outer variable:
     i = 1..3, j counts down from i to 1 -> 1 + 2 + 3 points *)
  Alcotest.(check int) "nested descending" 6
    (count [ afor "i" (EInt 1) (EInt 3) [ afor ~step:(-1) "j" (EVar "i") (EInt 1) [ ALeaf () ] ] ]);
  (* run must agree with count_points on the descending nest, in order *)
  let seen = ref [] in
  Codegen.run ~env:env_fail
    ~f:(fun () binds -> seen := List.assoc "j" binds :: !seen)
    [ afor ~step:(-2) "j" (EInt 9) (EInt 4) [ ALeaf () ] ];
  Alcotest.(check (list int)) "run descending order" [ 9; 7; 5 ] (List.rev !seen);
  (* zero step is rejected, not an infinite loop *)
  Alcotest.check_raises "zero step" (Invalid_argument "Codegen.count_points: zero loop step")
    (fun () -> ignore (count [ afor ~step:0 "i" (EInt 1) (EInt 2) [ ALeaf () ] ]))

let test_intervals () =
  let open Codegen in
  let env = function
    | "n" -> itv ~lo:1 ~hi:100 ()
    | "p" -> itv ~lo:0 ~hi:3 ()
    | _ -> itv_top
  in
  let iv e = interval_of_expr env e in
  Alcotest.(check bool) "const in range" true (itv_within (iv (EInt 7)) ~lo:0 ~hi:10);
  Alcotest.(check bool) "var bounded" true (itv_within (iv (EVar "n")) ~lo:1 ~hi:100);
  Alcotest.(check bool) "unknown unbounded" false
    (itv_within (iv (EVar "mystery")) ~lo:min_int ~hi:max_int);
  Alcotest.(check bool) "sum" true
    (itv_within (iv (EAdd (EVar "n", EVar "p"))) ~lo:1 ~hi:103);
  Alcotest.(check bool) "sub flips" true
    (itv_within (iv (ESub (EVar "n", EVar "p"))) ~lo:(-2) ~hi:100);
  Alcotest.(check bool) "negative scale flips" true
    (itv_within (iv (EMul (-2, EVar "p"))) ~lo:(-6) ~hi:0);
  Alcotest.(check bool) "floordiv" true
    (itv_within (iv (EFloorDiv (EVar "n", 3))) ~lo:0 ~hi:33);
  Alcotest.(check bool) "max improves lower bound" true
    (match (iv (EMax [ EVar "mystery"; EInt 5 ])).ilo with Some l -> l >= 5 | None -> false);
  Alcotest.(check bool) "min improves upper bound" true
    (match (iv (EMin [ EVar "mystery"; EInt 5 ])).ihi with Some h -> h <= 5 | None -> false);
  (* alignup: bounded when the modulus is provably positive *)
  Alcotest.(check bool) "alignup bounded" true
    (itv_within (iv (EAlignUp (EVar "p", EInt 0, EInt 4))) ~lo:0 ~hi:6);
  Alcotest.(check bool) "alignup unknown modulus unbounded" false
    (itv_within (iv (EAlignUp (EVar "p", EInt 0, EVar "mystery"))) ~lo:min_int ~hi:max_int)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_pretty () =
  let s = Parse.set "{[i,j] : 1 <= i <= n && exists(a : j = 2a) && i <= j <= n}" in
  let asts = Codegen.gen ~names:(Rel.in_names s) [ { Codegen.tag = "S1"; dom = s } ] in
  let str = Codegen.ast_to_string (fun fmt s -> Fmt.string fmt s) asts in
  Alcotest.(check bool) "mentions do i" true (contains str "do i");
  Alcotest.(check bool) "has stride 2" true (contains str ", 2")

let () =
  Alcotest.run "codegen"
    [
      ( "single",
        [
          Alcotest.test_case "box" `Quick test_box;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "2d" `Quick test_2d;
          Alcotest.test_case "triangular" `Quick test_triangular;
          Alcotest.test_case "stride" `Quick test_stride;
          Alcotest.test_case "stride 2d" `Quick test_stride_2d;
          Alcotest.test_case "equality" `Quick test_equality_loop;
          Alcotest.test_case "params" `Quick test_params;
        ] );
      ( "multi",
        [
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "union 2d" `Quick test_union_2d;
          Alcotest.test_case "two stmts" `Quick test_multi_stmt;
          Alcotest.test_case "context" `Quick test_context;
          Alcotest.test_case "pretty" `Quick test_pretty;
        ] );
      ( "eval",
        [
          Alcotest.test_case "count_points" `Quick test_count_points;
          Alcotest.test_case "intervals" `Quick test_intervals;
        ] );
    ]
