(* Crash/recovery suite: fail-stop crash schedules validate and fire
   deterministically, coordinated checkpoints round-trip through the binary
   format, and checkpoint/restart recovery reproduces the fault-free run
   bit for bit on both engines — including a crash inside a collective and
   recoveries that restart from scratch. *)

open Dhpf

let jacobi () = Codes.jacobi ~n:16 ~iters:2 ~procs:(Codes.Fixed (2, 2)) ()
let gauss () = Codes.gauss ~n:8 ~pivot:2 ~procs:(Codes.Fixed (2, 2)) ()

let compile src =
  let chk = Hpf.Sema.analyze_source src in
  (chk, (Gen.compile chk).cprog)

(* enumerate every element of every array of a checked program *)
let iter_elems chk f =
  let sref = Spmdsim.Serial.run chk in
  Hashtbl.iter
    (fun aname (ai : Hpf.Sema.array_info) ->
      let bounds =
        List.map
          (fun (lo, hi) ->
            ( Spmdsim.Serial.eval_iexpr sref.r_state lo,
              Spmdsim.Serial.eval_iexpr sref.r_state hi ))
          ai.adims
      in
      let rec go idx = function
        | [] -> f aname (List.rev idx)
        | (lo, hi) :: rest ->
            for x = lo to hi do
              go (x :: idx) rest
            done
      in
      go [] bounds)
    chk.Hpf.Sema.env.arrays

let bit_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* ---- (a) fault-spec validation ---- *)

let test_validate () =
  let ok spec = Alcotest.(check bool) "valid" true (Spmdsim.Fault.validate spec = Ok ()) in
  let bad what spec =
    match Spmdsim.Fault.validate spec with
    | Ok () -> Alcotest.fail (what ^ ": expected rejection")
    | Error msg ->
        Alcotest.(check bool) (what ^ ": message is not empty") true
          (String.length msg > 0)
  in
  ok Spmdsim.Fault.none;
  ok (Spmdsim.Fault.default ~seed:3);
  ok { Spmdsim.Fault.none with crash_prob = 0.5; crash_max = 2 };
  bad "negative seed" { Spmdsim.Fault.none with seed = -1 };
  bad "probability above 1" { Spmdsim.Fault.none with crash_prob = 1.5 };
  bad "NaN probability" { Spmdsim.Fault.none with crash_prob = Float.nan };
  bad "negative crash budget" { Spmdsim.Fault.none with crash_max = -1 };
  bad "drop without retransmission"
    { Spmdsim.Fault.none with drop_prob = 0.2; max_retries = 0 };
  bad "skew below 1" { Spmdsim.Fault.none with skew_max = 0.5 }

let test_crash_schedule_determinism () =
  let sp = { Spmdsim.Fault.none with seed = 9; crash_prob = 0.3; crash_max = 5 } in
  for pid = 0 to 3 do
    for op = 1 to 20 do
      Alcotest.(check bool) "pure function of (seed, pid, op)" true
        (Spmdsim.Fault.crash sp ~pid ~op = Spmdsim.Fault.crash sp ~pid ~op)
    done
  done;
  let fires sp =
    List.exists
      (fun (pid, op) -> Spmdsim.Fault.crash sp ~pid ~op)
      (List.concat_map
         (fun pid -> List.init 20 (fun op -> (pid, op + 1)))
         [ 0; 1; 2; 3 ])
  in
  Alcotest.(check bool) "a 0.3 schedule fires somewhere in 80 draws" true (fires sp);
  Alcotest.(check bool) "crash_prob = 0 never fires" false
    (fires { sp with crash_prob = 0.0 })

(* ---- (b) snapshot capture round-trips through the binary format ---- *)

let test_snapshot_roundtrip () =
  let _, cprog = compile (jacobi ()) in
  List.iter
    (fun engine ->
      let sim = Spmdsim.Exec.make ~engine ~nprocs:4 cprog in
      let _ = Spmdsim.Exec.run sim in
      let img = Spmdsim.Exec.capture sim in
      let buf = Spmdsim.Checkpoint.encode img in
      Alcotest.(check bool) "encoded image is not trivial" true
        (Bytes.length buf > 64);
      let img' = Spmdsim.Checkpoint.decode buf in
      Alcotest.(check bool) "decode inverts encode bit-for-bit" true
        (Spmdsim.Checkpoint.image_equal img img');
      (* two captures of the same state are structurally equal *)
      Alcotest.(check bool) "capture is deterministic" true
        (Spmdsim.Checkpoint.image_equal img (Spmdsim.Exec.capture sim)))
    [ `Interp; `Closure ]

let test_decode_rejects_garbage () =
  match Spmdsim.Checkpoint.decode (Bytes.of_string "not a checkpoint") with
  | _ -> Alcotest.fail "expected a decode error"
  | exception Spmdsim.Exec.Error msg ->
      Alcotest.(check bool) "names the magic" true
        (let has needle hay =
           let nl = String.length needle and hl = String.length hay in
           let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
           go 0
         in
         has "DHPFCKPT1" msg)

(* ---- (c) explicit-plan recovery is value-exact and priced ---- *)

let check_recovered name ?(ckpt_every = 0) ~plan src =
  let chk, cprog = compile src in
  List.iter
    (fun engine ->
      let clean = Spmdsim.Exec.make ~engine ~nprocs:4 cprog in
      let clean_stats = Spmdsim.Exec.run clean in
      let rep =
        Spmdsim.Checkpoint.run ~engine ~plan ~ckpt_every ~nprocs:4 cprog
      in
      Alcotest.(check int) (name ^ ": every planned crash fired")
        (List.length plan)
        rep.rp_stats.s_crashes;
      Alcotest.(check int) (name ^ ": one attempt per crash plus the first")
        (List.length plan + 1)
        rep.rp_attempts;
      let bad = ref 0 in
      iter_elems chk (fun aname idx ->
          let a = Spmdsim.Exec.get_elem clean aname idx in
          let b = Spmdsim.Exec.get_elem rep.rp_sim aname idx in
          if not (bit_equal a b) then incr bad);
      Alcotest.(check int) (name ^ ": values bit-identical to fault-free") 0 !bad;
      Alcotest.(check bool) (name ^ ": recovery costs simulated time") true
        (rep.rp_stats.s_time > clean_stats.s_time);
      List.iter
        (fun (c : Spmdsim.Checkpoint.crash_record) ->
          Alcotest.(check bool) (name ^ ": lost work is nonnegative") true
            (c.cr_lost_work >= 0.0);
          Alcotest.(check bool) (name ^ ": restart happens after the crash") true
            (c.cr_restart_t > c.cr_clock))
        rep.rp_crashes)
    [ `Interp; `Closure ]

let test_recovery_from_scratch () =
  (* no checkpoints: the single recovery restarts from the beginning *)
  check_recovered "jacobi/scratch" ~plan:[ (0, 3) ] (jacobi ())

let test_recovery_from_snapshot () =
  let chk, cprog = compile (jacobi ()) in
  let clean = Spmdsim.Exec.make ~nprocs:4 cprog in
  let _ = Spmdsim.Exec.run clean in
  (* crash late enough that a coordinated checkpoint exists to roll back to
     (each jacobi processor performs 10 communication operations; global
     checkpoints land every 8, so pid 2's 7th op is well past the first) *)
  let rep =
    Spmdsim.Checkpoint.run ~plan:[ (2, 7) ] ~ckpt_every:8 ~nprocs:4 cprog
  in
  Alcotest.(check int) "one crash" 1 rep.rp_stats.s_crashes;
  Alcotest.(check bool) "checkpoints were written" true (rep.rp_stats.s_ckpts > 0);
  Alcotest.(check bool) "checkpoint bytes are counted" true
    (rep.rp_stats.s_ckpt_bytes > 0);
  (match rep.rp_crashes with
  | [ c ] ->
      Alcotest.(check bool) "rolled back to a snapshot, not to scratch" true
        (c.cr_restore_ops > 0)
  | _ -> Alcotest.fail "expected exactly one crash record");
  let bad = ref 0 in
  iter_elems chk (fun aname idx ->
      if
        not
          (bit_equal
             (Spmdsim.Exec.get_elem clean aname idx)
             (Spmdsim.Exec.get_elem rep.rp_sim aname idx))
      then incr bad);
  Alcotest.(check int) "values bit-identical after snapshot rollback" 0 !bad

let test_multiple_crashes () =
  check_recovered "jacobi/two-crashes" ~ckpt_every:6
    ~plan:[ (1, 4); (3, 9) ] (jacobi ())

(* ---- (d) crash inside a collective ---- *)

(* two processors set s = pid and sum-reduce it; each processor's first
   communication operation is the collective completion itself, so the
   (pid 1, op 1) plan kills a processor mid-collective *)
let reduce_prog : Spmd.program =
  let open Iset.Codegen in
  {
    proc_dims =
      [ { Spmd.pd_mode = Spmd.VpIsPhys; pd_extent = EInt 2; pd_tlo = EInt 0;
          pd_bsize = None } ];
    proc_extents = [ EInt 2 ];
    params = [];
    arrays = [];
    scalars = [ "s" ];
    events = [];
    main =
      [
        Spmd.SetScalar ("s", Spmd.FOfInt (EVar "m$1"));
        Spmd.Reduce { scalar = "s"; op = Spmd.RSum };
      ];
    subs = [];
  }

let test_crash_during_collective () =
  List.iter
    (fun engine ->
      let rep =
        Spmdsim.Checkpoint.run ~engine ~plan:[ (1, 1) ] ~nprocs:2 reduce_prog
      in
      Alcotest.(check int) "the collective crash fired" 1 rep.rp_stats.s_crashes;
      Alcotest.(check int) "recovered in a second attempt" 2 rep.rp_attempts;
      Alcotest.(check bool) "the reduction still completed exactly" true
        (bit_equal 1.0 (Spmdsim.Exec.get_scalar rep.rp_sim "s")))
    [ `Interp; `Closure ]

(* ---- (e) scheduler watchdog ---- *)

let test_watchdog () =
  let _, cprog = compile (jacobi ()) in
  let sim = Spmdsim.Exec.make ~nprocs:4 cprog in
  (Spmdsim.Exec.transport sim).tr_max_events <- 5;
  (match Spmdsim.Exec.run sim with
  | _ -> Alcotest.fail "expected the watchdog to trip"
  | exception Spmdsim.Exec.Error msg ->
      Alcotest.(check bool) "diagnostic names the watchdog" true
        (let has needle hay =
           let nl = String.length needle and hl = String.length hay in
           let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
           go 0
         in
         has "watchdog" msg && has "--max-events" msg));
  (* a budget above the real event count never trips *)
  let sim2 = Spmdsim.Exec.make ~nprocs:4 cprog in
  (Spmdsim.Exec.transport sim2).tr_max_events <- 1_000_000;
  let _ = Spmdsim.Exec.run sim2 in
  ()

(* ---- (f) crash-differential harness: hash-driven schedules x engines ---- *)

let test_diffcheck_crashes () =
  List.iter
    (fun (name, src) ->
      let chk = Hpf.Sema.analyze_source src in
      match Spmdsim.Diffcheck.crashes ~ckpt_every:8 ~seeds:[ 1; 2; 3 ] chk with
      | Spmdsim.Diffcheck.Pass { runs } ->
          Alcotest.(check int) (name ^ ": every seed on both engines compared") 6 runs
      | out ->
          Alcotest.fail (Fmt.str "%s: %a" name Spmdsim.Diffcheck.pp_outcome out))
    [ ("jacobi", jacobi ()); ("gauss", gauss ()) ]

let () =
  Alcotest.run "crash"
    [
      ( "schedule",
        [
          Alcotest.test_case "fault-spec validation" `Quick test_validate;
          Alcotest.test_case "crash schedule is pure in (seed, pid, op)" `Quick
            test_crash_schedule_determinism;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "binary round-trip on both engines" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "decode rejects garbage" `Quick
            test_decode_rejects_garbage;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "restart from scratch" `Quick
            test_recovery_from_scratch;
          Alcotest.test_case "rollback to a coordinated snapshot" `Quick
            test_recovery_from_snapshot;
          Alcotest.test_case "two crashes, two recoveries" `Quick
            test_multiple_crashes;
          Alcotest.test_case "crash inside a collective" `Quick
            test_crash_during_collective;
        ] );
      ( "watchdog",
        [ Alcotest.test_case "event budget trips exit-5 error" `Quick test_watchdog ] );
      ( "differential",
        [
          Alcotest.test_case "crash schedules match the fault-free oracle" `Quick
            test_diffcheck_crashes;
        ] );
    ]
