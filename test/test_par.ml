(* The domain-parallel stack: Par pool combinators, lock-free
   observability counters under concurrent mutation, parallel compiler
   determinism (byte-identical output at any domain count), and the
   domain-differential simulator contract (bit-identical runs when
   processor lanes are sharded across a pool — including an
   oversubscribed one; this host may well have a single core).

   Everything here deliberately runs MORE domains than cores when the
   host is small: the contracts are about interleaving, not speed. *)

let benchmarks =
  [
    ("jacobi", Codes.jacobi ~n:16 ~iters:2 ());
    ("tomcatv", Codes.tomcatv ~n:12 ~iters:2 ());
    ("erlebacher", Codes.erlebacher ~n:10 ());
    ("gauss", Codes.gauss ~n:10 ());
    ("figure2", Codes.figure2 ());
    ("sp_like", Codes.sp_like ~n:12 ~nsub:6 ());
  ]

(* ---- Par combinators ---- *)

let test_spawn_join () =
  let hits = Array.make 4 0 in
  Par.spawn_join 4 (fun d -> hits.(d) <- hits.(d) + 1);
  Alcotest.(check (list int))
    "each body ran exactly once" [ 1; 1; 1; 1 ] (Array.to_list hits);
  match Par.spawn_join 3 (fun d -> if d >= 1 then failwith "boom") with
  | () -> Alcotest.fail "worker exception not propagated"
  | exception Failure msg -> Alcotest.(check string) "re-raised" "boom" msg

let test_map_order () =
  let r = Par.map ~domains:4 257 (fun i -> (i * 7) + 1) in
  Alcotest.(check bool)
    "results land at their own index" true
    (Array.to_list r = List.init 257 (fun i -> (i * 7) + 1))

let test_clamp () =
  Alcotest.(check int) "floored at one" 1 (Par.clamp 0);
  Alcotest.(check int) "floored at one (negative)" 1 (Par.clamp (-3));
  Alcotest.(check bool)
    "ceiled at the recommended count" true
    (Par.clamp 10_000 <= Par.recommended ())

(* ---- counters survive concurrent mutation without losing updates ---- *)

let test_counters_no_loss () =
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "par_test/hits" in
  let h = Obs.Metrics.histogram "par_test/sizes" in
  Iset.Stats.reset ();
  let per_domain = 10_000 in
  Par.spawn_join 4 (fun _ ->
      for i = 1 to per_domain do
        Obs.Metrics.inc c 1.0;
        Obs.Metrics.observe h (float_of_int (i land 7));
        Iset.Stats.bump Iset.Stats.sat_lookups
      done);
  Alcotest.(check int)
    "Iset.Stats counter exact under 4 domains" (4 * per_domain)
    (Iset.Stats.count Iset.Stats.sat_lookups);
  let find name =
    List.find
      (fun s -> s.Obs.Metrics.m_name = name)
      (Obs.Metrics.snapshot ())
  in
  (match (find "par_test/hits").Obs.Metrics.m_value with
  | Obs.Metrics.VCounter v ->
      Alcotest.(check (float 0.0))
        "metrics counter exact under 4 domains"
        (float_of_int (4 * per_domain))
        v
  | _ -> Alcotest.fail "par_test/hits is not a counter");
  (match (find "par_test/sizes").Obs.Metrics.m_value with
  | Obs.Metrics.VHisto hs ->
      Alcotest.(check int)
        "histogram count exact under 4 domains" (4 * per_domain) hs.hs_count
  | _ -> Alcotest.fail "par_test/sizes is not a histogram");
  Iset.Stats.reset ()

(* interning the same values from four domains must agree on physical
   identity and never duplicate ids *)
let test_hcons_concurrent () =
  let reps =
    Par.map ~domains:4 4 (fun d ->
        List.init 200 (fun i ->
            let v = Iset.Lin.var ~coef:(i + 1) (Iset.Var.In (d land 1)) in
            Iset.Conj.make ~n_ex:0 [ Iset.Constr.geq v ]))
  in
  let base = reps.(0) and other = reps.(2) in
  Alcotest.(check bool)
    "equal conjuncts intern to equal ids" true
    (List.for_all2
       (fun a b -> Iset.Conj.id a = Iset.Conj.id b)
       base other)

(* ---- parallel compiler: byte-identical output at any domain count ---- *)

let test_compile_deterministic () =
  List.iter
    (fun (name, src) ->
      let chk = Hpf.Sema.analyze_source src in
      let c1 = (Dhpf.Gen.compile ~domains:1 chk).Dhpf.Gen.cprog in
      List.iter
        (fun d ->
          let cd = (Dhpf.Gen.compile ~domains:d chk).Dhpf.Gen.cprog in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %d-domain compile structurally identical"
               name d)
            true (cd = c1);
          Alcotest.(check string)
            (Printf.sprintf "%s: %d-domain compile prints identically" name d)
            (Dhpf.Spmd.program_to_string c1)
            (Dhpf.Spmd.program_to_string cd))
        [ 2; 3; 4 ])
    benchmarks

(* ---- domain-differential simulator runs ---- *)

let outcome_ok name = function
  | Spmdsim.Diffcheck.Pass _ -> ()
  | out ->
      Alcotest.failf "%s: %a" name Spmdsim.Diffcheck.pp_outcome out

let test_sim_domains () =
  List.iter
    (fun (name, src) ->
      let chk = Hpf.Sema.analyze_source src in
      let nprocs = if name = "sp_like" then 6 else 4 in
      outcome_ok name
        (Spmdsim.Diffcheck.domains ~nprocs ~domain_counts:[ 2; 4 ]
           ~seeds:[ 5 ] chk))
    benchmarks

let test_sim_domains_interp () =
  let chk = Hpf.Sema.analyze_source (Codes.jacobi ~n:14 ~iters:2 ()) in
  outcome_ok "jacobi/interp"
    (Spmdsim.Diffcheck.domains ~engine:`Interp ~nprocs:4
       ~domain_counts:[ 3 ] ~seeds:[ 9 ] chk)

(* metrics instrumentation must not perturb the parallel scheduler, and
   the per-pair communication table must be identical at every count *)
let test_sim_domains_metered () =
  Obs.Metrics.enable ();
  let chk = Hpf.Sema.analyze_source (Codes.erlebacher ~n:10 ()) in
  outcome_ok "erlebacher/metered"
    (Spmdsim.Diffcheck.domains ~nprocs:4 ~domain_counts:[ 2; 4 ]
       ~seeds:[ 3 ] chk)

(* ---- the property: random programs x faults x domain counts ---- *)

(* reuses the generator design of test_random.ml in reduced form: the
   point here is the scheduler and compiler pool, not stencil coverage *)
type spec = {
  sp_dist : [ `BlockStar | `BlockBlock | `CyclicStar ];
  sp_shift : int * int;
  sp_refs : (string * (int * int)) list;
}

let src_of_spec s =
  let n = 8 in
  let procs, dist =
    match s.sp_dist with
    | `BlockStar -> ("processors p(2)", "distribute t(block,*) onto p")
    | `BlockBlock -> ("processors p(2,2)", "distribute t(block,block) onto p")
    | `CyclicStar -> ("processors p(2)", "distribute t(cyclic,*) onto p")
  in
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "program fuzzpar\n  parameter n = %d\n" n;
  pf "  real a(n,n), b(n,n)\n  %s\n  template t(n+1,n+1)\n" procs;
  pf "  align a(i,j) with t(i,j)\n  align b(i,j) with t(i,j)\n  %s\n" dist;
  pf "  do i = 1, n\n    do j = 1, n\n";
  pf "      a(i,j) = i + 2*j\n      b(i,j) = 2*i - j\n";
  pf "    end do\n  end do\n";
  let li, lj = s.sp_shift in
  let sub (di, dj) =
    let f v d = if d = 0 then v else Printf.sprintf "%s%+d" v d in
    Printf.sprintf "%s,%s" (f "i" di) (f "j" dj)
  in
  pf "  do i = 2, n-1\n    do j = 2, n-1\n";
  let rhs =
    String.concat " + "
      (List.map (fun (arr, d) -> Printf.sprintf "0.5*%s(%s)" arr (sub d)) s.sp_refs)
  in
  pf "      a(%s) = %s + 1.0\n" (sub (li, lj)) rhs;
  pf "    end do\n  end do\nend\n";
  Buffer.contents buf

let gen_spec =
  QCheck.Gen.(
    let shift = int_range (-1) 1 in
    map
      (fun (dist, sh, refs) -> { sp_dist = dist; sp_shift = sh; sp_refs = refs })
      (triple
         (oneofl [ `BlockStar; `BlockBlock; `CyclicStar ])
         (pair shift shift)
         (list_size (int_range 1 2)
            (pair (oneofl [ "a"; "b" ]) (pair shift shift)))))

let arb_spec = QCheck.make ~print:src_of_spec gen_spec

let prop_domains =
  QCheck.Test.make ~count:12
    ~name:
      "random programs: parallel compile is identical and sharded runs \
       are bit-identical under faults"
    arb_spec
    (fun spec ->
      let src = src_of_spec spec in
      match Hpf.Sema.analyze_source src with
      | chk -> (
          match
            let c1 = (Dhpf.Gen.compile ~domains:1 chk).Dhpf.Gen.cprog in
            let c4 = (Dhpf.Gen.compile ~domains:4 chk).Dhpf.Gen.cprog in
            if c1 <> c4 then
              QCheck.Test.fail_report "parallel compile diverged"
            else
              Spmdsim.Diffcheck.domains ~domain_counts:[ 2; 4 ]
                ~seeds:[ 1; 2 ] chk
          with
          | Spmdsim.Diffcheck.Pass _ -> true
          | out ->
              QCheck.Test.fail_reportf "%a" Spmdsim.Diffcheck.pp_outcome out
          | exception Dhpf.Gen.Unsupported _ -> QCheck.assume_fail ()
          | exception Dhpf.Layout.Unsupported _ -> QCheck.assume_fail ())
      | exception Hpf.Sema.Error _ -> QCheck.assume_fail ())

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "spawn_join runs and re-raises" `Quick
            test_spawn_join;
          Alcotest.test_case "map keeps index order" `Quick test_map_order;
          Alcotest.test_case "clamp bounds" `Quick test_clamp;
        ] );
      ( "counters",
        [
          Alcotest.test_case "no lost updates across 4 domains" `Quick
            test_counters_no_loss;
          Alcotest.test_case "hash-consing agrees across domains" `Quick
            test_hcons_concurrent;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "byte-identical output at 1/2/3/4 domains"
            `Slow test_compile_deterministic;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "bit-identical sharded runs (all benchmarks)"
            `Slow test_sim_domains;
          Alcotest.test_case "interpreter engine too" `Quick
            test_sim_domains_interp;
          Alcotest.test_case "metered runs and comm cells" `Quick
            test_sim_domains_metered;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_domains ] );
    ]
