(* Tests for the metrics registry and the predicted-vs-measured
   communication machinery: the disabled fast path, histogram merge
   associativity and percentile bounds (QCheck), point counting of
   generated loop nests, counter-series namespacing in the Chrome trace,
   the guarantee that metering a run changes nothing, and exact agreement
   of Predict.comm with the simulator's measured matrix on the paper's
   applications under both engines. *)

module M = Obs.Metrics

let with_metrics f =
  M.reset ();
  M.enable ();
  let r = Fun.protect ~finally:(fun () -> M.disable ()) f in
  let snap = M.snapshot () in
  M.reset ();
  (r, snap)

(* ---- registry basics ---- *)

let test_disabled_noop () =
  M.reset ();
  M.disable ();
  let c = M.counter "t/c" and g = M.gauge "t/g" and h = M.histogram "t/h" in
  M.inc c 5.0;
  M.set g 7.0;
  M.observe h 3.0;
  let snap = M.snapshot () in
  List.iter
    (fun (s : M.sample) ->
      match s.m_value with
      | M.VCounter v | M.VGauge v ->
          Alcotest.(check (float 0.0)) ("disabled " ^ s.m_name) 0.0 v
      | M.VHisto hs -> Alcotest.(check int) "disabled histo" 0 hs.hs_count)
    snap;
  M.reset ()

let test_accumulate () =
  let (), snap =
    with_metrics (fun () ->
        let c = M.counter ~labels:[ ("k", "v") ] "t/c" in
        M.inc c 2.0;
        M.inc c 3.0;
        M.incr (M.counter ~labels:[ ("k", "v") ] "t/c");
        M.set (M.gauge "t/g") 9.0;
        let h = M.histogram "t/h" in
        List.iter (M.observe h) [ 1.0; 2.0; 4.0; 1024.0 ])
  in
  let find name =
    match List.find_opt (fun (s : M.sample) -> s.m_name = name) snap with
    | Some s -> s.M.m_value
    | None -> Alcotest.failf "series %s missing" name
  in
  (match find "t/c" with
  | M.VCounter v -> Alcotest.(check (float 0.0)) "counter sums" 6.0 v
  | _ -> Alcotest.fail "t/c not a counter");
  (match find "t/h" with
  | M.VHisto h ->
      Alcotest.(check int) "histo count" 4 h.hs_count;
      Alcotest.(check (float 0.0)) "histo sum" 1031.0 h.hs_sum;
      Alcotest.(check (float 0.0)) "histo min" 1.0 h.hs_min;
      Alcotest.(check (float 0.0)) "histo max" 1024.0 h.hs_max
  | _ -> Alcotest.fail "t/h not a histogram")

(* ---- concurrent mutation: no lost increments, stable snapshots ---- *)

let test_multidomain_hammer () =
  let domains = 4 and per_domain = 10_000 in
  let (), snap =
    with_metrics (fun () ->
        let c = M.counter "hammer/c" in
        let h = M.histogram "hammer/h" in
        Par.spawn_join domains (fun d ->
            for i = 0 to per_domain - 1 do
              M.incr c;
              if i land 63 = 0 then
                M.observe h (float_of_int (d + 1))
            done))
  in
  let find name =
    match List.find_opt (fun (s : M.sample) -> s.m_name = name) snap with
    | Some s -> s.M.m_value
    | None -> Alcotest.failf "series %s missing" name
  in
  (match find "hammer/c" with
  | M.VCounter v ->
      Alcotest.(check (float 0.0))
        "no lost increments across domains"
        (float_of_int (domains * per_domain))
        v
  | _ -> Alcotest.fail "hammer/c not a counter");
  (match find "hammer/h" with
  | M.VHisto hs ->
      Alcotest.(check int) "no lost observations"
        (domains * ((per_domain + 63) / 64))
        hs.hs_count
  | _ -> Alcotest.fail "hammer/h not a histogram");
  (* a quiescent registry exports deterministically *)
  Alcotest.(check string) "snapshot JSON is stable"
    (M.samples_to_json snap) (M.samples_to_json snap);
  (* merge with itself doubles counters and bucket counts *)
  (match
     List.find_opt
       (fun (s : M.sample) -> s.m_name = "hammer/c")
       (M.merge snap snap)
   with
  | Some { M.m_value = M.VCounter v; _ } ->
      Alcotest.(check (float 0.0)) "self-merge doubles"
        (2.0 *. float_of_int (domains * per_domain))
        v
  | _ -> Alcotest.fail "merged counter missing")

(* ---- Prometheus text exposition ---- *)

let test_prometheus_format () =
  let (), snap =
    with_metrics (fun () ->
        M.inc (M.counter ~labels:[ ("op", "compile") ] "serve/requests") 3.0;
        M.set (M.gauge "serve/queue depth") 2.0;
        let h = M.histogram "serve/latency_s" in
        List.iter (M.observe h) [ 0.001; 0.01; 0.1 ])
  in
  let text = M.to_prometheus snap in
  let lines = String.split_on_char '\n' text in
  let has prefix =
    List.exists
      (fun l ->
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      lines
  in
  Alcotest.(check bool) "counter TYPE line" true
    (has "# TYPE serve_requests counter");
  Alcotest.(check bool) "counter sample with label" true
    (has "serve_requests{op=\"compile\"} 3");
  Alcotest.(check bool) "gauge name sanitized" true
    (has "serve_queue_depth 2");
  Alcotest.(check bool) "histogram +Inf bucket" true
    (List.exists
       (fun l ->
         has "serve_latency_s_bucket"
         &&
         let rec find i =
           i + 6 <= String.length l
           && (String.sub l i 6 = "+Inf\"}" || find (i + 1))
         in
         find 0)
       lines);
  Alcotest.(check bool) "histogram count" true (has "serve_latency_s_count 3");
  (* every non-comment, non-blank line is "name{labels} value" with a
     sanitized name *)
  List.iter
    (fun l ->
      if l <> "" && l.[0] <> '#' then begin
        match String.index_opt l ' ' with
        | None -> Alcotest.failf "prometheus line %S has no value" l
        | Some sp ->
            let name_part = String.sub l 0 sp in
            let name_end =
              match String.index_opt name_part '{' with
              | Some i -> i
              | None -> String.length name_part
            in
            String.iter
              (fun ch ->
                if
                  not
                    ((ch >= 'a' && ch <= 'z')
                    || (ch >= 'A' && ch <= 'Z')
                    || (ch >= '0' && ch <= '9')
                    || ch = '_' || ch = ':')
                then Alcotest.failf "unsanitized metric name in %S" l)
              (String.sub name_part 0 name_end)
      end)
    lines;
  (* cumulative buckets: counts never decrease as le rises *)
  let bucket_counts =
    List.filter_map
      (fun l ->
        let p = "serve_latency_s_bucket" in
        if
          String.length l > String.length p
          && String.sub l 0 (String.length p) = p
        then
          match String.rindex_opt l ' ' with
          | Some sp ->
              float_of_string_opt
                (String.sub l (sp + 1) (String.length l - sp - 1))
          | None -> None
        else None)
      lines
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "buckets are cumulative" true (monotone bucket_counts)

(* ---- QCheck: merge associativity, percentile bounds ---- *)

let snap_of vals =
  snd
    (with_metrics (fun () ->
         let h = M.histogram "q/h" in
         List.iter (M.observe h) vals))

let histo_of snap =
  match (List.hd snap : M.sample).m_value with
  | M.VHisto h -> h
  | _ -> assert false

let pos_floats = QCheck.(list_of_size (Gen.int_range 1 40) (pos_float))

(* sums are floating-point, so associativity holds up to rounding; every
   other field (count, min, max, buckets) must agree exactly *)
let histo_equiv (x : M.histo) (y : M.histo) =
  x.hs_count = y.hs_count && x.hs_min = y.hs_min && x.hs_max = y.hs_max
  && x.hs_buckets = y.hs_buckets
  && abs_float (x.hs_sum -. y.hs_sum)
     <= 1e-9 *. Float.max 1.0 (abs_float x.hs_sum)

let prop_merge_assoc =
  QCheck.Test.make ~count:100 ~name:"histogram merge is associative"
    QCheck.(triple pos_floats pos_floats pos_floats)
    (fun (a, b, c) ->
      let sa = snap_of a and sb = snap_of b and sc = snap_of c in
      histo_equiv
        (histo_of (M.merge sa (M.merge sb sc)))
        (histo_of (M.merge (M.merge sa sb) sc)))

let prop_merge_counts =
  QCheck.Test.make ~count:100 ~name:"merged histogram sums counts and sums"
    QCheck.(pair pos_floats pos_floats)
    (fun (a, b) ->
      let h = histo_of (M.merge (snap_of a) (snap_of b)) in
      h.M.hs_count = List.length a + List.length b
      && abs_float (h.M.hs_sum -. (List.fold_left ( +. ) 0.0 (a @ b))) < 1e-6)

let prop_percentile_bounds =
  QCheck.Test.make ~count:200
    ~name:"percentiles lie in [min,max], monotone, exact at the ends"
    QCheck.(pair (list_of_size (Gen.int_range 1 40) pos_float) (float_bound_inclusive 1.0))
    (fun (vals, q) ->
      let h = histo_of (snap_of vals) in
      let p = M.percentile q h in
      let q' = Float.min 1.0 (q +. 0.25) in
      p >= h.M.hs_min && p <= h.M.hs_max
      && M.percentile q' h >= p
      && M.percentile 0.0 h = h.M.hs_min
      && M.percentile 1.0 h = h.M.hs_max)

(* each observation lands in the bucket whose range covers it *)
let prop_bucket_covers =
  QCheck.Test.make ~count:200 ~name:"log2 bucket covers its value"
    QCheck.pos_float
    (fun v ->
      let b = M.bucket_of v in
      v <= M.bucket_upper b && (b = 0 || v > M.bucket_upper (b - 1)))

(* ---- Iset.Codegen.count_points: the compile-time message-size count ---- *)

let test_count_points () =
  List.iter
    (fun (msg, src, env) ->
      let set = Iset.Parse.set src in
      let names = Iset.Rel.in_names set in
      let asts =
        Iset.Codegen.gen ~names [ { Iset.Codegen.tag = 0; dom = set } ]
      in
      let env s = List.assoc s env in
      let n = ref 0 in
      Iset.Codegen.run ~env ~f:(fun _ _ -> incr n) asts;
      Alcotest.(check int) msg !n (Iset.Codegen.count_points ~env asts))
    [
      ("box", "{[i,j] : 1 <= i <= 10 && i <= j <= n}", [ ("n", 7) ]);
      ("stride", "{[i] : exists(a : i = 2a) && 1 <= i <= n}", [ ("n", 20) ]);
      ("empty", "{[i] : 5 <= i <= 2}", []);
      ("union", "{[i] : 1 <= i <= 4} union {[i] : 10 <= i <= 12}", []);
    ]

(* ---- counter series carry a subsystem prefix in the Chrome trace ---- *)

let test_counter_namespacing () =
  Obs.reset ();
  Obs.enable ();
  let src = Codes.jacobi ~n:12 ~iters:1 () in
  ignore (Dhpf.Gen.compile (Hpf.Sema.analyze_source src));
  let evs = Obs.events () in
  Obs.disable ();
  Obs.reset ();
  let counters =
    List.filter (fun e -> e.Obs.e_ph = Obs.C) evs
    |> List.map (fun e -> e.Obs.e_name)
  in
  Alcotest.(check bool) "compile emits iset counter samples" true
    (List.mem "iset/cache hits" counters);
  List.iter
    (fun n ->
      if not (String.contains n '/') then
        Alcotest.failf
          "counter series %S has no subsystem prefix: two subsystems with \
           this name would interleave into one trace track"
          n)
    counters

(* ---- metering must not perturb the simulation ---- *)

let run_jacobi ~engine ?faults () =
  let src = Codes.jacobi ~n:12 ~iters:2 () in
  let compiled = Dhpf.Gen.compile (Hpf.Sema.analyze_source src) in
  let sim =
    Spmdsim.Exec.make ~engine ?faults ~nprocs:4 compiled.Dhpf.Gen.cprog
  in
  let stats = Spmdsim.Exec.run sim in
  let values =
    List.concat_map
      (fun arr ->
        List.concat_map
          (fun i ->
            List.map
              (fun j -> Spmdsim.Exec.get_elem sim arr [ i; j ])
              (List.init 12 succ))
          (List.init 12 succ))
      [ "a"; "b" ]
  in
  (stats, values, Spmdsim.Exec.get_scalar sim "eps")

let test_metered_identical () =
  List.iter
    (fun (engine, faults) ->
      let plain = run_jacobi ~engine ?faults () in
      (* metered, and metered+traced: both must be bit-identical *)
      let metered, _ = with_metrics (fun () -> run_jacobi ~engine ?faults ()) in
      let both, _ =
        with_metrics (fun () ->
            Obs.reset ();
            Obs.enable ();
            Fun.protect
              ~finally:(fun () ->
                Obs.disable ();
                Obs.reset ())
              (fun () -> run_jacobi ~engine ?faults ()))
      in
      List.iter
        (fun (s2, v2, e2) ->
          let s1, v1, e1 = plain in
          Alcotest.(check (list (float 0.0))) "element values identical" v1 v2;
          Alcotest.(check (float 0.0)) "scalar identical" e1 e2;
          Alcotest.(check bool) "stats identical (incl. clocks)" true (s1 = s2))
        [ metered; both ])
    [ (`Closure, None);
      (`Interp, None);
      (`Closure, Some (Spmdsim.Fault.default ~seed:7)) ]

(* ---- predicted vs measured on the paper's applications ---- *)

let check_app name src nprocs =
  let compiled = Dhpf.Gen.compile (Hpf.Sema.analyze_source src) in
  let predicted = Spmdsim.Predict.comm ~nprocs compiled.Dhpf.Gen.cprog in
  Alcotest.(check bool)
    (name ^ " predicts some communication")
    true (predicted <> []);
  List.iter
    (fun (engine, faults) ->
      let (), _ =
        with_metrics (fun () ->
            let sim =
              Spmdsim.Exec.make ~engine ?faults ~nprocs
                compiled.Dhpf.Gen.cprog
            in
            ignore (Spmdsim.Exec.run sim);
            let measured = Spmdsim.Exec.comm_cells sim in
            match Spmdsim.Predict.check predicted measured with
            | [] -> ()
            | mm ->
                Alcotest.failf "%s: %d predicted-vs-measured cells diverge"
                  name (List.length mm))
      in
      ignore faults)
    [ (`Closure, None);
      (`Interp, None);
      (`Closure, Some (Spmdsim.Fault.default ~seed:11)) ]

let test_predicted_measured () =
  check_app "jacobi" (Codes.jacobi ~n:24 ~iters:2 ~procs:(Codes.Fixed (2, 2)) ()) 4;
  check_app "tomcatv" (Codes.tomcatv ~n:33 ~iters:1 ()) 4;
  check_app "gauss (cyclic, local copies)" (Codes.gauss ~n:12 ()) 4

(* the join must flag divergence in either direction, and slack must
   widen the acceptance band *)
let test_check_detects_mismatch () =
  let pred =
    [ { Spmdsim.Predict.p_event = 0; p_src = 0; p_dst = 1; p_msgs = 2; p_elems = 10 } ]
  in
  let meas ~msgs ~elems =
    [
      {
        Spmdsim.Exec.cm_event = 0;
        cm_src = 0;
        cm_dst = 1;
        cm_msgs = msgs;
        cm_elems = elems;
        cm_bytes = elems * 8;
      };
    ]
  in
  Alcotest.(check int) "exact match passes" 0
    (List.length (Spmdsim.Predict.check pred (meas ~msgs:2 ~elems:10)));
  Alcotest.(check int) "element divergence flagged" 1
    (List.length (Spmdsim.Predict.check pred (meas ~msgs:2 ~elems:11)));
  Alcotest.(check int) "missing measured cell flagged" 1
    (List.length (Spmdsim.Predict.check pred []));
  Alcotest.(check int) "unpredicted measured cell flagged" 1
    (List.length (Spmdsim.Predict.check [] (meas ~msgs:2 ~elems:10)));
  Alcotest.(check int) "slack admits the divergence" 0
    (List.length
       (Spmdsim.Predict.check ~slack:0.2 pred (meas ~msgs:2 ~elems:11)))

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "accumulation" `Quick test_accumulate;
          Alcotest.test_case "multi-domain hammer loses nothing" `Quick
            test_multidomain_hammer;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_format;
        ] );
      ( "histograms",
        [
          QCheck_alcotest.to_alcotest prop_merge_assoc;
          QCheck_alcotest.to_alcotest prop_merge_counts;
          QCheck_alcotest.to_alcotest prop_percentile_bounds;
          QCheck_alcotest.to_alcotest prop_bucket_covers;
        ] );
      ( "count-points",
        [ Alcotest.test_case "matches enumeration" `Quick test_count_points ] );
      ( "namespacing",
        [
          Alcotest.test_case "trace counter series prefixed" `Quick
            test_counter_namespacing;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "metered run bit-identical" `Quick
            test_metered_identical;
          Alcotest.test_case "predicted = measured (both engines, faults)"
            `Quick test_predicted_measured;
          Alcotest.test_case "check flags divergence" `Quick
            test_check_detects_mismatch;
        ] );
    ]
