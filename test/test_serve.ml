(* The serve subsystem end to end: protocol round trips against an
   in-process server, error triage, admission control, shutdown, and the
   property the service exists for — a second server over the same disk
   cache answers byte-identically to the first, out of cache.  The last
   test drives the installed dhpfc binary twice as separate processes
   against a shared --disk-cache directory. *)

open Serve

let counter = ref 0

let fresh_dir () =
  incr counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dhpf-serve-test-%d-%d" (Unix.getpid ()) !counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun e -> rm_rf (Filename.concat path e))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let small = Codes.all_small ()
let lookup name = List.assoc_opt name small
let opts = Dhpf.Gen.default_options

let mk_cfg ?(workers = 2) ?(max_queue = 16) ?disk_cache ?log ?prom
    ?flight_dump ?(recorder_slots = 0) ~socket () =
  {
    Server.version = "test";
    socket;
    workers;
    max_queue;
    disk_cache;
    lookup;
    quiet = true;
    log;
    prom;
    flight_dump;
    recorder_slots;
  }

(* launch, block until the ping answers, run the body, always stop *)
let with_server ?workers ?max_queue ?disk_cache ?log ?prom ?flight_dump
    ?recorder_slots f =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let srv =
    Server.launch
      (mk_cfg ?workers ?max_queue ?disk_cache ?log ?prom ?flight_dump
         ?recorder_slots ~socket ())
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      rm_rf dir)
    (fun () ->
      Alcotest.(check bool)
        "server ready" true
        (Client.wait_ready ~socket ());
      f socket)

let status r = Option.value (Jsonx.get_str r "status") ~default:"?"
let code r = Option.value (Jsonx.get_str r "code") ~default:"?"

let check_error ~code:expect r =
  Alcotest.(check string) "status" "error" (status r);
  Alcotest.(check string) "code" expect (code r)

(* -- basic round trips ---------------------------------------------- *)

let test_ping () =
  with_server @@ fun socket ->
  let r = Client.request ~socket Proto.Ping in
  Alcotest.(check string) "status" "ok" (status r);
  Alcotest.(check string)
    "schema" Proto.schema
    (Option.value (Jsonx.get_str r "schema") ~default:"?");
  Alcotest.(check string)
    "version" "test"
    (Option.value (Jsonx.get_str r "version") ~default:"?")

let test_compile_builtin () =
  with_server @@ fun socket ->
  let r =
    Client.request ~socket
      (Proto.Compile { label = "jacobi"; source = None; opts })
  in
  Alcotest.(check string) "status" "ok" (status r);
  let report =
    match Jsonx.get r "report" with
    | Some rep -> rep
    | None -> Alcotest.fail "compile response has no report"
  in
  Alcotest.(check string)
    "report schema" "dhpf-report/2"
    (Option.value (Jsonx.get_str report "schema") ~default:"?");
  (match Jsonx.get_int report "events" with
  | Some n -> Alcotest.(check bool) "events > 0" true (n > 0)
  | None -> Alcotest.fail "report has no events count");
  match Jsonx.get_str r "spmd" with
  | Some s -> Alcotest.(check bool) "spmd nonempty" true (String.length s > 0)
  | None -> Alcotest.fail "compile response has no spmd text"

let test_compile_inline () =
  with_server @@ fun socket ->
  let r =
    Client.request ~socket
      (Proto.Compile
         {
           label = "inline-figure2";
           source = Some (Codes.figure2 ());
           opts;
         })
  in
  Alcotest.(check string) "status" "ok" (status r);
  let report =
    match Jsonx.get r "report" with
    | Some rep -> rep
    | None -> Alcotest.fail "no report"
  in
  Alcotest.(check string)
    "labelled src" "inline-figure2"
    (Option.value (Jsonx.get_str report "src") ~default:"?")

let test_run () =
  with_server @@ fun socket ->
  let r =
    Client.request ~socket
      (Proto.Run
         {
           label = "figure2";
           source = None;
           opts;
           nprocs = 4;
           params = [];
           engine = "closure";
         })
  in
  Alcotest.(check string) "status" "ok" (status r);
  let run =
    match Jsonx.get r "run" with
    | Some run -> run
    | None -> Alcotest.fail "run response has no run section"
  in
  Alcotest.(check (option int)) "nprocs" (Some 4) (Jsonx.get_int run "nprocs");
  Alcotest.(check (option string))
    "engine" (Some "closure")
    (Jsonx.get_str run "engine");
  (match Jsonx.get_int run "msgs" with
  | Some n -> Alcotest.(check bool) "msgs >= 0" true (n >= 0)
  | None -> Alcotest.fail "no msgs");
  match Jsonx.get_num run "speedup" with
  | Some s -> Alcotest.(check bool) "speedup finite" true (Float.is_finite s)
  | None -> Alcotest.fail "no speedup"

(* -- error triage ---------------------------------------------------- *)

let test_unknown_source () =
  with_server @@ fun socket ->
  check_error ~code:"parse"
    (Client.request ~socket
       (Proto.Compile { label = "no-such-program"; source = None; opts }))

let test_bad_source_text () =
  with_server @@ fun socket ->
  check_error ~code:"parse"
    (Client.request ~socket
       (Proto.Compile
          { label = "junk"; source = Some "real a(; this is not hpf"; opts }))

let test_bad_engine () =
  with_server @@ fun socket ->
  check_error ~code:"parse"
    (Client.request ~socket
       (Proto.Run
          {
            label = "figure2";
            source = None;
            opts;
            nprocs = 4;
            params = [];
            engine = "quantum";
          }))

let test_protocol_errors () =
  with_server @@ fun socket ->
  (* a syntactically valid request with an op no constructor produces *)
  check_error ~code:"protocol"
    (Client.request_json ~socket
       (Jsonx.Obj [ ("op", Jsonx.Str "frobnicate") ]));
  check_error ~code:"protocol"
    (Client.request_json ~socket (Jsonx.Obj [ ("note", Jsonx.Str "no op") ]));
  (* a frame that is not JSON at all, below the client's builders *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Proto.write_frame fd "{this is not json";
      match Proto.read_json fd with
      | Some r -> check_error ~code:"protocol" r
      | None -> Alcotest.fail "server closed without a protocol error")

let test_stats () =
  with_server @@ fun socket ->
  ignore
    (Client.request ~socket
       (Proto.Compile { label = "figure2"; source = None; opts }));
  let r = Client.request ~socket Proto.Stats in
  Alcotest.(check string) "status" "ok" (status r);
  (match Jsonx.get_int r "served" with
  | Some n -> Alcotest.(check bool) "served >= 1" true (n >= 1)
  | None -> Alcotest.fail "no served counter");
  (match Jsonx.get r "iset" with
  | Some (Jsonx.Obj kvs) ->
      Alcotest.(check bool)
        "iset counters include disk lookups" true
        (List.mem_assoc "disk lookups" kvs)
  | _ -> Alcotest.fail "no iset counter object");
  match Jsonx.get r "metrics" with
  | Some (Jsonx.Obj _) -> ()
  | _ -> Alcotest.fail "no embedded metrics registry"

(* -- admission control and shutdown ---------------------------------- *)

let test_overloaded () =
  (* max_queue 0: every admission decision rejects, so any request —
     including a ping — gets the structured overloaded response.
     with_server's readiness ping would never succeed, so launch by
     hand. *)
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let srv = Server.launch (mk_cfg ~max_queue:0 ~socket ()) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      rm_rf dir)
    (fun () ->
      let rec attempt n =
        match Client.request ~socket Proto.Ping with
        | r -> r
        | exception (Client.Connect_error _ | Proto.Proto_error _)
          when n > 0 ->
            Unix.sleepf 0.02;
            attempt (n - 1)
      in
      let r = attempt 50 in
      Alcotest.(check string) "status" "overloaded" (status r))

let test_shutdown_op () =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let srv = Server.launch (mk_cfg ~socket ()) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      rm_rf dir)
    (fun () ->
      Alcotest.(check bool)
        "server ready" true
        (Client.wait_ready ~socket ());
      let r = Client.request ~socket Proto.Shutdown in
      Alcotest.(check string) "status" "ok" (status r);
      Alcotest.(check (option bool))
        "stopping" (Some true)
        (Jsonx.get_bool r "stopping");
      Server.wait srv;
      Alcotest.(check bool)
        "socket unlinked" false
        (Sys.file_exists socket);
      match Client.request ~socket Proto.Ping with
      | _ -> Alcotest.fail "server still answering after shutdown"
      | exception Client.Connect_error _ -> ())

let test_socket_conflict () =
  with_server @@ fun socket ->
  (* the socket belongs to a live server: a second launch must refuse *)
  match Server.launch (mk_cfg ~socket ()) with
  | srv ->
      Server.stop srv;
      Alcotest.fail "second server claimed a live socket"
  | exception Server.Bind_error _ -> ()

(* -- warm service over a shared disk cache --------------------------- *)

let compile_via socket label =
  let r =
    Client.request ~socket (Proto.Compile { label; source = None; opts })
  in
  Alcotest.(check string) "status" "ok" (status r);
  match Jsonx.get_str r "spmd" with
  | Some s -> s
  | None -> Alcotest.fail "no spmd text"

let test_warm_second_server () =
  let cache = fresh_dir () in
  let saved_dir = Iset.Diskcache.dir () in
  Fun.protect
    ~finally:(fun () ->
      Iset.Diskcache.set_dir saved_dir;
      rm_rf cache)
    (fun () ->
      (* first server generation populates the disk cache *)
      let cold =
        with_server ~disk_cache:cache @@ fun socket ->
        compile_via socket "jacobi"
      in
      (* simulate a process restart: in-memory tables and counters go,
         the disk cache stays *)
      Iset.Cache.clear_all ();
      Iset.Stats.reset ();
      let warm, disk_hits =
        with_server ~disk_cache:cache @@ fun socket ->
        let spmd = compile_via socket "jacobi" in
        let stats = Client.request ~socket Proto.Stats in
        let hits =
          match Jsonx.get stats "iset" with
          | Some iset ->
              Option.value (Jsonx.get_int iset "disk hits") ~default:0
          | None -> 0
        in
        (spmd, hits)
      in
      Alcotest.(check string) "warm spmd byte-identical" cold warm;
      Alcotest.(check bool) "warm served from disk" true (disk_hits > 0);
      (* and both match a plain batch compile with every cache off *)
      Iset.Cache.set_enabled false;
      let direct =
        Fun.protect
          ~finally:(fun () -> Iset.Cache.set_enabled true)
          (fun () ->
            let chk =
              Hpf.Sema.analyze_source (List.assoc "jacobi" small)
            in
            let compiled =
              Dhpf.Gen.compile ~opts ~phase:(Dhpf.Phase.create ()) chk
            in
            Dhpf.Spmd.program_to_string compiled.Dhpf.Gen.cprog)
      in
      Alcotest.(check string) "matches uncached batch compile" direct cold)

(* -- cross-process warm compile through the dhpfc binary -------------- *)

(* resolve relative to this executable, not the cwd: dune runs tests
   from the build directory, a bare `./test_serve.exe` may not *)
let dhpfc =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "dhpfc.exe"))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_cross_process_warm () =
  if not (Sys.file_exists dhpfc) then
    Alcotest.skip ()
  else begin
    let dir = fresh_dir () in
    Fun.protect
      ~finally:(fun () -> rm_rf dir)
      (fun () ->
        let cache = Filename.concat dir "cache" in
        let out n = Filename.concat dir n in
        let run args redirect =
          Sys.command
            (Printf.sprintf "%s %s %s 2>/dev/null" dhpfc args redirect)
        in
        Alcotest.(check int)
          "cold compile exits 0" 0
          (run
             (Printf.sprintf "compile figure2 --show-spmd --disk-cache %s"
                cache)
             ("> " ^ out "cold.txt"));
        Alcotest.(check int)
          "warm compile exits 0" 0
          (run
             (Printf.sprintf
                "compile figure2 --show-spmd --disk-cache %s --report-json %s"
                cache (out "report.json"))
             ("> " ^ out "warm.txt"));
        Alcotest.(check string)
          "warm process output byte-identical"
          (read_file (out "cold.txt"))
          (read_file (out "warm.txt"));
        let report = Jsonx.of_string (read_file (out "report.json")) in
        let counters =
          match Jsonx.get report "cache" with
          | Some c -> Option.value (Jsonx.get c "counters") ~default:Jsonx.Null
          | None -> Jsonx.Null
        in
        match Jsonx.get_int counters "disk hits" with
        | Some hits ->
            Alcotest.(check bool) "cross-process disk hits" true (hits > 0)
        | None -> Alcotest.fail "report has no disk hits counter")
  end

(* -- telemetry: trace ids, stats v2, flight recorder ------------------ *)

let test_telemetry_section () =
  with_server @@ fun socket ->
  let r =
    Client.request ~rid:"my-trace" ~socket
      (Proto.Compile { label = "jacobi"; source = None; opts })
  in
  Alcotest.(check string) "status" "ok" (status r);
  Alcotest.(check (option string))
    "response echoes rid" (Some "my-trace") (Jsonx.get_str r "rid");
  let report =
    match Jsonx.get r "report" with
    | Some rep -> rep
    | None -> Alcotest.fail "no report"
  in
  let tel =
    match Jsonx.get report "telemetry" with
    | Some t -> t
    | None -> Alcotest.fail "report has no telemetry section"
  in
  Alcotest.(check (option string))
    "telemetry rid" (Some "my-trace") (Jsonx.get_str tel "rid");
  (match Jsonx.get_num tel "queue_wait_s" with
  | Some q -> Alcotest.(check bool) "queue_wait_s >= 0" true (q >= 0.)
  | None -> Alcotest.fail "no queue_wait_s");
  (match Jsonx.get_num tel "service_s" with
  | Some s -> Alcotest.(check bool) "service_s >= 0" true (s >= 0.)
  | None -> Alcotest.fail "no service_s");
  (* a generated rid when the client sends none *)
  let r2 = Client.request ~socket Proto.Ping in
  match Jsonx.get_str r2 "rid" with
  | Some rid -> Alcotest.(check bool) "generated rid" true (rid <> "")
  | None -> Alcotest.fail "ping response has no rid"

let test_stats_v2 () =
  with_server @@ fun socket ->
  ignore
    (Client.request ~socket
       (Proto.Compile { label = "figure2"; source = None; opts }));
  ignore
    (Client.request ~socket
       (Proto.Compile { label = "figure2"; source = None; opts }));
  let r = Client.request ~socket Proto.Stats in
  Alcotest.(check string) "status" "ok" (status r);
  Alcotest.(check (option string))
    "stats schema" (Some "dhpf-stats/2")
    (Jsonx.get_str r "stats_schema");
  (match Jsonx.get_num r "uptime_s" with
  | Some u -> Alcotest.(check bool) "uptime >= 0" true (u >= 0.)
  | None -> Alcotest.fail "no uptime_s");
  let w =
    match Jsonx.get r "window" with
    | Some w -> w
    | None -> Alcotest.fail "no window gauges"
  in
  (match
     ( Jsonx.get_num w "service_p50_s",
       Jsonx.get_num w "service_p95_s",
       Jsonx.get_num w "service_p99_s" )
   with
  | Some p50, Some p95, Some p99 ->
      Alcotest.(check bool)
        "percentiles ordered" true
        (0. <= p50 && p50 <= p95 && p95 <= p99)
  | _ -> Alcotest.fail "missing service percentiles");
  (match (Jsonx.get_num w "rps", Jsonx.get_int w "samples") with
  | Some rps, Some n ->
      Alcotest.(check bool) "rps positive" true (rps > 0.);
      Alcotest.(check bool) "window samples >= 2" true (n >= 2)
  | _ -> Alcotest.fail "missing rps/samples");
  match Jsonx.get r "ratios" with
  | Some rt -> (
      match (Jsonx.get_num rt "memo_hit", Jsonx.get_num rt "disk_hit") with
      | Some m, Some d ->
          Alcotest.(check bool)
            "ratios in [0,1]" true
            (m >= 0. && m <= 1. && d >= 0. && d <= 1.)
      | _ -> Alcotest.fail "missing hit ratios")
  | None -> Alcotest.fail "no ratios"

let test_dump_op () =
  with_server ~recorder_slots:64 @@ fun socket ->
  ignore
    (Client.request ~rid:"dump-probe" ~socket
       (Proto.Compile { label = "figure2"; source = None; opts }));
  let r = Client.request ~socket Proto.Dump in
  Alcotest.(check string) "status" "ok" (status r);
  let flight =
    match Jsonx.get r "flight" with
    | Some f -> f
    | None -> Alcotest.fail "dump has no flight bundle"
  in
  Alcotest.(check (option string))
    "flight schema" (Some "dhpf-flight/1")
    (Jsonx.get_str flight "schema");
  let entries =
    match Jsonx.get_list flight "entries" with
    | Some es -> es
    | None -> Alcotest.fail "flight bundle has no entries"
  in
  Alcotest.(check bool) "entries nonempty" true (entries <> []);
  Alcotest.(check bool)
    "request summary recorded" true
    (List.exists
       (fun e ->
         Jsonx.get_str e "kind" = Some "request"
         && Jsonx.get_str e "rid" = Some "dump-probe")
       entries);
  match Jsonx.get r "metrics" with
  | Some (Jsonx.Obj _) -> ()
  | _ -> Alcotest.fail "dump has no metrics snapshot"

let test_dump_on_exception () =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let flight = Filename.concat dir "flight.json" in
  let srv =
    Server.launch (mk_cfg ~recorder_slots:64 ~flight_dump:flight ~socket ())
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      rm_rf dir)
    (fun () ->
      Alcotest.(check bool)
        "server ready" true
        (Client.wait_ready ~socket ());
      check_error ~code:"parse"
        (Client.request ~rid:"boom" ~socket
           (Proto.Compile
              { label = "broken"; source = Some "not hpf at all ("; opts }));
      Alcotest.(check bool)
        "flight dump written on failure" true
        (Sys.file_exists flight);
      let v = Jsonx.of_string (read_file flight) in
      Alcotest.(check (option string))
        "dump schema" (Some "dhpf-flight/1")
        (Jsonx.get_str v "schema");
      match Jsonx.get_list v "entries" with
      | Some entries ->
          Alcotest.(check bool)
            "error event in dump" true
            (List.exists
               (fun e ->
                 Jsonx.get_str e "event" = Some "serve.error"
                 && Jsonx.get_str e "rid" = Some "boom")
               entries)
      | None -> Alcotest.fail "dump has no entries")

let test_log_lines () =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let log = Filename.concat dir "serve.log.jsonl" in
  let srv = Server.launch (mk_cfg ~log ~socket ()) in
  Alcotest.(check bool) "server ready" true (Client.wait_ready ~socket ());
  ignore
    (Client.request ~rid:"log-probe" ~socket
       (Proto.Compile { label = "figure2"; source = None; opts }));
  Server.stop srv;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let lines =
        String.split_on_char '\n' (read_file log)
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check bool) "log nonempty" true (lines <> []);
      let parsed = List.map Jsonx.of_string lines in
      List.iter
        (fun v ->
          Alcotest.(check (option string))
            "line schema" (Some "dhpf-log/1") (Jsonx.get_str v "schema");
          Alcotest.(check bool) "line has ts" true (Jsonx.get_num v "ts" <> None);
          Alcotest.(check bool)
            "line has level" true
            (Jsonx.get_str v "level" <> None);
          Alcotest.(check bool)
            "line has event" true
            (Jsonx.get_str v "event" <> None))
        parsed;
      let has event =
        List.exists (fun v -> Jsonx.get_str v "event" = Some event) parsed
      in
      Alcotest.(check bool) "serve.start logged" true (has "serve.start");
      Alcotest.(check bool) "serve.complete logged" true (has "serve.complete");
      Alcotest.(check bool) "serve.shutdown logged" true (has "serve.shutdown");
      Alcotest.(check bool)
        "rid threaded into log" true
        (List.exists
           (fun v -> Jsonx.get_str v "rid" = Some "log-probe")
           parsed))

(* the acceptance invariant: telemetry must be inert — the same compile
   answers byte-identically with every sink lit up *)
let test_telemetry_inert () =
  let plain =
    with_server @@ fun socket -> compile_via socket "jacobi"
  in
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let srv =
    Server.launch
      (mk_cfg
         ~log:(Filename.concat dir "log.jsonl")
         ~prom:(Filename.concat dir "prom.txt")
         ~flight_dump:(Filename.concat dir "flight.json")
         ~recorder_slots:256 ~socket ())
  in
  let lit =
    Fun.protect
      ~finally:(fun () ->
        Server.stop srv;
        rm_rf dir)
      (fun () ->
        Alcotest.(check bool)
          "server ready" true
          (Client.wait_ready ~socket ());
        compile_via socket "jacobi")
  in
  Alcotest.(check string) "spmd identical with telemetry on" plain lit

let test_flight_wraparound () =
  Obs.Recorder.start ~capacity:16 ();
  Fun.protect
    ~finally:(fun () -> Obs.Recorder.stop ())
    (fun () ->
      for i = 0 to 39 do
        Obs.Recorder.record
          ~fields:[ ("i", Obs.Int i) ]
          (Printf.sprintf "e-%d" i)
      done;
      Alcotest.(check int) "capacity" 16 (Obs.Recorder.capacity ());
      Alcotest.(check int) "recorded" 40 (Obs.Recorder.recorded ());
      let es = Obs.Recorder.entries () in
      Alcotest.(check int) "ring keeps capacity entries" 16 (List.length es);
      Alcotest.(check string)
        "oldest surviving entry" "e-24"
        (List.hd es).Obs.Recorder.fr_event;
      Alcotest.(check string)
        "newest entry" "e-39"
        (List.nth es 15).Obs.Recorder.fr_event;
      let v = Jsonx.of_string (Obs.Recorder.to_json ()) in
      Alcotest.(check (option int)) "dropped" (Some 24) (Jsonx.get_int v "dropped");
      match Jsonx.get_list v "entries" with
      | Some entries -> Alcotest.(check int) "json entries" 16 (List.length entries)
      | None -> Alcotest.fail "bundle has no entries")

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping" `Quick test_ping;
          Alcotest.test_case "compile builtin" `Quick test_compile_builtin;
          Alcotest.test_case "compile inline" `Quick test_compile_inline;
          Alcotest.test_case "run" `Quick test_run;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "errors",
        [
          Alcotest.test_case "unknown source" `Quick test_unknown_source;
          Alcotest.test_case "bad source text" `Quick test_bad_source_text;
          Alcotest.test_case "bad engine" `Quick test_bad_engine;
          Alcotest.test_case "protocol errors" `Quick test_protocol_errors;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "overloaded" `Quick test_overloaded;
          Alcotest.test_case "shutdown op" `Quick test_shutdown_op;
          Alcotest.test_case "socket conflict" `Quick test_socket_conflict;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "telemetry section + rid" `Quick
            test_telemetry_section;
          Alcotest.test_case "stats v2 gauges" `Quick test_stats_v2;
          Alcotest.test_case "dump op" `Quick test_dump_op;
          Alcotest.test_case "dump on exception" `Quick
            test_dump_on_exception;
          Alcotest.test_case "log lines parse" `Quick test_log_lines;
          Alcotest.test_case "telemetry inert" `Quick test_telemetry_inert;
          Alcotest.test_case "flight ring wraparound" `Quick
            test_flight_wraparound;
        ] );
      ( "warm",
        [
          Alcotest.test_case "second server over same cache" `Slow
            test_warm_second_server;
          Alcotest.test_case "cross-process warm compile" `Slow
            test_cross_process_warm;
        ] );
    ]
