(* The serve subsystem end to end: protocol round trips against an
   in-process server, error triage, admission control, shutdown, and the
   property the service exists for — a second server over the same disk
   cache answers byte-identically to the first, out of cache.  The last
   test drives the installed dhpfc binary twice as separate processes
   against a shared --disk-cache directory. *)

open Serve

let counter = ref 0

let fresh_dir () =
  incr counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dhpf-serve-test-%d-%d" (Unix.getpid ()) !counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun e -> rm_rf (Filename.concat path e))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let small = Codes.all_small ()
let lookup name = List.assoc_opt name small
let opts = Dhpf.Gen.default_options

let mk_cfg ?(workers = 2) ?(max_queue = 16) ?disk_cache ~socket () =
  {
    Server.version = "test";
    socket;
    workers;
    max_queue;
    disk_cache;
    lookup;
    quiet = true;
  }

(* launch, block until the ping answers, run the body, always stop *)
let with_server ?workers ?max_queue ?disk_cache f =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let srv =
    Server.launch (mk_cfg ?workers ?max_queue ?disk_cache ~socket ())
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      rm_rf dir)
    (fun () ->
      Alcotest.(check bool)
        "server ready" true
        (Client.wait_ready ~socket ());
      f socket)

let status r = Option.value (Jsonx.get_str r "status") ~default:"?"
let code r = Option.value (Jsonx.get_str r "code") ~default:"?"

let check_error ~code:expect r =
  Alcotest.(check string) "status" "error" (status r);
  Alcotest.(check string) "code" expect (code r)

(* -- basic round trips ---------------------------------------------- *)

let test_ping () =
  with_server @@ fun socket ->
  let r = Client.request ~socket Proto.Ping in
  Alcotest.(check string) "status" "ok" (status r);
  Alcotest.(check string)
    "schema" Proto.schema
    (Option.value (Jsonx.get_str r "schema") ~default:"?");
  Alcotest.(check string)
    "version" "test"
    (Option.value (Jsonx.get_str r "version") ~default:"?")

let test_compile_builtin () =
  with_server @@ fun socket ->
  let r =
    Client.request ~socket
      (Proto.Compile { label = "jacobi"; source = None; opts })
  in
  Alcotest.(check string) "status" "ok" (status r);
  let report =
    match Jsonx.get r "report" with
    | Some rep -> rep
    | None -> Alcotest.fail "compile response has no report"
  in
  Alcotest.(check string)
    "report schema" "dhpf-report/1"
    (Option.value (Jsonx.get_str report "schema") ~default:"?");
  (match Jsonx.get_int report "events" with
  | Some n -> Alcotest.(check bool) "events > 0" true (n > 0)
  | None -> Alcotest.fail "report has no events count");
  match Jsonx.get_str r "spmd" with
  | Some s -> Alcotest.(check bool) "spmd nonempty" true (String.length s > 0)
  | None -> Alcotest.fail "compile response has no spmd text"

let test_compile_inline () =
  with_server @@ fun socket ->
  let r =
    Client.request ~socket
      (Proto.Compile
         {
           label = "inline-figure2";
           source = Some (Codes.figure2 ());
           opts;
         })
  in
  Alcotest.(check string) "status" "ok" (status r);
  let report =
    match Jsonx.get r "report" with
    | Some rep -> rep
    | None -> Alcotest.fail "no report"
  in
  Alcotest.(check string)
    "labelled src" "inline-figure2"
    (Option.value (Jsonx.get_str report "src") ~default:"?")

let test_run () =
  with_server @@ fun socket ->
  let r =
    Client.request ~socket
      (Proto.Run
         {
           label = "figure2";
           source = None;
           opts;
           nprocs = 4;
           params = [];
           engine = "closure";
         })
  in
  Alcotest.(check string) "status" "ok" (status r);
  let run =
    match Jsonx.get r "run" with
    | Some run -> run
    | None -> Alcotest.fail "run response has no run section"
  in
  Alcotest.(check (option int)) "nprocs" (Some 4) (Jsonx.get_int run "nprocs");
  Alcotest.(check (option string))
    "engine" (Some "closure")
    (Jsonx.get_str run "engine");
  (match Jsonx.get_int run "msgs" with
  | Some n -> Alcotest.(check bool) "msgs >= 0" true (n >= 0)
  | None -> Alcotest.fail "no msgs");
  match Jsonx.get_num run "speedup" with
  | Some s -> Alcotest.(check bool) "speedup finite" true (Float.is_finite s)
  | None -> Alcotest.fail "no speedup"

(* -- error triage ---------------------------------------------------- *)

let test_unknown_source () =
  with_server @@ fun socket ->
  check_error ~code:"parse"
    (Client.request ~socket
       (Proto.Compile { label = "no-such-program"; source = None; opts }))

let test_bad_source_text () =
  with_server @@ fun socket ->
  check_error ~code:"parse"
    (Client.request ~socket
       (Proto.Compile
          { label = "junk"; source = Some "real a(; this is not hpf"; opts }))

let test_bad_engine () =
  with_server @@ fun socket ->
  check_error ~code:"parse"
    (Client.request ~socket
       (Proto.Run
          {
            label = "figure2";
            source = None;
            opts;
            nprocs = 4;
            params = [];
            engine = "quantum";
          }))

let test_protocol_errors () =
  with_server @@ fun socket ->
  (* a syntactically valid request with an op no constructor produces *)
  check_error ~code:"protocol"
    (Client.request_json ~socket
       (Jsonx.Obj [ ("op", Jsonx.Str "frobnicate") ]));
  check_error ~code:"protocol"
    (Client.request_json ~socket (Jsonx.Obj [ ("note", Jsonx.Str "no op") ]));
  (* a frame that is not JSON at all, below the client's builders *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Proto.write_frame fd "{this is not json";
      match Proto.read_json fd with
      | Some r -> check_error ~code:"protocol" r
      | None -> Alcotest.fail "server closed without a protocol error")

let test_stats () =
  with_server @@ fun socket ->
  ignore
    (Client.request ~socket
       (Proto.Compile { label = "figure2"; source = None; opts }));
  let r = Client.request ~socket Proto.Stats in
  Alcotest.(check string) "status" "ok" (status r);
  (match Jsonx.get_int r "served" with
  | Some n -> Alcotest.(check bool) "served >= 1" true (n >= 1)
  | None -> Alcotest.fail "no served counter");
  (match Jsonx.get r "iset" with
  | Some (Jsonx.Obj kvs) ->
      Alcotest.(check bool)
        "iset counters include disk lookups" true
        (List.mem_assoc "disk lookups" kvs)
  | _ -> Alcotest.fail "no iset counter object");
  match Jsonx.get r "metrics" with
  | Some (Jsonx.Obj _) -> ()
  | _ -> Alcotest.fail "no embedded metrics registry"

(* -- admission control and shutdown ---------------------------------- *)

let test_overloaded () =
  (* max_queue 0: every admission decision rejects, so any request —
     including a ping — gets the structured overloaded response.
     with_server's readiness ping would never succeed, so launch by
     hand. *)
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let srv = Server.launch (mk_cfg ~max_queue:0 ~socket ()) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      rm_rf dir)
    (fun () ->
      let rec attempt n =
        match Client.request ~socket Proto.Ping with
        | r -> r
        | exception (Client.Connect_error _ | Proto.Proto_error _)
          when n > 0 ->
            Unix.sleepf 0.02;
            attempt (n - 1)
      in
      let r = attempt 50 in
      Alcotest.(check string) "status" "overloaded" (status r))

let test_shutdown_op () =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let srv = Server.launch (mk_cfg ~socket ()) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      rm_rf dir)
    (fun () ->
      Alcotest.(check bool)
        "server ready" true
        (Client.wait_ready ~socket ());
      let r = Client.request ~socket Proto.Shutdown in
      Alcotest.(check string) "status" "ok" (status r);
      Alcotest.(check (option bool))
        "stopping" (Some true)
        (Jsonx.get_bool r "stopping");
      Server.wait srv;
      Alcotest.(check bool)
        "socket unlinked" false
        (Sys.file_exists socket);
      match Client.request ~socket Proto.Ping with
      | _ -> Alcotest.fail "server still answering after shutdown"
      | exception Client.Connect_error _ -> ())

let test_socket_conflict () =
  with_server @@ fun socket ->
  (* the socket belongs to a live server: a second launch must refuse *)
  match Server.launch (mk_cfg ~socket ()) with
  | srv ->
      Server.stop srv;
      Alcotest.fail "second server claimed a live socket"
  | exception Server.Bind_error _ -> ()

(* -- warm service over a shared disk cache --------------------------- *)

let compile_via socket label =
  let r =
    Client.request ~socket (Proto.Compile { label; source = None; opts })
  in
  Alcotest.(check string) "status" "ok" (status r);
  match Jsonx.get_str r "spmd" with
  | Some s -> s
  | None -> Alcotest.fail "no spmd text"

let test_warm_second_server () =
  let cache = fresh_dir () in
  let saved_dir = Iset.Diskcache.dir () in
  Fun.protect
    ~finally:(fun () ->
      Iset.Diskcache.set_dir saved_dir;
      rm_rf cache)
    (fun () ->
      (* first server generation populates the disk cache *)
      let cold =
        with_server ~disk_cache:cache @@ fun socket ->
        compile_via socket "jacobi"
      in
      (* simulate a process restart: in-memory tables and counters go,
         the disk cache stays *)
      Iset.Cache.clear_all ();
      Iset.Stats.reset ();
      let warm, disk_hits =
        with_server ~disk_cache:cache @@ fun socket ->
        let spmd = compile_via socket "jacobi" in
        let stats = Client.request ~socket Proto.Stats in
        let hits =
          match Jsonx.get stats "iset" with
          | Some iset ->
              Option.value (Jsonx.get_int iset "disk hits") ~default:0
          | None -> 0
        in
        (spmd, hits)
      in
      Alcotest.(check string) "warm spmd byte-identical" cold warm;
      Alcotest.(check bool) "warm served from disk" true (disk_hits > 0);
      (* and both match a plain batch compile with every cache off *)
      Iset.Cache.set_enabled false;
      let direct =
        Fun.protect
          ~finally:(fun () -> Iset.Cache.set_enabled true)
          (fun () ->
            let chk =
              Hpf.Sema.analyze_source (List.assoc "jacobi" small)
            in
            let compiled =
              Dhpf.Gen.compile ~opts ~phase:(Dhpf.Phase.create ()) chk
            in
            Dhpf.Spmd.program_to_string compiled.Dhpf.Gen.cprog)
      in
      Alcotest.(check string) "matches uncached batch compile" direct cold)

(* -- cross-process warm compile through the dhpfc binary -------------- *)

(* resolve relative to this executable, not the cwd: dune runs tests
   from the build directory, a bare `./test_serve.exe` may not *)
let dhpfc =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "dhpfc.exe"))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_cross_process_warm () =
  if not (Sys.file_exists dhpfc) then
    Alcotest.skip ()
  else begin
    let dir = fresh_dir () in
    Fun.protect
      ~finally:(fun () -> rm_rf dir)
      (fun () ->
        let cache = Filename.concat dir "cache" in
        let out n = Filename.concat dir n in
        let run args redirect =
          Sys.command
            (Printf.sprintf "%s %s %s 2>/dev/null" dhpfc args redirect)
        in
        Alcotest.(check int)
          "cold compile exits 0" 0
          (run
             (Printf.sprintf "compile figure2 --show-spmd --disk-cache %s"
                cache)
             ("> " ^ out "cold.txt"));
        Alcotest.(check int)
          "warm compile exits 0" 0
          (run
             (Printf.sprintf
                "compile figure2 --show-spmd --disk-cache %s --report-json %s"
                cache (out "report.json"))
             ("> " ^ out "warm.txt"));
        Alcotest.(check string)
          "warm process output byte-identical"
          (read_file (out "cold.txt"))
          (read_file (out "warm.txt"));
        let report = Jsonx.of_string (read_file (out "report.json")) in
        let counters =
          match Jsonx.get report "cache" with
          | Some c -> Option.value (Jsonx.get c "counters") ~default:Jsonx.Null
          | None -> Jsonx.Null
        in
        match Jsonx.get_int counters "disk hits" with
        | Some hits ->
            Alcotest.(check bool) "cross-process disk hits" true (hits > 0)
        | None -> Alcotest.fail "report has no disk hits counter")
  end

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping" `Quick test_ping;
          Alcotest.test_case "compile builtin" `Quick test_compile_builtin;
          Alcotest.test_case "compile inline" `Quick test_compile_inline;
          Alcotest.test_case "run" `Quick test_run;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "errors",
        [
          Alcotest.test_case "unknown source" `Quick test_unknown_source;
          Alcotest.test_case "bad source text" `Quick test_bad_source_text;
          Alcotest.test_case "bad engine" `Quick test_bad_engine;
          Alcotest.test_case "protocol errors" `Quick test_protocol_errors;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "overloaded" `Quick test_overloaded;
          Alcotest.test_case "shutdown op" `Quick test_shutdown_op;
          Alcotest.test_case "socket conflict" `Quick test_socket_conflict;
        ] );
      ( "warm",
        [
          Alcotest.test_case "second server over same cache" `Slow
            test_warm_second_server;
          Alcotest.test_case "cross-process warm compile" `Slow
            test_cross_process_warm;
        ] );
    ]
