(* Native-engine differential suite: the generated-OCaml backend must be
   bit-identical to the closure engine and the tree-walking interpreter —
   element values, scalars, simulated clocks, message/byte counters and
   per-pair communication cells — on every built-in benchmark, under
   fault schedules, and on randomly generated programs. Also covers the
   source-hash build cache (second make of the same program must hit). *)

let three_way ?(seeds = [ 7; 21 ]) src =
  let chk = Hpf.Sema.analyze_source src in
  match Spmdsim.Diffcheck.engines ~seeds chk with
  | Spmdsim.Diffcheck.Pass _ -> ()
  | out -> Alcotest.failf "%a" Spmdsim.Diffcheck.pp_outcome out

(* one case per built-in benchmark, fault-free plus two fault schedules,
   all three engines agreeing exactly *)
let benchmark_cases =
  List.map
    (fun (name, src) ->
      Alcotest.test_case name `Slow (fun () -> three_way src))
    (Codes.all_small ())

(* random programs: reuse the shape of the serial-oracle fuzzer (random
   distribution, alignments, stencil shifts) but assert the stronger
   three-engine bit-identity property instead of a tolerance check.
   Count is kept small because each distinct program costs one
   out-of-process ocamlopt build on a cold cache. *)
let gen_src =
  QCheck.Gen.(
    let shift = int_range (-1) 1 in
    let dist =
      oneofl
        [
          ("processors p(2)", "distribute t(block,*) onto p");
          ("processors p(2)", "distribute t(*,block) onto p");
          ("processors p(2,2)", "distribute t(block,block) onto p");
          ("processors p(2)", "distribute t(cyclic,*) onto p");
        ]
    in
    let align name =
      map
        (fun k ->
          match k with
          | 0 -> Printf.sprintf "align %s(i,j) with t(i,j)" name
          | 1 -> Printf.sprintf "align %s(i,j) with t(i+1,j)" name
          | _ -> Printf.sprintf "align %s(i,j) with t(j,i)" name)
        (int_range 0 2)
    in
    let ref_ = pair (oneofl [ "a"; "b" ]) (pair shift shift) in
    let stmt = pair ref_ (list_size (int_range 1 3) ref_) in
    map
      (fun ((procs, dist), (aa, ab), stmts) ->
        let buf = Buffer.create 1024 in
        let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
        pf "program nfuzz\n  parameter n = 9\n  real a(n,n), b(n,n)\n";
        pf "  %s\n  template t(n+1,n+1)\n  %s\n  %s\n  %s\n" procs aa ab dist;
        pf "  do i = 1, n\n    do j = 1, n\n";
        pf "      a(i,j) = i + 2*j + mod(i*j, 5)\n";
        pf "      b(i,j) = 2*i - j + mod(i+j, 3)\n";
        pf "    end do\n  end do\n";
        List.iter
          (fun ((lhs, ld), refs) ->
            let sub (di, dj) =
              let f v d = if d = 0 then v else Printf.sprintf "%s%+d" v d in
              Printf.sprintf "%s,%s" (f "i" di) (f "j" dj)
            in
            pf "  do i = 2, n-1\n    do j = 2, n-1\n";
            let rhs =
              String.concat " + "
                (List.map
                   (fun (arr, d) -> Printf.sprintf "0.5*%s(%s)" arr (sub d))
                   refs)
            in
            pf "      %s(%s) = %s + 1.0\n" lhs (sub ld) rhs;
            pf "    end do\n  end do\n")
          stmts;
        pf "end\n";
        Buffer.contents buf)
      (triple dist
         (pair (align "a") (align "b"))
         (list_size (int_range 1 2) stmt)))

let prop_three_way_random =
  QCheck.Test.make ~count:5
    ~name:"random programs are bit-identical across all three engines"
    (QCheck.make ~print:Fun.id gen_src)
    (fun src ->
      match Hpf.Sema.analyze_source src with
      | chk -> (
          match Spmdsim.Diffcheck.engines ~seeds:[ 1 ] chk with
          | Spmdsim.Diffcheck.Pass _ -> true
          | out ->
              QCheck.Test.fail_reportf "%a" Spmdsim.Diffcheck.pp_outcome out
          | exception Dhpf.Gen.Unsupported _ -> QCheck.assume_fail ()
          | exception Dhpf.Layout.Unsupported _ -> QCheck.assume_fail ())
      | exception Hpf.Sema.Error _ -> QCheck.assume_fail ())

(* the source-hash cache: building the same program twice into a fresh
   cache directory must invoke the compiler exactly once and hit on the
   second make, and both runs must produce bit-identical results *)
let test_cache_hit () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dhpf-native-test-%d" (Unix.getpid ()))
  in
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  let chk = Hpf.Sema.analyze_source (Codes.jacobi ()) in
  let cprog = (Dhpf.Gen.compile chk).Dhpf.Gen.cprog in
  let run () =
    let sim = Spmdsim.Native.make ~cache_dir:dir ~nprocs:4 cprog in
    ignore (Spmdsim.Compile.run sim);
    sim
  in
  let s1 = run () in
  let s2 = run () in
  let find name =
    List.find_opt
      (fun s -> s.Obs.Metrics.m_name = name)
      (Obs.Metrics.snapshot ())
  in
  (match find "native/build_s" with
  | Some { m_value = VHisto h; _ } ->
      Alcotest.(check int) "exactly one compiler invocation" 1 h.hs_count
  | _ -> Alcotest.fail "native/build_s histogram missing");
  (match find "native/cache_hit" with
  | Some { m_value = VCounter c; _ } ->
      Alcotest.(check bool) "second make hit the cache" true (c >= 1.0)
  | _ -> Alcotest.fail "native/cache_hit counter missing");
  List.iter
    (fun idx ->
      let a = Spmdsim.Compile.get_elem s1 "a" idx in
      let b = Spmdsim.Compile.get_elem s2 "a" idx in
      Alcotest.(check bool)
        (Printf.sprintf "a(%s) bit-identical across cache hit"
           (String.concat "," (List.map string_of_int idx)))
        true
        (Int64.bits_of_float a = Int64.bits_of_float b))
    [ [ 1; 1 ]; [ 8; 8 ]; [ 128; 128 ] ];
  Obs.Metrics.disable ();
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let () =
  Alcotest.run "native"
    [
      ("benchmarks", benchmark_cases);
      ( "random",
        List.map QCheck_alcotest.to_alcotest [ prop_three_way_random ] );
      ( "cache",
        [ Alcotest.test_case "source-hash cache hit" `Slow test_cache_hit ] );
    ]
