(* Resilience suite for the fault-injection layer: schedules are
   reproducible from their seed, adversarial transports (drop+retransmit,
   duplicate delivery, reordering, stragglers) leave computed values
   bit-identical to the fault-free run and matching the serial oracle, and
   deadlocks surface as structured wait-for-cycle diagnostics. *)

open Dhpf

let jacobi () = Codes.jacobi ~n:16 ~iters:2 ~procs:(Codes.Fixed (2, 2)) ()
let gauss () = Codes.gauss ~n:8 ~pivot:2 ~procs:(Codes.Fixed (2, 2)) ()
let tomcatv () = Codes.tomcatv ~n:17 ~iters:2 ~procs:(Codes.Symbolic2 1) ()

let exec ?faults ~nprocs prog =
  let sim = Spmdsim.Exec.make ?faults ~nprocs prog in
  let stats = Spmdsim.Exec.run sim in
  (sim, stats)

(* enumerate every element of every array of a checked program *)
let iter_elems chk f =
  let sref = Spmdsim.Serial.run chk in
  Hashtbl.iter
    (fun aname (ai : Hpf.Sema.array_info) ->
      let bounds =
        List.map
          (fun (lo, hi) ->
            ( Spmdsim.Serial.eval_iexpr sref.r_state lo,
              Spmdsim.Serial.eval_iexpr sref.r_state hi ))
          ai.adims
      in
      let rec go idx = function
        | [] -> f aname (List.rev idx)
        | (lo, hi) :: rest ->
            for x = lo to hi do
              go (x :: idx) rest
            done
      in
      go [] bounds)
    chk.Hpf.Sema.env.arrays

(* ---- (a) determinism: same seed => same schedule, same stats ---- *)

let test_schedule_determinism () =
  let sp = Spmdsim.Fault.default ~seed:42 in
  (* the plan is a pure function of the message identity *)
  for ev = 0 to 5 do
    for seq = 0 to 5 do
      let p1 = Spmdsim.Fault.plan sp ~event:ev ~src:1 ~dst:2 ~seq in
      let p2 = Spmdsim.Fault.plan sp ~event:ev ~src:1 ~dst:2 ~seq in
      Alcotest.(check bool) "identical plans" true (p1 = p2)
    done
  done;
  (* different seeds give different schedules somewhere *)
  let differs =
    List.exists
      (fun seq ->
        Spmdsim.Fault.plan sp ~event:1 ~src:0 ~dst:1 ~seq
        <> Spmdsim.Fault.plan (Spmdsim.Fault.default ~seed:43) ~event:1 ~src:0
             ~dst:1 ~seq)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Alcotest.(check bool) "seed changes the schedule" true differs

let test_run_determinism () =
  let chk = Hpf.Sema.analyze_source (jacobi ()) in
  let compiled = Gen.compile chk in
  let faults = Spmdsim.Fault.default ~seed:7 in
  let _, st1 = exec ~faults ~nprocs:4 compiled.cprog in
  let _, st2 = exec ~faults ~nprocs:4 compiled.cprog in
  Alcotest.(check bool) "identical stats for identical seeds" true (st1 = st2);
  let _, st3 = exec ~faults:(Spmdsim.Fault.default ~seed:8) ~nprocs:4 compiled.cprog in
  Alcotest.(check bool) "a different seed perturbs the timing" true
    (st3.s_time <> st1.s_time || st3.s_retransmits <> st1.s_retransmits)

(* ---- (b) value identity under adversarial transports ---- *)

let check_identical name src faults =
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Gen.compile chk in
  let clean, _ = exec ~nprocs:4 compiled.cprog in
  let faulty, stats = exec ~faults ~nprocs:4 compiled.cprog in
  let bad = ref 0 and total = ref 0 in
  iter_elems chk (fun aname idx ->
      incr total;
      let a = Spmdsim.Exec.get_elem clean aname idx in
      let b = Spmdsim.Exec.get_elem faulty aname idx in
      if a <> b then incr bad);
  Alcotest.(check int) (name ^ ": elements differ from fault-free run") 0 !bad;
  Alcotest.(check bool) (name ^ ": nonzero elements compared") true (!total > 0);
  stats

let drop_spec =
  { (Spmdsim.Fault.default ~seed:11) with
    drop_prob = 0.5; max_retries = 4; dup_prob = 0.0; delay_prob = 0.0;
    reorder_prob = 0.0; skew_max = 1.0 }

let dup_spec =
  { (Spmdsim.Fault.default ~seed:12) with
    drop_prob = 0.0; dup_prob = 0.9; delay_prob = 0.0; reorder_prob = 0.0;
    skew_max = 1.0 }

let chaos_spec = Spmdsim.Fault.default ~seed:13

let test_drop_retransmit () =
  let st = check_identical "jacobi/drop" (jacobi ()) drop_spec in
  Alcotest.(check bool) "retransmits happened" true (st.s_retransmits > 0);
  Alcotest.(check bool) "timeouts fired" true (st.s_timeouts > 0);
  ignore (check_identical "gauss/drop" (gauss ()) drop_spec)

let test_duplicate_delivery () =
  let st = check_identical "jacobi/dup" (jacobi ()) dup_spec in
  Alcotest.(check bool) "duplicates were detected and discarded" true
    (st.s_dups_delivered > 0);
  ignore (check_identical "gauss/dup" (gauss ()) dup_spec)

let test_chaos_all_benchmarks () =
  List.iter
    (fun (name, src) ->
      ignore (check_identical (name ^ "/chaos") src chaos_spec))
    [ ("jacobi", jacobi ()); ("gauss", gauss ()); ("tomcatv", tomcatv ()) ]

let test_faults_cost_time () =
  let chk = Hpf.Sema.analyze_source (jacobi ()) in
  let compiled = Gen.compile chk in
  let _, clean = exec ~nprocs:4 compiled.cprog in
  let _, dropped = exec ~faults:drop_spec ~nprocs:4 compiled.cprog in
  Alcotest.(check bool) "retransmit timeouts slow the run" true
    (dropped.s_time > clean.s_time);
  let skew_spec =
    { Spmdsim.Fault.none with seed = 21; skew_max = 3.0 }
  in
  let _, skewed = exec ~faults:skew_spec ~nprocs:4 compiled.cprog in
  Alcotest.(check bool) "stragglers slow the run" true
    (skewed.s_time > clean.s_time);
  Alcotest.(check int) "skew alone neither drops nor duplicates" 0
    (skewed.s_retransmits + skewed.s_dups_delivered)

(* serial-oracle matching under faults, via the differential harness *)
let test_diffcheck_oracle () =
  List.iter
    (fun (name, src) ->
      let chk = Hpf.Sema.analyze_source src in
      match Spmdsim.Diffcheck.run ~seeds:[ 1; 2; 3 ] chk with
      | Spmdsim.Diffcheck.Pass { runs } ->
          Alcotest.(check int) (name ^ ": all runs compared") 4 runs
      | out -> Alcotest.fail (Fmt.str "%s: %a" name Spmdsim.Diffcheck.pp_outcome out))
    [ ("jacobi", jacobi ()); ("gauss", gauss ()) ]

(* ---- (c) structured deadlock diagnostics ---- *)

(* a hand-built two-processor program where proc 0 receives from proc 1 and
   proc 1 receives from proc 0, with no sends: a genuine wait-for cycle *)
let cyclic_prog : Spmd.program =
  let open Iset.Codegen in
  {
    proc_dims =
      [ { Spmd.pd_mode = Spmd.VpIsPhys; pd_extent = EInt 2; pd_tlo = EInt 0;
          pd_bsize = None } ];
    proc_extents = [ EInt 2 ];
    params = [];
    arrays = [];
    scalars = [];
    events = [];
    main =
      [
        Spmd.If (CEq0 (EVar "m$1"), [ Spmd.Recv { event = 7; src = [ EInt 1 ] } ]);
        Spmd.If
          ( CEq0 (ESub (EVar "m$1", EInt 1)),
            [ Spmd.Recv { event = 8; src = [ EInt 0 ] } ] );
      ];
    subs = [];
  }

let test_deadlock_cycle () =
  let sim = Spmdsim.Exec.make ~nprocs:2 cyclic_prog in
  match Spmdsim.Exec.run sim with
  | _ -> Alcotest.fail "expected a deadlock"
  | exception Spmdsim.Exec.Deadlock d ->
      Alcotest.(check int) "both procs stuck" 2 (List.length d.dg_waiting);
      Alcotest.(check (list int)) "cycle names both processors" [ 0; 1 ]
        (List.sort compare d.dg_cycle);
      List.iter
        (fun (w : Spmdsim.Exec.proc_wait) ->
          match w.w_reason with
          | Spmdsim.Exec.WaitRecv r ->
              let want_event, want_src = if w.w_pid = 0 then (7, 1) else (8, 0) in
              Alcotest.(check int)
                (Printf.sprintf "proc %d waits on the right event" w.w_pid)
                want_event r.wr_event;
              Alcotest.(check int)
                (Printf.sprintf "proc %d waits on the right peer" w.w_pid)
                want_src r.wr_src_pid;
              Alcotest.(check int) "nothing queued on the channel" 0 r.wr_queued
          | _ -> Alcotest.fail "expected recv waits")
        d.dg_waiting;
      let txt = Spmdsim.Exec.diagnostic_to_string d in
      Alcotest.(check bool) "printer shows the cycle" true
        (let has needle =
           let nl = String.length needle and tl = String.length txt in
           let rec go i = i + nl <= tl && (String.sub txt i nl = needle || go (i + 1)) in
           go 0
         in
         has "wait-for cycle" && has "event 7" && has "event 8")

(* a reduce/recv mismatch also diagnoses: proc 0 reaches the collective
   while proc 1 blocks on a recv that is never sent *)
let mixed_stall_prog : Spmd.program =
  let open Iset.Codegen in
  {
    proc_dims =
      [ { Spmd.pd_mode = Spmd.VpIsPhys; pd_extent = EInt 2; pd_tlo = EInt 0;
          pd_bsize = None } ];
    proc_extents = [ EInt 2 ];
    params = [];
    arrays = [];
    scalars = [ "s" ];
    events = [];
    main =
      [
        Spmd.If
          ( CEq0 (ESub (EVar "m$1", EInt 1)),
            [ Spmd.Recv { event = 9; src = [ EInt 0 ] } ] );
        Spmd.Reduce { scalar = "s"; op = Spmd.RSum };
      ];
    subs = [];
  }

let test_mixed_stall () =
  let sim = Spmdsim.Exec.make ~nprocs:2 mixed_stall_prog in
  match Spmdsim.Exec.run sim with
  | _ -> Alcotest.fail "expected a deadlock"
  | exception Spmdsim.Exec.Deadlock d ->
      let reasons =
        List.map
          (fun (w : Spmdsim.Exec.proc_wait) ->
            match w.w_reason with
            | Spmdsim.Exec.WaitRecv _ -> `Recv
            | Spmdsim.Exec.WaitReduce -> `Reduce
            | Spmdsim.Exec.WaitReduceArr _ -> `ReduceArr)
          d.dg_waiting
      in
      Alcotest.(check bool) "one proc at the collective, one at a recv" true
        (List.mem `Recv reasons && List.mem `Reduce reasons)

let () =
  Alcotest.run "faults"
    [
      ( "determinism",
        [
          Alcotest.test_case "schedule is a pure function of the seed" `Quick
            test_schedule_determinism;
          Alcotest.test_case "same seed, same stats" `Quick test_run_determinism;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "drop+retransmit preserves values" `Quick
            test_drop_retransmit;
          Alcotest.test_case "duplicate delivery preserves values" `Quick
            test_duplicate_delivery;
          Alcotest.test_case "full chaos on jacobi/gauss/tomcatv" `Quick
            test_chaos_all_benchmarks;
          Alcotest.test_case "faults cost simulated time" `Quick
            test_faults_cost_time;
          Alcotest.test_case "diffcheck vs serial oracle" `Quick
            test_diffcheck_oracle;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "wait-for cycle extraction" `Quick test_deadlock_cycle;
          Alcotest.test_case "mixed recv/collective stall" `Quick test_mixed_stall;
        ] );
    ]
