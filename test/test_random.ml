(* Differential fuzzing of the whole compiler: random small HPF programs
   (random distributions, alignments, stencil shapes, ON_HOME choices) are
   compiled, executed on the simulated machine, and compared element by
   element against the serial reference interpreter. Any dropped or
   misplaced communication, wrong loop bound, wrong guard or wrong ownership
   either mismatches or raises inside the simulator. *)

let n = 9

type dist = DBlockStar | DStarBlock | DBlockBlock | DCyclicStar | DCyclicCyclic

let dist_txt = function
  | DBlockStar -> ("processors p(2)", "distribute t(block,*) onto p")
  | DStarBlock -> ("processors p(2)", "distribute t(*,block) onto p")
  | DBlockBlock -> ("processors p(2,2)", "distribute t(block,block) onto p")
  | DCyclicStar -> ("processors p(2)", "distribute t(cyclic,*) onto p")
  | DCyclicCyclic -> ("processors p(2,2)", "distribute t(cyclic,cyclic) onto p")

type align = AId | AShift | ASwap

let align_txt name = function
  | AId -> Printf.sprintf "align %s(i,j) with t(i,j)" name
  | AShift -> Printf.sprintf "align %s(i,j) with t(i+1,j)" name
  | ASwap -> Printf.sprintf "align %s(i,j) with t(j,i)" name

type prog_spec = {
  dist : dist;
  align_a : align;
  align_b : align;
  step_i : int;  (* step of the outer loop of every compute nest *)
  stmts : ((string * (int * int)) * (string * (int * int)) list * bool) list;
      (* (lhs array, lhs shift), rhs refs (array, shifts), on_home other *)
}

let gen_spec =
  QCheck.Gen.(
    let shift = int_range (-1) 1 in
    let ref_ = pair (oneofl [ "a"; "b" ]) (pair shift shift) in
    let stmt =
      triple
        (pair (oneofl [ "a"; "b" ]) (pair shift shift))
        (list_size (int_range 1 3) ref_)
        (frequency [ (4, return false); (1, return true) ])
    in
    map
      (fun ((dist, step_i), (aa, ab), stmts) ->
        { dist; align_a = aa; align_b = ab; step_i; stmts })
      (triple
         (pair
            (oneofl [ DBlockStar; DStarBlock; DBlockBlock; DCyclicStar; DCyclicCyclic ])
            (frequencyl [ (3, 1); (1, 2) ]))
         (pair (oneofl [ AId; AShift; ASwap ]) (oneofl [ AId; AShift; ASwap ]))
         (list_size (int_range 1 3) stmt)))

let src_of_spec spec =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let procs, dist = dist_txt spec.dist in
  pf "program fuzz\n";
  pf "  parameter n = %d\n" n;
  (* the shifted alignment needs a template one larger than the arrays *)
  pf "  real a(n,n), b(n,n)\n";
  pf "  %s\n" procs;
  pf "  template t(n+1,n+1)\n";
  pf "  %s\n" (align_txt "a" spec.align_a);
  pf "  %s\n" (align_txt "b" spec.align_b);
  pf "  %s\n" dist;
  pf "  do i = 1, n\n    do j = 1, n\n";
  pf "      a(i,j) = i + 2*j + mod(i*j, 5)\n";
  pf "      b(i,j) = 2*i - j + mod(i+j, 3)\n";
  pf "    end do\n  end do\n";
  List.iter
    (fun ((lhs, (li, lj)), refs, oh) ->
      let sub (di, dj) =
        let f v d = if d = 0 then v else Printf.sprintf "%s%+d" v d in
        Printf.sprintf "%s,%s" (f "i" di) (f "j" dj)
      in
      (if spec.step_i = 1 then pf "  do i = 2, n-1\n"
       else pf "  do i = 2, n-1, %d\n" spec.step_i);
      pf "    do j = 2, n-1\n";
      if oh then begin
        let other = if lhs = "a" then "b" else "a" in
        pf "      !on_home %s(i,j)\n" other
      end;
      let rhs =
        String.concat " + "
          (List.map (fun (arr, d) -> Printf.sprintf "0.5*%s(%s)" arr (sub d)) refs)
      in
      pf "      %s(%s) = %s + 1.0\n" lhs (sub (li, lj)) rhs;
      pf "    end do\n  end do\n")
    spec.stmts;
  pf "end\n";
  Buffer.contents buf

let validate spec =
  let src = src_of_spec spec in
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Dhpf.Gen.compile chk in
  let sref = Spmdsim.Serial.run chk in
  let sim = Spmdsim.Exec.make ~nprocs:4 compiled.Dhpf.Gen.cprog in
  let _ = Spmdsim.Exec.run sim in
  let ok = ref true in
  List.iter
    (fun name ->
      for i = 1 to n do
        for j = 1 to n do
          let want = Spmdsim.Serial.get_elem sref name [ i; j ] in
          let got = Spmdsim.Exec.get_elem sim name [ i; j ] in
          if abs_float (want -. got) > 1e-6 *. (abs_float want +. 1.0) then ok := false
        done
      done)
    [ "a"; "b" ];
  !ok

let arb_spec = QCheck.make ~print:src_of_spec gen_spec

let prop_differential =
  QCheck.Test.make ~count:30 ~name:"compiled SPMD executions match the serial oracle"
    arb_spec
    (fun spec ->
      match validate spec with
      | ok -> ok
      | exception Dhpf.Gen.Unsupported _ -> QCheck.assume_fail ()
      | exception Dhpf.Layout.Unsupported _ -> QCheck.assume_fail ())

(* the same programs with each optimization disabled must also match *)
let prop_differential_ablated =
  let opts_list =
    [
      { Dhpf.Gen.default_options with opt_split = false };
      { Dhpf.Gen.default_options with opt_coalesce = false };
    ]
  in
  QCheck.Test.make ~count:15 ~name:"ablated configurations match the serial oracle"
    arb_spec
    (fun spec ->
      let src = src_of_spec spec in
      match Hpf.Sema.analyze_source src with
      | chk ->
          List.for_all
            (fun opts ->
              match Dhpf.Gen.compile ~opts chk with
              | compiled -> (
                  let sref = Spmdsim.Serial.run chk in
                  let sim = Spmdsim.Exec.make ~nprocs:4 compiled.Dhpf.Gen.cprog in
                  match Spmdsim.Exec.run sim with
                  | _ ->
                      let ok = ref true in
                      List.iter
                        (fun name ->
                          for i = 1 to n do
                            for j = 1 to n do
                              let want = Spmdsim.Serial.get_elem sref name [ i; j ] in
                              let got = Spmdsim.Exec.get_elem sim name [ i; j ] in
                              if abs_float (want -. got) > 1e-6 *. (abs_float want +. 1.0)
                              then ok := false
                            done
                          done)
                        [ "a"; "b" ];
                      !ok)
              | exception Dhpf.Gen.Unsupported _ -> true
              | exception Dhpf.Layout.Unsupported _ -> true)
            opts_list
      | exception Hpf.Sema.Error _ -> QCheck.assume_fail ())

(* the same random programs must also survive adversarial fault schedules:
   drop+retransmit, duplicates, reordering and stragglers, three seeds each,
   all matching the serial oracle through the differential harness *)
let prop_differential_faulted =
  QCheck.Test.make ~count:15
    ~name:"fault-injected executions match the serial oracle" arb_spec
    (fun spec ->
      let src = src_of_spec spec in
      match Hpf.Sema.analyze_source src with
      | chk -> (
          match Spmdsim.Diffcheck.run ~seeds:[ 1; 2; 3 ] chk with
          | Spmdsim.Diffcheck.Pass _ -> true
          | out ->
              QCheck.Test.fail_reportf "%a" Spmdsim.Diffcheck.pp_outcome out
          | exception Dhpf.Gen.Unsupported _ -> QCheck.assume_fail ()
          | exception Dhpf.Layout.Unsupported _ -> QCheck.assume_fail ())
      | exception Hpf.Sema.Error _ -> QCheck.assume_fail ())

(* and they must survive fail-stop crashes with checkpoint/restart
   recovery: random crash schedules, three seeds, both engines, every
   element bit-identical to the fault-free run and the per-pair
   communication table fault-invariant *)
let prop_crash_recovery =
  QCheck.Test.make ~count:10
    ~name:"crash + checkpoint/restart recovery is value-exact" arb_spec
    (fun spec ->
      let src = src_of_spec spec in
      match Hpf.Sema.analyze_source src with
      | chk -> (
          match
            Spmdsim.Diffcheck.crashes ~ckpt_every:6 ~seeds:[ 1; 2; 3 ] chk
          with
          | Spmdsim.Diffcheck.Pass _ -> true
          | out ->
              QCheck.Test.fail_reportf "%a" Spmdsim.Diffcheck.pp_outcome out
          | exception Dhpf.Gen.Unsupported _ -> QCheck.assume_fail ()
          | exception Dhpf.Layout.Unsupported _ -> QCheck.assume_fail ())
      | exception Hpf.Sema.Error _ -> QCheck.assume_fail ())

let () =
  Alcotest.run "random"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_differential;
            prop_differential_ablated;
            prop_differential_faulted;
            prop_crash_recovery;
          ] );
    ]
