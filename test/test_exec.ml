(* Unit tests for the simulated machine itself: ownership arithmetic,
   message timing, collectives, deadlock detection, and the cost model. *)

open Dhpf

let compile src = Gen.compile (Hpf.Sema.analyze_source src)

let block_1d =
  {|
program t
  parameter n = 16
  real a(n)
  processors p(4)
  template tt(n)
  align a(i) with tt(i)
  distribute tt(block) onto p
  do i = 1, n
    a(i) = i
  end do
end
|}

let test_ownership_block () =
  let c = compile block_1d in
  let sim = Spmdsim.Exec.make ~nprocs:4 c.cprog in
  let _ = Spmdsim.Exec.run sim in
  (* blocks of 4: a(5) lives on proc 1 *)
  Alcotest.(check (float 0.0)) "a(5)" 5.0 (Spmdsim.Exec.get_elem sim "a" [ 5 ]);
  Alcotest.(check (float 0.0)) "a(16)" 16.0 (Spmdsim.Exec.get_elem sim "a" [ 16 ])

let test_ownership_cyclic () =
  let src =
    {|
program t
  parameter n = 10
  real a(n)
  processors p(3)
  template tt(n)
  align a(i) with tt(i)
  distribute tt(cyclic) onto p
  do i = 1, n
    a(i) = 10.0 * i
  end do
end
|}
  in
  let c = compile src in
  let sim = Spmdsim.Exec.make ~nprocs:3 c.cprog in
  let _ = Spmdsim.Exec.run sim in
  for i = 1 to 10 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "a(%d)" i)
      (10.0 *. float_of_int i)
      (Spmdsim.Exec.get_elem sim "a" [ i ])
  done

let test_clock_monotone () =
  (* more iterations => strictly more simulated time *)
  let t iters =
    let src =
      Printf.sprintf
        {|
program t
  parameter n = 64
  real a(n)
  real s
  processors p(2)
  template tt(n)
  align a(i) with tt(i)
  distribute tt(block) onto p
  do k = 1, %d
    do i = 1, n
      a(i) = a(i) + 1.0
    end do
  end do
end
|}
        iters
    in
    let c = compile src in
    (Spmdsim.Exec.run (Spmdsim.Exec.make ~nprocs:2 c.cprog)).s_time
  in
  let t1 = t 1 and t4 = t 4 in
  Alcotest.(check bool) "4 iters slower than 1" true (t4 > t1 *. 2.0)

let test_message_cost_visible () =
  (* a shift adds latency: time with comm exceeds comm-free machine time *)
  let src =
    {|
program t
  parameter n = 32
  real a(n), b(n)
  processors p(4)
  template tt(n)
  align a(i) with tt(i)
  align b(i) with tt(i)
  distribute tt(block) onto p
  do i = 1, n
    a(i) = i
  end do
  do i = 2, n
    b(i) = a(i-1)
  end do
end
|}
  in
  let c = compile src in
  let with_comm = (Spmdsim.Exec.run (Spmdsim.Exec.make ~nprocs:4 c.cprog)).s_time in
  let free =
    { Spmdsim.Machine.sp2 with alpha = 0.0; beta = 0.0; send_overhead = 0.0;
      recv_overhead = 0.0; pack_time = 0.0; unpack_time = 0.0 }
  in
  let without =
    (Spmdsim.Exec.run (Spmdsim.Exec.make ~machine:free ~nprocs:4 c.cprog)).s_time
  in
  Alcotest.(check bool) "latency visible" true (with_comm > without +. 30e-6)

let test_allreduce_cost () =
  Alcotest.(check (float 0.0)) "P=1 free" 0.0 (Spmdsim.Machine.allreduce_time Spmdsim.Machine.sp2 1);
  let t4 = Spmdsim.Machine.allreduce_time Spmdsim.Machine.sp2 4 in
  let t16 = Spmdsim.Machine.allreduce_time Spmdsim.Machine.sp2 16 in
  Alcotest.(check bool) "log growth" true (t16 > t4 && t16 < 3.0 *. t4)

let test_deadlock_detected () =
  (* a program with a recv and no matching send must be reported with a
     structured diagnostic naming the waiting processors and event *)
  let c = compile block_1d in
  let prog = c.cprog in
  let bogus_recv =
    Spmd.Recv { event = 99; src = [ Iset.Codegen.EInt 0 ] }
  in
  let prog =
    { prog with Spmd.main = prog.Spmd.main @ [ Spmd.If (Iset.Codegen.CGeq0 (Iset.Codegen.EVar "m$1"), [ bogus_recv ]) ] }
  in
  let sim = Spmdsim.Exec.make ~nprocs:4 prog in
  match Spmdsim.Exec.run sim with
  | exception Spmdsim.Exec.Deadlock d ->
      Alcotest.(check int) "all four procs stuck" 4 (List.length d.dg_waiting);
      List.iter
        (fun (w : Spmdsim.Exec.proc_wait) ->
          match w.w_reason with
          | Spmdsim.Exec.WaitRecv r ->
              Alcotest.(check int) "waiting on event 99" 99 r.wr_event
          | _ -> Alcotest.fail "expected a recv wait")
        d.dg_waiting;
      (* proc 0 waits on vp(0) — itself — a self-cycle; 1..3 dangle off it *)
      Alcotest.(check (list int)) "self-cycle on proc 0" [ 0 ] d.dg_cycle;
      let msg = Spmdsim.Exec.diagnostic_to_string d in
      Alcotest.(check bool) "pretty-printer mentions deadlock" true
        (String.length msg >= 8 && String.sub msg 0 8 = "deadlock")
  | _ -> Alcotest.fail "expected deadlock"

let test_param_binding () =
  let src =
    {|
program t
  parameter n
  real a(100)
  processors p(2)
  template tt(100)
  align a(i) with tt(i)
  distribute tt(block) onto p
  do i = 1, n
    a(i) = i
  end do
end
|}
  in
  let c = compile src in
  (* n is symbolic: must be supplied *)
  (match Spmdsim.Exec.make ~nprocs:2 c.cprog with
  | exception Spmdsim.Exec.Error _ -> ()
  | sim -> (
      match Spmdsim.Exec.run sim with
      | exception Spmdsim.Exec.Error _ -> ()
      | _ -> Alcotest.fail "expected unbound-parameter error"));
  let sim = Spmdsim.Exec.make ~nprocs:2 ~params:[ ("n", 7) ] c.cprog in
  let _ = Spmdsim.Exec.run sim in
  Alcotest.(check (float 0.0)) "a(7) written" 7.0 (Spmdsim.Exec.get_elem sim "a" [ 7 ]);
  Alcotest.(check (float 0.0)) "a(8) untouched" 0.0 (Spmdsim.Exec.get_elem sim "a" [ 8 ])

(* Regression: the gauss builtin uses a (cyclic,cyclic) distribution whose
   split compute sections reference the vm$k virtual-processor coordinates;
   they must be wrapped in VP loops like the unsplit path (previously failed
   at runtime with "unbound integer name vm$2"). *)
let test_gauss_cyclic_split_sections () =
  let chk = Hpf.Sema.analyze_source (Codes.gauss ()) in
  let c = Gen.compile chk in
  let serial = Spmdsim.Serial.run chk in
  let sim = Spmdsim.Exec.make ~nprocs:4 c.cprog in
  let _ = Spmdsim.Exec.run sim in
  for i = 1 to 12 do
    for j = 1 to 12 do
      let want = Spmdsim.Serial.get_elem serial "a" [ i; j ] in
      let got = Spmdsim.Exec.get_elem sim "a" [ i; j ] in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "a(%d,%d)" i j) want got
    done
  done

let test_serial_interpreter () =
  let chk = Hpf.Sema.analyze_source block_1d in
  let r = Spmdsim.Serial.run chk in
  Alcotest.(check (float 0.0)) "a(3)" 3.0 (Spmdsim.Serial.get_elem r "a" [ 3 ]);
  Alcotest.(check bool) "flops counted" true (r.r_flops > 16);
  Alcotest.(check bool) "time positive" true (r.r_time > 0.0)

let test_serial_subroutines_and_if () =
  let src =
    {|
program t
  parameter n = 4
  real a(n)
  real s
  processors p(2)
  template tt(n)
  align a(i) with tt(i)
  distribute tt(block) onto p
  call fill
  if (a(2) > 1.0) then
    s = 1.0
  else
    s = 2.0
  end if
end
subroutine fill
  do i = 1, n
    a(i) = i * 1.5
  end do
end
|}
  in
  let chk = Hpf.Sema.analyze_source src in
  let r = Spmdsim.Serial.run chk in
  Alcotest.(check (float 1e-9)) "subroutine ran" 6.0 (Spmdsim.Serial.get_elem r "a" [ 4 ]);
  Alcotest.(check (float 1e-9)) "if took then-branch" 1.0 (Spmdsim.Serial.get_scalar r "s")

let () =
  Alcotest.run "exec"
    [
      ( "machine",
        [
          Alcotest.test_case "ownership block" `Quick test_ownership_block;
          Alcotest.test_case "ownership cyclic" `Quick test_ownership_cyclic;
          Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
          Alcotest.test_case "message cost" `Quick test_message_cost_visible;
          Alcotest.test_case "allreduce cost" `Quick test_allreduce_cost;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "parameter binding" `Quick test_param_binding;
          Alcotest.test_case "gauss cyclic split sections" `Quick
            test_gauss_cyclic_split_sections;
        ] );
      ( "serial",
        [
          Alcotest.test_case "interpreter" `Quick test_serial_interpreter;
          Alcotest.test_case "subroutines and if" `Quick test_serial_subroutines_and_if;
        ] );
    ]
