(* Unit tests for the simulated machine itself: ownership arithmetic,
   message timing, collectives, deadlock detection, and the cost model. *)

open Dhpf

let compile src = Gen.compile (Hpf.Sema.analyze_source src)

let block_1d =
  {|
program t
  parameter n = 16
  real a(n)
  processors p(4)
  template tt(n)
  align a(i) with tt(i)
  distribute tt(block) onto p
  do i = 1, n
    a(i) = i
  end do
end
|}

let test_ownership_block () =
  let c = compile block_1d in
  let sim = Spmdsim.Exec.make ~nprocs:4 c.cprog in
  let _ = Spmdsim.Exec.run sim in
  (* blocks of 4: a(5) lives on proc 1 *)
  Alcotest.(check (float 0.0)) "a(5)" 5.0 (Spmdsim.Exec.get_elem sim "a" [ 5 ]);
  Alcotest.(check (float 0.0)) "a(16)" 16.0 (Spmdsim.Exec.get_elem sim "a" [ 16 ])

let test_ownership_cyclic () =
  let src =
    {|
program t
  parameter n = 10
  real a(n)
  processors p(3)
  template tt(n)
  align a(i) with tt(i)
  distribute tt(cyclic) onto p
  do i = 1, n
    a(i) = 10.0 * i
  end do
end
|}
  in
  let c = compile src in
  let sim = Spmdsim.Exec.make ~nprocs:3 c.cprog in
  let _ = Spmdsim.Exec.run sim in
  for i = 1 to 10 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "a(%d)" i)
      (10.0 *. float_of_int i)
      (Spmdsim.Exec.get_elem sim "a" [ i ])
  done

let test_clock_monotone () =
  (* more iterations => strictly more simulated time *)
  let t iters =
    let src =
      Printf.sprintf
        {|
program t
  parameter n = 64
  real a(n)
  real s
  processors p(2)
  template tt(n)
  align a(i) with tt(i)
  distribute tt(block) onto p
  do k = 1, %d
    do i = 1, n
      a(i) = a(i) + 1.0
    end do
  end do
end
|}
        iters
    in
    let c = compile src in
    (Spmdsim.Exec.run (Spmdsim.Exec.make ~nprocs:2 c.cprog)).s_time
  in
  let t1 = t 1 and t4 = t 4 in
  Alcotest.(check bool) "4 iters slower than 1" true (t4 > t1 *. 2.0)

let test_message_cost_visible () =
  (* a shift adds latency: time with comm exceeds comm-free machine time *)
  let src =
    {|
program t
  parameter n = 32
  real a(n), b(n)
  processors p(4)
  template tt(n)
  align a(i) with tt(i)
  align b(i) with tt(i)
  distribute tt(block) onto p
  do i = 1, n
    a(i) = i
  end do
  do i = 2, n
    b(i) = a(i-1)
  end do
end
|}
  in
  let c = compile src in
  let with_comm = (Spmdsim.Exec.run (Spmdsim.Exec.make ~nprocs:4 c.cprog)).s_time in
  let free =
    { Spmdsim.Machine.sp2 with alpha = 0.0; beta = 0.0; send_overhead = 0.0;
      recv_overhead = 0.0; pack_time = 0.0; unpack_time = 0.0 }
  in
  let without =
    (Spmdsim.Exec.run (Spmdsim.Exec.make ~machine:free ~nprocs:4 c.cprog)).s_time
  in
  Alcotest.(check bool) "latency visible" true (with_comm > without +. 30e-6)

let test_allreduce_cost () =
  Alcotest.(check (float 0.0)) "P=1 free" 0.0 (Spmdsim.Machine.allreduce_time Spmdsim.Machine.sp2 1);
  let t4 = Spmdsim.Machine.allreduce_time Spmdsim.Machine.sp2 4 in
  let t16 = Spmdsim.Machine.allreduce_time Spmdsim.Machine.sp2 16 in
  Alcotest.(check bool) "log growth" true (t16 > t4 && t16 < 3.0 *. t4)

let test_deadlock_detected () =
  (* a program with a recv and no matching send must be reported with a
     structured diagnostic naming the waiting processors and event *)
  let c = compile block_1d in
  let prog = c.cprog in
  let bogus_recv =
    Spmd.Recv { event = 99; src = [ Iset.Codegen.EInt 0 ] }
  in
  let prog =
    { prog with Spmd.main = prog.Spmd.main @ [ Spmd.If (Iset.Codegen.CGeq0 (Iset.Codegen.EVar "m$1"), [ bogus_recv ]) ] }
  in
  let sim = Spmdsim.Exec.make ~nprocs:4 prog in
  match Spmdsim.Exec.run sim with
  | exception Spmdsim.Exec.Deadlock d ->
      Alcotest.(check int) "all four procs stuck" 4 (List.length d.dg_waiting);
      List.iter
        (fun (w : Spmdsim.Exec.proc_wait) ->
          match w.w_reason with
          | Spmdsim.Exec.WaitRecv r ->
              Alcotest.(check int) "waiting on event 99" 99 r.wr_event
          | _ -> Alcotest.fail "expected a recv wait")
        d.dg_waiting;
      (* proc 0 waits on vp(0) — itself — a self-cycle; 1..3 dangle off it *)
      Alcotest.(check (list int)) "self-cycle on proc 0" [ 0 ] d.dg_cycle;
      let msg = Spmdsim.Exec.diagnostic_to_string d in
      Alcotest.(check bool) "pretty-printer mentions deadlock" true
        (String.length msg >= 8 && String.sub msg 0 8 = "deadlock")
  | _ -> Alcotest.fail "expected deadlock"

let test_param_binding () =
  let src =
    {|
program t
  parameter n
  real a(100)
  processors p(2)
  template tt(100)
  align a(i) with tt(i)
  distribute tt(block) onto p
  do i = 1, n
    a(i) = i
  end do
end
|}
  in
  let c = compile src in
  (* n is symbolic: must be supplied *)
  (match Spmdsim.Exec.make ~nprocs:2 c.cprog with
  | exception Spmdsim.Exec.Error _ -> ()
  | sim -> (
      match Spmdsim.Exec.run sim with
      | exception Spmdsim.Exec.Error _ -> ()
      | _ -> Alcotest.fail "expected unbound-parameter error"));
  let sim = Spmdsim.Exec.make ~nprocs:2 ~params:[ ("n", 7) ] c.cprog in
  let _ = Spmdsim.Exec.run sim in
  Alcotest.(check (float 0.0)) "a(7) written" 7.0 (Spmdsim.Exec.get_elem sim "a" [ 7 ]);
  Alcotest.(check (float 0.0)) "a(8) untouched" 0.0 (Spmdsim.Exec.get_elem sim "a" [ 8 ])

(* Regression: the gauss builtin uses a (cyclic,cyclic) distribution whose
   split compute sections reference the vm$k virtual-processor coordinates;
   they must be wrapped in VP loops like the unsplit path (previously failed
   at runtime with "unbound integer name vm$2"). *)
let test_gauss_cyclic_split_sections () =
  let chk = Hpf.Sema.analyze_source (Codes.gauss ()) in
  let c = Gen.compile chk in
  let serial = Spmdsim.Serial.run chk in
  let sim = Spmdsim.Exec.make ~nprocs:4 c.cprog in
  let _ = Spmdsim.Exec.run sim in
  for i = 1 to 12 do
    for j = 1 to 12 do
      let want = Spmdsim.Serial.get_elem serial "a" [ i; j ] in
      let got = Spmdsim.Exec.get_elem sim "a" [ i; j ] in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "a(%d,%d)" i j) want got
    done
  done

(* Each sim is single-use: running it again would start from stale clocks,
   sequence numbers and array contents. Both engines must refuse. *)
let test_double_run_guard () =
  List.iter
    (fun engine ->
      let c = compile block_1d in
      let sim = Spmdsim.Exec.make ~engine ~nprocs:4 c.cprog in
      let _ = Spmdsim.Exec.run sim in
      match Spmdsim.Exec.run sim with
      | exception Spmdsim.Exec.Error msg ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "error names the re-run" true
            (contains msg "already")
      | _ -> Alcotest.fail "expected Error on second run")
    [ `Closure; `Interp ]

(* The interpreter is kept as the differential oracle for the closure
   engine: same program, same machine, same ownership answers. *)
let test_ownership_interp_engine () =
  let c = compile block_1d in
  let sim = Spmdsim.Exec.make ~engine:`Interp ~nprocs:4 c.cprog in
  let _ = Spmdsim.Exec.run sim in
  Alcotest.(check (float 0.0)) "a(5)" 5.0 (Spmdsim.Exec.get_elem sim "a" [ 5 ]);
  Alcotest.(check (float 0.0)) "a(16)" 16.0 (Spmdsim.Exec.get_elem sim "a" [ 16 ])

(* gauss exercises (cyclic,cyclic) with split VP sections, scalar state and
   subroutine calls; the engines must agree bit-for-bit, fault-free and
   under a seeded fault schedule. *)
let test_engines_agree_gauss () =
  let chk = Hpf.Sema.analyze_source (Codes.gauss ()) in
  match Spmdsim.Diffcheck.engines ~nprocs:4 ~seeds:[ 7 ] chk with
  | Spmdsim.Diffcheck.Pass { runs } -> Alcotest.(check int) "runs" 2 runs
  | out -> Alcotest.failf "%a" Spmdsim.Diffcheck.pp_outcome out

let test_serial_interpreter () =
  let chk = Hpf.Sema.analyze_source block_1d in
  let r = Spmdsim.Serial.run chk in
  Alcotest.(check (float 0.0)) "a(3)" 3.0 (Spmdsim.Serial.get_elem r "a" [ 3 ]);
  Alcotest.(check bool) "flops counted" true (r.r_flops > 16);
  Alcotest.(check bool) "time positive" true (r.r_time > 0.0)

let test_serial_subroutines_and_if () =
  let src =
    {|
program t
  parameter n = 4
  real a(n)
  real s
  processors p(2)
  template tt(n)
  align a(i) with tt(i)
  distribute tt(block) onto p
  call fill
  if (a(2) > 1.0) then
    s = 1.0
  else
    s = 2.0
  end if
end
subroutine fill
  do i = 1, n
    a(i) = i * 1.5
  end do
end
|}
  in
  let chk = Hpf.Sema.analyze_source src in
  let r = Spmdsim.Serial.run chk in
  Alcotest.(check (float 1e-9)) "subroutine ran" 6.0 (Spmdsim.Serial.get_elem r "a" [ 4 ]);
  Alcotest.(check (float 1e-9)) "if took then-branch" 1.0 (Spmdsim.Serial.get_scalar r "s")

(* ---- engine-differential property ----

   Random small stencil programs (random distributions, alignments and
   shift patterns, as in test_random.ml) validated through
   Diffcheck.engines: the closure engine and the tree-walking interpreter
   must produce bit-identical element values and scalars, bit-identical
   simulated clocks, and identical message/byte/retransmit counters —
   fault-free and under two seeded fault schedules (drop+retransmit,
   duplication, reordering, stragglers). *)

type ed_spec = {
  ed_dist : int;  (* index into ed_dists *)
  ed_align_a : int;  (* index into ed_aligns *)
  ed_align_b : int;
  ed_stmts : ((string * (int * int)) * (string * (int * int)) list) list;
      (* (lhs array, lhs shift), rhs refs (array, shifts) *)
}

let ed_dists =
  [|
    ("processors p(2)", "distribute t(block,*) onto p");
    ("processors p(2)", "distribute t(*,block) onto p");
    ("processors p(2,2)", "distribute t(block,block) onto p");
    ("processors p(2)", "distribute t(cyclic,*) onto p");
    ("processors p(2,2)", "distribute t(cyclic,cyclic) onto p");
  |]

let ed_align name = function
  | 0 -> Printf.sprintf "align %s(i,j) with t(i,j)" name
  | 1 -> Printf.sprintf "align %s(i,j) with t(i+1,j)" name
  | _ -> Printf.sprintf "align %s(i,j) with t(j,i)" name

let ed_n = 8

let ed_src spec =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let procs, dist = ed_dists.(spec.ed_dist) in
  pf "program enginediff\n";
  pf "  parameter n = %d\n" ed_n;
  pf "  real a(n,n), b(n,n)\n";
  pf "  %s\n" procs;
  pf "  template t(n+1,n+1)\n";
  pf "  %s\n" (ed_align "a" spec.ed_align_a);
  pf "  %s\n" (ed_align "b" spec.ed_align_b);
  pf "  %s\n" dist;
  pf "  do i = 1, n\n    do j = 1, n\n";
  pf "      a(i,j) = i + 2*j + mod(i*j, 5)\n";
  pf "      b(i,j) = 2*i - j + mod(i+j, 3)\n";
  pf "    end do\n  end do\n";
  List.iter
    (fun ((lhs, (li, lj)), refs) ->
      let sub (di, dj) =
        let f v d = if d = 0 then v else Printf.sprintf "%s%+d" v d in
        Printf.sprintf "%s,%s" (f "i" di) (f "j" dj)
      in
      pf "  do i = 2, n-1\n    do j = 2, n-1\n";
      let rhs =
        String.concat " + "
          (List.map (fun (arr, d) -> Printf.sprintf "0.5*%s(%s)" arr (sub d)) refs)
      in
      pf "      %s(%s) = %s + 1.0\n" lhs (sub (li, lj)) rhs;
      pf "    end do\n  end do\n")
    spec.ed_stmts;
  pf "end\n";
  Buffer.contents buf

let ed_gen =
  QCheck.Gen.(
    let shift = int_range (-1) 1 in
    let ref_ = pair (oneofl [ "a"; "b" ]) (pair shift shift) in
    let stmt =
      pair (pair (oneofl [ "a"; "b" ]) (pair shift shift))
        (list_size (int_range 1 2) ref_)
    in
    map
      (fun (dist, (aa, ab), stmts) ->
        { ed_dist = dist; ed_align_a = aa; ed_align_b = ab; ed_stmts = stmts })
      (triple (int_range 0 4)
         (pair (int_range 0 2) (int_range 0 2))
         (list_size (int_range 1 2) stmt)))

let prop_engines_differential =
  QCheck.Test.make ~count:25
    ~name:"closure engine bit-identical to the interpreter (incl. faults)"
    (QCheck.make ~print:ed_src ed_gen)
    (fun spec ->
      match Hpf.Sema.analyze_source (ed_src spec) with
      | chk -> (
          match Spmdsim.Diffcheck.engines ~nprocs:4 ~seeds:[ 1; 2 ] chk with
          | Spmdsim.Diffcheck.Pass _ -> true
          | out -> QCheck.Test.fail_reportf "%a" Spmdsim.Diffcheck.pp_outcome out
          | exception Dhpf.Gen.Unsupported _ -> QCheck.assume_fail ()
          | exception Dhpf.Layout.Unsupported _ -> QCheck.assume_fail ())
      | exception Hpf.Sema.Error _ -> QCheck.assume_fail ())

let () =
  Alcotest.run "exec"
    [
      ( "machine",
        [
          Alcotest.test_case "ownership block" `Quick test_ownership_block;
          Alcotest.test_case "ownership cyclic" `Quick test_ownership_cyclic;
          Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
          Alcotest.test_case "message cost" `Quick test_message_cost_visible;
          Alcotest.test_case "allreduce cost" `Quick test_allreduce_cost;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "parameter binding" `Quick test_param_binding;
          Alcotest.test_case "gauss cyclic split sections" `Quick
            test_gauss_cyclic_split_sections;
        ] );
      ( "engines",
        [
          Alcotest.test_case "double-run guard" `Quick test_double_run_guard;
          Alcotest.test_case "interp engine ownership" `Quick
            test_ownership_interp_engine;
          Alcotest.test_case "engines agree on gauss" `Quick
            test_engines_agree_gauss;
          QCheck_alcotest.to_alcotest prop_engines_differential;
        ] );
      ( "serial",
        [
          Alcotest.test_case "interpreter" `Quick test_serial_interpreter;
          Alcotest.test_case "subroutines and if" `Quick test_serial_subroutines_and_if;
        ] );
    ]
