(* Correctness of the hash-consing / memoization layer of lib/iset:

   - differential QCheck properties asserting that memoized and
     cache-disabled runs agree on sat / simplify / subset / equal / gist for
     random sets (including the repeated-query path, where the second call
     is served from the cache);
   - soundness of the trivially_unsat pre-filter against the full Omega
     test;
   - the eviction bound: every intern/memo table stays within the
     configured capacity, with monotone (never reused) interned ids. *)

open Iset

(* ------------------------------------------------------------------ *)
(* Generators: small random conjuncts and sets, cheap for the Omega     *)
(* test but rich enough to hit strides, windows and empty sets          *)
(* ------------------------------------------------------------------ *)

let var_gen =
  QCheck.Gen.oneofl
    [ Var.In 0; Var.In 1; Var.Param "n"; Var.Param "m"; Var.Ex 0; Var.Ex 1 ]

let lin_gen =
  QCheck.Gen.(
    map2
      (fun pairs k -> Lin.of_list pairs k)
      (list_size (int_range 0 3) (pair (int_range (-4) 4) var_gen))
      (int_range (-12) 12))

let constr_gen =
  QCheck.Gen.(
    map2 (fun eq lin -> if eq then Constr.eq lin else Constr.geq lin) bool lin_gen)

let conj_gen =
  QCheck.Gen.(
    map (fun cs -> Conj.make ~n_ex:2 cs) (list_size (int_range 1 5) constr_gen))

let rel_gen =
  QCheck.Gen.(map (fun conjs -> Rel.set ~ar:2 conjs) (list_size (int_range 0 2) conj_gen))

let conj_print c = Conj.to_string c
let arb_conj = QCheck.make ~print:conj_print conj_gen
let arb_conj2 = QCheck.make ~print:(fun (a, b) -> conj_print a ^ " | " ^ conj_print b)
    QCheck.Gen.(pair conj_gen conj_gen)
let arb_rel2 =
  QCheck.make
    ~print:(fun (a, b) -> Rel.to_string a ^ " | " ^ Rel.to_string b)
    QCheck.Gen.(pair rel_gen rel_gen)

(* Evaluate [f] with caches off, then twice with caches on (cold, then
   cached); every observable outcome — value or exception constructor —
   must agree. *)
let three_ways f =
  let observe g = try Ok (g ()) with Conj.Inexact_negation -> Error `Inexact in
  Cache.set_enabled false;
  let plain = observe f in
  Cache.set_enabled true;
  let cold = observe f in
  let warm = observe f in
  (plain, cold, warm)

let agree eq (plain, cold, warm) =
  let same a b =
    match (a, b) with
    | Ok x, Ok y -> eq x y
    | Error `Inexact, Error `Inexact -> true
    | _ -> false
  in
  same plain cold && same plain warm

(* ------------------------------------------------------------------ *)
(* Differential properties                                              *)
(* ------------------------------------------------------------------ *)

let prop_sat =
  QCheck.Test.make ~count:300 ~name:"memoized sat = cache-disabled sat" arb_conj
    (fun c -> agree ( = ) (three_ways (fun () -> Conj.sat c)))

let prop_simplify =
  QCheck.Test.make ~count:300 ~name:"memoized simplify = cache-disabled simplify"
    arb_conj (fun c ->
      agree
        (fun a b ->
          Option.equal Conj.equal a b
          && Option.equal String.equal
               (Option.map Conj.to_string a)
               (Option.map Conj.to_string b))
        (three_ways (fun () -> Conj.simplify c)))

let prop_gist =
  QCheck.Test.make ~count:200 ~name:"memoized gist = cache-disabled gist"
    arb_conj2 (fun (c, given) ->
      agree Conj.equal (three_ways (fun () -> Conj.gist c ~given)))

let prop_subset =
  QCheck.Test.make ~count:150 ~name:"memoized subset = cache-disabled subset"
    arb_rel2 (fun (a, b) ->
      agree ( = ) (three_ways (fun () -> Rel.subset a b)))

let prop_equal =
  QCheck.Test.make ~count:100 ~name:"memoized equal = cache-disabled equal"
    arb_rel2 (fun (a, b) ->
      agree ( = ) (three_ways (fun () -> Rel.equal a b)))

let prop_prefilter_sound =
  QCheck.Test.make ~count:500
    ~name:"trivially_unsat implies Omega-unsat (pre-filter soundness)" arb_conj
    (fun c -> (not (Conj.trivially_unsat c)) || not (Conj.sat c))

(* ------------------------------------------------------------------ *)
(* Unit tests: hit accounting, eviction bound, id stability             *)
(* ------------------------------------------------------------------ *)

let mk_interval lo hi =
  Conj.make ~n_ex:0
    [
      Constr.geq (Lin.of_list [ (1, Var.In 0) ] (-lo));
      Constr.geq (Lin.of_list [ (-1, Var.In 0) ] hi);
    ]

let test_hits_recorded () =
  Cache.set_enabled true;
  Stats.reset ();
  let c = mk_interval 1 10 in
  let r1 = Conj.sat c in
  (* a structurally equal but physically distinct conjunct must hit *)
  let r2 = Conj.sat (mk_interval 1 10) in
  Alcotest.(check bool) "same answer" r1 r2;
  Alcotest.(check bool) "second query hits" true (Stats.count Stats.sat_hits >= 1)

let test_interned_ids_stable () =
  Cache.set_enabled true;
  let c = mk_interval 2 5 in
  let id1 = Conj.id c in
  let id2 = Conj.id (mk_interval 2 5) in
  Alcotest.(check int) "equal conjuncts share an id" id1 id2;
  Alcotest.(check bool) "representative is shared physically" true
    (Conj.intern c == Conj.intern (mk_interval 2 5))

let test_eviction_bound () =
  let cap = 32 in
  Cache.set_capacity cap;
  (* far more distinct queries than the capacity *)
  for i = 1 to 40 * cap do
    ignore (Conj.sat (mk_interval 1 i))
  done;
  List.iter
    (fun (name, v) ->
      let is_size =
        List.exists
          (fun suffix ->
            String.length name >= String.length suffix
            && String.sub name
                 (String.length name - String.length suffix)
                 (String.length suffix)
               = suffix)
          [ "cache size" ]
        || String.length name >= 8 && String.sub name 0 8 = "interned"
      in
      if is_size then
        Alcotest.(check bool)
          (Printf.sprintf "%s (= %d) within capacity %d" name v cap)
          true (v <= cap))
    (Stats.report ());
  Alcotest.(check bool) "clear-on-full evictions occurred" true
    (Stats.count Stats.evictions > 0);
  (* ids keep growing across evictions: no reuse, so no stale hits *)
  let idA = Conj.id (mk_interval 1 1) in
  Cache.clear_all ();
  let idB = Conj.id (mk_interval 1 1) in
  Alcotest.(check bool) "ids are never reused after a clear" true (idB > idA);
  Cache.set_capacity 65536

let test_disabled_is_transparent () =
  Cache.set_enabled false;
  Stats.reset ();
  let c = mk_interval 1 4 in
  ignore (Conj.sat c);
  ignore (Conj.sat c);
  Alcotest.(check int) "no lookups recorded when disabled" 0
    (Stats.count Stats.sat_lookups);
  Cache.set_enabled true

let () =
  Alcotest.run "cache"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sat;
            prop_simplify;
            prop_gist;
            prop_subset;
            prop_equal;
            prop_prefilter_sound;
          ] );
      ( "bounds",
        [
          Alcotest.test_case "hits recorded" `Quick test_hits_recorded;
          Alcotest.test_case "interned ids stable" `Quick test_interned_ids_stable;
          Alcotest.test_case "eviction bound" `Quick test_eviction_bound;
          Alcotest.test_case "disabled mode transparent" `Quick
            test_disabled_is_transparent;
        ] );
    ]
