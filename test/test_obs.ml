(* Unit and property tests for the observability subsystem: span
   nesting, the disabled fast path, JSON escaping, counter-window reset
   at subcommand granularity, send<->recv flow matching on random stencil
   programs, and the guarantee that tracing a run changes nothing. *)

let with_trace f =
  Obs.reset ();
  Obs.enable ();
  let r = Fun.protect ~finally:(fun () -> Obs.disable ()) f in
  let evs = Obs.events () in
  Obs.reset ();
  (r, evs)

(* ---- span basics ---- *)

let test_disabled_path () =
  Obs.reset ();
  Obs.disable ();
  let r = Obs.span "ignored" (fun () -> 41 + 1) in
  Obs.instant "also ignored";
  Obs.counter "nope" [ ("x", 1.0) ];
  Alcotest.(check int) "thunk result" 42 r;
  Alcotest.(check int) "no events recorded" 0 (Obs.events_count ())

let test_span_nesting () =
  let r, evs =
    with_trace (fun () ->
        Obs.span "outer" (fun () ->
            let x = Obs.span ~cat:"t" "inner" (fun () -> 3) in
            x + 4))
  in
  Alcotest.(check int) "result through nested spans" 7 r;
  let find name =
    match
      List.find_opt (fun e -> e.Obs.e_ph = Obs.X && e.Obs.e_name = name) evs
    with
    | Some e -> e
    | None -> Alcotest.failf "span %s not recorded" name
  in
  let outer = find "outer" and inner = find "inner" in
  (* children close (and are pushed) before their parent *)
  Alcotest.(check bool) "inner starts after outer" true
    (inner.Obs.e_ts >= outer.Obs.e_ts -. 0.5);
  Alcotest.(check bool) "inner contained in outer" true
    (inner.Obs.e_ts +. inner.Obs.e_dur
    <= outer.Obs.e_ts +. outer.Obs.e_dur +. 0.5);
  Alcotest.(check string) "category recorded" "t" inner.Obs.e_cat

let test_span_exception () =
  let (), evs =
    with_trace (fun () ->
        try Obs.span "raises" (fun () -> failwith "boom") with Failure _ -> ())
  in
  Alcotest.(check bool) "span recorded despite exception" true
    (List.exists (fun e -> e.Obs.e_name = "raises") evs)

(* ---- JSON export: a tiny validating parser over the emitted subset ---- *)

exception Bad_json of string

let validate_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then raise (Bad_json "eof");
    let c = s.[!pos] in
    incr pos;
    c
  in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t'
                  || s.[!pos] = '\r')
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    let g = next () in
    if g <> c then raise (Bad_json (Printf.sprintf "expected %c got %c" c g))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_ ()
    | Some ('t' | 'f' | 'n') -> word ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> raise (Bad_json (Printf.sprintf "unexpected %c" c))
    | None -> raise (Bad_json "eof")
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then ignore (next ())
    else begin
      let rec members () =
        skip_ws ();
        string_ ();
        expect ':';
        value ();
        skip_ws ();
        match next () with
        | ',' -> members ()
        | '}' -> ()
        | c -> raise (Bad_json (Printf.sprintf "in object: %c" c))
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then ignore (next ())
    else begin
      let rec elems () =
        value ();
        skip_ws ();
        match next () with
        | ',' -> elems ()
        | ']' -> ()
        | c -> raise (Bad_json (Printf.sprintf "in array: %c" c))
      in
      elems ()
    end
  and string_ () =
    expect '"';
    let rec go () =
      match next () with
      | '"' -> ()
      | '\\' -> (
          match next () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> go ()
          | 'u' ->
              for _ = 1 to 4 do
                match next () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | c -> raise (Bad_json (Printf.sprintf "bad \\u digit %c" c))
              done;
              go ()
          | c -> raise (Bad_json (Printf.sprintf "bad escape \\%c" c)))
      | c when Char.code c < 0x20 ->
          raise (Bad_json "raw control character in string")
      | _ -> go ()
    in
    go ()
  and number () =
    let started = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = started then raise (Bad_json "empty number")
  and word () =
    let take w =
      if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
      then pos := !pos + String.length w
      else raise (Bad_json ("bad literal at " ^ string_of_int !pos))
    in
    match peek () with
    | Some 't' -> take "true"
    | Some 'f' -> take "false"
    | _ -> take "null"
  in
  value ();
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing garbage")

let test_json_escaping () =
  Obs.reset ();
  Obs.enable ();
  let nasty = "quote\" back\\slash \n\t\r\b\012 ctl\001 end" in
  Obs.instant ~cat:nasty ~args:[ (nasty, Obs.Str nasty) ] nasty;
  ignore (Obs.span nasty (fun () -> 0));
  Obs.counter "c\"c" [ ("s\\s", 1.5) ];
  Obs.set_process_name ~pid:3 "p\"name";
  Obs.flow_start ~pid:1 ~tid:0 ~ts:1.0 ~id:(Obs.next_flow_id ()) "m\"sg";
  let json = Obs.to_chrome_json () in
  Obs.disable ();
  Obs.reset ();
  (match validate_json json with
  | () -> ()
  | exception Bad_json msg -> Alcotest.failf "invalid JSON: %s" msg);
  let contains sub =
    let ls = String.length sub and lj = String.length json in
    let rec go i = i + ls <= lj && (String.sub json i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "quotes escaped" true (contains {|quote\"|});
  Alcotest.(check bool) "backslash escaped" true (contains {|back\\slash|});
  Alcotest.(check bool) "control char unicode-escaped" true
    (contains {|\u0001|});
  (* no raw control bytes anywhere in the output *)
  String.iter
    (fun c ->
      if Char.code c < 0x20 && c <> '\n' then
        Alcotest.failf "raw control byte %d in JSON output" (Char.code c))
    json

(* ---- measurement-window reset (the CLI calls Iset.Stats.reset at every
   subcommand entry; windows over a warm cache must be reproducible, and
   reset must zero every counter) ---- *)

let window_counters =
  [ Iset.Stats.sat_lookups; Iset.Stats.sat_hits;
    Iset.Stats.sat_prefilter_kills; Iset.Stats.simplify_lookups;
    Iset.Stats.simplify_hits; Iset.Stats.gist_lookups; Iset.Stats.gist_hits;
    Iset.Stats.implies_lookups; Iset.Stats.implies_hits;
    Iset.Stats.subset_lookups; Iset.Stats.subset_hits; Iset.Stats.evictions ]

let test_stats_window_reset () =
  let src = Codes.jacobi ~n:12 ~iters:1 () in
  let compile () = ignore (Dhpf.Gen.compile (Hpf.Sema.analyze_source src)) in
  (* warm the (persistent) caches so the windows below are steady-state *)
  compile ();
  Iset.Stats.reset ();
  List.iter
    (fun c -> Alcotest.(check int) "reset zeroes counter" 0 (Iset.Stats.count c))
    window_counters;
  compile ();
  let w1 = List.map Iset.Stats.count window_counters in
  Alcotest.(check bool) "window sees activity" true
    (Iset.Stats.count Iset.Stats.sat_lookups > 0
    || Iset.Stats.count Iset.Stats.simplify_lookups > 0);
  (* without a reset, a second compile leaks into the same window *)
  compile ();
  let leaked = List.map Iset.Stats.count window_counters in
  Alcotest.(check bool) "counters accumulate without reset" true
    (List.exists2 (fun a b -> b > a) w1 leaked);
  (* with a reset, an identical compile over the warm cache reproduces the
     window exactly *)
  Iset.Stats.reset ();
  compile ();
  let w2 = List.map Iset.Stats.count window_counters in
  Alcotest.(check (list int)) "windows reproducible after reset" w1 w2

(* ---- random stencil programs: every send flow has a matching recv flow
   (the same generator family as test_exec's engine-differential test) ---- *)

type ed_spec = {
  ed_dist : int;
  ed_align_a : int;
  ed_align_b : int;
  ed_stmts : ((string * (int * int)) * (string * (int * int)) list) list;
}

let ed_dists =
  [|
    ("processors p(2)", "distribute t(block,*) onto p");
    ("processors p(2)", "distribute t(*,block) onto p");
    ("processors p(2,2)", "distribute t(block,block) onto p");
    ("processors p(2)", "distribute t(cyclic,*) onto p");
    ("processors p(2,2)", "distribute t(cyclic,cyclic) onto p");
  |]

let ed_align name = function
  | 0 -> Printf.sprintf "align %s(i,j) with t(i,j)" name
  | 1 -> Printf.sprintf "align %s(i,j) with t(i+1,j)" name
  | _ -> Printf.sprintf "align %s(i,j) with t(j,i)" name

let ed_src spec =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let procs, dist = ed_dists.(spec.ed_dist) in
  pf "program obsflow\n";
  pf "  parameter n = 8\n";
  pf "  real a(n,n), b(n,n)\n";
  pf "  %s\n" procs;
  pf "  template t(n+1,n+1)\n";
  pf "  %s\n" (ed_align "a" spec.ed_align_a);
  pf "  %s\n" (ed_align "b" spec.ed_align_b);
  pf "  %s\n" dist;
  pf "  do i = 1, n\n    do j = 1, n\n";
  pf "      a(i,j) = i + 2*j\n      b(i,j) = 2*i - j\n";
  pf "    end do\n  end do\n";
  List.iter
    (fun ((lhs, (li, lj)), refs) ->
      let sub (di, dj) =
        let f v d = if d = 0 then v else Printf.sprintf "%s%+d" v d in
        Printf.sprintf "%s,%s" (f "i" di) (f "j" dj)
      in
      pf "  do i = 2, n-1\n    do j = 2, n-1\n";
      let rhs =
        String.concat " + "
          (List.map (fun (arr, d) -> Printf.sprintf "0.5*%s(%s)" arr (sub d)) refs)
      in
      pf "      %s(%s) = %s + 1.0\n" lhs (sub (li, lj)) rhs;
      pf "    end do\n  end do\n")
    spec.ed_stmts;
  pf "end\n";
  Buffer.contents buf

let ed_gen =
  QCheck.Gen.(
    let shift = int_range (-1) 1 in
    let ref_ = pair (oneofl [ "a"; "b" ]) (pair shift shift) in
    let stmt =
      pair (pair (oneofl [ "a"; "b" ]) (pair shift shift))
        (list_size (int_range 1 2) ref_)
    in
    map
      (fun (dist, (aa, ab), stmts) ->
        { ed_dist = dist; ed_align_a = aa; ed_align_b = ab; ed_stmts = stmts })
      (triple (int_range 0 4)
         (pair (int_range 0 2) (int_range 0 2))
         (list_size (int_range 1 2) stmt)))

let flows_matched ?faults prog =
  let (stats : Spmdsim.Exec.stats), evs =
    with_trace (fun () ->
        let sim = Spmdsim.Exec.make ?faults ~nprocs:4 prog in
        Spmdsim.Exec.run sim)
  in
  let ids ph =
    List.filter (fun e -> e.Obs.e_ph = ph) evs
    |> List.map (fun e -> e.Obs.e_id)
    |> List.sort compare
  in
  let starts = ids Obs.FlowStart and ends = ids Obs.FlowEnd in
  if List.length starts <> stats.Spmdsim.Exec.s_msgs then
    QCheck.Test.fail_reportf "flow starts %d <> transport messages %d"
      (List.length starts) stats.Spmdsim.Exec.s_msgs;
  if starts <> ends then
    QCheck.Test.fail_reportf "unmatched flows: %d starts vs %d ends"
      (List.length starts) (List.length ends);
  true

let prop_flows_matched =
  QCheck.Test.make ~count:20
    ~name:"every traced send has a matching recv flow (incl. under faults)"
    (QCheck.make ~print:ed_src ed_gen)
    (fun spec ->
      match Hpf.Sema.analyze_source (ed_src spec) with
      | exception Hpf.Sema.Error _ -> QCheck.assume_fail ()
      | chk -> (
          match Dhpf.Gen.compile chk with
          | exception Dhpf.Gen.Unsupported _ -> QCheck.assume_fail ()
          | exception Dhpf.Layout.Unsupported _ -> QCheck.assume_fail ()
          | compiled ->
              flows_matched compiled.Dhpf.Gen.cprog
              && flows_matched
                   ~faults:(Spmdsim.Fault.default ~seed:3)
                   compiled.Dhpf.Gen.cprog))

(* ---- tracing must not perturb the simulation: values, clocks and
   counters of a traced run are bit-identical to an untraced one ---- *)

let run_jacobi ~engine ?faults () =
  let src = Codes.jacobi ~n:12 ~iters:2 () in
  let compiled = Dhpf.Gen.compile (Hpf.Sema.analyze_source src) in
  let sim = Spmdsim.Exec.make ~engine ?faults ~nprocs:4 compiled.Dhpf.Gen.cprog in
  let stats = Spmdsim.Exec.run sim in
  let values =
    List.concat_map
      (fun arr ->
        List.concat_map
          (fun i ->
            List.map (fun j -> Spmdsim.Exec.get_elem sim arr [ i; j ])
              (List.init 12 succ))
          (List.init 12 succ))
      [ "a"; "b" ]
  in
  (stats, values, Spmdsim.Exec.get_scalar sim "eps")

let test_traced_untraced_identical () =
  List.iter
    (fun (engine, faults) ->
      let plain = run_jacobi ~engine ?faults () in
      let traced, _evs = with_trace (fun () -> run_jacobi ~engine ?faults ()) in
      let (s1, v1, e1) = plain and (s2, v2, e2) = traced in
      Alcotest.(check (list (float 0.0))) "element values identical" v1 v2;
      Alcotest.(check (float 0.0)) "scalar identical" e1 e2;
      Alcotest.(check bool) "stats identical (incl. clocks)" true (s1 = s2))
    [ (`Closure, None);
      (`Interp, None);
      (`Closure, Some (Spmdsim.Fault.default ~seed:7)) ]

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "disabled path" `Quick test_disabled_path;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
        ] );
      ("export", [ Alcotest.test_case "JSON escaping" `Quick test_json_escaping ]);
      ( "windows",
        [ Alcotest.test_case "stats reset at subcommand entry" `Quick
            test_stats_window_reset ] );
      ( "simulator",
        [
          QCheck_alcotest.to_alcotest prop_flows_matched;
          Alcotest.test_case "traced run bit-identical" `Quick
            test_traced_untraced_identical;
        ] );
    ]
