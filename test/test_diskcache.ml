(* The persistent on-disk analysis cache (Iset.Diskcache) and its wire
   codec:

   - Wire roundtrips (ints incl. min_int, strings with embedded NULs,
     nested lists) and Malformed on garbage;
   - store/find roundtrip with hit/miss accounting;
   - corruption tolerance: truncated entries, corrupted magic (the
     format-version tag) and digest collisions with a different key are
     all misses, never errors;
   - two racing writers publishing with atomic renames: a concurrent
     reader only ever observes a complete value, never a torn one;
   - the size bound: automatic eviction keeps the footprint within
     budget;
   - group-aware pruning (the native kernel cache's GC): a kernel's
     .ml/.cmxs/.log live and die together, oldest group first;
   - the differential contract: with the disk layer enabled, analysis
     results equal the cache-disabled ones, including when the in-memory
     tables are cleared so every hit is served from disk. *)

open Iset

let counter = ref 0

let fresh_dir () =
  incr counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dhpf-test-diskcache-%d-%d" (Unix.getpid ()) !counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* every plain file under [d], recursively *)
let rec files_under d =
  match Sys.readdir d with
  | names ->
      Array.to_list names
      |> List.concat_map (fun n ->
             let p = Filename.concat d n in
             if Sys.is_directory p then files_under p else [ p ])
  | exception Sys_error _ -> []

let with_cache f =
  let d = fresh_dir () in
  Diskcache.set_dir (Some d);
  Fun.protect
    ~finally:(fun () ->
      Diskcache.set_dir None;
      rm_rf d)
    (fun () -> f d)

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let b = Buffer.create 64 in
  Wire.int b 0;
  Wire.int b (-7);
  Wire.int b max_int;
  Wire.int b min_int;
  Wire.string b "";
  Wire.string b "with \000 nul and \n newline";
  Wire.bool b true;
  Wire.bool b false;
  Wire.list Wire.int b [ 3; -1; 4 ];
  let c = Wire.cursor (Buffer.contents b) in
  Alcotest.(check int) "zero" 0 (Wire.read_int c);
  Alcotest.(check int) "negative" (-7) (Wire.read_int c);
  Alcotest.(check int) "max_int" max_int (Wire.read_int c);
  Alcotest.(check int) "min_int" min_int (Wire.read_int c);
  Alcotest.(check string) "empty string" "" (Wire.read_string c);
  Alcotest.(check string)
    "nul string" "with \000 nul and \n newline" (Wire.read_string c);
  Alcotest.(check bool) "true" true (Wire.read_bool c);
  Alcotest.(check bool) "false" false (Wire.read_bool c);
  Alcotest.(check (list int))
    "list" [ 3; -1; 4 ]
    (Wire.read_list Wire.read_int c);
  Alcotest.(check bool) "at end" true (Wire.at_end c)

let test_wire_malformed () =
  let raises s f =
    Alcotest.(check bool)
      s true
      (try
         ignore (f ());
         false
       with Wire.Malformed -> true)
  in
  raises "no digits" (fun () -> Wire.read_int (Wire.cursor "x"));
  raises "no terminator" (fun () -> Wire.read_int (Wire.cursor "12"));
  raises "short string" (fun () -> Wire.read_string (Wire.cursor "9 ab"));
  raises "negative length" (fun () -> Wire.read_string (Wire.cursor "-1 "));
  raises "truncated list" (fun () ->
      Wire.read_list Wire.read_int (Wire.cursor "3 1 2 "))

let test_wire_canonical () =
  (* structurally equal conjuncts encode to equal bytes, whatever path
     built them — the property content-addressing rests on *)
  let mk lo hi =
    Conj.make ~n_ex:0
      [
        Constr.geq (Lin.of_list [ (1, Var.In 0) ] (-lo));
        Constr.geq (Lin.of_list [ (-1, Var.In 0) ] hi);
      ]
  in
  let enc c =
    let b = Buffer.create 32 in
    Conj.wire_put b c;
    Buffer.contents b
  in
  Alcotest.(check string) "equal conjuncts, equal bytes" (enc (mk 1 9))
    (enc (mk 1 9));
  Alcotest.(check bool)
    "distinct conjuncts, distinct bytes" true
    (enc (mk 1 9) <> enc (mk 1 8));
  let c = mk 2 5 in
  let rt = Conj.wire_read (Wire.cursor (enc c)) in
  Alcotest.(check bool) "roundtrip is equal" true (Conj.equal c (Conj.intern rt))

(* ------------------------------------------------------------------ *)
(* Entry robustness                                                    *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_and_counters () =
  with_cache @@ fun _d ->
  Stats.reset ();
  Diskcache.store ~kind:"t" "some key" "some value";
  Alcotest.(check (option string))
    "hit" (Some "some value")
    (Diskcache.find ~kind:"t" "some key");
  Alcotest.(check (option string))
    "other kind misses" None
    (Diskcache.find ~kind:"u" "some key");
  Alcotest.(check (option string))
    "other key misses" None
    (Diskcache.find ~kind:"t" "other key");
  Alcotest.(check int) "one store" 1 (Stats.count Stats.disk_stores);
  Alcotest.(check int) "three lookups" 3 (Stats.count Stats.disk_lookups);
  Alcotest.(check int) "one hit" 1 (Stats.count Stats.disk_hits);
  Alcotest.(check bool) "bytes tracked" true (Diskcache.bytes_used () > 0)

let entry_file d =
  match files_under d with
  | [ f ] -> f
  | fs -> Alcotest.failf "expected exactly one entry, found %d" (List.length fs)

let test_truncated_entry_is_miss () =
  with_cache @@ fun d ->
  Diskcache.store ~kind:"t" "key" (String.make 4096 'v');
  let f = entry_file d in
  let full = In_channel.with_open_bin f In_channel.input_all in
  (* chop the value in half: decode must fail cleanly *)
  Out_channel.with_open_bin f (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full / 2)));
  Alcotest.(check (option string))
    "truncated entry is a miss" None
    (Diskcache.find ~kind:"t" "key");
  (* and an outright garbage file too *)
  Out_channel.with_open_bin f (fun oc ->
      Out_channel.output_string oc "not a cache entry at all");
  Alcotest.(check (option string))
    "garbage entry is a miss" None
    (Diskcache.find ~kind:"t" "key")

let test_wrong_version_is_miss () =
  with_cache @@ fun d ->
  Diskcache.store ~kind:"t" "key" "value";
  let f = entry_file d in
  let full = In_channel.with_open_bin f In_channel.input_all in
  (* flip the format tag inside the magic: an entry written by another
     cache version must be unreadable *)
  let other = Bytes.of_string full in
  Bytes.set other 6 '9' (* "DHPFDC1\n" -> "DHPFDC9\n" *);
  Out_channel.with_open_bin f (fun oc ->
      Out_channel.output_bytes oc other);
  Alcotest.(check (option string))
    "wrong-version entry is a miss" None
    (Diskcache.find ~kind:"t" "key")

let test_colliding_key_is_miss () =
  with_cache @@ fun d ->
  Diskcache.store ~kind:"t" "real key" "value";
  let f = entry_file d in
  (* simulate an md5 collision: an entry whose embedded key differs from
     the probe sits at the probed path *)
  let b = Buffer.create 64 in
  Buffer.add_string b "DHPFDC1\n";
  Wire.string b "t";
  Wire.string b "impostor key";
  Wire.string b "impostor value";
  Out_channel.with_open_bin f (fun oc ->
      Out_channel.output_string oc (Buffer.contents b));
  Alcotest.(check (option string))
    "mismatched embedded key is a miss" None
    (Diskcache.find ~kind:"t" "real key")

(* ------------------------------------------------------------------ *)
(* Racing writers                                                      *)
(* ------------------------------------------------------------------ *)

let test_racing_writers_no_torn_reads () =
  with_cache @@ fun _d ->
  let rounds = 60 in
  let value tag = String.make 65536 tag in
  let torn = Atomic.make 0 and seen = Atomic.make 0 in
  let writers_live = Atomic.make 2 in
  (* two writers fight over one key with distinguishable values while a
     reader polls until both finish: every successful read must be one
     complete value *)
  Par.spawn_join 3 (fun who ->
      if who > 0 then begin
        let tag = if who = 1 then 'a' else 'b' in
        for _ = 1 to rounds do
          Diskcache.store ~kind:"race" "contended" (value tag)
        done;
        Atomic.decr writers_live
      end
      else
        while Atomic.get writers_live > 0 || Atomic.get seen = 0 do
          match Diskcache.find ~kind:"race" "contended" with
          | None -> Domain.cpu_relax ()
          | Some v ->
              Atomic.incr seen;
              if not (v = value 'a' || v = value 'b') then Atomic.incr torn
        done);
  Alcotest.(check int) "no torn reads" 0 (Atomic.get torn);
  Alcotest.(check bool)
    "reader observed published values" true
    (Atomic.get seen > 0);
  match Diskcache.find ~kind:"race" "contended" with
  | Some v ->
      Alcotest.(check bool)
        "final value is complete" true
        (v = value 'a' || v = value 'b')
  | None -> Alcotest.fail "final value missing"

(* ------------------------------------------------------------------ *)
(* Size bounds and pruning                                             *)
(* ------------------------------------------------------------------ *)

let test_gc_bounds_footprint () =
  with_cache @@ fun _d ->
  Stats.reset ();
  Diskcache.set_max_bytes 1 (* clamps to the 64 KiB floor *);
  Alcotest.(check int) "budget floor" (64 * 1024) (Diskcache.max_bytes ());
  let v = String.make 16384 'x' in
  for i = 1 to 200 do
    Diskcache.store ~kind:"gc" (Printf.sprintf "key-%d" i) v
  done;
  (* 200 * 16K = 3.1 MiB offered against a 64 KiB budget *)
  Alcotest.(check bool)
    (Printf.sprintf "footprint %d within budget" (Diskcache.bytes_used ()))
    true
    (Diskcache.bytes_used () <= Diskcache.max_bytes ());
  Alcotest.(check bool)
    "evictions recorded" true
    (Stats.count Stats.disk_evictions > 0);
  Alcotest.(check bool)
    "newest entry survived" true
    (Diskcache.find ~kind:"gc" "key-200" <> None);
  Diskcache.set_max_bytes (256 * 1024 * 1024)

let test_prune_dir_groups () =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d)
  @@ fun () ->
  let put name ~age contents =
    let p = Filename.concat d name in
    Diskcache.write_atomic p contents;
    (* explicit mtimes make age deterministic: [old] predates [new] *)
    Unix.utimes p age age
  in
  (* one old kernel group and one new one, multi-file each, plus sizes
     that force the old group out *)
  put "dhpf_kernel_old.ml" ~age:1000. (String.make 400 'o');
  put "dhpf_kernel_old.cmxs" ~age:1000. (String.make 400 'o');
  put "dhpf_kernel_old.log" ~age:1200. (String.make 100 'o');
  put "dhpf_kernel_new.ml" ~age:2000. (String.make 400 'n');
  put "dhpf_kernel_new.cmxs" ~age:2000. (String.make 400 'n');
  let removed =
    Diskcache.prune_dir ~group:Spmdsim.Native.kernel_group ~max_bytes:1000 d
  in
  Alcotest.(check int) "whole old group removed" 3 removed;
  let left = List.sort compare (Array.to_list (Sys.readdir d)) in
  Alcotest.(check (list string))
    "new group intact"
    [ "dhpf_kernel_new.cmxs"; "dhpf_kernel_new.ml" ]
    left;
  Alcotest.(check string)
    "kernel_group strips from the first dot" "dhpf_kernel_x"
    (Spmdsim.Native.kernel_group "dhpf_kernel_x.cmxs")

(* ------------------------------------------------------------------ *)
(* The differential contract                                           *)
(* ------------------------------------------------------------------ *)

let mk_interval lo hi =
  Conj.make ~n_ex:0
    [
      Constr.geq (Lin.of_list [ (1, Var.In 0) ] (-lo));
      Constr.geq (Lin.of_list [ (-1, Var.In 0) ] hi);
    ]

let test_disk_memo_differential () =
  with_cache @@ fun _d ->
  Cache.set_enabled true;
  let probes =
    List.init 12 (fun i -> mk_interval (i - 4) (2 * i)) @ [ mk_interval 5 1 ]
  in
  let observe () =
    List.map
      (fun c ->
        ( Conj.sat c,
          Option.map Conj.to_string (Conj.simplify c),
          Conj.to_string (Conj.gist c ~given:(mk_interval 0 100)) ))
      probes
  in
  let cold = observe () in
  (* clear the in-memory tables: the rerun must be fed from disk *)
  Cache.clear_all ();
  Stats.reset ();
  let warm = observe () in
  Alcotest.(check bool) "disk-warm equals cold" true (cold = warm);
  Alcotest.(check bool)
    (Printf.sprintf "disk hits recorded (%d)" (Stats.count Stats.disk_hits))
    true
    (Stats.count Stats.disk_hits > 0);
  (* and both agree with the cache-disabled truth *)
  Cache.set_enabled false;
  let plain = observe () in
  Cache.set_enabled true;
  Alcotest.(check bool) "plain equals disk-warm" true (plain = warm)

let test_disabled_cache_disables_disk () =
  with_cache @@ fun _d ->
  Cache.set_enabled false;
  Stats.reset ();
  ignore (Conj.sat (mk_interval 1 3));
  ignore (Conj.simplify (mk_interval 1 3));
  Alcotest.(check int)
    "no disk lookups when the cache layer is off" 0
    (Stats.count Stats.disk_lookups);
  Cache.set_enabled true

let () =
  Alcotest.run "diskcache"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "malformed" `Quick test_wire_malformed;
          Alcotest.test_case "canonical encoding" `Quick test_wire_canonical;
        ] );
      ( "entries",
        [
          Alcotest.test_case "roundtrip and counters" `Quick
            test_roundtrip_and_counters;
          Alcotest.test_case "truncated entry" `Quick
            test_truncated_entry_is_miss;
          Alcotest.test_case "wrong version" `Quick test_wrong_version_is_miss;
          Alcotest.test_case "digest collision" `Quick
            test_colliding_key_is_miss;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "racing writers" `Quick
            test_racing_writers_no_torn_reads;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "gc footprint" `Quick test_gc_bounds_footprint;
          Alcotest.test_case "prune groups" `Quick test_prune_dir_groups;
        ] );
      ( "differential",
        [
          Alcotest.test_case "disk memo differential" `Quick
            test_disk_memo_differential;
          Alcotest.test_case "disabled is disabled" `Quick
            test_disabled_cache_disables_disk;
        ] );
    ]
