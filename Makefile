# Development entry points. `make check` is the tier-1 verification the
# roadmap requires; `make resilience` runs the fault-injection and
# crash-recovery suites; `make fuzz` sweeps the benchmarks through the
# differential resilience harnesses (serial oracle vs. seeded fault
# schedules, plus crash schedules with checkpoint/restart recovery).

DUNE ?= dune
DHPFC = $(DUNE) exec bin/dhpfc.exe --

.PHONY: all check test resilience fuzz bench bench-smoke bench-run bench-run-smoke bench-par-smoke bench-native-smoke bench-native bench-serve bench-serve-smoke serve-obs-smoke metrics-smoke fmt fmt-check clean

all:
	$(DUNE) build

check:
	$(DUNE) build && $(DUNE) runtest && $(MAKE) bench-smoke && $(MAKE) bench-run-smoke && $(MAKE) bench-par-smoke && $(MAKE) bench-native-smoke && $(MAKE) bench-serve-smoke && $(MAKE) serve-obs-smoke && $(MAKE) metrics-smoke

# Fast Table-1 subset with the bench's JSON emitter; fails if the
# integer-set caches record zero hits (i.e. the memoization layer is
# accidentally disabled or dead).
bench-smoke:
	$(DUNE) exec bench/main.exe -- smoke

bench:
	$(DUNE) exec bench/main.exe -- json

# Fast Figure-7 runtime subset: runs each workload under both execution
# engines, fails if their counters disagree or if the closure engine is
# not faster than the interpreter.
bench-run-smoke:
	$(DUNE) exec bench/main.exe -- run-smoke

bench-run:
	$(DUNE) exec bench/main.exe -- run-json

# Domain-parallel smoke: the sharded-lane scheduler must stay bit-identical
# to the sequential one (always checked), and on hosts with >= 2 cores the
# parallel compile and simulation must beat 1 domain by
# DHPF_PAR_SMOKE_MIN_SPEEDUP (default 1.5x); single-core hosts skip the
# speedup half with a message.
bench-par-smoke:
	$(DUNE) exec bench/main.exe -- par-smoke

# Native-engine smoke: the generated-OCaml kernel must stay bit-identical
# to the closure engine and the interpreter (three-way differential, fault
# schedules included), and its warm-cache run phase must beat the closure
# engine by DHPF_NATIVE_SMOKE_MIN_SPEEDUP (default 3x) on JACOBI-384.
# `bench-native` regenerates BENCH_native.json.
bench-native-smoke:
	$(DUNE) exec bench/main.exe -- native-smoke

bench-native:
	$(DUNE) exec bench/main.exe -- native-json > BENCH_native.json

# Compilation-service smoke: fork a cold and a warm daemon over one
# shared disk cache, drive both with concurrent mixed compile/run
# clients, and fail unless every request succeeds, the warm daemon
# serves nonzero disk-cache hits, and both daemons shut down cleanly on
# SIGTERM. `bench-serve` regenerates BENCH_serve.json.
bench-serve-smoke:
	$(DHPFC) bench-serve --clients 8 --requests 3 --smoke

bench-serve:
	$(DHPFC) bench-serve --clients 8 --requests 4 --json BENCH_serve.json --smoke

# Observability smoke: the same three daemons (cold, warm, eviction
# pressure) with every telemetry sink routed to OBS_DIR — structured
# JSONL logs, Prometheus files, flight-recorder dumps — and the smoke
# checks extended to parse and validate each artifact, assert that
# telemetry threads through every response, and that the squeezed
# daemon records evictions and a degraded hit ratio.
OBS_DIR ?= artifacts/obs
serve-obs-smoke:
	mkdir -p $(OBS_DIR)
	$(DHPFC) bench-serve --clients 4 --requests 3 --obs $(OBS_DIR) --json $(OBS_DIR)/BENCH_serve.json --smoke

# Predicted-vs-measured communication: the bench's symmetric-stencil
# matrix assertions, then --check-comm (static integer-set prediction
# joined against the simulated matrix, exact match required) on the
# Figure-7 applications under both a fault-free and a faulty schedule.
metrics-smoke:
	$(DUNE) exec bench/main.exe -- metrics-smoke
	$(DHPFC) run jacobi -p 4 --check-comm > /dev/null
	$(DHPFC) run tomcatv -p 4 --check-comm > /dev/null
	$(DHPFC) run erlebacher -p 4 --check-comm > /dev/null
	$(DHPFC) run jacobi -p 4 --check-comm --faults 1 > /dev/null

test: check

# Formatting is pinned by .ocamlformat and enforced in CI; both targets
# degrade to a no-op warning when ocamlformat is not installed locally.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) fmt; \
	else \
	  echo "ocamlformat not installed; skipping fmt"; \
	fi

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping fmt-check"; \
	fi

resilience:
	$(DUNE) build @resilience
	$(DHPFC) run jacobi --diff-crashes 3
	$(DHPFC) run gauss --diff-crashes 3

fuzz:
	$(DHPFC) run jacobi --diff 5
	$(DHPFC) run tomcatv --diff 5
	$(DHPFC) run erlebacher --diff 5
	$(DHPFC) run figure2 --diff 5
	$(DHPFC) run sp_like --diff 5
	$(DHPFC) run jacobi --diff-crashes 5
	$(DHPFC) run tomcatv --diff-crashes 3
	$(DHPFC) run sp_like --diff-crashes 3

clean:
	$(DUNE) clean
