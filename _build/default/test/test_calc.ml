(* Tests for the Omega-style calculator. *)

let run script = Iset.Calc.eval_script script

let check_outputs msg script expected =
  Alcotest.(check (list string)) msg expected (run script)

let test_assign_print () =
  check_outputs "assign and print"
    "A := {[i] : 1 <= i <= 3};\nA;"
    [ "{[i] : i <= 3 && 1 <= i}" ]

let test_ops () =
  let out =
    run
      {|
A := {[i] : 1 <= i <= 10}
B := {[i] : 4 <= i <= 20}
sat (A inter B)
empty (A inter B)
A subset {[i] : 0 <= i <= 99}
(A - B) equal {[i] : 1 <= i <= 3}
|}
  in
  Alcotest.(check (list string)) "results" [ "true"; "false"; "true"; "true" ] out

let test_relations () =
  let out =
    run
      {|
L := {[p] -> [a] : 4p+1 <= a <= 4p+4 && 0 <= p <= 3}
domain (L restrictrange {[a] : a = 7})
sat ((range L) - {[a] : 1 <= a <= 16})
|}
  in
  Alcotest.(check (list string)) "results" [ "{[p] : p = 1}"; "false" ] out

let test_strides () =
  let out =
    run
      {|
E := {[i] : exists(a : i = 2a) && 0 <= i <= 10}
O := {[i] : 0 <= i <= 10} - E
sat (E inter O)
convex E
convex {[i] : 0 <= i <= 10}
|}
  in
  Alcotest.(check (list string)) "results" [ "false"; "false"; "true" ] out

let test_codegen () =
  let out = run "codegen {[i] : exists(a : i = 3a) && 0 <= i <= 9}" in
  match out with
  | [ code ] ->
      Alcotest.(check bool) "is a strided loop" true
        (String.length code > 0
        && (let contains hay needle =
              let nh = String.length hay and nn = String.length needle in
              let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
              go 0
            in
            contains code ", 3"))
  | _ -> Alcotest.fail "expected one output"

let test_gist_hull () =
  let out =
    run
      {|
S := {[i] : 1 <= i <= 10 && i >= 0} gist {[i] : 1 <= i}
S;
H := hull ({[i] : 1 <= i <= 3} union {[i] : 6 <= i <= 9})
{[i] : i = 5} subset H
|}
  in
  Alcotest.(check (list string)) "results" [ "{[i] : i <= 10}"; "true" ] out

let test_env_and_comments () =
  let out = run "# a comment\nA := {[i] : i = 1};\nenv" in
  Alcotest.(check (list string)) "env lists A" [ "A" ] out

let test_errors () =
  let expect script =
    match run script with
    | exception Iset.Calc.Error _ -> ()
    | exception Iset.Parse.Error _ -> ()
    | _ -> Alcotest.fail ("expected error: " ^ script)
  in
  expect "B;";
  expect "A := {[i] : 1 <= i} extra";
  expect "A := {[i] 1 <= i};";
  expect "sat";
  expect "{[i] : 1 <= i <= 2} inter {[i,j] : i = j}"

let () =
  Alcotest.run "calc"
    [
      ( "calculator",
        [
          Alcotest.test_case "assign/print" `Quick test_assign_print;
          Alcotest.test_case "boolean ops" `Quick test_ops;
          Alcotest.test_case "relations" `Quick test_relations;
          Alcotest.test_case "strides" `Quick test_strides;
          Alcotest.test_case "codegen" `Quick test_codegen;
          Alcotest.test_case "gist/hull" `Quick test_gist_hull;
          Alcotest.test_case "env/comments" `Quick test_env_and_comments;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]
