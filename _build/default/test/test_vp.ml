(* Active virtual processor sets (Figure 5), checked against the paper's
   Gaussian-elimination example: with A(i,j) on (CYCLIC,CYCLIC) and the
   update loop ON_HOME A(i,j) reading the pivot row,
     busyVPSet       = {[v1,v2] : PIVOT < v1,v2 <= n}
     activeSendVPSet = {[v1,v2] : v1 = PIVOT && PIVOT < v2 <= n}
     activeRecvVPSet = busyVPSet. *)

open Iset
open Dhpf

let setup () =
  let src = Codes.gauss ~n:12 ~pivot:3 ~procs:Codes.SymbolicBoth () in
  let chk = Hpf.Sema.analyze_source src in
  let ctx = Layout.build chk in
  let u = Hpf.Ast.main_unit chk.Hpf.Sema.prog in
  (* second top-level loop nest is the update *)
  let nest, lhs, rhs =
    match u.body with
    | [ _init;
        Hpf.Ast.SDo
          { var = v1; lo = lo1; hi = hi1; step = s1;
            body =
              [ Hpf.Ast.SDo
                  { var = v2; lo = lo2; hi = hi2; step = s2;
                    body = [ Hpf.Ast.SAssign { lhs; rhs; _ } ] } ] } ] ->
        ( [ { Cp.lvar = v1; llo = lo1; lhi = hi1; lstep = s1 };
            { Cp.lvar = v2; llo = lo2; lhi = hi2; lstep = s2 } ],
          lhs, rhs )
    | _ -> Alcotest.fail "unexpected gauss shape"
  in
  let iter = Cp.iter_space ctx nest in
  let cpmap = Cp.cpmap_of_refs ctx nest iter [ lhs ] in
  (* the pivot-row reference a(pivot, j) *)
  let r =
    (* the pivot-row reference a(pivot, j): first subscript is the pivot
       parameter, not the loop variable *)
    List.find
      (fun (_, idx) ->
        match idx with
        | Hpf.Ast.IName s :: _ -> s <> (List.hd nest).Cp.lvar
        | Hpf.Ast.INum _ :: _ -> true
        | _ -> false)
      (Cp.refs_of_fexpr rhs)
  in
  let rm = Rel.restrict_domain (Cp.refmap ctx nest r) iter in
  let layout = Option.get (Layout.layout_of ctx "a") in
  (ctx, Vp.for_event ctx ~layout ~kind:`Read [ (cpmap, rm) ])

(* n=12, pivot=3 *)
let test_busy () =
  let _, a = setup () in
  (* busy VPs: template cells (v1,v2) with pivot < v1,v2 <= n *)
  Alcotest.(check bool) "(5,7) busy" true (Rel.mem_set a.Vp.busy [ 5; 7 ]);
  Alcotest.(check bool) "(4,4) busy" true (Rel.mem_set a.Vp.busy [ 4; 4 ]);
  Alcotest.(check bool) "(3,5) not busy" false (Rel.mem_set a.Vp.busy [ 3; 5 ]);
  Alcotest.(check bool) "(5,3) not busy" false (Rel.mem_set a.Vp.busy [ 5; 3 ]);
  Alcotest.(check bool) "(13,5) out of range" false (Rel.mem_set a.Vp.busy [ 13; 5 ])

let test_active_send () =
  let _, a = setup () in
  (* only VPs owning pivot-row elements read remotely send: v1 = pivot = 3 *)
  Alcotest.(check bool) "(3,5) sends" true (Rel.mem_set a.Vp.active_send [ 3; 5 ]);
  Alcotest.(check bool) "(3,3) does not send (j > pivot only)" false
    (Rel.mem_set a.Vp.active_send [ 3; 3 ]);
  Alcotest.(check bool) "(4,5) does not send" false
    (Rel.mem_set a.Vp.active_send [ 4; 5 ]);
  Alcotest.(check bool) "(2,5) does not send" false
    (Rel.mem_set a.Vp.active_send [ 2; 5 ])

let test_active_recv () =
  let _, a = setup () in
  (* all busy VPs receive (they all read the pivot row) *)
  for v1 = 4 to 6 do
    for v2 = 4 to 6 do
      Alcotest.(check bool)
        (Printf.sprintf "(%d,%d) receives" v1 v2)
        true
        (Rel.mem_set a.Vp.active_recv [ v1; v2 ])
    done
  done;
  Alcotest.(check bool) "(3,5) does not receive (sender row)" false
    (Rel.mem_set a.Vp.active_recv [ 3; 5 ])

let test_recv_equals_busy () =
  let _, a = setup () in
  Alcotest.(check bool) "activeRecv = busy" true (Rel.equal a.Vp.active_recv a.Vp.busy)

(* End-to-end: the gauss program must compile and validate under cyclic
   distributions with a symbolic processor grid. *)
let test_gauss_runs () =
  let src = Codes.gauss ~n:8 ~pivot:2 ~procs:Codes.SymbolicBoth () in
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Dhpf.Gen.compile chk in
  let sref = Spmdsim.Serial.run chk in
  let sim = Spmdsim.Exec.make ~nprocs:4 compiled.cprog in
  let _ = Spmdsim.Exec.run sim in
  let bad = ref 0 in
  for i = 1 to 8 do
    for j = 1 to 8 do
      let want = Spmdsim.Serial.get_elem sref "a" [ i; j ] in
      let got = Spmdsim.Exec.get_elem sim "a" [ i; j ] in
      if abs_float (want -. got) > 1e-9 then incr bad
    done
  done;
  Alcotest.(check int) "gauss symbolic-cyclic matches serial" 0 !bad

let () =
  Alcotest.run "vp"
    [
      ( "figure5",
        [
          Alcotest.test_case "busyVPSet" `Quick test_busy;
          Alcotest.test_case "activeSendVPSet" `Quick test_active_send;
          Alcotest.test_case "activeRecvVPSet" `Quick test_active_recv;
          Alcotest.test_case "recv = busy" `Quick test_recv_equals_busy;
          Alcotest.test_case "gauss end-to-end" `Quick test_gauss_runs;
        ] );
    ]
