test/test_sim.ml: Alcotest Codes Dhpf Hashtbl Hpf List Printf Spmdsim
