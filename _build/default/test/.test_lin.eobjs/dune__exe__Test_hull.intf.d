test/test_hull.mli:
