test/test_lin.ml: Alcotest Constr Iset Lin Var
