test/test_exec.ml: Alcotest Dhpf Gen Hpf Iset Printf Spmd Spmdsim String
