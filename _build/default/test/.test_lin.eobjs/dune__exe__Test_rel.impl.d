test/test_rel.ml: Alcotest Iset Lin Parse Printf Rel Var
