test/test_layout.ml: Alcotest Dhpf Fun Hpf Iset List Option Printf Rel String
