test/test_random.ml: Alcotest Buffer Dhpf Hpf List Printf QCheck QCheck_alcotest Spmdsim String
