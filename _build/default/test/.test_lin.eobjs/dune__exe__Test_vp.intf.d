test/test_vp.mli:
