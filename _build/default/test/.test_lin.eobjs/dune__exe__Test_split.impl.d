test/test_split.ml: Alcotest Cp Dhpf Fun Hpf Iset Layout List Option Printf Rel Split
