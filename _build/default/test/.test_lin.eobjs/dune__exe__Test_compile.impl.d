test/test_compile.ml: Alcotest Codes Dhpf Float Hashtbl Hpf List Printf Spmdsim String Unix
