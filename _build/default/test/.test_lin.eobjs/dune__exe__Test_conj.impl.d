test/test_conj.ml: Alcotest Conj Constr Iset Lin List Parse Rel Var
