test/test_comm.ml: Alcotest Comm Cp Dhpf Hpf Iset Layout List Printf Rel
