test/test_inplace.mli:
