test/test_hpf.mli:
