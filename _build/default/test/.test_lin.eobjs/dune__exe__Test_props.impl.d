test/test_props.ml: Alcotest Codegen Conj Constr Iset Lin List QCheck QCheck_alcotest Rel Var
