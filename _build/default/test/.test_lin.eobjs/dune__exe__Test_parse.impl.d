test/test_parse.ml: Alcotest Iset List Parse Printf Rel
