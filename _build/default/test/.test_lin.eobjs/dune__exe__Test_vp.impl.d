test/test_vp.ml: Alcotest Codes Cp Dhpf Hpf Iset Layout List Option Printf Rel Spmdsim Vp
