test/test_conj.mli:
