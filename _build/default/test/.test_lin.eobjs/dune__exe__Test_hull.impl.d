test/test_hull.ml: Alcotest Conj Hull Iset List Parse Printf Rel
