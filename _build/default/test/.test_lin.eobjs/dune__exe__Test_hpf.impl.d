test/test_hpf.ml: Alcotest Hpf Iset List
