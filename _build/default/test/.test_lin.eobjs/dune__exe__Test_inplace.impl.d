test/test_inplace.ml: Alcotest Dhpf Inplace Iset Parse Printf
