test/test_calc.ml: Alcotest Iset String
