test/test_codegen.ml: Alcotest Array Codegen Fmt Iset List Option Parse Rel String
